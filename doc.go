// Package repro is a from-scratch Go reproduction of "Robustness against
// Release/Acquire Semantics" (Lahav & Margalit, PLDI 2019): a sound and
// precise checker for execution-graph robustness of concurrent programs
// against the C/C++11 release/acquire memory model, via the paper's
// reduction to reachability under an instrumented sequentially consistent
// memory.
//
// See README.md for an overview, DESIGN.md for the system inventory and
// substitution notes, and EXPERIMENTS.md for the paper-versus-measured
// record. The public entry points live under internal/ (this is a
// self-contained research artifact): internal/core is the verifier,
// internal/litmus the benchmark corpus, and the runnable tools are in
// cmd/rocker, cmd/litmus, cmd/fencer and cmd/fig7.
package repro
