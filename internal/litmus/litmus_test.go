package litmus_test

import (
	"testing"

	"repro/internal/litmus"
	"repro/internal/parser"
)

// TestCorpusWellFormed parses every corpus program, checks the recorded
// thread counts against the paper's #T column, and checks name uniqueness.
func TestCorpusWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range litmus.All() {
		if seen[e.Name] {
			t.Errorf("duplicate corpus name %q", e.Name)
		}
		seen[e.Name] = true
		p, err := parser.Parse(e.Source)
		if err != nil {
			t.Errorf("%s: parse: %v", e.Name, err)
			continue
		}
		if e.Threads != 0 && p.NumThreads() != e.Threads {
			t.Errorf("%s: %d threads, paper says %d", e.Name, p.NumThreads(), e.Threads)
		}
		if p.LoC() == 0 {
			t.Errorf("%s: empty program", e.Name)
		}
	}
}

// TestFig7Complete checks the Figure 7 selection: exactly the paper's 25
// rows, in the paper's order.
func TestFig7Complete(t *testing.T) {
	rows := litmus.Fig7()
	if len(rows) != 25 {
		t.Fatalf("Figure 7 has %d rows, want 25", len(rows))
	}
	if rows[0].Name != "barrier" || rows[24].Name != "chase-lev-ra" {
		t.Errorf("row order: first %q, last %q", rows[0].Name, rows[24].Name)
	}
	for _, e := range rows {
		if !e.Fig7 {
			t.Errorf("%s selected by Fig7() but not flagged", e.Name)
		}
	}
}

// TestGetUnknown checks the error path lists the corpus.
func TestGetUnknown(t *testing.T) {
	_, err := litmus.Get("no-such-program")
	if err == nil {
		t.Fatal("expected an error")
	}
}

// TestGenerators smoke-tests the parameterized sources.
func TestGenerators(t *testing.T) {
	for _, src := range []string{
		litmus.SpinlockSrc(3, 2),
		litmus.TicketlockSrc(5, 1),
		litmus.LamportSrc(2),
	} {
		if _, err := parser.Parse(src); err != nil {
			t.Errorf("generator output does not parse: %v", err)
		}
	}
}
