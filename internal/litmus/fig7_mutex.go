package litmus

// Figure 7 corpus, part 1: barrier and the mutual-exclusion algorithms
// (Dekker, Peterson, Lamport's fast mutex #2). Each algorithm appears in
// the variants of the paper's evaluation: "-sc" is the original algorithm
// as designed for sequential consistency; "-tso" strengthens it with the
// fences needed for robustness against TSO; "-ra" (where present) is the
// further strengthening needed for robustness against RA; the
// "peterson-ra-dmitriy"/"peterson-ra-bratosz" variants instead strengthen
// selected writes into RMWs (XCHG), following Williams' discussion [57] —
// Dmitriy V'jukov's choice (the turn write) is correct, the alternative
// (the flag writes) is not.
//
// Critical sections are modelled as in typical robustness corpora: the
// entrant writes its identity to a shared location, re-reads it, and
// asserts it was not overwritten — a standard SC mutual-exclusion check
// that the verifier discharges alongside robustness (§7).

func init() {
	// barrier — the BAR program of §2.3 (blocking variant), extended with
	// the data handoff the barrier is for. Robust thanks to the blocking
	// wait; Trencher reports ✗⋆ only because its language lacks wait.
	register(Entry{
		Name: "barrier", RobustRA: true, RobustTSO: true, Fig7: true, Threads: 2,
		Source: `
program barrier
vals 2
locs x y d1 d2
thread t1
  d1 := 1
  x := 1
  wait(y = 1)
  r := d2
  assert r = 1
end
thread t2
  d2 := 1
  y := 1
  wait(x = 1)
  r := d1
  assert r = 1
end
`})

	// dekker-sc — Dekker's algorithm as designed for SC. The initial
	// flag-write / flag-read pattern is a store-buffering shape: both
	// threads can read the other's flag as 0 under RA (and TSO) and enter
	// the critical section together. Not robust.
	register(Entry{
		Name: "dekker-sc", RobustRA: false, RobustTSO: false, Fig7: true, Threads: 2,
		Source: `
program dekker-sc
vals 3
locs flag0 flag1 turn cs
thread p0
  flag0 := 1
LOOP:
  r := flag1
  if r = 0 goto CRIT
  r2 := turn
  if r2 = 0 goto LOOP
  flag0 := 0
WT:
  r3 := turn
  if r3 != 0 goto WT
  flag0 := 1
  goto LOOP
CRIT:
  cs := 1
  rc := cs
  assert rc = 1
  cs := 0
  turn := 1
  flag0 := 0
end
thread p1
  flag1 := 1
LOOP:
  r := flag0
  if r = 0 goto CRIT
  r2 := turn
  if r2 = 1 goto LOOP
  flag1 := 0
WT:
  r3 := turn
  if r3 != 1 goto WT
  flag1 := 1
  goto LOOP
CRIT:
  cs := 2
  rc := cs
  assert rc = 2
  cs := 0
  turn := 0
  flag1 := 0
end
`})

	// dekker-tso — Dekker with the SC fences that make it robust against
	// TSO (a store-load fence after each flag raise), with the benign
	// busy-waits expressed with the blocking wait. This version is robust
	// against RA as well (Figure 7).
	register(Entry{
		Name: "dekker-tso", RobustRA: true, RobustTSO: true, Fig7: true, Threads: 2,
		Source: `
program dekker-tso
vals 3
locs flag0 flag1 turn cs
thread p0
  flag0 := 1
  fence
LOOP:
  r := flag1
  if r = 0 goto CRIT
  r2 := turn
  if r2 = 0 goto LOOP
  flag0 := 0
  wait(turn = 0)
  flag0 := 1
  fence
  goto LOOP
CRIT:
  cs := 1
  rc := cs
  assert rc = 1
  cs := 0
  turn := 1
  flag0 := 0
end
thread p1
  flag1 := 1
  fence
LOOP:
  r := flag0
  if r = 0 goto CRIT
  r2 := turn
  if r2 = 1 goto LOOP
  flag1 := 0
  wait(turn = 1)
  flag1 := 1
  fence
  goto LOOP
CRIT:
  cs := 2
  rc := cs
  assert rc = 2
  cs := 0
  turn := 0
  flag1 := 0
end
`})

	// peterson-sc — Peterson's algorithm as designed for SC. Not robust
	// (store-buffering on flag/turn), and not even correct under RA.
	register(Entry{
		Name: "peterson-sc", RobustRA: false, RobustTSO: false, Fig7: true, Threads: 2,
		Source: petersonSrc("peterson-sc", "", "", false, false),
	})

	// peterson-tso — one fence per thread (after the turn write) makes
	// Peterson robust against TSO, but not against RA (Figure 7: Rocker ✗,
	// Trencher ✓).
	register(Entry{
		Name: "peterson-tso", RobustRA: false, RobustTSO: true, Fig7: true, Threads: 2,
		Source: petersonSrc("peterson-tso", "", "  fence\n", false, false),
	})

	// peterson-ra — the fence placement that achieves robustness against
	// RA: a fence after the flag raise and one after the turn write, in
	// both threads.
	register(Entry{
		Name: "peterson-ra", RobustRA: true, RobustTSO: true, Fig7: true, Threads: 2,
		Source: petersonSrc("peterson-ra", "  fence\n", "  fence\n", false, false),
	})

	// peterson-ra-dmitriy — V'jukov's repair [57]: strengthen the turn
	// write into an RMW (exchange). Robust.
	register(Entry{
		Name: "peterson-ra-dmitriy", RobustRA: true, RobustTSO: true, Fig7: true, Threads: 2,
		Source: petersonSrc("peterson-ra-dmitriy", "", "", true, false),
	})

	// peterson-ra-bratosz — the wrong choice of writes to strengthen (the
	// flag writes instead of the turn write). Not robust; Rocker
	// correctly rejects it (§7).
	register(Entry{
		Name: "peterson-ra-bratosz", RobustRA: false, RobustTSO: false, Fig7: true, Threads: 2,
		Source: petersonSrc("peterson-ra-bratosz", "", "", false, true),
	})
}

// petersonSrc builds a Peterson variant. flagFence/turnFence are inserted
// after the flag and turn writes; xchgTurn strengthens the turn write into
// an XCHG; xchgFlag strengthens the flag raise instead.
func petersonSrc(name, flagFence, turnFence string, xchgTurn, xchgFlag bool) string {
	flagW := func(me string) string {
		if xchgFlag {
			return "  rx := XCHG(flag" + me + ", 1)\n"
		}
		return "  flag" + me + " := 1\n"
	}
	turnW := func(other string) string {
		if xchgTurn {
			return "  rt := XCHG(turn, " + other + ")\n"
		}
		return "  turn := " + other + "\n"
	}
	body := func(me, other, csv string) string {
		return "thread p" + me + "\n" +
			flagW(me) + flagFence +
			turnW(other) + turnFence +
			"LOOP:\n" +
			"  r1 := flag" + other + "\n" +
			"  if r1 = 0 goto CRIT\n" +
			"  r2 := turn\n" +
			"  if r2 = " + other + " goto LOOP\n" +
			"CRIT:\n" +
			"  cs := " + csv + "\n" +
			"  rc := cs\n" +
			"  assert rc = " + csv + "\n" +
			"  cs := 0\n" +
			"  flag" + me + " := 0\n" +
			"end\n"
	}
	return "program " + name + "\nvals 3\nlocs flag0 flag1 turn cs\n" +
		body("0", "1", "1") + body("1", "0", "2")
}
