package litmus

import (
	"fmt"
	"strings"
)

// Figure 7 corpus, part 3: lock implementations and version-counter
// protocols — spinlock, ticket lock, seqlock (Boehm 2012) and the
// non-blocking write protocol. All are robust against RA (Figure 7): their
// synchronization flows through RMWs and message-passing shapes, with
// blocking primitives masking the benign busy-wait stalls.

// SpinlockSrc returns a parameterized test-and-set spinlock program (n
// threads, `rounds` acquisitions each) — the workload generator behind the
// spinlock rows and the scaling sweep (cmd/sweep).
func SpinlockSrc(n, rounds int) string {
	return spinlockSrc(fmt.Sprintf("spinlock-n%d-r%d", n, rounds), n, rounds)
}

// TicketlockSrc returns a parameterized ticket-lock program (n threads,
// `rounds` acquisitions each).
func TicketlockSrc(n, rounds int) string {
	return ticketlockSrc(fmt.Sprintf("ticketlock-n%d-r%d", n, rounds), n, rounds)
}

// LamportSrc returns a parameterized instance of the RA-strengthened
// Lamport fast mutex with n threads.
func LamportSrc(n int) string {
	return lamportSrc(fmt.Sprintf("lamport-n%d-ra", n), n, false, true, true)
}

// spinlockSrc builds a test-and-set spinlock program: each of n threads
// acquires the lock `rounds` times (blocking CAS), runs a critical section
// with the standard overwrite check, and releases.
func spinlockSrc(name string, n, rounds int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\nvals %d\nlocs lock cs\n", name, max(3, n+1))
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "thread t%d\n", i)
		fmt.Fprintf(&b, "  it := 0\n")
		fmt.Fprintf(&b, "LOOP:\n")
		fmt.Fprintf(&b, "  BCAS(lock, 0, 1)\n")
		fmt.Fprintf(&b, "  cs := %d\n", i)
		fmt.Fprintf(&b, "  rc := cs\n")
		fmt.Fprintf(&b, "  assert rc = %d\n", i)
		fmt.Fprintf(&b, "  cs := 0\n")
		fmt.Fprintf(&b, "  lock := 0\n")
		fmt.Fprintf(&b, "  it := it + 1\n")
		fmt.Fprintf(&b, "  if it < %d goto LOOP\n", rounds)
		fmt.Fprintf(&b, "end\n")
	}
	return b.String()
}

// ticketlockSrc builds a ticket lock: FADD on the ticket dispenser, a
// blocking wait on the serving counter, and a serving handover on exit.
func ticketlockSrc(name string, n, rounds int) string {
	tickets := n*rounds + 1
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\nvals %d\nlocs next serving cs\n", name, max(tickets+1, n+1))
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "thread t%d\n", i)
		fmt.Fprintf(&b, "  it := 0\n")
		fmt.Fprintf(&b, "LOOP:\n")
		fmt.Fprintf(&b, "  my := FADD(next, 1)\n")
		fmt.Fprintf(&b, "  wait(serving = my)\n")
		fmt.Fprintf(&b, "  cs := %d\n", i)
		fmt.Fprintf(&b, "  rc := cs\n")
		fmt.Fprintf(&b, "  assert rc = %d\n", i)
		fmt.Fprintf(&b, "  cs := 0\n")
		fmt.Fprintf(&b, "  serving := my + 1\n")
		fmt.Fprintf(&b, "  it := it + 1\n")
		fmt.Fprintf(&b, "  if it < %d goto LOOP\n", rounds)
		fmt.Fprintf(&b, "end\n")
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func init() {
	register(Entry{
		Name: "spinlock", RobustRA: true, RobustTSO: true, Fig7: true, Threads: 2,
		Source: spinlockSrc("spinlock", 2, 2),
	})
	register(Entry{
		Name: "spinlock4", RobustRA: true, RobustTSO: true, Fig7: true, Threads: 4,
		Source: spinlockSrc("spinlock4", 4, 1),
	})
	register(Entry{
		Name: "ticketlock", RobustRA: true, RobustTSO: true, Fig7: true, Threads: 2,
		Source: ticketlockSrc("ticketlock", 2, 2),
	})
	register(Entry{
		Name: "ticketlock4", RobustRA: true, RobustTSO: true, Fig7: true, Threads: 4,
		Source: ticketlockSrc("ticketlock4", 4, 1),
	})

	// seqlock — Boehm, "Can Seqlocks get along with programming language
	// memory models?" (2012): two writers claim the sequence counter with
	// a CAS (odd = writer active), update the data, and release with the
	// next even value; two readers retry until they observe the same even
	// sequence number around a consistent data snapshot. Robust against
	// RA with no fences — the paper's point that seqlocks were designed
	// with relaxed memory in mind.
	register(Entry{
		Name: "seqlock", RobustRA: true, RobustTSO: true, Fig7: true, Threads: 4,
		Source: `
program seqlock
vals 5
locs seq d1 d2
thread w1
CLAIM:
  c := seq
  r := c % 2
  if r = 1 goto CLAIM
  a := CAS(seq, c, c + 1)
  if a != c goto CLAIM
  d1 := 1
  d2 := 1
  seq := c + 2
end
thread w2
CLAIM:
  c := seq
  r := c % 2
  if r = 1 goto CLAIM
  a := CAS(seq, c, c + 1)
  if a != c goto CLAIM
  d1 := 2
  d2 := 2
  seq := c + 2
end
thread r1
RETRY:
  s1 := seq
  r := s1 % 2
  if r = 1 goto RETRY
  a := d1
  b := d2
  s2 := seq
  if s2 != s1 goto RETRY
  assert a = b
end
thread r2
RETRY:
  s1 := seq
  r := s1 % 2
  if r = 1 goto RETRY
  a := d1
  b := d2
  s2 := seq
  if s2 != s1 goto RETRY
  assert a = b
end
`})

	// nbw-w-lr-rl — a non-blocking write protocol (Kopetz's NBW shape,
	// from the Trencher benchmark family): a single writer versions the
	// data with a counter (odd while writing), and three readers (the
	// "local" and "remote" readers of the benchmark name) retry until
	// they see a stable even version. Same synchronization skeleton as
	// the seqlock reader side, with a writer that owns the counter.
	register(Entry{
		Name: "nbw-w-lr-rl", RobustRA: true, RobustTSO: true, Fig7: true, Threads: 4,
		Source: `
program nbw-w-lr-rl
vals 5
locs ver d1 d2
thread writer
  ver := 1
  d1 := 1
  d2 := 1
  ver := 2
  ver := 3
  d1 := 2
  d2 := 2
  ver := 4
end
thread lr
RETRY:
  s1 := ver
  r := s1 % 2
  if r = 1 goto RETRY
  a := d1
  b := d2
  s2 := ver
  if s2 != s1 goto RETRY
  assert a = b
end
thread rl1
RETRY:
  s1 := ver
  r := s1 % 2
  if r = 1 goto RETRY
  a := d1
  b := d2
  s2 := ver
  if s2 != s1 goto RETRY
  assert a = b
end
thread rl2
RETRY:
  s1 := ver
  r := s1 % 2
  if r = 1 goto RETRY
  a := d1
  b := d2
  s2 := ver
  if s2 != s1 goto RETRY
  assert a = b
end
`})
}
