package litmus

import (
	"fmt"
	"strings"
)

// Figure 7 corpus, part 2: Lamport's fast mutual exclusion algorithm
// (algorithm 2 of "A Fast Mutual Exclusion Algorithm", 1987), in the
// paper's four variants. The algorithm, for thread i (identifiers 1..N,
// 0 = none):
//
//	start: b[i] := 1
//	       x := i
//	       if y ≠ 0 { b[i] := 0; await y = 0; goto start }
//	       y := i
//	       if x ≠ i {
//	           b[i] := 0
//	           for all j: await b[j] = 0
//	           if y ≠ i { await y = 0; goto start }
//	       }
//	       critical section
//	       y := 0
//	       b[i] := 0
//
// Variants:
//
//   - lamport2-sc: the SC original. The awaits are busy loops of plain
//     reads; no fences. Not robust (the x-write/y-read pair alone is a
//     store-buffering shape).
//   - lamport2-tso: adds a store-load fence after x := i (the
//     announcement/check pair). Not robust against RA (the paper's Res
//     column), and — a documented deviation from the paper's Trencher
//     column, see EXPERIMENTS.md — not state-robust against TSO either:
//     in our reconstruction the y := i / x re-read pair also needs a
//     fence on TSO, and the two-fence placement is already robust
//     against RA, so no fence set reproduces the paper's ✗(RA)/✓(TSO)
//     pair for this row. The original .rkr source is not available to
//     recover the exact encoding difference.
//   - lamport2-ra: the RA strengthening. The awaits become blocking wait
//     instructions (masking exactly the benign stalls, §2.3), and every
//     announcement and hand-over write is fenced.
//   - lamport2-3-ra: the same with three competing threads.
func lamportThread(i, n int, tsoFences, raFences, blockingWait bool) string {
	var b strings.Builder
	fence := func(on bool) {
		if on {
			b.WriteString("  fence\n")
		}
	}
	await := func(loc string, val int, tag string) {
		if blockingWait {
			fmt.Fprintf(&b, "  wait(%s = %d)\n", loc, val)
		} else {
			fmt.Fprintf(&b, "%s:\n", tag)
			fmt.Fprintf(&b, "  rw := %s\n", loc)
			fmt.Fprintf(&b, "  if rw != %d goto %s\n", val, tag)
		}
	}
	fmt.Fprintf(&b, "thread p%d\n", i)
	fmt.Fprintf(&b, "START:\n")
	fmt.Fprintf(&b, "  b%d := 1\n", i)
	fence(raFences)
	fmt.Fprintf(&b, "  x := %d\n", i)
	fence(tsoFences || raFences)
	fmt.Fprintf(&b, "  r1 := y\n")
	fmt.Fprintf(&b, "  if r1 = 0 goto SETY\n")
	fmt.Fprintf(&b, "  b%d := 0\n", i)
	fence(raFences)
	await("y", 0, "AW1")
	fmt.Fprintf(&b, "  goto START\n")
	fmt.Fprintf(&b, "SETY:\n")
	fmt.Fprintf(&b, "  y := %d\n", i)
	fence(raFences)
	fmt.Fprintf(&b, "  r2 := x\n")
	fmt.Fprintf(&b, "  if r2 = %d goto CRIT\n", i)
	fmt.Fprintf(&b, "  b%d := 0\n", i)
	fence(raFences)
	for j := 1; j <= n; j++ {
		if j != i {
			await(fmt.Sprintf("b%d", j), 0, fmt.Sprintf("AWB%d", j))
		}
	}
	fmt.Fprintf(&b, "  r3 := y\n")
	fmt.Fprintf(&b, "  if r3 = %d goto CRIT\n", i)
	await("y", 0, "AW2")
	fmt.Fprintf(&b, "  goto START\n")
	fmt.Fprintf(&b, "CRIT:\n")
	fmt.Fprintf(&b, "  cs := %d\n", i)
	fmt.Fprintf(&b, "  rc := cs\n")
	fmt.Fprintf(&b, "  assert rc = %d\n", i)
	fmt.Fprintf(&b, "  cs := 0\n")
	fmt.Fprintf(&b, "  y := 0\n")
	fence(raFences)
	fmt.Fprintf(&b, "  b%d := 0\n", i)
	fence(raFences)
	fmt.Fprintf(&b, "end\n")
	return b.String()
}

func lamportSrc(name string, n int, tsoFences, raFences, blockingWait bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\nvals %d\n", name, n+1)
	b.WriteString("locs x y cs")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, " b%d", i)
	}
	b.WriteString("\n")
	for i := 1; i <= n; i++ {
		b.WriteString(lamportThread(i, n, tsoFences, raFences, blockingWait))
	}
	return b.String()
}

func init() {
	register(Entry{
		Name: "lamport2-sc", RobustRA: false, RobustTSO: false, Fig7: true, Threads: 2,
		Source: lamportSrc("lamport2-sc", 2, false, false, false),
	})
	register(Entry{
		Name: "lamport2-tso", RobustRA: false, RobustTSO: false, Fig7: true, Threads: 2,
		Source: lamportSrc("lamport2-tso", 2, true, false, false),
	})
	register(Entry{
		Name: "lamport2-ra", RobustRA: true, RobustTSO: true, Fig7: true, Threads: 2,
		Source: lamportSrc("lamport2-ra", 2, false, true, true),
	})
	// lamport2-3-ra — the RA-strengthened algorithm with three competing
	// threads (Trencher reports ✗⋆ because its language lacks the
	// blocking awaits).
	register(Entry{
		Name: "lamport2-3-ra", RobustRA: true, RobustTSO: true, Fig7: true, Threads: 3, Big: true,
		Source: lamportSrc("lamport2-3-ra", 3, false, true, true),
	})
}
