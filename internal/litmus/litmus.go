// Package litmus embeds the program corpus of the paper: the litmus tests
// of §2–§3 (SB, MP, IRIW, 2+2W, 2RMW, SB+RMWs and the two barrier
// variants) and the 25 concurrent algorithms of the Figure 7 evaluation.
// Each program records its expected verdicts — execution-graph robustness
// against RA (the paper's "Res" column) and state robustness against TSO
// (the "Trencher" column, adjusted for blocking instructions as discussed
// in DESIGN.md).
package litmus

import (
	"fmt"
	"sort"

	"repro/internal/lang"
	"repro/internal/parser"
)

// Entry is one corpus program.
type Entry struct {
	// Name identifies the program (matching the paper's Figure 7 row
	// names where applicable).
	Name string
	// Source is the .lit program text.
	Source string
	// RobustRA is the expected execution-graph-robustness verdict against
	// RA (Figure 7 "Res", or the verdict stated in §3 for litmus tests).
	RobustRA bool
	// RobustTSO is the expected state-robustness verdict against TSO.
	// For the four programs Trencher flags only because it lacks blocking
	// instructions (✗⋆ in Figure 7), this records the semantic verdict
	// (robust), as the paper argues.
	RobustTSO bool
	// Fig7 marks programs that appear in the paper's Figure 7 table.
	Fig7 bool
	// Threads is the paper-reported thread count (Figure 7 "#T"), for
	// cross-checking the corpus shape.
	Threads int
	// Big marks programs whose instrumented state space runs into the
	// millions; verifiers and tests should use hash-compact storage for
	// them and may skip them in short test runs.
	Big bool
}

var corpus []Entry

func register(e Entry) {
	corpus = append(corpus, e)
}

// All returns the corpus entries, litmus tests first, then Figure 7
// programs in the paper's table order.
func All() []Entry { return append([]Entry(nil), corpus...) }

// fig7Order is the paper's Figure 7 row order.
var fig7Order = []string{
	"barrier",
	"dekker-sc", "dekker-tso",
	"peterson-sc", "peterson-tso", "peterson-ra",
	"peterson-ra-dmitriy", "peterson-ra-bratosz",
	"lamport2-sc", "lamport2-tso", "lamport2-ra", "lamport2-3-ra",
	"spinlock", "spinlock4",
	"ticketlock", "ticketlock4",
	"seqlock", "nbw-w-lr-rl",
	"rcu", "rcu-offline",
	"cilk-the-wsq-sc", "cilk-the-wsq-tso",
	"chase-lev-sc", "chase-lev-tso", "chase-lev-ra",
}

// Fig7 returns the Figure 7 entries in the paper's table order.
func Fig7() []Entry {
	var out []Entry
	for _, name := range fig7Order {
		e, err := Get(name)
		if err != nil {
			panic(err)
		}
		out = append(out, e)
	}
	return out
}

// Get returns the named entry.
func Get(name string) (Entry, error) {
	for _, e := range corpus {
		if e.Name == name {
			return e, nil
		}
	}
	var names []string
	for _, e := range corpus {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return Entry{}, fmt.Errorf("litmus: no program %q (have %v)", name, names)
}

// Program parses the entry's source.
func (e Entry) Program() *lang.Program {
	return parser.MustParse(e.Source)
}

func init() {
	// --- §3 litmus tests -------------------------------------------------

	// Example 3.1 (SB, store buffering): the canonical weak behaviour of
	// RA (and TSO): both threads read 0. Not robust.
	register(Entry{
		Name: "SB", RobustRA: false, RobustTSO: false, Threads: 2,
		Source: `
program SB
vals 2
locs x y
thread t1
  x := 1
  a := y
end
thread t2
  y := 1
  b := x
end
`})

	// Example 3.2 (MP, message passing): RA supports flag-based
	// synchronization; robust.
	register(Entry{
		Name: "MP", RobustRA: true, RobustTSO: true, Threads: 2,
		Source: `
program MP
vals 2
locs x y
thread t1
  x := 1
  y := 1
end
thread t2
  a := y
  b := x
end
`})

	// Example 3.3 (IRIW): RA is non-multi-copy-atomic; not robust against
	// RA but robust against TSO.
	register(Entry{
		Name: "IRIW", RobustRA: false, RobustTSO: true, Threads: 4,
		Source: `
program IRIW
vals 2
locs x y
thread w1
  x := 1
end
thread r1
  a := x
  b := y
end
thread r2
  c := y
  d := x
end
thread w2
  y := 1
end
`})

	// LB (load buffering): RA keeps po ∪ rf acyclic, so the weak outcome
	// a = b = 1 is impossible and every RA graph is SC; robust. The
	// static conflict graph is NOT acyclic here — the two threads
	// conflict on both x and y, a doubled edge — so this row documents
	// the precision boundary: the pre-pass must keep exploring (no
	// certificate) and exploration confirms robustness.
	register(Entry{
		Name: "LB", RobustRA: true, RobustTSO: true, Threads: 2,
		Source: `
program LB
vals 2
locs x y
thread t1
  a := x
  y := 1
end
thread t2
  b := y
  x := 1
end
`})

	// CoRR (coherence of read-read): a single writer and a single
	// reader on one location. RA's per-location coherence makes every
	// graph SC; robust. The conflict graph has exactly one conflict
	// edge, so the static pre-pass discharges this row with a
	// certificate and zero states explored.
	register(Entry{
		Name: "CoRR", RobustRA: true, RobustTSO: true, Threads: 2,
		Source: `
program CoRR
vals 2
locs x
thread t1
  x := 1
end
thread t2
  a := x
  b := x
end
`})

	// disjoint-fence: thread-private data plus a shared SC fence (the
	// Ex. 3.6 FADD sugar). The fence location is RMW-pure, so its edge
	// is synchronization, not conflict: no conflict edge at all, and the
	// pre-pass certifies robustness without exploration.
	register(Entry{
		Name: "disjoint-fence", RobustRA: true, RobustTSO: true, Threads: 2,
		Source: `
program disjoint-fence
vals 2
locs x y
thread t1
  x := 1
  fence
  a := x
end
thread t2
  y := 1
  fence
  b := y
end
`})

	// Example 3.4 (2+2W): RA writes need not pick globally maximal
	// timestamps; not robust against RA, robust against TSO.
	register(Entry{
		Name: "2+2W", RobustRA: false, RobustTSO: true, Threads: 2,
		Source: `
program two-plus-two-w
vals 3
locs x y
thread t1
  x := 1
  y := 2
  a := y
end
thread t2
  y := 1
  x := 2
  b := x
end
`})

	// The write-only variant of 2+2W discussed in §4: "vacuously" state
	// robust, but not execution-graph robust — the mo of the RA run
	// diverges even though no program state distinguishes it.
	register(Entry{
		Name: "2+2W-nor", RobustRA: false, RobustTSO: true, Threads: 2,
		Source: `
program two-plus-two-w-nor
vals 3
locs x y
thread t1
  x := 1
  y := 2
end
thread t2
  y := 1
  x := 2
end
`})

	// The zero-value variant of SB discussed in §4 (both writes store the
	// initial value 0): state robust but not execution-graph robust.
	register(Entry{
		Name: "SB-zero", RobustRA: false, RobustTSO: true, Threads: 2,
		Source: `
program sb-zero
vals 2
locs x y
thread t1
  x := 0
  a := y
end
thread t2
  y := 0
  b := x
end
`})

	// Example 3.5 (2RMW): two competing CASes can never both succeed;
	// robust.
	register(Entry{
		Name: "2RMW", RobustRA: true, RobustTSO: true, Threads: 2,
		Source: `
program two-rmw
vals 2
locs x
thread t1
  a := CAS(x, 0, 1)
end
thread t2
  b := CAS(x, 0, 1)
end
`})

	// Example 3.6 (SB+RMWs): FADDs on a shared otherwise-unused location
	// act as SC fences; robust.
	register(Entry{
		Name: "SB+RMWs", RobustRA: true, RobustTSO: true, Threads: 2,
		Source: `
program sb-rmws
vals 2
locs x y f
thread t1
  x := 1
  r := FADD(f, 0)
  a := y
end
thread t2
  y := 1
  r := FADD(f, 0)
  b := x
end
`})

	// A broken variant of SB+RMWs using two different fence locations: a
	// single FADD per location has no fence effect under RA (end of
	// Example 3.6). Not robust.
	register(Entry{
		Name: "SB+RMWs-split", RobustRA: false, RobustTSO: true, Threads: 2,
		Source: `
program sb-rmws-split
vals 2
locs x y f g
thread t1
  x := 1
  r := FADD(f, 0)
  a := y
end
thread t2
  y := 1
  r := FADD(g, 0)
  b := x
end
`})

	// The BAR example of §2.3, busy-loop version: reading a stale 0 keeps
	// a thread spinning — a benign violation, but a (state and graph)
	// robustness violation nonetheless.
	register(Entry{
		Name: "BAR-loop", RobustRA: false, RobustTSO: false, Threads: 2,
		Source: `
program bar-loop
vals 2
locs x y
thread t1
  x := 1
L:
  r1 := y
  if r1 != 1 goto L
end
thread t2
  y := 1
L:
  r2 := x
  if r2 != 1 goto L
end
`})
}
