package litmus

// Extension corpus: algorithms beyond the paper's Figure 7, with verdicts
// produced by this reproduction and cross-validated against the
// operational RA machine (state robustness) — new data points in the
// spirit of §9's "alongside other existing methods". Notable findings:
//
//   - test-and-test-and-set locks are execution-graph robust even with a
//     plain-read spin loop: the stale values a spinner could observe are
//     never hbSC-connected to the lock's current owner in a way that
//     satisfies Theorem 5.1's awareness condition;
//   - double-checked locking with a release/acquire flag is robust (and
//     hence simply correct); making the flag non-atomic is flagged as a
//     data race (the §6 check) — the classic DCL bug;
//   - a bounded Treiber stack (release/acquire CAS on the top pointer,
//     per-node next links) is execution-graph robust.

func init() {
	register(Entry{
		Name: "ttas-spin", RobustRA: true, RobustTSO: true, Threads: 2,
		Source: `
program ttas-spin
vals 3
locs lock cs
thread t1
SPIN:
  r := lock
  if r != 0 goto SPIN
  c := CAS(lock, 0, 1)
  if c != 0 goto SPIN
  cs := 1
  rc := cs
  assert rc = 1
  cs := 0
  lock := 0
end
thread t2
SPIN:
  r := lock
  if r != 0 goto SPIN
  c := CAS(lock, 0, 1)
  if c != 0 goto SPIN
  cs := 2
  rc := cs
  assert rc = 2
  cs := 0
  lock := 0
end
`})

	register(Entry{
		Name: "ttas-wait", RobustRA: true, RobustTSO: true, Threads: 2,
		Source: `
program ttas-wait
vals 3
locs lock cs
thread t1
SPIN:
  wait(lock = 0)
  c := CAS(lock, 0, 1)
  if c != 0 goto SPIN
  cs := 1
  rc := cs
  assert rc = 1
  cs := 0
  lock := 0
end
thread t2
SPIN:
  wait(lock = 0)
  c := CAS(lock, 0, 1)
  if c != 0 goto SPIN
  cs := 2
  rc := cs
  assert rc = 2
  cs := 0
  lock := 0
end
`})

	// Double-checked locking: fast-path acquire load of the flag, slow
	// path under a blocking-CAS lock, release store of the flag after the
	// (non-atomic would be racy — here release/acquire) data write.
	register(Entry{
		Name: "dcl", RobustRA: true, RobustTSO: true, Threads: 2,
		Source: dclSrc("dcl", false),
	})

	// The classic DCL bug: the flag (and data) accessed non-atomically.
	// Rejected by the §6 racy-state check (note RobustTSO records *state*
	// robustness, which races do not disturb here).
	register(Entry{
		Name: "dcl-na-broken", RobustRA: false, RobustTSO: true, Threads: 2,
		Source: dclSrc("dcl-na-broken", true),
	})

	// Treiber's lock-free stack, bounded: two pushers (nodes 1 and 2) and
	// one popper racing on the top pointer with CAS; next links per node.
	register(Entry{
		Name: "treiber-stack", RobustRA: true, RobustTSO: true, Threads: 3,
		Source: `
program treiber-stack
vals 4
locs top
array next 3
thread pusher1
PUSH:
  t := top
  next[1] := t
  c := CAS(top, t, 1)
  if c != t goto PUSH
end
thread pusher2
PUSH:
  t := top
  next[2] := t
  c := CAS(top, t, 2)
  if c != t goto PUSH
end
thread popper
POP:
  t := top
  if t = 0 goto DONE
  n := next[t]
  c := CAS(top, t, n)
  if c != t goto POP
  assert t != 0
DONE:
end
`})
}

func dclSrc(name string, naFlag bool) string {
	decls := "locs flag lock\nna data\n"
	use := `USE:
  wait(flag = 1)
  v := data
  assert v = 2
end
`
	if naFlag {
		decls = "locs lock\nna flag data\n"
		// A non-atomic flag cannot be waited on; the broken variant just
		// skips the use phase (the race is already detected at the
		// flag/data accesses).
		use = "USE:\nend\n"
	}
	th := func(tn string) string {
		return "thread " + tn + `
  r := flag
  if r = 1 goto USE
  BCAS(lock, 0, 1)
  r2 := flag
  if r2 = 1 goto REL
  data := 2
  flag := 1
REL:
  lock := 0
` + use
	}
	return "program " + name + "\nvals 3\n" + decls + th("t1") + th("t2")
}
