package litmus

import (
	"fmt"
	"strings"
)

// Figure 7 corpus, part 4: user-level read-copy-update (Desnoyers et al.,
// "User-Level Implementations of Read-Copy Update", 2012).
//
// rcu — quiescent-state-based URCU with one updater and three readers.
// The updater prepares a new data version in a fresh slot, publishes it by
// switching the pointer, starts a grace period by flipping the global
// phase counter, waits (blocking) until every reader has announced the new
// phase, and only then reclaims (poisons) the old slot. Readers
// dereference the pointer inside read-side sections and report quiescent
// states between sections by copying the global phase into their
// per-thread counter — writing it only when it changed, so the counter
// carries each value at most once (the announcement is a fresh message the
// grace period can synchronize on).
//
// The protocol is robust against RA with no fences at all: every
// cross-thread obligation is a message-passing handshake (the reader's
// phase announcement is po-after its read of the flipped phase, which is
// po-after the pointer switch). The blocking waits mask exactly the benign
// grace-period stalls, which is why Trencher (no blocking instructions)
// reports ✗⋆ on this family.
//
// rcu-offline — the extended variant the paper highlights: the writer is
// not a unique thread (any thread may win the update race via CAS), and
// threads go offline (announce 0), stop communicating with the writer, and
// come back online later. Re-going online must synchronize with a
// concurrent grace period, which a plain announce-then-read cannot do
// under RA (it is a store-buffering shape); the online announcement is
// therefore paired with an SC fence on both sides, as in the user-level
// RCU implementations' rcu_thread_online (smp_mb).

func rcuReader(i int) string {
	var b strings.Builder
	w := func(s string, a ...any) { fmt.Fprintf(&b, s+"\n", a...) }
	w("thread rd%d", i)
	w("  phase := 0")
	w("  it := 0")
	w("LOOP:")
	// Read-side critical section.
	w("  r := g")
	w("  v := slot[r]")
	w("  assert v != 3")
	// Quiescent state: announce the current phase if it changed.
	w("  rq := gp")
	w("  if rq = phase goto NEXT")
	w("  c%d := rq", i)
	w("  phase := rq")
	w("NEXT:")
	w("  it := it + 1")
	w("  if it < 2 goto LOOP")
	w("end")
	return b.String()
}

func init() {
	var b strings.Builder
	b.WriteString("program rcu\nvals 4\nlocs g gp c1 c2 c3\narray slot 2\n")
	b.WriteString(`thread upd
  slot[1] := 1
  g := 1
  gp := 1
  wait(c1 = 1)
  wait(c2 = 1)
  wait(c3 = 1)
  slot[0] := 3
end
`)
	for i := 1; i <= 3; i++ {
		b.WriteString(rcuReader(i))
	}
	register(Entry{
		Name: "rcu", RobustRA: true, RobustTSO: true, Fig7: true, Threads: 4,
		Source: b.String(),
	})

	// rcu-offline: three symmetric threads. Each runs a read-side
	// section (going online with a fenced announcement), goes offline,
	// races to become the updater via CAS, and — winner or not — runs a
	// second read-side section before going offline for good. The
	// updater's grace period waits for the other threads to be offline.
	var o strings.Builder
	o.WriteString("program rcu-offline\nvals 4\nlocs g wl c1 c2 c3\narray slot 2\n")
	for i := 1; i <= 3; i++ {
		j := i%3 + 1
		k := j%3 + 1
		w := func(s string, a ...any) { fmt.Fprintf(&o, s+"\n", a...) }
		w("thread t%d", i)
		// First read-side section: online announce + fence (SB shape
		// against the updater's publish/poll pair needs a full fence on
		// both sides).
		w("  c%d := 1", i)
		w("  fence")
		w("  r := g")
		w("  v := slot[r]")
		w("  assert v != 3")
		w("  c%d := 0", i)
		// Try to become the updater.
		w("  won := CAS(wl, 0, 1)")
		w("  if won != 0 goto READER2")
		w("  slot[1] := 1")
		w("  g := 1")
		w("  fence")
		w("  wait(c%d = 0)", j)
		w("  wait(c%d = 0)", k)
		w("  slot[0] := 3")
		w("  goto DONE")
		w("READER2:")
		// Come back online for a second section.
		w("  c%d := 1", i)
		w("  fence")
		w("  r2 := g")
		w("  v2 := slot[r2]")
		w("  assert v2 != 3")
		w("  c%d := 0", i)
		w("DONE:")
		w("end")
	}
	register(Entry{
		Name: "rcu-offline", RobustRA: true, RobustTSO: true, Fig7: true, Threads: 3,
		Source: o.String(),
	})
}
