package litmus

import "fmt"

// Figure 7 corpus, part 5: work-stealing deques.
//
// cilk-the-wsq — the Cilk-5 THE protocol (Frigo, Leiserson, Randall 1998):
// the worker pops from the tail by optimistically decrementing T and then
// checking H; the thief steals from the head under a lock by incrementing
// H and then checking T. Both sides back off (restoring their counter and,
// for the worker, retrying under the thief lock) when the counters cross.
// The T-decrement/H-read and H-increment/T-read pairs are store-load
// shapes: the original protocol relies on a memory fence in both (the
// famous THE fence), so the unfenced "-sc" version is not robust, and the
// fenced "-tso" version is robust against TSO and — per Figure 7 — against
// RA as well.
//
// chase-lev — the Chase–Lev deque (SPAA 2005), owner plus two thieves.
// The owner's take decrements bottom and then reads top; thieves read top,
// then bottom, then race on a CAS of top. The "-sc" version (no fences) is
// not robust; "-tso" adds the owner's store-load fence (enough for TSO but
// not for RA, where the unordered steal-side top/bottom reads still admit
// non-SC behaviour); "-ra" also fences the steal path and the owner's
// push, following Lê et al.'s C11 Chase-Lev (PPoPP 2013), whose top reads
// are seq_cst.

func cilkSrc(name string, fenced bool) string {
	fence := ""
	if fenced {
		fence = "  fence\n"
	}
	return "program " + name + `
vals 6
locs H T lk
array q 3
thread worker
  # push task 1 and task 2
  q[0] := 1
  T := 1
  q[1] := 2
  T := 2
  it := 0
POP:
  rt := T
  rt := rt - 1
  T := rt
` + fence + `  rh := H
  if rh > rt goto CONFLICT
  v := q[rt]
  assert v = rt + 1
  goto NEXT
CONFLICT:
  T := rt + 1
  BCAS(lk, 0, 1)
  rh := H
  rt2 := T
  if rh >= rt2 goto EMPTYU
  rt2 := rt2 - 1
  T := rt2
  v := q[rt2]
  assert v = rt2 + 1
EMPTYU:
  lk := 0
NEXT:
  it := it + 1
  if it < 2 goto POP
end
thread thief
  BCAS(lk, 0, 1)
  rh := H
  H := rh + 1
` + fence + `  rt := T
  if rh >= rt goto FAIL
  v := q[rh]
  assert v = rh + 1
  goto OUT
FAIL:
  H := rh
OUT:
  lk := 0
end
`
}

// chaseLevSrc builds the Chase-Lev program. ownerFence fences the owner's
// take (between the bottom decrement and the top read); stealFence fences
// the thief's steal (between the top read and the bottom read) and the
// owner's push (publication order of top reads), per the seq_cst accesses
// of the C11 version.
func chaseLevSrc(name string, ownerFence, stealFence bool) string {
	of, sf := "", ""
	if ownerFence {
		of = "  fence\n"
	}
	if stealFence {
		sf = "  fence\n"
	}
	owner := `thread owner
  # push 2 tasks
  q[0] := 1
  bot := 1
  q[1] := 2
  bot := 2
  it := 0
TAKE:
  rb := bot
  rb := rb - 1
  bot := rb
` + of + `  rt := top
  if rt > rb goto EMPTY
  if rt = rb goto LAST
  v := q[rb]
  assert v = rb + 1
  goto NEXT
LAST:
  c := CAS(top, rt, rt + 1)
  bot := rb + 1
  if c != rt goto NEXT
  v := q[rb]
  assert v = rb + 1
  goto NEXT
EMPTY:
  bot := rb + 1
NEXT:
  it := it + 1
  if it < 2 goto TAKE
end
`
	thief := `thread %s
  rt := top
` + sf + `  rb := bot
  if rt >= rb goto FAIL
  v := q[rt]
  assert v = rt + 1
  c := CAS(top, rt, rt + 1)
FAIL:
end
`
	return "program " + name + "\nvals 6\nlocs top bot\narray q 3\n" +
		owner + fmt.Sprintf(thief, "thief1") + fmt.Sprintf(thief, "thief2")
}

func init() {
	register(Entry{
		Name: "cilk-the-wsq-sc", RobustRA: false, RobustTSO: false, Fig7: true, Threads: 2,
		Source: cilkSrc("cilk-the-wsq-sc", false),
	})
	register(Entry{
		Name: "cilk-the-wsq-tso", RobustRA: true, RobustTSO: true, Fig7: true, Threads: 2,
		Source: cilkSrc("cilk-the-wsq-tso", true),
	})
	register(Entry{
		Name: "chase-lev-sc", RobustRA: false, RobustTSO: false, Fig7: true, Threads: 3,
		Source: chaseLevSrc("chase-lev-sc", false, false),
	})
	register(Entry{
		Name: "chase-lev-tso", RobustRA: false, RobustTSO: true, Fig7: true, Threads: 3,
		Source: chaseLevSrc("chase-lev-tso", true, false),
	})
	register(Entry{
		Name: "chase-lev-ra", RobustRA: true, RobustTSO: true, Fig7: true, Threads: 3,
		Source: chaseLevSrc("chase-lev-ra", true, true),
	})
}
