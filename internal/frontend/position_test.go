package frontend

import (
	"strings"
	"testing"
)

// onlyReadsSrc trips the analysis.Vet "read but never written" lint:
// sig is only ever Loaded. The two Loads sit on lines 9 and 15.
const onlyReadsSrc = `//rocker:vals 3
package p

import "sync/atomic"

var sig atomic.Int32

func watcher() {
	if sig.Load() == 1 {
		panic("early")
	}
}

func observer() {
	if sig.Load() == 1 {
		panic("late")
	}
}

func run() {
	go watcher()
	go observer()
}
`

// TestVetFindingsCarryGoPositions pins that frontend-built programs
// report Go source positions — not 0:0 or .lit coordinates — through
// analysis.Vet findings, both via StaticFindings and through the full
// LintUnit pipeline.
func TestVetFindingsCarryGoPositions(t *testing.T) {
	u := translateOne(t, onlyReadsSrc)

	check := func(stage string, findings []Finding) {
		t.Helper()
		found := false
		for _, f := range findings {
			if !strings.Contains(f.Message, "never written") {
				continue
			}
			found = true
			if f.Severity != "warning" {
				t.Errorf("%s: lint severity = %q, want warning", stage, f.Severity)
			}
			if f.Pos.Filename != "test.go" {
				t.Errorf("%s: finding anchored in %q, want test.go", stage, f.Pos.Filename)
			}
			if f.Pos.Line != 9 && f.Pos.Line != 15 {
				t.Errorf("%s: finding at line %d, want a sig.Load() line (9 or 15)", stage, f.Pos.Line)
			}
			if f.Pos.Column == 0 {
				t.Errorf("%s: finding has no column: %v", stage, f)
			}
		}
		if !found {
			t.Errorf("%s: no 'read but never written' finding: %v", stage, findings)
		}
	}

	check("StaticFindings", StaticFindings(u))

	rep, err := LintUnit(u, LintOptions{Models: []string{"ra"}, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	check("LintUnit", rep.Findings)
}
