package frontend

import (
	"go/ast"
	"go/types"

	"repro/internal/lang"
)

// cellRef is one modeled shared cell: a package-level variable mapped
// to a .lit location (or a contiguous block of them, for arrays).
type cellRef struct {
	obj    *types.Var
	name   string   // sanitized .lit name
	base   lang.Loc // first location index
	size   int      // 1 for scalars, array length otherwise
	na     bool     // plain Go variable -> non-atomic (§6) location
	isBool bool     // atomic.Bool / bool: values are 0 or 1
}

// atomicTypeName returns the sync/atomic type name ("Int32", "Uint32",
// "Bool") when t is one of the modeled typed atomics.
func atomicTypeName(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	switch obj.Name() {
	case "Int32", "Uint32", "Bool":
		return obj.Name(), true
	}
	return "", false
}

// plainCellType reports whether t is a modeled plain (non-atomic)
// scalar type.
func plainCellType(t types.Type) (isBool, ok bool) {
	basic, isBasic := t.Underlying().(*types.Basic)
	if !isBasic {
		return false, false
	}
	switch basic.Kind() {
	case types.Int32, types.Uint32, types.Int, types.Uint, types.Int64, types.Uint64, types.Uint8, types.Int8:
		return false, true
	case types.Bool:
		return true, true
	}
	return false, false
}

// classifyCellType inspects a package variable's type: scalar/array,
// atomic/non-atomic. ok is false for anything the frontend does not
// model (structs, slices, pointers, channels, ...).
func classifyCellType(t types.Type) (size int, na, isBool, ok bool) {
	if arr, isArr := t.Underlying().(*types.Array); isArr {
		n := int(arr.Len())
		if n < 1 || n > 32 {
			return 0, false, false, false
		}
		s, na2, b, ok2 := classifyCellType(arr.Elem())
		if !ok2 || s != 1 {
			return 0, false, false, false // nested arrays unmodeled
		}
		return n, na2, b, true
	}
	if name, isAtomic := atomicTypeName(t); isAtomic {
		return 1, false, name == "Bool", true
	}
	if b, isPlain := plainCellType(t); isPlain {
		return 1, true, b, true
	}
	return 0, false, false, false
}

// cellFor resolves an identifier to a modeled cell, allocating its
// location block on first use. Locations are numbered in first-use
// order, which is deterministic for a fixed AST and independent of
// identifier names (the digest-determinism tests pin this).
func (u *unitState) cellFor(id *ast.Ident) (*cellRef, bool) {
	obj := u.tr.info.Uses[id]
	if obj == nil {
		obj = u.tr.info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() != u.tr.pkg.Scope() {
		return nil, false // not a package-level variable
	}
	if c, seen := u.cells[obj]; seen {
		return c, true
	}
	size, na, isBool, ok := classifyCellType(v.Type())
	if !ok {
		u.declinef(id, "unmodeled shared variable",
			"package variable %s has type %s, which the frontend does not model", v.Name(), v.Type())
	}
	if u.nextLoc+size > 64 {
		u.declinef(id, "too many locations",
			"unit needs more than 64 location cells")
	}
	c := &cellRef{
		obj:    v,
		name:   sanitizeName(v.Name()),
		base:   lang.Loc(u.nextLoc),
		size:   size,
		na:     na,
		isBool: isBool,
	}
	// Array names and scalar names share the .lit namespace; first-use
	// order also makes name collisions impossible to resolve lazily, so
	// uniquify eagerly against earlier cells.
	used := map[string]bool{}
	for _, prev := range u.cellList {
		used[prev.name] = true
	}
	c.name = uniqueName(c.name, used)
	u.nextLoc += size
	u.cells[obj] = c
	u.cellList = append(u.cellList, c)
	u.checkCellInit(c)
	return c, true
}

// checkCellInit declines package variables with initializers other
// than the zero value: .lit memory starts zeroed, so `var x int32 = 1`
// would be silently mistranslated. An explicit zero initializer is
// allowed.
func (u *unitState) checkCellInit(c *cellRef) {
	for _, f := range u.tr.files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				for i, name := range vs.Names {
					if u.tr.info.Defs[name] != types.Object(c.obj) {
						continue
					}
					if i < len(vs.Values) {
						if n, isConst := u.intConst(vs.Values[i]); isConst && n == 0 {
							continue
						}
					}
					u.declinef(vs, "initialized shared variable",
						"variable %s has a non-zero initializer; modeled memory starts zeroed", c.obj.Name())
				}
			}
		}
	}
}
