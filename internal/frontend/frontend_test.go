package frontend

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/prog"
)

const mpSrc = `//rocker:vals 4
package mp

import "sync/atomic"

var data int32
var flag atomic.Int32

func producer() {
	data = 1
	flag.Store(1)
}

func consumer() {
	for flag.Load() != 1 {
	}
	if data != 1 {
		panic("lost message")
	}
}

func run() {
	go producer()
	go consumer()
}
`

func translateOne(t *testing.T, src string) *Unit {
	t.Helper()
	pkg, err := TranslateSources(map[string]string{"test.go": src})
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	for _, d := range pkg.Declined {
		t.Logf("declined: %v", d)
	}
	if len(pkg.Units) != 1 {
		t.Fatalf("got %d units, want 1", len(pkg.Units))
	}
	return pkg.Units[0]
}

func TestTranslateMP(t *testing.T) {
	u := translateOne(t, mpSrc)
	p := u.Prog
	if p.ValCount != 4 {
		t.Errorf("ValCount = %d, want 4 (directive)", p.ValCount)
	}
	if len(p.Threads) != 2 {
		t.Fatalf("got %d threads, want 2", len(p.Threads))
	}
	if p.Threads[0].Name != "producer" || p.Threads[1].Name != "consumer" {
		t.Errorf("thread names = %s, %s", p.Threads[0].Name, p.Threads[1].Name)
	}
	if len(p.Locs) != 2 {
		t.Fatalf("got %d locs: %v", len(p.Locs), p.Locs)
	}
	// data is first-used by producer (thread order), and is non-atomic.
	if p.Locs[0].Name != "data" || !p.Locs[0].NA {
		t.Errorf("loc 0 = %+v, want non-atomic data", p.Locs[0])
	}
	if p.Locs[1].Name != "flag" || p.Locs[1].NA {
		t.Errorf("loc 1 = %+v, want atomic flag", p.Locs[1])
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid program: %v", err)
	}

	// The consumer's spin must be a blocking wait, not a goto loop.
	listing := EmitLit(u)
	if !strings.Contains(listing, "wait(flag = 1)") {
		t.Errorf("spin loop not lowered to wait:\n%s", listing)
	}
	if !strings.Contains(listing, "assert !(") {
		t.Errorf("panic guard not lowered to assert:\n%s", listing)
	}

	// Every instruction carries a real Go position.
	for ti, th := range u.SrcPos {
		for pc, pos := range th {
			if pos.Line == 0 {
				t.Errorf("thread %d pc %d has no source position", ti, pc)
			}
			if p.Threads[ti].Insts[pc].Line != pos.Line {
				t.Errorf("thread %d pc %d: inst.Line %d != SrcPos %d",
					ti, pc, p.Threads[ti].Insts[pc].Line, pos.Line)
			}
		}
	}

	// MP with a release store and an acquire spin is robust and race-free.
	v, err := core.Verify(p, core.Options{AbstractVals: true})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !v.Robust {
		t.Errorf("MP should be robust against RA:\n%s", core.Explain(p, v))
	}
	if v.AssertFail != nil {
		t.Errorf("assertion should hold under SC: %+v", v.AssertFail)
	}
}

func TestEmitLitRoundTrip(t *testing.T) {
	u := translateOne(t, mpSrc)
	listing := EmitLit(u)
	reparsed, err := parser.Parse(listing)
	if err != nil {
		t.Fatalf("emitted .lit does not reparse: %v\n%s", err, listing)
	}
	d1 := prog.CanonicalDigest(u.Prog)
	d2 := prog.CanonicalDigest(reparsed)
	if d1 != d2 {
		t.Errorf("reparse digest mismatch:\n%s", listing)
	}
}

func TestTranslateDeterminism(t *testing.T) {
	u1 := translateOne(t, mpSrc)
	u2 := translateOne(t, mpSrc)
	d1 := prog.CanonicalDigest(u1.Prog)
	d2 := prog.CanonicalDigest(u2.Prog)
	if d1 != d2 {
		t.Error("translating the same source twice produced different digests")
	}

	// Alpha-renaming every identifier must not change the canonical
	// digest: locations are numbered by first use, not by name.
	renamed := strings.NewReplacer(
		"data", "payload", "flag", "ready",
		"producer", "sender", "consumer", "receiver", "run", "main_unit",
	).Replace(mpSrc)
	u3 := translateOne(t, renamed)
	d3 := prog.CanonicalDigest(u3.Prog)
	if d1 != d3 {
		t.Error("alpha-renaming changed the canonical digest")
	}
}

func TestDeclines(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		construct string
	}{
		{"channel", `package p
func run() {
	ch := make(chan int)
	go func() { ch <- 1 }()
	<-ch
}`, "statement before goroutine spawn"},
		{"mutex", `package p
import "sync"
var mu sync.Mutex
func worker() { mu.Lock(); mu.Unlock() }
func run() { go worker(); go worker() }`, "unmodeled call"},
		{"pointer escape", `package p
import "sync/atomic"
var x atomic.Int32
func worker(p *atomic.Int32) { p.Store(1) }
func run() { go worker(&x); go worker(&x) }`, "non-constant goroutine argument"},
		{"unbounded loop unroll", `package p
import "sync/atomic"
var x atomic.Int32
func worker() {
	for i := 0; i < 100; i++ {
		x.Add(1)
	}
}
func run() { go worker(); go worker() }`, "oversize counted loop"},
		{"nested go", `package p
import "sync/atomic"
var x atomic.Int32
func run() {
	go func() {
		go x.Store(1)
	}()
}`, "nested goroutine"},
		{"single thread", `package p
import "sync/atomic"
var x atomic.Int32
func run() { go x.Store(1) }`, "goroutine target"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg, err := TranslateSources(map[string]string{"test.go": "//rocker:vals 4\n" + tc.src})
			if err != nil {
				t.Fatalf("translate: %v", err)
			}
			if len(pkg.Units) != 0 {
				t.Fatalf("unit should have been declined")
			}
			if len(pkg.Declined) != 1 {
				t.Fatalf("got %d declines, want 1: %v", len(pkg.Declined), pkg.Declined)
			}
			d := pkg.Declined[0]
			if d.Construct != tc.construct {
				t.Errorf("construct = %q (%s), want %q", d.Construct, d.Reason, tc.construct)
			}
			if d.Pos.Line == 0 {
				t.Errorf("decline has no source position: %v", d)
			}
		})
	}
}
