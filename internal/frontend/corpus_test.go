package frontend

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/diffcheck"
	"repro/internal/parser"
	"repro/internal/prog"
)

// The examples/go corpus, with pinned per-model verdicts. The golden
// .lit files committed next to the sources are regenerated with
//
//	go run ./cmd/rocker golint -q -norepair -models ra -emit examples/go/<dir> examples/go/<dir>
//
// and this test fails if translation output drifts from them.
var corpus = []struct {
	dir       string // directory under examples/go; also the unit name
	ra        bool
	sra       bool
	tso       *bool // nil: too expensive to pin here (see skip notes below)
	tsoSlow   bool  // only check tso without -short
	witnesses []int // pinned "not robust" witness lines (ra leg)
	repairs   []int // pinned fence-repair suggestion lines
}{
	{dir: "chaselev", ra: false, sra: false, tso: pb(false),
		witnesses: []int{51}, repairs: []int{29, 51}},
	{dir: "dcl", ra: true, sra: true, tso: pb(true)},
	{dir: "dekker", ra: false, sra: false, tso: pb(false),
		witnesses: []int{27}, repairs: []int{20, 27}},
	{dir: "rcu", ra: true, sra: true, tso: pb(true), tsoSlow: true},
	// seqlock is TSO-robust, but the attack-based checker needs ~30M
	// states (~2 min); pin it manually with
	// `rocker golint -models tso -max 30000000 examples/go/seqlock`.
	{dir: "seqlock", ra: true, sra: true},
	{dir: "spsc", ra: true, sra: true, tso: pb(true)},
	{dir: "ticketlock", ra: true, sra: true, tso: pb(true)},
}

func pb(b bool) *bool { return &b }

func corpusDir(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join("..", "..", "examples", "go", dir)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("corpus dir missing: %v", err)
	}
	return path
}

func translateCorpus(t *testing.T, dir string) *Unit {
	t.Helper()
	path := corpusDir(t, dir)
	files, err := filepath.Glob(filepath.Join(path, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no Go files in %s: %v", path, err)
	}
	pkg, err := TranslateFiles(files)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	for _, d := range pkg.Declined {
		t.Errorf("unexpected decline: %v", d)
	}
	if len(pkg.Units) != 1 {
		t.Fatalf("got %d units, want 1", len(pkg.Units))
	}
	return pkg.Units[0]
}

func TestCorpusVerdicts(t *testing.T) {
	for _, tc := range corpus {
		t.Run(tc.dir, func(t *testing.T) {
			u := translateCorpus(t, tc.dir)
			if u.Name != tc.dir {
				t.Errorf("unit name = %q, want %q (name the driver after the example)", u.Name, tc.dir)
			}

			models := []string{"ra", "sra"}
			if tc.tso != nil && (!tc.tsoSlow || !testing.Short()) {
				models = append(models, "tso")
			}
			rep, err := LintUnit(u, LintOptions{
				Models:    models,
				MaxStates: 30_000_000,
				Workers:   1, // deterministic first-witness selection
			})
			if err != nil {
				t.Fatalf("lint: %v", err)
			}
			if rep.Verdicts["ra"] != tc.ra {
				t.Errorf("ra verdict = %v, want %v", rep.Verdicts["ra"], tc.ra)
			}
			if rep.Verdicts["sra"] != tc.sra {
				t.Errorf("sra verdict = %v, want %v", rep.Verdicts["sra"], tc.sra)
			}
			if len(models) == 3 && rep.Verdicts["tso"] != *tc.tso {
				t.Errorf("tso verdict = %v, want %v", rep.Verdicts["tso"], *tc.tso)
			}

			// Every finding must carry a real position in the example's file.
			base := filepath.Base(u.File)
			var witnesses, repairs []int
			for _, f := range rep.Findings {
				if filepath.Base(f.Pos.Filename) != base || f.Pos.Line == 0 {
					t.Errorf("finding not anchored in %s: %v", base, f)
				}
				if strings.Contains(f.Message, "witness:") {
					witnesses = append(witnesses, f.Pos.Line)
				}
				if strings.Contains(f.Message, "suggested fix:") {
					repairs = append(repairs, f.Pos.Line)
				}
			}
			if tc.ra {
				for _, f := range rep.Findings {
					if f.Severity == "error" {
						t.Errorf("robust example has an error finding: %v", f)
					}
				}
			}
			if got, want := dedupSorted(witnesses), tc.witnesses; !equalInts(got, want) {
				t.Errorf("witness lines = %v, want %v", got, want)
			}
			if got, want := dedupSorted(repairs), tc.repairs; !equalInts(got, want) {
				t.Errorf("repair lines = %v, want %v", got, want)
			}
		})
	}
}

// TestCorpusGolden pins the committed .lit listings: translation output
// must match the goldens byte for byte, and the goldens must reparse to
// the very same program (same canonical digest).
func TestCorpusGolden(t *testing.T) {
	for _, tc := range corpus {
		t.Run(tc.dir, func(t *testing.T) {
			u := translateCorpus(t, tc.dir)
			goldenPath := filepath.Join(corpusDir(t, tc.dir), tc.dir+".lit")
			golden, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("golden missing (regenerate with rocker golint -emit): %v", err)
			}
			listing := EmitLit(u)
			if listing != string(golden) {
				t.Errorf("translation drifted from %s; regenerate with rocker golint -emit", goldenPath)
			}
			reparsed, err := parser.Parse(string(golden))
			if err != nil {
				t.Fatalf("golden does not reparse: %v", err)
			}
			if prog.CanonicalDigest(reparsed) != prog.CanonicalDigest(u.Prog) {
				t.Errorf("golden reparses to a different program than the translation")
			}
		})
	}
}

// TestCorpusDiffcheck runs every translated example through the
// differential battery: all verdict routes (seq/par, prune, reduce,
// RA/TSO machines where the bounds allow) must agree on the corpus.
func TestCorpusDiffcheck(t *testing.T) {
	for _, tc := range corpus {
		t.Run(tc.dir, func(t *testing.T) {
			u := translateCorpus(t, tc.dir)
			rep := diffcheck.CheckProgram(u.Prog, diffcheck.Config{})
			for _, f := range rep.Findings {
				t.Errorf("route disagreement: %v", f)
			}
			t.Logf("verdict=%s skipped=%v", rep.Verdict, rep.Skipped)
		})
	}
}

func dedupSorted(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
