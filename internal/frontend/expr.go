package frontend

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lang"
)

// lowerExpr translates a Go expression to a .lit expression. Memory
// accesses inside the expression — atomic method calls, plain reads of
// shared variables, inlined calls — are lifted, in evaluation order,
// into instructions that load into fresh registers; the returned
// expression is pure (registers and constants only).
func (t *threadLowering) lowerExpr(e ast.Expr) *lang.Expr {
	// Compile-time constants fold first: named consts, untyped
	// literals, constant arithmetic, true/false.
	if v, ok := t.constVal(e); ok {
		return lang.Const(v)
	}
	switch ex := e.(type) {
	case *ast.ParenExpr:
		return t.lowerExpr(ex.X)

	case *ast.Ident:
		obj := t.u.tr.info.Uses[ex]
		if r, ok := t.regs[obj]; ok {
			return lang.RegE(r)
		}
		if c, isCell := t.u.cellFor(ex); isCell {
			if !c.na {
				t.u.declinef(ex, "atomic value access",
					"atomic variable %s used without a method call (copying an atomic is meaningless)", ex.Name)
			}
			r := t.tempReg(ex.Name)
			t.emit(lang.Inst{Kind: lang.IRead, Reg: r, Mem: lang.MemRef{Base: c.base, Size: 1}}, ex)
			return lang.RegE(r)
		}
		t.u.declinef(ex, "unmodeled identifier",
			"%s is neither a local variable nor a modeled shared variable", ex.Name)

	case *ast.IndexExpr:
		mem, c := t.cellIndex(ex)
		if !c.na {
			t.u.declinef(ex, "atomic value access",
				"atomic array %s indexed without a method call", c.obj.Name())
		}
		r := t.tempReg(c.obj.Name())
		t.emit(lang.Inst{Kind: lang.IRead, Reg: r, Mem: mem}, ex)
		return lang.RegE(r)

	case *ast.CallExpr:
		return t.lowerCallExpr(ex)

	case *ast.UnaryExpr:
		switch ex.Op {
		case token.NOT:
			return lang.Not(t.lowerExpr(ex.X))
		case token.SUB:
			// Negation in the wrap-around domain: 0 - x.
			return lang.Bin(lang.OpSub, lang.Const(0), t.lowerExpr(ex.X))
		case token.AND:
			t.u.declinef(ex, "address-of",
				"&%s escapes the modeled memory", exprString(ex.X))
		}
		t.u.declinef(ex, "unary operator", "operator %s is not modeled", ex.Op)

	case *ast.BinaryExpr:
		op, ok := binOps[ex.Op]
		if !ok {
			t.u.declinef(ex, "binary operator", "operator %s is not modeled", ex.Op)
		}
		l := t.lowerExpr(ex.X)
		if ex.Op == token.LAND || ex.Op == token.LOR {
			// Go short-circuits; lifting a memory access out of the
			// right operand would make it unconditional.
			if t.hasMemEffects(ex.Y) {
				t.u.declinef(ex, "short-circuit memory access",
					"right operand of %s reads shared memory, which Go evaluates conditionally", ex.Op)
			}
		}
		return lang.Bin(op, l, t.lowerExpr(ex.Y))
	}
	t.u.declinef(e, "unsupported expression", "%T is outside the modeled subset", e)
	panic("unreachable")
}

var binOps = map[token.Token]lang.BinOp{
	token.ADD:  lang.OpAdd,
	token.SUB:  lang.OpSub,
	token.MUL:  lang.OpMul,
	token.REM:  lang.OpMod,
	token.EQL:  lang.OpEq,
	token.NEQ:  lang.OpNe,
	token.LSS:  lang.OpLt,
	token.LEQ:  lang.OpLe,
	token.GTR:  lang.OpGt,
	token.GEQ:  lang.OpGe,
	token.LAND: lang.OpAnd,
	token.LOR:  lang.OpOr,
}

// lowerCallExpr handles calls in expression position: atomic methods,
// integer conversions, and inlinable same-package functions.
func (t *threadLowering) lowerCallExpr(call *ast.CallExpr) *lang.Expr {
	// Conversions like int32(e) change the Go type, not the modeled
	// value.
	if tv, ok := t.u.tr.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return t.lowerExpr(call.Args[0])
	}
	if mem, c, method, ok := t.atomicCall(call); ok {
		switch method {
		case "Load":
			r := t.tempReg(c.obj.Name())
			t.emit(lang.Inst{Kind: lang.IRead, Reg: r, Mem: mem}, call)
			return lang.RegE(r)
		case "Add":
			// Go's Add returns the NEW value; FADD returns the OLD one.
			d := t.lowerExpr(call.Args[0])
			r := t.tempReg(c.obj.Name())
			t.emit(lang.Inst{Kind: lang.IFADD, Reg: r, Mem: mem, E: d}, call)
			return lang.Bin(lang.OpAdd, lang.RegE(r), d)
		case "Swap":
			v := t.lowerExpr(call.Args[0])
			r := t.tempReg(c.obj.Name())
			t.emit(lang.Inst{Kind: lang.IXCHG, Reg: r, Mem: mem, E: v}, call)
			return lang.RegE(r)
		case "CompareAndSwap":
			// Go's CAS returns a bool; .lit CAS returns the old value.
			old := t.lowerExpr(call.Args[0])
			niu := t.lowerExpr(call.Args[1])
			r := t.tempReg(c.obj.Name())
			t.emit(lang.Inst{Kind: lang.ICAS, Reg: r, Mem: mem, ER: old, EW: niu}, call)
			return lang.Bin(lang.OpEq, lang.RegE(r), old)
		case "Store":
			t.u.declinef(call, "Store in expression", "Store has no value")
		}
	}
	if fd := t.u.inlinableCallee(call); fd != nil {
		r, hasResult := t.inlineCall(call, fd)
		if !hasResult {
			t.u.declinef(call, "void call in expression",
				"%s returns nothing", fd.Name.Name)
		}
		return lang.RegE(r)
	}
	t.u.declinef(call, "unmodeled call", "call to %s is outside the modeled subset", exprString(call.Fun))
	panic("unreachable")
}

// atomicCall recognizes a method call on a modeled atomic cell and
// returns the resolved memory operand.
func (t *threadLowering) atomicCall(call *ast.CallExpr) (mem lang.MemRef, c *cellRef, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return
	}
	if t.u.tr.info.Selections[sel] == nil {
		return // qualified identifier (pkg.Func), not a method call
	}
	method = sel.Sel.Name
	switch method {
	case "Load", "Store", "Add", "Swap", "CompareAndSwap":
	default:
		return
	}
	switch recv := sel.X.(type) {
	case *ast.Ident:
		cell, isCell := t.u.cellFor(recv)
		if !isCell || cell.na || cell.size != 1 {
			return
		}
		return lang.MemRef{Base: cell.base, Size: 1}, cell, method, true
	case *ast.IndexExpr:
		m, cell := t.cellIndex(recv)
		if cell.na {
			return
		}
		return m, cell, method, true
	}
	return
}

// cellIndex resolves arr[i] over a modeled array cell. The index is
// lowered first (its own memory reads lift ahead of the access).
func (t *threadLowering) cellIndex(ex *ast.IndexExpr) (lang.MemRef, *cellRef) {
	id, isIdent := ex.X.(*ast.Ident)
	if !isIdent {
		t.u.declinef(ex, "indexed expression", "only modeled package arrays can be indexed")
	}
	c, isCell := t.u.cellFor(id)
	if !isCell {
		t.u.declinef(ex, "indexed expression",
			"%s is not a modeled shared array", id.Name)
	}
	if c.size == 1 {
		t.u.declinef(ex, "indexed scalar", "%s is not an array", id.Name)
	}
	idx := t.lowerExpr(ex.Index)
	return lang.MemRef{Base: c.base, Size: c.size, Index: idx}, c
}

// constVal folds e when the type checker proved it constant, checking
// the value against the unit's domain [0, vals).
func (t *threadLowering) constVal(e ast.Expr) (lang.Val, bool) {
	n, ok := t.u.intConst(e)
	if !ok {
		if tv, has := t.u.tr.info.Types[e]; has && tv.Value != nil {
			t.u.declinef(e, "non-integer constant",
				"constant %s is not a modelable integer or bool", tv.Value)
		}
		return 0, false
	}
	return t.u.domainVal(n, e), true
}

// hasMemEffects conservatively reports whether evaluating e touches
// shared memory or calls anything: used to reject lifting out of
// short-circuit positions and to gate the blocking spin patterns.
func (t *threadLowering) hasMemEffects(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			// Type conversions are pure.
			if tv, ok := t.u.tr.info.Types[x.Fun]; ok && tv.IsType() {
				return true
			}
			found = true
		case *ast.Ident:
			if obj := t.u.tr.info.Uses[x]; obj != nil {
				if v, isVar := obj.(*types.Var); isVar && v.Parent() == t.u.tr.pkg.Scope() {
					found = true // package variable: a shared read
				}
			}
		}
		return !found
	})
	return found
}

// exprString renders a short description of an expression for
// diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	}
	return "expression"
}
