// Package frontend lifts a practical subset of real concurrent Go into
// the toy language of internal/lang, bridging litmus-scale inputs to
// production-scale ones (ROADMAP item 3). It is a static-analysis pass
// built entirely on the standard library's go/ast, go/parser and
// go/types: no code is executed, and nothing outside the stdlib is
// imported.
//
// The modeled subset is chosen to cover the shapes the paper's corpus
// gestures at (seqlocks, ticket locks, work-stealing deques, RCU):
//
//   - package-level sync/atomic typed atomics (atomic.Int32,
//     atomic.Uint32, atomic.Bool) become release/acquire locations;
//     Load/Store/Add/Swap/CompareAndSwap map to reads, writes, FADD,
//     XCHG and CAS;
//   - package-level plain int32/uint32/int/bool variables become
//     non-atomic (§6) locations;
//   - fixed-size arrays of either become .lit arrays with dynamically
//     evaluated indices;
//   - each `go` statement of a driver function spawns a thread; the
//     driver's trailing statements (after the last spawn) form a final
//     "main" thread;
//   - counted loops with constant bounds are unrolled; unbounded `for`
//     loops become goto loops; the two blocking spin shapes
//     `for x.Load() != v {}` and `for !x.CompareAndSwap(o, n) {}`
//     become the blocking wait/BCAS primitives (see docs/LANGUAGE.md on
//     why busy-wait loops must not be modeled as repeated loads);
//   - calls to small same-package functions are inlined;
//   - `if cond { panic(...) }` becomes an SC-checked assertion.
//
// Values are modeled over the bounded wrap-around domain [0, vals) of
// the paper's Example 2.2; the per-file directive `//rocker:vals N`
// picks the bound (default 4). This is an abstraction: Go integers do
// not wrap at N, so bounds must be chosen large enough that the modeled
// protocol never exceeds them (rocker vet flags oversize constants).
//
// Everything outside the subset is DECLINED with a per-construct reason
// and a source position, never mistranslated: channels, mutexes,
// selects, defers, pointers and escaping addresses, unbounded counted
// loops, calls to unknown functions, and shared variables that are also
// accessed outside the concurrency unit (the translation is only sound
// if the unit provably shares nothing but the modeled cells).
//
// Every emitted instruction carries its Go source position (file, line,
// column), so downstream findings — analysis.Vet lints, robustness
// witnesses, fence-repair suggestions — anchor to real Go lines.
package frontend

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lang"
)

// DefaultValCount is the value-domain bound used when a file carries no
// //rocker:vals directive.
const DefaultValCount = 4

// Unit is one translated concurrency unit: a driver function, the
// threads it spawns, and the shared cells they use.
type Unit struct {
	// Name is the driver function's name; File the file declaring it.
	Name string
	File string
	// Pos is the driver's declaration position.
	Pos token.Position
	// Prog is the translated program. Prog.Name == Name.
	Prog *lang.Program
	// SrcPos maps every instruction (thread index, pc) to the Go source
	// position it was lowered from.
	SrcPos [][]token.Position
	// Cells names the Go package variables backing each location, in
	// location order (arrays contribute one entry per cell).
	Cells []string

	// members are the function objects whose bodies the unit lowered;
	// cellObjs the package variables it modeled. Both feed the
	// exclusivity check.
	members  map[types.Object]bool
	cellObjs map[types.Object]bool
}

// PosAt returns the Go position of instruction pc of thread tid.
func (u *Unit) PosAt(tid lang.Tid, pc int) token.Position {
	if int(tid) < len(u.SrcPos) && pc < len(u.SrcPos[tid]) {
		return u.SrcPos[tid][pc]
	}
	return token.Position{Filename: u.File}
}

// FindPos looks up a Go position by the (line, col) pair stored in the
// instructions themselves — the shape analysis.Vet findings carry.
func (u *Unit) FindPos(line, col int) token.Position {
	for _, th := range u.SrcPos {
		for _, p := range th {
			if p.Line == line && p.Column == col {
				return p
			}
		}
	}
	return token.Position{Filename: u.File, Line: line, Column: col}
}

// Declined records a concurrency unit the frontend refused to
// translate, with the construct and position that disqualified it.
type Declined struct {
	Name      string // driver function name
	File      string
	Pos       token.Position // position of the offending construct
	Construct string         // e.g. "channel type", "unbounded counted loop"
	Reason    string
}

func (d *Declined) Error() string {
	return fmt.Sprintf("%s: cannot translate %s: %s (%s)", d.Pos, d.Name, d.Construct, d.Reason)
}

// Package is the result of translating one Go package: the units that
// translated, and the ones that were declined.
type Package struct {
	PkgName  string
	Units    []*Unit
	Declined []*Declined
}

// Translator holds the parsed and type-checked package.
type Translator struct {
	fset  *token.FileSet
	files []*ast.File
	info  *types.Info
	pkg   *types.Package
	// vals is the per-file value bound from //rocker:vals directives.
	vals map[*ast.File]int
	// funcDecls maps function objects to their declarations, for
	// spawn and inline resolution.
	funcDecls map[types.Object]*ast.FuncDecl
}

var valsDirective = regexp.MustCompile(`^//rocker:vals\s+(\d+)\s*$`)

// TranslateFiles parses, type-checks and translates the given Go files
// as a single package. Type errors fail the whole batch (the frontend
// must never lower code whose types it cannot trust).
func TranslateFiles(paths []string) (*Package, error) {
	srcs := make(map[string]string, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		srcs[p] = string(data)
	}
	return TranslateSources(srcs)
}

// TranslateSources is TranslateFiles over in-memory file contents,
// keyed by file name.
func TranslateSources(srcs map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	names := make([]string, 0, len(srcs))
	for name := range srcs {
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, srcs[name], parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("frontend: no input files")
	}
	pkgName := files[0].Name.Name
	for _, f := range files[1:] {
		if f.Name.Name != pkgName {
			return nil, fmt.Errorf("frontend: files span packages %s and %s", pkgName, f.Name.Name)
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgName, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("frontend: type check: %w", err)
	}

	tr := &Translator{
		fset:      fset,
		files:     files,
		info:      info,
		pkg:       pkg,
		vals:      map[*ast.File]int{},
		funcDecls: map[types.Object]*ast.FuncDecl{},
	}
	for _, f := range files {
		tr.vals[f] = fileVals(f)
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil {
				if obj := info.Defs[fd.Name]; obj != nil {
					tr.funcDecls[obj] = fd
				}
			}
		}
	}
	return tr.translate()
}

// fileVals extracts the //rocker:vals directive, if any.
func fileVals(f *ast.File) int {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if m := valsDirective.FindStringSubmatch(c.Text); m != nil {
				if n, err := strconv.Atoi(m[1]); err == nil && n >= 2 && n <= 64 {
					return n
				}
			}
		}
	}
	return DefaultValCount
}

// translate discovers and lowers every concurrency unit: a top-level
// function whose body spawns goroutines.
func (tr *Translator) translate() (*Package, error) {
	out := &Package{PkgName: tr.pkg.Name()}
	for _, f := range tr.files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil || !containsGo(fd.Body) {
				continue
			}
			unit, decl := tr.translateUnit(f, fd)
			if decl != nil {
				out.Declined = append(out.Declined, decl)
			} else {
				out.Units = append(out.Units, unit)
			}
		}
	}
	// The exclusivity check needs the full unit list: every cell a unit
	// models must be untouched outside that unit's member functions.
	for i := 0; i < len(out.Units); {
		if decl := tr.checkExclusive(out.Units[i]); decl != nil {
			out.Declined = append(out.Declined, decl)
			out.Units = append(out.Units[:i], out.Units[i+1:]...)
			continue
		}
		i++
	}
	return out, nil
}

// containsGo reports whether the function body spawns goroutines at its
// top level (directly or via a top-level spawn loop). Deeper `go`
// statements make the function a unit candidate too — the driver scan
// then declines it with a precise reason instead of ignoring it.
func containsGo(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// unitState carries one unit's lowering state.
type unitState struct {
	tr       *Translator
	file     *ast.File
	driver   *ast.FuncDecl
	valCount int

	cells    map[types.Object]*cellRef
	cellList []*cellRef
	nextLoc  int

	// members are the functions whose bodies this unit lowers (driver,
	// spawned functions, inlined callees): the exclusivity domain.
	members map[types.Object]bool

	threads []threadResult
	// usedCellIdents counts lowered references, for the exclusivity
	// cross-check.
	unitName string
}

type threadResult struct {
	name     string
	insts    []lang.Inst
	pos      []token.Position
	numRegs  int
	regNames []string
}

// decline aborts the current unit's lowering via panic; translateUnit
// recovers it. Using panics keeps the lowering code linear — every
// construct check would otherwise thread an error through a dozen
// levels of recursion.
type declineError struct {
	pos       token.Position
	construct string
	reason    string
}

func (u *unitState) declinef(at ast.Node, construct, format string, args ...any) {
	panic(&declineError{
		pos:       u.tr.fset.Position(at.Pos()),
		construct: construct,
		reason:    fmt.Sprintf(format, args...),
	})
}

// translateUnit lowers one driver function.
func (tr *Translator) translateUnit(f *ast.File, fd *ast.FuncDecl) (unit *Unit, decl *Declined) {
	u := &unitState{
		tr:       tr,
		file:     f,
		driver:   fd,
		valCount: tr.vals[f],
		cells:    map[types.Object]*cellRef{},
		members:  map[types.Object]bool{},
		unitName: fd.Name.Name,
	}
	u.members[tr.info.Defs[fd.Name]] = true
	defer func() {
		if r := recover(); r != nil {
			de, ok := r.(*declineError)
			if !ok {
				panic(r)
			}
			unit = nil
			decl = &Declined{
				Name:      fd.Name.Name,
				File:      tr.fset.Position(fd.Pos()).Filename,
				Pos:       de.pos,
				Construct: de.construct,
				Reason:    de.reason,
			}
		}
	}()

	u.lowerDriver()

	prog := &lang.Program{
		Name:     sanitizeName(fd.Name.Name),
		ValCount: u.valCount,
	}
	for _, c := range u.cellList {
		if c.size == 1 {
			prog.Locs = append(prog.Locs, lang.LocInfo{Name: c.name, NA: c.na})
		} else {
			for i := 0; i < c.size; i++ {
				prog.Locs = append(prog.Locs, lang.LocInfo{Name: fmt.Sprintf("%s[%d]", c.name, i), NA: c.na})
			}
		}
	}
	unit = &Unit{
		Name:     fd.Name.Name,
		File:     tr.fset.Position(fd.Pos()).Filename,
		Pos:      tr.fset.Position(fd.Pos()),
		Prog:     prog,
		members:  u.members,
		cellObjs: map[types.Object]bool{},
	}
	for _, c := range u.cellList {
		unit.cellObjs[c.obj] = true
		for i := 0; i < c.size; i++ {
			unit.Cells = append(unit.Cells, c.obj.Name())
		}
	}
	usedNames := map[string]bool{}
	for _, th := range u.threads {
		name := uniqueName(sanitizeName(th.name), usedNames)
		prog.Threads = append(prog.Threads, lang.SeqProg{
			Name:     name,
			Insts:    th.insts,
			NumRegs:  th.numRegs,
			RegNames: th.regNames,
		})
		unit.SrcPos = append(unit.SrcPos, th.pos)
	}
	if len(prog.Threads) < 2 {
		u.declinef(fd, "single-threaded unit",
			"unit spawns %d thread(s); robustness needs at least two", len(prog.Threads))
	}
	if err := prog.Validate(); err != nil {
		u.declinef(fd, "validation", "translated program is invalid: %v", err)
	}
	return unit, nil
}

// checkExclusive verifies that every cell the unit models is referenced
// only inside the unit's member functions: any outside access (another
// function reading a counter, main() printing a result) would make the
// model unsound, so the unit is declined instead.
func (tr *Translator) checkExclusive(u *Unit) *Declined {
	for _, f := range tr.files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := tr.info.Defs[fd.Name]
			if u.members[obj] {
				continue
			}
			var bad *ast.Ident
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if bad != nil {
					return false
				}
				if id, ok := n.(*ast.Ident); ok {
					if o := tr.info.Uses[id]; o != nil && u.cellObjs[o] {
						bad = id
					}
				}
				return true
			})
			if bad != nil {
				return &Declined{
					Name:      u.Name,
					File:      u.File,
					Pos:       tr.fset.Position(bad.Pos()),
					Construct: "shared cell escapes the unit",
					Reason: fmt.Sprintf("variable %s is also accessed in %s, outside the unit",
						bad.Name, fd.Name.Name),
				}
			}
		}
	}
	return nil
}

// litKeywords are identifiers reserved by the .lit grammar; Go names
// colliding with them are suffixed during emission.
var litKeywords = map[string]bool{
	"program": true, "vals": true, "locs": true, "na": true, "array": true,
	"thread": true, "end": true, "goto": true, "if": true, "wait": true,
	"assert": true, "fence": true, "skip": true,
	"CAS": true, "FADD": true, "XCHG": true, "BCAS": true, "bcas": true,
}

// sanitizeName makes a Go identifier safe as a .lit identifier.
func sanitizeName(s string) string {
	if s == "" {
		return "x"
	}
	if litKeywords[s] || strings.HasPrefix(s, "__") {
		return s + "_"
	}
	return s
}

// uniqueName suffixes name until it is unused, then records it.
func uniqueName(name string, used map[string]bool) string {
	out := name
	for i := 2; used[out]; i++ {
		out = fmt.Sprintf("%s%d", name, i)
	}
	used[out] = true
	return out
}

// relPath shortens a path for display, preferring the working
// directory-relative form golint reports.
func relPath(p string) string {
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, p); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
	}
	return p
}
