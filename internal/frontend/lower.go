package frontend

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/lang"
)

// maxUnroll bounds loop unrolling and spawn-loop expansion: beyond it
// the translation would explode rather than model.
const maxUnroll = 32

// maxInlineDepth bounds the call-inlining stack.
const maxInlineDepth = 8

// threadLowering lowers one thread's body into a .lit instruction
// sequence.
type threadLowering struct {
	u        *unitState
	name     string
	insts    []lang.Inst
	pos      []token.Position
	regs     map[types.Object]lang.Reg
	regNames []string
	regUsed  map[string]bool
	loops    []*loopFrame
	rets     []*retFrame
	inlining []types.Object
}

// loopFrame collects forward jumps out of a loop, patched when the
// loop's extent is known.
type loopFrame struct {
	breaks    []int
	continues []int
}

// retFrame is one return target: the thread end, or an inlined call's
// join point.
type retFrame struct {
	resultReg lang.Reg
	hasResult bool
	joins     []int
}

func (u *unitState) newThread(name string) *threadLowering {
	return &threadLowering{
		u:       u,
		name:    name,
		regs:    map[types.Object]lang.Reg{},
		regUsed: map[string]bool{},
		rets:    []*retFrame{{}},
	}
}

func (u *unitState) finishThread(t *threadLowering) {
	t.patchAll(t.rets[0].joins, len(t.insts))
	u.threads = append(u.threads, threadResult{
		name:     t.name,
		insts:    t.insts,
		pos:      t.pos,
		numRegs:  len(t.regNames),
		regNames: t.regNames,
	})
}

// emit appends an instruction stamped with the Go position of at, and
// returns its index (for jump patching).
func (t *threadLowering) emit(in lang.Inst, at ast.Node) int {
	p := t.u.tr.fset.Position(at.Pos())
	in.Line, in.Col = p.Line, p.Column
	t.insts = append(t.insts, in)
	t.pos = append(t.pos, p)
	return len(t.insts) - 1
}

func (t *threadLowering) patch(i, target int) { t.insts[i].Target = target }

func (t *threadLowering) patchAll(is []int, target int) {
	for _, i := range is {
		t.patch(i, target)
	}
}

// tempReg allocates a fresh register named after hint (uniquified per
// thread).
func (t *threadLowering) tempReg(hint string) lang.Reg {
	if len(t.regNames) >= 64 {
		t.u.declinef(t.u.driver, "too many registers", "thread %s needs more than 64 registers", t.name)
	}
	t.regNames = append(t.regNames, uniqueName(sanitizeName(hint), t.regUsed))
	return lang.Reg(len(t.regNames) - 1)
}

// defineReg binds a Go local variable to a register, reusing the
// binding on redefinition (inlined calls re-enter the same objects).
func (t *threadLowering) defineReg(obj types.Object, name string) lang.Reg {
	if r, ok := t.regs[obj]; ok {
		return r
	}
	r := t.tempReg(name)
	t.regs[obj] = r
	return r
}

// ---------------------------------------------------------------------------
// Driver scan: partition the driver body into spawns and a trailing
// "main" thread.

func (u *unitState) lowerDriver() {
	fd := u.driver
	if fd.Type.Params.NumFields() > 0 || fd.Type.Results.NumFields() > 0 {
		u.declinef(fd, "driver signature", "a concurrency unit's driver must take and return nothing")
	}
	body := fd.Body.List
	last := -1
	for i, st := range body {
		if u.isSpawn(st) {
			last = i
		}
	}
	if last == -1 {
		// containsGo found a goroutine, but none is a top-level spawn.
		at := firstGoStmt(fd.Body)
		u.declinef(at, "nested goroutine",
			"go statements must be top-level statements of the driver (or of a counted spawn loop)")
	}
	for i := 0; i <= last; i++ {
		st := body[i]
		if !u.isSpawn(st) {
			u.declinef(st, "statement before goroutine spawn",
				"modeled memory starts zeroed, so no statement may run before all threads are spawned")
		}
		u.lowerSpawn(st)
	}
	if tail := body[last+1:]; len(tail) > 0 {
		t := u.newThread(fd.Name.Name)
		t.lowerBlock(tail)
		u.finishThread(t)
	}
}

func firstGoStmt(body *ast.BlockStmt) ast.Node {
	var at ast.Node = body
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok && at == ast.Node(body) {
			at = g
		}
		return at == ast.Node(body)
	})
	return at
}

// isSpawn reports whether st is a `go` statement or a counted loop
// containing only `go` statements (a spawn loop).
func (u *unitState) isSpawn(st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.GoStmt:
		return true
	case *ast.ForStmt:
		if _, ok := u.countedHeader(s); !ok {
			return false
		}
		if len(s.Body.List) == 0 {
			return false
		}
		for _, inner := range s.Body.List {
			if _, ok := inner.(*ast.GoStmt); !ok {
				return false
			}
		}
		return true
	}
	return false
}

func (u *unitState) lowerSpawn(st ast.Stmt) {
	switch s := st.(type) {
	case *ast.GoStmt:
		u.spawnGo(s.Call, nil)
	case *ast.ForStmt:
		h, _ := u.countedHeader(s)
		if h.count > maxUnroll {
			u.declinef(s, "oversize spawn loop", "spawn loop expands to %d goroutines (limit %d)", h.count, maxUnroll)
		}
		for k := h.from; k < h.from+h.count; k++ {
			for _, inner := range s.Body.List {
				u.spawnGo(inner.(*ast.GoStmt).Call, map[types.Object]int64{h.obj: k})
			}
		}
	}
}

// spawnGo lowers one spawned goroutine into a thread. bind carries the
// spawn-loop index value, if the spawn sits in an unrolled loop.
func (u *unitState) spawnGo(call *ast.CallExpr, bind map[types.Object]int64) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := u.tr.info.Uses[fun]
		fd := u.tr.funcDecls[obj]
		if fd == nil || fd.Body == nil {
			u.declinef(call, "goroutine target",
				"%s is not a same-package named function or function literal", fun.Name)
		}
		if fd.Type.Results.NumFields() > 0 {
			u.declinef(call, "goroutine result", "a goroutine's return value is discarded; remove it")
		}
		u.members[obj] = true
		t := u.newThread(fun.Name)
		t.bindParams(fd.Type.Params, call.Args, bind, call)
		t.lowerBlock(fd.Body.List)
		u.finishThread(t)
	case *ast.FuncLit:
		if fun.Type.Results.NumFields() > 0 {
			u.declinef(call, "goroutine result", "a goroutine's return value is discarded; remove it")
		}
		t := u.newThread("g")
		// A closure may capture the spawn-loop index; each unrolled copy
		// binds it to that iteration's constant.
		for obj, k := range bind {
			if usesObj(u.tr.info, fun.Body, obj) {
				r := t.defineReg(obj, obj.Name())
				t.emit(lang.Inst{Kind: lang.IAssign, Reg: r, E: lang.Const(u.domainVal(k, fun))}, fun)
			}
		}
		t.bindParams(fun.Type.Params, call.Args, bind, call)
		t.lowerBlock(fun.Body.List)
		u.finishThread(t)
	default:
		u.declinef(call, "goroutine target",
			"a goroutine must call a same-package named function or a function literal")
	}
}

// bindParams assigns each parameter its (compile-time constant)
// argument value at thread start.
func (t *threadLowering) bindParams(params *ast.FieldList, args []ast.Expr, bind map[types.Object]int64, at ast.Node) {
	if params == nil {
		return
	}
	i := 0
	for _, field := range params.List {
		if _, variadic := field.Type.(*ast.Ellipsis); variadic {
			t.u.declinef(at, "variadic goroutine", "variadic spawn targets are not modeled")
		}
		names := field.Names
		if len(names) == 0 {
			names = []*ast.Ident{nil} // unnamed parameter still consumes an argument
		}
		for _, name := range names {
			if i >= len(args) {
				t.u.declinef(at, "goroutine arguments", "argument count mismatch")
			}
			v := t.u.spawnArgVal(args[i], bind)
			if name != nil && name.Name != "_" {
				obj := t.u.tr.info.Defs[name]
				r := t.defineReg(obj, name.Name)
				t.emit(lang.Inst{Kind: lang.IAssign, Reg: r, E: lang.Const(v)}, args[i])
			}
			i++
		}
	}
	if i < len(args) {
		t.u.declinef(at, "goroutine arguments", "argument count mismatch")
	}
}

// spawnArgVal evaluates a goroutine argument: a compile-time constant,
// or the enclosing spawn loop's index.
func (u *unitState) spawnArgVal(e ast.Expr, bind map[types.Object]int64) lang.Val {
	if n, ok := u.intConst(e); ok {
		return u.domainVal(n, e)
	}
	if id, ok := unparen(e).(*ast.Ident); ok {
		if k, ok := bind[u.tr.info.Uses[id]]; ok {
			return u.domainVal(k, e)
		}
	}
	u.declinef(e, "non-constant goroutine argument",
		"goroutine arguments must be compile-time constants (or the spawn loop's index)")
	panic("unreachable")
}

// intConst folds e when the type checker proved it an integer or bool
// constant. No domain check: callers that emit the value go through
// domainVal.
func (u *unitState) intConst(e ast.Expr) (int64, bool) {
	tv, ok := u.tr.info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	switch tv.Value.Kind() {
	case constant.Int:
		n, exact := constant.Int64Val(tv.Value)
		return n, exact
	case constant.Bool:
		if constant.BoolVal(tv.Value) {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// domainVal checks a constant against the unit's value domain.
func (u *unitState) domainVal(n int64, at ast.Node) lang.Val {
	if n < 0 {
		u.declinef(at, "negative constant",
			"constant %d has no value in the wrap-around domain [0, vals)", n)
	}
	if n >= int64(u.valCount) {
		u.declinef(at, "oversize constant",
			"constant %d exceeds the modeled domain [0, %d); raise //rocker:vals", n, u.valCount)
	}
	return lang.Val(n)
}

// countedLoop is a `for i := a; i < b; i++` header with constant
// bounds whose index the body never writes.
type countedLoop struct {
	obj   types.Object
	name  string
	from  int64
	count int64
}

func (u *unitState) countedHeader(fs *ast.ForStmt) (countedLoop, bool) {
	var h countedLoop
	init, ok := fs.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return h, false
	}
	id, ok := init.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return h, false
	}
	from, ok := u.intConst(init.Rhs[0])
	if !ok {
		return h, false
	}
	cond, ok := fs.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return h, false
	}
	cid, ok := unparen(cond.X).(*ast.Ident)
	if !ok || u.tr.info.Uses[cid] != u.tr.info.Defs[id] {
		return h, false
	}
	to, ok := u.intConst(cond.Y)
	if !ok {
		return h, false
	}
	post, ok := fs.Post.(*ast.IncDecStmt)
	if !ok || post.Tok != token.INC {
		return h, false
	}
	pid, ok := unparen(post.X).(*ast.Ident)
	if !ok || u.tr.info.Uses[pid] != u.tr.info.Defs[id] {
		return h, false
	}
	obj := u.tr.info.Defs[id]
	if writesObj(u.tr.info, fs.Body, obj) {
		return h, false
	}
	count := to - from
	if cond.Op == token.LEQ {
		count++
	}
	if count < 0 {
		count = 0
	}
	return countedLoop{obj: obj, name: id.Name, from: from, count: count}, true
}

// writesObj reports whether body assigns to (or takes the address of)
// the variable obj.
func writesObj(info *types.Info, body ast.Node, obj types.Object) bool {
	found := false
	resolve := func(e ast.Expr) types.Object {
		if id, ok := unparen(e).(*ast.Ident); ok {
			return info.Uses[id]
		}
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if resolve(lhs) == obj {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if resolve(s.X) == obj {
				found = true
			}
		case *ast.UnaryExpr:
			if s.Op == token.AND && resolve(s.X) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// usesObj reports whether body references obj.
func usesObj(info *types.Info, body ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// ---------------------------------------------------------------------------
// Statement lowering.

func (t *threadLowering) lowerBlock(list []ast.Stmt) {
	for _, st := range list {
		t.lowerStmt(st)
	}
}

func (t *threadLowering) lowerStmt(st ast.Stmt) {
	switch s := st.(type) {
	case *ast.BlockStmt:
		t.lowerBlock(s.List)
	case *ast.EmptyStmt:
	case *ast.ExprStmt:
		t.lowerExprStmt(s)
	case *ast.AssignStmt:
		t.lowerAssign(s)
	case *ast.IncDecStmt:
		op := lang.OpAdd
		if s.Tok == token.DEC {
			op = lang.OpSub
		}
		t.lowerOpAssign(s.X, op, lang.Const(1), s)
	case *ast.IfStmt:
		t.lowerIf(s)
	case *ast.ForStmt:
		t.lowerFor(s)
	case *ast.ReturnStmt:
		t.lowerReturn(s)
	case *ast.BranchStmt:
		t.lowerBranch(s)
	case *ast.DeclStmt:
		t.lowerDecl(s)
	case *ast.GoStmt:
		t.u.declinef(s, "nested goroutine", "goroutines may only be spawned by the driver")
	case *ast.RangeStmt:
		t.u.declinef(s, "range loop", "range loops are not modeled; use a counted for loop")
	case *ast.SendStmt:
		t.u.declinef(s, "channel send", "channels are not modeled")
	case *ast.SelectStmt:
		t.u.declinef(s, "select", "channels are not modeled")
	case *ast.DeferStmt:
		t.u.declinef(s, "defer", "deferred calls are not modeled")
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		t.u.declinef(s, "switch", "switch statements are not modeled; use if/else")
	case *ast.LabeledStmt:
		t.u.declinef(s, "label", "labeled statements are not modeled")
	default:
		t.u.declinef(st, "unsupported statement", "%T is outside the modeled subset", st)
	}
}

func (t *threadLowering) lowerExprStmt(es *ast.ExprStmt) {
	call, ok := unparen(es.X).(*ast.CallExpr)
	if !ok {
		t.u.declinef(es, "expression statement", "only calls may appear as statements")
	}
	// Scheduling hints are no-ops under the model.
	if pkg, name := t.u.pkgFunc(call); (pkg == "runtime" && name == "Gosched") || (pkg == "time" && name == "Sleep") {
		return
	}
	if t.u.isPanicCall(call) {
		// Builtin panic: an assertion that always fails if reached.
		t.emit(lang.Inst{Kind: lang.IAssert, E: lang.Const(0)}, es)
		return
	}
	if mem, c, method, ok := t.atomicCall(call); ok {
		switch method {
		case "Store":
			v := t.lowerExpr(call.Args[0])
			t.emit(lang.Inst{Kind: lang.IWrite, Mem: mem, E: v}, es)
		case "Load":
			r := t.tempReg(c.obj.Name())
			t.emit(lang.Inst{Kind: lang.IRead, Reg: r, Mem: mem}, es)
		case "Add":
			d := t.lowerExpr(call.Args[0])
			r := t.tempReg(c.obj.Name())
			t.emit(lang.Inst{Kind: lang.IFADD, Reg: r, Mem: mem, E: d}, es)
		case "Swap":
			v := t.lowerExpr(call.Args[0])
			r := t.tempReg(c.obj.Name())
			t.emit(lang.Inst{Kind: lang.IXCHG, Reg: r, Mem: mem, E: v}, es)
		case "CompareAndSwap":
			old := t.lowerExpr(call.Args[0])
			niu := t.lowerExpr(call.Args[1])
			r := t.tempReg(c.obj.Name())
			t.emit(lang.Inst{Kind: lang.ICAS, Reg: r, Mem: mem, ER: old, EW: niu}, es)
		}
		return
	}
	if fd := t.u.inlinableCallee(call); fd != nil {
		t.inlineCall(call, fd)
		return
	}
	t.u.declinef(es, "unmodeled call", "call to %s is outside the modeled subset", exprString(call.Fun))
}

var assignOps = map[token.Token]lang.BinOp{
	token.ADD_ASSIGN: lang.OpAdd,
	token.SUB_ASSIGN: lang.OpSub,
	token.MUL_ASSIGN: lang.OpMul,
	token.REM_ASSIGN: lang.OpMod,
}

func (t *threadLowering) lowerAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		t.u.declinef(as, "multi-assignment", "tuple assignments are not modeled")
	}
	lhs, rhs := as.Lhs[0], as.Rhs[0]
	if op, isOp := assignOps[as.Tok]; isOp {
		t.lowerOpAssign(lhs, op, t.lowerExpr(rhs), as)
		return
	}
	if as.Tok != token.DEFINE && as.Tok != token.ASSIGN {
		t.u.declinef(as, "assignment operator", "operator %s is not modeled", as.Tok)
	}
	if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
		t.lowerExpr(rhs) // evaluate for memory effects, discard the value
		return
	}
	if as.Tok == token.DEFINE {
		id := unparen(lhs).(*ast.Ident)
		v := t.lowerExpr(rhs)
		r := t.defineReg(t.u.tr.info.Defs[id], id.Name)
		t.emit(lang.Inst{Kind: lang.IAssign, Reg: r, E: v}, as)
		return
	}
	switch target := unparen(lhs).(type) {
	case *ast.Ident:
		obj := t.u.tr.info.Uses[target]
		if r, isReg := t.regs[obj]; isReg {
			v := t.lowerExpr(rhs)
			t.emit(lang.Inst{Kind: lang.IAssign, Reg: r, E: v}, as)
			return
		}
		if c, isCell := t.u.cellFor(target); isCell {
			if !c.na {
				t.u.declinef(as, "atomic assignment", "assign to %s via Store", target.Name)
			}
			v := t.lowerExpr(rhs)
			t.emit(lang.Inst{Kind: lang.IWrite, Mem: lang.MemRef{Base: c.base, Size: 1}, E: v}, as)
			return
		}
		t.u.declinef(as, "unmodeled assignment target", "%s is neither a local nor a modeled cell", target.Name)
	case *ast.IndexExpr:
		mem, c := t.cellIndex(target)
		if !c.na {
			t.u.declinef(as, "atomic assignment", "assign to %s via Store", c.obj.Name())
		}
		v := t.lowerExpr(rhs)
		t.emit(lang.Inst{Kind: lang.IWrite, Mem: mem, E: v}, as)
	default:
		t.u.declinef(as, "unmodeled assignment target", "%T is not assignable in the modeled subset", lhs)
	}
}

// lowerOpAssign desugars x op= rhs (and ++/--). The index of an array
// target is evaluated once, as in Go.
func (t *threadLowering) lowerOpAssign(lhs ast.Expr, op lang.BinOp, rhs *lang.Expr, at ast.Node) {
	switch target := unparen(lhs).(type) {
	case *ast.Ident:
		obj := t.u.tr.info.Uses[target]
		if r, isReg := t.regs[obj]; isReg {
			t.emit(lang.Inst{Kind: lang.IAssign, Reg: r, E: lang.Bin(op, lang.RegE(r), rhs)}, at)
			return
		}
		if c, isCell := t.u.cellFor(target); isCell {
			if !c.na {
				t.u.declinef(at, "atomic update", "update %s via Add/Swap/CompareAndSwap", target.Name)
			}
			cur := t.tempReg(target.Name)
			t.emit(lang.Inst{Kind: lang.IRead, Reg: cur, Mem: lang.MemRef{Base: c.base, Size: 1}}, at)
			t.emit(lang.Inst{Kind: lang.IWrite, Mem: lang.MemRef{Base: c.base, Size: 1}, E: lang.Bin(op, lang.RegE(cur), rhs)}, at)
			return
		}
		t.u.declinef(at, "unmodeled assignment target", "%s is neither a local nor a modeled cell", target.Name)
	case *ast.IndexExpr:
		mem, c := t.cellIndex(target)
		if !c.na {
			t.u.declinef(at, "atomic update", "update %s via Add/Swap/CompareAndSwap", c.obj.Name())
		}
		cur := t.tempReg(c.obj.Name())
		t.emit(lang.Inst{Kind: lang.IRead, Reg: cur, Mem: mem}, at)
		t.emit(lang.Inst{Kind: lang.IWrite, Mem: mem, E: lang.Bin(op, lang.RegE(cur), rhs)}, at)
	default:
		t.u.declinef(at, "unmodeled assignment target", "%T is not assignable in the modeled subset", lhs)
	}
}

func (t *threadLowering) lowerIf(is *ast.IfStmt) {
	if is.Init != nil {
		t.lowerStmt(is.Init)
	}
	// `if cond { panic(...) }` is the assertion idiom: assert !cond.
	if is.Else == nil && len(is.Body.List) == 1 {
		if es, ok := is.Body.List[0].(*ast.ExprStmt); ok {
			if call, ok := unparen(es.X).(*ast.CallExpr); ok && t.u.isPanicCall(call) {
				cond := t.lowerExpr(is.Cond)
				t.emit(lang.Inst{Kind: lang.IAssert, E: lang.Not(cond)}, is)
				return
			}
		}
	}
	cond := t.lowerExpr(is.Cond)
	jf := t.emit(lang.Inst{Kind: lang.IGoto, E: lang.Not(cond)}, is)
	t.lowerStmt(is.Body)
	if is.Else == nil {
		t.patch(jf, len(t.insts))
		return
	}
	je := t.emit(lang.Inst{Kind: lang.IGoto, E: lang.Const(1)}, is.Else)
	t.patch(jf, len(t.insts))
	t.lowerStmt(is.Else)
	t.patch(je, len(t.insts))
}

func (t *threadLowering) lowerFor(fs *ast.ForStmt) {
	// Blocking spin shapes first: modeling a busy-wait as a goto loop
	// introduces executions where the loop reads a stale value forever,
	// which manifests as spurious robustness violations; wait/BCAS are
	// the language's primitives for exactly these shapes.
	if fs.Init == nil && fs.Post == nil && fs.Cond != nil && len(fs.Body.List) == 0 {
		if t.trySpin(fs) {
			return
		}
	}
	if h, ok := t.u.countedHeader(fs); ok {
		if h.count > maxUnroll {
			t.u.declinef(fs, "oversize counted loop",
				"loop unrolls to %d iterations (limit %d)", h.count, maxUnroll)
		}
		frame := &loopFrame{}
		t.loops = append(t.loops, frame)
		var r lang.Reg
		bound := usesObj(t.u.tr.info, fs.Body, h.obj)
		if bound {
			r = t.defineReg(h.obj, h.name)
		}
		for k := h.from; k < h.from+h.count; k++ {
			if bound {
				// The constant index keeps constant propagation (and
				// array-cell resolution) precise across the unrolled body.
				t.emit(lang.Inst{Kind: lang.IAssign, Reg: r, E: lang.Const(t.u.domainVal(k, fs))}, fs)
			}
			t.lowerBlock(fs.Body.List)
			t.patchAll(frame.continues, len(t.insts))
			frame.continues = nil
		}
		t.loops = t.loops[:len(t.loops)-1]
		t.patchAll(frame.breaks, len(t.insts))
		return
	}
	// General loop: head: if !cond goto end; body; continue: post; goto head.
	if fs.Init != nil {
		t.lowerStmt(fs.Init)
	}
	head := len(t.insts)
	exit := -1
	if fs.Cond != nil {
		cond := t.lowerExpr(fs.Cond)
		exit = t.emit(lang.Inst{Kind: lang.IGoto, E: lang.Not(cond)}, fs)
	}
	frame := &loopFrame{}
	t.loops = append(t.loops, frame)
	t.lowerBlock(fs.Body.List)
	t.loops = t.loops[:len(t.loops)-1]
	t.patchAll(frame.continues, len(t.insts))
	if fs.Post != nil {
		t.lowerStmt(fs.Post)
	}
	t.emit(lang.Inst{Kind: lang.IGoto, E: lang.Const(1), Target: head}, fs)
	end := len(t.insts)
	if exit >= 0 {
		t.patch(exit, end)
	}
	t.patchAll(frame.breaks, end)
}

// trySpin matches the two blocking busy-wait shapes:
//
//	for x.Load() != e {}              -> wait(x = e)
//	for !x.CompareAndSwap(o, n) {}    -> BCAS(x, o, n)
//
// Both require the non-load operands to be pure: Go re-evaluates them
// every iteration, so lifting a memory read out of the loop would be a
// mistranslation (such loops fall through to the general goto loop).
func (t *threadLowering) trySpin(fs *ast.ForStmt) bool {
	switch cond := unparen(fs.Cond).(type) {
	case *ast.BinaryExpr:
		if cond.Op != token.NEQ {
			return false
		}
		for _, flip := range []bool{false, true} {
			loadSide, other := cond.X, cond.Y
			if flip {
				loadSide, other = cond.Y, cond.X
			}
			call, ok := unparen(loadSide).(*ast.CallExpr)
			if !ok || t.hasMemEffects(other) || !t.pureIndexReceiver(call) {
				continue
			}
			mem, _, method, isAtomic := t.atomicCall(call)
			if !isAtomic || method != "Load" {
				continue
			}
			e := t.lowerExpr(other)
			t.emit(lang.Inst{Kind: lang.IWait, Mem: mem, E: e}, fs)
			return true
		}
	case *ast.UnaryExpr:
		if cond.Op != token.NOT {
			return false
		}
		call, ok := unparen(cond.X).(*ast.CallExpr)
		if !ok || !t.pureIndexReceiver(call) {
			return false
		}
		mem, _, method, isAtomic := t.atomicCall(call)
		if !isAtomic || method != "CompareAndSwap" {
			return false
		}
		if t.hasMemEffects(call.Args[0]) || t.hasMemEffects(call.Args[1]) {
			return false
		}
		er := t.lowerExpr(call.Args[0])
		ew := t.lowerExpr(call.Args[1])
		t.emit(lang.Inst{Kind: lang.IBCAS, Mem: mem, ER: er, EW: ew}, fs)
		return true
	}
	return false
}

// pureIndexReceiver reports whether the receiver of a method call, if
// indexed, has a pure index expression (required by the spin shapes,
// which hoist the operand out of the loop).
func (t *threadLowering) pureIndexReceiver(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if ix, isIndex := sel.X.(*ast.IndexExpr); isIndex {
		return !t.hasMemEffects(ix.Index)
	}
	return true
}

func (t *threadLowering) lowerReturn(rs *ast.ReturnStmt) {
	frame := t.rets[len(t.rets)-1]
	if len(rs.Results) > 0 {
		if !frame.hasResult || len(rs.Results) != 1 {
			t.u.declinef(rs, "return value", "only single-result returns of inlined calls are modeled")
		}
		v := t.lowerExpr(rs.Results[0])
		t.emit(lang.Inst{Kind: lang.IAssign, Reg: frame.resultReg, E: v}, rs)
	}
	frame.joins = append(frame.joins, t.emit(lang.Inst{Kind: lang.IGoto, E: lang.Const(1)}, rs))
}

func (t *threadLowering) lowerBranch(bs *ast.BranchStmt) {
	if bs.Label != nil {
		t.u.declinef(bs, "labeled branch", "labeled break/continue is not modeled")
	}
	switch bs.Tok {
	case token.BREAK, token.CONTINUE:
		if len(t.loops) == 0 {
			t.u.declinef(bs, "branch outside loop", "%s outside a for loop", bs.Tok)
		}
		frame := t.loops[len(t.loops)-1]
		j := t.emit(lang.Inst{Kind: lang.IGoto, E: lang.Const(1)}, bs)
		if bs.Tok == token.BREAK {
			frame.breaks = append(frame.breaks, j)
		} else {
			frame.continues = append(frame.continues, j)
		}
	default:
		t.u.declinef(bs, "branch", "%s is not modeled", bs.Tok)
	}
}

func (t *threadLowering) lowerDecl(ds *ast.DeclStmt) {
	gd, ok := ds.Decl.(*ast.GenDecl)
	if !ok || (gd.Tok != token.VAR && gd.Tok != token.CONST) {
		t.u.declinef(ds, "declaration", "only var and const declarations are modeled")
	}
	if gd.Tok == token.CONST {
		return // constants fold at use sites
	}
	for _, spec := range gd.Specs {
		vs := spec.(*ast.ValueSpec)
		if len(vs.Values) != 0 && len(vs.Values) != len(vs.Names) {
			t.u.declinef(vs, "multi-value declaration", "tuple initialization is not modeled")
		}
		for i, name := range vs.Names {
			var v *lang.Expr
			if len(vs.Values) > 0 {
				v = t.lowerExpr(vs.Values[i])
			} else {
				v = lang.Const(0)
			}
			if name.Name == "_" {
				continue
			}
			obj := t.u.tr.info.Defs[name]
			if _, ok := plainCellType(obj.Type()); !ok {
				t.u.declinef(name, "local variable type",
					"local %s has type %s, which the frontend does not model", name.Name, obj.Type())
			}
			r := t.defineReg(obj, name.Name)
			t.emit(lang.Inst{Kind: lang.IAssign, Reg: r, E: v}, ds)
		}
	}
}

// ---------------------------------------------------------------------------
// Inlining.

// isPanicCall recognizes a call to the builtin panic.
func (u *unitState) isPanicCall(call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	obj := u.tr.info.Uses[id]
	if obj == nil {
		return true
	}
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// inlinableCallee resolves a call to a same-package function with a
// body; nil if the call is anything else.
func (u *unitState) inlinableCallee(call *ast.CallExpr) *ast.FuncDecl {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	fd := u.tr.funcDecls[u.tr.info.Uses[id]]
	if fd == nil || fd.Body == nil {
		return nil
	}
	return fd
}

// pkgFunc identifies a call to another package's function, returning
// its package path and name ("" if not such a call).
func (u *unitState) pkgFunc(call *ast.CallExpr) (string, string) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	if u.tr.info.Selections[sel] != nil {
		return "", "" // a method call, not pkg.Func
	}
	fn, ok := u.tr.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// inlineCall expands a same-package call in place: arguments evaluate
// into the callee's parameter registers, returns jump to a join point,
// the single result (if any) lands in a result register.
func (t *threadLowering) inlineCall(call *ast.CallExpr, fd *ast.FuncDecl) (lang.Reg, bool) {
	obj := t.u.tr.info.Uses[unparen(call.Fun).(*ast.Ident)]
	for _, active := range t.inlining {
		if active == obj {
			t.u.declinef(call, "recursion", "%s is recursive; recursion is not modeled", fd.Name.Name)
		}
	}
	if len(t.inlining) >= maxInlineDepth {
		t.u.declinef(call, "deep inlining", "call nesting exceeds depth %d", maxInlineDepth)
	}
	t.u.members[obj] = true

	// Bind parameters left to right (Go's evaluation order).
	if fd.Type.Params != nil {
		i := 0
		for _, field := range fd.Type.Params.List {
			if _, variadic := field.Type.(*ast.Ellipsis); variadic {
				t.u.declinef(call, "variadic call", "variadic functions are not modeled")
			}
			names := field.Names
			if len(names) == 0 {
				names = []*ast.Ident{nil}
			}
			for _, name := range names {
				v := t.lowerExpr(call.Args[i])
				if name != nil && name.Name != "_" {
					pobj := t.u.tr.info.Defs[name]
					r := t.defineReg(pobj, name.Name)
					t.emit(lang.Inst{Kind: lang.IAssign, Reg: r, E: v}, call.Args[i])
				}
				i++
			}
		}
	}

	frame := &retFrame{}
	if n := fd.Type.Results.NumFields(); n > 1 {
		t.u.declinef(call, "multiple results", "%s returns %d values; at most one is modeled", fd.Name.Name, n)
	} else if n == 1 {
		frame.hasResult = true
		field := fd.Type.Results.List[0]
		if len(field.Names) == 1 {
			// Named result: zero-initialized, returnable bare.
			robj := t.u.tr.info.Defs[field.Names[0]]
			frame.resultReg = t.defineReg(robj, field.Names[0].Name)
		} else {
			frame.resultReg = t.tempReg(fd.Name.Name)
		}
		t.emit(lang.Inst{Kind: lang.IAssign, Reg: frame.resultReg, E: lang.Const(0)}, call)
	}

	t.inlining = append(t.inlining, obj)
	t.rets = append(t.rets, frame)
	t.lowerBlock(fd.Body.List)
	t.rets = t.rets[:len(t.rets)-1]
	t.inlining = t.inlining[:len(t.inlining)-1]
	t.patchAll(frame.joins, len(t.insts))
	return frame.resultReg, frame.hasResult
}
