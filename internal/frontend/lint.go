package frontend

import (
	"context"
	"fmt"
	"go/token"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fence"
	"repro/internal/lang"
	"repro/internal/model"
	"repro/internal/scm"
)

// Finding is one golint diagnostic anchored to a Go source position.
type Finding struct {
	Pos      token.Position
	Unit     string
	Severity string // "error" (robustness/assertion), "warning" (vet lint)
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s", f.Pos, f.Message)
}

// LintOptions configures the verification pipeline golint runs over
// each translated unit.
type LintOptions struct {
	// Models are the memory models to render verdicts under; default
	// {"ra"}. "ra" and "sra" run the robustness checker (and can produce
	// witness findings); other registry modes (e.g. "tso") contribute a
	// verdict only.
	Models    []string
	MaxStates int
	Workers   int
	// NoRepair suppresses the fence-repair suggestion on non-robust
	// units.
	NoRepair bool
	// MaxRepairs bounds the repair search (default 4).
	MaxRepairs int
	Ctx        context.Context
}

// UnitReport is the lint result for one translated unit.
type UnitReport struct {
	Unit *Unit
	// Verdicts maps each requested model to its robustness verdict.
	Verdicts map[string]bool
	Findings []Finding
}

// LintUnit runs the full static pipeline over one translated unit:
// analysis.Vet lints, a robustness verdict per requested model, and —
// for non-robust units — a fence-repair suggestion. Every finding is
// anchored to the Go source line the offending instruction was lowered
// from.
func LintUnit(u *Unit, opts LintOptions) (*UnitReport, error) {
	if len(opts.Models) == 0 {
		opts.Models = []string{"ra"}
	}
	if opts.Ctx == nil {
		opts.Ctx = context.Background()
	}
	rep := &UnitReport{Unit: u, Verdicts: map[string]bool{}}
	rep.Findings = append(rep.Findings, StaticFindings(u)...)

	needRepair := false
	for _, mode := range opts.Models {
		switch mode {
		case "ra", "sra":
			m := core.ModelRA
			if mode == "sra" {
				m = core.ModelSRA
			}
			v, err := core.Verify(u.Prog, core.Options{
				Model:        m,
				AbstractVals: true,
				MaxStates:    opts.MaxStates,
				Workers:      opts.Workers,
				StaticPrune:  true,
				Ctx:          opts.Ctx,
			})
			if err != nil {
				return nil, fmt.Errorf("%s: verify %s: %w", u.Name, mode, err)
			}
			rep.Verdicts[mode] = v.Robust
			if v.AssertFail != nil {
				rep.Findings = append(rep.Findings, Finding{
					Pos:      u.PosAt(v.AssertFail.Tid, v.AssertFail.PC),
					Unit:     u.Name,
					Severity: "error",
					Message: fmt.Sprintf("assertion can fail under sequential consistency (thread %s)",
						u.Prog.Threads[v.AssertFail.Tid].Name),
				})
			}
			if !v.Robust {
				needRepair = true
				for _, viol := range dedupViolations(v.Violations) {
					rep.Findings = append(rep.Findings, Finding{
						Pos:      u.PosAt(viol.Tid, viol.PC),
						Unit:     u.Name,
						Severity: "error",
						Message:  fmt.Sprintf("not robust against %s (witness: %s)", modelName(mode), u.witness(viol)),
					})
				}
			}
		default:
			res, err := model.Run(mode, u.Prog, model.RunOpts{
				MaxStates:   opts.MaxStates,
				Workers:     opts.Workers,
				StaticPrune: true,
				Ctx:         opts.Ctx,
			})
			if err != nil {
				return nil, fmt.Errorf("%s: verify %s: %w", u.Name, mode, err)
			}
			rep.Verdicts[mode] = res.Robust
			if !res.Robust {
				rep.Findings = append(rep.Findings, Finding{
					Pos:      u.Pos,
					Unit:     u.Name,
					Severity: "error",
					Message:  fmt.Sprintf("not robust against %s", modelName(mode)),
				})
			}
		}
	}

	if needRepair && !opts.NoRepair {
		rep.Findings = append(rep.Findings, u.repairFindings(opts)...)
	}

	sort.SliceStable(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i].Pos, rep.Findings[j].Pos
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return rep, nil
}

// StaticFindings returns just the analysis.Vet lints of a unit, mapped
// back to Go positions — the cheap, exploration-free part of LintUnit.
func StaticFindings(u *Unit) []Finding {
	var out []Finding
	for _, f := range analysis.Vet(u.Prog) {
		out = append(out, Finding{
			Pos:      u.FindPos(f.Line, f.Col),
			Unit:     u.Name,
			Severity: "warning",
			Message:  f.Msg,
		})
	}
	return out
}

func modelName(mode string) string {
	switch mode {
	case "ra":
		return "RA"
	case "sra":
		return "SRA"
	case "tso":
		return "TSO"
	}
	return mode
}

// dedupViolations keeps one violation per (thread, pc): the checker can
// report the same instruction from many monitor states.
func dedupViolations(vs []*scm.Violation) []*scm.Violation {
	seen := map[[2]int]bool{}
	var out []*scm.Violation
	for _, v := range vs {
		k := [2]int{int(v.Tid), v.PC}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, v)
	}
	return out
}

// witness renders a violation in Go vocabulary: Go variable names and
// source positions, not .lit locations and pcs.
func (u *Unit) witness(v *scm.Violation) string {
	cell := u.cellName(v.Loc)
	tn := u.Prog.Threads[v.Tid].Name
	at := shortPos(u.PosAt(v.Tid, v.PC))
	switch v.Kind {
	case scm.StaleRead:
		return fmt.Sprintf("the read of %s by %s at %s can observe a stale value", cell, tn, at)
	case scm.StaleWrite:
		return fmt.Sprintf("the write to %s by %s at %s can be placed before an older write", cell, tn, at)
	case scm.StaleRMW:
		return fmt.Sprintf("the RMW on %s by %s at %s can read a stale value", cell, tn, at)
	case scm.NARace:
		tn2 := u.Prog.Threads[v.Tid2].Name
		return fmt.Sprintf("non-atomic %s is racy: %s at %s vs %s at %s",
			cell, tn, at, tn2, shortPos(u.PosAt(v.Tid2, v.PC2)))
	}
	return fmt.Sprintf("%s on %s by %s at %s", v.Kind, cell, tn, at)
}

// cellName maps a location back to the Go variable that owns it.
func (u *Unit) cellName(l lang.Loc) string {
	if int(l) < len(u.Cells) {
		return u.Cells[l]
	}
	return u.Prog.LocName(l)
}

func shortPos(p token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// repairFindings searches for a fence repair and renders each placement
// as a suggested fix at its Go line.
func (u *Unit) repairFindings(opts LintOptions) []Finding {
	placements, _, err := fence.Enforce(u.Prog, fence.Options{
		MaxRepairs: opts.MaxRepairs,
		Strategy:   fence.Mixed,
		Verify: core.Options{
			AbstractVals: true,
			MaxStates:    opts.MaxStates,
			Workers:      opts.Workers,
			StaticPrune:  true,
			Ctx:          opts.Ctx,
		},
	})
	if err != nil {
		return []Finding{{
			Pos:      u.Pos,
			Unit:     u.Name,
			Severity: "warning",
			Message:  fmt.Sprintf("no fence repair found: %v", err),
		}}
	}
	// Distinct placements can map to one Go line (unrolled loop copies,
	// one thread per spawn of the same function); report each line once.
	seen := map[string]bool{}
	out := make([]Finding, 0, len(placements))
	for _, pl := range placements {
		pos := u.PosAt(pl.Tid, pl.At)
		in := &u.Prog.Threads[pl.Tid].Insts[pl.At]
		var msg string
		if pl.Kind == fence.StrengthenWrite {
			msg = fmt.Sprintf("suggested fix: strengthen the Store at %s into a fence (make the write an SC-fenced Swap)", shortPos(pos))
		} else {
			msg = fmt.Sprintf("suggested fix: insert an SC fence before the %s at %s", opName(in), shortPos(pos))
		}
		key := pos.String() + msg
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Finding{Pos: pos, Unit: u.Name, Severity: "error", Message: msg})
	}
	return out
}

func opName(in *lang.Inst) string {
	switch in.Kind {
	case lang.IRead:
		return "Load"
	case lang.IWrite:
		return "Store"
	case lang.IFADD:
		return "Add"
	case lang.IXCHG:
		return "Swap"
	case lang.ICAS:
		return "CompareAndSwap"
	case lang.IWait, lang.IBCAS:
		return "spin loop"
	}
	return "instruction"
}
