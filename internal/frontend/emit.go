package frontend

import (
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/lang"
)

// EmitLit renders a translated unit as .lit concrete syntax that keeps
// the Go names of cells, threads and locals, with a trailing comment
// anchoring each instruction to its Go source line. Unlike
// parser.Format's canonical listing this one is meant for humans (and
// for golden files): reparsing it yields a program with the same
// CanonicalDigest as u.Prog — the digest-determinism tests pin that.
//
// Registers are renamed on the way out when their Go-derived name
// collides with a location name: the .lit grammar resolves `x := e` to
// a write when x names a location, so a register sharing a cell's name
// would reparse as a different program.
func EmitLit(u *Unit) string {
	p := u.Prog
	var b strings.Builder
	fmt.Fprintf(&b, "# translated from %s (%s)\n", filepath.Base(u.File), u.Name)
	fmt.Fprintf(&b, "program %s\n", p.Name)
	fmt.Fprintf(&b, "vals %d\n", p.ValCount)

	// Location declarations: contiguous cells named name[0..n-1] are an
	// array; everything else is a scalar.
	taken := map[string]bool{}
	arrayBase := map[lang.Loc]string{} // first cell -> array name
	for i := 0; i < len(p.Locs); {
		name := p.Locs[i].Name
		if j := strings.IndexByte(name, '['); j >= 0 {
			base := name[:j]
			size := 1
			for i+size < len(p.Locs) && strings.HasPrefix(p.Locs[i+size].Name, base+"[") {
				size++
			}
			if p.Locs[i].NA {
				fmt.Fprintf(&b, "na array %s %d\n", base, size)
			} else {
				fmt.Fprintf(&b, "array %s %d\n", base, size)
			}
			arrayBase[lang.Loc(i)] = base
			taken[base] = true
			i += size
			continue
		}
		if p.Locs[i].NA {
			fmt.Fprintf(&b, "na %s\n", name)
		} else {
			fmt.Fprintf(&b, "locs %s\n", name)
		}
		taken[name] = true
		i++
	}

	for ti := range p.Threads {
		t := &p.Threads[ti]
		// Register display names, de-conflicted from location names.
		used := map[string]bool{}
		for k, v := range taken {
			used[k] = v
		}
		regName := make([]string, t.NumRegs)
		for r := 0; r < t.NumRegs; r++ {
			hint := fmt.Sprintf("r%d", r)
			if r < len(t.RegNames) {
				hint = t.RegNames[r]
			}
			regName[r] = uniqueName(hint, used)
		}
		reg := func(r lang.Reg) string { return regName[r] }
		var expr func(e *lang.Expr) string
		expr = func(e *lang.Expr) string {
			switch e.Kind {
			case lang.EConst:
				return fmt.Sprintf("%d", e.Const)
			case lang.EReg:
				return reg(e.Reg)
			case lang.ENot:
				return "!(" + expr(e.L) + ")"
			}
			return "(" + expr(e.L) + " " + e.Op.String() + " " + expr(e.R) + ")"
		}
		mem := func(m lang.MemRef) string {
			if base, ok := arrayBase[m.Base]; ok && m.Size > 1 {
				return base + "[" + expr(m.Index) + "]"
			}
			return p.Locs[m.Base].Name
		}

		fmt.Fprintf(&b, "\nthread %s\n", t.Name)
		targets := map[int]bool{}
		for ii := range t.Insts {
			if t.Insts[ii].Kind == lang.IGoto {
				targets[t.Insts[ii].Target] = true
			}
		}
		for ii := range t.Insts {
			if targets[ii] {
				fmt.Fprintf(&b, "L%d:\n", ii)
			}
			in := &t.Insts[ii]
			var s string
			switch in.Kind {
			case lang.IAssign:
				s = fmt.Sprintf("%s := %s", reg(in.Reg), expr(in.E))
			case lang.IGoto:
				if in.E.Kind == lang.EConst && in.E.Const == 1 {
					s = fmt.Sprintf("goto L%d", in.Target)
				} else {
					s = fmt.Sprintf("if %s goto L%d", expr(in.E), in.Target)
				}
			case lang.IWrite:
				s = fmt.Sprintf("%s := %s", mem(in.Mem), expr(in.E))
			case lang.IRead:
				s = fmt.Sprintf("%s := %s", reg(in.Reg), mem(in.Mem))
			case lang.IFADD:
				s = fmt.Sprintf("%s := FADD(%s, %s)", reg(in.Reg), mem(in.Mem), expr(in.E))
			case lang.IXCHG:
				s = fmt.Sprintf("%s := XCHG(%s, %s)", reg(in.Reg), mem(in.Mem), expr(in.E))
			case lang.ICAS:
				s = fmt.Sprintf("%s := CAS(%s, %s, %s)", reg(in.Reg), mem(in.Mem), expr(in.ER), expr(in.EW))
			case lang.IWait:
				s = fmt.Sprintf("wait(%s = %s)", mem(in.Mem), expr(in.E))
			case lang.IBCAS:
				s = fmt.Sprintf("BCAS(%s, %s, %s)", mem(in.Mem), expr(in.ER), expr(in.EW))
			case lang.IAssert:
				s = fmt.Sprintf("assert %s", expr(in.E))
			}
			if src := u.PosAt(lang.Tid(ti), ii); src.Line > 0 {
				s = fmt.Sprintf("%-38s # %s:%d", s, filepath.Base(src.Filename), src.Line)
			}
			fmt.Fprintf(&b, "  %s\n", s)
		}
		if targets[len(t.Insts)] {
			fmt.Fprintf(&b, "L%d:\n", len(t.Insts))
		}
		b.WriteString("end\n")
	}
	return b.String()
}
