package diffcheck

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/prog"
	"repro/internal/scm"
)

// replaySC validates a non-robust core.Verify verdict by replaying its
// trace under SC with a fresh §5 monitor, built exactly as the verifier
// builds its own (abstract selects CriticalVals vs FullCriticalVals, sra
// the monitor's model). The trace must be a real SC run — each step's
// label must be the unique SC label of the thread's pending operation —
// and must end in a state exhibiting a violation: a Theorem 5.3 condition
// on some thread's pending operation, a Definition 6.1 race, or (for
// assertion verdicts) a failing assert on the final step. Returns nil when
// the witness checks out.
func replaySC(program *lang.Program, v *core.Verdict, abstract, sra bool) error {
	p := prog.New(program)
	var crit []uint64
	if abstract {
		crit = prog.CriticalVals(program)
	} else {
		crit = prog.FullCriticalVals(program)
	}
	na := make([]bool, len(program.Locs))
	hasNA := false
	for i := range program.Locs {
		na[i] = program.Locs[i].NA
		hasNA = hasNA || na[i]
	}
	mon := scm.NewMonitor(program.NumThreads(), program.NumLocs(), program.ValCount, crit, na)
	mon.SRA = sra

	ps, fail := p.InitState()
	if fail != nil {
		if v.AssertFail == nil {
			return fmt.Errorf("initial state fails an assertion but the verdict reports none")
		}
		return nil
	}
	ms := mon.Init()
	for i, st := range v.Trace {
		if st.Internal != explore.IntNone {
			return fmt.Errorf("step %d: internal step in an SC trace (states there are ε-closed)", i)
		}
		t := int(st.Tid)
		if t < 0 || t >= len(p.Threads) {
			return fmt.Errorf("step %d: thread %d out of range", i, t)
		}
		op := p.Threads[t].Op(ps.Threads[t])
		if op.Kind == prog.OpNone {
			return fmt.Errorf("step %d: thread %d has terminated", i, t)
		}
		label, enabled := prog.SCLabel(op, ms.M[op.Loc], program.ValCount)
		if !enabled {
			return fmt.Errorf("step %d: thread %d's operation is blocked under SC", i, t)
		}
		if label != st.Lab {
			return fmt.Errorf("step %d: SC forces label %v, trace claims %v", i, label, st.Lab)
		}
		nts, afail := p.Threads[t].Apply(ps.Threads[t], label)
		if afail != nil {
			if i != len(v.Trace)-1 {
				return fmt.Errorf("step %d: assertion fails before the end of the trace", i)
			}
			if v.AssertFail == nil {
				return fmt.Errorf("final step fails an assertion but the verdict reports none")
			}
			return nil
		}
		ps.Threads[t] = nts
		mon.Step(ms, lang.Tid(t), label)
	}
	if v.AssertFail != nil {
		return fmt.Errorf("verdict reports a failed assertion but the trace replays without one")
	}
	ops := p.Ops(ps)
	for t := range ops {
		if viol := mon.CheckOp(ms, lang.Tid(t), ops[t]); viol != nil {
			return nil
		}
	}
	if hasNA {
		if viol := mon.CheckRace(ops); viol != nil {
			return nil
		}
	}
	return fmt.Errorf("trace replays under SC but the final state exhibits no violation")
}
