// Package diffcheck is the differential oracle of the repository: it
// cross-checks every independent route we have to a robustness verdict
// against every other and reports any disagreement as a Finding.
//
// The routes, and what agreement means for each pair:
//
//   - SCM reduction (internal/core, Theorem 5.3) run sequentially,
//     in parallel, in hash-compact mode, and with full (non-abstract)
//     critical values: all four must return the same verdict, and the
//     exact-mode runs must agree on state counts when robust.
//   - Partial-order reduction (core.Options.Reduce: ample sets, sleep
//     sets, thread symmetry) run sequentially and in parallel: verdicts
//     must match the unreduced reference, the reduced state count can
//     never exceed the unreduced one, the two reduced runs must agree
//     exactly on robust programs, and every non-robust reduced verdict's
//     (symmetry-concretized) trace must replay under instrumented SC.
//   - RA timestamp machine (internal/staterobust, §3): execution-graph
//     robustness implies state robustness (Proposition 4.10), so the two
//     routes are related by an implication, not an equivalence — a
//     program the SCM route calls robust that the RA machine calls
//     state-non-robust is a bug in one of them. The comparison is gated
//     on programs without non-atomic locations and asserts, which state
//     robustness deliberately ignores.
//   - Model monotonicity: SRA behaviours are a subset of RA behaviours,
//     so RA-robust implies SRA-robust along both routes.
//   - Instrumented vs exhaustive TSO: the lazy single-delayer machine
//     (model.CheckTSO) and the full store-buffer product
//     (staterobust.CheckTSO) decide the same Definition 2.6 question, so
//     their verdicts must agree exactly, and on robust programs the lazy
//     exploration — a subset of the full product by construction — can
//     never count more states. The comparison is skipped when either run
//     hits the store-buffer capacity: both truncations under-approximate
//     and the subset relation between them is no longer a theorem.
//   - Metamorphic fence insertion (§6, internal/fence): at the *state*
//     robustness level, inserting an SC fence can only remove weak
//     behaviours, so it never flips robust to non-robust. Note this is
//     deliberately NOT checked at the execution-graph level: the fence
//     is an RMW on a location shared by every fence, and its own rf/mo
//     edges can complete non-SC cycles that did not exist before — the
//     harness itself falsified the graph-level version of this relation
//     (see testdata/regressions/fence-nonmonotone-graph.lit).
//   - Metamorphic no-op insertion: an FADD(g, 0) into a fresh register
//     on a fresh private location only adds events whose edges are
//     po-aligned within one thread, so any execution-graph cycle through
//     them contracts to one avoiding them — the verdict must be exactly
//     unchanged, in both directions.
//   - Witness replay: a non-robust verdict must come with a trace that
//     actually replays — under instrumented SC for the SCM route, under
//     the timestamp machine for the RA route (see staterobust.ReplayWitness).
//   - Syntax: Parse∘Format is a fixpoint and preserves the canonical
//     digest, so the pretty-printer can never corrupt a program.
//
// Engine runs are bounded; a run that exceeds its bound records a skip,
// never a finding. The package is pure (no I/O): cmd/fuzz drives it over
// generated programs and persists minimized findings.
package diffcheck

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/fence"
	"repro/internal/lang"
	"repro/internal/model"
	"repro/internal/parser"
	"repro/internal/prog"
	"repro/internal/staterobust"
)

// Config bounds one battery run.
type Config struct {
	// MaxStates bounds each SCM-route engine run (0 means 200k states).
	MaxStates int
	// RAMaxStates bounds each RA-machine run, which explores compound
	// ⟨program, timestamped memory⟩ states and is by far the expensive
	// leg — timestamped memories of loopy programs blow up long before
	// the SCM instrumentation does (0 means 10k states; raising it
	// converts bound-skips into decided comparisons at linear cost).
	RAMaxStates int
	// ParWorkers is the worker count of the parallel-engine leg (0 means
	// 2: enough to exercise the parallel path without oversubscribing a
	// fuzzing loop that already runs one battery per core).
	ParWorkers int
	// SkipRA disables the RA-machine legs and everything derived from
	// them. Used by the minimizer when shrinking a finding that does not
	// involve the RA route.
	SkipRA bool
	// TSOMaxStates bounds each TSO-machine run — both the instrumented
	// and the exhaustive leg (0 means the RA bound).
	TSOMaxStates int
	// SkipTSO disables the instrumented-vs-exhaustive TSO leg.
	SkipTSO bool
}

func (c Config) maxStates() int {
	if c.MaxStates <= 0 {
		return 200_000
	}
	return c.MaxStates
}

func (c Config) raMaxStates() int {
	if c.RAMaxStates <= 0 {
		return 10_000
	}
	return c.RAMaxStates
}

func (c Config) tsoMaxStates() int {
	if c.TSOMaxStates <= 0 {
		return c.raMaxStates()
	}
	return c.TSOMaxStates
}

func (c Config) parWorkers() int {
	if c.ParWorkers <= 0 {
		return 2
	}
	return c.ParWorkers
}

// Finding is one disagreement between routes that must agree: a bug in at
// least one of them.
type Finding struct {
	// Check names the violated relation (e.g. "ra-vs-scm", "seq-vs-par",
	// "round-trip", "fence-monotone", "witness-replay-scm").
	Check string
	// Detail is a human-readable account of the disagreement.
	Detail string
	// Source is the program exhibiting it — the input program, or the
	// mutant for metamorphic checks.
	Source string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s", f.Check, f.Detail)
}

// Report is the outcome of one battery run.
type Report struct {
	// Findings holds the disagreements (empty on a clean run).
	Findings []Finding
	// Skipped names checks that hit a state bound and were not decided.
	Skipped []string
	// Verdict summarizes the sequential SCM-route verdict for statistics:
	// "robust", "non-robust", or "unknown".
	Verdict string
}

func (r *Report) addf(check, source, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{
		Check:  check,
		Detail: fmt.Sprintf(format, args...),
		Source: source,
	})
}

func (r *Report) skip(name string) {
	r.Skipped = append(r.Skipped, name)
}

// CheckSource runs the full battery on one program source.
func CheckSource(src string, cfg Config) *Report {
	r := &Report{Verdict: "unknown"}
	p, err := parser.Parse(src)
	if err != nil {
		r.addf("parse", src, "program does not parse: %v", err)
		return r
	}
	checkRoundTrip(r, p, src)
	runBattery(r, p, src, cfg)
	return r
}

// CheckProgram runs the battery on an already-parsed program (used by the
// minimizer, whose candidates exist only as ASTs).
func CheckProgram(p *lang.Program, cfg Config) *Report {
	r := &Report{Verdict: "unknown"}
	if err := p.Validate(); err != nil {
		r.addf("validate", "", "program does not validate: %v", err)
		return r
	}
	src := parser.Format(p)
	checkRoundTrip(r, p, src)
	runBattery(r, p, src, cfg)
	return r
}

// CheckVariantDigest asserts that a renamed/permuted rendering of the same
// program parses and has the same canonical digest — the invariance the
// verdict cache depends on. Returns nil when the pair agrees.
func CheckVariantDigest(src, variant string) *Finding {
	p, err := parser.Parse(src)
	if err != nil {
		return &Finding{Check: "parse", Detail: fmt.Sprintf("base does not parse: %v", err), Source: src}
	}
	q, err := parser.Parse(variant)
	if err != nil {
		return &Finding{Check: "variant-digest", Detail: fmt.Sprintf("variant does not parse: %v", err), Source: variant}
	}
	if dp, dq := prog.CanonicalDigest(p), prog.CanonicalDigest(q); dp != dq {
		return &Finding{
			Check:  "variant-digest",
			Detail: fmt.Sprintf("digest not invariant under renaming/permutation: %s vs %s\nbase:\n%s", dp, dq, src),
			Source: variant,
		}
	}
	return nil
}

// checkRoundTrip asserts that Format's output parses, is digest-equal to
// the input, and is a fixpoint of Parse∘Format.
func checkRoundTrip(r *Report, p *lang.Program, src string) {
	f := parser.Format(p)
	q, err := parser.Parse(f)
	if err != nil {
		r.addf("round-trip", src, "formatted listing does not parse: %v\nformatted:\n%s", err, f)
		return
	}
	if dp, dq := prog.CanonicalDigest(p), prog.CanonicalDigest(q); dp != dq {
		r.addf("round-trip", src, "digest changed across Parse∘Format: %s vs %s\nformatted:\n%s", dp, dq, f)
		return
	}
	if f2 := parser.Format(q); f2 != f {
		r.addf("format-fixpoint", src, "Format is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", f, f2)
	}
}

// hasExtras reports whether the program uses non-atomic locations or
// asserts — features the state-robustness route deliberately ignores
// (a failing assert simply has no successors there, and NA races are
// undefined behaviour outside Definition 2.6), so RA-vs-SCM comparisons
// are gated on their absence.
func hasExtras(p *lang.Program) bool {
	for i := range p.Locs {
		if p.Locs[i].NA {
			return true
		}
	}
	for ti := range p.Threads {
		for ii := range p.Threads[ti].Insts {
			if p.Threads[ti].Insts[ii].Kind == lang.IAssert {
				return true
			}
		}
	}
	return false
}

// runBattery runs every verdict-level check on one program.
func runBattery(r *Report, p *lang.Program, src string, cfg Config) {
	base := core.Options{AbstractVals: true, Workers: 1, MaxStates: cfg.maxStates()}

	verify := func(name string, prg *lang.Program, opts core.Options) (*core.Verdict, bool) {
		v, err := core.Verify(prg, opts)
		if err != nil {
			if errors.Is(err, core.ErrStateBound) {
				r.skip(name)
			} else {
				r.addf("engine-error", src, "%s: %v", name, err)
			}
			return nil, false
		}
		return v, true
	}
	checkState := func(name string, prg *lang.Program, sra bool) (*staterobust.Result, bool) {
		lim := staterobust.Limits{MaxStates: cfg.raMaxStates(), Workers: 1}
		var (
			res *staterobust.Result
			err error
		)
		if sra {
			res, err = staterobust.CheckSRA(prg, lim)
		} else {
			res, err = staterobust.CheckRA(prg, lim)
		}
		if err != nil {
			if errors.Is(err, staterobust.ErrBound) {
				r.skip(name)
			} else {
				r.addf("engine-error", src, "%s: %v", name, err)
			}
			return nil, false
		}
		return res, true
	}

	// SCM route, four ways. The sequential exact run is the reference.
	seq, seqOK := verify("seq", p, base)
	if seqOK {
		if seq.Robust {
			r.Verdict = "robust"
		} else {
			r.Verdict = "non-robust"
		}
	}

	parOpts := base
	parOpts.Workers = cfg.parWorkers()
	if par, ok := verify("par", p, parOpts); ok && seqOK {
		if seq.Robust != par.Robust {
			r.addf("seq-vs-par", src, "sequential robust=%v, parallel robust=%v", seq.Robust, par.Robust)
		} else if seq.Robust && seq.States != par.States {
			// Counts are only comparable on robust (full) runs: a
			// non-robust run stops early at a worker-dependent point.
			r.addf("seq-vs-par", src, "exact state counts differ on a robust program: sequential %d, parallel %d", seq.States, par.States)
		}
	}

	hcOpts := base
	hcOpts.HashCompact = true
	if hc, ok := verify("hash-compact", p, hcOpts); ok && seqOK && seq.Robust != hc.Robust {
		r.addf("hash-compact", src, "exact robust=%v, hash-compact robust=%v", seq.Robust, hc.Robust)
	}

	fullOpts := base
	fullOpts.AbstractVals = false
	if full, ok := verify("full-vals", p, fullOpts); ok && seqOK && seq.Robust != full.Robust {
		r.addf("abstract-vs-full", src, "abstract-values robust=%v, full-values robust=%v (§5.1 abstraction must preserve the verdict)", seq.Robust, full.Robust)
	}

	// Static-pruning parity: the conflict pre-pass must never change a
	// verdict (a certificate on a non-robust program is a soundness bug
	// caught here as a verdict mismatch). On robust runs — the only ones
	// that explore the full space — the pruned state count can only
	// shrink, and must be bit-identical when the analysis found nothing
	// to prune or sharpen.
	pruneOpts := base
	pruneOpts.StaticPrune = true
	if pr, ok := verify("prune", p, pruneOpts); ok && seqOK {
		if seq.Robust != pr.Robust {
			r.addf("prune-parity", src, "unpruned robust=%v, pruned robust=%v (static pruning must preserve the verdict)", seq.Robust, pr.Robust)
		} else if seq.Robust && pr.States > seq.States {
			r.addf("prune-parity", src, "pruned run explored more states (%d) than the unpruned run (%d)", pr.States, seq.States)
		} else if seq.Robust && !pr.Certificate && pr.PrunedLocs == 0 && !pr.CritSharpened && pr.States != seq.States {
			r.addf("prune-parity", src, "analysis pruned nothing yet the state count changed: pruned %d, unpruned %d", pr.States, seq.States)
		}
		prParOpts := pruneOpts
		prParOpts.Workers = cfg.parWorkers()
		if pp, ok := verify("prune-par", p, prParOpts); ok {
			if pr.Robust != pp.Robust {
				r.addf("prune-parity", src, "pruned sequential robust=%v, pruned parallel robust=%v", pr.Robust, pp.Robust)
			} else if pr.Robust && pr.States != pp.States {
				r.addf("prune-parity", src, "pruned exact state counts differ on a robust program: sequential %d, parallel %d", pr.States, pp.States)
			}
		}
	}

	// Partial-order reduction parity: ample sets, sleep sets, and thread
	// symmetry must never change a verdict, never enlarge the explored set,
	// and must stay worker-count-deterministic (sleep sets elide edges, not
	// states). A non-robust reduced verdict carries a concretized trace —
	// symmetry canonicalization permutes thread identities mid-trace — so
	// replaying it under instrumented SC also checks the concretization.
	redOpts := base
	redOpts.Reduce = true
	if rd, ok := verify("reduce", p, redOpts); ok && seqOK {
		if seq.Robust != rd.Robust {
			r.addf("reduce-parity", src, "unreduced robust=%v, reduced robust=%v (partial-order reduction must preserve the verdict)", seq.Robust, rd.Robust)
		} else if seq.Robust && rd.States > seq.States {
			r.addf("reduce-parity", src, "reduced run explored more states (%d) than the unreduced run (%d)", rd.States, seq.States)
		}
		if !rd.Robust {
			if err := replaySC(p, rd, true, false); err != nil {
				r.addf("witness-replay-scm", src, "reduced-run witness does not replay: %v", err)
			}
		}
		rdParOpts := redOpts
		rdParOpts.Workers = cfg.parWorkers()
		if rp, ok := verify("reduce-par", p, rdParOpts); ok {
			if rd.Robust != rp.Robust {
				r.addf("reduce-parity", src, "reduced sequential robust=%v, reduced parallel robust=%v", rd.Robust, rp.Robust)
			} else if rd.Robust && rd.States != rp.States {
				r.addf("reduce-parity", src, "reduced exact state counts differ on a robust program: sequential %d, parallel %d", rd.States, rp.States)
			}
			if !rp.Robust {
				if err := replaySC(p, rp, true, false); err != nil {
					r.addf("witness-replay-scm", src, "reduced-parallel witness does not replay: %v", err)
				}
			}
		}
	}

	sraOpts := base
	sraOpts.Model = core.ModelSRA
	sraSeq, sraOK := verify("seq-sra", p, sraOpts)
	if seqOK && sraOK && seq.Robust && !sraSeq.Robust {
		r.addf("ra-implies-sra", src, "robust against RA but not against SRA — SRA behaviours are a subset of RA's")
	}

	// SCM-route witness replay: a non-robust verdict's trace must replay
	// under instrumented SC and end in a violating state.
	if seqOK && !seq.Robust {
		if err := replaySC(p, seq, true, false); err != nil {
			r.addf("witness-replay-scm", src, "RA-route witness does not replay: %v", err)
		}
	}
	if sraOK && !sraSeq.Robust {
		if err := replaySC(p, sraSeq, true, true); err != nil {
			r.addf("witness-replay-scm", src, "SRA-route witness does not replay: %v", err)
		}
	}

	// RA timestamp machine route, plus the Proposition 4.10 implication
	// and its witness replay.
	if !cfg.SkipRA {
		extras := hasExtras(p)
		lim := staterobust.Limits{MaxStates: cfg.raMaxStates(), Workers: 1}
		stRA, stOK := checkState("state-ra", p, false)
		// SRA explores a subset of RA's timestamp choices but rarely a
		// small one; when the RA leg already hit the bound, don't pay
		// for a second bounded run that will too.
		var (
			stSRA   *staterobust.Result
			stSraOK bool
		)
		if stOK {
			stSRA, stSraOK = checkState("state-sra", p, true)
		} else {
			r.skip("state-sra")
		}
		if !extras {
			if seqOK && stOK && seq.Robust && !stRA.Robust {
				r.addf("ra-vs-scm", src, "SCM route: execution-graph robust; RA machine: state-non-robust — contradicts Proposition 4.10")
			}
			if sraOK && stSraOK && sraSeq.Robust && !stSRA.Robust {
				r.addf("ra-vs-scm", src, "SCM route: execution-graph SRA-robust; SRA machine: state-non-robust — contradicts Proposition 4.10")
			}
		}
		if stOK && stSraOK && stRA.Robust && !stSRA.Robust {
			r.addf("ra-implies-sra", src, "state-robust against RA but not against SRA — SRA behaviours are a subset of RA's")
		}
		if stOK && !stRA.Robust {
			if err := staterobust.ReplayWitness(p, stRA.WitnessTrace, false, lim); err != nil {
				if errors.Is(err, staterobust.ErrBound) {
					r.skip("witness-replay-ra")
				} else {
					r.addf("witness-replay-ra", src, "RA-machine witness does not replay: %v", err)
				}
			}
		}
		if stSraOK && !stSRA.Robust {
			if err := staterobust.ReplayWitness(p, stSRA.WitnessTrace, true, lim); err != nil {
				if errors.Is(err, staterobust.ErrBound) {
					r.skip("witness-replay-sra")
				} else {
					r.addf("witness-replay-ra", src, "SRA-machine witness does not replay: %v", err)
				}
			}
		}
	}

	// Instrumented-vs-exhaustive TSO: two independent implementations of
	// the same state-robustness question. Verdicts must agree exactly; on
	// robust programs the lazy single-delayer exploration is a subset of
	// the full store-buffer product, so its state count can never be
	// larger. Both legs run with the same Limits, so a bound skip on one
	// usually means a bound skip on the other.
	if !cfg.SkipTSO {
		tsoLim := staterobust.Limits{MaxStates: cfg.tsoMaxStates(), Workers: 1}
		runTSO := func(name string, check func(*lang.Program, staterobust.Limits) (*staterobust.Result, error)) (*staterobust.Result, bool) {
			res, err := check(p, tsoLim)
			if err != nil {
				if errors.Is(err, staterobust.ErrBound) {
					r.skip(name)
				} else {
					r.addf("engine-error", src, "%s: %v", name, err)
				}
				return nil, false
			}
			return res, true
		}
		inst, instOK := runTSO("tso", model.CheckTSO)
		var (
			exh   *staterobust.Result
			exhOK bool
		)
		if instOK {
			exh, exhOK = runTSO("state-tso", staterobust.CheckTSO)
		} else {
			r.skip("state-tso")
		}
		switch {
		case !instOK || !exhOK:
		case inst.BufBoundHit || exh.BufBoundHit:
			// A capacity-truncated run under-approximates; the two
			// truncations are not comparable.
			r.skip("tso-vs-state-tso")
		case inst.Robust != exh.Robust:
			r.addf("tso-vs-state-tso", src, "instrumented TSO robust=%v, exhaustive TSO robust=%v", inst.Robust, exh.Robust)
		case exh.Robust && inst.Explored > exh.Explored:
			r.addf("tso-vs-state-tso", src, "instrumented exploration (%d states) exceeds the exhaustive product (%d) on a robust program", inst.Explored, exh.Explored)
		}
	}

	// Metamorphic no-op insertion: a private FADD(g, 0) must leave the
	// execution-graph verdict exactly unchanged (both directions).
	if seqOK {
		if mutant, ok := noopRMWMutant(p); ok {
			if mv, ok := verify("noop-mutant", mutant, base); ok && mv.Robust != seq.Robust {
				r.addf("noop-rmw-neutral", parser.Format(mutant), "inserting a no-op RMW on a private location changed the verdict: robust %v → %v", seq.Robust, mv.Robust)
			}
		}
	}

	// Metamorphic fence insertion, at the level where it is a theorem.
	if !cfg.SkipRA {
		checkFenceMonotone(r, p, src, cfg)
	}
}

// checkFenceMonotone is the sound form of the fence metamorphic relation:
// *state* robustness is monotone under inserting an SC fence (an RA run
// of the fenced program erases to an RA run of the original reaching the
// matching state — fence registers always read 0 because every fence
// message carries 0 — and fence steps re-insert into any SC run, where
// FADD is always enabled). The two CheckRA runs share an explicit
// headroom: the fence adds a write instruction, and letting each run
// derive its own headroom would give the mutant strictly more timestamp
// freedom than the baseline, turning an approximation artifact into a
// fake finding.
func checkFenceMonotone(r *Report, p *lang.Program, src string, cfg Config) {
	tid, at, ok := fencePoint(p)
	if !ok {
		return
	}
	mutant := fence.Apply(p, []fence.Placement{{Kind: fence.InsertFence, Tid: tid, At: at}})
	headroom := 3 // init slot analogue of staterobust's writes+2, plus the fence's write
	for ti := range p.Threads {
		for ii := range p.Threads[ti].Insts {
			switch p.Threads[ti].Insts[ii].Kind {
			case lang.IWrite, lang.IFADD, lang.ICAS, lang.IBCAS, lang.IXCHG:
				headroom++
			}
		}
	}
	if headroom > 12 {
		headroom = 12
	}
	lim := staterobust.Limits{MaxStates: cfg.raMaxStates(), Workers: 1, RAHeadroom: headroom}
	pre, err := staterobust.CheckRA(p, lim)
	if err != nil || !pre.Robust {
		// A bound, or a weakness the shared headroom exposes on the
		// baseline itself: the monotone premise is gone either way.
		if errors.Is(err, staterobust.ErrBound) {
			r.skip("fence-monotone")
		} else if err != nil {
			r.addf("engine-error", src, "fence-monotone baseline: %v", err)
		}
		return
	}
	post, err := staterobust.CheckRA(mutant, lim)
	if err != nil {
		if errors.Is(err, staterobust.ErrBound) {
			r.skip("fence-monotone")
		} else {
			r.addf("engine-error", src, "fence-monotone mutant: %v", err)
		}
		return
	}
	if !post.Robust {
		r.addf("fence-monotone", parser.Format(mutant), "inserting a fence flipped a state-robust program to state-non-robust (thread %d, instruction %d)", tid, at)
	}
}

// noopRMWMutant inserts `r := FADD(g, 0)` — g a fresh private location, r
// a fresh register — at the fencePoint position, remapping jump targets
// the way fence.Apply does. Returns false when the program is at the
// location limit.
func noopRMWMutant(p *lang.Program) (*lang.Program, bool) {
	if len(p.Locs) >= 64 {
		return nil, false
	}
	tid, at, ok := fencePoint(p)
	if !ok {
		return nil, false
	}
	mutant := cloneProgram(p)
	g := lang.Loc(len(mutant.Locs))
	mutant.Locs = append(mutant.Locs, lang.LocInfo{Name: "noopg"})
	th := &mutant.Threads[tid]
	reg := lang.Reg(th.NumRegs)
	th.NumRegs++
	th.RegNames = append(th.RegNames, "rnoop")
	ins := lang.Inst{
		Kind: lang.IFADD,
		Reg:  reg,
		Mem:  lang.MemRef{Base: g, Size: 1},
		E:    lang.Const(0),
	}
	th.Insts = append(th.Insts[:at:at], append([]lang.Inst{ins}, th.Insts[at:]...)...)
	for k := range th.Insts {
		in := &th.Insts[k]
		if in.Kind == lang.IGoto && in.Target > at {
			in.Target++
		}
	}
	return mutant, true
}

// fencePoint picks a deterministic fence insertion point: the middle of
// the longest thread.
func fencePoint(p *lang.Program) (lang.Tid, int, bool) {
	best, n := -1, 0
	for ti := range p.Threads {
		if l := len(p.Threads[ti].Insts); l > n {
			best, n = ti, l
		}
	}
	if best < 0 || n == 0 {
		return 0, 0, false
	}
	return lang.Tid(best), n / 2, true
}
