package diffcheck

import "repro/internal/lang"

// Minimize greedily shrinks a program while the predicate keeps holding
// (failing reports "still exhibits the bug"). Two moves, iterated to a
// fixpoint: delete a whole thread, then delete single instructions with
// jump targets remapped the way fence.Apply remaps them in reverse — a
// goto past the deleted instruction shifts down by one, a goto onto it
// lands on its successor. Candidates that no longer validate are skipped,
// so the result is always a well-formed program. The input is never
// mutated; if the predicate does not hold on the input, a copy of it is
// returned unchanged.
func Minimize(p *lang.Program, failing func(*lang.Program) bool) *lang.Program {
	cur := cloneProgram(p)
	if !failing(cur) {
		return cur
	}
	for {
		changed := false
		for ti := 0; len(cur.Threads) > 1 && ti < len(cur.Threads); ti++ {
			cand := cloneProgram(cur)
			cand.Threads = append(cand.Threads[:ti:ti], cand.Threads[ti+1:]...)
			if cand.Validate() == nil && failing(cand) {
				cur = cand
				changed = true
				ti--
			}
		}
		for ti := range cur.Threads {
			for ii := 0; ii < len(cur.Threads[ti].Insts); ii++ {
				cand := deleteInst(cur, ti, ii)
				if cand.Validate() == nil && failing(cand) {
					cur = cand
					changed = true
					ii--
				}
			}
		}
		if !changed {
			return cur
		}
	}
}

// deleteInst returns a copy of p with instruction ii of thread ti removed
// and that thread's jump targets remapped.
func deleteInst(p *lang.Program, ti, ii int) *lang.Program {
	cand := cloneProgram(p)
	th := &cand.Threads[ti]
	th.Insts = append(th.Insts[:ii:ii], th.Insts[ii+1:]...)
	for k := range th.Insts {
		in := &th.Insts[k]
		if in.Kind == lang.IGoto && in.Target > ii {
			in.Target--
		}
	}
	return cand
}

// cloneProgram copies a program deeply enough for the minimizer's edits:
// the Locs, Threads, Insts, and RegNames slices are fresh; expression
// trees are shared (the minimizer never mutates an expression).
func cloneProgram(p *lang.Program) *lang.Program {
	out := *p
	out.Locs = append([]lang.LocInfo(nil), p.Locs...)
	out.Threads = make([]lang.SeqProg, len(p.Threads))
	for i := range p.Threads {
		t := p.Threads[i]
		t.Insts = append([]lang.Inst(nil), p.Threads[i].Insts...)
		t.RegNames = append([]string(nil), p.Threads[i].RegNames...)
		out.Threads[i] = t
	}
	return &out
}
