package diffcheck

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/parser"
)

// The battery must be clean on the whole embedded corpus: these programs
// have known verdicts, so any finding here is a bug in an engine or in
// the harness itself. Big entries are skipped — their instrumented state
// spaces need bounds that would dominate the test run.
func TestBatteryLitmus(t *testing.T) {
	cfg := Config{RAMaxStates: 4000}
	for _, e := range litmus.All() {
		if e.Big {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			rep := CheckSource(e.Source, cfg)
			for _, f := range rep.Findings {
				t.Errorf("finding: %v", f)
			}
		})
	}
}

// A slice of the generator stream, exactly as cmd/fuzz drives it, plus the
// digest-invariance pairs. Uses a seed cmd/fuzz's documented runs don't,
// so a regression here is not masked by the acceptance sweep.
func TestBatteryGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("generated battery needs a few seconds")
	}
	g := gen.New(gen.Config{Seed: 7})
	cfg := Config{RAMaxStates: 4000}
	for i := 0; i < 25; i++ {
		src := g.Source(i)
		rep := CheckSource(src, cfg)
		for _, f := range rep.Findings {
			t.Errorf("program %d: finding %v\nsource:\n%s", i, f, src)
		}
		if f := CheckVariantDigest(src, g.Variant(i, 1)); f != nil {
			t.Errorf("program %d: %v", i, f)
		}
	}
}

func TestCheckVariantDigest(t *testing.T) {
	base := "vals 2\nlocs x\nlocs y\n\nthread a\n  x := 1\n  r := y\nend\n"
	renamed := "vals 2\nlocs u\nlocs v\n\nthread b\n  u := 1\n  s := v\nend\n"
	if f := CheckVariantDigest(base, renamed); f != nil {
		t.Errorf("renamed variant flagged: %v", f)
	}
	different := "vals 2\nlocs x\nlocs y\n\nthread a\n  x := 1\n  r := x\nend\n"
	if f := CheckVariantDigest(base, different); f == nil {
		t.Errorf("semantically different program not flagged")
	}
}

// Minimize must shrink to a local minimum of the predicate: with
// "contains a write to x0" as the property, that is one thread with one
// instruction.
func TestMinimize(t *testing.T) {
	src := `vals 2
locs x0
locs x1

thread t0
  r0 := x1
  x0 := 1
  r1 := FADD(x1, 0)
end

thread t1
  x1 := 1
  wait(x1 = 1)
end

thread t2
  r0 := CAS(x0, 0, 1)
end
`
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	hasWrite := func(q *lang.Program) bool {
		for ti := range q.Threads {
			for ii := range q.Threads[ti].Insts {
				in := &q.Threads[ti].Insts[ii]
				if in.Kind == lang.IWrite && in.Mem.Base == 0 {
					return true
				}
			}
		}
		return false
	}
	min := Minimize(p, hasWrite)
	if !hasWrite(min) {
		t.Fatalf("minimized program lost the property:\n%s", parser.Format(min))
	}
	if err := min.Validate(); err != nil {
		t.Fatalf("minimized program does not validate: %v", err)
	}
	insts := 0
	for ti := range min.Threads {
		insts += len(min.Threads[ti].Insts)
	}
	if len(min.Threads) != 1 || insts != 1 {
		t.Errorf("not minimal: %d threads, %d instructions\n%s", len(min.Threads), insts, parser.Format(min))
	}
}

// The no-op mutant must validate, keep the original's digest-relevant
// behaviour out of reach (fresh location, fresh register), and round-trip.
func TestNoopRMWMutant(t *testing.T) {
	src := "vals 2\nlocs x\n\nthread a\n  x := 1\n  r := x\n  goto L\nL:\nend\n"
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := noopRMWMutant(p)
	if !ok {
		t.Fatal("no-op mutant not constructed")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("mutant does not validate: %v\n%s", err, parser.Format(m))
	}
	if len(m.Locs) != len(p.Locs)+1 {
		t.Errorf("mutant has %d locations, want %d", len(m.Locs), len(p.Locs)+1)
	}
	found := 0
	for ti := range m.Threads {
		for ii := range m.Threads[ti].Insts {
			in := &m.Threads[ti].Insts[ii]
			if in.Kind == lang.IFADD && in.Mem.Base == lang.Loc(len(p.Locs)) {
				found++
			}
		}
	}
	if found != 1 {
		t.Errorf("mutant has %d no-op FADDs, want 1", found)
	}
	if _, err := parser.Parse(parser.Format(m)); err != nil {
		t.Errorf("mutant listing does not parse: %v\n%s", err, parser.Format(m))
	}
	// The original must be untouched.
	if got := parser.Format(p); !strings.Contains(got, "goto") || strings.Contains(got, "FADD") {
		t.Errorf("original program mutated:\n%s", got)
	}
}
