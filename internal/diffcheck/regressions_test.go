package diffcheck

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/parser"
	"repro/internal/prog"
)

// Every minimized fuzzing repro committed under testdata/regressions runs
// through the full battery forever: each file is a program on which some
// pair of routes once disagreed (or which witnesses a falsified harness
// assumption), so the battery staying clean on it is the regression test.
func TestRegressionsCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "regressions")
	files, err := filepath.Glob(filepath.Join(dir, "*.lit"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no .lit files under %s — the seed corpus should be committed", dir)
	}
	cfg := Config{RAMaxStates: 4000}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			b, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			src := string(b)
			p, err := parser.Parse(src)
			if err != nil {
				t.Fatalf("does not parse: %v", err)
			}
			// Committed repros are Format output (plus a comment header):
			// reparsing must be the identity, on the digest and on the text.
			f := parser.Format(p)
			q, err := parser.Parse(f)
			if err != nil {
				t.Fatalf("formatted listing does not parse: %v\n%s", err, f)
			}
			if dp, dq := prog.CanonicalDigest(p), prog.CanonicalDigest(q); dp != dq {
				t.Errorf("digest changed across Parse∘Format: %s vs %s", dp, dq)
			}
			if f2 := parser.Format(q); f2 != f {
				t.Errorf("Format not a fixpoint:\nfirst:\n%s\nsecond:\n%s", f, f2)
			}
			rep := CheckSource(src, cfg)
			for _, fd := range rep.Findings {
				t.Errorf("finding: %v", fd)
			}
		})
	}
}
