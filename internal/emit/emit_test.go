package emit_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/litmus"
)

// goRun compiles and runs a generated verifier, returning its stdout and
// whether it exited zero.
func goRun(t *testing.T, src string) (string, bool) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "main.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", path)
	cmd.Env = append(os.Environ(), "GOFLAGS=", "GO111MODULE=off")
	out, err := cmd.CombinedOutput()
	if err != nil {
		if _, isExit := err.(*exec.ExitError); !isExit {
			t.Fatalf("go run: %v\n%s", err, out)
		}
		return string(out), false
	}
	return string(out), true
}

var statesRe = regexp.MustCompile(`\((\d+) states\)`)

// TestGeneratedVerifierAgrees compiles standalone verifiers for a slice of
// the corpus and checks that verdicts AND explored state counts match the
// in-process engine exactly — the generated code is the same algorithm
// specialized, so any divergence is a compiler bug.
func TestGeneratedVerifierAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain per program")
	}
	names := []string{
		"SB", "MP", "IRIW", "2+2W", "2RMW", "SB+RMWs", "BAR-loop",
		"barrier", "peterson-sc", "peterson-ra", "peterson-ra-dmitriy",
		"dekker-tso", "spinlock", "ticketlock", "ttas-spin", "dcl",
		"dcl-na-broken", "treiber-stack", "seqlock",
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			e, err := litmus.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			p := e.Program()
			src, err := emit.Generate(p, emit.Options{AbstractVals: true})
			if err != nil {
				t.Fatal(err)
			}
			out, ok := goRun(t, src)
			want, err := core.Verify(p, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if ok != want.Robust {
				t.Fatalf("generated verdict robust=%v, engine says %v\noutput:\n%s", ok, want.Robust, out)
			}
			m := statesRe.FindStringSubmatch(out)
			if m == nil {
				t.Fatalf("no state count in output:\n%s", out)
			}
			states, _ := strconv.Atoi(m[1])
			if states != want.States {
				t.Errorf("generated explored %d states, engine %d\noutput:\n%s", states, want.States, out)
			}
			if !want.Robust && !strings.Contains(out, "NOT-ROBUST") {
				t.Errorf("missing NOT-ROBUST banner:\n%s", out)
			}
		})
	}
}

// TestGeneratedVerifierFullMode checks the un-abstracted generated
// monitor agrees too.
func TestGeneratedVerifierFullMode(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	for _, name := range []string{"SB", "MP", "ticketlock"} {
		e, _ := litmus.Get(name)
		p := e.Program()
		src, err := emit.Generate(p, emit.Options{AbstractVals: false})
		if err != nil {
			t.Fatal(err)
		}
		out, ok := goRun(t, src)
		want, _ := core.Verify(p, core.Options{AbstractVals: false})
		if ok != want.Robust {
			t.Fatalf("%s (full): generated robust=%v, engine %v\n%s", name, ok, want.Robust, out)
		}
	}
}

// TestGenerateRejectsOversized checks the front-end limits.
func TestGenerateRejectsOversized(t *testing.T) {
	e, _ := litmus.Get("SB")
	p := e.Program()
	// Inflate a thread past the uint8 pc encoding.
	for len(p.Threads[0].Insts) <= 260 {
		p.Threads[0].Insts = append(p.Threads[0].Insts, p.Threads[0].Insts[0])
	}
	if _, err := emit.Generate(p, emit.Options{AbstractVals: true}); err == nil {
		t.Fatal("expected a size error")
	}
}

// TestGeneratedSourceShape sanity-checks the emitted text without running
// the toolchain (this part runs in -short mode).
func TestGeneratedSourceShape(t *testing.T) {
	e, _ := litmus.Get("rcu")
	src, err := emit.Generate(e.Program(), emit.Options{AbstractVals: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package main", "func stepWrite", "func stepRead", "func stepRMW",
		"func canon", "func checkOp", "func main()", "Code generated",
		fmt.Sprintf("nT = %d", 4),
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}
