package emit

import "fmt"

// dispatch emits the fixed op machinery and the per-thread dispatch
// tables.
func (g *gen) dispatch() {
	g.raw(`// Pending memory operations (cf. internal/prog.MemOp).
const (
	opNone = iota
	opWrite
	opRead
	opFADD
	opCAS
	opWait
	opBCAS
	opXCHG
)

type op struct {
	kind uint8
	loc  uint8
	a, b uint8 // write val / FADD add / CAS,BCAS exp,new / wait val / XCHG new
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func imod(a, b int) int {
	if b == 0 {
		return 0
	}
	return a % b
}`)
	g.w("")
	var eps, ops, apps []string
	for t := range g.p.Threads {
		eps = append(eps, fmt.Sprintf("eps%d", t))
		ops = append(ops, fmt.Sprintf("op%d", t))
		apps = append(apps, fmt.Sprintf("app%d", t))
	}
	g.w("var epsFns = [nT]func(*state) bool{%s}", join(eps))
	g.w("var opFns = [nT]func(*state) op{%s}", join(ops))
	g.w("var appFns = [nT]func(*state, uint8){%s}", join(apps))
	g.w("")
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}

// checks emits the Theorem 5.3 robustness conditions (with the §5.1
// abstract-value refinements) and the Definition 6.1 racy-state check.
func (g *gen) checks() {
	g.raw(`// checkOp evaluates the Theorem 5.3 conditions for thread tau whose
// pending operation is o; reports a violation description or "".
func checkOp(s *state, tau int, o op) string {
	if o.kind == opNone || naLoc[o.loc] {
		return ""
	}
	x := int(o.loc)
	if s.b[oVSC+tau]&(1<<x) == 0 {
		return ""
	}
	v := s.b[oV+tau*nL+x]
	vr := s.b[oVR+tau*nL+x]
	cv := s.b[oCV+tau]&(1<<x) != 0
	cvr := s.b[oCVR+tau]&(1<<x) != 0
	switch o.kind {
	case opWrite, opFADD, opXCHG:
		if vr != 0 || cvr {
			return "stale write/RMW placement at " + locName[x]
		}
	case opRead:
		if v != 0 || cv {
			return "stale read at " + locName[x]
		}
	case opWait:
		wb := uint64(1) << o.a
		if v&wb != 0 || (crit[x]&wb == 0 && cv) {
			return "stale read at " + locName[x]
		}
	case opCAS:
		eb := uint64(1) << o.a
		if vr&eb != 0 || (crit[x]&eb == 0 && cvr) {
			return "stale RMW at " + locName[x]
		}
		if v&^eb != 0 || cv {
			return "stale read at " + locName[x]
		}
	case opBCAS:
		eb := uint64(1) << o.a
		if vr&eb != 0 || (crit[x]&eb == 0 && cvr) {
			return "stale RMW at " + locName[x]
		}
	}
	return ""
}

// checkRace evaluates the Definition 6.1 racy-state condition.
func checkRace(ops *[nT]op) string {
	for i := 0; i < nT; i++ {
		if ops[i].kind == opNone || !naLoc[ops[i].loc] {
			continue
		}
		for j := i + 1; j < nT; j++ {
			if ops[j].kind == opNone || !naLoc[ops[j].loc] || ops[i].loc != ops[j].loc {
				continue
			}
			if ops[i].kind == opWrite || ops[j].kind == opWrite {
				return "data race on " + locName[ops[i].loc]
			}
		}
	}
	return ""
}`)
	g.w("")
}

// mainFunc emits the BFS driver with counterexample reconstruction.
func (g *gen) mainFunc() {
	g.w("// stepRec records one transition for trace reconstruction.")
	g.raw(`type stepRec struct {
	tid      uint8
	kind     uint8 // 0 write, 1 read, 2 rmw
	loc      uint8
	vr, vw   uint8
}

func main() {
	s0 := initState()
	for t := 0; t < nT; t++ {
		if !epsFns[t](&s0) {
			fmt.Println("NOT-ROBUST: assertion failed during initialization")
			os.Exit(1)
		}
	}
	visited := map[state]int32{canon(s0): 0}
	parents := []int32{-1}
	steps := []stepRec{{}}
	queue := []state{s0}
	report := func(id int32, why string) {
		fmt.Printf("NOT-ROBUST: %s (%d states)\n", why, len(visited))
		var rev []stepRec
		for id >= 0 && parents[id] >= 0 {
			rev = append(rev, steps[id])
			id = parents[id]
		}
		for i := len(rev) - 1; i >= 0; i-- {
			r := rev[i]
			switch r.kind {
			case 0:
				fmt.Printf("  %s: W(%s,%d)\n", thrName[r.tid], locName[r.loc], r.vw)
			case 1:
				fmt.Printf("  %s: R(%s,%d)\n", thrName[r.tid], locName[r.loc], r.vr)
			default:
				fmt.Printf("  %s: RMW(%s,%d,%d)\n", thrName[r.tid], locName[r.loc], r.vr, r.vw)
			}
		}
		os.Exit(1)
	}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		curID := visited[canon(cur)]
		var ops [nT]op
		for t := 0; t < nT; t++ {
			ops[t] = opFns[t](&cur)
		}
		for t := 0; t < nT; t++ {
			if why := checkOp(&cur, t, ops[t]); why != "" {
				report(curID, fmt.Sprintf("thread %s: %s", thrName[t], why))
			}
		}
		if why := checkRace(&ops); why != "" {
			report(curID, why)
		}
		for t := 0; t < nT; t++ {
			o := ops[t]
			if o.kind == opNone {
				continue
			}
			next := cur
			m := next.m[o.loc]
			var rec stepRec
			rec.tid = uint8(t)
			rec.loc = o.loc
			switch o.kind {
			case opWrite:
				if naLoc[o.loc] {
					next.m[o.loc] = o.a // §6: NA accesses bypass the monitor
				} else {
					stepWrite(&next, t, int(o.loc), o.a)
				}
				appFns[t](&next, 0)
				rec.kind, rec.vw = 0, o.a
			case opRead:
				if !naLoc[o.loc] {
					stepRead(&next, t, int(o.loc))
				}
				appFns[t](&next, m)
				rec.kind, rec.vr = 1, m
			case opFADD:
				vw := uint8((int(m) + int(o.a)) % nV)
				stepRMW(&next, t, int(o.loc), vw)
				appFns[t](&next, m)
				rec.kind, rec.vr, rec.vw = 2, m, vw
			case opXCHG:
				stepRMW(&next, t, int(o.loc), o.a)
				appFns[t](&next, m)
				rec.kind, rec.vr, rec.vw = 2, m, o.a
			case opCAS:
				if m == o.a {
					stepRMW(&next, t, int(o.loc), o.b)
					rec.kind, rec.vr, rec.vw = 2, m, o.b
				} else {
					stepRead(&next, t, int(o.loc))
					rec.kind, rec.vr = 1, m
				}
				appFns[t](&next, m)
			case opWait:
				if m != o.a {
					continue
				}
				stepRead(&next, t, int(o.loc))
				appFns[t](&next, m)
				rec.kind, rec.vr = 1, m
			case opBCAS:
				if m != o.a {
					continue
				}
				stepRMW(&next, t, int(o.loc), o.b)
				appFns[t](&next, m)
				rec.kind, rec.vr, rec.vw = 2, m, o.b
			}
			if !epsFns[t](&next) {
				steps = append(steps, rec)
				parents = append(parents, curID)
				report(int32(len(parents)-1), fmt.Sprintf("assertion failed in %s", thrName[t]))
			}
			key := canon(next)
			if _, ok := visited[key]; !ok {
				visited[key] = int32(len(parents))
				parents = append(parents, curID)
				steps = append(steps, rec)
				queue = append(queue, next)
			}
		}
	}
	fmt.Printf("ROBUST (%d states)\n", len(visited))
}`)
}
