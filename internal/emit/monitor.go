package emit

// monitor emits the SCM transition functions (Figures 5 and 6 and the
// Appendix C summaries) into the generated verifier, specialized to the
// constant dimensions. The code mirrors internal/scm; the property tests
// there (Lemma 5.2) are the semantic ground truth, and the generator's own
// tests check verdict agreement between the generated verifier and the
// in-process one.
func (g *gen) monitor() {
	g.raw(`// stepWrite applies the SCM transition for ⟨tau, W(x, v)⟩.
func stepWrite(s *state, tau, x int, v uint8) {
	xb := uint64(1) << x
	vR := s.m[x]
	vrCrit := crit[x]&(1<<vR) != 0
	var vrBit uint64
	if vrCrit {
		vrBit = 1 << vR
	}
	oldVSCt := s.b[oVSC+tau]
	oldMSCx := s.b[oMSC+x]
	for p := 0; p < nT; p++ {
		if p == tau {
			s.b[oVSC+p] = oldVSCt | oldMSCx
		} else {
			s.b[oVSC+p] &^= xb
		}
	}
	for y := 0; y < nL; y++ {
		if y == x {
			s.b[oMSC+y] = oldMSCx | oldVSCt
			s.b[oWSC+y] = oldMSCx | oldVSCt
		} else {
			s.b[oMSC+y] &^= xb
			s.b[oWSC+y] &^= xb
		}
	}
	copy(s.b[oW+x*nL:oW+(x+1)*nL], s.b[oV+tau*nL:oV+(tau+1)*nL])
	copy(s.b[oWR+x*nL:oWR+(x+1)*nL], s.b[oVR+tau*nL:oVR+(tau+1)*nL])
	s.b[oW+x*nL+x] = 0
	s.b[oWR+x*nL+x] = 0
	oldCVt := s.b[oCV+tau]
	oldCVRt := s.b[oCVR+tau]
	for p := 0; p < nT; p++ {
		if p == tau {
			s.b[oV+p*nL+x] = 0
			s.b[oVR+p*nL+x] = 0
			s.b[oCV+p] &^= xb
			s.b[oCVR+p] &^= xb
		} else {
			s.b[oV+p*nL+x] |= vrBit
			s.b[oVR+p*nL+x] |= vrBit
			if !vrCrit {
				s.b[oCV+p] |= xb
				s.b[oCVR+p] |= xb
			}
		}
	}
	for z := 0; z < nL; z++ {
		if z == x {
			s.b[oCW+z] = oldCVt &^ xb
			s.b[oCWR+z] = oldCVRt &^ xb
		} else {
			s.b[oW+z*nL+x] |= vrBit
			s.b[oWR+z*nL+x] |= vrBit
			if !vrCrit {
				s.b[oCW+z] |= xb
				s.b[oCWR+z] |= xb
			}
		}
	}
	s.m[x] = v
}

// stepRead applies the SCM transition for ⟨tau, R(x, M(x))⟩.
func stepRead(s *state, tau, x int) {
	oldVSCt := s.b[oVSC+tau]
	s.b[oVSC+tau] = oldVSCt | s.b[oWSC+x]
	s.b[oMSC+x] |= oldVSCt
	for y := 0; y < nL; y++ {
		s.b[oV+tau*nL+y] &= s.b[oW+x*nL+y]
		s.b[oVR+tau*nL+y] &= s.b[oWR+x*nL+y]
	}
	s.b[oCV+tau] &= s.b[oCW+x]
	s.b[oCVR+tau] &= s.b[oCWR+x]
}

// stepRMW applies the SCM transition for ⟨tau, RMW(x, M(x), vW)⟩.
func stepRMW(s *state, tau, x int, vW uint8) {
	xb := uint64(1) << x
	vR := s.m[x]
	vrCrit := crit[x]&(1<<vR) != 0
	var vrBit uint64
	if vrCrit {
		vrBit = 1 << vR
	}
	oldVSCt := s.b[oVSC+tau]
	oldMSCx := s.b[oMSC+x]
	for p := 0; p < nT; p++ {
		if p == tau {
			s.b[oVSC+p] = oldVSCt | oldMSCx
		} else {
			s.b[oVSC+p] &^= xb
		}
	}
	for y := 0; y < nL; y++ {
		if y == x {
			s.b[oMSC+y] = oldMSCx | oldVSCt
			s.b[oWSC+y] = oldMSCx | oldVSCt
		} else {
			s.b[oMSC+y] &^= xb
			s.b[oWSC+y] &^= xb
		}
	}
	oldCVt, oldCVRt := s.b[oCV+tau], s.b[oCVR+tau]
	oldCWx, oldCWRx := s.b[oCW+x], s.b[oCWR+x]
	for y := 0; y < nL; y++ {
		vi := s.b[oV+tau*nL+y] & s.b[oW+x*nL+y]
		s.b[oV+tau*nL+y] = vi
		s.b[oW+x*nL+y] = vi
		ri := s.b[oVR+tau*nL+y] & s.b[oWR+x*nL+y]
		s.b[oVR+tau*nL+y] = ri
		s.b[oWR+x*nL+y] = ri
	}
	s.b[oW+x*nL+x] = 0
	s.b[oWR+x*nL+x] = 0
	s.b[oV+tau*nL+x] = 0
	s.b[oVR+tau*nL+x] = 0
	s.b[oCV+tau] = oldCVt & oldCWx
	s.b[oCW+x] = (oldCWx & oldCVt) &^ xb
	s.b[oCVR+tau] = oldCVRt & oldCWRx
	s.b[oCWR+x] = (oldCWRx & oldCVRt) &^ xb
	for p := 0; p < nT; p++ {
		if p != tau {
			s.b[oV+p*nL+x] |= vrBit
			if !vrCrit {
				s.b[oCV+p] |= xb
			}
		}
	}
	for z := 0; z < nL; z++ {
		if z != x {
			s.b[oW+z*nL+x] |= vrBit
			if !vrCrit {
				s.b[oCW+z] |= xb
			}
		}
	}
	s.m[x] = vW
}

// initState returns SCM's initial state composed with the program's
// initial state (Init of §5).
func initState() state {
	var s state
	allLocs := uint64(1)<<nL - 1
	for t := 0; t < nT; t++ {
		s.b[oVSC+t] = allLocs
	}
	for x := 0; x < nL; x++ {
		s.b[oMSC+x] = 1 << x
		s.b[oWSC+x] = 1 << x
	}
	return s
}
`)
}
