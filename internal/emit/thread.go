package emit

import (
	"fmt"
	"strings"

	"repro/internal/lang"
)

// exprInt compiles an expression to a Go int expression with value in
// [0, nV), reading registers from the flat register array at the thread's
// offset.
func (g *gen) exprInt(t int, e *lang.Expr) string {
	switch e.Kind {
	case lang.EConst:
		return fmt.Sprintf("%d", int(e.Const)%g.p.ValCount)
	case lang.EReg:
		return fmt.Sprintf("int(s.regs[%d])", g.regOff[t]+int(e.Reg))
	case lang.ENot:
		return fmt.Sprintf("b2i(%s == 0)", g.exprInt(t, e.L))
	}
	l, r := g.exprInt(t, e.L), g.exprInt(t, e.R)
	switch e.Op {
	case lang.OpAdd:
		return fmt.Sprintf("((%s + %s) %% nV)", l, r)
	case lang.OpSub:
		return fmt.Sprintf("(((%s - %s) %% nV + nV) %% nV)", l, r)
	case lang.OpMul:
		return fmt.Sprintf("((%s * %s) %% nV)", l, r)
	case lang.OpMod:
		return fmt.Sprintf("imod(%s, %s)", l, r)
	case lang.OpEq:
		return fmt.Sprintf("b2i(%s == %s)", l, r)
	case lang.OpNe:
		return fmt.Sprintf("b2i(%s != %s)", l, r)
	case lang.OpLt:
		return fmt.Sprintf("b2i(%s < %s)", l, r)
	case lang.OpLe:
		return fmt.Sprintf("b2i(%s <= %s)", l, r)
	case lang.OpGt:
		return fmt.Sprintf("b2i(%s > %s)", l, r)
	case lang.OpGe:
		return fmt.Sprintf("b2i(%s >= %s)", l, r)
	case lang.OpAnd:
		return fmt.Sprintf("b2i(%s != 0 && %s != 0)", l, r)
	case lang.OpOr:
		return fmt.Sprintf("b2i(%s != 0 || %s != 0)", l, r)
	}
	panic("emit: unknown operator")
}

// memLoc compiles a memory-reference resolution to a Go int expression.
func (g *gen) memLoc(t int, m lang.MemRef) string {
	if m.Index == nil {
		return fmt.Sprintf("%d", m.Base)
	}
	return fmt.Sprintf("(%d + (%s)%%%d)", m.Base, g.exprInt(t, m.Index), m.Size)
}

// thread emits the specialized step functions of thread t:
//
//	epsN: run ε-instructions to the next memory operation; false on a
//	      failed assert
//	opN:  the pending memory operation (kind/loc/operands evaluated)
//	appN: apply a memory label (vr = read value) and advance
func (g *gen) thread(t int) {
	th := &g.p.Threads[t]
	term := len(th.Insts)
	g.w("// Thread %d (%s).", t, th.Name)
	g.w("func eps%d(s *state) bool {", t)
	g.w("\tfor budget := 0; ; budget++ {")
	g.w("\t\tif budget > 1<<16 { s.pc[%d] = %d; return true } // local ε-divergence: park", t, term)
	g.w("\t\tswitch s.pc[%d] {", t)
	for pc := range th.Insts {
		in := &th.Insts[pc]
		if in.IsMem() {
			continue
		}
		g.w("\t\tcase %d:", pc)
		switch in.Kind {
		case lang.IAssign:
			g.w("\t\t\ts.regs[%d] = uint8(%s)", g.regOff[t]+int(in.Reg), g.exprInt(t, in.E))
			g.w("\t\t\ts.pc[%d] = %d", t, pc+1)
		case lang.IGoto:
			g.w("\t\t\tif %s != 0 { s.pc[%d] = %d } else { s.pc[%d] = %d }",
				g.exprInt(t, in.E), t, in.Target, t, pc+1)
		case lang.IAssert:
			g.w("\t\t\tif %s == 0 { return false }", g.exprInt(t, in.E))
			g.w("\t\t\ts.pc[%d] = %d", t, pc+1)
		}
	}
	g.w("\t\tdefault:")
	g.w("\t\t\treturn true // at a memory instruction or terminated")
	g.w("\t\t}")
	g.w("\t}")
	g.w("}")
	g.w("")

	g.w("func op%d(s *state) op {", t)
	g.w("\tswitch s.pc[%d] {", t)
	for pc := range th.Insts {
		in := &th.Insts[pc]
		if !in.IsMem() {
			continue
		}
		g.w("\tcase %d:", pc)
		loc := g.memLoc(t, in.Mem)
		switch in.Kind {
		case lang.IWrite:
			g.w("\t\treturn op{kind: opWrite, loc: uint8(%s), a: uint8(%s)}", loc, g.exprInt(t, in.E))
		case lang.IRead:
			g.w("\t\treturn op{kind: opRead, loc: uint8(%s)}", loc)
		case lang.IFADD:
			g.w("\t\treturn op{kind: opFADD, loc: uint8(%s), a: uint8(%s)}", loc, g.exprInt(t, in.E))
		case lang.IXCHG:
			g.w("\t\treturn op{kind: opXCHG, loc: uint8(%s), a: uint8(%s)}", loc, g.exprInt(t, in.E))
		case lang.ICAS:
			g.w("\t\treturn op{kind: opCAS, loc: uint8(%s), a: uint8(%s), b: uint8(%s)}",
				loc, g.exprInt(t, in.ER), g.exprInt(t, in.EW))
		case lang.IWait:
			g.w("\t\treturn op{kind: opWait, loc: uint8(%s), a: uint8(%s)}", loc, g.exprInt(t, in.E))
		case lang.IBCAS:
			g.w("\t\treturn op{kind: opBCAS, loc: uint8(%s), a: uint8(%s), b: uint8(%s)}",
				loc, g.exprInt(t, in.ER), g.exprInt(t, in.EW))
		}
	}
	g.w("\t}")
	g.w("\treturn op{kind: opNone}")
	g.w("}")
	g.w("")

	g.w("func app%d(s *state, vr uint8) {", t)
	g.w("\tswitch s.pc[%d] {", t)
	for pc := range th.Insts {
		in := &th.Insts[pc]
		if !in.IsMem() {
			continue
		}
		var set string
		switch in.Kind {
		case lang.IRead, lang.IFADD, lang.ICAS, lang.IXCHG:
			set = fmt.Sprintf("s.regs[%d] = vr; ", g.regOff[t]+int(in.Reg))
		}
		g.w("\tcase %d:", pc)
		g.w("\t\t%ss.pc[%d] = %d", set, t, pc+1)
	}
	g.w("\t}")
	g.w("}")
	g.w("")
	_ = strings.TrimSpace
}
