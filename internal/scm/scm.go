// Package scm implements SCM, the finite instrumented sequentially
// consistent memory of §5 of the paper — its primary contribution. SCM
// simulates SCG (it has exactly SC's traces) while tracking, in finitely
// many bits, the properties of the underlying execution graph needed to
// monitor execution-graph robustness against RA (Theorem 5.3) and data
// races on non-atomic locations (Theorem 6.2).
//
// A state carries eight tracking components beyond the plain SC memory M:
//
//	VSC : Tid → P(Loc)        x ∈ VSC(τ)  iff τ is hbSC-aware of wmax_x
//	MSC : Loc → P(Loc)        y ∈ MSC(x)  iff wmax_y has an hbSC-path to
//	                          some access of x
//	WSC : Loc → P(Loc)        y ∈ WSC(x)  iff wmax_y has an hbSC?-path to
//	                          wmax_x
//	V   : Tid → Loc → P(Val)  values of non-mo-maximal writes to x that
//	                          thread τ could still read under RAG
//	W   : Loc → Loc → P(Val)  values of non-maximal writes to y not
//	                          mo;hb?-before wmax_x
//	VRMW, WRMW                as V, W but further excluding writes already
//	                          read by an RMW (candidates for write/RMW
//	                          predecessor writes)
//
// plus, under the §5.1 abstract value management, four summary components
// CV, CW, CVRMW, CWRMW : P(Loc) that record, disjunctively, the presence of
// non-critical values in the corresponding V/W/VRMW/WRMW sets, which are
// themselves restricted to the critical values Val(P, x) (Definition 5.5).
// Running with every value critical yields exactly the unoptimized §5
// construction (the summaries stay empty invariantly).
//
// All location sets and value sets are uint64 bitsets, laid out in one flat
// slice per state (the verifier clones and hashes millions of these), so a
// full SCM state costs O(|Tid|·|Loc| + |Loc|²) words, matching the §5.1
// metadata-size analysis (see Bits).
package scm

import (
	"repro/internal/lang"
)

// Monitor holds the static configuration of the instrumented memory: the
// shape of the program, the critical-value assignment, and the layout of
// the flat state vector.
type Monitor struct {
	T, L     int      // |Tid|, |Loc|
	ValCount int      // |Val|
	Crit     []uint64 // per location: bitmask of critical values (§5.1)
	NA       []bool   // per location: non-atomic? (§6)
	// SRA switches the robustness conditions to the SRA model (an
	// extension in the direction of the paper's §9): under SRA, writes
	// and RMW-writes are placed mo-maximally, so only the read-type
	// conditions of Theorem 5.3 can witness non-robustness. The tracked
	// components are unchanged — they are properties of the SC runs.
	SRA bool
	// Tracked restricts instrumentation to a subset of locations (the
	// static pre-pass of internal/analysis). The monitor state is a
	// direct product of per-location "planes" — for location y: the
	// y-bits of VSC/CV/CVR/CW/CWR, the y-columns of the MSC/WSC rows,
	// and the V/VR/W/WR (·)(y) value sets — and every transition updates
	// each plane from that plane alone. Masking untracked planes to zero
	// therefore leaves tracked planes bit-identical to the full monitor
	// along every SC run, while CheckOp at an untracked location
	// self-disables through its VSC guard. Sound whenever no robustness
	// violation can be flagged at an untracked location (the conflict
	// cycle criterion of internal/analysis). NewMonitor defaults it to
	// all locations = the unoptimized construction.
	Tracked uint64

	// Offsets into State.B of each component.
	oVSC, oMSC, oWSC     int // loc-sets: [T], [L], [L]
	oV, oVR              int // val-sets: [T*L] each, index τ*L+x
	oW, oWR              int // val-sets: [L*L] each, index z*L+y
	oCV, oCVR, oCW, oCWR int // loc-sets: [T], [T], [L], [L]
	words                int // total length of B
	allLocs              uint64
}

// NewMonitor builds a monitor for a program shape. crit must have one mask
// per location (use prog.CriticalVals for the §5.1 abstraction or
// prog.FullCriticalVals for full tracking); na may be nil when every
// location is release/acquire.
func NewMonitor(numThreads, numLocs, valCount int, crit []uint64, na []bool) *Monitor {
	if na == nil {
		na = make([]bool, numLocs)
	}
	m := &Monitor{T: numThreads, L: numLocs, ValCount: valCount, Crit: crit, NA: na}
	T, L := numThreads, numLocs
	off := 0
	next := func(n int) int { o := off; off += n; return o }
	m.oVSC = next(T)
	m.oMSC = next(L)
	m.oWSC = next(L)
	m.oV = next(T * L)
	m.oVR = next(T * L)
	m.oW = next(L * L)
	m.oWR = next(L * L)
	m.oCV = next(T)
	m.oCVR = next(T)
	m.oCW = next(L)
	m.oCWR = next(L)
	m.words = off
	if L == 64 {
		m.allLocs = ^uint64(0)
	} else {
		m.allLocs = uint64(1)<<L - 1
	}
	m.Tracked = m.allLocs
	return m
}

// State is a state of SCM:
// I = ⟨M, VSC, MSC, WSC, V, W, VRMW, WRMW⟩ (+ the §5.1 summaries), stored
// as the SC memory M plus one flat bitset vector B laid out per the
// monitor's offsets.
type State struct {
	M []lang.Val
	B []uint64
}

// Component accessors (by value; use the returned indices for writes).

// VSC returns the hbSC-awareness set of thread t as a Loc bitset.
func (mon *Monitor) VSC(s *State, t int) uint64 { return s.B[mon.oVSC+t] }

// V returns V(t)(x) as a Val bitset.
func (mon *Monitor) V(s *State, t, x int) uint64 { return s.B[mon.oV+t*mon.L+x] }

// VR returns VRMW(t)(x) as a Val bitset.
func (mon *Monitor) VR(s *State, t, x int) uint64 { return s.B[mon.oVR+t*mon.L+x] }

// W returns W(z)(y) as a Val bitset.
func (mon *Monitor) W(s *State, z, y int) uint64 { return s.B[mon.oW+z*mon.L+y] }

// WR returns WRMW(z)(y) as a Val bitset.
func (mon *Monitor) WR(s *State, z, y int) uint64 { return s.B[mon.oWR+z*mon.L+y] }

// MSC returns MSC(x) as a Loc bitset.
func (mon *Monitor) MSC(s *State, x int) uint64 { return s.B[mon.oMSC+x] }

// WSC returns WSC(x) as a Loc bitset.
func (mon *Monitor) WSC(s *State, x int) uint64 { return s.B[mon.oWSC+x] }

// CV returns the CV summary of thread t as a Loc bitset.
func (mon *Monitor) CV(s *State, t int) uint64 { return s.B[mon.oCV+t] }

// CVR returns the CVRMW summary of thread t as a Loc bitset.
func (mon *Monitor) CVR(s *State, t int) uint64 { return s.B[mon.oCVR+t] }

// CW returns the CW summary of location z as a Loc bitset.
func (mon *Monitor) CW(s *State, z int) uint64 { return s.B[mon.oCW+z] }

// CWR returns the CWRMW summary of location z as a Loc bitset.
func (mon *Monitor) CWR(s *State, z int) uint64 { return s.B[mon.oCWR+z] }

// Init returns SCM's initial state: M = λx.0; VSC = λτ.Loc;
// MSC = WSC = λx.{x}; all value-tracking components empty (§5).
func (mon *Monitor) Init() *State {
	s := &State{
		M: make([]lang.Val, mon.L),
		B: make([]uint64, mon.words),
	}
	for t := 0; t < mon.T; t++ {
		s.B[mon.oVSC+t] = mon.allLocs & mon.Tracked
	}
	for x := 0; x < mon.L; x++ {
		s.B[mon.oMSC+x] = (1 << x) & mon.Tracked
		s.B[mon.oWSC+x] = (1 << x) & mon.Tracked
	}
	return s
}

// Clone returns a deep copy.
func (s *State) Clone() *State {
	return &State{
		M: append([]lang.Val(nil), s.M...),
		B: append([]uint64(nil), s.B...),
	}
}

// CopyFrom overwrites s with o (same monitor shape assumed).
func (s *State) CopyFrom(o *State) {
	copy(s.M, o.M)
	copy(s.B, o.B)
}

// Step applies the SCM transition ⟨τ, l⟩ in place. The label must be
// SC-enabled (reads and RMWs must read M[loc]); Step panics otherwise,
// since the caller (the explorer) only generates SC-enabled labels.
//
// Accesses to non-atomic locations update only M: per §6, the monitoring
// instrumentation applies only to release/acquire locations, and racy
// programs are rejected by the separate racy-state check, which makes
// ignoring NA-induced hbSC edges sound (race-free programs have their
// NA mo/fr edges covered by tracked hb paths).
func (mon *Monitor) Step(s *State, tid lang.Tid, l lang.Label) {
	x := int(l.Loc)
	if mon.NA[x] {
		switch l.Typ {
		case lang.LWrite:
			s.M[x] = l.VW
		case lang.LRead:
			if s.M[x] != l.VR {
				panic("scm: NA read of non-current value")
			}
		default:
			panic("scm: RMW on non-atomic location")
		}
		return
	}
	switch l.Typ {
	case lang.LWrite:
		mon.stepWrite(s, int(tid), x, l.VW)
	case lang.LRead:
		if s.M[x] != l.VR {
			panic("scm: read of non-current value")
		}
		mon.stepRead(s, int(tid), x)
	case lang.LRMW:
		if s.M[x] != l.VR {
			panic("scm: RMW read of non-current value")
		}
		mon.stepRMW(s, int(tid), x, l.VW)
	}
}

// stepWrite implements the ⟨τ, W(x, v)⟩ columns of Figures 5 and 6 and of
// the Appendix C table. vR denotes the overwritten value M(x) — the value
// of the write that stops being mo-maximal.
func (mon *Monitor) stepWrite(s *State, tau, x int, v lang.Val) {
	T, L := mon.T, mon.L
	xb := uint64(1) << x
	vR := s.M[x]
	vrCrit := mon.Crit[x]&(1<<vR) != 0
	var vrBit uint64
	if vrCrit {
		vrBit = 1 << vR
	}
	if mon.Tracked&xb == 0 {
		// Untracked plane: record neither the stale value (vrBit) nor
		// the non-critical summary bit (vrCrit = true suppresses the
		// CV/CW updates), keeping the plane identically zero.
		vrBit, vrCrit = 0, true
	}
	B := s.B

	// Figure 5: hbSC tracking. Snapshot the pre-state values used on the
	// right-hand sides.
	oldVSCt := B[mon.oVSC+tau]
	oldMSCx := B[mon.oMSC+x]
	for p := 0; p < T; p++ {
		if p == tau {
			B[mon.oVSC+p] = oldVSCt | oldMSCx
		} else {
			B[mon.oVSC+p] &^= xb
		}
	}
	for y := 0; y < L; y++ {
		if y == x {
			B[mon.oMSC+y] = oldMSCx | oldVSCt
			B[mon.oWSC+y] = oldMSCx | oldVSCt
		} else {
			B[mon.oMSC+y] &^= xb
			B[mon.oWSC+y] &^= xb
		}
	}

	// Figure 6 / Appendix C: RAG tracking. The row W′(x)(·) is overwritten
	// with V(τ)(·) (and WRMW′(x)(·) with VRMW(τ)(·)); copy those rows
	// before mutating V.
	copy(B[mon.oW+x*L:mon.oW+(x+1)*L], B[mon.oV+tau*L:mon.oV+(tau+1)*L])
	copy(B[mon.oWR+x*L:mon.oWR+(x+1)*L], B[mon.oVR+tau*L:mon.oVR+(tau+1)*L])
	B[mon.oW+x*L+x] = 0
	B[mon.oWR+x*L+x] = 0
	oldCVt := B[mon.oCV+tau]
	oldCVRt := B[mon.oCVR+tau]

	for p := 0; p < T; p++ {
		if p == tau {
			B[mon.oV+p*L+x] = 0
			B[mon.oVR+p*L+x] = 0
			B[mon.oCV+p] &^= xb
			B[mon.oCVR+p] &^= xb
		} else {
			B[mon.oV+p*L+x] |= vrBit
			B[mon.oVR+p*L+x] |= vrBit
			if !vrCrit {
				B[mon.oCV+p] |= xb
				B[mon.oCVR+p] |= xb
			}
		}
	}
	for z := 0; z < L; z++ {
		if z == x {
			B[mon.oCW+z] = oldCVt &^ xb
			B[mon.oCWR+z] = oldCVRt &^ xb
		} else {
			B[mon.oW+z*L+x] |= vrBit
			B[mon.oWR+z*L+x] |= vrBit
			if !vrCrit {
				B[mon.oCW+z] |= xb
				B[mon.oCWR+z] |= xb
			}
		}
	}

	s.M[x] = v
}

// stepRead implements the ⟨τ, R(x, v)⟩ columns of Figures 5 and 6 and of
// the Appendix C table.
func (mon *Monitor) stepRead(s *State, tau, x int) {
	L := mon.L
	B := s.B
	oldVSCt := B[mon.oVSC+tau]
	B[mon.oVSC+tau] = oldVSCt | B[mon.oWSC+x]
	B[mon.oMSC+x] |= oldVSCt
	for y := 0; y < L; y++ {
		B[mon.oV+tau*L+y] &= B[mon.oW+x*L+y]
		B[mon.oVR+tau*L+y] &= B[mon.oWR+x*L+y]
	}
	B[mon.oCV+tau] &= B[mon.oCW+x]
	B[mon.oCVR+tau] &= B[mon.oCWR+x]
}

// stepRMW implements the ⟨τ, RMW(x, vR, vW)⟩ columns of Figures 5 and 6 and
// of the Appendix C table; vR = M(x) is the read (and overwritten) value.
func (mon *Monitor) stepRMW(s *State, tau, x int, vW lang.Val) {
	T, L := mon.T, mon.L
	xb := uint64(1) << x
	vR := s.M[x]
	vrCrit := mon.Crit[x]&(1<<vR) != 0
	var vrBit uint64
	if vrCrit {
		vrBit = 1 << vR
	}
	if mon.Tracked&xb == 0 {
		// Untracked plane: record neither the stale value (vrBit) nor
		// the non-critical summary bit (vrCrit = true suppresses the
		// CV/CW updates), keeping the plane identically zero.
		vrBit, vrCrit = 0, true
	}
	B := s.B

	// Figure 5 treats RMWs exactly like writes.
	oldVSCt := B[mon.oVSC+tau]
	oldMSCx := B[mon.oMSC+x]
	for p := 0; p < T; p++ {
		if p == tau {
			B[mon.oVSC+p] = oldVSCt | oldMSCx
		} else {
			B[mon.oVSC+p] &^= xb
		}
	}
	for y := 0; y < L; y++ {
		if y == x {
			B[mon.oMSC+y] = oldMSCx | oldVSCt
			B[mon.oWSC+y] = oldMSCx | oldVSCt
		} else {
			B[mon.oMSC+y] &^= xb
			B[mon.oWSC+y] &^= xb
		}
	}

	// Figure 6 / Appendix C, RMW column. The new V(τ) and W(x) rows are
	// both the intersection of the old ones (similarly for the RMW
	// variants), so compute them jointly.
	oldCVt, oldCVRt := B[mon.oCV+tau], B[mon.oCVR+tau]
	oldCWx, oldCWRx := B[mon.oCW+x], B[mon.oCWR+x]
	for y := 0; y < L; y++ {
		vi := B[mon.oV+tau*L+y] & B[mon.oW+x*L+y]
		B[mon.oV+tau*L+y] = vi
		B[mon.oW+x*L+y] = vi
		ri := B[mon.oVR+tau*L+y] & B[mon.oWR+x*L+y]
		B[mon.oVR+tau*L+y] = ri
		B[mon.oWR+x*L+y] = ri
	}
	B[mon.oW+x*L+x] = 0
	B[mon.oWR+x*L+x] = 0
	B[mon.oV+tau*L+x] = 0 // W(x)(x) is invariantly ∅, so the intersection is ∅
	B[mon.oVR+tau*L+x] = 0
	B[mon.oCV+tau] = oldCVt & oldCWx
	B[mon.oCW+x] = (oldCWx & oldCVt) &^ xb
	B[mon.oCVR+tau] = oldCVRt & oldCWRx
	B[mon.oCWR+x] = (oldCWRx & oldCVRt) &^ xb

	// vR becomes readable-stale for the other threads (V/W/CV/CW), but is
	// not a write-predecessor candidate (it was read by this RMW), so the
	// RMW-variants do not gain it.
	for p := 0; p < T; p++ {
		if p != tau {
			B[mon.oV+p*L+x] |= vrBit
			if !vrCrit {
				B[mon.oCV+p] |= xb
			}
		}
	}
	for z := 0; z < L; z++ {
		if z != x {
			B[mon.oW+z*L+x] |= vrBit
			if !vrCrit {
				B[mon.oCW+z] |= xb
			}
		}
	}

	s.M[x] = vW
}

// Encode appends the canonical byte encoding of the state to dst, for
// visited-set hashing and frontier storage. Component widths are fixed by
// the monitor shape, so equal encodings mean equal states. Each bitset is
// stored in the minimal number of bytes for its width.
func (mon *Monitor) Encode(dst []byte, s *State) []byte {
	for _, v := range s.M {
		dst = append(dst, byte(v))
	}
	locBytes := (mon.L + 7) / 8
	valBytes := (mon.ValCount + 7) / 8
	emit := func(off, n, width int) {
		for i := 0; i < n; i++ {
			b := s.B[off+i]
			for k := 0; k < width; k++ {
				dst = append(dst, byte(b))
				b >>= 8
			}
		}
	}
	emit(mon.oVSC, mon.T, locBytes)
	emit(mon.oMSC, mon.L, locBytes)
	emit(mon.oWSC, mon.L, locBytes)
	emit(mon.oV, mon.T*mon.L, valBytes)
	emit(mon.oVR, mon.T*mon.L, valBytes)
	emit(mon.oW, mon.L*mon.L, valBytes)
	emit(mon.oWR, mon.L*mon.L, valBytes)
	emit(mon.oCV, mon.T, locBytes)
	emit(mon.oCVR, mon.T, locBytes)
	emit(mon.oCW, mon.L, locBytes)
	emit(mon.oCWR, mon.L, locBytes)
	return dst
}

// Decode reconstructs a state from an Encode buffer, returning the number
// of bytes consumed.
func (mon *Monitor) Decode(data []byte, s *State) int {
	if s.M == nil {
		s.M = make([]lang.Val, mon.L)
		s.B = make([]uint64, mon.words)
	}
	p := 0
	for i := 0; i < mon.L; i++ {
		s.M[i] = lang.Val(data[p])
		p++
	}
	locBytes := (mon.L + 7) / 8
	valBytes := (mon.ValCount + 7) / 8
	read := func(off, n, width int) {
		for i := 0; i < n; i++ {
			var b uint64
			for k := 0; k < width; k++ {
				b |= uint64(data[p]) << (8 * k)
				p++
			}
			s.B[off+i] = b
		}
	}
	read(mon.oVSC, mon.T, locBytes)
	read(mon.oMSC, mon.L, locBytes)
	read(mon.oWSC, mon.L, locBytes)
	read(mon.oV, mon.T*mon.L, valBytes)
	read(mon.oVR, mon.T*mon.L, valBytes)
	read(mon.oW, mon.L*mon.L, valBytes)
	read(mon.oWR, mon.L*mon.L, valBytes)
	read(mon.oCV, mon.T, locBytes)
	read(mon.oCVR, mon.T, locBytes)
	read(mon.oCW, mon.L, locBytes)
	read(mon.oCWR, mon.L, locBytes)
	return p
}

// EncodedLen returns the length Encode produces for this monitor shape.
func (mon *Monitor) EncodedLen() int {
	locBytes := (mon.L + 7) / 8
	valBytes := (mon.ValCount + 7) / 8
	return mon.L +
		locBytes*(3*mon.T+4*mon.L) +
		valBytes*(2*mon.T*mon.L+2*mon.L*mon.L)
}

// Bits returns the size in bits of the monitoring metadata (excluding M),
// matching the §5.1 count
//
//	3·|Tid|·|Loc| + 4·|Loc|² + 2·(|Tid|+|Loc|)·Σ_x |Val(P,x)|
//
// (VSC, CV and CVRMW contribute 3·|Tid|·|Loc|; MSC, WSC, CW and CWRMW the
// 4·|Loc|²; V and VRMW |Tid|·Σ|Val(P,x)| each; W and WRMW |Loc|·Σ|Val(P,x)|
// each).
func (mon *Monitor) Bits() int {
	sum := 0
	for _, c := range mon.Crit {
		sum += popcount(c)
	}
	return 3*mon.T*mon.L + 4*mon.L*mon.L + 2*(mon.T+mon.L)*sum
}

func popcount(b uint64) int {
	n := 0
	for b != 0 {
		b &= b - 1
		n++
	}
	return n
}
