package scm

// EncodePerm is Encode with the thread-indexed components emitted in
// permuted order: slot i of the encoding carries thread perm[i]'s VSC
// entry, V/VRMW rows, and CV/CVRMW summaries. Location-indexed components
// (M, MSC, WSC, W, WRMW, CW, CWRMW) are emitted unchanged.
//
// The monitor's transition rules are thread-equivariant — every update
// distinguishes only "the stepping thread" from "the others", and no
// component stores a thread index inside a row — so for any permutation π
// of threads with identical programs, EncodePerm(s, π) equals
// Encode(π·s) where π·s is the state of the run with the threads renamed.
// The partial-order reduction layer uses this to canonicalize states under
// thread symmetry without physically permuting them.
func (mon *Monitor) EncodePerm(dst []byte, s *State, perm []uint8) []byte {
	for _, v := range s.M {
		dst = append(dst, byte(v))
	}
	locBytes := (mon.L + 7) / 8
	valBytes := (mon.ValCount + 7) / 8
	emit := func(off, n, width int) {
		for i := 0; i < n; i++ {
			b := s.B[off+i]
			for k := 0; k < width; k++ {
				dst = append(dst, byte(b))
				b >>= 8
			}
		}
	}
	// emitT emits n-word-per-thread blocks in perm order.
	emitT := func(off, n, width int) {
		for i := 0; i < mon.T; i++ {
			emit(off+int(perm[i])*n, n, width)
		}
	}
	emitT(mon.oVSC, 1, locBytes)
	emit(mon.oMSC, mon.L, locBytes)
	emit(mon.oWSC, mon.L, locBytes)
	emitT(mon.oV, mon.L, valBytes)
	emitT(mon.oVR, mon.L, valBytes)
	emit(mon.oW, mon.L*mon.L, valBytes)
	emit(mon.oWR, mon.L*mon.L, valBytes)
	emitT(mon.oCV, 1, locBytes)
	emitT(mon.oCVR, 1, locBytes)
	emit(mon.oCW, mon.L, locBytes)
	emit(mon.oCWR, mon.L, locBytes)
	return dst
}

// CmpThreads totally orders threads a and b by their thread-indexed monitor
// content in s (VSC entry, CV/CVRMW summaries, V and VRMW rows). A zero
// result means the two threads' per-thread monitor words are all equal, so
// swapping them changes no thread-indexed byte of the encoding. The
// symmetry canonicalizer sorts interchangeable threads by this order
// (composed with the program-state order, which it tries first).
func (mon *Monitor) CmpThreads(s *State, a, b int) int {
	cmp := func(x, y uint64) int {
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	}
	if c := cmp(s.B[mon.oVSC+a], s.B[mon.oVSC+b]); c != 0 {
		return c
	}
	if c := cmp(s.B[mon.oCV+a], s.B[mon.oCV+b]); c != 0 {
		return c
	}
	if c := cmp(s.B[mon.oCVR+a], s.B[mon.oCVR+b]); c != 0 {
		return c
	}
	for x := 0; x < mon.L; x++ {
		if c := cmp(s.B[mon.oV+a*mon.L+x], s.B[mon.oV+b*mon.L+x]); c != 0 {
			return c
		}
	}
	for x := 0; x < mon.L; x++ {
		if c := cmp(s.B[mon.oVR+a*mon.L+x], s.B[mon.oVR+b*mon.L+x]); c != 0 {
			return c
		}
	}
	return 0
}
