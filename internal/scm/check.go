package scm

import (
	"fmt"

	"repro/internal/lang"
	"repro/internal/prog"
)

// ViolationKind classifies why a state fails the robustness conditions.
type ViolationKind uint8

// Violation kinds.
const (
	// StaleRead: a read (or the failing-read case of a CAS) could read,
	// under RAG, from a write that is not mo-maximal — the Theorem 5.3
	// condition for typ(l) = R.
	StaleRead ViolationKind = iota
	// StaleWrite: a write could choose, under RAG, a predecessor write
	// that is not mo-maximal — the condition for typ(l) = W.
	StaleWrite
	// StaleRMW: an RMW could read from a non-mo-maximal write — the
	// condition for typ(l) = RMW.
	StaleRMW
	// NARace: the state is racy on a non-atomic location (Definition 6.1).
	NARace
)

// String names the kind.
func (k ViolationKind) String() string {
	switch k {
	case StaleRead:
		return "stale read"
	case StaleWrite:
		return "non-maximal write placement"
	case StaleRMW:
		return "stale RMW"
	case NARace:
		return "data race on non-atomic location"
	}
	return fmt.Sprintf("ViolationKind(%d)", uint8(k))
}

// Violation reports a failed robustness condition at a reachable SCM state:
// thread Tid, poised at program counter PC, could perform an RA transition
// that diverges from SC at location Loc.
type Violation struct {
	Kind ViolationKind
	Tid  lang.Tid
	Loc  lang.Loc
	PC   int
	// Tid2/PC2 identify the second access of a data race.
	Tid2 lang.Tid
	PC2  int
}

// CheckOp evaluates the Theorem 5.3 robustness conditions (with the §5.1
// abstract-value refinements) for thread tid whose pending operation is op,
// at monitor state s. It returns nil when every label the thread enables is
// robust.
//
// The conditions apply only when loc(l) ∈ VSC(τ): a non-robustness witness
// requires wmax to have an hbSC-path to the thread (Theorem 5.1); without
// it, divergent RAG behaviour from this state cannot leave the SC-reachable
// set at this step.
func (mon *Monitor) CheckOp(s *State, tid lang.Tid, op prog.MemOp) *Violation {
	if op.Kind == prog.OpNone || op.NA {
		return nil
	}
	x := int(op.Loc)
	if mon.VSC(s, int(tid))&(1<<x) == 0 {
		return nil
	}
	v := mon.V(s, int(tid), x)
	vr := mon.VR(s, int(tid), x)
	cv := mon.CV(s, int(tid))&(1<<x) != 0
	cvr := mon.CVR(s, int(tid))&(1<<x) != 0
	crit := mon.Crit[x]
	viol := func(k ViolationKind) *Violation {
		return &Violation{Kind: k, Tid: tid, Loc: op.Loc, PC: op.PC}
	}
	switch op.Kind {
	case prog.OpWrite:
		// The program enables W(x, v): robust iff VRMW(τ)(x) = ∅ and
		// x ∉ CVRMW(τ). Under SRA writes have no placement freedom.
		if mon.SRA {
			return nil
		}
		if vr != 0 || cvr {
			return viol(StaleWrite)
		}
	case prog.OpRead:
		// Enables R(x, v) for every v: robust iff V(τ)(x) = ∅ and
		// x ∉ CV(τ).
		if v != 0 || cv {
			return viol(StaleRead)
		}
	case prog.OpWait:
		// Enables only R(x, WVal).
		wb := uint64(1) << op.WVal
		if v&wb != 0 {
			return viol(StaleRead)
		}
		if crit&wb == 0 && cv {
			return viol(StaleRead)
		}
	case prog.OpFADD, prog.OpXCHG:
		// Enables RMW(x, v, ·) for every v. SRA RMWs read mo-maximally.
		if mon.SRA {
			return nil
		}
		if vr != 0 || cvr {
			return viol(StaleRMW)
		}
	case prog.OpCAS:
		// Enables RMW(x, Exp, New) and R(x, v) for every v ≠ Exp. Under
		// SRA only the failing-read labels can be stale.
		eb := uint64(1) << op.Exp
		if !mon.SRA {
			if vr&eb != 0 {
				return viol(StaleRMW)
			}
			if crit&eb == 0 && cvr {
				return viol(StaleRMW)
			}
		}
		if v&^eb != 0 || cv {
			// A non-critical readable value cannot equal Exp when Exp is
			// critical, and when Exp is non-critical every value of x is
			// critical and CV(τ) is empty — so the CV summary alone
			// witnesses a readable stale value ≠ Exp.
			return viol(StaleRead)
		}
	case prog.OpBCAS:
		// Enables only RMW(x, Exp, New).
		if mon.SRA {
			return nil
		}
		eb := uint64(1) << op.Exp
		if vr&eb != 0 {
			return viol(StaleRMW)
		}
		if crit&eb == 0 && cvr {
			return viol(StaleRMW)
		}
	}
	return nil
}

// CheckRace evaluates the racy-state condition of Definition 6.1 over all
// pending operations: two distinct threads enable labels on the same
// non-atomic location, at least one of them writing.
func (mon *Monitor) CheckRace(ops []prog.MemOp) *Violation {
	for i := range ops {
		if ops[i].Kind == prog.OpNone || !ops[i].NA {
			continue
		}
		for j := i + 1; j < len(ops); j++ {
			if ops[j].Kind == prog.OpNone || !ops[j].NA {
				continue
			}
			if ops[i].Loc != ops[j].Loc {
				continue
			}
			if ops[i].Kind == prog.OpWrite || ops[j].Kind == prog.OpWrite {
				return &Violation{
					Kind: NARace,
					Tid:  lang.Tid(i), Loc: ops[i].Loc, PC: ops[i].PC,
					Tid2: lang.Tid(j), PC2: ops[j].PC,
				}
			}
		}
	}
	return nil
}
