package scm_test

import (
	"bytes"
	"testing"

	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/prog"
	"repro/internal/scm"
)

// fuzzMonitors builds one monitor per Figure 7 benchmark program, covering
// a spread of ⟨threads, locations, value-domain⟩ shapes — and with it every
// component-width combination Encode can produce (locBytes and valBytes
// both vary across the corpus).
func fuzzMonitors(tb testing.TB) []*scm.Monitor {
	tb.Helper()
	var mons []*scm.Monitor
	for _, e := range litmus.Fig7() {
		p := e.Program()
		na := make([]bool, len(p.Locs))
		for i, li := range p.Locs {
			na[i] = li.NA
		}
		mons = append(mons, scm.NewMonitor(p.NumThreads(), p.NumLocs(), p.ValCount, prog.CriticalVals(p), na))
	}
	if len(mons) == 0 {
		tb.Fatal("no Figure 7 programs registered")
	}
	return mons
}

// buildState fills a monitor state from fuzz data: memory values stay in
// the value domain; the bitset words take arbitrary 64-bit patterns (Encode
// truncates each word to its component width, so the encoding of the
// decoded state is the projection the round trip must preserve). The data
// is consumed cyclically so short inputs still reach every field.
func buildState(mon *scm.Monitor, s *scm.State, data []byte) {
	k := 0
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[k%len(data)]
		k++
		return b
	}
	for i := range s.M {
		s.M[i] = lang.Val(int(next()) % mon.ValCount)
	}
	for i := range s.B {
		var w uint64
		for j := 0; j < 8; j++ {
			w = w<<8 | uint64(next())
		}
		s.B[i] = w
	}
}

// FuzzEncodeRoundTrip checks the SCM state encoding used for visited-set
// hashing and frontier payloads: Encode must consume exactly EncodedLen
// bytes, Decode must consume what Encode produced, and the encoding must be
// stable under a decode/re-encode cycle (equal encodings ⇔ equal states up
// to component width). Seeded with the initial and one stepped monitor
// state per Figure 7 shape; `go test` runs seeds only.
func FuzzEncodeRoundTrip(f *testing.F) {
	mons := fuzzMonitors(f)
	for i, mon := range mons {
		s := mon.Init()
		f.Add(uint8(i), mon.Encode(nil, s))
		// A non-initial seed: one write and one read stepped on the state.
		mon.Step(s, 0, lang.WriteLab(0, 1))
		mon.Step(s, lang.Tid(mon.T-1), lang.ReadLab(0, 1))
		f.Add(uint8(i), mon.Encode(nil, s))
	}
	f.Fuzz(func(t *testing.T, mi uint8, data []byte) {
		mon := mons[int(mi)%len(mons)]
		s := mon.Init()
		buildState(mon, s, data)

		enc := mon.Encode(nil, s)
		if len(enc) != mon.EncodedLen() {
			t.Fatalf("Encode produced %d bytes, EncodedLen says %d", len(enc), mon.EncodedLen())
		}
		var dec scm.State
		if n := mon.Decode(enc, &dec); n != len(enc) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(enc))
		}
		if again := mon.Encode(nil, &dec); !bytes.Equal(enc, again) {
			t.Fatalf("encoding not stable under decode/re-encode:\n  %x\n  %x", enc, again)
		}
	})
}
