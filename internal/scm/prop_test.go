package scm_test

import (
	"math/rand"
	"testing"

	"repro/internal/egraph"
	"repro/internal/lang"
	"repro/internal/scm"
)

// TestStepMatchesGraphInterpretation is the repository's stand-in for the
// paper's Coq proof of Lemma 5.2: along random SCG runs, the incremental
// SCM transition rules (Figures 5 and 6 and the Appendix C table) maintain
// exactly the state I(G) defined by the formal component interpretations
// of §5, for arbitrary critical-value assignments (random masks cover the
// full spectrum from the unoptimized construction to maximal abstraction).
func TestStepMatchesGraphInterpretation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 400; iter++ {
		T := 1 + rng.Intn(3)
		L := 1 + rng.Intn(3)
		V := 2 + rng.Intn(3)
		crit := make([]uint64, L)
		for x := range crit {
			crit[x] = rng.Uint64() & (uint64(1)<<V - 1)
		}
		mon := scm.NewMonitor(T, L, V, crit, nil)
		g := egraph.NewGraph(L, nil)
		s := mon.Init()
		if !s.Equal(mon.FromGraph(g)) {
			t.Fatalf("iter %d: initial state mismatch", iter)
		}
		steps := 5 + rng.Intn(15)
		for i := 0; i < steps; i++ {
			tid := rng.Intn(T)
			x := lang.Loc(rng.Intn(L))
			cur := g.Events[g.WMax(x)].Lab.VW
			var l lang.Label
			switch rng.Intn(3) {
			case 0:
				l = lang.WriteLab(x, lang.Val(rng.Intn(V)))
			case 1:
				l = lang.ReadLab(x, cur)
			default:
				l = lang.RMWLab(x, cur, lang.Val(rng.Intn(V)))
			}
			g.SCGStep(tid, l)
			mon.Step(s, lang.Tid(tid), l)
			if want := mon.FromGraph(g); !s.Equal(want) {
				t.Fatalf("iter %d step %d (%s by τ%d): incremental state diverged from I(G)\ngraph:\n%s",
					iter, i, l, tid, g)
			}
		}
	}
}

// TestEncodeDecodeRoundTrip checks that Encode/Decode are inverse on
// states produced by random runs, and that EncodedLen matches.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		T := 1 + rng.Intn(4)
		L := 1 + rng.Intn(5)
		V := 2 + rng.Intn(7)
		crit := make([]uint64, L)
		for x := range crit {
			crit[x] = uint64(1)<<V - 1
		}
		mon := scm.NewMonitor(T, L, V, crit, nil)
		s := mon.Init()
		for i := 0; i < 20; i++ {
			tid := lang.Tid(rng.Intn(T))
			x := lang.Loc(rng.Intn(L))
			cur := s.M[x]
			switch rng.Intn(3) {
			case 0:
				mon.Step(s, tid, lang.WriteLab(x, lang.Val(rng.Intn(V))))
			case 1:
				mon.Step(s, tid, lang.ReadLab(x, cur))
			default:
				mon.Step(s, tid, lang.RMWLab(x, cur, lang.Val(rng.Intn(V))))
			}
		}
		enc := mon.Encode(nil, s)
		if len(enc) != mon.EncodedLen() {
			t.Fatalf("EncodedLen=%d but Encode produced %d bytes", mon.EncodedLen(), len(enc))
		}
		var back scm.State
		n := mon.Decode(enc, &back)
		if n != len(enc) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(enc))
		}
		if !s.Equal(&back) {
			t.Fatalf("decode(encode(s)) != s")
		}
	}
}

// TestMetadataBits checks the §5.1 metadata-size formula on a few shapes:
// with no critical values the size is 3|Tid||Loc| + 4|Loc|²; with all
// values critical it is |Loc|(3|Tid| + 4|Loc| + 2|Val|(|Tid| + |Loc|)),
// which matches the worst case quoted in §5.1 up to the CV/CW summary bits
// the optimized representation always carries.
func TestMetadataBits(t *testing.T) {
	for _, tc := range []struct {
		T, L, V  int
		critical int // number of critical values per location
		want     int
	}{
		{2, 3, 4, 0, 3*2*3 + 4*3*3},
		{3, 5, 4, 0, 3*3*5 + 4*5*5},
		{2, 2, 4, 4, 3*2*2 + 4*2*2 + 2*(2+2)*(2*4)},
	} {
		crit := make([]uint64, tc.L)
		for x := range crit {
			crit[x] = uint64(1)<<tc.critical - 1
		}
		mon := scm.NewMonitor(tc.T, tc.L, tc.V, crit, nil)
		if got := mon.Bits(); got != tc.want {
			t.Errorf("Bits(T=%d,L=%d,crit=%d) = %d, want %d", tc.T, tc.L, tc.critical, got, tc.want)
		}
	}
}
