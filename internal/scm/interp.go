package scm

import (
	"repro/internal/egraph"
	"repro/internal/lang"
)

// FromGraph computes the SCM state I(G) that corresponds to an execution
// graph per the formal component interpretations of §5:
//
//	M(G)      = λx. valW(wmax_x)
//	VSC(G)    = λτ. {x | wmax_x ∈ dom(hbSC? ; [Init ∪ E_τ])}
//	MSC(G)    = λx. {y | wmax_y ∈ dom(hbSC? ; [E_x])}
//	WSC(G)    = λx. {y | ⟨wmax_y, wmax_x⟩ ∈ hbSC?}
//	V(G)      = λτ, x. valW[Wx \ dom(R ; [E_τ])]
//	W(G)      = λy, x. valW[Wx \ dom(R ; [{wmax_y}])]
//	VRMW(G)   = λτ, x. valW[Wx \ dom(R ; [E_τ] ∪ RRMW)]
//	WRMW(G)   = λy, x. valW[Wx \ dom(R ; [{wmax_y}] ∪ RRMW)]
//
// where Wx = G.W_x \ {wmax_x}, R = G.mo ; G.hb?, and
// RRMW = G.mo|imm ; [RMW]; plus the §5.1 summaries CV/CW/CVRMW/CWRMW
// collecting the non-critical leftovers. The V/W components of the
// returned state are restricted to the monitor's critical values, matching
// what the incremental transitions maintain.
//
// This function is the specification against which the incremental Step
// rules are property-tested (the repository's stand-in for the paper's Coq
// proof of Lemma 5.2). It only supports graphs whose locations are all
// release/acquire.
func (mon *Monitor) FromGraph(g *egraph.Graph) *State {
	s := mon.Init()
	n := g.N()
	hb := g.HB()
	hbSC := g.HBSC()

	for x := 0; x < mon.L; x++ {
		s.M[x] = g.Events[g.WMax(lang.Loc(x))].Lab.VW
	}

	// hbSC?-reachability helper.
	reaches := func(a, b int) bool { return a == b || hbSC.Has(a, b) }

	// VSC.
	for t := 0; t < mon.T; t++ {
		var set uint64
		for x := 0; x < mon.L; x++ {
			w := g.WMax(lang.Loc(x))
			ok := g.Events[w].IsInit()
			for e := 0; e < n && !ok; e++ {
				if (g.Events[e].Tid == t || g.Events[e].IsInit()) && reaches(w, e) {
					ok = true
				}
			}
			if ok {
				set |= 1 << x
			}
		}
		s.B[mon.oVSC+t] = set
	}
	// MSC and WSC.
	for x := 0; x < mon.L; x++ {
		var msc, wsc uint64
		wmx := g.WMax(lang.Loc(x))
		for y := 0; y < mon.L; y++ {
			wmy := g.WMax(lang.Loc(y))
			for e := 0; e < n; e++ {
				if g.Events[e].Lab.Loc == lang.Loc(x) && reaches(wmy, e) {
					msc |= 1 << y
					break
				}
			}
			if reaches(wmy, wmx) {
				wsc |= 1 << y
			}
		}
		s.B[mon.oMSC+x] = msc
		s.B[mon.oWSC+x] = wsc
	}

	// R = mo ; hb? as a predicate: moHB(w, e).
	moHB := func(w, e int) bool {
		for b := 0; b < n; b++ {
			if g.MOBefore(w, b) && (b == e || hb.Has(b, e)) {
				return true
			}
		}
		return false
	}
	// RRMW: w ∈ dom(mo|imm ; [RMW]).
	inRRMW := func(w int) bool { return g.ReadByRMW(w) }

	// Value components. We first compute the full-value interpretation,
	// then split into critical bits and non-critical summaries.
	for x := 0; x < mon.L; x++ {
		wmx := g.WMax(lang.Loc(x))
		for _, w := range g.MO[x] {
			if w == wmx {
				continue
			}
			val := g.Events[w].Lab.VW
			vb := uint64(1) << val
			crit := mon.Crit[x]&vb != 0
			rmwOK := !inRRMW(w)
			// Per thread: is w unobserved by τ?
			for t := 0; t < mon.T; t++ {
				obs := false
				for e := 0; e < n && !obs; e++ {
					if g.Events[e].Tid == t && moHB(w, e) {
						obs = true
					}
				}
				if obs {
					continue
				}
				if crit {
					s.B[mon.oV+t*mon.L+x] |= vb
				} else {
					s.B[mon.oCV+t] |= 1 << x
				}
				if rmwOK {
					if crit {
						s.B[mon.oVR+t*mon.L+x] |= vb
					} else {
						s.B[mon.oCVR+t] |= 1 << x
					}
				}
			}
			// Per via-location y: is w not mo;hb?-before wmax_y?
			for y := 0; y < mon.L; y++ {
				wmy := g.WMax(lang.Loc(y))
				if moHB(w, wmy) {
					continue
				}
				if crit {
					s.B[mon.oW+y*mon.L+x] |= vb
				} else {
					s.B[mon.oCW+y] |= 1 << x
				}
				if rmwOK {
					if crit {
						s.B[mon.oWR+y*mon.L+x] |= vb
					} else {
						s.B[mon.oCWR+y] |= 1 << x
					}
				}
			}
		}
	}
	return s
}

// Equal reports whether two states are component-wise equal.
func (s *State) Equal(o *State) bool {
	for i := range s.M {
		if s.M[i] != o.M[i] {
			return false
		}
	}
	for i := range s.B {
		if s.B[i] != o.B[i] {
			return false
		}
	}
	return true
}
