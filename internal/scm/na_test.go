package scm_test

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/prog"
	"repro/internal/scm"
)

// naMonitor builds a 2-thread monitor with locations {ra, na} where the
// second is non-atomic.
func naMonitor() *scm.Monitor {
	return scm.NewMonitor(2, 2, 4, prog.AllValsCrit(2, 4), []bool{false, true})
}

// TestNAStepsOnlyTouchMemory checks §6's treatment of non-atomic
// accesses: they update M and leave every tracking component alone.
func TestNAStepsOnlyTouchMemory(t *testing.T) {
	mon := naMonitor()
	s := mon.Init()
	ref := s.Clone()
	mon.Step(s, 0, lang.WriteLab(1, 3))
	if s.M[1] != 3 {
		t.Fatalf("NA write did not reach memory")
	}
	s.M[1] = 0
	if !s.Equal(ref) {
		t.Errorf("NA write disturbed the instrumentation")
	}
	s.M[1] = 3
	mon.Step(s, 1, lang.ReadLab(1, 3))
	s.M[1] = 0
	if !s.Equal(ref) {
		t.Errorf("NA read disturbed the instrumentation")
	}
}

// TestCheckOpSkipsNA: robustness conditions do not apply to non-atomic
// operations (they are covered by the racy-state check instead).
func TestCheckOpSkipsNA(t *testing.T) {
	mon := naMonitor()
	s := mon.Init()
	// Make location 0 maximally "dirty" so a check would fire if applied.
	mon.Step(s, 0, lang.WriteLab(0, 1))
	op := prog.MemOp{Kind: prog.OpRead, Loc: 1, NA: true}
	if v := mon.CheckOp(s, 1, op); v != nil {
		t.Errorf("CheckOp fired on a non-atomic access: %+v", v)
	}
}

// TestCheckRace exercises Definition 6.1 over pending-operation vectors.
func TestCheckRace(t *testing.T) {
	mon := naMonitor()
	naW := prog.MemOp{Kind: prog.OpWrite, Loc: 1, NA: true}
	naR := prog.MemOp{Kind: prog.OpRead, Loc: 1, NA: true}
	raW := prog.MemOp{Kind: prog.OpWrite, Loc: 0}
	none := prog.MemOp{Kind: prog.OpNone}
	for _, tc := range []struct {
		name string
		ops  []prog.MemOp
		racy bool
	}{
		{"write-write", []prog.MemOp{naW, naW}, true},
		{"write-read", []prog.MemOp{naW, naR}, true},
		{"read-write", []prog.MemOp{naR, naW}, true},
		{"read-read", []prog.MemOp{naR, naR}, false},
		{"na-vs-ra", []prog.MemOp{naW, raW}, false},
		{"with-terminated", []prog.MemOp{none, naW}, false},
		{"ra-only", []prog.MemOp{raW, raW}, false},
	} {
		v := mon.CheckRace(tc.ops)
		if (v != nil) != tc.racy {
			t.Errorf("%s: racy=%v, want %v", tc.name, v != nil, tc.racy)
		}
		if v != nil && v.Kind != scm.NARace {
			t.Errorf("%s: kind %v", tc.name, v.Kind)
		}
	}
}

// TestViolationKindStrings pins the diagnostic names.
func TestViolationKindStrings(t *testing.T) {
	for kind, want := range map[scm.ViolationKind]string{
		scm.StaleRead:  "stale read",
		scm.StaleWrite: "non-maximal write placement",
		scm.StaleRMW:   "stale RMW",
		scm.NARace:     "data race on non-atomic location",
	} {
		if kind.String() != want {
			t.Errorf("%d: %q", kind, kind.String())
		}
	}
}
