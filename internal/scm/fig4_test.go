package scm_test

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/prog"
	"repro/internal/scm"
)

// fig4State is the subset of SCM components the paper's Figure 4 displays:
// the memory, the three hbSC-tracking components, and the V/W value
// tracking (the runs contain no RMWs, so VRMW = V and WRMW = W throughout,
// which the test also asserts).
type fig4State struct {
	M        [2]lang.Val
	VSC      [2]uint64 // per thread, bitset over {x=bit0, y=bit1}
	WSC, MSC [2]uint64 // per location
	V        [2][2]uint64
	Wxy, Wyx uint64 // W(x)(y) and W(y)(x) as value bitsets
}

const (
	x = 0
	y = 1
)

func set(vals ...int) uint64 {
	var b uint64
	for _, v := range vals {
		b |= 1 << v
	}
	return b
}

// replay drives the monitor through the labelled steps and compares each
// intermediate state against the expectation.
func replay(t *testing.T, name string, steps []struct {
	tid lang.Tid
	lab lang.Label
	exp fig4State
}, init fig4State) {
	t.Helper()
	mon := scm.NewMonitor(2, 2, 2, prog.AllValsCrit(2, 2), nil)
	s := mon.Init()
	checkState := func(step int, exp fig4State) {
		t.Helper()
		for loc := 0; loc < 2; loc++ {
			if s.M[loc] != exp.M[loc] {
				t.Fatalf("%s step %d: M[%d] = %d, want %d", name, step, loc, s.M[loc], exp.M[loc])
			}
			if got := mon.MSC(s, loc); got != exp.MSC[loc] {
				t.Fatalf("%s step %d: MSC(%d) = %b, want %b", name, step, loc, got, exp.MSC[loc])
			}
			if got := mon.WSC(s, loc); got != exp.WSC[loc] {
				t.Fatalf("%s step %d: WSC(%d) = %b, want %b", name, step, loc, got, exp.WSC[loc])
			}
		}
		for tid := 0; tid < 2; tid++ {
			if got := mon.VSC(s, tid); got != exp.VSC[tid] {
				t.Fatalf("%s step %d: VSC(%d) = %b, want %b", name, step, tid, got, exp.VSC[tid])
			}
			for loc := 0; loc < 2; loc++ {
				if got := mon.V(s, tid, loc); got != exp.V[tid][loc] {
					t.Fatalf("%s step %d: V(%d)(%d) = %b, want %b", name, step, tid, loc, got, exp.V[tid][loc])
				}
				if got := mon.VR(s, tid, loc); got != mon.V(s, tid, loc) {
					t.Fatalf("%s step %d: VRMW(%d)(%d) != V (no RMWs in the run)", name, step, tid, loc)
				}
			}
		}
		if got := mon.W(s, x, y); got != exp.Wxy {
			t.Fatalf("%s step %d: W(x)(y) = %b, want %b", name, step, got, exp.Wxy)
		}
		if got := mon.W(s, y, x); got != exp.Wyx {
			t.Fatalf("%s step %d: W(y)(x) = %b, want %b", name, step, got, exp.Wyx)
		}
	}
	checkState(0, init)
	for i, st := range steps {
		mon.Step(s, st.tid, st.lab)
		checkState(i+1, st.exp)
	}
}

// initial is the shared first column of both Figure 4 illustrations.
var fig4Init = fig4State{
	M:   [2]lang.Val{0, 0},
	VSC: [2]uint64{set(x, y), set(x, y)},
	WSC: [2]uint64{set(x), set(y)},
	MSC: [2]uint64{set(x), set(y)},
}

// TestFig4MP replays the paper's Figure 4 run of the MP program under SCG
// and asserts every displayed component value after every step. Thread
// indices 0 and 1 are the figure's τ1 and τ2.
func TestFig4MP(t *testing.T) {
	replay(t, "MP", []struct {
		tid lang.Tid
		lab lang.Label
		exp fig4State
	}{
		{0, lang.WriteLab(x, 1), fig4State{
			M:   [2]lang.Val{1, 0},
			VSC: [2]uint64{set(x, y), set(y)},
			WSC: [2]uint64{set(x, y), set(y)},
			MSC: [2]uint64{set(x, y), set(y)},
			V:   [2][2]uint64{{0, 0}, {set(0), 0}},
			Wxy: 0, Wyx: set(0),
		}},
		{0, lang.WriteLab(y, 1), fig4State{
			M:   [2]lang.Val{1, 1},
			VSC: [2]uint64{set(x, y), 0},
			WSC: [2]uint64{set(x), set(x, y)},
			MSC: [2]uint64{set(x), set(x, y)},
			V:   [2][2]uint64{{0, 0}, {set(0), set(0)}},
			Wxy: set(0), Wyx: 0,
		}},
		{1, lang.ReadLab(y, 1), fig4State{
			M:   [2]lang.Val{1, 1},
			VSC: [2]uint64{set(x, y), set(x, y)},
			WSC: [2]uint64{set(x), set(x, y)},
			MSC: [2]uint64{set(x), set(x, y)},
			V:   [2][2]uint64{{0, 0}, {0, 0}},
			Wxy: set(0), Wyx: 0,
		}},
		{1, lang.ReadLab(x, 1), fig4State{
			M:   [2]lang.Val{1, 1},
			VSC: [2]uint64{set(x, y), set(x, y)},
			WSC: [2]uint64{set(x), set(x, y)},
			MSC: [2]uint64{set(x, y), set(x, y)},
			V:   [2][2]uint64{{0, 0}, {0, 0}},
			Wxy: set(0), Wyx: 0,
		}},
	}, fig4Init)
}

// TestFig4SB replays the Figure 4 run of the SB program: the SC prefix
// ⟨τ1,W(x,1)⟩ ⟨τ1,R(y,0)⟩ ⟨τ2,W(y,1)⟩ and then asserts the robustness
// violation the figure annotates: τ2's pending read of x has x ∈ VSC(τ2)
// and 0 ∈ V(τ2)(x).
func TestFig4SB(t *testing.T) {
	replay(t, "SB", []struct {
		tid lang.Tid
		lab lang.Label
		exp fig4State
	}{
		{0, lang.WriteLab(x, 1), fig4State{
			M:   [2]lang.Val{1, 0},
			VSC: [2]uint64{set(x, y), set(y)},
			WSC: [2]uint64{set(x, y), set(y)},
			MSC: [2]uint64{set(x, y), set(y)},
			V:   [2][2]uint64{{0, 0}, {set(0), 0}},
			Wxy: 0, Wyx: set(0),
		}},
		{0, lang.ReadLab(y, 0), fig4State{
			M:   [2]lang.Val{1, 0},
			VSC: [2]uint64{set(x, y), set(y)},
			WSC: [2]uint64{set(x, y), set(y)},
			MSC: [2]uint64{set(x, y), set(x, y)},
			V:   [2][2]uint64{{0, 0}, {set(0), 0}},
			Wxy: 0, Wyx: set(0),
		}},
		{1, lang.WriteLab(y, 1), fig4State{
			M:   [2]lang.Val{1, 1},
			VSC: [2]uint64{set(x), set(x, y)},
			WSC: [2]uint64{set(x), set(x, y)},
			MSC: [2]uint64{set(x), set(x, y)},
			V:   [2][2]uint64{{0, set(0)}, {set(0), 0}},
			Wxy: set(0), Wyx: set(0),
		}},
	}, fig4Init)

	// Rebuild the final state and assert the violation condition of the
	// figure via the Theorem 5.3 check.
	mon := scm.NewMonitor(2, 2, 2, prog.AllValsCrit(2, 2), nil)
	s := mon.Init()
	mon.Step(s, 0, lang.WriteLab(x, 1))
	mon.Step(s, 0, lang.ReadLab(y, 0))
	mon.Step(s, 1, lang.WriteLab(y, 1))
	viol := mon.CheckOp(s, 1, prog.MemOp{Kind: prog.OpRead, Loc: x})
	if viol == nil {
		t.Fatalf("SB: expected the Figure 4 robustness violation (x ∈ VSC(τ2), 0 ∈ V(τ2)(x))")
	}
	if viol.Kind != scm.StaleRead || viol.Loc != x {
		t.Fatalf("SB: got violation %v at loc %d, want stale read at x", viol.Kind, viol.Loc)
	}
}
