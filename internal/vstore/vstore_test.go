package vstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, path string, cfg Config) *Store {
	t.Helper()
	s, err := Open(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRoundTrip writes records of assorted sizes, closes, reopens, and
// reads every one back.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.log")
	s := openT(t, path, Config{SyncInterval: -1})
	want := map[string][]byte{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("digest%032d|ra|8388608|%d", i, i%4)
		val := []byte(fmt.Sprintf(`{"mode":"ra","robust":%v,"states":%d}`, i%2 == 0, i*31))
		want[key] = val
		if err := s.Put(key, val); err != nil {
			t.Fatal(err)
		}
	}
	check := func(s *Store) {
		t.Helper()
		if s.Len() != len(want) {
			t.Fatalf("Len = %d, want %d", s.Len(), len(want))
		}
		for k, v := range want {
			got, ok, err := s.Get(k)
			if err != nil || !ok || string(got) != string(v) {
				t.Fatalf("Get(%q) = %q, %v, %v; want %q", k, got, ok, err, v)
			}
		}
	}
	check(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s = openT(t, path, Config{SyncInterval: -1})
	defer s.Close()
	check(s)
	if st := s.Stats(); st.Recovered != 200 || st.Truncated != 0 {
		t.Fatalf("recovery stats %+v, want 200 recovered, 0 truncated", st)
	}
}

// TestLatestWins overwrites a key and checks the newest record wins both
// live and across a reopen.
func TestLatestWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.log")
	s := openT(t, path, Config{SyncInterval: -1})
	for i := 0; i < 5; i++ {
		if err := s.Put("k", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, ok, _ := s.Get("k")
	if !ok || string(got) != "v4" {
		t.Fatalf("live Get = %q, %v", got, ok)
	}
	s.Close()

	s = openT(t, path, Config{SyncInterval: -1})
	defer s.Close()
	got, ok, _ = s.Get("k")
	if !ok || string(got) != "v4" {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (index collapses overwrites)", s.Len())
	}
}

// TestCrashRecoveryTornTail is the satellite's crash test: write records,
// truncate the log mid-record to simulate a torn write, reopen, and
// assert every intact verdict is readable while the torn tail is
// discarded — and that the file itself was truncated back to the last
// record boundary so the next append starts clean.
func TestCrashRecoveryTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.log")
	s := openT(t, path, Config{SyncInterval: -1})
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	intactSize := s.Stats().Bytes
	if err := s.Put("torn", []byte("this record will be cut mid-way")); err != nil {
		t.Fatal(err)
	}
	tornSize := s.Stats().Bytes
	s.Close()

	// Simulate the crash: cut the last record in half.
	cut := intactSize + (tornSize-intactSize)/2
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}

	s = openT(t, path, Config{SyncInterval: -1})
	defer s.Close()
	st := s.Stats()
	if st.Recovered != 10 {
		t.Fatalf("recovered %d records, want 10", st.Recovered)
	}
	if st.Truncated != cut-intactSize {
		t.Fatalf("truncated %d bytes, want %d", st.Truncated, cut-intactSize)
	}
	if st.Bytes != intactSize {
		t.Fatalf("post-recovery size %d, want %d", st.Bytes, intactSize)
	}
	if _, ok, _ := s.Get("torn"); ok {
		t.Fatal("torn record survived recovery")
	}
	for i := 0; i < 10; i++ {
		got, ok, err := s.Get(fmt.Sprintf("k%d", i))
		if err != nil || !ok || string(got) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("k%d after recovery: %q, %v, %v", i, got, ok, err)
		}
	}

	// And the log keeps working: append after recovery, reopen once more.
	if err := s.Put("after", []byte("recovery")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s = openT(t, path, Config{SyncInterval: -1})
	defer s.Close()
	if got, ok, _ := s.Get("after"); !ok || string(got) != "recovery" {
		t.Fatalf("post-recovery append lost: %q, %v", got, ok)
	}
}

// TestCrashRecoveryCorruptTail flips a byte inside the final record's
// payload: the CRC must reject it and recovery must drop it.
func TestCrashRecoveryCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.log")
	s := openT(t, path, Config{SyncInterval: -1})
	s.Put("good", []byte("kept"))
	mid := s.Stats().Bytes
	s.Put("bad", []byte("bitrot-target"))
	s.Close()

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the last record's value.
	if _, err := f.WriteAt([]byte{0xff}, mid+recHeaderLen+int64(len("bad"))+3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s = openT(t, path, Config{SyncInterval: -1})
	defer s.Close()
	if _, ok, _ := s.Get("bad"); ok {
		t.Fatal("corrupt record served")
	}
	if got, ok, _ := s.Get("good"); !ok || string(got) != "kept" {
		t.Fatalf("intact record lost: %q, %v", got, ok)
	}
	if st := s.Stats(); st.Truncated == 0 {
		t.Fatalf("stats report no truncation: %+v", st)
	}
}

// TestRejectsForeignFile checks Open refuses a file that is not a verdict
// log instead of truncating it.
func TestRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notalog")
	if err := os.WriteFile(path, []byte("something else entirely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Config{SyncInterval: -1}); err == nil {
		t.Fatal("Open accepted a non-log file")
	}
	data, _ := os.ReadFile(path)
	if string(data) != "something else entirely" {
		t.Fatal("Open modified a foreign file")
	}
}

// TestSyncBatching checks fsyncs are batched by SyncEvery, with Sync and
// Close flushing the partial batch.
func TestSyncBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.log")
	s := openT(t, path, Config{SyncEvery: 8, SyncInterval: -1})
	for i := 0; i < 20; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	if st := s.Stats(); st.Syncs != 2 {
		t.Fatalf("syncs after 20 puts with SyncEvery=8: %d, want 2", st.Syncs)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Syncs != 3 {
		t.Fatalf("explicit Sync did not flush the partial batch: %+v", st)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Syncs != 3 {
		t.Fatalf("empty Sync still hit the disk: %+v", st)
	}
	s.Close()
}

// TestConcurrent hammers puts and gets from many goroutines; run under
// -race this pins the locking discipline.
func TestConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.log")
	s := openT(t, path, Config{SyncEvery: 32})
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*200+i)%64)
				if err := s.Put(key, []byte(fmt.Sprintf("g%d-i%d", g, i))); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := s.Get(key); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 64 {
		t.Fatalf("Len = %d, want 64", s.Len())
	}
}
