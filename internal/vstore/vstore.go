// Package vstore is the disk-backed persistent verdict store beneath
// rockerd's in-memory LRU: an append-only record log plus an in-memory
// digest index, so completed verdicts survive process restarts and a
// rebooted node answers repeat submissions with a disk hit instead of
// re-exploring a state space.
//
// Design, in order of what matters:
//
//   - Append-only log. A put appends one self-describing record
//     (lengths + CRC32C + key + value) and updates the index; the latest
//     record for a key wins. There is no in-place mutation, so a crash can
//     only ever damage the tail.
//   - Crash recovery by construction. Open scans the log forward,
//     rebuilding the index from every record that passes its CRC; the
//     first short or corrupt record marks the torn tail, which is
//     truncated away. Everything before it stays readable.
//   - Batched fsync. Durability is a throughput tradeoff: records are
//     fsynced every SyncEvery puts or SyncInterval of wall clock,
//     whichever comes first, so a sustained stream amortizes the sync
//     cost while a crash loses at most the current batch (the log itself
//     stays consistent — recovery drops the torn tail, never the file).
//
// Values are opaque bytes (rockerd stores JSON-encoded Results); keys are
// the canonical verdict-cache keys of internal/verkey. A store must have
// a single owning process: there is no cross-process lock.
package vstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// fileMagic heads every log file; a mismatch means the file is not a
// verdict log (or a future incompatible version) and Open refuses it
// rather than truncating someone else's data.
const fileMagic = "rkvlog1\n"

const (
	recHeaderLen = 10      // u16 keyLen + u32 valLen + u32 crc32c(key ∥ val)
	maxKeyLen    = 1 << 12 // sanity bounds: a longer field means corruption,
	maxValLen    = 1 << 24 // not a big record
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Config tunes the fsync batching. The zero value is production-usable.
type Config struct {
	// SyncEvery forces an fsync after this many unsynced puts (default 64).
	// 1 means sync-per-put (slow, maximally durable).
	SyncEvery int
	// SyncInterval is the background flusher cadence that bounds how long
	// a partial batch stays unsynced (default 100ms; negative disables the
	// background flusher — tests use this to control syncs exactly).
	SyncInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.SyncEvery <= 0 {
		c.SyncEvery = 64
	}
	if c.SyncInterval == 0 {
		c.SyncInterval = 100 * time.Millisecond
	}
	return c
}

// Store is an open verdict log. Safe for concurrent use.
type Store struct {
	path string
	cfg  Config

	mu      sync.Mutex
	f       *os.File
	size    int64 // append offset == logical file size
	index   map[string]recLoc
	pending int // puts since the last fsync
	closed  bool

	stop chan struct{} // closes the background flusher
	done chan struct{}

	puts, syncs int64
	recovered   int64 // records read back at Open
	truncated   int64 // torn-tail bytes dropped at Open
}

// recLoc locates a record's value bytes in the log.
type recLoc struct {
	off  int64
	vlen int
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Records   int   // live keys in the index
	Bytes     int64 // log file size
	Puts      int64 // appends since Open
	Syncs     int64 // fsyncs since Open
	Recovered int64 // records replayed by Open
	Truncated int64 // torn-tail bytes dropped by Open
}

// Open opens (creating if necessary) the verdict log at path, replays it
// into a fresh index, truncates any torn tail, and starts the background
// flusher. The caller owns the store until Close.
func Open(path string, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{
		path:  path,
		cfg:   cfg,
		f:     f,
		index: make(map[string]recLoc),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	if cfg.SyncInterval > 0 {
		go s.flusher()
	} else {
		close(s.done)
	}
	return s, nil
}

// recover replays the log: magic check, then records until EOF or the
// first record that is short or fails its CRC, at which point the file is
// truncated back to the last intact record boundary.
func (s *Store) recover() error {
	st, err := s.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		if _, err := s.f.Write([]byte(fileMagic)); err != nil {
			return err
		}
		s.size = int64(len(fileMagic))
		return s.f.Sync()
	}

	r := bufio.NewReaderSize(io.NewSectionReader(s.f, 0, st.Size()), 1<<16)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != fileMagic {
		return fmt.Errorf("vstore: %s is not a verdict log (bad magic)", s.path)
	}

	off := int64(len(fileMagic))
	hdr := make([]byte, recHeaderLen)
	var buf []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			break // clean EOF or torn header — off marks the last good boundary
		}
		klen := int(binary.LittleEndian.Uint16(hdr[0:2]))
		vlen := int(binary.LittleEndian.Uint32(hdr[2:6]))
		crc := binary.LittleEndian.Uint32(hdr[6:10])
		if klen == 0 || klen > maxKeyLen || vlen > maxValLen {
			break
		}
		need := klen + vlen
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		buf = buf[:need]
		if _, err := io.ReadFull(r, buf); err != nil {
			break // torn payload
		}
		if crc32.Checksum(buf, crcTable) != crc {
			break // corrupt record: treat as tail, drop it and everything after
		}
		s.index[string(buf[:klen])] = recLoc{off: off + recHeaderLen + int64(klen), vlen: vlen}
		off += recHeaderLen + int64(need)
		s.recovered++
	}

	if off < st.Size() {
		s.truncated = st.Size() - off
		if err := s.f.Truncate(off); err != nil {
			return err
		}
		if err := s.f.Sync(); err != nil {
			return err
		}
	}
	s.size = off
	if _, err := s.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// Get returns the latest value stored under key. The returned slice is
// the caller's to keep.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, os.ErrClosed
	}
	loc, ok := s.index[key]
	if !ok {
		return nil, false, nil
	}
	val := make([]byte, loc.vlen)
	if _, err := s.f.ReadAt(val, loc.off); err != nil {
		return nil, false, fmt.Errorf("vstore: reading %q: %w", key, err)
	}
	return val, true, nil
}

// Has reports whether key is present without reading its value.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Put appends a record for key and updates the index; the write is
// durable after the current sync batch lands (see Config). Overwriting a
// key appends a fresh record — the log is never rewritten in place.
func (s *Store) Put(key string, val []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("vstore: key length %d out of range", len(key))
	}
	if len(val) > maxValLen {
		return fmt.Errorf("vstore: value length %d exceeds %d", len(val), maxValLen)
	}
	rec := make([]byte, recHeaderLen+len(key)+len(val))
	binary.LittleEndian.PutUint16(rec[0:2], uint16(len(key)))
	binary.LittleEndian.PutUint32(rec[2:6], uint32(len(val)))
	copy(rec[recHeaderLen:], key)
	copy(rec[recHeaderLen+len(key):], val)
	binary.LittleEndian.PutUint32(rec[6:10], crc32.Checksum(rec[recHeaderLen:], crcTable))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	if _, err := s.f.Write(rec); err != nil {
		return err
	}
	s.index[key] = recLoc{off: s.size + recHeaderLen + int64(len(key)), vlen: len(val)}
	s.size += int64(len(rec))
	s.puts++
	s.pending++
	if s.pending >= s.cfg.SyncEvery {
		return s.syncLocked()
	}
	return nil
}

// Sync forces any pending batch to disk now.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.pending == 0 {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.pending = 0
	s.syncs++
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Path returns the log file path.
func (s *Store) Path() string { return s.path }

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Records:   len(s.index),
		Bytes:     s.size,
		Puts:      s.puts,
		Syncs:     s.syncs,
		Recovered: s.recovered,
		Truncated: s.truncated,
	}
}

// Close flushes the final batch and closes the log. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.syncLocked()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	close(s.stop)
	s.mu.Unlock()
	<-s.done
	return err
}

// flusher bounds the staleness of a partial sync batch.
func (s *Store) flusher() {
	defer close(s.done)
	t := time.NewTicker(s.cfg.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed {
				_ = s.syncLocked()
			}
			s.mu.Unlock()
		}
	}
}
