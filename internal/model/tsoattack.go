package model

import (
	"repro/internal/lang"
	"repro/internal/staterobust"
)

// CheckTSO decides state robustness against x86-TSO with a polynomial
// attack-based instrumentation, following the shape of "Checking
// Robustness against TSO" (Bouajjani–Derevenetc–Meyer): instead of
// exploring the product with every store buffer live — whose state space
// grows exponentially with the number of concurrently buffering threads
// — it runs one reachability query over the *lazy single-delayer*
// machine (NewTSOLazy), in which at most one buffer is ever non-empty:
// an attack is the nondeterministic choice, made at any point where all
// buffers are drained, of one candidate thread that starts delaying its
// stores while everyone else writes through. The program is non-robust
// iff the query reaches a program state outside the SC-reachable set.
//
// Soundness is immediate: every run of the lazy machine is a genuine TSO
// run (write-through is a store immediately followed by its flush), so a
// non-SC state found here is TSO-reachable. Completeness is the locality
// argument of "Locality and Singularity for Store-Atomic Memory Models"
// (PAPERS.md): a minimal robustness violation under a store-atomic model
// needs only one thread deviating from SC at a time — the delayed writes
// of any second thread can be committed eagerly without losing the
// violating state. The exhaustive staterobust.CheckTSO remains in the
// tree as the oracle: the Figure-7 corpus parity test and the diffcheck
// fuzz leg cross-check the two checkers on every row and on generated
// programs.
//
// The state space is a subset of the exhaustive product's by
// construction (every lazy state is a full-product state whose
// non-delaying buffers are empty), so Explored never exceeds the
// exhaustive checker's count and is strictly smaller whenever full TSO
// reaches a state with two live buffers. DelayerCandidates shrinks it
// further by never letting a thread that could not possibly profit from
// delaying open an episode.
func CheckTSO(program *lang.Program, lim staterobust.Limits) (*staterobust.Result, error) {
	scSet, err := staterobust.ReachableSC(program, lim)
	if err != nil {
		return nil, err
	}
	res := &staterobust.Result{Robust: true, SCStates: len(scSet)}
	cands := DelayerCandidates(program)
	if len(cands) == 0 {
		// No thread can profit from delaying: with every buffer pinned
		// empty the lazy machine is the SC machine, so the program is
		// robust with no weak exploration at all (Explored and WeakStates
		// stay 0).
		return res, nil
	}
	weak := map[string]struct{}{}
	mm := NewTSOLazy(program, lim.TSOBufCap, cands)
	if err := checkAgainst(program, mm, lim, scSet, weak, res); err != nil {
		return nil, err
	}
	res.WeakStates = len(weak)
	return res, nil
}

// DelayerCandidates returns the threads worth letting open a delay
// episode: those containing at least one store and at least one plain
// load or wait. A thread with no store has nothing to delay; a thread
// with no plain load between a delayed store and its flush cannot
// observe its own delay, so the store commutes forward to its flush
// point (every intermediate action is thread-local or belongs to a
// thread that cannot see the buffered value, and the thread's own RMWs —
// which do read — require an empty buffer, closing the episode first),
// yielding an SC run through the same program states. The filter is a
// static superset of the useful delayers; shrinking it further — e.g.
// demanding a load *reachable after* a store in the thread's control
// flow — would stay sound but buys little on the corpus.
func DelayerCandidates(program *lang.Program) []lang.Tid {
	var out []lang.Tid
	for ti := range program.Threads {
		var store, load bool
		for ii := range program.Threads[ti].Insts {
			switch program.Threads[ti].Insts[ii].Kind {
			case lang.IWrite:
				store = true
			case lang.IRead, lang.IWait:
				load = true
			}
		}
		if store && load {
			out = append(out, lang.Tid(ti))
		}
	}
	return out
}
