// Package model abstracts the repository's operational memory subsystems
// behind one MemoryModel interface and grows the cross-model verification
// matrix on top of it: one program in, a verdict per model out.
//
// Before this package, the four machines — SC (memsc), RA and SRA (memra),
// and TSO (memtso) — were each wired ad hoc into their own explorer
// (staterobust's ReachableSC, checkWeakRA, and CheckTSO). The interface
// factors the wiring into its four roles:
//
//   - init: the initial memory state for a program shape (Init);
//   - step: the successors of a memory state under one program operation,
//     plus memory-internal transitions such as TSO flushes (Steps,
//     Internal);
//   - canonicalize: the state normalization that keeps the product finite
//     and collapses equivalent states (Canon — timestamp renumbering for
//     RA/SRA, a no-op for SC and TSO);
//   - robustness-monitor: how non-SC behavior is detected on top of the
//     reachable states. For the state models the monitor is generic — the
//     program-state projection of every reached product state is compared
//     against the SC-reachable set (Definition 2.6, CheckState) — while
//     the execution-graph modes use the internal/scm monitor through
//     internal/core and are dispatched by the registry (registry.go), not
//     through this interface.
//
// The specialized engines remain the production paths for the modes they
// already serve (they carry the pooled-scratch and parallel machinery);
// the adapters here are their interface-driven reference, pinned equal by
// parity tests. The one production user of the interface is the
// polynomial instrumented TSO checker (tsoattack.go), whose single-delayer
// machines are TSO adapter instances with a restricted delayer set.
package model

import (
	"repro/internal/lang"
	"repro/internal/memra"
	"repro/internal/memsc"
	"repro/internal/memtso"
	"repro/internal/prog"
	"repro/internal/staterobust"
)

// State is one memory-subsystem state paired against a program state in a
// product exploration.
type State interface {
	// Clone returns a deep copy.
	Clone() State
	// Encode appends a canonical byte encoding to dst. Two states with
	// equal encodings are interchangeable for the exploration.
	Encode(dst []byte) []byte
}

// Succ is one successor produced by a model: the new memory state (owned
// by the caller — models must not retain or alias it) and the label the
// program observes. Internal transitions (Internal) carry no label.
type Succ struct {
	M   State
	Lab lang.Label
}

// MemoryModel is one operational memory subsystem. Implementations keep
// per-instance scratch buffers, so a model value must not be shared
// between concurrent explorations; Canon may mutate its argument in
// place.
type MemoryModel interface {
	// Name returns the model's short name ("sc", "ra", "sra", "tso").
	Name() string
	// Init returns the initial memory state.
	Init() State
	// Steps appends every successor of m under thread tid executing op:
	// for each way the memory can serve the operation, the mutated state
	// and the observed label. An operation the memory cannot serve (a
	// blocked wait, a full store buffer, a failed BCAS) contributes no
	// successor.
	Steps(dst []Succ, m State, tid lang.Tid, op prog.MemOp) []Succ
	// Internal appends the memory-internal transitions of thread tid
	// enabled in m (TSO buffer flushes; empty for the other models).
	Internal(dst []Succ, m State, tid lang.Tid) []Succ
	// Canon canonicalizes m in place (timestamp renumbering for RA/SRA;
	// a no-op otherwise). Called on every successor before interning.
	Canon(m State)
	// BoundHit reports whether a structural bound of the machine (the TSO
	// store-buffer capacity) ever inhibited a transition; if false, the
	// bound provably did not limit the exploration.
	BoundHit() bool
}

// ---------------------------------------------------------------- SC ----

type scState struct{ m memsc.Memory }

func (s *scState) Clone() State           { return &scState{s.m.Clone()} }
func (s *scState) Encode(d []byte) []byte { return s.m.Encode(d) }

type scModel struct {
	numLocs  int
	valCount int
}

// NewSC returns the SC memory (memsc) as a MemoryModel.
func NewSC(program *lang.Program) MemoryModel {
	return &scModel{numLocs: program.NumLocs(), valCount: program.ValCount}
}

func (mm *scModel) Name() string { return "sc" }
func (mm *scModel) Init() State  { return &scState{memsc.New(mm.numLocs)} }

func (mm *scModel) Steps(dst []Succ, ms State, tid lang.Tid, op prog.MemOp) []Succ {
	m := ms.(*scState).m
	label, enabled := prog.SCLabel(op, m[op.Loc], mm.valCount)
	if !enabled {
		return dst
	}
	nm := m.Clone()
	nm.Step(label)
	return append(dst, Succ{M: &scState{nm}, Lab: label})
}

func (mm *scModel) Internal(dst []Succ, ms State, tid lang.Tid) []Succ { return dst }
func (mm *scModel) Canon(State)                                        {}
func (mm *scModel) BoundHit() bool                                     { return false }

// --------------------------------------------------------------- TSO ----

type tsoState struct{ m *memtso.State }

func (s *tsoState) Clone() State           { return &tsoState{s.m.Clone()} }
func (s *tsoState) Encode(d []byte) []byte { return s.m.Encode(d) }

type tsoModel struct {
	numLocs, numThreads int
	valCount            int
	bufCap              int
	// lazySet, when non-nil, selects the lazy single-delayer machine of
	// the instrumented checker (tsoattack.go): at most one store buffer
	// is ever non-empty. A thread whose buffer is already open keeps
	// buffering; a thread in the set may open a delay episode when every
	// buffer is empty; every other write commits straight to the store
	// (a write immediately followed by its flush — a genuine TSO run,
	// just with the flush fused into the store step). nil gives the full
	// x86-TSO machine: every thread buffers every write.
	lazySet  []bool
	boundHit bool
}

// NewTSO returns the full x86-TSO machine (memtso) as a MemoryModel.
// bufCap bounds each store buffer (0 = 8, matching
// staterobust.CheckTSO).
func NewTSO(program *lang.Program, bufCap int) MemoryModel {
	return newTSO(program, bufCap, nil)
}

// NewTSOLazy returns the lazy single-delayer TSO machine used by the
// instrumented checker: only threads in delayers may open a buffering
// episode, and only while every other buffer is empty. Its reachable
// product states are a subset of NewTSO's.
func NewTSOLazy(program *lang.Program, bufCap int, delayers []lang.Tid) MemoryModel {
	lazySet := make([]bool, program.NumThreads())
	for _, tid := range delayers {
		lazySet[tid] = true
	}
	return newTSO(program, bufCap, lazySet)
}

func newTSO(program *lang.Program, bufCap int, lazySet []bool) MemoryModel {
	if bufCap <= 0 {
		bufCap = 8
	}
	return &tsoModel{
		numLocs:    program.NumLocs(),
		numThreads: program.NumThreads(),
		valCount:   program.ValCount,
		bufCap:     bufCap,
		lazySet:    lazySet,
	}
}

func (mm *tsoModel) Name() string { return "tso" }
func (mm *tsoModel) Init() State  { return &tsoState{memtso.New(mm.numLocs, mm.numThreads)} }

// mayDelay reports whether tid's next write enters its buffer (versus
// writing through): always under the full machine; under the lazy
// machine, iff tid's episode is already open or tid may open one and no
// other buffer is live.
func (mm *tsoModel) mayDelay(m *memtso.State, tid lang.Tid) bool {
	if mm.lazySet == nil {
		return true
	}
	if m.CanFlush(tid) { // own episode open
		return true
	}
	if !mm.lazySet[tid] {
		return false
	}
	for t := range m.Bufs {
		if len(m.Bufs[t]) > 0 {
			return false
		}
	}
	return true
}

func (mm *tsoModel) Steps(dst []Succ, ms State, tid lang.Tid, op prog.MemOp) []Succ {
	m := ms.(*tsoState).m
	switch op.Kind {
	case prog.OpWrite:
		if mm.mayDelay(m, tid) {
			if !m.CanWrite(tid, mm.bufCap) {
				mm.boundHit = true
				return dst
			}
			nm := m.Clone()
			nm.Write(tid, op.Loc, op.WVal)
			return append(dst, Succ{M: &tsoState{nm}, Lab: lang.WriteLab(op.Loc, op.WVal)})
		}
		// Write-through: commit to the store immediately. The thread's
		// buffer is empty, so this is write+flush fused; the buffered
		// variant of the same state is reachable anyway when the thread
		// may delay (buffer then flush), so the branch loses no states.
		nm := m.Clone()
		nm.Mem[op.Loc] = op.WVal
		return append(dst, Succ{M: &tsoState{nm}, Lab: lang.WriteLab(op.Loc, op.WVal)})
	case prog.OpRead:
		return append(dst, Succ{M: &tsoState{m.Clone()}, Lab: lang.ReadLab(op.Loc, m.Lookup(tid, op.Loc))})
	case prog.OpWait:
		if m.Lookup(tid, op.Loc) != op.WVal {
			return dst
		}
		return append(dst, Succ{M: &tsoState{m.Clone()}, Lab: lang.ReadLab(op.Loc, op.WVal)})
	default:
		// Locked RMW instructions require an empty buffer and act on the
		// global store (which is what makes the paper's FADD-encoded
		// fences full fences on TSO).
		if !m.BufEmpty(tid) {
			return dst
		}
		label, enabled := prog.SCLabel(op, m.Mem[op.Loc], mm.valCount)
		if !enabled {
			return dst
		}
		nm := m.Clone()
		if label.Typ == lang.LRMW {
			nm.RMW(tid, label.Loc, label.VR, label.VW)
		}
		return append(dst, Succ{M: &tsoState{nm}, Lab: label})
	}
}

func (mm *tsoModel) Internal(dst []Succ, ms State, tid lang.Tid) []Succ {
	m := ms.(*tsoState).m
	if !m.CanFlush(tid) {
		return dst
	}
	nm := m.Clone()
	nm.Flush(tid)
	return append(dst, Succ{M: &tsoState{nm}})
}

func (mm *tsoModel) Canon(State)    {}
func (mm *tsoModel) BoundHit() bool { return mm.boundHit }

// ------------------------------------------------------------ RA/SRA ----

type raState struct{ m *memra.State }

func (s *raState) Clone() State           { return &raState{s.m.Clone()} }
func (s *raState) Encode(d []byte) []byte { return s.m.Encode(d) }

type raModel struct {
	numLocs, numThreads int
	valCount            int
	sra                 bool
	headroom, gapCap    int
	cands               []memra.Msg
	slots               []memra.Time
}

// NewRA returns the §3 release/acquire timestamp machine (memra) as a
// MemoryModel; headroom follows staterobust.RAHeadroom semantics (0 =
// derive from the program's write count).
func NewRA(program *lang.Program, headroom int) MemoryModel {
	return newRA(program, headroom, false)
}

// NewSRA is NewRA for the SRA strengthening (globally maximal write
// slots; see memra.WriteSlotSRA).
func NewSRA(program *lang.Program, headroom int) MemoryModel {
	return newRA(program, headroom, true)
}

func newRA(program *lang.Program, headroom int, sra bool) MemoryModel {
	if headroom <= 0 {
		headroom = staterobust.RAHeadroom(program, staterobust.Limits{})
	}
	return &raModel{
		numLocs:    program.NumLocs(),
		numThreads: program.NumThreads(),
		valCount:   program.ValCount,
		sra:        sra,
		headroom:   headroom,
		gapCap:     headroom + 1,
	}
}

func (mm *raModel) Name() string {
	if mm.sra {
		return "sra"
	}
	return "ra"
}

func (mm *raModel) Init() State { return &raState{memra.New(mm.numLocs, mm.numThreads)} }

// Steps mirrors staterobust.checkWeakRA's candidate enumeration exactly
// (Figure 2 semantics): write slots (SRA: the single maximal slot), read
// candidates filtered by a wait's expected value, RMW candidates with the
// FADD/XCHG/CAS value computation, and the failed-CAS plain read.
func (mm *raModel) Steps(dst []Succ, ms State, tid lang.Tid, op prog.MemOp) []Succ {
	m := ms.(*raState).m
	switch op.Kind {
	case prog.OpWrite:
		if mm.sra {
			mm.slots = append(mm.slots[:0], m.WriteSlotSRA(op.Loc))
		} else {
			mm.slots = m.AppendWriteSlots(mm.slots[:0], tid, op.Loc, mm.headroom)
		}
		for _, slot := range mm.slots {
			nm := m.Clone()
			nm.Write(tid, op.Loc, op.WVal, slot)
			dst = append(dst, Succ{M: &raState{nm}, Lab: lang.WriteLab(op.Loc, op.WVal)})
		}
	case prog.OpRead, prog.OpWait:
		mm.cands = m.AppendReadCandidates(mm.cands[:0], tid, op.Loc)
		for _, msg := range mm.cands {
			if op.Kind == prog.OpWait && msg.Val != op.WVal {
				continue
			}
			nm := m.Clone()
			nm.Read(tid, msg)
			dst = append(dst, Succ{M: &raState{nm}, Lab: lang.ReadLab(op.Loc, msg.Val)})
		}
	case prog.OpFADD, prog.OpXCHG, prog.OpCAS, prog.OpBCAS:
		if mm.sra {
			mm.cands = m.AppendRMWCandidatesSRA(mm.cands[:0], tid, op.Loc)
		} else {
			mm.cands = m.AppendRMWCandidates(mm.cands[:0], tid, op.Loc)
		}
		for _, msg := range mm.cands {
			var vW lang.Val
			switch op.Kind {
			case prog.OpFADD:
				vW = lang.Val((int(msg.Val) + int(op.Add)) % mm.valCount)
			case prog.OpXCHG:
				vW = op.New
			case prog.OpCAS, prog.OpBCAS:
				if msg.Val != op.Exp {
					continue // handled as a plain read below for CAS
				}
				vW = op.New
			}
			nm := m.Clone()
			nm.RMW(tid, msg, vW)
			dst = append(dst, Succ{M: &raState{nm}, Lab: lang.RMWLab(op.Loc, msg.Val, vW)})
		}
		if op.Kind == prog.OpCAS {
			// Failed CAS: a plain read of any value ≠ Exp (Figure 2).
			mm.cands = m.AppendReadCandidates(mm.cands[:0], tid, op.Loc)
			for _, msg := range mm.cands {
				if msg.Val == op.Exp {
					continue
				}
				nm := m.Clone()
				nm.Read(tid, msg)
				dst = append(dst, Succ{M: &raState{nm}, Lab: lang.ReadLab(op.Loc, msg.Val)})
			}
		}
	}
	return dst
}

func (mm *raModel) Internal(dst []Succ, ms State, tid lang.Tid) []Succ { return dst }

func (mm *raModel) Canon(ms State) { ms.(*raState).m.Canonicalize(mm.gapCap) }

func (mm *raModel) BoundHit() bool { return false }
