package model

import (
	"context"
	"fmt"

	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/prog"
	"repro/internal/staterobust"
)

// This file is the interface's robustness monitor for the state models:
// a generic sequential explorer of the program × MemoryModel product that
// compares every reached program-state projection against the
// SC-reachable set (Definition 2.6). It is the reference implementation
// the specialized staterobust engines are parity-tested against, and the
// engine under the instrumented TSO checker (tsoattack.go).

// Mirrors of staterobust's private exploration knobs (the limits type is
// shared; its helpers are not exported).
const (
	ctxPollMask   = 255
	progressEvery = 4096
)

func maxStates(lim staterobust.Limits) int {
	if lim.MaxStates <= 0 {
		return 4_000_000
	}
	return lim.MaxStates
}

func ctxDone(lim staterobust.Limits) bool {
	return lim.Ctx != nil && lim.Ctx.Err() != nil
}

func canceled(lim staterobust.Limits) error {
	return fmt.Errorf("%w: %w", staterobust.ErrCanceled, context.Cause(lim.Ctx))
}

// CheckState decides state robustness of the program against the model:
// it explores the ε-granular product of the program with mm and reports
// the first program state not reachable under SC, if any. The Result has
// staterobust.Result semantics (Explored counts compound states,
// SCStates/WeakStates count program-state projections, BufBoundHit comes
// from mm.BoundHit).
func CheckState(program *lang.Program, mm MemoryModel, lim staterobust.Limits) (*staterobust.Result, error) {
	scSet, err := staterobust.ReachableSC(program, lim)
	if err != nil {
		return nil, err
	}
	res := &staterobust.Result{Robust: true, SCStates: len(scSet)}
	weak := map[string]struct{}{}
	if err := checkAgainst(program, mm, lim, scSet, weak, res); err != nil {
		return nil, err
	}
	res.WeakStates = len(weak)
	return res, nil
}

// checkAgainst explores one program × mm product, accumulating into res:
// Explored grows by this run's compound-state count, Robust/WitnessTrace
// are set on the first projection outside scSet, BufBoundHit ORs in
// mm.BoundHit. weak is the shared projection dedup set — callers running
// several products against one scSet (the attack loop) pass the same map
// so projections are checked once and WeakStates counts the union. The
// state bound applies to res.Explored, i.e. across the whole sequence of
// products, matching the exhaustive checkers' single-store bound.
func checkAgainst(program *lang.Program, mm MemoryModel, lim staterobust.Limits, scSet, weak map[string]struct{}, res *staterobust.Result) error {
	p := prog.New(program)
	type node struct {
		ps prog.State
		m  State
	}
	store := explore.NewStore()
	var queue explore.Queue[node]
	var buf []byte
	key := func(ps prog.State, m State) []byte {
		buf = buf[:0]
		buf = p.EncodeStateRaw(buf, ps)
		buf = m.Encode(buf)
		return buf
	}
	var sy *prog.Symmetry
	if lim.Reduce {
		sy = prog.NewSymmetry(p)
	}
	var symBuf []byte
	base := res.Explored
	// check records the projection of a newly interned compound state and
	// reports whether it witnesses non-robustness.
	check := func(id int32, ps prog.State) bool {
		var pk string
		if sy == nil {
			pk = p.StateKeyRaw(ps)
		} else {
			symBuf = p.EncodeStateRaw(symBuf[:0], ps)
			pk = string(sy.CanonRaw(symBuf))
		}
		if _, ok := weak[pk]; !ok {
			weak[pk] = struct{}{}
			if _, ok := scSet[pk]; !ok {
				res.Robust = false
				if res.WitnessTrace == nil {
					res.WitnessTrace = store.Trace(id)
				}
				return true
			}
		}
		return false
	}
	finish := func() {
		res.Explored = base + store.Len()
		if mm.BoundHit() {
			res.BufBoundHit = true
		}
	}

	ps0 := p.InitStateRaw()
	m0 := mm.Init()
	root, _ := store.AddBytes(key(ps0, m0), -1, explore.Step{})
	queue.Push(root, node{ps0, m0})
	if check(root, ps0) {
		finish()
		return nil
	}
	var succs []Succ
	popped := 0
	for {
		item, ok := queue.Pop()
		if !ok {
			break
		}
		if base+store.Len() > maxStates(lim) {
			return staterobust.ErrBound
		}
		if popped&ctxPollMask == 0 && ctxDone(lim) {
			return canceled(lim)
		}
		popped++
		if lim.Progress != nil && popped%progressEvery == 0 {
			lim.Progress(base + store.Len())
		}
		n := item.St
		// Program actions (ε-granular: thread-local steps are their own
		// transitions, exactly as in staterobust.ReachableSC).
		for t := range p.Threads {
			th := &p.Threads[t]
			ts := n.ps.Threads[t]
			tid := lang.Tid(t)
			if th.Terminated(ts) {
				continue
			}
			if th.AtEps(ts) {
				nextTS, afail := th.StepEps(ts)
				if afail != nil {
					continue // a failed assert has no successors
				}
				nextPS := n.ps.Clone()
				nextPS.Threads[t] = nextTS
				id, isNew := store.AddBytes(key(nextPS, n.m), item.ID,
					explore.Step{Tid: tid, Internal: explore.IntEps})
				if isNew {
					if check(id, nextPS) {
						finish()
						return nil
					}
					queue.Push(id, node{nextPS, n.m.Clone()})
				}
				continue
			}
			succs = mm.Steps(succs[:0], n.m, tid, th.Op(ts))
			for _, sc := range succs {
				mm.Canon(sc.M)
				nextPS := n.ps.Clone()
				nextPS.Threads[t] = th.ApplyRaw(ts, sc.Lab)
				id, isNew := store.AddBytes(key(nextPS, sc.M), item.ID,
					explore.Step{Tid: tid, Lab: sc.Lab})
				if isNew {
					if check(id, nextPS) {
						finish()
						return nil
					}
					queue.Push(id, node{nextPS, sc.M})
				}
			}
		}
		// Memory-internal actions (the program state is unchanged, so its
		// projection has already been checked).
		for t := 0; t < program.NumThreads(); t++ {
			tid := lang.Tid(t)
			succs = mm.Internal(succs[:0], n.m, tid)
			for _, sc := range succs {
				mm.Canon(sc.M)
				id, isNew := store.AddBytes(key(n.ps, sc.M), item.ID,
					explore.Step{Tid: tid, Internal: explore.IntFlush})
				if isNew {
					queue.Push(id, node{n.ps.Clone(), sc.M})
				}
			}
		}
	}
	if ctxDone(lim) {
		return canceled(lim)
	}
	finish()
	return nil
}
