package model

import (
	"testing"

	"repro/internal/litmus"
	"repro/internal/staterobust"
)

// TestTSOAttackCorpusParity is the acceptance gate for the instrumented
// checker: on every feasible corpus row, the attack-based CheckTSO must
// agree with the exhaustive staterobust.CheckTSO verdict (pinned in
// litmus.Entry.RobustTSO, which the exhaustive checker's own
// TestTSOVerdicts asserts against the same rows).
func TestTSOAttackCorpusParity(t *testing.T) {
	for _, e := range litmus.All() {
		if e.Big {
			continue
		}
		switch e.Name {
		case "nbw-w-lr-rl":
			// >30M compound states under either checker (the SC backbone
			// alone is out of reach); skipped exactly as in the exhaustive
			// checker's TestTSOVerdicts.
			continue
		case "rcu", "rcu-offline", "seqlock", "lamport2-ra":
			if testing.Short() {
				continue
			}
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			p := e.Program()
			res, err := CheckTSO(p, staterobust.Limits{MaxStates: 30_000_000, TSOBufCap: 4})
			if err != nil {
				t.Fatalf("CheckTSO: %v", err)
			}
			if res.Robust != e.RobustTSO {
				t.Fatalf("instrumented TSO verdict: robust=%v, exhaustive oracle says %v (explored %d, weak %d, sc %d)",
					res.Robust, e.RobustTSO, res.Explored, res.WeakStates, res.SCStates)
			}
		})
	}
}

// TestTSOAttackStateCounts compares the instrumented and exhaustive
// explorations head-to-head. On robust rows the lazy single-delayer
// state space is a subset of the full product's by construction, so the
// instrumented count can never exceed the exhaustive one there; the
// acceptance criterion of a strict win on at least 3 corpus rows holds
// comfortably (5 of these 8). Exact instrumented counts are pinned on
// three stable rows so a semantics change in the lazy machine cannot
// slip through as a silent count drift.
func TestTSOAttackStateCounts(t *testing.T) {
	pinned := map[string]int{
		"barrier":      54,
		"dekker-tso":   473,
		"peterson-tso": 764,
	}
	rows := []string{
		"barrier", "dekker-tso", "peterson-tso", "cilk-the-wsq-tso",
		"lamport2-tso", "spinlock", "ticketlock", "rcu-offline",
	}
	smaller := 0
	for _, name := range rows {
		e, err := litmus.Get(name)
		if err != nil {
			t.Fatalf("litmus.Get(%q): %v", name, err)
		}
		p := e.Program()
		lim := staterobust.Limits{MaxStates: 30_000_000, TSOBufCap: 4}
		inst, err := CheckTSO(p, lim)
		if err != nil {
			t.Fatalf("%s: instrumented: %v", name, err)
		}
		exh, err := staterobust.CheckTSO(p, lim)
		if err != nil {
			t.Fatalf("%s: exhaustive: %v", name, err)
		}
		if inst.Robust != exh.Robust {
			t.Errorf("%s: verdict mismatch: instrumented robust=%v exhaustive robust=%v", name, inst.Robust, exh.Robust)
		}
		if exh.Robust && inst.Explored > exh.Explored {
			t.Errorf("%s: instrumented explored %d states, exhaustive %d — the lazy machine must be a subset on robust rows",
				name, inst.Explored, exh.Explored)
		}
		if want, ok := pinned[name]; ok && inst.Explored != want {
			t.Errorf("%s: instrumented explored %d states, pinned %d", name, inst.Explored, want)
		}
		t.Logf("%-18s robust=%-5v instrumented=%d exhaustive=%d", name, inst.Robust, inst.Explored, exh.Explored)
		if inst.Explored < exh.Explored {
			smaller++
		}
	}
	if smaller < 3 {
		t.Errorf("instrumented exploration strictly smaller on only %d rows, want >= 3", smaller)
	}
}

// TestDelayerCandidates pins the static delayer filter: a thread with no
// store, or no plain load/wait, cannot profit from delaying.
func TestDelayerCandidates(t *testing.T) {
	chaseLev, err := litmus.Get("chase-lev-tso")
	if err != nil {
		t.Fatal(err)
	}
	// The Chase-Lev owner thread both pushes (stores) and takes (loads);
	// the thief side is RMW/read-only, so only thread 0 qualifies.
	if got := DelayerCandidates(chaseLev.Program()); len(got) != 1 || got[0] != 0 {
		t.Errorf("chase-lev-tso candidates = %v, want [0]", got)
	}
	barrier, err := litmus.Get("barrier")
	if err != nil {
		t.Fatal(err)
	}
	if got := DelayerCandidates(barrier.Program()); len(got) != 2 {
		t.Errorf("barrier candidates = %v, want both threads", got)
	}
}
