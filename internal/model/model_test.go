package model

import (
	"testing"

	"repro/internal/litmus"
	"repro/internal/staterobust"
)

// TestTSOAdapterParity pins the contract between the generic explorer and
// the specialized engine: CheckState over the full TSO machine (NewTSO,
// every buffer live) must reproduce staterobust.CheckTSO exactly — same
// verdict, same compound-state count, same projection counts — because
// both explore the same ε-granular product under the same state encoding.
// This is what licenses using checkAgainst as the engine beneath the
// instrumented checker.
func TestTSOAdapterParity(t *testing.T) {
	rows := []string{"barrier", "spinlock", "dekker-tso", "lamport2-tso", "dekker-sc", "peterson-sc"}
	for _, name := range rows {
		e, err := litmus.Get(name)
		if err != nil {
			t.Fatalf("litmus.Get(%q): %v", name, err)
		}
		p := e.Program()
		lim := staterobust.Limits{MaxStates: 2_000_000, TSOBufCap: 4}
		got, err := CheckState(p, NewTSO(p, lim.TSOBufCap), lim)
		if err != nil {
			t.Fatalf("%s: CheckState: %v", name, err)
		}
		want, err := staterobust.CheckTSO(p, lim)
		if err != nil {
			t.Fatalf("%s: CheckTSO: %v", name, err)
		}
		if got.Robust != want.Robust {
			t.Errorf("%s: Robust = %v, specialized engine says %v", name, got.Robust, want.Robust)
		}
		if got.SCStates != want.SCStates {
			t.Errorf("%s: SCStates = %d, want %d", name, got.SCStates, want.SCStates)
		}
		// On robust rows both explorations are exhaustive, so the counts
		// must match state for state. On non-robust rows both stop at the
		// first violation; BFS order can differ, so only the verdict and the
		// SC set are comparable.
		if want.Robust {
			if got.Explored != want.Explored {
				t.Errorf("%s: Explored = %d, want %d", name, got.Explored, want.Explored)
			}
			if got.WeakStates != want.WeakStates {
				t.Errorf("%s: WeakStates = %d, want %d", name, got.WeakStates, want.WeakStates)
			}
		}
	}
}

// TestRAAdapterParity checks the RA/SRA adapters against the specialized
// engines: same verdict and same program-state projection counts (both
// explorations are exhaustive on robust rows, and the projection sets are
// canonical regardless of exploration order).
func TestRAAdapterParity(t *testing.T) {
	rows := []string{"MP", "SB", "2RMW", "barrier", "BAR-loop"}
	for _, name := range rows {
		e, err := litmus.Get(name)
		if err != nil {
			t.Fatalf("litmus.Get(%q): %v", name, err)
		}
		p := e.Program()
		lim := staterobust.Limits{MaxStates: 4_000_000, Workers: 1}
		for _, sra := range []bool{false, true} {
			mm := NewRA(p, 0)
			var want *staterobust.Result
			var err error
			if sra {
				mm = NewSRA(p, 0)
				want, err = staterobust.CheckSRA(p, lim)
			} else {
				want, err = staterobust.CheckRA(p, lim)
			}
			if err != nil {
				t.Fatalf("%s sra=%v: specialized: %v", name, sra, err)
			}
			got, err := CheckState(p, mm, lim)
			if err != nil {
				t.Fatalf("%s sra=%v: CheckState: %v", name, sra, err)
			}
			if got.Robust != want.Robust {
				t.Errorf("%s sra=%v: Robust = %v, specialized engine says %v", name, sra, got.Robust, want.Robust)
			}
			if got.SCStates != want.SCStates {
				t.Errorf("%s sra=%v: SCStates = %d, want %d", name, sra, got.SCStates, want.SCStates)
			}
			if want.Robust && got.WeakStates != want.WeakStates {
				t.Errorf("%s sra=%v: WeakStates = %d, want %d", name, sra, got.WeakStates, want.WeakStates)
			}
		}
	}
}

// TestSCAdapter: the SC model explores exactly the SC-reachable set, so
// the product is trivially robust and the weak projection count equals
// the SC count.
func TestSCAdapter(t *testing.T) {
	for _, name := range []string{"barrier", "dekker-sc", "spinlock"} {
		e, err := litmus.Get(name)
		if err != nil {
			t.Fatalf("litmus.Get(%q): %v", name, err)
		}
		p := e.Program()
		res, err := CheckState(p, NewSC(p), staterobust.Limits{MaxStates: 2_000_000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Robust {
			t.Errorf("%s: SC-vs-SC product reported non-robust", name)
		}
		if res.WeakStates != res.SCStates {
			t.Errorf("%s: WeakStates = %d, SCStates = %d — must coincide for the SC model", name, res.WeakStates, res.SCStates)
		}
	}
}
