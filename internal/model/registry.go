package model

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/staterobust"
)

// The mode registry: every verification question the tools answer, in
// one table. rockerd validates and enumerates request modes from here
// (so a new model cannot drift out of the error message or the dispatch
// switch), the verdict-cache key embeds these strings verbatim
// (internal/verkey — which is why "tso" and "state-tso" can never alias
// in the LRU, the vstore, or a cluster peer), and rocker -models /
// sweep -models iterate the matrix through Run.

// Mode strings. The graph modes run the §5 SCM-instrumented decision
// procedure (execution-graph robustness); the state modes decide
// Definition 2.6 state robustness by product exploration.
const (
	ModeRA       = "ra"        // execution-graph robustness against RA (the paper's main question)
	ModeSRA      = "sra"       // …against the POPL'16 SRA strengthening
	ModeSC       = "sc"        // plain SC exploration: assertion checking only
	ModeTSO      = "tso"       // state robustness against TSO, attack-based instrumentation (CheckTSO)
	ModeStateRA  = "state-ra"  // state robustness via the §3 timestamp machine
	ModeStateSRA = "state-sra" // …with SRA write slots
	ModeStateTSO = "state-tso" // state robustness via the exhaustive TSO store-buffer product
)

// Info describes one registered mode.
type Info struct {
	Mode string
	// Graph marks the execution-graph modes (core.Verify/VerifySC over
	// the instrumented SC memory); the rest explore a weak-memory
	// product.
	Graph bool
	// Checker names the engine backing the verdict; Monitor names the
	// robustness monitor layered on it.
	Checker, Monitor string
	Desc             string
}

// infos is the registry, in canonical order.
var infos = []Info{
	{ModeRA, true, "core.Verify", "scm (§5 instrumentation)",
		"execution-graph robustness against release/acquire"},
	{ModeSRA, true, "core.Verify", "scm (§5 instrumentation)",
		"execution-graph robustness against strong release/acquire"},
	{ModeSC, true, "core.VerifySC", "assertions only",
		"plain SC exploration, assertion checking"},
	{ModeTSO, false, "model.CheckTSO (single-delayer attacks)", "SC-set projection (Def 2.6)",
		"state robustness against x86-TSO, polynomial instrumentation"},
	{ModeStateRA, false, "staterobust.CheckRA", "SC-set projection (Def 2.6)",
		"state robustness against the RA timestamp machine"},
	{ModeStateSRA, false, "staterobust.CheckSRA", "SC-set projection (Def 2.6)",
		"state robustness against the SRA timestamp machine"},
	{ModeStateTSO, false, "staterobust.CheckTSO (exhaustive product)", "SC-set projection (Def 2.6)",
		"state robustness against x86-TSO, exhaustive store-buffer product"},
}

// Infos returns the registry in canonical order (a copy).
func Infos() []Info { return append([]Info(nil), infos...) }

// Modes returns the registered mode strings in canonical order.
func Modes() []string {
	out := make([]string, len(infos))
	for i, in := range infos {
		out[i] = in.Mode
	}
	return out
}

// Valid reports whether mode names a registered verification mode.
func Valid(mode string) bool {
	_, ok := Lookup(mode)
	return ok
}

// Lookup returns the registry entry for mode.
func Lookup(mode string) (Info, bool) {
	for _, in := range infos {
		if in.Mode == mode {
			return in, true
		}
	}
	return Info{}, false
}

// ModeList returns the registered modes as a comma-separated string, for
// error messages and usage lines.
func ModeList() string { return strings.Join(Modes(), ", ") }

// Check dispatches the state modes (tso, state-ra, state-sra,
// state-tso) to their checkers under one staterobust.Limits.
func Check(mode string, program *lang.Program, lim staterobust.Limits) (*staterobust.Result, error) {
	switch mode {
	case ModeTSO:
		return CheckTSO(program, lim)
	case ModeStateRA:
		return staterobust.CheckRA(program, lim)
	case ModeStateSRA:
		return staterobust.CheckSRA(program, lim)
	case ModeStateTSO:
		return staterobust.CheckTSO(program, lim)
	}
	return nil, fmt.Errorf("model: %q is not a state mode (want one of tso, state-ra, state-sra, state-tso)", mode)
}

// RunOpts are the knobs shared by every mode for a matrix run.
type RunOpts struct {
	MaxStates   int
	Workers     int
	TSOBufCap   int
	StaticPrune bool // graph modes only
	Reduce      bool
	Ctx         context.Context
}

// RunResult is one cell of the cross-model verdict matrix.
type RunResult struct {
	Mode   string
	Robust bool
	// States counts explored states: ⟨program, SCM⟩ states for the graph
	// modes, compound weak-machine states for the state modes, plain SC
	// states for mode sc.
	States int
	// SCStates/WeakStates are the program-state projection counts of the
	// state modes (0 otherwise).
	SCStates, WeakStates int
	AssertFail           string
	TraceLen             int
	Elapsed              time.Duration
}

// Run answers one mode's question about one program — the uniform entry
// point behind rocker -models and sweep -models.
func Run(mode string, program *lang.Program, o RunOpts) (*RunResult, error) {
	start := time.Now()
	info, ok := Lookup(mode)
	if !ok {
		return nil, fmt.Errorf("unknown mode %q (supported: %s)", mode, ModeList())
	}
	if info.Graph {
		opts := core.Options{
			Model:        core.ModelRA,
			AbstractVals: true,
			MaxStates:    o.MaxStates,
			Workers:      o.Workers,
			StaticPrune:  o.StaticPrune,
			Reduce:       o.Reduce,
			Ctx:          o.Ctx,
		}
		if mode == ModeSRA {
			opts.Model = core.ModelSRA
		}
		if mode == ModeSC {
			sv, err := core.VerifySC(program, opts)
			if err != nil {
				return nil, err
			}
			rr := &RunResult{Mode: mode, Robust: sv.AssertFail == nil, States: sv.States, Elapsed: time.Since(start)}
			if sv.AssertFail != nil {
				rr.AssertFail = sv.AssertFail.Error()
			}
			return rr, nil
		}
		v, err := core.Verify(program, opts)
		if err != nil {
			return nil, err
		}
		rr := &RunResult{Mode: mode, Robust: v.Robust, States: v.States, TraceLen: len(v.Trace), Elapsed: time.Since(start)}
		if v.AssertFail != nil {
			rr.AssertFail = v.AssertFail.Error()
		}
		return rr, nil
	}
	r, err := Check(mode, program, staterobust.Limits{
		MaxStates: o.MaxStates,
		TSOBufCap: o.TSOBufCap,
		Workers:   o.Workers,
		Reduce:    o.Reduce,
		Ctx:       o.Ctx,
	})
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Mode:       mode,
		Robust:     r.Robust,
		States:     r.Explored,
		SCStates:   r.SCStates,
		WeakStates: r.WeakStates,
		TraceLen:   len(r.WitnessTrace),
		Elapsed:    time.Since(start),
	}, nil
}
