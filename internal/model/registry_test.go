package model

import (
	"strings"
	"testing"

	"repro/internal/litmus"
	"repro/internal/staterobust"
)

// TestRegistryModes pins the registry surface: canonical order (user-facing
// in rocker/sweep output and rockerd error messages), validity, and the
// mode list string.
func TestRegistryModes(t *testing.T) {
	want := []string{"ra", "sra", "sc", "tso", "state-ra", "state-sra", "state-tso"}
	got := Modes()
	if len(got) != len(want) {
		t.Fatalf("Modes() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Modes() = %v, want %v", got, want)
		}
	}
	for _, m := range want {
		if !Valid(m) {
			t.Errorf("Valid(%q) = false", m)
		}
		if in, ok := Lookup(m); !ok || in.Mode != m {
			t.Errorf("Lookup(%q) = %+v, %v", m, in, ok)
		}
	}
	for _, m := range []string{"", "tso ", "TSO", "x86", "power"} {
		if Valid(m) {
			t.Errorf("Valid(%q) = true", m)
		}
	}
	list := ModeList()
	if list != strings.Join(want, ", ") {
		t.Errorf("ModeList() = %q", list)
	}
}

// TestRunMatrix exercises Run across every registered mode on one small
// robust program — the cross-model verdict matrix of a single row.
func TestRunMatrix(t *testing.T) {
	e, err := litmus.Get("barrier")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range Modes() {
		rr, err := Run(mode, e.Program(), RunOpts{MaxStates: 2_000_000, TSOBufCap: 4})
		if err != nil {
			t.Fatalf("Run(%s): %v", mode, err)
		}
		if rr.Mode != mode {
			t.Errorf("Run(%s): result mode %q", mode, rr.Mode)
		}
		if !rr.Robust {
			t.Errorf("Run(%s): barrier reported non-robust", mode)
		}
		if rr.States <= 0 {
			t.Errorf("Run(%s): States = %d", mode, rr.States)
		}
		info, _ := Lookup(mode)
		if info.Graph && rr.WeakStates != 0 {
			t.Errorf("Run(%s): graph mode reported WeakStates = %d", mode, rr.WeakStates)
		}
		if !info.Graph && rr.SCStates <= 0 {
			t.Errorf("Run(%s): state mode reported SCStates = %d", mode, rr.SCStates)
		}
	}
	if _, err := Run("x86", e.Program(), RunOpts{}); err == nil {
		t.Error("Run(x86): want error")
	} else if !strings.Contains(err.Error(), "state-tso") {
		t.Errorf("Run(x86) error should enumerate modes, got %v", err)
	}
}

// TestCheckRejectsGraphModes: Check is the state-mode dispatcher; graph
// modes must be routed through Run.
func TestCheckRejectsGraphModes(t *testing.T) {
	e, err := litmus.Get("barrier")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{ModeRA, ModeSRA, ModeSC, "bogus"} {
		if _, err := Check(mode, e.Program(), staterobust.Limits{}); err == nil {
			t.Errorf("Check(%s): want error", mode)
		}
	}
}
