// Package lang defines the toy concurrent programming language of
// Lahav & Margalit, "Robustness against Release/Acquire Semantics"
// (PLDI 2019), Figure 1.
//
// A program operates over a bounded data domain Val = {0, ..., ValCount-1}
// (arithmetic wraps around, as in Example 2.2 of the paper), a finite set of
// shared locations, and per-thread register files. Shared locations are
// either release/acquire ("atomic") locations or, per the extension of §6,
// non-atomic locations. Fixed-size arrays are supported as contiguous blocks
// of locations with a dynamically evaluated index; this is required to
// express the work-stealing-deque benchmarks of the paper's evaluation
// (Figure 7) and does not change the semantics — an array access is an
// ordinary access to the resolved cell location.
package lang

import (
	"fmt"
	"strings"
)

// Val is a value of the bounded data domain. All arithmetic on values is
// performed modulo the program's ValCount.
type Val uint8

// Loc identifies a shared memory location (an index into Program.Locs).
// Array cells occupy consecutive Loc indices.
type Loc uint8

// Reg identifies a thread-local register (an index into the thread's
// register file).
type Reg uint8

// Tid identifies a thread (an index into Program.Threads).
type Tid uint8

// LabType is the type of a memory-access label: read, write, or
// read-modify-write (Definition 2.1 of the paper).
type LabType uint8

// Label types.
const (
	// LRead is a read label R(x, vR).
	LRead LabType = iota
	// LWrite is a write label W(x, vW).
	LWrite
	// LRMW is a read-modify-write label RMW(x, vR, vW).
	LRMW
)

// String returns "R", "W" or "RMW".
func (t LabType) String() string {
	switch t {
	case LRead:
		return "R"
	case LWrite:
		return "W"
	case LRMW:
		return "RMW"
	}
	return fmt.Sprintf("LabType(%d)", uint8(t))
}

// Label is a memory-access label l ∈ Lab (Definition 2.1): one of R(x, vR),
// W(x, vW), or RMW(x, vR, vW). For reads VW is unused; for writes VR is
// unused.
type Label struct {
	Typ LabType
	Loc Loc
	VR  Val // value read (R and RMW labels)
	VW  Val // value written (W and RMW labels)
}

// ReadLab constructs a read label R(x, v).
func ReadLab(x Loc, v Val) Label { return Label{Typ: LRead, Loc: x, VR: v} }

// WriteLab constructs a write label W(x, v).
func WriteLab(x Loc, v Val) Label { return Label{Typ: LWrite, Loc: x, VW: v} }

// RMWLab constructs a read-modify-write label RMW(x, vR, vW).
func RMWLab(x Loc, vR, vW Val) Label { return Label{Typ: LRMW, Loc: x, VR: vR, VW: vW} }

// IsRead reports whether the label reads memory (R or RMW).
func (l Label) IsRead() bool { return l.Typ == LRead || l.Typ == LRMW }

// IsWrite reports whether the label writes memory (W or RMW).
func (l Label) IsWrite() bool { return l.Typ == LWrite || l.Typ == LRMW }

// String renders the label in the paper's notation, with the location shown
// by index (use Program.FmtLabel for named output).
func (l Label) String() string {
	switch l.Typ {
	case LRead:
		return fmt.Sprintf("R(x%d,%d)", l.Loc, l.VR)
	case LWrite:
		return fmt.Sprintf("W(x%d,%d)", l.Loc, l.VW)
	default:
		return fmt.Sprintf("RMW(x%d,%d,%d)", l.Loc, l.VR, l.VW)
	}
}

// BinOp is a binary operator in expressions.
type BinOp uint8

// Binary operators. Arithmetic wraps modulo ValCount; comparisons and
// logical operators yield 0 or 1.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = [...]string{"+", "-", "*", "%", "=", "!=", "<", "<=", ">", ">=", "&&", "||"}

// String returns the operator's source form.
func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return fmt.Sprintf("BinOp(%d)", uint8(op))
}

// ExprKind discriminates expression nodes.
type ExprKind uint8

// Expression node kinds.
const (
	EConst ExprKind = iota // a value literal
	EReg                   // a register
	EBin                   // a binary operation
	ENot                   // logical negation
)

// Expr is an expression over registers and values (Figure 1). Expressions
// never access shared memory.
type Expr struct {
	Kind  ExprKind
	Const Val   // EConst
	Reg   Reg   // EReg
	Op    BinOp // EBin
	L, R  *Expr // EBin; ENot uses L only
}

// Const returns a constant expression.
func Const(v Val) *Expr { return &Expr{Kind: EConst, Const: v} }

// RegE returns a register expression.
func RegE(r Reg) *Expr { return &Expr{Kind: EReg, Reg: r} }

// Bin returns a binary operation expression.
func Bin(op BinOp, l, r *Expr) *Expr { return &Expr{Kind: EBin, Op: op, L: l, R: r} }

// Not returns a logical negation expression.
func Not(e *Expr) *Expr { return &Expr{Kind: ENot, L: e} }

// Eval evaluates the expression under register store phi, with arithmetic
// modulo valCount. Comparison and logical operators return 1 for true and 0
// for false, matching the conventions of Example 2.2.
func (e *Expr) Eval(phi []Val, valCount int) Val {
	switch e.Kind {
	case EConst:
		return Val(int(e.Const) % valCount)
	case EReg:
		return phi[e.Reg]
	case ENot:
		if e.L.Eval(phi, valCount) == 0 {
			return 1
		}
		return 0
	}
	a, b := e.L.Eval(phi, valCount), e.R.Eval(phi, valCount)
	switch e.Op {
	case OpAdd:
		return Val((int(a) + int(b)) % valCount)
	case OpSub:
		return Val(((int(a)-int(b))%valCount + valCount) % valCount)
	case OpMul:
		return Val((int(a) * int(b)) % valCount)
	case OpMod:
		if b == 0 {
			return 0
		}
		return Val(int(a) % int(b))
	case OpEq:
		return b2v(a == b)
	case OpNe:
		return b2v(a != b)
	case OpLt:
		return b2v(a < b)
	case OpLe:
		return b2v(a <= b)
	case OpGt:
		return b2v(a > b)
	case OpGe:
		return b2v(a >= b)
	case OpAnd:
		return b2v(a != 0 && b != 0)
	case OpOr:
		return b2v(a != 0 || b != 0)
	}
	panic("lang: unknown operator")
}

func b2v(b bool) Val {
	if b {
		return 1
	}
	return 0
}

// IsConst reports whether the expression is a literal, and its value if so.
// Used by the critical-value analysis (§5.1) — constant comparands of wait,
// CAS and BCAS induce critical values.
func (e *Expr) IsConst() (Val, bool) {
	if e.Kind == EConst {
		return e.Const, true
	}
	return 0, false
}

// String renders the expression in source form (registers as r<i>).
func (e *Expr) String() string {
	switch e.Kind {
	case EConst:
		return fmt.Sprintf("%d", e.Const)
	case EReg:
		return fmt.Sprintf("r%d", e.Reg)
	case ENot:
		return "!(" + e.L.String() + ")"
	}
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

// MemRef designates a shared-memory operand: either a scalar location
// (Index == nil) or an array cell base[Index % Size].
type MemRef struct {
	Base  Loc
	Size  int   // 1 for scalars, the declared size for arrays
	Index *Expr // nil for scalars
}

// Resolve computes the concrete location the reference denotes under
// register store phi. Array indices wrap modulo the array size, keeping all
// accesses in bounds (the corpus programs index modulo the buffer size
// anyway, mirroring the ring buffers of the deque benchmarks).
func (m MemRef) Resolve(phi []Val, valCount int) Loc {
	if m.Index == nil {
		return m.Base
	}
	i := int(m.Index.Eval(phi, valCount)) % m.Size
	return m.Base + Loc(i)
}

// String renders the reference with the base location index.
func (m MemRef) String() string {
	if m.Index == nil {
		return fmt.Sprintf("x%d", m.Base)
	}
	return fmt.Sprintf("x%d[%s]", m.Base, m.Index)
}

// InstKind discriminates instructions (Figure 1, plus assert and the §6
// non-atomic accesses, which reuse IWrite/IRead on non-atomic locations).
type InstKind uint8

// Instruction kinds.
const (
	IAssign InstKind = iota // r := e
	IGoto                   // if e goto n
	IWrite                  // x := e
	IRead                   // r := x
	IFADD                   // r := FADD(x, e)
	ICAS                    // r := CAS(x, eR, eW)
	IWait                   // wait(x = e)
	IBCAS                   // BCAS(x, eR, eW)
	IAssert                 // assert e (checked under SC; see §7: Rocker
	// verifies standard assertions alongside robustness)
	IXCHG // r := XCHG(x, e): atomic exchange. The paper's repair recipe
	// strengthens selected writes into RMW operations (§1, §7's
	// peterson-ra-dmitriy); XCHG is that strengthened write: it stores
	// e and loads the old value, enabling RMW(x, v, e) for every v.
)

// Inst is a single instruction. Fields are used according to Kind:
//
//	IAssign: Reg := E
//	IGoto:   if E != 0, jump to Target
//	IWrite:  Mem := E
//	IRead:   Reg := Mem
//	IFADD:   Reg := FADD(Mem, E)
//	ICAS:    Reg := CAS(Mem, ER, EW)
//	IWait:   wait(Mem = E)
//	IBCAS:   BCAS(Mem, ER, EW)
//	IAssert: assert E != 0
type Inst struct {
	Kind   InstKind
	Reg    Reg
	Mem    MemRef
	E      *Expr
	ER, EW *Expr
	Target int
	// Line and Col are the source position of the instruction, for
	// diagnostics. Col is 0 for programs built programmatically.
	Line int
	Col  int
}

// IsMem reports whether the instruction performs a shared-memory access
// (i.e. is not an ε-instruction in the LTS of Figure 2).
func (in *Inst) IsMem() bool {
	switch in.Kind {
	case IAssign, IGoto, IAssert:
		return false
	}
	return true
}

// String renders the instruction in source-like form.
func (in *Inst) String() string {
	switch in.Kind {
	case IAssign:
		return fmt.Sprintf("r%d := %s", in.Reg, in.E)
	case IGoto:
		return fmt.Sprintf("if %s goto %d", in.E, in.Target)
	case IWrite:
		return fmt.Sprintf("%s := %s", in.Mem, in.E)
	case IRead:
		return fmt.Sprintf("r%d := %s", in.Reg, in.Mem)
	case IFADD:
		return fmt.Sprintf("r%d := FADD(%s, %s)", in.Reg, in.Mem, in.E)
	case IXCHG:
		return fmt.Sprintf("r%d := XCHG(%s, %s)", in.Reg, in.Mem, in.E)
	case ICAS:
		return fmt.Sprintf("r%d := CAS(%s, %s, %s)", in.Reg, in.Mem, in.ER, in.EW)
	case IWait:
		return fmt.Sprintf("wait(%s = %s)", in.Mem, in.E)
	case IBCAS:
		return fmt.Sprintf("BCAS(%s, %s, %s)", in.Mem, in.ER, in.EW)
	case IAssert:
		return fmt.Sprintf("assert %s", in.E)
	}
	return "?"
}

// LocInfo describes one shared location.
type LocInfo struct {
	Name string
	// NA marks the location non-atomic (§6). Non-atomic locations admit
	// only plain reads and writes, and racy concurrent access to them is
	// undefined behaviour that the checker must rule out.
	NA bool
}

// SeqProg is a sequential program S ∈ SProg: a finite sequence of
// instructions, with the program counter starting at 0 (§2.1). Jump targets
// are instruction indices.
type SeqProg struct {
	Name     string
	Insts    []Inst
	NumRegs  int
	RegNames []string // for diagnostics; len == NumRegs
}

// Program is a concurrent program P: a top-level parallel composition of
// sequential programs (§2.1), together with its data domain and location
// declarations.
type Program struct {
	Name     string
	ValCount int // |Val|; values are {0, ..., ValCount-1}, initial value 0
	Locs     []LocInfo
	Threads  []SeqProg
}

// NumLocs returns |Loc|.
func (p *Program) NumLocs() int { return len(p.Locs) }

// NumThreads returns |Tid|.
func (p *Program) NumThreads() int { return len(p.Threads) }

// LocName returns the declared name of location x.
func (p *Program) LocName(x Loc) string { return p.Locs[x].Name }

// LocByName returns the location with the given name, if any.
func (p *Program) LocByName(name string) (Loc, bool) {
	for i, li := range p.Locs {
		if li.Name == name {
			return Loc(i), true
		}
	}
	return 0, false
}

// FmtLabel renders a label with the program's location names.
func (p *Program) FmtLabel(l Label) string {
	name := p.LocName(l.Loc)
	switch l.Typ {
	case LRead:
		return fmt.Sprintf("R(%s,%d)", name, l.VR)
	case LWrite:
		return fmt.Sprintf("W(%s,%d)", name, l.VW)
	default:
		return fmt.Sprintf("RMW(%s,%d,%d)", name, l.VR, l.VW)
	}
}

// FmtInst renders an instruction of thread t with the program's location
// names and the thread's register names.
func (p *Program) FmtInst(t *SeqProg, in *Inst) string {
	reg := func(r Reg) string {
		if int(r) < len(t.RegNames) {
			return t.RegNames[r]
		}
		return fmt.Sprintf("r%d", r)
	}
	var expr func(e *Expr) string
	expr = func(e *Expr) string {
		switch e.Kind {
		case EConst:
			return fmt.Sprintf("%d", e.Const)
		case EReg:
			return reg(e.Reg)
		case ENot:
			return "!(" + expr(e.L) + ")"
		}
		return "(" + expr(e.L) + " " + e.Op.String() + " " + expr(e.R) + ")"
	}
	mem := func(m MemRef) string {
		if m.Index == nil {
			return p.LocName(m.Base)
		}
		base := p.LocName(m.Base)
		// Strip the cell suffix of the first element to recover the
		// array name.
		if i := strings.IndexByte(base, '['); i >= 0 {
			base = base[:i]
		}
		return base + "[" + expr(m.Index) + "]"
	}
	switch in.Kind {
	case IAssign:
		return fmt.Sprintf("%s := %s", reg(in.Reg), expr(in.E))
	case IGoto:
		return fmt.Sprintf("if %s goto %d", expr(in.E), in.Target)
	case IWrite:
		return fmt.Sprintf("%s := %s", mem(in.Mem), expr(in.E))
	case IRead:
		return fmt.Sprintf("%s := %s", reg(in.Reg), mem(in.Mem))
	case IFADD:
		return fmt.Sprintf("%s := FADD(%s, %s)", reg(in.Reg), mem(in.Mem), expr(in.E))
	case IXCHG:
		return fmt.Sprintf("%s := XCHG(%s, %s)", reg(in.Reg), mem(in.Mem), expr(in.E))
	case ICAS:
		return fmt.Sprintf("%s := CAS(%s, %s, %s)", reg(in.Reg), mem(in.Mem), expr(in.ER), expr(in.EW))
	case IWait:
		return fmt.Sprintf("wait(%s = %s)", mem(in.Mem), expr(in.E))
	case IBCAS:
		return fmt.Sprintf("BCAS(%s, %s, %s)", mem(in.Mem), expr(in.ER), expr(in.EW))
	case IAssert:
		return fmt.Sprintf("assert %s", expr(in.E))
	}
	return "?"
}

// Validate checks internal consistency of the program: value bounds,
// location bounds, register bounds, jump targets, and the §6 restriction
// that non-atomic locations are accessed only by plain reads and writes.
func (p *Program) Validate() error {
	if p.ValCount < 2 || p.ValCount > 64 {
		return fmt.Errorf("lang: ValCount must be in [2,64], got %d", p.ValCount)
	}
	if len(p.Locs) == 0 || len(p.Locs) > 64 {
		return fmt.Errorf("lang: number of locations must be in [1,64], got %d", len(p.Locs))
	}
	if len(p.Threads) == 0 {
		return fmt.Errorf("lang: program has no threads")
	}
	for ti := range p.Threads {
		t := &p.Threads[ti]
		for pc := range t.Insts {
			in := &t.Insts[pc]
			if err := p.validateInst(t, in); err != nil {
				return fmt.Errorf("thread %s, inst %d (%s): %w", t.Name, pc, in, err)
			}
		}
	}
	return nil
}

func (p *Program) validateInst(t *SeqProg, in *Inst) error {
	checkExpr := func(e *Expr) error {
		if e == nil {
			return fmt.Errorf("missing expression")
		}
		var walk func(e *Expr) error
		walk = func(e *Expr) error {
			switch e.Kind {
			case EConst:
				if int(e.Const) >= p.ValCount {
					return fmt.Errorf("constant %d out of domain [0,%d)", e.Const, p.ValCount)
				}
			case EReg:
				if int(e.Reg) >= t.NumRegs {
					return fmt.Errorf("register r%d out of range", e.Reg)
				}
			case ENot:
				return walk(e.L)
			case EBin:
				if err := walk(e.L); err != nil {
					return err
				}
				return walk(e.R)
			}
			return nil
		}
		return walk(e)
	}
	checkMem := func(m MemRef, rmw bool) error {
		if int(m.Base)+m.Size > len(p.Locs) || m.Size < 1 {
			return fmt.Errorf("memory reference out of range")
		}
		if m.Index != nil {
			if err := checkExpr(m.Index); err != nil {
				return err
			}
		}
		for i := 0; i < m.Size; i++ {
			if p.Locs[m.Base+Loc(i)].NA && rmw {
				return fmt.Errorf("RMW/wait on non-atomic location %s", p.Locs[m.Base+Loc(i)].Name)
			}
		}
		return nil
	}
	checkReg := func(r Reg) error {
		if int(r) >= t.NumRegs {
			return fmt.Errorf("register r%d out of range", r)
		}
		return nil
	}
	switch in.Kind {
	case IAssign:
		if err := checkReg(in.Reg); err != nil {
			return err
		}
		return checkExpr(in.E)
	case IGoto:
		if in.Target < 0 || in.Target > len(t.Insts) {
			return fmt.Errorf("jump target %d out of range", in.Target)
		}
		return checkExpr(in.E)
	case IAssert:
		return checkExpr(in.E)
	case IWrite:
		if err := checkMem(in.Mem, false); err != nil {
			return err
		}
		return checkExpr(in.E)
	case IRead:
		if err := checkReg(in.Reg); err != nil {
			return err
		}
		return checkMem(in.Mem, false)
	case IFADD, IXCHG:
		if err := checkReg(in.Reg); err != nil {
			return err
		}
		if err := checkMem(in.Mem, true); err != nil {
			return err
		}
		return checkExpr(in.E)
	case ICAS:
		if err := checkReg(in.Reg); err != nil {
			return err
		}
		if err := checkMem(in.Mem, true); err != nil {
			return err
		}
		if err := checkExpr(in.ER); err != nil {
			return err
		}
		return checkExpr(in.EW)
	case IWait:
		if err := checkMem(in.Mem, true); err != nil {
			return err
		}
		return checkExpr(in.E)
	case IBCAS:
		if err := checkMem(in.Mem, true); err != nil {
			return err
		}
		if err := checkExpr(in.ER); err != nil {
			return err
		}
		return checkExpr(in.EW)
	}
	return fmt.Errorf("unknown instruction kind %d", in.Kind)
}

// LoC returns the total number of instructions across all threads — the
// "LoC" column of the paper's Figure 7.
func (p *Program) LoC() int {
	n := 0
	for i := range p.Threads {
		n += len(p.Threads[i].Insts)
	}
	return n
}

// String renders the whole program as a listing.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s (vals %d)\n", p.Name, p.ValCount)
	for i := range p.Threads {
		t := &p.Threads[i]
		fmt.Fprintf(&b, "thread %s:\n", t.Name)
		for pc := range t.Insts {
			fmt.Fprintf(&b, "  %2d: %s\n", pc, &t.Insts[pc])
		}
	}
	return b.String()
}
