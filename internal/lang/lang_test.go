package lang_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lang"
)

func TestExprEval(t *testing.T) {
	phi := []lang.Val{2, 3}
	for _, tc := range []struct {
		e    *lang.Expr
		vc   int
		want lang.Val
	}{
		{lang.Const(3), 4, 3},
		{lang.RegE(0), 4, 2},
		{lang.Bin(lang.OpAdd, lang.RegE(0), lang.RegE(1)), 4, 1}, // 5 mod 4
		{lang.Bin(lang.OpAdd, lang.Const(2), lang.Const(3)), 8, 5},
		{lang.Bin(lang.OpSub, lang.Const(1), lang.Const(3)), 4, 2}, // wraps
		{lang.Bin(lang.OpMul, lang.RegE(0), lang.RegE(1)), 4, 2},   // 6 mod 4
		{lang.Bin(lang.OpMod, lang.RegE(1), lang.RegE(0)), 4, 1},
		{lang.Bin(lang.OpMod, lang.RegE(0), lang.Const(0)), 4, 0}, // mod 0 = 0
		{lang.Bin(lang.OpEq, lang.RegE(0), lang.Const(2)), 4, 1},
		{lang.Bin(lang.OpNe, lang.RegE(0), lang.Const(2)), 4, 0},
		{lang.Bin(lang.OpLt, lang.RegE(0), lang.RegE(1)), 4, 1},
		{lang.Bin(lang.OpLe, lang.RegE(1), lang.RegE(1)), 4, 1},
		{lang.Bin(lang.OpGt, lang.RegE(0), lang.RegE(1)), 4, 0},
		{lang.Bin(lang.OpGe, lang.RegE(1), lang.RegE(0)), 4, 1},
		{lang.Bin(lang.OpAnd, lang.Const(1), lang.Const(2)), 4, 1},
		{lang.Bin(lang.OpAnd, lang.Const(1), lang.Const(0)), 4, 0},
		{lang.Bin(lang.OpOr, lang.Const(0), lang.Const(0)), 4, 0},
		{lang.Bin(lang.OpOr, lang.Const(0), lang.Const(2)), 4, 1},
		{lang.Not(lang.Const(0)), 4, 1},
		{lang.Not(lang.Const(3)), 4, 0},
	} {
		if got := tc.e.Eval(phi, tc.vc); got != tc.want {
			t.Errorf("%s (mod %d) = %d, want %d", tc.e, tc.vc, got, tc.want)
		}
	}
}

// TestArithmeticStaysInDomain property-checks that evaluation never
// escapes the bounded value domain, for arbitrary register stores.
func TestArithmeticStaysInDomain(t *testing.T) {
	f := func(a, b uint8, op uint8) bool {
		vc := 4
		e := lang.Bin(lang.BinOp(op%12), lang.RegE(0), lang.RegE(1))
		phi := []lang.Val{lang.Val(a % 4), lang.Val(b % 4)}
		return int(e.Eval(phi, vc)) < vc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLabelHelpers(t *testing.T) {
	r := lang.ReadLab(1, 2)
	w := lang.WriteLab(1, 3)
	u := lang.RMWLab(1, 2, 3)
	if !r.IsRead() || r.IsWrite() {
		t.Errorf("read label classified wrong")
	}
	if w.IsRead() || !w.IsWrite() {
		t.Errorf("write label classified wrong")
	}
	if !u.IsRead() || !u.IsWrite() {
		t.Errorf("RMW label classified wrong")
	}
}

func TestMemRefResolve(t *testing.T) {
	m := lang.MemRef{Base: 2, Size: 3, Index: lang.RegE(0)}
	for i, want := range []lang.Loc{2, 3, 4, 2, 3} {
		if got := m.Resolve([]lang.Val{lang.Val(i)}, 8); got != want {
			t.Errorf("resolve with index %d = %d, want %d", i, got, want)
		}
	}
	s := lang.MemRef{Base: 1, Size: 1}
	if got := s.Resolve(nil, 8); got != 1 {
		t.Errorf("scalar resolve = %d", got)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *lang.Program {
		return &lang.Program{
			Name:     "p",
			ValCount: 4,
			Locs:     []lang.LocInfo{{Name: "x"}, {Name: "d", NA: true}},
			Threads: []lang.SeqProg{{
				Name: "t", NumRegs: 1, RegNames: []string{"r"},
				Insts: []lang.Inst{{Kind: lang.IWrite, Mem: lang.MemRef{Base: 0, Size: 1}, E: lang.Const(1)}},
			}},
		}
	}
	good := base()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	for name, mut := range map[string]func(*lang.Program){
		"huge value": func(p *lang.Program) { p.Threads[0].Insts[0].E = lang.Const(9) },
		"bad register": func(p *lang.Program) {
			p.Threads[0].Insts[0] = lang.Inst{Kind: lang.IRead, Reg: 5, Mem: lang.MemRef{Base: 0, Size: 1}}
		},
		"bad location": func(p *lang.Program) { p.Threads[0].Insts[0].Mem.Base = 7 },
		"RMW on NA": func(p *lang.Program) {
			p.Threads[0].Insts[0] = lang.Inst{Kind: lang.IFADD, Reg: 0, Mem: lang.MemRef{Base: 1, Size: 1}, E: lang.Const(0)}
		},
		"wait on NA": func(p *lang.Program) {
			p.Threads[0].Insts[0] = lang.Inst{Kind: lang.IWait, Mem: lang.MemRef{Base: 1, Size: 1}, E: lang.Const(0)}
		},
		"bad jump target": func(p *lang.Program) {
			p.Threads[0].Insts[0] = lang.Inst{Kind: lang.IGoto, E: lang.Const(1), Target: 9}
		},
		"no threads":   func(p *lang.Program) { p.Threads = nil },
		"tiny domain":  func(p *lang.Program) { p.ValCount = 1 },
		"missing expr": func(p *lang.Program) { p.Threads[0].Insts[0].E = nil },
	} {
		p := base()
		mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestProgramStringAndLoC(t *testing.T) {
	p := &lang.Program{
		Name:     "demo",
		ValCount: 4,
		Locs:     []lang.LocInfo{{Name: "x"}},
		Threads: []lang.SeqProg{{
			Name: "t", NumRegs: 1, RegNames: []string{"r"},
			Insts: []lang.Inst{
				{Kind: lang.IRead, Reg: 0, Mem: lang.MemRef{Base: 0, Size: 1}},
				{Kind: lang.IGoto, E: lang.RegE(0), Target: 0},
			},
		}},
	}
	if p.LoC() != 2 {
		t.Errorf("LoC = %d, want 2", p.LoC())
	}
	if s := p.String(); !strings.Contains(s, "thread t:") || !strings.Contains(s, "goto 0") {
		t.Errorf("listing looks wrong:\n%s", s)
	}
	if got := p.FmtLabel(lang.RMWLab(0, 1, 2)); got != "RMW(x,1,2)" {
		t.Errorf("FmtLabel = %q", got)
	}
	if _, ok := p.LocByName("x"); !ok {
		t.Errorf("LocByName(x) not found")
	}
	if _, ok := p.LocByName("zz"); ok {
		t.Errorf("LocByName(zz) unexpectedly found")
	}
}
