package analysis

import (
	"strings"
	"testing"

	"repro/internal/litmus"
	"repro/internal/parser"
)

func vetSource(t *testing.T, src string) []VetFinding {
	t.Helper()
	p, err := parser.ParseLenient(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Vet(p)
}

func findingWith(fs []VetFinding, substr string) *VetFinding {
	for i := range fs {
		if strings.Contains(fs[i].Msg, substr) {
			return &fs[i]
		}
	}
	return nil
}

func TestVetUnreachable(t *testing.T) {
	fs := vetSource(t, `
vals 2
locs x
thread t1
  goto done
  x := 1
  x := 0
done:
  x := 1
end
`)
	f := findingWith(fs, "unreachable")
	if f == nil {
		t.Fatalf("no unreachable finding in %v", fs)
	}
	if f.Line != 6 {
		t.Errorf("unreachable reported at line %d, want 6 (first dead instruction)", f.Line)
	}
	if !strings.Contains(f.Msg, "2 instruction(s)") {
		t.Errorf("finding should cover the whole dead run: %s", f.Msg)
	}
}

// TestVetUnreachableByConstprop: reachability is judged on propagated
// constants, not just graph shape — a branch whose condition is provably
// nonzero makes the fall-through dead.
func TestVetUnreachableByConstprop(t *testing.T) {
	fs := vetSource(t, `
vals 4
locs x
thread t1
  r := 1
  if r = 1 goto done
  x := 1
done:
  x := 2
end
`)
	if findingWith(fs, "unreachable") == nil {
		t.Fatalf("constprop should prove the fall-through dead; findings: %v", fs)
	}
}

func TestVetReadBeforeWrite(t *testing.T) {
	fs := vetSource(t, `
vals 2
locs x
thread t1
  x := r
  r := 1
end
`)
	f := findingWith(fs, "read before any write")
	if f == nil {
		t.Fatalf("no read-before-write finding in %v", fs)
	}
	if !strings.Contains(f.Msg, "register r ") {
		t.Errorf("finding should name the register: %s", f.Msg)
	}

	// Writing on every path first is clean.
	if fs := vetSource(t, `
vals 2
locs x
thread t1
  r := 1
  x := r
end
`); len(fs) != 0 {
		t.Errorf("clean program flagged: %v", fs)
	}
}

func TestVetOversizeConstant(t *testing.T) {
	fs := vetSource(t, `
vals 4
locs x
thread t1
  x := 7
  a := x
end
`)
	f := findingWith(fs, "outside the value domain")
	if f == nil {
		t.Fatalf("no value-bound finding in %v", fs)
	}
	if !strings.Contains(f.Msg, "truncates to 3") {
		t.Errorf("finding should show the truncated value: %s", f.Msg)
	}
}

func TestVetReadNeverWritten(t *testing.T) {
	fs := vetSource(t, `
vals 2
locs x y
thread t1
  a := x
  y := 1
end
thread t2
  b := y
end
`)
	f := findingWith(fs, "never written")
	if f == nil {
		t.Fatalf("no read-never-written finding in %v", fs)
	}
	if !strings.Contains(f.Msg, "location x") {
		t.Errorf("finding should name the location: %s", f.Msg)
	}
	// y is written by t1, so only x is flagged.
	if strings.Contains(f.Msg, " y ") {
		t.Errorf("y is written, must not be flagged: %s", f.Msg)
	}
}

// TestVetCorpusClean keeps the embedded corpus lint-clean: every litmus
// entry must vet without findings. (The committed fuzzer regressions
// under testdata/regressions are exempt — they are minimized repros whose
// read-before-write shape is part of the bug they pin.)
//
// disjoint-fence is the one deliberate exception: its threads share only
// the fence location, so both fences are exactly what the redundant-fence
// check exists to flag — the entry doubles as that check's corpus pin.
func TestVetCorpusClean(t *testing.T) {
	for _, e := range litmus.All() {
		p, err := parser.ParseLenient(e.Source)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		fs := Vet(p)
		if e.Name == "disjoint-fence" {
			if len(fs) != 2 ||
				!strings.Contains(fs[0].Msg, "redundant fence") ||
				!strings.Contains(fs[1].Msg, "redundant fence") {
				t.Errorf("disjoint-fence: want exactly its two redundant fences flagged, got %v", fs)
			}
			continue
		}
		if len(fs) != 0 {
			t.Errorf("%s: vet findings: %v", e.Name, fs)
		}
	}
}

// A fence in a thread outside every dangerous block is flagged, with the
// fence's own position.
func TestVetRedundantFence(t *testing.T) {
	fs := vetSource(t, `
vals 2
locs x y
thread t1
  x := 1
  fence
  a := x
end
thread t2
  y := 1
  fence
  b := y
end
`)
	if len(fs) != 2 {
		t.Fatalf("want both fences flagged, got %v", fs)
	}
	if fs[0].Line != 6 || fs[1].Line != 11 {
		t.Errorf("findings should anchor to the fence lines 6 and 11: %v", fs)
	}
	for _, f := range fs {
		if !strings.Contains(f.Msg, "redundant fence") {
			t.Errorf("unexpected finding: %v", f)
		}
	}
}

// Store-buffering with fences: both threads sit in a dangerous block (two
// conflict edges, x and y), so the fences are load-bearing and clean.
func TestVetRedundantFenceDangerousBlockClean(t *testing.T) {
	fs := vetSource(t, `
vals 2
locs x y
thread t1
  x := 1
  fence
  a := y
end
thread t2
  y := 1
  fence
  b := x
end
`)
	if len(fs) != 0 {
		t.Errorf("SB fences are not redundant: %v", fs)
	}
}

// An RMW whose result register is read is not a fence shape; neither are
// cells touched by a BCAS (its blocking depends on the stored values).
func TestVetRedundantFenceLiveResultClean(t *testing.T) {
	fs := vetSource(t, `
vals 4
locs x f
thread t1
  x := 1
  a := FADD(f, 1)
  x := a
end
thread t2
  b := FADD(f, 0)
end
`)
	if f := findingWith(fs, "redundant fence"); f != nil {
		t.Errorf("f's results are live in t1, no access to f is a droppable fence: %v", f)
	}

	fs = vetSource(t, `
vals 4
locs f
thread t1
  a := FADD(f, 0)
end
thread t2
  BCAS(f, 0, 1)
  BCAS(f, 1, 0)
end
`)
	if f := findingWith(fs, "redundant fence"); f != nil {
		t.Errorf("BCAS on f disqualifies the cell: %v", f)
	}
}

// Programs lang.Validate rejects (here: an RMW on a non-atomic location,
// which only program-level validation catches) skip the redundant-fence
// check instead of crashing Analyze.
func TestVetRedundantFenceSkipsInvalid(t *testing.T) {
	fs := vetSource(t, `
vals 4
na locs f
locs x
thread t1
  x := 1
  a := FADD(f, 0)
  b := x
end
`)
	if f := findingWith(fs, "redundant fence"); f != nil {
		t.Errorf("invalid program must skip the fence check: %v", f)
	}
}
