package analysis

import (
	"math/bits"
	"testing"

	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/parser"
	"repro/internal/prog"
)

func analyzeNamed(t *testing.T, name string) (*lang.Program, *Result) {
	t.Helper()
	e, err := litmus.Get(name)
	if err != nil {
		t.Fatalf("corpus entry %s: %v", name, err)
	}
	p := parser.MustParse(e.Source)
	return p, Analyze(p)
}

type edge struct {
	t1, t2 int
	loc    string
	sync   bool
}

func edgeSet(p *lang.Program, r *Result) []edge {
	var out []edge
	for _, e := range r.Edges {
		out = append(out, edge{e.T1, e.T2, p.Locs[e.Loc].Name, e.Sync})
	}
	return out
}

func wantEdges(t *testing.T, p *lang.Program, r *Result, want []edge) {
	t.Helper()
	got := edgeSet(p, r)
	if len(got) != len(want) {
		t.Fatalf("edge set %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge set %v, want %v", got, want)
		}
	}
}

// TestConflictGraphLitmus pins the exact conflict-graph edge sets of the
// four classic litmus shapes.
func TestConflictGraphLitmus(t *testing.T) {
	t.Run("SB", func(t *testing.T) {
		p, r := analyzeNamed(t, "SB")
		// Both threads write one location and read the other: two
		// conflict edges between the same pair — a dangerous block.
		wantEdges(t, p, r, []edge{{0, 1, "x", false}, {0, 1, "y", false}})
		if !r.Dangerous[0] || !r.Dangerous[1] {
			t.Errorf("SB edges should both be dangerous: %v", r.Dangerous)
		}
		if r.Certificate {
			t.Error("SB must not get a certificate")
		}
	})
	t.Run("MP", func(t *testing.T) {
		p, r := analyzeNamed(t, "MP")
		// Same doubled-edge shape as SB; MP is robust but only
		// exploration can tell, so the pre-pass must keep going.
		wantEdges(t, p, r, []edge{{0, 1, "x", false}, {0, 1, "y", false}})
		if r.Certificate {
			t.Error("MP must not get a certificate (conflict cycle exists)")
		}
	})
	t.Run("LB", func(t *testing.T) {
		p, r := analyzeNamed(t, "LB")
		wantEdges(t, p, r, []edge{{0, 1, "x", false}, {0, 1, "y", false}})
		if r.Certificate {
			t.Error("LB must not get a certificate (doubled conflict edge)")
		}
	})
	t.Run("CoRR", func(t *testing.T) {
		p, r := analyzeNamed(t, "CoRR")
		// One writer, one reader, one location: a single conflict edge
		// cannot form a cycle, so CoRR is discharged statically.
		wantEdges(t, p, r, []edge{{0, 1, "x", false}})
		if r.Dangerous[0] {
			t.Error("a single conflict edge is never dangerous")
		}
		if !r.Certificate {
			t.Errorf("CoRR should be certified robust; declined: %s", r.Declined)
		}
		if r.Tracked != 0 {
			t.Errorf("CoRR should track nothing, got %b", r.Tracked)
		}
	})
}

// TestFenceSyncEdges checks the Ex. 3.6 treatment: the shared fence
// location yields a sync edge, which never certifies-away a genuine
// cycle (the fence-nonmonotone regression shape) but does not count as a
// conflict either (disjoint-fence is certified).
func TestFenceSyncEdges(t *testing.T) {
	p, r := analyzeNamed(t, "disjoint-fence")
	wantEdges(t, p, r, []edge{{0, 1, parser.FenceLoc, true}})
	if !r.Certificate {
		t.Errorf("disjoint-fence should be certified; declined: %s", r.Declined)
	}
	if r.RMWPure != uint64(1)<<uint(len(p.Locs)-1) {
		t.Errorf("fence location should be the only RMW-pure one, got %b", r.RMWPure)
	}

	// dekker-tso: fences glue the block together (sync edge in the same
	// biconnected block as the conflict edges) but only x/y conflict
	// edges are dangerous; the fence location itself is pruned.
	e, err := litmus.Get("dekker-tso")
	if err != nil {
		t.Fatal(err)
	}
	p2 := parser.MustParse(e.Source)
	r2 := Analyze(p2)
	fl, ok := p2.LocByName(parser.FenceLoc)
	if !ok {
		t.Fatal("dekker-tso has no fence location")
	}
	if r2.Tracked&(uint64(1)<<fl) != 0 {
		t.Error("fence location must not be tracked")
	}
	if r2.Pruned&(uint64(1)<<fl) == 0 {
		t.Error("fence location should be pruned")
	}
	if r2.Certificate {
		t.Error("dekker-tso has real conflict cycles")
	}
}

// TestConstpropSharpening checks that a register provably holding one
// constant shrinks the wait comparand's critical set to a single bit,
// and that constant array indices give cell-precise summaries.
func TestConstpropSharpening(t *testing.T) {
	p := parser.MustParse(`
program sharpen
vals 8
locs x y
thread t1
  r := 3
  wait(x = r)
  y := 1
end
thread t2
  x := 3
  a := y
end
`)
	r := Analyze(p)
	x, _ := p.LocByName("x")
	if r.Crit[x] != 1<<3 {
		t.Errorf("crit(x) = %b, want just bit 3", r.Crit[x])
	}
	if !r.CritSharpened {
		t.Error("expected CritSharpened")
	}
	orig := prog.CriticalVals(p)
	if orig[x] == r.Crit[x] {
		t.Error("baseline CriticalVals should be all-values for a register comparand")
	}

	// Constant index: only cell a[1] is critical / summarized.
	p2 := parser.MustParse(`
program cells
vals 4
array a 3
locs y
thread t1
  i := 1
  wait(a[i] = 2)
end
thread t2
  j := 1
  a[j] := 2
  y := 1
end
`)
	r2 := Analyze(p2)
	base, _ := p2.LocByName("a[0]")
	if got := r2.Summaries[0].MayRead; got != uint64(1)<<(int(base)+1) {
		t.Errorf("t1 may-read = %b, want only a[1]", got)
	}
	if got := r2.Summaries[1].MayWrite; got&(uint64(1)<<base) != 0 || got&(uint64(1)<<(int(base)+2)) != 0 {
		t.Errorf("t2 may-write = %b, should not include a[0] or a[2]", got)
	}
	if r2.Crit[int(base)+1] != 1<<2 {
		t.Errorf("crit(a[1]) = %b, want bit 2", r2.Crit[int(base)+1])
	}
	if r2.Crit[base] != 0 || r2.Crit[int(base)+2] != 0 {
		t.Errorf("crit(a[0])=%b crit(a[2])=%b, want 0", r2.Crit[base], r2.Crit[int(base)+2])
	}
}

// TestReachabilityRestriction: accesses in unreachable code contribute
// nothing to summaries or the conflict graph.
func TestReachabilityRestriction(t *testing.T) {
	p := parser.MustParse(`
program unreach
vals 2
locs x y
thread t1
  goto skip
  x := 1
skip:
  y := 1
end
thread t2
  a := x
  b := y
end
`)
	r := Analyze(p)
	x, _ := p.LocByName("x")
	if r.Summaries[0].MayWrite&(uint64(1)<<x) != 0 {
		t.Error("unreachable write to x must not appear in the summary")
	}
	wantEdges(t, p, r, []edge{{0, 1, "y", false}})
	if !r.Certificate {
		t.Errorf("one conflict edge should certify; declined: %s", r.Declined)
	}
}

// TestCertificateGates: assertions and cross-thread NA conflicts decline
// the fast path even when the conflict graph is harmless.
func TestCertificateGates(t *testing.T) {
	withAssert := parser.MustParse(`
program with-assert
vals 2
locs x
thread t1
  x := 1
end
thread t2
  a := x
  assert a = a
end
`)
	r := Analyze(withAssert)
	if r.Certificate {
		t.Error("assertions must decline the certificate")
	}

	withNA := parser.MustParse(`
program with-na
vals 2
na x
thread t1
  x := 1
end
thread t2
  a := x
end
`)
	r2 := Analyze(withNA)
	if r2.Certificate {
		t.Error("a cross-thread NA conflict must decline the certificate")
	}
}

// TestDangerousBlocksBridge: two conflict edges joined only by a bridge
// (through a middle thread) are in different blocks — no cycle, certified.
func TestDangerousBlocksBridge(t *testing.T) {
	p := parser.MustParse(`
program bridge
vals 2
locs x y
thread t1
  x := 1
end
thread t2
  a := x
  y := 1
end
thread t3
  b := y
end
`)
	r := Analyze(p)
	wantEdges(t, p, r, []edge{{0, 1, "x", false}, {1, 2, "y", false}})
	if r.Dangerous[0] || r.Dangerous[1] {
		t.Errorf("bridge edges are not dangerous: %v", r.Dangerous)
	}
	if !r.Certificate {
		t.Errorf("bridge program should be certified; declined: %s", r.Declined)
	}

	// Close the cycle t1-t2-t3-t1: now one block with three conflict
	// edges, everything tracked.
	p2 := parser.MustParse(`
program triangle
vals 2
locs x y z
thread t1
  x := 1
  c := z
end
thread t2
  a := x
  y := 1
end
thread t3
  b := y
  z := 1
end
`)
	r2 := Analyze(p2)
	if len(r2.Edges) != 3 {
		t.Fatalf("triangle should have 3 edges, got %v", edgeSet(p2, r2))
	}
	for i := range r2.Edges {
		if !r2.Dangerous[i] {
			t.Errorf("triangle edge %d should be dangerous", i)
		}
	}
	if bits.OnesCount64(r2.Tracked) != 3 {
		t.Errorf("triangle should track all three locations, got %b", r2.Tracked)
	}
}
