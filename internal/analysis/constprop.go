package analysis

import "repro/internal/lang"

// This file implements the register constant-propagation / value-set pass.
//
// For each thread the pass computes, per program counter, a bitmask
// over-approximating the set of values each register may hold when control
// reaches that pc (bit v set = register may hold value v). The lattice is
// the powerset of the value domain [0, ValCount); join is set union; the
// transfer functions mirror lang.Expr.Eval exactly, so the abstraction is
// sound by construction: every concrete register valuation reachable at pc
// is contained in the abstract one. Memory reads and RMW result registers
// go to top (any value), which keeps the pass intraprocedural and
// independent of the memory model — under ANY semantics a load yields some
// value in the domain.
//
// The same fixpoint yields a sound reachability predicate: a pc with no
// abstract state is unreachable under every memory model, because branch
// feasibility is judged on the over-approximate condition sets (a branch
// is only pruned when no value in the condition's abstract set could take
// it, which no concrete run can contradict).

// allOf returns the mask of the full value domain [0, vc).
func allOf(vc int) uint64 {
	if vc >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << vc) - 1
}

// evalSet abstractly evaluates e: the result is the exact image of the
// register sets under Eval (pairwise enumeration for binary operators, so
// no precision is lost inside the expression beyond the register sets
// themselves).
func evalSet(e *lang.Expr, regs []uint64, vc int) uint64 {
	switch e.Kind {
	case lang.EConst:
		return uint64(1) << (int(e.Const) % vc)
	case lang.EReg:
		return regs[e.Reg]
	case lang.ENot:
		s := evalSet(e.L, regs, vc)
		var out uint64
		if s&1 != 0 {
			out |= 2 // operand may be 0 -> result may be 1
		}
		if s&^uint64(1) != 0 {
			out |= 1 // operand may be nonzero -> result may be 0
		}
		return out
	}
	ls, rs := evalSet(e.L, regs, vc), evalSet(e.R, regs, vc)
	var out uint64
	for a := 0; a < vc; a++ {
		if ls&(uint64(1)<<a) == 0 {
			continue
		}
		for b := 0; b < vc; b++ {
			if rs&(uint64(1)<<b) == 0 {
				continue
			}
			out |= uint64(1) << evalBin(e.Op, lang.Val(a), lang.Val(b), vc)
		}
	}
	return out
}

// evalBin mirrors the binary-operator arm of lang.Expr.Eval.
func evalBin(op lang.BinOp, a, b lang.Val, vc int) lang.Val {
	switch op {
	case lang.OpAdd:
		return lang.Val((int(a) + int(b)) % vc)
	case lang.OpSub:
		return lang.Val(((int(a)-int(b))%vc + vc) % vc)
	case lang.OpMul:
		return lang.Val((int(a) * int(b)) % vc)
	case lang.OpMod:
		if b == 0 {
			return 0
		}
		return lang.Val(int(a) % int(b))
	case lang.OpEq:
		return b2v(a == b)
	case lang.OpNe:
		return b2v(a != b)
	case lang.OpLt:
		return b2v(a < b)
	case lang.OpLe:
		return b2v(a <= b)
	case lang.OpGt:
		return b2v(a > b)
	case lang.OpGe:
		return b2v(a >= b)
	case lang.OpAnd:
		return b2v(a != 0 && b != 0)
	case lang.OpOr:
		return b2v(a != 0 || b != 0)
	}
	panic("analysis: unknown operator")
}

func b2v(b bool) lang.Val {
	if b {
		return 1
	}
	return 0
}

// constprop runs the fixpoint for one thread and returns the per-pc
// abstract register states. The slice has len(Insts)+1 entries (the last
// is the terminal pc); a nil entry means the pc is unreachable.
func constprop(p *lang.Program, ti int) [][]uint64 {
	t := &p.Threads[ti]
	n := len(t.Insts)
	vc := p.ValCount
	in := make([][]uint64, n+1)
	init := make([]uint64, t.NumRegs)
	for r := range init {
		init[r] = 1 // registers start holding 0
	}
	in[0] = init

	// join merges src into *dst, reporting whether *dst changed.
	join := func(dst *[]uint64, src []uint64) bool {
		if *dst == nil {
			cp := make([]uint64, len(src))
			copy(cp, src)
			*dst = cp
			return true
		}
		changed := false
		for i, s := range src {
			if (*dst)[i]|s != (*dst)[i] {
				(*dst)[i] |= s
				changed = true
			}
		}
		return changed
	}

	work := []int{0}
	queued := make([]bool, n+1)
	queued[0] = true
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		queued[pc] = false
		if pc == n {
			continue
		}
		regs := in[pc]
		inst := &t.Insts[pc]
		out := regs
		switch inst.Kind {
		case lang.IAssign:
			out = setReg(regs, inst.Reg, evalSet(inst.E, regs, vc))
		case lang.IRead, lang.IFADD, lang.IXCHG, lang.ICAS:
			out = setReg(regs, inst.Reg, allOf(vc))
		}
		push := func(succ int) {
			if join(&in[succ], out) && !queued[succ] {
				work = append(work, succ)
				queued[succ] = true
			}
		}
		if inst.Kind == lang.IGoto {
			cond := evalSet(inst.E, regs, vc)
			if cond&1 != 0 {
				push(pc + 1) // condition may be 0: fall through
			}
			if cond&^uint64(1) != 0 {
				push(inst.Target) // condition may be nonzero: jump
			}
		} else {
			push(pc + 1)
		}
	}
	return in
}

// setReg returns a copy of regs with register r set to s.
func setReg(regs []uint64, r lang.Reg, s uint64) []uint64 {
	out := make([]uint64, len(regs))
	copy(out, regs)
	out[r] = s
	return out
}

// cells returns the location-bit mask of the cells the memory reference
// may resolve to under the abstract register state, mirroring
// lang.MemRef.Resolve (array indices wrap modulo the declared size).
func cells(m lang.MemRef, regs []uint64, vc int) uint64 {
	if m.Index == nil {
		return uint64(1) << m.Base
	}
	s := evalSet(m.Index, regs, vc)
	var out uint64
	for v := 0; v < vc; v++ {
		if s&(uint64(1)<<v) != 0 {
			out |= uint64(1) << (int(m.Base) + v%m.Size)
		}
	}
	return out
}
