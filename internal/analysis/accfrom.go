package analysis

import "repro/internal/lang"

// This file computes forward may-access summaries: for every thread and
// every program counter, the set of locations the thread may still touch in
// any continuation of its execution from that pc. The partial-order
// reduction in internal/core uses them as its static independence oracle —
// a pending operation on location x is a candidate ample representative
// only if no *other* thread's forward summary (at its current pc) contains
// x (full privacy), or, for a plain read, if no other thread's forward
// *write* summary contains x (read-only sharing).
//
// Soundness piggybacks on constprop: the per-pc register value sets
// over-approximate every run under every memory model (loads go to top), so
// the cell masks resolved through them over-approximate every location an
// array reference can denote, and branch feasibility is judged on the same
// over-approximate condition sets. A location absent from AccessSets'
// result at pc is therefore untouchable by that thread from pc onward in
// any execution whatsoever.

// AccessSets returns, per thread, per program counter (len(Insts)+1
// entries; the last is the terminal pc), the location-bit masks of cells
// the thread may access (acc) and may write — including RMWs, whose
// success both reads and writes (wr) — at or after that pc. Statically
// unreachable pcs carry zero masks.
func AccessSets(p *lang.Program) (acc, wr [][]uint64) {
	vc := p.ValCount
	acc = make([][]uint64, len(p.Threads))
	wr = make([][]uint64, len(p.Threads))
	for ti := range p.Threads {
		t := &p.Threads[ti]
		n := len(t.Insts)
		facts := constprop(p, ti)
		genA := make([]uint64, n+1)
		genW := make([]uint64, n+1)
		// succs[pc] holds up to two CFG successors (-1 = none); branch
		// arms constprop proves infeasible are dropped, matching the
		// reachability judgement the cell masks are built on.
		type edge struct{ a, b int }
		succs := make([]edge, n+1)
		succs[n] = edge{-1, -1}
		for pc := 0; pc < n; pc++ {
			succs[pc] = edge{-1, -1}
			regs := facts[pc]
			if regs == nil {
				continue // unreachable under every memory model
			}
			in := &t.Insts[pc]
			if in.IsMem() {
				m := cells(in.Mem, regs, vc)
				genA[pc] = m
				switch in.Kind {
				case lang.IWrite, lang.IFADD, lang.ICAS, lang.IBCAS, lang.IXCHG:
					genW[pc] = m
				}
			}
			if in.Kind == lang.IGoto {
				cond := evalSet(in.E, regs, vc)
				if cond&1 != 0 {
					succs[pc].a = pc + 1
				}
				if cond&^uint64(1) != 0 {
					succs[pc].b = in.Target
				}
			} else {
				succs[pc].a = pc + 1
			}
		}
		a := make([]uint64, n+1)
		w := make([]uint64, n+1)
		copy(a, genA)
		copy(w, genW)
		// Backward fixpoint over the (tiny) CFG: iterate until stable.
		for changed := true; changed; {
			changed = false
			for pc := n - 1; pc >= 0; pc-- {
				na, nw := a[pc], w[pc]
				if s := succs[pc].a; s >= 0 {
					na |= a[s]
					nw |= w[s]
				}
				if s := succs[pc].b; s >= 0 {
					na |= a[s]
					nw |= w[s]
				}
				if na != a[pc] || nw != w[pc] {
					a[pc], w[pc] = na, nw
					changed = true
				}
			}
		}
		acc[ti], wr[ti] = a, w
	}
	return acc, wr
}
