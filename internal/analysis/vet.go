package analysis

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/lang"
)

// VetFinding is one lint diagnostic with a source position (positions come
// from the parser; programs built programmatically report 0:0).
type VetFinding struct {
	Line, Col int
	Msg       string
}

func (f VetFinding) String() string { return fmt.Sprintf("line %d:%d: %s", f.Line, f.Col, f.Msg) }

// Vet lints a parsed program. It accepts programs from parser.ParseLenient
// that lang.Validate would reject (that is the point of the value-bound
// check), but relies on the structural invariants the parser itself
// guarantees: in-range registers, locations, and goto targets.
//
// Checks:
//   - unreachable code (reported once per maximal unreachable run);
//   - registers read before any write — initial-zero reads are legal but
//     almost always a typo;
//   - constants at or above the declared value bound, which the semantics
//     silently truncates modulo the bound;
//   - locations that are read somewhere but written nowhere, so every
//     read yields the initial zero;
//   - redundant fences: a fence-shaped RMW whose thread takes part in no
//     dangerous biconnected block of the conflict multigraph (valid
//     programs only — the check needs Analyze's contract).
func Vet(p *lang.Program) []VetFinding {
	var out []VetFinding
	vc := p.ValCount

	// Per-thread passes.
	readsNeverWritten := map[lang.Loc]*lang.Inst{} // first reading inst per loc
	var writtenAnywhere uint64
	allFacts := make([][][]uint64, len(p.Threads))
	for ti := range p.Threads {
		t := &p.Threads[ti]
		facts := constprop(p, ti)
		allFacts[ti] = facts

		// Unreachable code.
		for pc := 0; pc < len(t.Insts); pc++ {
			if facts[pc] != nil {
				continue
			}
			in := &t.Insts[pc]
			run := 0
			for pc < len(t.Insts) && facts[pc] == nil {
				pc++
				run++
			}
			out = append(out, VetFinding{in.Line, in.Col,
				fmt.Sprintf("unreachable code in thread %s (%d instruction(s))", t.Name, run)})
		}

		// Read-before-write: forward may-analysis of unwritten registers.
		// Bit r set at pc = register r may still be unwritten there.
		unwritten := make([]uint64, len(t.Insts)+1)
		init := uint64(0)
		if t.NumRegs > 0 {
			init = allOf64(t.NumRegs)
		}
		seen := make([]bool, len(t.Insts)+1)
		unwritten[0], seen[0] = init, true
		work := []int{0}
		for len(work) > 0 {
			pc := work[len(work)-1]
			work = work[:len(work)-1]
			if pc == len(t.Insts) {
				continue
			}
			in := &t.Insts[pc]
			mask := unwritten[pc]
			if r, ok := destReg(in); ok {
				mask &^= uint64(1) << r
			}
			push := func(succ int) {
				if !seen[succ] || unwritten[succ]|mask != unwritten[succ] {
					unwritten[succ] |= mask
					seen[succ] = true
					work = append(work, succ)
				}
			}
			if in.Kind == lang.IGoto {
				push(pc + 1)
				push(in.Target)
			} else {
				push(pc + 1)
			}
		}
		for pc := range t.Insts {
			if !seen[pc] {
				continue // unreachable, already reported
			}
			in := &t.Insts[pc]
			for m := instReads(in) & unwritten[pc]; m != 0; m &= m - 1 {
				r := bits.TrailingZeros64(m)
				out = append(out, VetFinding{in.Line, in.Col,
					fmt.Sprintf("register %s read before any write in thread %s (reads the initial 0)",
						regName(t, lang.Reg(r)), t.Name)})
			}
		}

		// Out-of-range constants; accumulate read/write location sets.
		for pc := range t.Insts {
			in := &t.Insts[pc]
			for _, e := range []*lang.Expr{in.E, in.ER, in.EW, in.Mem.Index} {
				if c, ok := oversizeConst(e, vc); ok {
					out = append(out, VetFinding{in.Line, in.Col,
						fmt.Sprintf("constant %d is outside the value domain [0,%d) and truncates to %d", c, vc, int(c)%vc)})
				}
			}
			if !in.IsMem() {
				continue
			}
			var cellMask uint64
			if in.Mem.Index == nil {
				cellMask = uint64(1) << in.Mem.Base
			} else {
				cellMask = (allOf64(in.Mem.Size)) << in.Mem.Base
			}
			switch in.Kind {
			case lang.IRead, lang.IWait:
				for m := cellMask; m != 0; m &= m - 1 {
					x := lang.Loc(bits.TrailingZeros64(m))
					if _, ok := readsNeverWritten[x]; !ok {
						readsNeverWritten[x] = in
					}
				}
			default: // IWrite and all RMWs store
				writtenAnywhere |= cellMask
			}
		}
	}

	for x, in := range readsNeverWritten {
		if writtenAnywhere&(uint64(1)<<x) != 0 {
			continue
		}
		out = append(out, VetFinding{in.Line, in.Col,
			fmt.Sprintf("location %s is read but never written (every read yields the initial 0)", p.Locs[x].Name)})
	}

	out = append(out, redundantFences(p, allFacts)...)

	sort.Slice(out, func(i, j int) bool {
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Msg < out[j].Msg
	})
	return out
}

// redundantFences flags fence-shaped RMWs that cannot order anything: a
// reachable FADD or XCHG whose result register is dead, on cells that are
// program-wide fence-only (every access is a dead-result FADD/XCHG — no
// BCAS, whose blocking depends on the stored values), in a thread none of
// whose conflict-graph edges lies in a dangerous biconnected block.
//
// Dropping such an instruction is verdict-neutral: no register anywhere
// changes value (all results on those cells are dead), no blocking
// behaviour changes (RMW-purity excludes waits, fence-only excludes BCAS),
// and a robustness violation is a cycle inside one biconnected block with
// >= 2 conflict edges — no block containing an edge of this thread
// qualifies, and removing the fence only removes edges, which can split
// blocks but never grow a block's conflict-edge count.
//
// The check needs lang.Validate (Analyze's contract), so lenient parses
// skip it.
func redundantFences(p *lang.Program, allFacts [][][]uint64) []VetFinding {
	if p.Validate() != nil {
		return nil
	}
	res := Analyze(p)

	// Threads glued into some dangerous block.
	inDanger := make([]bool, len(p.Threads))
	for i, e := range res.Edges {
		if res.BlockDanger[i] {
			inDanger[e.T1] = true
			inDanger[e.T2] = true
		}
	}

	// Registers read anywhere in each thread (over all code — liveness
	// does not need reachability precision).
	live := make([]uint64, len(p.Threads))
	for ti := range p.Threads {
		for pc := range p.Threads[ti].Insts {
			live[ti] |= instReads(&p.Threads[ti].Insts[pc])
		}
	}

	// Cells where every program-wide access is a dead-result FADD/XCHG.
	fenceOnly := res.RMWPure
	for ti := range p.Threads {
		t := &p.Threads[ti]
		for pc := range t.Insts {
			in := &t.Insts[pc]
			if !in.IsMem() {
				continue
			}
			cs := cells(in.Mem, allFacts[ti][pc], p.ValCount)
			switch in.Kind {
			case lang.IBCAS:
				fenceOnly &^= cs
			case lang.IFADD, lang.IXCHG:
				if live[ti]&(uint64(1)<<in.Reg) != 0 {
					fenceOnly &^= cs
				}
			}
		}
	}
	if fenceOnly == 0 {
		return nil
	}

	var out []VetFinding
	for ti := range p.Threads {
		if inDanger[ti] {
			continue
		}
		t := &p.Threads[ti]
		for pc := range t.Insts {
			if allFacts[ti][pc] == nil {
				continue // unreachable, already reported
			}
			in := &t.Insts[pc]
			if in.Kind != lang.IFADD && in.Kind != lang.IXCHG {
				continue
			}
			if live[ti]&(uint64(1)<<in.Reg) != 0 {
				continue
			}
			cs := cells(in.Mem, allFacts[ti][pc], p.ValCount)
			if cs == 0 || cs&^fenceOnly != 0 {
				continue
			}
			out = append(out, VetFinding{in.Line, in.Col,
				fmt.Sprintf("redundant fence on %s: thread %s takes part in no dangerous block of the conflict graph, so dropping it cannot change the verdict",
					p.Locs[in.Mem.Base].Name, t.Name)})
		}
	}
	return out
}

// destReg returns the register an instruction writes, if any.
func destReg(in *lang.Inst) (lang.Reg, bool) {
	switch in.Kind {
	case lang.IAssign, lang.IRead, lang.IFADD, lang.IXCHG, lang.ICAS:
		return in.Reg, true
	}
	return 0, false
}

// instReads is the mask of registers an instruction's expressions read.
func instReads(in *lang.Inst) uint64 {
	return exprRegs(in.E) | exprRegs(in.ER) | exprRegs(in.EW) | exprRegs(in.Mem.Index)
}

func exprRegs(e *lang.Expr) uint64 {
	if e == nil {
		return 0
	}
	if e.Kind == lang.EReg {
		return uint64(1) << e.Reg
	}
	return exprRegs(e.L) | exprRegs(e.R)
}

// oversizeConst reports the first literal in e at or above the value bound.
func oversizeConst(e *lang.Expr, vc int) (lang.Val, bool) {
	if e == nil {
		return 0, false
	}
	if e.Kind == lang.EConst && int(e.Const) >= vc {
		return e.Const, true
	}
	if c, ok := oversizeConst(e.L, vc); ok {
		return c, true
	}
	return oversizeConst(e.R, vc)
}

// regName returns the source name of a register when the parser recorded
// one.
func regName(t *lang.SeqProg, r lang.Reg) string {
	if int(r) < len(t.RegNames) && t.RegNames[r] != "" {
		return t.RegNames[r]
	}
	return fmt.Sprintf("r%d", r)
}
