// Package analysis implements a static robustness pre-pass over the
// program LTS of internal/prog: per-thread access summaries, a
// cross-thread conflict graph, and a register constant-propagation pass
// that sharpens the §5.1 critical-value masks.
//
// The pay-off is twofold. First, a soundness-preserving reduction of the
// SCM monitor (internal/scm): the monitor's state decomposes into
// independent per-location planes, and a robustness violation can only be
// flagged at a location lying on a cross-thread conflict cycle, so planes
// of locations outside every such cycle can be forced to zero without
// changing any verdict — shrinking the explored state space. Second, a
// static certificate: when the conflict graph has no cycle through two or
// more conflict edges at all (and nothing else requires exploration), the
// program is robust with zero states explored.
//
// The cycle criterion is phrased over biconnected components. Build the
// thread multigraph H whose nodes are threads and whose edges are
//
//   - conflict edges (t1, t2, x): threads t1 and t2 both access location
//     x, at least one of them through a write or RMW, and x is not
//     RMW-pure (one edge per thread pair and location);
//   - sync edges (t1, t2, f): t1 and t2 both access an RMW-pure location
//     f (the Ex. 3.6 fence shape — every program-wide access to f is a
//     FADD, XCHG, or BCAS).
//
// A robustness violation needs a happens-before cycle alternating program
// order and inter-thread communication on at least two distinct
// conflicting location/thread pairs; in H that is a cycle containing at
// least two conflict edges, which exists iff some biconnected block of H
// contains two or more conflict edges. Sync edges carry no stale values
// themselves — the SCM monitor can never flag an RMW-pure location,
// because its VR/WR and CVR bits only ever gain at plain writes — but
// they DO glue cycles together (testdata/regressions/fence-nonmonotone-*
// is exactly a program where dropping them loses a violation), so they
// participate in the block structure without counting toward the two.
package analysis

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/lang"
	"repro/internal/prog"
)

// ThreadSummary is the may-access summary of one thread, as location-bit
// masks restricted to reachable instructions. Array accesses are
// cell-precise where the constant-propagation pass bounds the index and
// whole-array otherwise.
type ThreadSummary struct {
	MayRead  uint64 // plain reads, waits, and the CAS failure read
	MayWrite uint64 // plain writes
	MayRMW   uint64 // FADD, XCHG, CAS, BCAS
	// Impure marks locations this thread touches through anything other
	// than FADD/XCHG/BCAS; a location impure in no thread is RMW-pure.
	Impure uint64
}

// Accessed is the mask of locations the thread may touch at all.
func (s *ThreadSummary) Accessed() uint64 { return s.MayRead | s.MayWrite | s.MayRMW }

// writes is the mask of locations the thread may modify.
func (s *ThreadSummary) writes() uint64 { return s.MayWrite | s.MayRMW }

// Edge is one edge of the cross-thread conflict graph H.
type Edge struct {
	T1, T2 int // thread indices, T1 < T2
	Loc    lang.Loc
	// Sync marks co-accesses of an RMW-pure location: synchronization
	// that can glue cycles but never carries a violation itself.
	Sync bool
}

// Result is the full output of Analyze.
type Result struct {
	Summaries []ThreadSummary
	RMWPure   uint64 // accessed locations whose every access is FADD/XCHG/BCAS
	Edges     []Edge // sorted by (T1, T2, Loc)
	Dangerous []bool // per edge: conflict edge in a block with >= 2 conflict edges
	// BlockDanger marks every edge — sync edges included — of a block
	// with >= 2 conflict edges. A thread all of whose incident edges are
	// unmarked can take part in no violating cycle (Dangerous is always a
	// subset of BlockDanger).
	BlockDanger []bool

	// Tracked is the union of dangerous-edge locations: the only
	// locations whose monitor planes can contribute to a verdict.
	// Everything else (Pruned) may be dropped from instrumentation.
	Tracked uint64
	Pruned  uint64

	// Crit is the sharpened critical-value mask per location (always a
	// subset of prog.CriticalVals, hence sound by Def 5.5's monotonicity);
	// CritSharpened reports whether any mask is strictly smaller.
	Crit          []uint64
	CritSharpened bool

	// Certificate reports that the program is robust by the absence of
	// any dangerous block, with no exploration needed. Declined holds the
	// reason when it is false.
	Certificate bool
	Declined    string

	hasAssert  bool
	naConflict bool
}

// Analyze runs the pre-pass. The program must satisfy lang.Validate.
func Analyze(p *lang.Program) *Result {
	vc := p.ValCount
	r := &Result{Summaries: make([]ThreadSummary, len(p.Threads))}
	facts := make([][][]uint64, len(p.Threads))
	for ti := range p.Threads {
		facts[ti] = constprop(p, ti)
	}

	// Access summaries over reachable instructions.
	for ti := range p.Threads {
		t := &p.Threads[ti]
		s := &r.Summaries[ti]
		for pc := range t.Insts {
			regs := facts[ti][pc]
			if regs == nil {
				continue // unreachable
			}
			in := &t.Insts[pc]
			if !in.IsMem() {
				if in.Kind == lang.IAssert {
					r.hasAssert = true
				}
				continue
			}
			cs := cells(in.Mem, regs, vc)
			switch in.Kind {
			case lang.IRead, lang.IWait:
				s.MayRead |= cs
				s.Impure |= cs
			case lang.IWrite:
				s.MayWrite |= cs
				s.Impure |= cs
			case lang.ICAS:
				// The failure path of CAS is a plain read, so CAS
				// disqualifies a location from the fence shape.
				s.MayRMW |= cs
				s.MayRead |= cs
				s.Impure |= cs
			case lang.IFADD, lang.IXCHG, lang.IBCAS:
				s.MayRMW |= cs
			}
		}
	}

	// RMW-pure locations: accessed somewhere, impure nowhere.
	var accessed, impure uint64
	for ti := range r.Summaries {
		accessed |= r.Summaries[ti].Accessed()
		impure |= r.Summaries[ti].Impure
	}
	r.RMWPure = accessed &^ impure

	// Conflict graph: one edge per (thread pair, location).
	for t1 := 0; t1 < len(p.Threads); t1++ {
		for t2 := t1 + 1; t2 < len(p.Threads); t2++ {
			s1, s2 := &r.Summaries[t1], &r.Summaries[t2]
			sync := s1.Accessed() & s2.Accessed() & r.RMWPure
			conflict := (s1.writes()&s2.Accessed() | s2.writes()&s1.Accessed()) &^ r.RMWPure
			for m := sync | conflict; m != 0; m &= m - 1 {
				x := lang.Loc(bits.TrailingZeros64(m))
				r.Edges = append(r.Edges, Edge{T1: t1, T2: t2, Loc: x, Sync: conflict&(1<<x) == 0})
				if conflict&(1<<x) != 0 && p.Locs[x].NA {
					r.naConflict = true
				}
			}
		}
	}
	sort.Slice(r.Edges, func(i, j int) bool {
		a, b := r.Edges[i], r.Edges[j]
		if a.T1 != b.T1 {
			return a.T1 < b.T1
		}
		if a.T2 != b.T2 {
			return a.T2 < b.T2
		}
		return a.Loc < b.Loc
	})

	r.Dangerous, r.BlockDanger = dangerousEdges(len(p.Threads), r.Edges)
	for i, e := range r.Edges {
		if r.Dangerous[i] {
			r.Tracked |= uint64(1) << e.Loc
		}
	}
	r.Pruned = allOf64(len(p.Locs)) &^ r.Tracked

	// Sharpened critical values (subset of prog.CriticalVals by
	// construction: reachable-only, cell-precise, value-set comparands).
	orig := prog.CriticalVals(p)
	r.Crit = sharpenedCrit(p, facts)
	for x := range r.Crit {
		if r.Crit[x]&^orig[x] != 0 {
			panic("analysis: sharpened crit not a subset of CriticalVals")
		}
		if r.Crit[x] != orig[x] {
			r.CritSharpened = true
		}
	}

	switch {
	case r.Tracked != 0:
		r.Declined = "conflict graph has a block with >= 2 conflict edges"
	case r.naConflict:
		r.Declined = "cross-thread conflict on a non-atomic location (race check needs exploration)"
	case r.hasAssert:
		r.Declined = "program has assertions (checked under SC, needs exploration)"
	default:
		r.Certificate = true
	}
	return r
}

// sharpenedCrit recomputes the §5.1 critical-value masks using the
// constant-propagation facts: each reachable wait/CAS/BCAS contributes the
// abstract value set of its comparand (instead of all values when it is
// not a literal) to the cells it may resolve to (instead of the whole
// array).
func sharpenedCrit(p *lang.Program, facts [][][]uint64) []uint64 {
	crit := make([]uint64, len(p.Locs))
	vc := p.ValCount
	for ti := range p.Threads {
		t := &p.Threads[ti]
		for pc := range t.Insts {
			regs := facts[ti][pc]
			if regs == nil {
				continue
			}
			in := &t.Insts[pc]
			var comparand *lang.Expr
			switch in.Kind {
			case lang.IWait:
				comparand = in.E
			case lang.ICAS, lang.IBCAS:
				comparand = in.ER
			default:
				continue
			}
			vals := evalSet(comparand, regs, vc)
			for cs := cells(in.Mem, regs, vc); cs != 0; cs &= cs - 1 {
				crit[bits.TrailingZeros64(cs)] |= vals
			}
		}
	}
	return crit
}

// dangerousEdges finds the biconnected blocks of the thread multigraph
// (Hopcroft–Tarjan with an edge stack; parallel edges are distinct, so a
// doubled edge already forms a block of size two) and marks the conflict
// edges of every block containing at least two of them. blockDanger
// additionally marks the sync edges of those blocks, so callers can tell
// which threads are glued into a dangerous block at all.
func dangerousEdges(threads int, edges []Edge) (danger, blockDanger []bool) {
	type half struct{ to, edge int }
	adj := make([][]half, threads)
	for i, e := range edges {
		adj[e.T1] = append(adj[e.T1], half{e.T2, i})
		adj[e.T2] = append(adj[e.T2], half{e.T1, i})
	}
	danger = make([]bool, len(edges))
	blockDanger = make([]bool, len(edges))
	disc := make([]int, threads)
	low := make([]int, threads)
	for i := range disc {
		disc[i] = -1
	}
	var stack []int // edge indices
	timer := 0
	var dfs func(v, parentEdge int)
	dfs = func(v, parentEdge int) {
		disc[v], low[v] = timer, timer
		timer++
		for _, h := range adj[v] {
			switch {
			case h.edge == parentEdge:
				// The single tree edge back to the parent; a parallel
				// edge to the same parent has a different index and is
				// treated as the back edge it is.
			case disc[h.to] == -1:
				stack = append(stack, h.edge)
				dfs(h.to, h.edge)
				if low[h.to] < low[v] {
					low[v] = low[h.to]
				}
				if low[h.to] >= disc[v] {
					// v is an articulation point (or the root): the
					// edges above h.edge on the stack form one block.
					conflicts := 0
					top := len(stack)
					for {
						top--
						if !edges[stack[top]].Sync {
							conflicts++
						}
						if stack[top] == h.edge {
							break
						}
					}
					if conflicts >= 2 {
						for _, ei := range stack[top:] {
							blockDanger[ei] = true
							if !edges[ei].Sync {
								danger[ei] = true
							}
						}
					}
					stack = stack[:top]
				}
			case disc[h.to] < disc[v]:
				// Back edge to an ancestor (or a parallel edge to the
				// parent): part of the current block.
				stack = append(stack, h.edge)
				if disc[h.to] < low[v] {
					low[v] = disc[h.to]
				}
			}
		}
	}
	for v := 0; v < threads; v++ {
		if disc[v] == -1 {
			dfs(v, -1)
		}
	}
	return danger, blockDanger
}

// allOf64 is allOf without the value-domain cap (location masks go up to
// 64 bits).
func allOf64(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// Describe renders the analysis for rocker -explain: summaries, the
// conflict graph, what was pruned, and the certificate or the reason the
// fast path declined.
func (r *Result) Describe(p *lang.Program) string {
	var b strings.Builder
	locs := func(mask uint64) string {
		if mask == 0 {
			return "-"
		}
		var names []string
		for m := mask; m != 0; m &= m - 1 {
			names = append(names, p.Locs[bits.TrailingZeros64(m)].Name)
		}
		return strings.Join(names, ",")
	}
	b.WriteString("access summaries (reachable code only):\n")
	for ti := range r.Summaries {
		s := &r.Summaries[ti]
		fmt.Fprintf(&b, "  %-8s read=%s write=%s rmw=%s\n",
			p.Threads[ti].Name, locs(s.MayRead), locs(s.MayWrite), locs(s.MayRMW))
	}
	if r.RMWPure != 0 {
		fmt.Fprintf(&b, "rmw-pure (fence-shaped) locations: %s\n", locs(r.RMWPure))
	}
	b.WriteString("conflict graph:\n")
	if len(r.Edges) == 0 {
		b.WriteString("  (no cross-thread edges)\n")
	}
	for i, e := range r.Edges {
		kind := "conflict"
		if e.Sync {
			kind = "sync"
		}
		mark := ""
		if r.Dangerous[i] {
			mark = "  [dangerous]"
		}
		fmt.Fprintf(&b, "  %s -- %s on %s (%s)%s\n",
			p.Threads[e.T1].Name, p.Threads[e.T2].Name, p.Locs[e.Loc].Name, kind, mark)
	}
	fmt.Fprintf(&b, "tracked locations: %s\n", locs(r.Tracked))
	fmt.Fprintf(&b, "pruned locations:  %s (%d of %d)\n",
		locs(r.Pruned), bits.OnesCount64(r.Pruned), len(p.Locs))
	if r.CritSharpened {
		b.WriteString("critical-value masks sharpened by constant propagation\n")
	}
	if r.Certificate {
		b.WriteString("certificate: no conflict-graph block with >= 2 conflict edges; robust without exploration\n")
	} else {
		fmt.Fprintf(&b, "no static certificate: %s\n", r.Declined)
	}
	return b.String()
}
