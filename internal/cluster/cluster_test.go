package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/prog"
)

func members3() []Member {
	return []Member{
		{ID: "n1", URL: "http://a:1"},
		{ID: "n2", URL: "http://b:2"},
		{ID: "n3", URL: "http://c:3"},
	}
}

func digestFor(i int) prog.Digest {
	var d prog.Digest
	d[0] = byte(i)
	d[1] = byte(i >> 8)
	d[15] = 0x5a
	return d
}

// TestOwnerDeterministic: every node, whatever the member-list order it
// was configured with, computes the same owner for a digest.
func TestOwnerDeterministic(t *testing.T) {
	ms := members3()
	perms := [][]Member{
		{ms[0], ms[1], ms[2]},
		{ms[2], ms[0], ms[1]},
		{ms[1], ms[2], ms[0]},
	}
	for i := 0; i < 500; i++ {
		d := digestFor(i)
		var want string
		for pi, perm := range perms {
			c, err := New(Config{SelfID: perm[0].ID, Members: perm})
			if err != nil {
				t.Fatal(err)
			}
			got := c.Owner(d).ID
			if pi == 0 {
				want = got
			} else if got != want {
				t.Fatalf("digest %d: owner %q under permutation %d, %q under 0", i, got, pi, want)
			}
		}
	}
}

// TestOwnerBalance: HRW spreads digests roughly evenly — each of 3 nodes
// owns a healthy share of 3000 digests.
func TestOwnerBalance(t *testing.T) {
	c, err := New(Config{SelfID: "n1", Members: members3()})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[c.Owner(digestFor(i)).ID]++
	}
	for id, got := range counts {
		if got < n/6 || got > n/2+n/6 {
			t.Errorf("node %s owns %d of %d digests — badly unbalanced (%v)", id, got, n, counts)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d nodes own anything: %v", len(counts), counts)
	}
}

// TestOwnerMinimalDisruption: dropping one member only reassigns that
// member's digests; everyone else's owner is unchanged.
func TestOwnerMinimalDisruption(t *testing.T) {
	ms := members3()
	full, _ := New(Config{SelfID: "n1", Members: ms})
	reduced, _ := New(Config{SelfID: "n1", Members: ms[:2]}) // n3 removed
	for i := 0; i < 1000; i++ {
		d := digestFor(i)
		before := full.Owner(d).ID
		after := reduced.Owner(d).ID
		if before != "n3" && after != before {
			t.Fatalf("digest %d moved %s -> %s though its owner never left", i, before, after)
		}
		if before == "n3" && after == "n3" {
			t.Fatalf("digest %d still owned by removed member", i)
		}
	}
}

func TestParseMembers(t *testing.T) {
	ms, err := ParseMembers("n1@http://a:8723, n2@b:8724 ,http://c:8725")
	if err != nil {
		t.Fatal(err)
	}
	want := []Member{
		{ID: "n1", URL: "http://a:8723"},
		{ID: "n2", URL: "http://b:8724"},
		{ID: "http://c:8725", URL: "http://c:8725"},
	}
	if len(ms) != len(want) {
		t.Fatalf("got %v", ms)
	}
	for i := range want {
		if ms[i] != want[i] {
			t.Errorf("member %d = %+v, want %+v", i, ms[i], want[i])
		}
	}
	if _, err := ParseMembers(""); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := ParseMembers("@nourl"); err == nil {
		t.Error("malformed entry accepted")
	}
}

func TestNewValidation(t *testing.T) {
	ms := members3()
	if _, err := New(Config{SelfID: "ghost", Members: ms}); err == nil {
		t.Error("self outside membership accepted")
	}
	dup := append(members3(), Member{ID: "n1", URL: "http://d:4"})
	if _, err := New(Config{SelfID: "n1", Members: dup}); err == nil {
		t.Error("duplicate ids accepted")
	}
	if _, err := New(Config{SelfID: "x", Members: nil}); err == nil {
		t.Error("empty membership accepted")
	}
}

// TestForwardRetries: a peer that fails twice then succeeds is reached
// within the retry budget; the request carries the hop header.
func TestForwardRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(ForwardHeader) != "n1" {
			t.Errorf("hop header = %q, want n1", r.Header.Get(ForwardHeader))
		}
		if calls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	ms := []Member{{ID: "n1", URL: "http://self"}, {ID: "n2", URL: ts.URL}}
	c, err := New(Config{SelfID: "n1", Members: ms, Retries: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Forward(context.Background(), ms[1], http.MethodPost, "/v1/verify", "application/json", []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3", calls.Load())
	}
}

// TestForwardExhausts: a dead peer returns an error after the bounded
// retries rather than hanging.
func TestForwardExhausts(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // dead on arrival
	ms := []Member{{ID: "n1", URL: "http://self"}, {ID: "n2", URL: ts.URL}}
	c, _ := New(Config{SelfID: "n1", Members: ms, Retries: 2, Backoff: time.Millisecond})
	start := time.Now()
	if _, err := c.Forward(context.Background(), ms[1], http.MethodPost, "/v1/steal", "", nil); err == nil {
		t.Fatal("forward to dead peer succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry loop took implausibly long")
	}
}

// TestForwardHonorsContext: cancellation cuts the backoff wait short.
func TestForwardHonorsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "always failing", http.StatusInternalServerError)
	}))
	defer ts.Close()
	ms := []Member{{ID: "n1", URL: "http://self"}, {ID: "n2", URL: ts.URL}}
	c, _ := New(Config{SelfID: "n1", Members: ms, Retries: 10, Backoff: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Forward(ctx, ms[1], http.MethodGet, "/", "", nil); err == nil {
		t.Fatal("forward succeeded against an always-5xx peer")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("context cancellation did not cut the backoff short")
	}
}
