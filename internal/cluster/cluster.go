// Package cluster provides the peer-to-peer layer that turns N rockerd
// processes into one digest-addressed verification cluster.
//
// Routing is rendezvous (highest-random-weight) hashing on the program's
// prog.CanonicalDigest: every node, given the same member list, computes
// the same owner for a digest without any coordination, and removing a
// member only reassigns that member's digests (minimal disruption — no
// ring state, no rebalancing protocol). The digest is name-free and
// renaming-invariant, so all spellings of a program land on one owner and
// its verdict caches, wherever the client connects.
//
// The package deliberately knows nothing about internal/service's types:
// it owns the member list, the owner function, the retrying HTTP client
// used between peers, and the wire structs of the peer-only endpoints
// (/v1/steal handover, pushed results). Failure handling is the caller's:
// Forward returns an error after bounded retries with exponential
// backoff, and the service degrades to local verification — a dead peer
// costs latency, never availability.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/prog"
)

// Peer-hop headers. A request carrying ForwardHeader has already been
// routed once and is always handled locally — forwarding is one hop, so a
// stale or disagreeing member list can cause extra local work but never a
// forwarding loop. OwnerHeader is set on responses that were served by
// forwarding, naming the owning node.
const (
	ForwardHeader = "X-Rocker-Forwarded"
	OwnerHeader   = "X-Rocker-Owner"
)

// Member is one node of the cluster.
type Member struct {
	ID  string `json:"id"`  // stable identity; the HRW hash input
	URL string `json:"url"` // base URL, e.g. http://10.0.0.1:8723
}

// Config describes the full membership (including this node) and the
// forwarding client's retry policy.
type Config struct {
	// SelfID names this node; it must appear in Members.
	SelfID string
	// Members is the complete, identical-on-every-node member list.
	Members []Member
	// Retries is the number of attempts per peer call (default 3).
	Retries int
	// Backoff is the initial retry delay, doubled per attempt (default 25ms).
	Backoff time.Duration
}

// Cluster is an immutable view of the membership plus the peer client.
// Safe for concurrent use.
type Cluster struct {
	cfg     Config
	self    Member
	members []Member // sorted by ID for deterministic iteration
	peers   []Member // members minus self
	client  *http.Client
}

// New validates cfg and builds the cluster view.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("cluster: empty member list")
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 25 * time.Millisecond
	}
	seen := make(map[string]bool, len(cfg.Members))
	members := make([]Member, len(cfg.Members))
	copy(members, cfg.Members)
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	var self Member
	for _, m := range members {
		if m.ID == "" || m.URL == "" {
			return nil, fmt.Errorf("cluster: member %+v needs both id and url", m)
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("cluster: duplicate member id %q", m.ID)
		}
		seen[m.ID] = true
		if m.ID == cfg.SelfID {
			self = m
		}
	}
	if self.ID == "" {
		return nil, fmt.Errorf("cluster: self id %q not in member list", cfg.SelfID)
	}
	c := &Cluster{
		cfg:     cfg,
		self:    self,
		members: members,
		// No blanket client timeout: forwarded wait-mode verifications run
		// as long as the job's own deadline. Per-call urgency comes from
		// the caller's context.
		client: &http.Client{},
	}
	for _, m := range members {
		if m.ID != self.ID {
			c.peers = append(c.peers, m)
		}
	}
	return c, nil
}

// ParseMembers parses a comma-separated member list of "id@url" entries
// (a bare URL uses the URL as its own id): the -peers flag format.
func ParseMembers(s string) ([]Member, error) {
	var ms []Member
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		id, url, ok := strings.Cut(ent, "@")
		if !ok {
			id, url = ent, ent
		}
		if id == "" || url == "" {
			return nil, fmt.Errorf("cluster: malformed member entry %q (want id@url)", ent)
		}
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			url = "http://" + url
		}
		ms = append(ms, Member{ID: id, URL: strings.TrimRight(url, "/")})
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("cluster: empty member list %q", s)
	}
	return ms, nil
}

// Self returns this node's member entry.
func (c *Cluster) Self() Member { return c.self }

// IsSelf reports whether m is this node.
func (c *Cluster) IsSelf(m Member) bool { return m.ID == c.self.ID }

// Peers returns the other members (sorted by ID; callers rotate for
// fairness).
func (c *Cluster) Peers() []Member { return c.peers }

// Members returns the full membership, sorted by ID.
func (c *Cluster) Members() []Member { return c.members }

// Owner returns the member that owns digest d under rendezvous hashing:
// the member maximizing hash(memberID ∥ d). Every node computes the same
// owner from the same member list; ties (astronomically unlikely with a
// 64-bit score) break by member ID.
func (c *Cluster) Owner(d prog.Digest) Member {
	best := c.members[0]
	bestScore := hrwScore(best.ID, d)
	for _, m := range c.members[1:] {
		if s := hrwScore(m.ID, d); s > bestScore {
			best, bestScore = m, s
		}
	}
	return best
}

func hrwScore(id string, d prog.Digest) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{0})
	h.Write(d[:])
	return h.Sum64()
}

// Forward performs one peer call with bounded retry and exponential
// backoff: transport errors and 5xx responses are retried (the 5xx body
// is drained and discarded); any other response is returned to the
// caller, body open. The request carries ForwardHeader with this node's
// id, so the receiving peer handles it locally. On exhaustion the last
// error (or a synthesized one for a 5xx) is returned and the caller
// should degrade to local handling.
func (c *Cluster) Forward(ctx context.Context, m Member, method, path, contentType string, body []byte) (*http.Response, error) {
	var lastErr error
	backoff := c.cfg.Backoff
	for attempt := 0; attempt < c.cfg.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		req, err := http.NewRequestWithContext(ctx, method, m.URL+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		req.Header.Set(ForwardHeader, c.self.ID)
		resp, err := c.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			resp.Body.Close()
			lastErr = fmt.Errorf("cluster: %s %s%s: %s", method, m.ID, path, resp.Status)
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("cluster: %s %s%s failed after %d attempts: %w",
		method, m.ID, path, c.cfg.Retries, lastErr)
}

// StolenJob is the /v1/steal handover payload: everything an idle peer
// needs to run a queued job on the victim's behalf. TimeoutMs is the
// job's full deadline; the thief applies it locally.
type StolenJob struct {
	ID          string `json:"id"`
	Source      string `json:"source"`
	Mode        string `json:"mode"`
	MaxStates   int    `json:"maxStates"`
	TimeoutMs   int64  `json:"timeoutMs"`
	StaticPrune bool   `json:"staticPrune,omitempty"`
	Reduce      bool   `json:"reduce,omitempty"`
}

// PushedResult is the POST /v1/jobs/{id}/result payload a thief sends
// back to the victim: the terminal status plus the result or error.
type PushedResult struct {
	Status string          `json:"status"`           // done | canceled | failed
	Result json.RawMessage `json:"result,omitempty"` // JSON-encoded service Result when Status is done
	Error  string          `json:"error,omitempty"`
}
