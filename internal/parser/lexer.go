// Package parser implements the concrete syntax for the toy concurrent
// language of the paper (Figure 1), extended with labels, arrays, assert,
// and a "fence" pseudo-instruction that desugars to an FADD on a
// distinguished otherwise-unused location (the paper's SC-fence encoding,
// Example 3.6).
//
// A program source looks like:
//
//	# Dekker's mutual exclusion, SC version
//	program dekker-sc
//	vals 3
//	locs flag0 flag1 turn
//	na data            # optional: non-atomic locations (§6)
//	array buf 2        # optional: an array of 2 atomic locations
//
//	thread p0
//	  flag0 := 1
//	L:
//	  r0 := flag1
//	  if r0 = 0 goto CS
//	  goto L
//	CS:
//	  flag0 := 0
//	end
//
// Statements, one per line (labels may precede a statement on the same
// line):
//
//	r := e                  register assignment (no memory access)
//	x := e                  write to location x
//	x[e1] := e2             write to array cell
//	r := x      r := x[e]   read
//	r := FADD(x, e)         atomic fetch-and-add
//	r := CAS(x, eR, eW)     compare-and-swap
//	wait(x = e)             blocking read (§2.1)
//	BCAS(x, eR, eW)         blocking CAS (§2.1)
//	if e goto L             conditional branch
//	goto L                  unconditional branch
//	assert e                SC assertion (checked by the verifier, §7)
//	fence                   SC fence (desugars to r := FADD(__fence, 0))
//	skip                    no-op (assigns a scratch register)
//
// Expressions use registers and literals with operators
// + - * % = != < <= > >= && || and !, with the usual precedence;
// parentheses group. Comparisons yield 1 (true) or 0 (false).
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tEOF tokKind = iota
	tNewline
	tIdent
	tNum
	tAssign // :=
	tColon  // :
	tLParen
	tRParen
	tLBrack
	tRBrack
	tComma
	tOp // one of the expression operators
)

type token struct {
	kind tokKind
	text string
	line int
	col  int // 1-based column of the token's first byte
}

// lex splits src into tokens. Newlines are significant (statements are
// line-oriented); comments run from '#' or '//' to end of line. Lexical
// errors are *Error values carrying the offending line:column.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	lineStart := 0 // byte offset of the current line's first column
	i := 0
	n := len(src)
	emit := func(k tokKind, text string) {
		toks = append(toks, token{k, text, line, i - lineStart + 1})
	}
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			emit(tNewline, "\n")
			line++
			i++
			lineStart = i
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '-') {
				j++
			}
			emit(tIdent, src[i:j])
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < n && unicode.IsDigit(rune(src[j])) {
				j++
			}
			emit(tNum, src[i:j])
			i = j
		case c == ':':
			if i+1 < n && src[i+1] == '=' {
				emit(tAssign, ":=")
				i += 2
			} else {
				emit(tColon, ":")
				i++
			}
		case c == '(':
			emit(tLParen, "(")
			i++
		case c == ')':
			emit(tRParen, ")")
			i++
		case c == '[':
			emit(tLBrack, "[")
			i++
		case c == ']':
			emit(tRBrack, "]")
			i++
		case c == ',':
			emit(tComma, ",")
			i++
		case strings.ContainsRune("+-*%", rune(c)):
			emit(tOp, string(c))
			i++
		case c == '=':
			emit(tOp, "=")
			i++
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				emit(tOp, "!=")
				i += 2
			} else {
				emit(tOp, "!")
				i++
			}
		case c == '<':
			if i+1 < n && src[i+1] == '=' {
				emit(tOp, "<=")
				i += 2
			} else {
				emit(tOp, "<")
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				emit(tOp, ">=")
				i += 2
			} else {
				emit(tOp, ">")
				i++
			}
		case c == '&':
			if i+1 < n && src[i+1] == '&' {
				emit(tOp, "&&")
				i += 2
			} else {
				return nil, &Error{Line: line, Col: i - lineStart + 1, Msg: "stray '&'"}
			}
		case c == '|':
			if i+1 < n && src[i+1] == '|' {
				emit(tOp, "||")
				i += 2
			} else {
				return nil, &Error{Line: line, Col: i - lineStart + 1, Msg: "stray '|'"}
			}
		default:
			return nil, &Error{Line: line, Col: i - lineStart + 1, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	emit(tNewline, "\n")
	emit(tEOF, "")
	return toks, nil
}
