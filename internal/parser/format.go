package parser

import (
	"fmt"
	"strings"

	"repro/internal/lang"
)

// Format pretty-prints a compiled program back to the concrete syntax this
// package parses. The listing is canonical rather than source-faithful:
// scalar locations are named x<loc>, arrays a<base>, threads t<index>,
// registers r<index>, and goto targets get labels L<pc>. Reparsing the
// result yields a program with the same labeled transition system — and
// therefore the same prog.CanonicalDigest — as the input (the digest's
// canonical register renumbering absorbs the index shuffle reparsing may
// introduce). rockerd relies on this to echo back a normalized listing of
// a cached program without storing the submitted source.
//
// Arrays are reconstructed from the instructions' memory operands: cells
// of a declared array are contiguous locations referenced through a
// MemRef with Size > 1. Locations never referenced that way (including
// cells of size-1 arrays, which compile to plain scalar accesses) are
// emitted as scalars; that changes the declaration style but not the LTS.
//
// The distinguished fence location (FenceLoc) is identified BY NAME —
// fence.Apply reuses it so that all fences synchronize, per Example 3.6 —
// so printing its accesses as plain FADDs on a renamed scalar would lose
// exactly the property that makes them fences. When the location and its
// accesses have the shape the "fence" pseudo-instruction desugars to,
// Format prints them back as "fence" and omits the (reserved, undeclarable)
// location; see fenceSugar for the conditions.
func Format(p *lang.Program) string {
	var b strings.Builder
	if isIdent(p.Name) {
		fmt.Fprintf(&b, "program %s\n", p.Name)
	}
	fmt.Fprintf(&b, "vals %d\n", p.ValCount)

	// base loc -> array size, recovered from the program's memory operands.
	arrays := map[lang.Loc]int{}
	for ti := range p.Threads {
		for ii := range p.Threads[ti].Insts {
			if m := p.Threads[ti].Insts[ii].Mem; m.Size > 1 {
				arrays[m.Base] = m.Size
			}
		}
	}
	fl, sugar := fenceSugar(p)
	for i := 0; i < len(p.Locs); {
		loc := lang.Loc(i)
		if sugar && loc == fl {
			i++
			continue
		}
		if size, ok := arrays[loc]; ok {
			if p.Locs[i].NA {
				fmt.Fprintf(&b, "na array a%d %d\n", i, size)
			} else {
				fmt.Fprintf(&b, "array a%d %d\n", i, size)
			}
			i += size
			continue
		}
		if p.Locs[i].NA {
			fmt.Fprintf(&b, "na x%d\n", i)
		} else {
			fmt.Fprintf(&b, "locs x%d\n", i)
		}
		i++
	}

	mem := func(m lang.MemRef) string {
		if _, ok := arrays[m.Base]; ok && m.Size > 1 {
			return fmt.Sprintf("a%d[%s]", m.Base, m.Index.String())
		}
		return fmt.Sprintf("x%d", m.Base)
	}

	for ti := range p.Threads {
		t := &p.Threads[ti]
		fmt.Fprintf(&b, "\nthread t%d\n", ti)
		targets := map[int]bool{}
		for ii := range t.Insts {
			if t.Insts[ii].Kind == lang.IGoto {
				targets[t.Insts[ii].Target] = true
			}
		}
		for ii := range t.Insts {
			if targets[ii] {
				fmt.Fprintf(&b, "L%d:\n", ii)
			}
			in := &t.Insts[ii]
			b.WriteString("  ")
			switch in.Kind {
			case lang.IAssign:
				fmt.Fprintf(&b, "r%d := %s", in.Reg, in.E.String())
			case lang.IGoto:
				if in.E.Kind == lang.EConst && in.E.Const == 1 {
					fmt.Fprintf(&b, "goto L%d", in.Target)
				} else {
					fmt.Fprintf(&b, "if %s goto L%d", in.E.String(), in.Target)
				}
			case lang.IWrite:
				fmt.Fprintf(&b, "%s := %s", mem(in.Mem), in.E.String())
			case lang.IRead:
				fmt.Fprintf(&b, "r%d := %s", in.Reg, mem(in.Mem))
			case lang.IFADD:
				if sugar && in.Mem.Index == nil && in.Mem.Base == fl {
					b.WriteString("fence")
				} else {
					fmt.Fprintf(&b, "r%d := FADD(%s, %s)", in.Reg, mem(in.Mem), in.E.String())
				}
			case lang.IXCHG:
				fmt.Fprintf(&b, "r%d := XCHG(%s, %s)", in.Reg, mem(in.Mem), in.E.String())
			case lang.ICAS:
				fmt.Fprintf(&b, "r%d := CAS(%s, %s, %s)", in.Reg, mem(in.Mem), in.ER.String(), in.EW.String())
			case lang.IWait:
				fmt.Fprintf(&b, "wait(%s = %s)", mem(in.Mem), in.E.String())
			case lang.IBCAS:
				fmt.Fprintf(&b, "BCAS(%s, %s, %s)", mem(in.Mem), in.ER.String(), in.EW.String())
			case lang.IAssert:
				fmt.Fprintf(&b, "assert %s", in.E.String())
			}
			b.WriteByte('\n')
		}
		if targets[len(t.Insts)] {
			fmt.Fprintf(&b, "L%d:\n", len(t.Insts))
		}
		b.WriteString("end\n")
	}
	return b.String()
}

// fenceSugar reports whether the program's accesses to the distinguished
// fence location can be faithfully printed as the "fence"
// pseudo-instruction. Reparsing then re-derives the same LTS: the fence
// location is re-created (by name, last, as the parser always places it)
// and each "fence" desugars to the same FADD. That needs:
//
//   - the fence location to be last (the reparse appends it last, and any
//     other position would shift the indices of later locations);
//   - every access to it to be exactly the desugared shape — a scalar
//     FADD of constant 0;
//   - within each thread, all fences to share one scratch register that
//     nothing else reads or writes (the reparse binds them to a single
//     fresh register, so any other use would change meaning).
//
// Programs built by the parser or by fence.Apply satisfy all three; for
// anything else Format falls back to plain FADDs on a renamed scalar,
// which preserves the LTS and digest but not the location's fence role.
func fenceSugar(p *lang.Program) (lang.Loc, bool) {
	fl, ok := p.LocByName(FenceLoc)
	if !ok || int(fl) != len(p.Locs)-1 || p.Locs[fl].NA {
		return 0, false
	}
	for ti := range p.Threads {
		t := &p.Threads[ti]
		var scratch lang.Reg
		haveScratch := false
		var refs func(e *lang.Expr) bool
		refs = func(e *lang.Expr) bool {
			if e == nil {
				return false
			}
			if e.Kind == lang.EReg && e.Reg == scratch {
				return true
			}
			return refs(e.L) || refs(e.R)
		}
		// First pass: the threads' fence instructions must agree on one
		// scratch register.
		for ii := range t.Insts {
			in := &t.Insts[ii]
			if in.Kind == lang.IFADD && in.Mem.Index == nil && in.Mem.Base == fl {
				if in.E.Kind != lang.EConst || in.E.Const != 0 {
					return 0, false
				}
				if haveScratch && in.Reg != scratch {
					return 0, false
				}
				scratch, haveScratch = in.Reg, true
			}
		}
		// Second pass: nothing else may touch the fence location or the
		// scratch register.
		for ii := range t.Insts {
			in := &t.Insts[ii]
			if in.Kind == lang.IFADD && in.Mem.Index == nil && in.Mem.Base == fl {
				continue
			}
			if in.IsMem() && int(in.Mem.Base)+in.Mem.Size > int(fl) {
				return 0, false
			}
			if !haveScratch {
				continue
			}
			switch in.Kind {
			case lang.IAssign, lang.IRead, lang.IFADD, lang.IXCHG, lang.ICAS:
				if in.Reg == scratch {
					return 0, false
				}
			}
			if refs(in.E) || refs(in.ER) || refs(in.EW) || refs(in.Mem.Index) {
				return 0, false
			}
		}
	}
	return fl, true
}

// isIdent reports whether s lexes as a single identifier token, i.e. can
// appear after "program" in a listing.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
		case i > 0 && (c >= '0' && c <= '9' || c == '-'):
		default:
			return false
		}
	}
	return true
}
