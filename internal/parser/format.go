package parser

import (
	"fmt"
	"strings"

	"repro/internal/lang"
)

// Format pretty-prints a compiled program back to the concrete syntax this
// package parses. The listing is canonical rather than source-faithful:
// scalar locations are named x<loc>, arrays a<base>, threads t<index>,
// registers r<index>, and goto targets get labels L<pc>. Reparsing the
// result yields a program with the same labeled transition system — and
// therefore the same prog.CanonicalDigest — as the input (the digest's
// canonical register renumbering absorbs the index shuffle reparsing may
// introduce). rockerd relies on this to echo back a normalized listing of
// a cached program without storing the submitted source.
//
// Arrays are reconstructed from the instructions' memory operands: cells
// of a declared array are contiguous locations referenced through a
// MemRef with Size > 1. Locations never referenced that way (including
// cells of size-1 arrays, which compile to plain scalar accesses) are
// emitted as scalars; that changes the declaration style but not the LTS.
func Format(p *lang.Program) string {
	var b strings.Builder
	if isIdent(p.Name) {
		fmt.Fprintf(&b, "program %s\n", p.Name)
	}
	fmt.Fprintf(&b, "vals %d\n", p.ValCount)

	// base loc -> array size, recovered from the program's memory operands.
	arrays := map[lang.Loc]int{}
	for ti := range p.Threads {
		for ii := range p.Threads[ti].Insts {
			if m := p.Threads[ti].Insts[ii].Mem; m.Size > 1 {
				arrays[m.Base] = m.Size
			}
		}
	}
	for i := 0; i < len(p.Locs); {
		loc := lang.Loc(i)
		if size, ok := arrays[loc]; ok {
			if p.Locs[i].NA {
				fmt.Fprintf(&b, "na array a%d %d\n", i, size)
			} else {
				fmt.Fprintf(&b, "array a%d %d\n", i, size)
			}
			i += size
			continue
		}
		if p.Locs[i].NA {
			fmt.Fprintf(&b, "na x%d\n", i)
		} else {
			fmt.Fprintf(&b, "locs x%d\n", i)
		}
		i++
	}

	mem := func(m lang.MemRef) string {
		if _, ok := arrays[m.Base]; ok && m.Size > 1 {
			return fmt.Sprintf("a%d[%s]", m.Base, m.Index.String())
		}
		return fmt.Sprintf("x%d", m.Base)
	}

	for ti := range p.Threads {
		t := &p.Threads[ti]
		fmt.Fprintf(&b, "\nthread t%d\n", ti)
		targets := map[int]bool{}
		for ii := range t.Insts {
			if t.Insts[ii].Kind == lang.IGoto {
				targets[t.Insts[ii].Target] = true
			}
		}
		for ii := range t.Insts {
			if targets[ii] {
				fmt.Fprintf(&b, "L%d:\n", ii)
			}
			in := &t.Insts[ii]
			b.WriteString("  ")
			switch in.Kind {
			case lang.IAssign:
				fmt.Fprintf(&b, "r%d := %s", in.Reg, in.E.String())
			case lang.IGoto:
				if in.E.Kind == lang.EConst && in.E.Const == 1 {
					fmt.Fprintf(&b, "goto L%d", in.Target)
				} else {
					fmt.Fprintf(&b, "if %s goto L%d", in.E.String(), in.Target)
				}
			case lang.IWrite:
				fmt.Fprintf(&b, "%s := %s", mem(in.Mem), in.E.String())
			case lang.IRead:
				fmt.Fprintf(&b, "r%d := %s", in.Reg, mem(in.Mem))
			case lang.IFADD:
				fmt.Fprintf(&b, "r%d := FADD(%s, %s)", in.Reg, mem(in.Mem), in.E.String())
			case lang.IXCHG:
				fmt.Fprintf(&b, "r%d := XCHG(%s, %s)", in.Reg, mem(in.Mem), in.E.String())
			case lang.ICAS:
				fmt.Fprintf(&b, "r%d := CAS(%s, %s, %s)", in.Reg, mem(in.Mem), in.ER.String(), in.EW.String())
			case lang.IWait:
				fmt.Fprintf(&b, "wait(%s = %s)", mem(in.Mem), in.E.String())
			case lang.IBCAS:
				fmt.Fprintf(&b, "BCAS(%s, %s, %s)", mem(in.Mem), in.ER.String(), in.EW.String())
			case lang.IAssert:
				fmt.Fprintf(&b, "assert %s", in.E.String())
			}
			b.WriteByte('\n')
		}
		if targets[len(t.Insts)] {
			fmt.Fprintf(&b, "L%d:\n", len(t.Insts))
		}
		b.WriteString("end\n")
	}
	return b.String()
}

// isIdent reports whether s lexes as a single identifier token, i.e. can
// appear after "program" in a listing.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
		case i > 0 && (c >= '0' && c <= '9' || c == '-'):
		default:
			return false
		}
	}
	return true
}
