package parser_test

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/parser"
)

func TestParseBasics(t *testing.T) {
	p, err := parser.Parse(`
# a demo program
program demo
vals 5
locs x y
na d
array buf 2

thread t1
  r := 1 + 2 * 3
L:
  x := r
  r2 := y
  if r2 = 0 goto L
  r3 := FADD(x, 1)
  r4 := CAS(x, 0, 1)
  r5 := XCHG(y, 2)
  wait(x = 2)
  BCAS(y, 1, 0)
  buf[r] := 3
  r6 := buf[r2]
  d := 1
  r7 := d
  assert r7 = 1
  skip
  goto L
end

thread t2
  y := 1
end
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if p.Name != "demo" || p.ValCount != 5 {
		t.Errorf("header parsed wrong: %s vals=%d", p.Name, p.ValCount)
	}
	// locs: x, y, d, buf[0], buf[1] = 5
	if p.NumLocs() != 5 {
		t.Errorf("NumLocs = %d, want 5", p.NumLocs())
	}
	if d, ok := p.LocByName("d"); !ok || !p.Locs[d].NA {
		t.Errorf("d should be a non-atomic location")
	}
	if p.NumThreads() != 2 {
		t.Fatalf("NumThreads = %d", p.NumThreads())
	}
	t1 := p.Threads[0]
	kinds := []lang.InstKind{
		lang.IAssign, lang.IWrite, lang.IRead, lang.IGoto, lang.IFADD,
		lang.ICAS, lang.IXCHG, lang.IWait, lang.IBCAS, lang.IWrite,
		lang.IRead, lang.IWrite, lang.IRead, lang.IAssert, lang.IAssign, lang.IGoto,
	}
	if len(t1.Insts) != len(kinds) {
		t.Fatalf("thread t1 has %d instructions, want %d:\n%s", len(t1.Insts), len(kinds), p)
	}
	for i, k := range kinds {
		if t1.Insts[i].Kind != k {
			t.Errorf("inst %d kind = %v, want %v (%s)", i, t1.Insts[i].Kind, k, &t1.Insts[i])
		}
	}
	// Label L resolves to instruction 1 (the write to x).
	if t1.Insts[3].Target != 1 || t1.Insts[15].Target != 1 {
		t.Errorf("label resolution wrong: %d, %d", t1.Insts[3].Target, t1.Insts[15].Target)
	}
}

func TestParseFenceDesugar(t *testing.T) {
	p := parser.MustParse(`
program f
vals 2
locs x
thread a
  x := 1
  fence
end
thread b
  fence
  r := x
end
`)
	fl, ok := p.LocByName(parser.FenceLoc)
	if !ok {
		t.Fatalf("fence location not declared")
	}
	for ti := range p.Threads {
		found := false
		for _, in := range p.Threads[ti].Insts {
			if in.Kind == lang.IFADD && in.Mem.Base == fl {
				found = true
				if v, isConst := in.E.IsConst(); !isConst || v != 0 {
					t.Errorf("fence FADD increment should be constant 0")
				}
			}
		}
		if !found {
			t.Errorf("thread %d: no desugared fence found", ti)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	p := parser.MustParse(`
program e
vals 8
locs x
thread t
  r := 1 + 2 * 3
  x := r
  r2 := 2 * 3 % 4
  r3 := (1 + 2) * 2
  r4 := r = 7 && r2 = 2
  r5 := !(r4 = 0) || 0 > 1
  x := r4 + r5
end
`)
	ins := p.Threads[0].Insts
	phi := make([]lang.Val, p.Threads[0].NumRegs)
	for _, in := range ins {
		if in.Kind == lang.IAssign {
			phi[in.Reg] = in.E.Eval(phi, p.ValCount)
		}
	}
	want := []lang.Val{7, 2, 6, 1, 1}
	for i, w := range want {
		if phi[i] != w {
			t.Errorf("r%d = %d, want %d", i+1, phi[i], w)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for name, src := range map[string]string{
		"unknown decl":    "program p\nfoo bar\n",
		"unterminated":    "program p\nlocs x\nthread t\n  x := 1\n",
		"dup label":       "program p\nlocs x\nthread t\nL:\nL:\n  x := 1\nend\n",
		"undefined label": "program p\nlocs x\nthread t\n  goto NOPE\nend\n",
		"dup loc":         "program p\nlocs x x\nthread t\n  x := 1\nend\n",
		"loc in expr":     "program p\nlocs x y\nthread t\n  x := y + 1\nend\n",
		"bad vals":        "program p\nvals 1\nlocs x\nthread t\n  x := 0\nend\n",
		"stray char":      "program p\nlocs x\nthread t\n  x := 1 ?\nend\n",
		"bad array size":  "program p\narray a 0\nthread t\n  skip\nend\n",
		"missing paren":   "program p\nlocs x\nthread t\n  r := CAS(x, 0, 1\nend\n",
		"value too large": "program p\nvals 3\nlocs x\nthread t\n  x := 7\nend\n",
		"array no index":  "program p\narray a 2\nthread t\n  r := a\nend\n",
	} {
		if _, err := parser.Parse(src); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestParseErrorsHaveLineNumbers(t *testing.T) {
	_, err := parser.Parse("program p\nlocs x\nthread t\n  goto NOPE\nend\n")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error should cite line 4: %v", err)
	}
}
