package parser_test

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/parser"
)

// positionsSrc exercises every statement shape the parser stamps
// positions on: plain accesses, RMWs, fences, waits, arrays, branches,
// and labels.
const positionsSrc = `program positions
vals 4
locs x y
na d
array buf 2

thread left
d := 1
buf[0] := 2
x := 1
fence
r1 := FADD(y, 1)
end

thread right
RETRY:
r2 := x
if r2 = 0 goto RETRY
wait(y = 1)
r3 := CAS(x, 1, 2)
r4 := buf[r3]
assert r4 != 3
end
`

// TestFormatRoundTripPositions pins that instruction positions survive
// parser.Format round-trips: Format output reparses with every
// instruction anchored to its own line of the listing, and a second
// round-trip is a fixpoint (same text, same positions). Diagnostics on
// a normalized listing (e.g. rockerd echoing a canonical program) stay
// line-accurate because of this.
func TestFormatRoundTripPositions(t *testing.T) {
	p, err := parser.Parse(positionsSrc)
	if err != nil {
		t.Fatal(err)
	}
	checkPositions(t, "original", p)

	s1 := parser.Format(p)
	p1, err := parser.Parse(s1)
	if err != nil {
		t.Fatalf("Format output does not reparse: %v\n%s", err, s1)
	}
	checkPositions(t, "round-trip 1", p1)

	s2 := parser.Format(p1)
	if s2 != s1 {
		t.Errorf("Format is not a fixpoint:\n--- first\n%s\n--- second\n%s", s1, s2)
	}
	p2, err := parser.Parse(s2)
	if err != nil {
		t.Fatal(err)
	}
	checkPositions(t, "round-trip 2", p2)

	for ti := range p1.Threads {
		in1, in2 := p1.Threads[ti].Insts, p2.Threads[ti].Insts
		if len(in1) != len(in2) {
			t.Fatalf("thread %d: %d vs %d instructions", ti, len(in1), len(in2))
		}
		for pc := range in1 {
			if in1[pc].Line != in2[pc].Line || in1[pc].Col != in2[pc].Col {
				t.Errorf("thread %d pc %d: position drifted across round-trip: %d:%d vs %d:%d",
					ti, pc, in1[pc].Line, in1[pc].Col, in2[pc].Line, in2[pc].Col)
			}
		}
	}
}

// checkPositions asserts every instruction carries a non-zero position
// and that lines are strictly increasing within a thread (each
// instruction sits on its own source line).
func checkPositions(t *testing.T, stage string, p *lang.Program) {
	t.Helper()
	for ti := range p.Threads {
		prev := 0
		for pc := range p.Threads[ti].Insts {
			in := &p.Threads[ti].Insts[pc]
			if in.Line == 0 || in.Col == 0 {
				t.Errorf("%s: thread %d pc %d has no position (%d:%d)", stage, ti, pc, in.Line, in.Col)
			}
			if in.Line <= prev {
				t.Errorf("%s: thread %d pc %d line %d not after previous line %d",
					stage, ti, pc, in.Line, prev)
			}
			prev = in.Line
		}
	}
}
