package parser

import "fmt"

// Error is a structured parse error: a 1-based source position and a
// message. Every error produced by the lexer and parser proper is an
// *Error (retrievable with errors.As), so callers — the rockerd service's
// machine-readable 400 responses in particular — can point at the
// offending line:column instead of re-parsing an error string. Validation
// errors raised by lang.Program.Validate after parsing carry no position.
type Error struct {
	Line int    // 1-based source line
	Col  int    // 1-based column (first byte of the offending token)
	Msg  string // human-readable description, without the position
}

func (e *Error) Error() string {
	return fmt.Sprintf("line %d:%d: %s", e.Line, e.Col, e.Msg)
}
