package parser

import (
	"errors"
	"testing"
)

// TestStructuredErrors feeds a corpus of malformed programs through Parse
// and checks that every failure is a *Error carrying the position of the
// offending token, not just a prose message.
func TestStructuredErrors(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		line, col int
	}{
		{"stray amp", "vals 4\nlocs x\nthread p\n  r0 := 1 & 2\nend\n", 4, 11},
		{"stray pipe", "vals 4\nlocs x\nthread p\n  r0 := 1 | 2\nend\n", 4, 11},
		{"bad char", "vals 4\nlocs $x\n", 2, 6},
		{"unknown decl", "vals 4\nglobals x\n", 2, 1},
		{"vals range", "vals 99\n", 1, 6},
		{"dup loc", "locs x\nlocs y x\n", 2, 8},
		{"loc vs array", "array b 2\nlocs b\n", 2, 6},
		{"dup array", "array b 2\narray b 3\n", 2, 7},
		{"array size", "array b 99\n", 1, 9},
		{"unknown loc", "vals 4\nlocs x\nthread p\n  r0 := FADD(y, 1)\nend\n", 4, 14},
		{"undefined label", "locs x\nthread p\n  goto nowhere\nend\n", 3, 8},
		{"dup label", "locs x\nthread p\nL:\nL:\n  skip\nend\n", 4, 1},
		{"missing goto", "locs x\nthread p\n  if 1 jump L\nend\n", 3, 8},
		{"wait not eq", "locs x\nthread p\n  wait(x != 1)\nend\n", 3, 10},
		{"unterminated thread", "locs x\nthread p\n  x := 1\n", 4, 1},
		{"trailing junk", "locs x\nthread p\n  x := 1 1\nend\n", 3, 10},
		{"reserved fence loc", "locs __fence\nthread p\n  fence\nend\n", 1, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse accepted malformed input")
			}
			var pe *Error
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, not *parser.Error: %v", err, err)
			}
			if pe.Line != tc.line || pe.Col != tc.col {
				t.Errorf("position = %d:%d, want %d:%d (%v)", pe.Line, pe.Col, tc.line, tc.col, err)
			}
			if pe.Msg == "" {
				t.Errorf("empty message")
			}
		})
	}
}
