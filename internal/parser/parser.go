package parser

import (
	"fmt"

	"repro/internal/lang"
)

// FenceLoc is the name of the distinguished location added when a program
// uses the "fence" pseudo-instruction. Per Example 3.6 of the paper, an
// SC fence is an FADD(f, 0) on a location f that is otherwise unused, and
// all fences must target the same location.
const FenceLoc = "__fence"

// arrayInfo records a declared array.
type arrayInfo struct {
	base lang.Loc
	size int
	na   bool
}

// parser holds parsing state.
type parser struct {
	toks []token
	pos  int

	prog    *lang.Program
	arrays  map[string]arrayInfo
	locIdx  map[string]lang.Loc
	valMax  int
	hasProg bool

	// per-thread state
	regIdx   map[string]lang.Reg
	regNames []string
	labels   map[string]int
	pending  []pendingJump // gotos to resolve at end of thread
	insts    []lang.Inst

	usedFence bool
	fenceDecl token // declaration token of a user loc named FenceLoc, if any
}

type pendingJump struct {
	inst  int
	label string
	tok   token // the label token, for error positions
}

// Parse parses a program source. The returned program has been validated.
func Parse(src string) (*lang.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:   toks,
		prog:   &lang.Program{ValCount: 4},
		arrays: map[string]arrayInfo{},
		locIdx: map[string]lang.Loc{},
	}
	if err := p.parseTop(); err != nil {
		return nil, err
	}
	if err := p.prog.Validate(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

// ParseLenient parses a program source without running the program-level
// validation pass. The result may violate lang.Program invariants (e.g.
// constants at or above the declared value bound) and must not be fed to
// the verifier; it exists so that "rocker vet" can inspect and report on
// programs that Parse would reject outright, with real source positions.
func ParseLenient(src string) (*lang.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:   toks,
		prog:   &lang.Program{ValCount: 4},
		arrays: map[string]arrayInfo{},
		locIdx: map[string]lang.Loc{},
	}
	if err := p.parseTop(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

// MustParse is Parse that panics on error; intended for the embedded corpus
// and tests.
func MustParse(src string) *lang.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t token, format string, args ...any) error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipNewlines() {
	for p.cur().kind == tNewline {
		p.pos++
	}
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, p.errf(t, "expected %s, got %q", what, t.text)
	}
	return t, nil
}

func (p *parser) endOfLine() error {
	t := p.next()
	if t.kind != tNewline && t.kind != tEOF {
		return p.errf(t, "unexpected %q at end of statement", t.text)
	}
	return nil
}

func (p *parser) parseTop() error {
	for {
		p.skipNewlines()
		t := p.cur()
		if t.kind == tEOF {
			break
		}
		if t.kind != tIdent {
			return p.errf(t, "expected declaration, got %q", t.text)
		}
		switch t.text {
		case "program":
			p.pos++
			name, err := p.expect(tIdent, "program name")
			if err != nil {
				return err
			}
			p.prog.Name = name.text
			if err := p.endOfLine(); err != nil {
				return err
			}
		case "vals":
			p.pos++
			num, err := p.expect(tNum, "value count")
			if err != nil {
				return err
			}
			n := atoi(num.text)
			if n < 2 || n > 64 {
				return p.errf(num, "vals must be in [2,64]")
			}
			p.prog.ValCount = n
			if err := p.endOfLine(); err != nil {
				return err
			}
		case "locs":
			p.pos++
			if err := p.parseLocList(false); err != nil {
				return err
			}
		case "na":
			p.pos++
			if p.cur().kind == tIdent && p.cur().text == "array" {
				p.pos++
				if err := p.parseArray(true); err != nil {
					return err
				}
				continue
			}
			if err := p.parseLocList(true); err != nil {
				return err
			}
		case "array":
			p.pos++
			if err := p.parseArray(false); err != nil {
				return err
			}
		case "thread":
			p.pos++
			if err := p.parseThread(); err != nil {
				return err
			}
		default:
			return p.errf(t, "unknown declaration %q", t.text)
		}
	}
	if p.usedFence {
		if _, dup := p.locIdx[FenceLoc]; dup {
			return p.errf(p.fenceDecl, "location name %s is reserved for fences", FenceLoc)
		}
		p.locIdx[FenceLoc] = lang.Loc(len(p.prog.Locs))
		p.prog.Locs = append(p.prog.Locs, lang.LocInfo{Name: FenceLoc})
		// Patch the placeholder fence references now that the location
		// index is known.
		fl := p.locIdx[FenceLoc]
		for ti := range p.prog.Threads {
			th := &p.prog.Threads[ti]
			for ii := range th.Insts {
				in := &th.Insts[ii]
				if in.Kind == lang.IFADD && in.Mem.Size == fencePlaceholder {
					in.Mem = lang.MemRef{Base: fl, Size: 1}
				}
			}
		}
	}
	return nil
}

// fencePlaceholder marks MemRefs of desugared fences before the fence
// location index is allocated.
const fencePlaceholder = -1

func (p *parser) parseLocList(na bool) error {
	count := 0
	for p.cur().kind == tIdent {
		t := p.next()
		if err := p.declareLoc(t, na); err != nil {
			return err
		}
		count++
	}
	if count == 0 {
		return p.errf(p.cur(), "expected location names")
	}
	return p.endOfLine()
}

func (p *parser) declareLoc(t token, na bool) error {
	name := t.text
	if _, dup := p.locIdx[name]; dup {
		return p.errf(t, "duplicate location %q", name)
	}
	if _, dup := p.arrays[name]; dup {
		return p.errf(t, "location %q conflicts with array", name)
	}
	if name == FenceLoc {
		p.fenceDecl = t
	}
	p.locIdx[name] = lang.Loc(len(p.prog.Locs))
	p.prog.Locs = append(p.prog.Locs, lang.LocInfo{Name: name, NA: na})
	return nil
}

func (p *parser) parseArray(na bool) error {
	name, err := p.expect(tIdent, "array name")
	if err != nil {
		return err
	}
	num, err := p.expect(tNum, "array size")
	if err != nil {
		return err
	}
	size := atoi(num.text)
	if size < 1 || size > 32 {
		return p.errf(num, "array size must be in [1,32]")
	}
	if _, dup := p.arrays[name.text]; dup {
		return p.errf(name, "duplicate array %q", name.text)
	}
	if _, dup := p.locIdx[name.text]; dup {
		return p.errf(name, "array %q conflicts with location", name.text)
	}
	base := lang.Loc(len(p.prog.Locs))
	for i := 0; i < size; i++ {
		p.prog.Locs = append(p.prog.Locs, lang.LocInfo{Name: fmt.Sprintf("%s[%d]", name.text, i), NA: na})
	}
	p.arrays[name.text] = arrayInfo{base: base, size: size, na: na}
	return p.endOfLine()
}

func (p *parser) parseThread() error {
	name, err := p.expect(tIdent, "thread name")
	if err != nil {
		return err
	}
	if err := p.endOfLine(); err != nil {
		return err
	}
	p.regIdx = map[string]lang.Reg{}
	p.regNames = nil
	p.labels = map[string]int{}
	p.pending = nil
	p.insts = nil
	for {
		p.skipNewlines()
		t := p.cur()
		if t.kind == tEOF {
			return p.errf(t, "unterminated thread %q (missing 'end')", name.text)
		}
		if t.kind == tIdent && t.text == "end" {
			p.pos++
			if err := p.endOfLine(); err != nil {
				return err
			}
			break
		}
		if err := p.parseStmt(); err != nil {
			return err
		}
	}
	// Resolve labels.
	for _, pj := range p.pending {
		target, ok := p.labels[pj.label]
		if !ok {
			return p.errf(pj.tok, "undefined label %q", pj.label)
		}
		p.insts[pj.inst].Target = target
	}
	p.prog.Threads = append(p.prog.Threads, lang.SeqProg{
		Name:     name.text,
		Insts:    p.insts,
		NumRegs:  len(p.regNames),
		RegNames: p.regNames,
	})
	return nil
}

// reg returns the register index for name, allocating it if new.
func (p *parser) reg(name string) lang.Reg {
	if r, ok := p.regIdx[name]; ok {
		return r
	}
	r := lang.Reg(len(p.regNames))
	p.regIdx[name] = r
	p.regNames = append(p.regNames, name)
	return r
}

// isMemName reports whether name denotes a location or array.
func (p *parser) isMemName(name string) bool {
	if _, ok := p.locIdx[name]; ok {
		return true
	}
	_, ok := p.arrays[name]
	return ok
}

// parseMemRef parses a location or array-cell reference starting at the
// given identifier token (already consumed).
func (p *parser) parseMemRef(id token) (lang.MemRef, error) {
	if ai, ok := p.arrays[id.text]; ok {
		if _, err := p.expect(tLBrack, "'['"); err != nil {
			return lang.MemRef{}, err
		}
		idx, err := p.parseExpr()
		if err != nil {
			return lang.MemRef{}, err
		}
		if _, err := p.expect(tRBrack, "']'"); err != nil {
			return lang.MemRef{}, err
		}
		return lang.MemRef{Base: ai.base, Size: ai.size, Index: idx}, nil
	}
	if x, ok := p.locIdx[id.text]; ok {
		return lang.MemRef{Base: x, Size: 1}, nil
	}
	return lang.MemRef{}, p.errf(id, "unknown location %q", id.text)
}

func (p *parser) emit(in lang.Inst, t token) {
	in.Line = t.line
	in.Col = t.col
	p.insts = append(p.insts, in)
}

func (p *parser) parseStmt() error {
	t := p.next()
	if t.kind != tIdent {
		return p.errf(t, "expected statement, got %q", t.text)
	}
	// Label?
	if p.cur().kind == tColon {
		p.pos++
		if _, dup := p.labels[t.text]; dup {
			return p.errf(t, "duplicate label %q", t.text)
		}
		p.labels[t.text] = len(p.insts)
		// A label may be followed by a statement on the same line, or
		// stand alone.
		if p.cur().kind == tNewline || p.cur().kind == tEOF {
			p.pos++
			return nil
		}
		return p.parseStmt()
	}
	switch t.text {
	case "if":
		cond, err := p.parseExpr()
		if err != nil {
			return err
		}
		kw, err := p.expect(tIdent, "'goto'")
		if err != nil || kw.text != "goto" {
			return p.errf(kw, "expected 'goto' after if condition")
		}
		lbl, err := p.expect(tIdent, "label")
		if err != nil {
			return err
		}
		p.pending = append(p.pending, pendingJump{len(p.insts), lbl.text, lbl})
		p.emit(lang.Inst{Kind: lang.IGoto, E: cond}, t)
		return p.endOfLine()
	case "goto":
		lbl, err := p.expect(tIdent, "label")
		if err != nil {
			return err
		}
		p.pending = append(p.pending, pendingJump{len(p.insts), lbl.text, lbl})
		p.emit(lang.Inst{Kind: lang.IGoto, E: lang.Const(1)}, t)
		return p.endOfLine()
	case "wait":
		if _, err := p.expect(tLParen, "'('"); err != nil {
			return err
		}
		id, err := p.expect(tIdent, "location")
		if err != nil {
			return err
		}
		mem, err := p.parseMemRef(id)
		if err != nil {
			return err
		}
		eq := p.next()
		if eq.kind != tOp || eq.text != "=" {
			return p.errf(eq, "expected '=' in wait")
		}
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return err
		}
		p.emit(lang.Inst{Kind: lang.IWait, Mem: mem, E: e}, t)
		return p.endOfLine()
	case "BCAS", "bcas":
		mem, er, ew, err := p.parseCASArgs()
		if err != nil {
			return err
		}
		p.emit(lang.Inst{Kind: lang.IBCAS, Mem: mem, ER: er, EW: ew}, t)
		return p.endOfLine()
	case "assert":
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		p.emit(lang.Inst{Kind: lang.IAssert, E: e}, t)
		return p.endOfLine()
	case "fence":
		p.usedFence = true
		r := p.reg("__fr")
		p.emit(lang.Inst{
			Kind: lang.IFADD,
			Reg:  r,
			Mem:  lang.MemRef{Size: fencePlaceholder},
			E:    lang.Const(0),
		}, t)
		return p.endOfLine()
	case "skip":
		r := p.reg("__skip")
		p.emit(lang.Inst{Kind: lang.IAssign, Reg: r, E: lang.Const(0)}, t)
		return p.endOfLine()
	}
	// Assignment forms: "<ident> := ..." or "<array>[e] := ...".
	if p.isMemName(t.text) {
		mem, err := p.parseMemRef(t)
		if err != nil {
			return err
		}
		if _, err := p.expect(tAssign, "':='"); err != nil {
			return err
		}
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		p.emit(lang.Inst{Kind: lang.IWrite, Mem: mem, E: e}, t)
		return p.endOfLine()
	}
	// Register target.
	if _, err := p.expect(tAssign, "':='"); err != nil {
		return err
	}
	r := p.reg(t.text)
	rhs := p.cur()
	if rhs.kind == tIdent {
		switch rhs.text {
		case "FADD", "fadd", "XCHG", "xchg":
			kind := lang.IFADD
			if rhs.text == "XCHG" || rhs.text == "xchg" {
				kind = lang.IXCHG
			}
			p.pos++
			if _, err := p.expect(tLParen, "'('"); err != nil {
				return err
			}
			id, err := p.expect(tIdent, "location")
			if err != nil {
				return err
			}
			mem, err := p.parseMemRef(id)
			if err != nil {
				return err
			}
			if _, err := p.expect(tComma, "','"); err != nil {
				return err
			}
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			if _, err := p.expect(tRParen, "')'"); err != nil {
				return err
			}
			p.emit(lang.Inst{Kind: kind, Reg: r, Mem: mem, E: e}, t)
			return p.endOfLine()
		case "CAS", "cas":
			p.pos++
			mem, er, ew, err := p.parseCASArgs()
			if err != nil {
				return err
			}
			p.emit(lang.Inst{Kind: lang.ICAS, Reg: r, Mem: mem, ER: er, EW: ew}, t)
			return p.endOfLine()
		}
		if p.isMemName(rhs.text) {
			p.pos++
			mem, err := p.parseMemRef(rhs)
			if err != nil {
				return err
			}
			p.emit(lang.Inst{Kind: lang.IRead, Reg: r, Mem: mem}, t)
			return p.endOfLine()
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return err
	}
	p.emit(lang.Inst{Kind: lang.IAssign, Reg: r, E: e}, t)
	return p.endOfLine()
}

// parseCASArgs parses "(x, eR, eW)".
func (p *parser) parseCASArgs() (lang.MemRef, *lang.Expr, *lang.Expr, error) {
	if _, err := p.expect(tLParen, "'('"); err != nil {
		return lang.MemRef{}, nil, nil, err
	}
	id, err := p.expect(tIdent, "location")
	if err != nil {
		return lang.MemRef{}, nil, nil, err
	}
	mem, err := p.parseMemRef(id)
	if err != nil {
		return lang.MemRef{}, nil, nil, err
	}
	if _, err := p.expect(tComma, "','"); err != nil {
		return lang.MemRef{}, nil, nil, err
	}
	er, err := p.parseExpr()
	if err != nil {
		return lang.MemRef{}, nil, nil, err
	}
	if _, err := p.expect(tComma, "','"); err != nil {
		return lang.MemRef{}, nil, nil, err
	}
	ew, err := p.parseExpr()
	if err != nil {
		return lang.MemRef{}, nil, nil, err
	}
	if _, err := p.expect(tRParen, "')'"); err != nil {
		return lang.MemRef{}, nil, nil, err
	}
	return mem, er, ew, nil
}

// Expression grammar (lowest to highest precedence):
//
//	or:   and ("||" and)*
//	and:  cmp ("&&" cmp)*
//	cmp:  add (("=" | "!=" | "<" | "<=" | ">" | ">=") add)?
//	add:  mul (("+" | "-") mul)*
//	mul:  unary (("*" | "%") unary)*
//	unary: "!" unary | primary
//	primary: number | register | "(" or ")"
func (p *parser) parseExpr() (*lang.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (*lang.Expr, error) {
	e, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tOp && p.cur().text == "||" {
		p.pos++
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		e = lang.Bin(lang.OpOr, e, r)
	}
	return e, nil
}

func (p *parser) parseAnd() (*lang.Expr, error) {
	e, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tOp && p.cur().text == "&&" {
		p.pos++
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		e = lang.Bin(lang.OpAnd, e, r)
	}
	return e, nil
}

var cmpOps = map[string]lang.BinOp{
	"=": lang.OpEq, "!=": lang.OpNe,
	"<": lang.OpLt, "<=": lang.OpLe, ">": lang.OpGt, ">=": lang.OpGe,
}

func (p *parser) parseCmp() (*lang.Expr, error) {
	e, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tOp {
		if op, ok := cmpOps[p.cur().text]; ok {
			p.pos++
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return lang.Bin(op, e, r), nil
		}
	}
	return e, nil
}

func (p *parser) parseAdd() (*lang.Expr, error) {
	e, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tOp && (p.cur().text == "+" || p.cur().text == "-") {
		op := lang.OpAdd
		if p.cur().text == "-" {
			op = lang.OpSub
		}
		p.pos++
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		e = lang.Bin(op, e, r)
	}
	return e, nil
}

func (p *parser) parseMul() (*lang.Expr, error) {
	e, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tOp && (p.cur().text == "*" || p.cur().text == "%") {
		op := lang.OpMul
		if p.cur().text == "%" {
			op = lang.OpMod
		}
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		e = lang.Bin(op, e, r)
	}
	return e, nil
}

func (p *parser) parseUnary() (*lang.Expr, error) {
	if p.cur().kind == tOp && p.cur().text == "!" {
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return lang.Not(e), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (*lang.Expr, error) {
	t := p.next()
	switch t.kind {
	case tNum:
		return lang.Const(lang.Val(atoi(t.text))), nil
	case tIdent:
		if p.isMemName(t.text) {
			return nil, p.errf(t, "location %q used in expression; load it into a register first", t.text)
		}
		return lang.RegE(p.reg(t.text)), nil
	case tLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf(t, "expected expression, got %q", t.text)
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
		if n > 1<<20 {
			return 1 << 20
		}
	}
	return n
}
