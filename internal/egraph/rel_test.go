package egraph_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/egraph"
)

func randomRel(rng *rand.Rand, n int, density int) *egraph.Rel {
	r := egraph.NewRel(n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if rng.Intn(density) == 0 {
				r.Set(a, b)
			}
		}
	}
	return r
}

// TestTransCloseProperties checks the relation algebra the consistency
// predicates are built on: closure is idempotent, transitive, and
// contains the original relation.
func TestTransCloseProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		r := randomRel(rng, n, 3)
		orig := egraph.NewRel(n)
		orig.Union(r)
		r.TransClose()
		// Contains the original.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if orig.Has(a, b) && !r.Has(a, b) {
					return false
				}
			}
		}
		// Transitive.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				for c := 0; c < n; c++ {
					if r.Has(a, b) && r.Has(b, c) && !r.Has(a, c) {
						return false
					}
				}
			}
		}
		// Idempotent.
		again := egraph.NewRel(n)
		again.Union(r)
		again.TransClose()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if again.Has(a, b) != r.Has(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDerivedRelationShapes checks typing invariants of the derived
// relations on random RAG-generated graphs: fr goes from reads to writes
// of the same location; mo relates same-location writes; hb contains po;
// hbSC contains hb, mo and fr.
func TestDerivedRelationShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 150; iter++ {
		g := randomRAGRun(rng, 1+rng.Intn(3), 1+rng.Intn(3), 3, 3+rng.Intn(10))
		n := g.N()
		po, hb, mo, fr, hbSC := g.PO(), g.HB(), g.MORel(), g.FR(), g.HBSC()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if fr.Has(a, b) {
					if !g.IsReadEvent(a) || !g.IsWriteEvent(b) || g.Events[a].Lab.Loc != g.Events[b].Lab.Loc {
						t.Fatalf("iter %d: malformed fr edge e%d→e%d", iter, a, b)
					}
				}
				if mo.Has(a, b) {
					if !g.IsWriteEvent(a) || !g.IsWriteEvent(b) || g.Events[a].Lab.Loc != g.Events[b].Lab.Loc {
						t.Fatalf("iter %d: malformed mo edge e%d→e%d", iter, a, b)
					}
				}
				if po.Has(a, b) && !hb.Has(a, b) {
					t.Fatalf("iter %d: po ⊄ hb at e%d→e%d", iter, a, b)
				}
				if (hb.Has(a, b) || mo.Has(a, b) || fr.Has(a, b)) && !hbSC.Has(a, b) {
					t.Fatalf("iter %d: hb∪mo∪fr ⊄ hbSC at e%d→e%d", iter, a, b)
				}
			}
		}
	}
}
