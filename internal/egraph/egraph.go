// Package egraph implements C/C++11-style execution graphs (§4 of the
// paper) and the memory subsystems defined over them: the free-graph system
// FG (Definition 4.5), the SC graph system SCG (§4.1), the RA graph system
// RAG (§4.2), and the §6 extension RAG+NA that additionally detects races
// on non-atomic locations.
//
// An execution graph is a set of events together with a reads-from mapping
// rf and a per-location modification (total) order mo (Definition 4.3).
// The derived relations po (sequenced-before), hb (happens-before), fr
// (from-read) and hbSC (SC-happens-before, after Shasha & Snir) are
// computed on demand. Graphs here are small — they back the verifier's
// property tests, the declarative cross-validation of the decision
// procedure (Theorem 5.1), and the replay of the paper's Figure 4 — so the
// implementation favours clarity (explicit relation matrices) over scale;
// the scalable path of the verifier never materializes graphs at all
// (that is the whole point of §5's SCM monitor).
package egraph

import (
	"fmt"
	"strings"

	"repro/internal/lang"
)

// InitTid is the pseudo thread identifier of initialization events
// (the paper's ⊥).
const InitTid = -1

// Event is a node of an execution graph: ⟨τ, s, l⟩ with a thread
// identifier, a per-thread serial number, and a label (Definition 4.1).
// Initialization events have Tid == InitTid and Sn == 0.
type Event struct {
	Tid int
	Sn  int
	Lab lang.Label
}

// IsInit reports whether the event is an initialization event.
func (e Event) IsInit() bool { return e.Tid == InitTid }

// Graph is an execution graph G = ⟨E, rf, mo⟩. Events are addressed by
// dense ids; the initialization events occupy ids 0..NumLocs-1 (one W(x,0)
// per location, Definition 4.2). MO stores, per location, the mo-ordered
// list of write event ids; RF stores, per event, the id of the write the
// event reads from (or -1).
type Graph struct {
	NumLocs int
	Events  []Event
	RF      []int
	MO      [][]int
	// NA marks non-atomic locations for the §6 happens-before (only rf
	// edges on release/acquire locations synchronize). A nil NA means all
	// locations are release/acquire.
	NA []bool
}

// NewGraph returns the initial execution graph G0 (Definition 4.5): one
// initialization write per location and empty rf and mo... mo in our
// representation lists the initialization write of each location as the
// (trivially) first write; this is equivalent to the paper's formulation,
// where mo-edges to later writes appear as the writes do.
func NewGraph(numLocs int, na []bool) *Graph {
	g := &Graph{NumLocs: numLocs, NA: na}
	for x := 0; x < numLocs; x++ {
		g.Events = append(g.Events, Event{Tid: InitTid, Sn: 0, Lab: lang.WriteLab(lang.Loc(x), 0)})
		g.RF = append(g.RF, -1)
		g.MO = append(g.MO, []int{x})
	}
	return g
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		NumLocs: g.NumLocs,
		Events:  append([]Event(nil), g.Events...),
		RF:      append([]int(nil), g.RF...),
		MO:      make([][]int, len(g.MO)),
		NA:      g.NA,
	}
	for x := range g.MO {
		c.MO[x] = append([]int(nil), g.MO[x]...)
	}
	return c
}

// N returns the number of events.
func (g *Graph) N() int { return len(g.Events) }

// IsWriteEvent reports whether event id is a write or RMW.
func (g *Graph) IsWriteEvent(id int) bool { return g.Events[id].Lab.IsWrite() }

// IsReadEvent reports whether event id is a read or RMW.
func (g *Graph) IsReadEvent(id int) bool { return g.Events[id].Lab.IsRead() }

// IsRMWEvent reports whether event id is an RMW.
func (g *Graph) IsRMWEvent(id int) bool { return g.Events[id].Lab.Typ == lang.LRMW }

// moPos returns the position of write id in its location's mo list, or -1.
func (g *Graph) moPos(id int) int {
	for i, w := range g.MO[g.Events[id].Lab.Loc] {
		if w == id {
			return i
		}
	}
	return -1
}

// MOBefore reports ⟨a, b⟩ ∈ G.mo.
func (g *Graph) MOBefore(a, b int) bool {
	ea, eb := g.Events[a], g.Events[b]
	if !ea.Lab.IsWrite() || !eb.Lab.IsWrite() || ea.Lab.Loc != eb.Lab.Loc {
		return false
	}
	pa, pb := g.moPos(a), g.moPos(b)
	return pa >= 0 && pb >= 0 && pa < pb
}

// WMax returns the mo-maximal write to x (G.wmax_x).
func (g *Graph) WMax(x lang.Loc) int {
	l := g.MO[x]
	return l[len(l)-1]
}

// POBefore reports ⟨a, b⟩ ∈ G.po: initialization events precede all
// non-initialization events; same-thread events are ordered by serial
// number (§4, sequenced-before).
func (g *Graph) POBefore(a, b int) bool {
	ea, eb := g.Events[a], g.Events[b]
	if ea.IsInit() {
		return !eb.IsInit()
	}
	return !eb.IsInit() && ea.Tid == eb.Tid && ea.Sn < eb.Sn
}

// Rel is a binary relation over the graph's events as an adjacency matrix.
type Rel struct {
	n int
	m []bool
}

// NewRel returns an empty relation over n events.
func NewRel(n int) *Rel { return &Rel{n: n, m: make([]bool, n*n)} }

// Set adds ⟨a, b⟩ to the relation.
func (r *Rel) Set(a, b int) { r.m[a*r.n+b] = true }

// Has reports ⟨a, b⟩ ∈ r.
func (r *Rel) Has(a, b int) bool { return r.m[a*r.n+b] }

// Union adds all edges of o to r.
func (r *Rel) Union(o *Rel) {
	for i := range r.m {
		r.m[i] = r.m[i] || o.m[i]
	}
}

// TransClose replaces r with its transitive closure (Floyd–Warshall).
func (r *Rel) TransClose() {
	n := r.n
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !r.m[i*n+k] {
				continue
			}
			for j := 0; j < n; j++ {
				if r.m[k*n+j] {
					r.m[i*n+j] = true
				}
			}
		}
	}
}

// Irreflexive reports whether the relation has no self-loop.
func (r *Rel) Irreflexive() bool {
	for i := 0; i < r.n; i++ {
		if r.m[i*r.n+i] {
			return false
		}
	}
	return true
}

// PO returns G.po as a relation.
func (g *Graph) PO() *Rel {
	r := NewRel(g.N())
	for a := 0; a < g.N(); a++ {
		for b := 0; b < g.N(); b++ {
			if a != b && g.POBefore(a, b) {
				r.Set(a, b)
			}
		}
	}
	return r
}

// MORel returns G.mo as a relation.
func (g *Graph) MORel() *Rel {
	r := NewRel(g.N())
	for _, ws := range g.MO {
		for i := 0; i < len(ws); i++ {
			for j := i + 1; j < len(ws); j++ {
				r.Set(ws[i], ws[j])
			}
		}
	}
	return r
}

// RFRel returns G.rf as a relation. If the graph has non-atomic locations,
// pass raOnly to restrict to rf edges on release/acquire locations (the §6
// happens-before uses only those).
func (g *Graph) RFRel(raOnly bool) *Rel {
	r := NewRel(g.N())
	for e, w := range g.RF {
		if w < 0 {
			continue
		}
		if raOnly && g.NA != nil && g.NA[g.Events[e].Lab.Loc] {
			continue
		}
		r.Set(w, e)
	}
	return r
}

// HB returns G.hb = (po ∪ rf)⁺, where, per §6, only rf edges on
// release/acquire locations synchronize when the graph has non-atomic
// locations.
func (g *Graph) HB() *Rel {
	r := g.PO()
	r.Union(g.RFRel(true))
	r.TransClose()
	return r
}

// FR returns G.fr = (rf⁻¹ ; mo) \ id (from-read, §5).
func (g *Graph) FR() *Rel {
	r := NewRel(g.N())
	mo := g.MORel()
	for e, w := range g.RF {
		if w < 0 {
			continue
		}
		for b := 0; b < g.N(); b++ {
			if b != e && mo.Has(w, b) {
				r.Set(e, b)
			}
		}
	}
	return r
}

// HBSC returns G.hbSC = (hb ∪ mo ∪ fr)⁺ (§5).
func (g *Graph) HBSC() *Rel {
	r := g.HB()
	r.Union(g.MORel())
	r.Union(g.FR())
	r.TransClose()
	return r
}

// SCConsistent reports whether the graph is SC-consistent: hbSC is
// irreflexive (Definition A.7).
func (g *Graph) SCConsistent() bool { return g.HBSC().Irreflexive() }

// RAConsistent reports whether the graph is RA-consistent
// (Definition A.12): hb, mo;hb, fr;hb and fr;mo are all irreflexive.
func (g *Graph) RAConsistent() bool {
	hb := g.HB()
	if !hb.Irreflexive() {
		return false
	}
	mo, fr := g.MORel(), g.FR()
	n := g.N()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if mo.Has(a, b) && hb.Has(b, a) {
				return false
			}
			if fr.Has(a, b) && (hb.Has(b, a) || mo.Has(b, a)) {
				return false
			}
		}
	}
	return true
}

// RAConsistentAlt implements the equivalent characterization of
// Lemma A.13: (hb|loc ∪ mo ∪ fr)⁺ is irreflexive, where hb|loc restricts
// hb to same-location event pairs. Kept separate from RAConsistent for the
// property test of their equivalence.
func (g *Graph) RAConsistentAlt() bool {
	hb := g.HB()
	r := NewRel(g.N())
	for a := 0; a < g.N(); a++ {
		for b := 0; b < g.N(); b++ {
			if hb.Has(a, b) && g.Events[a].Lab.Loc == g.Events[b].Lab.Loc {
				r.Set(a, b)
			}
		}
	}
	r.Union(g.MORel())
	r.Union(g.FR())
	r.TransClose()
	return r.Irreflexive()
}

// String renders the graph compactly for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	for id, e := range g.Events {
		fmt.Fprintf(&b, "e%d: ", id)
		if e.IsInit() {
			fmt.Fprintf(&b, "init %s", e.Lab)
		} else {
			fmt.Fprintf(&b, "t%d.%d %s", e.Tid, e.Sn, e.Lab)
		}
		if g.RF[id] >= 0 {
			fmt.Fprintf(&b, " rf:e%d", g.RF[id])
		}
		b.WriteByte('\n')
	}
	for x, ws := range g.MO {
		if len(ws) > 1 {
			fmt.Fprintf(&b, "mo(x%d): %v\n", x, ws)
		}
	}
	return b.String()
}
