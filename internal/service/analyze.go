package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/frontend"
	"repro/internal/model"
	"repro/internal/prog"
	"repro/internal/verkey"
)

// AnalyzeRequest is the JSON body of POST /v1/analyze: Go source in,
// robustness findings out. A text/plain body is also accepted and
// treated as {"source": <body>}.
type AnalyzeRequest struct {
	// Source is a single Go file (used when Files is empty).
	Source string `json:"source,omitempty"`
	// Filename names Source in findings (default "input.go").
	Filename string `json:"filename,omitempty"`
	// Files is a multi-file package: file name -> Go source.
	Files map[string]string `json:"files,omitempty"`
	// Models are the verdict models (default ["ra"]; any registry mode).
	Models []string `json:"models,omitempty"`
	// MaxStates and TimeoutMs clamp against the server's bounds exactly
	// like /v1/verify.
	MaxStates int   `json:"maxStates,omitempty"`
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// NoRepair suppresses fence-repair suggestions on non-robust units.
	NoRepair bool `json:"noRepair,omitempty"`
}

// AnalyzeFinding is one diagnostic anchored to a Go source position.
type AnalyzeFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Severity string `json:"severity"` // "error" or "warning"
	Message  string `json:"message"`
}

// AnalyzeDecline reports a concurrency unit the frontend refused to
// translate, with the construct that stopped it.
type AnalyzeDecline struct {
	Name      string `json:"name"`
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Construct string `json:"construct"`
	Reason    string `json:"reason"`
}

// AnalyzeUnit is the verdict for one translated concurrency unit.
type AnalyzeUnit struct {
	Name   string `json:"name"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Digest string `json:"digest"`
	// Lit is the unit's translated .lit listing (with source comments).
	Lit string `json:"lit"`
	// Verdicts maps each requested model to its robustness verdict.
	Verdicts map[string]bool `json:"verdicts"`
	// Cached maps models whose verdict was served from a cache to the
	// hit's source ("memory" or "disk"). Robust cached verdicts skip
	// re-exploration; non-robust ones re-run so findings carry a witness.
	Cached   map[string]string `json:"cached,omitempty"`
	Findings []AnalyzeFinding  `json:"findings,omitempty"`
}

// AnalyzeResponse is the 200 body of POST /v1/analyze.
type AnalyzeResponse struct {
	Package  string           `json:"package"`
	Units    []AnalyzeUnit    `json:"units"`
	Declined []AnalyzeDecline `json:"declined,omitempty"`
}

// handleAnalyze lifts Go source through internal/frontend and lints
// every translated concurrency unit, synchronously (translation is
// static, and the per-unit exploration respects the clamped bounds and
// deadline). Per-unit, per-model verdicts memoize in the same verdict
// caches as /v1/verify under their own verkey bit: a digest-equal Go
// unit (alpha-renamed, reformatted) hits the cache on its next analyze.
//
//	200 — analysis ran; units carry verdicts and findings, declines
//	      carry per-construct reasons
//	400 — body or Go source malformed (type errors included)
//	413 — body exceeds the source size limit
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxSourceBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > s.cfg.MaxSourceBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.cfg.MaxSourceBytes)
		return
	}
	var req AnalyzeRequest
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
	} else {
		req.Source = string(body)
	}
	if len(req.Models) == 0 {
		if ms := r.URL.Query().Get("models"); ms != "" {
			req.Models = strings.Split(ms, ",")
		} else {
			req.Models = []string{ModeRA}
		}
	}
	for _, m := range req.Models {
		if !validMode(m) {
			writeError(w, http.StatusBadRequest, "unknown model %q (supported: %s)", m, model.ModeList())
			return
		}
	}
	files := req.Files
	if len(files) == 0 {
		if strings.TrimSpace(req.Source) == "" {
			writeError(w, http.StatusBadRequest, "empty Go source")
			return
		}
		name := req.Filename
		if name == "" {
			name = "input.go"
		}
		files = map[string]string{name: req.Source}
	}

	pkg, err := frontend.TranslateSources(files)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	maxStates, timeout := s.clampLimits(VerifyRequest{MaxStates: req.MaxStates, TimeoutMs: req.TimeoutMs})
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	resp := AnalyzeResponse{Package: pkg.PkgName, Units: []AnalyzeUnit{}}
	for _, d := range pkg.Declined {
		resp.Declined = append(resp.Declined, AnalyzeDecline{
			Name: d.Name, File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Construct: d.Construct, Reason: d.Reason,
		})
	}

	for _, u := range pkg.Units {
		au := AnalyzeUnit{
			Name: u.Name, File: u.Pos.Filename, Line: u.Pos.Line,
			Digest:   prog.CanonicalDigest(u.Prog).String(),
			Lit:      frontend.EmitLit(u),
			Verdicts: map[string]bool{},
		}

		// Cache pass: a robust cached verdict is final (a robust unit has
		// no witness to regenerate); a non-robust one re-runs below so the
		// response carries witnesses and repair suggestions.
		var run []string
		for _, m := range req.Models {
			key := verkey.Key(prog.CanonicalDigest(u.Prog), m, maxStates, true, false, true)
			if res, source := s.cachedResult(key); res != nil && res.Robust {
				au.Verdicts[m] = true
				if au.Cached == nil {
					au.Cached = map[string]string{}
				}
				au.Cached[m] = source
				continue
			}
			run = append(run, m)
		}

		var findings []frontend.Finding
		if len(run) > 0 {
			start := time.Now()
			rep, err := frontend.LintUnit(u, frontend.LintOptions{
				Models:    run,
				MaxStates: maxStates,
				Workers:   s.cfg.Workers,
				NoRepair:  req.NoRepair,
				Ctx:       ctx,
			})
			if err != nil {
				writeError(w, http.StatusBadRequest, "%s: %v", u.Name, err)
				return
			}
			elapsed := float64(time.Since(start).Microseconds()) / 1000
			for _, m := range run {
				au.Verdicts[m] = rep.Verdicts[m]
				key := verkey.Key(prog.CanonicalDigest(u.Prog), m, maxStates, true, false, true)
				s.memoize(key, &Result{Mode: m, Robust: rep.Verdicts[m], ElapsedMs: elapsed}, true)
			}
			findings = rep.Findings
		} else {
			findings = frontend.StaticFindings(u)
		}
		for _, f := range findings {
			au.Findings = append(au.Findings, AnalyzeFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
				Severity: f.Severity, Message: f.Message,
			})
		}
		resp.Units = append(resp.Units, au)
	}
	sort.Slice(resp.Units, func(i, j int) bool { return resp.Units[i].Name < resp.Units[j].Name })
	writeJSON(w, http.StatusOK, resp)
}
