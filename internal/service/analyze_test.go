package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/service"
)

// goMP is the message-passing idiom: robust, race-free, one unit.
const goMP = `//rocker:vals 4
package mp

import "sync/atomic"

var data int32
var flag atomic.Int32

func producer() {
	data = 1
	flag.Store(1)
}

func consumer() {
	for flag.Load() != 1 {
	}
	if data != 1 {
		panic("lost message")
	}
}

func run() {
	go producer()
	go consumer()
}
`

// goSB is the store-buffering shape: not robust, with an NA race on cs.
const goSB = `//rocker:vals 3
package sb

import "sync/atomic"

var x, y atomic.Int32
var cs int32

func left() {
	x.Store(1)
	if y.Load() == 0 {
		cs = 1
	}
}

func right() {
	y.Store(1)
	if x.Load() == 0 {
		cs = 2
	}
}

func run() {
	go left()
	go right()
}
`

func postAnalyze(t *testing.T, url string, req service.AnalyzeRequest) (*http.Response, service.AnalyzeResponse, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var ar service.AnalyzeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(out.Bytes(), &ar); err != nil {
			t.Fatalf("bad analyze body: %v\n%s", err, out.Bytes())
		}
	}
	return resp, ar, out.Bytes()
}

func TestAnalyzeRobustAndCached(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxJobs: 2, Workers: 2})

	req := service.AnalyzeRequest{Source: goMP, Filename: "mp.go", Models: []string{"ra", "sra"}}
	resp, ar, body := postAnalyze(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("code=%d body=%s", resp.StatusCode, body)
	}
	if ar.Package != "mp" || len(ar.Units) != 1 {
		t.Fatalf("unexpected response: %s", body)
	}
	u := ar.Units[0]
	if u.Name != "run" || !u.Verdicts["ra"] || !u.Verdicts["sra"] {
		t.Errorf("unit = %+v, want robust run unit", u)
	}
	if len(u.Cached) != 0 {
		t.Errorf("first analyze should not hit the cache: %+v", u.Cached)
	}
	for _, f := range u.Findings {
		if f.Severity == "error" {
			t.Errorf("robust unit has error finding: %+v", f)
		}
	}
	if !strings.Contains(u.Lit, "wait(flag = 1)") {
		t.Errorf("lit listing missing blocking wait:\n%s", u.Lit)
	}

	// Alpha-renamed source is digest-equal: the verdict must come from
	// the cache this time.
	renamed := strings.NewReplacer(
		"data", "payload", "flag", "ready",
		"producer", "sender", "consumer", "receiver",
	).Replace(goMP)
	resp2, ar2, body2 := postAnalyze(t, ts.URL, service.AnalyzeRequest{Source: renamed, Models: []string{"ra", "sra"}})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("code=%d body=%s", resp2.StatusCode, body2)
	}
	u2 := ar2.Units[0]
	if u2.Digest != u.Digest {
		t.Errorf("alpha-renaming changed the digest: %s vs %s", u2.Digest, u.Digest)
	}
	if u2.Cached["ra"] != service.CachedMemory || u2.Cached["sra"] != service.CachedMemory {
		t.Errorf("renamed unit should hit the memory cache: %+v", u2.Cached)
	}
}

func TestAnalyzeNonRobustFindings(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxJobs: 2, Workers: 2})

	resp, ar, body := postAnalyze(t, ts.URL, service.AnalyzeRequest{Source: goSB, Filename: "sb.go"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("code=%d body=%s", resp.StatusCode, body)
	}
	u := ar.Units[0]
	if u.Verdicts["ra"] {
		t.Fatalf("store buffering should not be robust: %s", body)
	}
	var witness, repair bool
	for _, f := range u.Findings {
		if f.File != "sb.go" || f.Line == 0 {
			t.Errorf("finding not anchored to Go source: %+v", f)
		}
		if strings.Contains(f.Message, "witness:") {
			witness = true
		}
		if strings.Contains(f.Message, "suggested fix:") {
			repair = true
		}
	}
	if !witness || !repair {
		t.Errorf("want witness and repair findings, got: %s", body)
	}

	// A non-robust cached verdict re-runs so findings stay populated;
	// the response still reports the cache hit.
	resp2, ar2, body2 := postAnalyze(t, ts.URL, service.AnalyzeRequest{Source: goSB, Filename: "sb.go"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("code=%d body=%s", resp2.StatusCode, body2)
	}
	u2 := ar2.Units[0]
	if u2.Verdicts["ra"] {
		t.Errorf("cached rerun flipped the verdict")
	}
	if len(u2.Findings) == 0 {
		t.Errorf("cached rerun lost the findings: %s", body2)
	}
}

func TestAnalyzeDeclinesAndErrors(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxJobs: 2, Workers: 2})

	// Channels are declined with a reason, not mistranslated.
	chSrc := `package p
func run() {
	ch := make(chan int)
	go func() { ch <- 1 }()
	<-ch
}`
	resp, ar, body := postAnalyze(t, ts.URL, service.AnalyzeRequest{Source: chSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("code=%d body=%s", resp.StatusCode, body)
	}
	if len(ar.Units) != 0 || len(ar.Declined) != 1 {
		t.Fatalf("want 1 decline, got: %s", body)
	}
	d := ar.Declined[0]
	if d.Name != "run" || d.Construct == "" || d.Line == 0 {
		t.Errorf("decline lacks construct/position: %+v", d)
	}

	// A Go type error is a 400, not a 500.
	resp2, _, _ := postAnalyze(t, ts.URL, service.AnalyzeRequest{Source: "package p\nfunc f() { undefined() }"})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("type error: code=%d, want 400", resp2.StatusCode)
	}

	// Empty body is a 400.
	resp3, _, _ := postAnalyze(t, ts.URL, service.AnalyzeRequest{})
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("empty source: code=%d, want 400", resp3.StatusCode)
	}

	// text/plain bodies work like /v1/verify.
	resp4, err := http.Post(ts.URL+"/v1/analyze?models=ra", "text/plain", strings.NewReader(goMP))
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	if resp4.StatusCode != http.StatusOK {
		t.Errorf("text/plain analyze: code=%d, want 200", resp4.StatusCode)
	}
}
