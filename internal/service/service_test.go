package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/litmus"
	"repro/internal/service"
)

// sbVariant is the corpus SB program rewritten with different thread,
// register and label spelling, extra comments, and shuffled whitespace —
// digest-equal to litmus "SB", so the second submission must hit the
// verdict cache.
const sbVariant = `
# store buffering, renamed
program store-buffer
vals 2
locs x y

thread left
top:
	x := 1
	readY := y   // read after write
end

thread right
	y := 1
	readX := x
end
`

func newTestServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	srv, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil && !errors.Is(err, service.ErrDrainTimeout) {
			t.Errorf("drain: %v", err)
		}
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, req service.VerifyRequest) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func corpusSource(t *testing.T, name string) string {
	t.Helper()
	e, err := litmus.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return e.Source
}

// TestVerifyEndToEnd runs the e2e smoke from the acceptance criteria: SB
// is non-robust, MP is robust, and an SB resubmission — rewritten modulo
// names and whitespace — is served from the cache.
func TestVerifyEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxJobs: 2, Workers: 2})

	verify := func(src string) (int, service.Snapshot) {
		resp, body := postJSON(t, ts.URL, service.VerifyRequest{Source: src, Wait: true})
		var snap service.Snapshot
		if resp.StatusCode == http.StatusOK && json.Unmarshal(body, &snap) != nil {
			t.Fatalf("bad body: %s", body)
		}
		return resp.StatusCode, snap
	}

	if code, snap := verify(corpusSource(t, "SB")); code != http.StatusOK ||
		snap.Status != service.StatusDone || snap.Result == nil || snap.Result.Robust {
		t.Fatalf("SB: code=%d snapshot=%+v, want done and not robust", code, snap)
	}
	if code, snap := verify(corpusSource(t, "MP")); code != http.StatusOK ||
		snap.Status != service.StatusDone || snap.Result == nil || !snap.Result.Robust {
		t.Fatalf("MP: code=%d snapshot=%+v, want done and robust", code, snap)
	}

	// The rewritten SB must short-circuit through the verdict cache.
	resp, body := postJSON(t, ts.URL, service.VerifyRequest{Source: sbVariant, Wait: true})
	var cached struct {
		Cached bool            `json:"cached"`
		Result *service.Result `json:"result"`
	}
	if err := json.Unmarshal(body, &cached); err != nil {
		t.Fatalf("bad body: %s", body)
	}
	if resp.StatusCode != http.StatusOK || !cached.Cached || cached.Result == nil || cached.Result.Robust {
		t.Fatalf("SB variant: code=%d body=%s, want cached non-robust verdict", resp.StatusCode, body)
	}
}

// TestStaticPruneOption exercises the staticPrune request knob: a
// conflict-free program is discharged by the static certificate with zero
// states, the verdict matches the unpruned run, and the two runs memoize
// under distinct cache keys (their state counts differ, so sharing a key
// would serve the wrong numbers).
func TestStaticPruneOption(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxJobs: 2, Workers: 2})

	verify := func(src string, prune bool) *service.Result {
		resp, body := postJSON(t, ts.URL, service.VerifyRequest{Source: src, Wait: true, StaticPrune: prune})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("code=%d body=%s", resp.StatusCode, body)
		}
		var snap service.Snapshot
		if err := json.Unmarshal(body, &snap); err == nil && snap.Result != nil {
			return snap.Result
		}
		// Cached responses have a different envelope.
		var cached struct {
			Result *service.Result `json:"result"`
		}
		if err := json.Unmarshal(body, &cached); err != nil || cached.Result == nil {
			t.Fatalf("bad body: %s", body)
		}
		return cached.Result
	}

	src := corpusSource(t, "CoRR")
	base := verify(src, false)
	if !base.Robust || base.Certificate || base.States == 0 {
		t.Fatalf("unpruned CoRR: %+v, want robust via exploration", base)
	}
	pruned := verify(src, true)
	if !pruned.Robust || !pruned.Certificate || pruned.States != 0 {
		t.Fatalf("pruned CoRR: %+v, want static certificate with 0 states", pruned)
	}

	// Re-submitting the unpruned request must still see the exploration
	// numbers, not the certificate result.
	again := verify(src, false)
	if again.Certificate || again.States != base.States {
		t.Fatalf("unpruned resubmission: %+v, want the cached exploration result %+v", again, base)
	}
}

// TestStateModes exercises the state-robustness engines through the
// service: SB reaches SC-unreachable program states under both RA and
// TSO; MP does not.
func TestStateModes(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxJobs: 2, Workers: 2})
	cases := []struct {
		prog, mode string
		robust     bool
	}{
		{"SB", service.ModeStateRA, false},
		{"SB", service.ModeStateTSO, false},
		{"MP", service.ModeStateRA, true},
		{"MP", service.ModeStateTSO, true},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL, service.VerifyRequest{
			Source: corpusSource(t, c.prog), Mode: c.mode, Wait: true,
		})
		var snap service.Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatalf("%s/%s: bad body %s", c.prog, c.mode, body)
		}
		if resp.StatusCode != http.StatusOK || snap.Status != service.StatusDone ||
			snap.Result == nil || snap.Result.Robust != c.robust {
			t.Errorf("%s/%s: code=%d snapshot=%+v, want robust=%v",
				c.prog, c.mode, resp.StatusCode, snap, c.robust)
		}
	}
}

// TestParseError400 checks that malformed programs come back as 400 with
// the structured line:column position.
func TestParseError400(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	resp, body := postJSON(t, ts.URL, service.VerifyRequest{
		Source: "vals 4\nlocs x\nthread p\n  r0 := 1 | 2\nend\n",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("code = %d, want 400 (%s)", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
		Line  int    `json:"line"`
		Col   int    `json:"col"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Line != 4 || e.Col != 11 || e.Error == "" {
		t.Errorf("error = %+v, want position 4:11", e)
	}
}

// bigSource is a Figure-7 row whose state space runs for minutes — a job
// that is reliably still in flight when the tests cancel, delete, or
// saturate around it.
func bigSource(t *testing.T) string { return corpusSource(t, "lamport2-3-ra") }

// submitAsync posts without Wait and returns the job id from the 202.
func submitAsync(t *testing.T, url string, req service.VerifyRequest) string {
	t.Helper()
	resp, body := postJSON(t, url, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("code = %d, want 202 (%s)", resp.StatusCode, body)
	}
	var snap service.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID == "" || snap.Status == "" {
		t.Fatalf("bad snapshot %s", body)
	}
	return snap.ID
}

func getSnapshot(t *testing.T, url, id string) service.Snapshot {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap service.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func waitStatus(t *testing.T, url, id string, want ...string) service.Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := getSnapshot(t, url, id)
		for _, w := range want {
			if snap.Status == w {
				return snap
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %q, want one of %v", id, snap.Status, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdmission429 saturates a 1-worker, 1-slot queue and checks the
// third concurrent submission is rejected with 429 and a Retry-After
// hint while the first two survive.
func TestAdmission429(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxJobs: 1, MaxQueue: 1, Workers: 1})
	big := bigSource(t)
	// The three sources are digest-equal (comments are discarded), but
	// that cannot short-circuit admission: only completed verdicts enter
	// the cache, and none of these jobs ever finishes.
	id1 := submitAsync(t, ts.URL, service.VerifyRequest{Source: big + "# v1\n"})
	waitStatus(t, ts.URL, id1, service.StatusRunning)
	id2 := submitAsync(t, ts.URL, service.VerifyRequest{Source: big + "# v2\n"})

	resp, body := postJSON(t, ts.URL, service.VerifyRequest{Source: big + "# v3\n"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submission: code = %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}

	for _, id := range []string{id1, id2} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if _, err := http.DefaultClient.Do(req); err != nil {
			t.Fatal(err)
		}
		waitStatus(t, ts.URL, id, service.StatusCanceled)
	}
}

// TestDeadlineCanceled submits a long job with a tiny deadline and checks
// it lands on status canceled — never a verdict.
func TestDeadlineCanceled(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxJobs: 1, Workers: 2})
	resp, body := postJSON(t, ts.URL, service.VerifyRequest{
		Source: bigSource(t), TimeoutMs: 100, Wait: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("code = %d (%s)", resp.StatusCode, body)
	}
	var snap service.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Status != service.StatusCanceled || snap.Result != nil {
		t.Fatalf("snapshot = %+v, want canceled with no result", snap)
	}
	if !strings.Contains(snap.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", snap.Error)
	}
}

// TestDeleteCancelsRunning checks DELETE against a running job: prompt
// cancellation, terminal status canceled, and no verdict.
func TestDeleteCancelsRunning(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxJobs: 1, Workers: 2})
	id := submitAsync(t, ts.URL, service.VerifyRequest{Source: bigSource(t)})
	waitStatus(t, ts.URL, id, service.StatusRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	snap := waitStatus(t, ts.URL, id, service.StatusCanceled)
	if snap.Result != nil {
		t.Fatalf("canceled job carries a result: %+v", snap)
	}
}

// TestStream reads the NDJSON progress stream of a long job, cancels it
// mid-stream, and checks the lines are well-formed, progress advances,
// and the final line is terminal.
func TestStream(t *testing.T) {
	_, ts := newTestServer(t, service.Config{
		MaxJobs: 1, Workers: 2, StreamInterval: 5 * time.Millisecond,
	})
	id := submitAsync(t, ts.URL, service.VerifyRequest{Source: bigSource(t)})
	waitStatus(t, ts.URL, id, service.StatusRunning)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []service.Snapshot
	for sc.Scan() {
		var snap service.Snapshot
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, snap)
		if len(lines) == 3 {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
			if _, err := http.DefaultClient.Do(req); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 4 {
		t.Fatalf("got %d stream lines, want at least 4", len(lines))
	}
	last := lines[len(lines)-1]
	if last.Status != service.StatusCanceled {
		t.Errorf("final line status %q, want canceled", last.Status)
	}
	for i := 1; i < len(lines); i++ {
		if lines[i].States < lines[i-1].States {
			t.Errorf("states went backwards at line %d: %d -> %d", i, lines[i-1].States, lines[i].States)
		}
	}
}

// TestDrainGraceful checks the SIGTERM path: draining rejects new
// submissions with 503 while an in-flight job runs to completion and its
// verdict is preserved.
func TestDrainGraceful(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{MaxJobs: 1, Workers: 2})
	id := submitAsync(t, ts.URL, service.VerifyRequest{Source: corpusSource(t, "lamport2-ra")})

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()

	// New work is rejected as soon as draining begins.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := postJSON(t, ts.URL, service.VerifyRequest{Source: corpusSource(t, "SB")})
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions still accepted while draining")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := <-drained; err != nil {
		t.Fatalf("graceful drain: %v", err)
	}
	snap := getSnapshot(t, ts.URL, id)
	if snap.Status != service.StatusDone || snap.Result == nil || !snap.Result.Robust {
		t.Fatalf("in-flight job after drain: %+v, want completed robust verdict", snap)
	}
}

// TestDrainForced checks the drain deadline: a job that outlives it is
// force-canceled and Drain reports ErrDrainTimeout.
func TestDrainForced(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{MaxJobs: 1, Workers: 2})
	id := submitAsync(t, ts.URL, service.VerifyRequest{Source: bigSource(t)})
	waitStatus(t, ts.URL, id, service.StatusRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); !errors.Is(err, service.ErrDrainTimeout) {
		t.Fatalf("Drain = %v, want ErrDrainTimeout", err)
	}
	snap := getSnapshot(t, ts.URL, id)
	if snap.Status != service.StatusCanceled || snap.Result != nil {
		t.Fatalf("forced-drain job: %+v, want canceled without verdict", snap)
	}
}

// TestHealthzAndStats sanity-checks the operational endpoints.
func TestHealthzAndStats(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		OK bool `json:"ok"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !h.OK {
		t.Fatalf("healthz: %d ok=%v", resp.StatusCode, h.OK)
	}

	postJSON(t, ts.URL, service.VerifyRequest{Source: corpusSource(t, "SB"), Wait: true})
	resp2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st struct {
		Submitted   int64 `json:"submitted"`
		CacheMisses int64 `json:"cacheMisses"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 1 || st.CacheMisses != 1 {
		t.Errorf("stats after one submission: %+v", st)
	}
}

// TestJobNotFound checks 404s on the job endpoints.
func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/nope"},
		{http.MethodGet, "/v1/jobs/nope/stream"},
		{http.MethodDelete, "/v1/jobs/nope"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: code %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}

// TestReduceOption exercises the reduce request knob end to end: the
// reduced run must agree on the verdict while exploring strictly fewer
// states (seqlock has a symmetric reader pair and a read-only phase), the
// result must carry the reduction counters, and the two runs must memoize
// under distinct cache keys.
func TestReduceOption(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxJobs: 2, Workers: 2})

	verify := func(src string, reduce bool) *service.Result {
		resp, body := postJSON(t, ts.URL, service.VerifyRequest{Source: src, Wait: true, Reduce: reduce})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("code=%d body=%s", resp.StatusCode, body)
		}
		var snap service.Snapshot
		if err := json.Unmarshal(body, &snap); err == nil && snap.Result != nil {
			return snap.Result
		}
		var cached struct {
			Result *service.Result `json:"result"`
		}
		if err := json.Unmarshal(body, &cached); err != nil || cached.Result == nil {
			t.Fatalf("bad body: %s", body)
		}
		return cached.Result
	}

	src := corpusSource(t, "seqlock")
	base := verify(src, false)
	if !base.Robust || base.States == 0 {
		t.Fatalf("unreduced seqlock: %+v, want robust via exploration", base)
	}
	if base.AmpleHits != 0 || base.SleepSkips != 0 || base.SymmetryFolds != 0 {
		t.Fatalf("unreduced seqlock carries reduction counters: %+v", base)
	}
	red := verify(src, true)
	if !red.Robust || red.States >= base.States {
		t.Fatalf("reduced seqlock: %+v, want robust with < %d states", red, base.States)
	}
	if red.AmpleHits == 0 && red.SleepSkips == 0 && red.SymmetryFolds == 0 {
		t.Fatalf("reduced seqlock reports no reduction activity: %+v", red)
	}

	// Re-submitting the unreduced request must still see the full numbers.
	again := verify(src, false)
	if again.States != base.States {
		t.Fatalf("unreduced resubmission: %+v, want the cached full result %+v", again, base)
	}
}
