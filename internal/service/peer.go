package service

// Cluster-facing machinery: request forwarding to the digest's owning
// node, local proxy handles for forwarded jobs (so GET/DELETE/stream —
// and in particular cancellation — work against the node the client
// talked to), the /v1/steal handover, and the idle-node steal loop.
//
// Failure policy everywhere: a peer problem costs latency, never
// availability. Forwarding that exhausts its retries degrades to local
// verification; a thief that dies resolves the victim's job as failed
// after a grace period; a proxy whose owner vanished serves the last
// observed terminal state when it has one.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/prog"
	"repro/internal/staterobust"
	"repro/internal/verkey"
)

// netStats are the per-source counters behind /v1/stats: where verdicts
// came from and how much work moved between peers.
type netStats struct {
	memoryHits   atomic.Int64 // served from the in-memory LRU
	diskHits     atomic.Int64 // served from the persistent verdict store
	peerForwards atomic.Int64 // requests this node forwarded to an owner
	forwardFails atomic.Int64 // forwards that exhausted retries and degraded to local
	steals       atomic.Int64 // jobs this node stole from peers
	stolen       atomic.Int64 // jobs peers stole from this node's queue
	batchItems   atomic.Int64 // items processed via /v1/verify/batch
}

// peerBodyLimit bounds bodies read from peers (snapshots and verdicts are
// small; this is defense against a confused peer, not a tuning knob).
const peerBodyLimit = 4 << 20

// forwardVerify relays a validated verify request to the digest's owner.
// It returns true if a response was written (whatever its status); false
// means forwarding failed and the caller should verify locally.
func (s *Server) forwardVerify(w http.ResponseWriter, r *http.Request, owner cluster.Member, req VerifyRequest, d prog.Digest, key string, maxStates int, timeout time.Duration) bool {
	fr := VerifyRequest{
		Source:      req.Source,
		Mode:        req.Mode,
		TimeoutMs:   timeout.Milliseconds(),
		MaxStates:   maxStates,
		Wait:        req.Wait,
		StaticPrune: req.StaticPrune,
		Reduce:      req.Reduce,
	}
	body, err := json.Marshal(fr)
	if err != nil {
		return false
	}
	resp, err := s.cluster.Forward(r.Context(), owner, http.MethodPost, "/v1/verify", "application/json", body)
	if err != nil {
		s.nstats.forwardFails.Add(1)
		return false
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, peerBodyLimit))
	if err != nil {
		s.nstats.forwardFails.Add(1)
		return false
	}
	s.nstats.peerForwards.Add(1)
	w.Header().Set(cluster.OwnerHeader, owner.ID)

	if resp.StatusCode == http.StatusAccepted {
		// Async admission on the owner: register a local proxy handle so
		// the client keeps talking to this node (GET/DELETE/stream all
		// proxy through it, and DELETE propagates to the owner).
		var snap Snapshot
		if json.Unmarshal(data, &snap) == nil && snap.ID != "" {
			if pj := s.newProxyJob(owner, snap.ID, req.Mode, d, key); pj != nil {
				snap.ID = pj.id
				w.Header().Set("Location", "/v1/jobs/"+pj.id)
				writeJSON(w, http.StatusAccepted, snap)
				return true
			}
		}
	}
	if resp.StatusCode == http.StatusOK {
		// Replicate a completed verdict into the local LRU (not the disk
		// log — the owner persists it; memory replication just makes the
		// next lookup here instant).
		var peek struct {
			Cached bool    `json:"cached"`
			Status string  `json:"status"`
			Result *Result `json:"result"`
		}
		if json.Unmarshal(data, &peek) == nil && peek.Result != nil &&
			(peek.Cached || peek.Status == StatusDone) {
			s.cache.put(key, peek.Result)
		}
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(data)
	return true
}

// newProxyJob registers a local handle for a job admitted on a peer.
// Returns nil while draining.
func (s *Server) newProxyJob(owner cluster.Member, remoteID, mode string, d prog.Digest, key string) *job {
	ctx, cancel := context.WithCancelCause(context.Background())
	j := &job{
		mode:    mode,
		digest:  d,
		key:     key,
		remote:  &remoteRef{node: owner, id: remoteID},
		ctx:     ctx,
		cancel:  cancel,
		created: time.Now(),
		status:  StatusForwarded,
		done:    make(chan struct{}),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		cancel(errDrained)
		return nil
	}
	s.nextID++
	j.id = fmt.Sprintf("j%06d", s.nextID)
	s.jobs[j.id] = j
	return j
}

// observeRemote folds a remote snapshot into the local proxy handle. The
// first terminal observation copies status/result locally (so the handle
// outlives the owner), memoizes a completed verdict, and schedules the
// handle for retention eviction.
func (s *Server) observeRemote(j *job, snap Snapshot) {
	switch snap.Status {
	case StatusDone, StatusCanceled, StatusFailed:
	default:
		return
	}
	j.mu.Lock()
	if j.memoized {
		j.mu.Unlock()
		return
	}
	j.memoized = true
	j.status = snap.Status
	j.result = snap.Result
	j.err = snap.Error
	j.finished = time.Now()
	j.mu.Unlock()
	if snap.Status == StatusDone && snap.Result != nil {
		s.cache.put(j.key, snap.Result)
	}
	s.retire(j.id)
}

// localProxySnapshot is the proxy handle's own view, served when the
// owner is unreachable but a terminal state was already observed.
func (j *job) localProxySnapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID:     j.id,
		Status: j.status,
		Mode:   j.mode,
		Digest: j.digest.String(),
		Result: j.result,
		Error:  j.err,
	}
}

// proxyJobGet proxies GET /v1/jobs/{id} for a forwarded handle.
func (s *Server) proxyJobGet(w http.ResponseWriter, r *http.Request, j *job) {
	resp, err := s.cluster.Forward(r.Context(), j.remote.node, http.MethodGet, "/v1/jobs/"+j.remote.id, "", nil)
	if err == nil {
		defer resp.Body.Close()
		var snap Snapshot
		if resp.StatusCode == http.StatusOK &&
			json.NewDecoder(io.LimitReader(resp.Body, peerBodyLimit)).Decode(&snap) == nil {
			snap.ID = j.id
			s.observeRemote(j, snap)
			writeJSON(w, http.StatusOK, snap)
			return
		}
		err = fmt.Errorf("owner returned %s", resp.Status)
	}
	if snap := j.localProxySnapshot(); snap.Status != StatusForwarded {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	writeError(w, http.StatusBadGateway, "owner %s unreachable: %v", j.remote.node.ID, err)
}

// proxyJobDelete propagates DELETE /v1/jobs/{id} to the owner: the remote
// job is canceled there (not merely forgotten here), then the local
// handle mirrors the terminal state.
func (s *Server) proxyJobDelete(w http.ResponseWriter, r *http.Request, j *job) {
	resp, err := s.cluster.Forward(r.Context(), j.remote.node, http.MethodDelete, "/v1/jobs/"+j.remote.id, "", nil)
	if err != nil {
		writeError(w, http.StatusBadGateway,
			"cancel not propagated: owner %s unreachable: %v", j.remote.node.ID, err)
		return
	}
	defer resp.Body.Close()
	var snap Snapshot
	if resp.StatusCode == http.StatusOK &&
		json.NewDecoder(io.LimitReader(resp.Body, peerBodyLimit)).Decode(&snap) == nil {
		snap.ID = j.id
		s.observeRemote(j, snap)
		writeJSON(w, http.StatusOK, snap)
		return
	}
	writeError(w, http.StatusBadGateway, "cancel not propagated: owner %s returned %s",
		j.remote.node.ID, resp.Status)
}

// proxyJobStream proxies the NDJSON progress stream from the owner,
// rewriting job ids to the local handle.
func (s *Server) proxyJobStream(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	resp, err := s.cluster.Forward(r.Context(), j.remote.node, http.MethodGet, "/v1/jobs/"+j.remote.id+"/stream", "", nil)
	if err != nil {
		writeError(w, http.StatusBadGateway, "owner %s unreachable: %v", j.remote.node.ID, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		writeError(w, http.StatusBadGateway, "owner %s returned %s", j.remote.node.ID, resp.Status)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), peerBodyLimit)
	for sc.Scan() {
		var snap Snapshot
		if json.Unmarshal(sc.Bytes(), &snap) != nil {
			continue
		}
		snap.ID = j.id
		s.observeRemote(j, snap)
		if enc.Encode(snap) != nil {
			return
		}
		fl.Flush()
	}
}

// handleSteal hands one queued job over to an idle peer. 200 carries the
// handover payload; 204 means nothing is queued. The job stays registered
// here (clients keep polling this node); its terminal status arrives via
// POST /v1/jobs/{id}/result.
func (s *Server) handleSteal(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, "not clustered")
		return
	}
	thief := r.Header.Get(cluster.ForwardHeader)
	if thief == "" {
		thief = "unknown-peer"
	}
	for {
		var j *job
		select {
		case jj, ok := <-s.queue:
			if !ok {
				w.WriteHeader(http.StatusNoContent) // draining
				return
			}
			j = jj
		default:
			w.WriteHeader(http.StatusNoContent)
			return
		}
		j.mu.Lock()
		if j.status != StatusQueued { // canceled while queued: skip it
			j.mu.Unlock()
			continue
		}
		j.status = StatusRunning
		j.started = time.Now()
		j.stolenBy = thief
		timeout := j.timeout
		j.mu.Unlock()
		s.nstats.stolen.Add(1)

		// Lost-thief guard: if the thief never reports back, resolve the
		// job after its deadline plus a grace period instead of leaking a
		// forever-running handle.
		go func() {
			grace := timeout + time.Minute
			t := time.NewTimer(grace)
			defer t.Stop()
			select {
			case <-j.done:
			case <-t.C:
				j.finish(StatusFailed, nil, errLost.Error())
			}
		}()

		writeJSON(w, http.StatusOK, cluster.StolenJob{
			ID:          j.id,
			Source:      j.src,
			Mode:        j.mode,
			MaxStates:   j.maxStates,
			TimeoutMs:   timeout.Milliseconds(),
			StaticPrune: j.staticPrune,
			Reduce:      j.reduce,
		})
		return
	}
}

// handlePushResult lands a thief's terminal status on the stolen job.
// Idempotent against races with local cancellation: finish keeps the
// first terminal status.
func (s *Server) handlePushResult(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	var pr cluster.PushedResult
	if err := json.NewDecoder(io.LimitReader(r.Body, peerBodyLimit)).Decode(&pr); err != nil {
		writeError(w, http.StatusBadRequest, "decoding pushed result: %v", err)
		return
	}
	switch pr.Status {
	case StatusDone:
		var res Result
		if err := json.Unmarshal(pr.Result, &res); err != nil {
			writeError(w, http.StatusBadRequest, "decoding pushed verdict: %v", err)
			return
		}
		j.finish(StatusDone, &res, "")
	case StatusCanceled:
		msg := pr.Error
		if msg == "" {
			msg = "canceled on the stealing peer"
		}
		j.finish(StatusCanceled, nil, msg)
	case StatusFailed:
		j.finish(StatusFailed, nil, pr.Error)
	default:
		writeError(w, http.StatusBadRequest, "bad pushed status %q", pr.Status)
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// stealLoop polls peers for queued work while this node is idle: no
// queue, spare workers. One stolen job runs at a time — stealing is a
// gap-filler, not a second scheduler.
func (s *Server) stealLoop() {
	defer close(s.stealDone)
	t := time.NewTicker(s.cfg.StealInterval)
	defer t.Stop()
	rot := 0
	for {
		select {
		case <-s.stealStop:
			return
		case <-t.C:
		}
		if s.isDraining() {
			continue
		}
		queued, running := s.localLoad()
		if queued > 0 || running >= s.cfg.MaxJobs {
			continue
		}
		peers := s.cluster.Peers()
		if len(peers) == 0 {
			continue
		}
		rot++
		for i := 0; i < len(peers); i++ {
			m := peers[(rot+i)%len(peers)]
			spec, ok := s.trySteal(m)
			if ok {
				s.runStolen(m, spec)
				break
			}
		}
	}
}

// trySteal asks one peer for a queued job.
func (s *Server) trySteal(m cluster.Member) (cluster.StolenJob, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := s.cluster.Forward(ctx, m, http.MethodPost, "/v1/steal", "", nil)
	if err != nil {
		return cluster.StolenJob{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return cluster.StolenJob{}, false
	}
	var spec cluster.StolenJob
	if err := json.NewDecoder(io.LimitReader(resp.Body, peerBodyLimit)).Decode(&spec); err != nil ||
		spec.ID == "" || spec.Source == "" {
		return cluster.StolenJob{}, false
	}
	return spec, true
}

// runStolen verifies a stolen job locally and pushes the terminal status
// back to the victim. The verdict is also memoized here: the thief did
// the work, it may as well remember the answer.
func (s *Server) runStolen(victim cluster.Member, spec cluster.StolenJob) {
	s.nstats.steals.Add(1)
	push := cluster.PushedResult{Status: StatusFailed}

	p, err := parser.Parse(spec.Source)
	if err == nil {
		err = p.Validate()
	}
	if err != nil {
		push.Error = fmt.Sprintf("stolen source does not parse: %v", err)
	} else {
		j := &job{
			mode:        spec.Mode,
			prg:         p,
			maxStates:   spec.MaxStates,
			workers:     s.cfg.Workers,
			staticPrune: spec.StaticPrune,
			reduce:      spec.Reduce,
		}
		timeout := time.Duration(spec.TimeoutMs) * time.Millisecond
		if timeout <= 0 {
			timeout = s.cfg.DefaultTimeout
		}
		ctx, cancel := context.WithTimeoutCause(context.Background(), timeout, context.DeadlineExceeded)
		// Stolen work must not outlive the steal loop: Drain waits for it
		// via stopSteal, so a shutdown cancels the exploration promptly.
		watcherDone := make(chan struct{})
		go func() {
			select {
			case <-s.stealStop:
				cancel()
			case <-watcherDone:
			}
		}()
		res, verr := j.verify(ctx)
		cancel()
		close(watcherDone)
		switch {
		case verr == nil:
			if data, merr := json.Marshal(res); merr == nil {
				push = cluster.PushedResult{Status: StatusDone, Result: data}
				key := verkey.Key(prog.CanonicalDigest(p), spec.Mode, spec.MaxStates, spec.StaticPrune, spec.Reduce, false)
				s.memoize(key, res, true)
			} else {
				push.Error = merr.Error()
			}
		case errors.Is(verr, core.ErrCanceled) || errors.Is(verr, staterobust.ErrCanceled):
			push = cluster.PushedResult{Status: StatusCanceled, Error: fmt.Sprintf("canceled: %v", context.DeadlineExceeded)}
		default:
			push.Error = verr.Error()
		}
	}

	body, err := json.Marshal(push)
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := s.cluster.Forward(ctx, victim, http.MethodPost, "/v1/jobs/"+spec.ID+"/result", "application/json", body)
	if err != nil {
		return // the victim's lost-thief guard resolves the job
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
