// Package service implements rockerd, a long-running robustness-
// verification service over the repository's engines: the §5 SCM-based
// execution-graph robustness decision procedure (core.Verify/VerifySC)
// and the Definition 2.6 state-robustness checkers (staterobust). Clients
// POST .lit programs; the server parses them, dispatches verification
// jobs to a bounded worker pool with per-job deadlines and cooperative
// cancellation, memoizes verdicts in an LRU keyed by the program's
// canonical LTS digest (prog.CanonicalDigest — hits are independent of
// label names, register names, whitespace and comments), and exposes live
// exploration progress by polling and NDJSON streaming. See docs/rockerd.md
// for the HTTP API.
package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/lang"
	"repro/internal/prog"
)

// Config sizes the service. The zero value is usable: every field has a
// default chosen for an interactive laptop deployment.
type Config struct {
	// MaxJobs is the number of jobs verified concurrently (worker pool
	// size; default 2). Each job may itself explore with multiple
	// engine workers, see Workers.
	MaxJobs int
	// MaxQueue bounds jobs admitted beyond the running ones (default 8).
	// A full queue rejects submissions with 429 and a Retry-After hint —
	// backpressure instead of unbounded memory growth.
	MaxQueue int
	// CacheSize is the verdict LRU capacity in entries (default 256).
	CacheSize int
	// DefaultTimeout applies to jobs that do not request a deadline
	// (default 2m); MaxTimeout caps requested deadlines (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxStates bounds each job's exploration unless the request sets a
	// tighter bound (default 8M states).
	MaxStates int
	// Workers is the per-job engine worker count (0 = all cores). With
	// MaxJobs > 1, 1-2 engine workers per job usually beats oversubscribing.
	Workers int
	// MaxSourceBytes bounds the request body (default 1 MiB).
	MaxSourceBytes int64
	// MaxFinished bounds retained terminal jobs (default 128); the oldest
	// are forgotten first. Running and queued jobs are never evicted.
	MaxFinished int
	// StreamInterval is the NDJSON progress cadence (default 250ms).
	StreamInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxJobs <= 0 {
		c.MaxJobs = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 8 << 20
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxFinished <= 0 {
		c.MaxFinished = 128
	}
	if c.StreamInterval <= 0 {
		c.StreamInterval = 250 * time.Millisecond
	}
	return c
}

// Server is the rockerd service: an http.Handler plus the job machinery
// behind it. Create with New, serve via any http.Server, stop with Drain.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	cache *verdictCache
	start time.Time

	// mu guards jobs, finished, draining, nextID, and pairs the queue's
	// send-side with the draining flag so a submission never races the
	// close in Drain.
	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // terminal job ids, oldest first, for eviction
	draining bool
	nextID   int64
	queue    chan *job

	workers sync.WaitGroup
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newVerdictCache(cfg.CacheSize),
		jobs:  make(map[string]*job),
		start: time.Now(),
	}
	s.queue = make(chan *job, s.cfg.MaxQueue)
	s.mux = http.NewServeMux()
	s.routes()
	for i := 0; i < s.cfg.MaxJobs; i++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for j := range s.queue {
				j.run()
			}
		}()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ErrDrainTimeout reports that Drain's context expired before in-flight
// jobs finished; they were force-canceled.
var ErrDrainTimeout = errors.New("service: drain deadline exceeded; in-flight jobs canceled")

// Drain stops the service gracefully: new submissions are rejected with
// 503 immediately, queued and running jobs keep going, and Drain returns
// once the pool is idle. If ctx expires first, every remaining job is
// canceled (terminal status canceled, not a verdict) and ErrDrainTimeout
// is returned after the pool exits. Drain is idempotent; cmd/rockerd
// calls it on SIGTERM between http.Server.Shutdown and process exit.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		j.cancel(errDrained)
	}
	s.mu.Unlock()
	<-idle
	return ErrDrainTimeout
}

// submitOutcome tells the handler how a submission was resolved.
type submitOutcome int

const (
	submitQueued submitOutcome = iota
	submitCached
	submitSaturated // queue full: 429
	submitDraining  // shutting down: 503
)

// submit admits a verification request: cache hit, enqueued job, or
// rejection. req must already be validated.
func (s *Server) submit(p *lang.Program, mode string, maxStates int, timeout time.Duration, staticPrune, reduce bool) (*job, *Result, submitOutcome) {
	d := prog.CanonicalDigest(p)
	key := s.cacheKey(d, mode, maxStates, staticPrune, reduce)
	if res := s.cache.get(key); res != nil {
		return nil, res, submitCached
	}

	ctx, cancel := context.WithCancelCause(context.Background())
	j := &job{
		mode:        mode,
		digest:      d,
		key:         key,
		prg:         p,
		maxStates:   maxStates,
		workers:     s.cfg.Workers,
		timeout:     timeout,
		staticPrune: staticPrune,
		reduce:      reduce,
		ctx:         ctx,
		cancel:      cancel,
		created:     time.Now(),
		status:      StatusQueued,
		done:        make(chan struct{}),
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel(errDrained)
		return nil, nil, submitDraining
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		cancel(errDrained)
		return nil, nil, submitSaturated
	}
	s.nextID++
	j.id = fmt.Sprintf("j%06d", s.nextID)
	s.jobs[j.id] = j
	s.mu.Unlock()

	// Memoize and evict when the job reaches a terminal status.
	go func() {
		<-j.done
		j.mu.Lock()
		res := j.result
		j.mu.Unlock()
		if res != nil {
			s.cache.put(j.key, res)
		}
		s.retire(j.id)
	}()
	return j, nil, submitQueued
}

// retire records a terminal job for eviction and drops the oldest
// finished jobs beyond the retention bound.
func (s *Server) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = append(s.finished, id)
	for len(s.finished) > s.cfg.MaxFinished {
		evict := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.jobs, evict)
	}
}

// cacheKey derives the verdict-cache key. The digest captures the LTS;
// mode and the effective state bound are the only request knobs that can
// change a verdict (engine worker counts cannot, by the engines'
// determinism contract). Static pruning and partial-order reduction never
// change a verdict either, but they do change the reported state counts
// and the result's certificate/prunedLocs/reduction-counter fields, so
// each combination memoizes under its own key.
func (s *Server) cacheKey(d prog.Digest, mode string, maxStates int, staticPrune, reduce bool) string {
	p := 0
	if staticPrune {
		p = 1
	}
	if reduce {
		p |= 2
	}
	return fmt.Sprintf("%s|%s|%d|%d", d, mode, maxStates, p)
}

// getJob looks up a job by id.
func (s *Server) getJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// counts returns (queued, running) for health reporting.
func (s *Server) counts() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.status {
		case StatusQueued:
			queued++
		case StatusRunning:
			running++
		}
		j.mu.Unlock()
	}
	return
}
