// Package service implements rockerd, a long-running robustness-
// verification service over the repository's engines: the §5 SCM-based
// execution-graph robustness decision procedure (core.Verify/VerifySC)
// and the Definition 2.6 state-robustness checkers (staterobust). Clients
// POST .lit programs; the server parses them, dispatches verification
// jobs to a bounded worker pool with per-job deadlines and cooperative
// cancellation, memoizes verdicts in an LRU keyed by the program's
// canonical LTS digest (prog.CanonicalDigest — hits are independent of
// label names, register names, whitespace and comments), and exposes live
// exploration progress by polling and NDJSON streaming.
//
// Two optional layers scale the single process out:
//
//   - A persistent verdict store (internal/vstore, Config.StorePath):
//     completed verdicts are appended to a crash-recoverable disk log
//     beneath the LRU, so restarts keep their history — a repeat
//     submission after a reboot is a disk hit, not a re-exploration.
//   - Cluster routing (internal/cluster, Config.Cluster): rendezvous
//     hashing on the canonical digest assigns each program an owning
//     node; non-owners forward with bounded retry and degrade to local
//     verification when the owner is unreachable, idle nodes steal queued
//     jobs from loaded peers, and DELETE propagates through forwarded
//     handles. See docs/rockerd.md "Clustering".
//
// See docs/rockerd.md for the HTTP API.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/lang"
	"repro/internal/prog"
	"repro/internal/verkey"
	"repro/internal/vstore"
)

// Config sizes the service. The zero value is usable: every field has a
// default chosen for an interactive laptop deployment.
type Config struct {
	// MaxJobs is the number of jobs verified concurrently (worker pool
	// size; default 2). Each job may itself explore with multiple
	// engine workers, see Workers.
	MaxJobs int
	// MaxQueue bounds jobs admitted beyond the running ones (default 8).
	// A full queue rejects submissions with 429 and a Retry-After hint —
	// backpressure instead of unbounded memory growth.
	MaxQueue int
	// CacheSize is the verdict LRU capacity in entries (default 256).
	CacheSize int
	// DefaultTimeout applies to jobs that do not request a deadline
	// (default 2m); MaxTimeout caps requested deadlines (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxStates bounds each job's exploration unless the request sets a
	// tighter bound (default 8M states).
	MaxStates int
	// Workers is the per-job engine worker count (0 = all cores). With
	// MaxJobs > 1, 1-2 engine workers per job usually beats oversubscribing.
	Workers int
	// MaxSourceBytes bounds the request body (default 1 MiB).
	MaxSourceBytes int64
	// MaxFinished bounds retained terminal jobs (default 128); the oldest
	// are forgotten first. Running and queued jobs are never evicted.
	MaxFinished int
	// StreamInterval is the NDJSON progress cadence (default 250ms).
	StreamInterval time.Duration

	// StorePath, when set, opens (or creates) the persistent verdict log
	// at that path: completed verdicts are appended beneath the LRU and
	// survive restarts. Empty means memory-only. Store tunes the log's
	// fsync batching.
	StorePath string
	Store     vstore.Config

	// Cluster, when non-nil, joins this node to a digest-addressed
	// rockerd cluster: requests whose program is owned elsewhere are
	// forwarded (degrading to local verification if the owner is
	// unreachable), and the steal loop pulls queued jobs from loaded
	// peers while this node is idle.
	Cluster *cluster.Cluster
	// StealInterval is the idle-node work-stealing poll cadence
	// (default 250ms; negative disables stealing).
	StealInterval time.Duration

	// MaxBatchItems bounds one POST /v1/verify/batch request
	// (default 1024). MaxBatchBytes bounds its body (default 32 MiB).
	MaxBatchItems int
	MaxBatchBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxJobs <= 0 {
		c.MaxJobs = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 8 << 20
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxFinished <= 0 {
		c.MaxFinished = 128
	}
	if c.StreamInterval <= 0 {
		c.StreamInterval = 250 * time.Millisecond
	}
	if c.StealInterval == 0 {
		c.StealInterval = 250 * time.Millisecond
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 1024
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 32 << 20
	}
	return c
}

// Server is the rockerd service: an http.Handler plus the job machinery
// behind it. Create with New, serve via any http.Server, stop with Drain.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	cache   *verdictCache
	store   *vstore.Store    // nil when StorePath is empty
	cluster *cluster.Cluster // nil for a single node
	start   time.Time

	nstats netStats

	// mu guards jobs, finished, draining, nextID, and pairs the queue's
	// send-side with the draining flag so a submission never races the
	// close in Drain.
	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // terminal job ids, oldest first, for eviction
	draining bool
	nextID   int64
	queue    chan *job

	workers  sync.WaitGroup
	watchers sync.WaitGroup // per-job memoize/retire goroutines

	stealStop chan struct{}
	stealOnce sync.Once
	stealDone chan struct{}
}

// New builds a Server, opens its persistent store if configured, and
// starts the worker pool (and, in a cluster, the steal loop).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     newVerdictCache(cfg.CacheSize),
		cluster:   cfg.Cluster,
		jobs:      make(map[string]*job),
		start:     time.Now(),
		stealStop: make(chan struct{}),
		stealDone: make(chan struct{}),
	}
	if cfg.StorePath != "" {
		st, err := vstore.Open(cfg.StorePath, cfg.Store)
		if err != nil {
			return nil, fmt.Errorf("service: opening verdict store: %w", err)
		}
		s.store = st
	}
	s.queue = make(chan *job, s.cfg.MaxQueue)
	s.mux = http.NewServeMux()
	s.routes()
	for i := 0; i < s.cfg.MaxJobs; i++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for j := range s.queue {
				j.run()
			}
		}()
	}
	if s.cluster != nil && s.cfg.StealInterval > 0 {
		go s.stealLoop()
	} else {
		close(s.stealDone)
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ErrDrainTimeout reports that Drain's context expired before in-flight
// jobs finished; they were force-canceled.
var ErrDrainTimeout = errors.New("service: drain deadline exceeded; in-flight jobs canceled")

// Drain stops the service gracefully: new submissions are rejected with
// 503 immediately, queued and running jobs keep going, and Drain returns
// once the pool is idle and the verdict store is flushed and closed. If
// ctx expires first, every remaining job is canceled (terminal status
// canceled, not a verdict) and ErrDrainTimeout is returned after the pool
// exits. Jobs whose runner is remote (stolen by a peer, or forwarded
// handles) are resolved as canceled rather than awaited — the peer's
// answer has nowhere to land once this process exits. Drain is
// idempotent; cmd/rockerd calls it on SIGTERM between http.Server.Shutdown
// and process exit.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.stopSteal()

	idle := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(idle)
	}()
	var derr error
	select {
	case <-idle:
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			j.cancel(errDrained)
		}
		s.mu.Unlock()
		<-idle
		derr = ErrDrainTimeout
	}

	// Resolve jobs that have no local runner (stolen or forwarded): their
	// watcher goroutines would otherwise wait on a remote peer that may
	// never answer a drained server.
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.remote != nil || j.isStolen() {
			j.cancel(errDrained)
			j.finish(StatusCanceled, nil, fmt.Sprintf("canceled: %v", errDrained))
		}
	}
	s.mu.Unlock()

	s.watchers.Wait()
	if s.store != nil {
		if err := s.store.Close(); err != nil && derr == nil {
			derr = err
		}
	}
	return derr
}

// stopSteal shuts the steal loop down exactly once.
func (s *Server) stopSteal() {
	s.stealOnce.Do(func() { close(s.stealStop) })
	<-s.stealDone
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// submitOutcome tells the handler how a submission was resolved.
type submitOutcome int

const (
	submitQueued    submitOutcome = iota
	submitSaturated               // queue full: 429
	submitDraining                // shutting down: 503
)

// cachedResult consults the verdict caches for key: the in-memory LRU
// first, then the persistent store, promoting a disk hit into the LRU.
// source is "memory" or "disk" on a hit, "" on a miss.
func (s *Server) cachedResult(key string) (*Result, string) {
	if res := s.cache.get(key); res != nil {
		s.nstats.memoryHits.Add(1)
		return res, CachedMemory
	}
	if s.store != nil {
		if data, ok, err := s.store.Get(key); err == nil && ok {
			var res Result
			if json.Unmarshal(data, &res) == nil {
				s.cache.put(key, &res)
				s.nstats.diskHits.Add(1)
				return &res, CachedDisk
			}
		}
	}
	return nil, ""
}

// memoize records a completed verdict in the LRU and, if configured, the
// persistent store.
func (s *Server) memoize(key string, res *Result, persist bool) {
	s.cache.put(key, res)
	if persist && s.store != nil {
		if data, err := json.Marshal(res); err == nil {
			_ = s.store.Put(key, data)
		}
	}
}

// submit admits a verification request as a new job. The caller has
// already checked the caches (see cachedResult); a racing duplicate at
// worst verifies twice, it never serves a wrong verdict. frontend marks
// jobs born from /v1/analyze (Go-lifted programs), which memoize under
// their own verkey bit.
func (s *Server) submit(p *lang.Program, src, mode string, maxStates int, timeout time.Duration, staticPrune, reduce, frontend bool) (*job, submitOutcome) {
	d := prog.CanonicalDigest(p)
	key := verkey.Key(d, mode, maxStates, staticPrune, reduce, frontend)

	ctx, cancel := context.WithCancelCause(context.Background())
	j := &job{
		mode:        mode,
		digest:      d,
		key:         key,
		prg:         p,
		src:         src,
		maxStates:   maxStates,
		workers:     s.cfg.Workers,
		timeout:     timeout,
		staticPrune: staticPrune,
		reduce:      reduce,
		ctx:         ctx,
		cancel:      cancel,
		created:     time.Now(),
		status:      StatusQueued,
		done:        make(chan struct{}),
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel(errDrained)
		return nil, submitDraining
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		cancel(errDrained)
		return nil, submitSaturated
	}
	s.nextID++
	j.id = fmt.Sprintf("j%06d", s.nextID)
	s.jobs[j.id] = j
	s.mu.Unlock()

	// Memoize and evict when the job reaches a terminal status. Stolen
	// jobs resolve through the same channel: the pushed result calls
	// finish, and this watcher persists it.
	s.watchers.Add(1)
	go func() {
		defer s.watchers.Done()
		<-j.done
		j.mu.Lock()
		res := j.result
		j.mu.Unlock()
		if res != nil {
			s.memoize(j.key, res, true)
		}
		s.retire(j.id)
	}()
	return j, submitQueued
}

// retire records a terminal job for eviction and drops the oldest
// finished jobs beyond the retention bound.
func (s *Server) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = append(s.finished, id)
	for len(s.finished) > s.cfg.MaxFinished {
		evict := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.jobs, evict)
	}
}

// getJob looks up a job by id.
func (s *Server) getJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// counts returns (queued, running) for health reporting. Jobs running
// remotely (stolen by a peer) count as running: they are this node's
// responsibility until the result lands.
func (s *Server) counts() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.status {
		case StatusQueued:
			queued++
		case StatusRunning:
			running++
		}
		j.mu.Unlock()
	}
	return
}

// localLoad reports queue depth and locally running jobs (excluding ones
// a peer stole — those occupy no local worker). The steal loop uses it to
// decide idleness.
func (s *Server) localLoad() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.mu.Lock()
		switch {
		case j.status == StatusQueued:
			queued++
		case j.status == StatusRunning && j.stolenBy == "":
			running++
		}
		j.mu.Unlock()
	}
	return
}
