package service

import (
	"sync"
	"testing"
)

// TestVerdictCacheLRU checks insertion, promotion-on-get, and
// least-recently-used eviction.
func TestVerdictCacheLRU(t *testing.T) {
	c := newVerdictCache(2)
	c.put("a", &Result{Mode: "a"})
	c.put("b", &Result{Mode: "b"})
	if got := c.get("a"); got == nil || got.Mode != "a" { // promotes a over b
		t.Fatalf("get(a) = %v", got)
	}
	c.put("d", &Result{Mode: "d"}) // evicts b, the least recently used
	if got := c.get("b"); got != nil {
		t.Fatalf("b survived eviction: %v", got)
	}
	if a, d := c.get("a"), c.get("d"); a == nil || a.Mode != "a" || d == nil || d.Mode != "d" {
		t.Fatal("a or d evicted early")
	}
	entries, hits, misses := c.stats()
	if entries != 2 || hits != 3 || misses != 1 {
		t.Errorf("stats = (%d, %d, %d), want (2, 3, 1)", entries, hits, misses)
	}
}

// TestVerdictCacheRefresh checks that re-putting an existing key updates
// in place without growing the cache.
func TestVerdictCacheRefresh(t *testing.T) {
	c := newVerdictCache(2)
	c.put("k", &Result{States: 1})
	c.put("k", &Result{States: 2})
	if got := c.get("k"); got == nil || got.States != 2 {
		t.Fatalf("get(k) = %+v, want refreshed entry", got)
	}
	if entries, _, _ := c.stats(); entries != 1 {
		t.Errorf("entries = %d, want 1", entries)
	}
}

// TestVerdictCacheNoAliasing pins the defensive-copy contract: neither
// the pointer passed to put nor the one returned by get aliases the
// cache's internal entry, so caller-side writes never leak into (or out
// of) the cache.
func TestVerdictCacheNoAliasing(t *testing.T) {
	c := newVerdictCache(2)
	mine := &Result{Mode: ModeRA, States: 7}
	c.put("k", mine)
	mine.States = 99 // after put: must not reach the cache
	first := c.get("k")
	if first == nil || first.States != 7 {
		t.Fatalf("put aliased the caller's result: %+v", first)
	}
	first.States = 42 // after get: must not reach the cache
	second := c.get("k")
	if second == nil || second.States != 7 {
		t.Fatalf("get aliased the cache's result: %+v", second)
	}
	if first == second {
		t.Fatal("two gets returned the same pointer")
	}
}

// TestVerdictCacheConcurrentOneKey hammers a single key from many
// goroutines that mutate every result they get and re-put their own —
// the scenario where shared pointers become data races. Run under
// -race this is the regression test for the get/put aliasing bug.
func TestVerdictCacheConcurrentOneKey(t *testing.T) {
	c := newVerdictCache(4)
	c.put("k", &Result{Mode: ModeRA, States: 1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				if res := c.get("k"); res != nil {
					res.States++ // caller owns its copy
					res.Mode = "scratch"
				}
				r := &Result{Mode: ModeRA, States: w}
				c.put("k", r)
				r.States = -1 // caller keeps ownership after put
			}
		}(w)
	}
	wg.Wait()
	res := c.get("k")
	if res == nil || res.Mode != ModeRA || res.States < 0 {
		t.Fatalf("cache leaked a caller-mutated result: %+v", res)
	}
}
