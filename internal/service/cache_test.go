package service

import "testing"

// TestVerdictCacheLRU checks insertion, promotion-on-get, and
// least-recently-used eviction.
func TestVerdictCacheLRU(t *testing.T) {
	c := newVerdictCache(2)
	a, b, d := &Result{Mode: "a"}, &Result{Mode: "b"}, &Result{Mode: "d"}
	c.put("a", a)
	c.put("b", b)
	if got := c.get("a"); got != a { // promotes a over b
		t.Fatalf("get(a) = %v", got)
	}
	c.put("d", d) // evicts b, the least recently used
	if got := c.get("b"); got != nil {
		t.Fatalf("b survived eviction: %v", got)
	}
	if c.get("a") != a || c.get("d") != d {
		t.Fatal("a or d evicted early")
	}
	entries, hits, misses := c.stats()
	if entries != 2 || hits != 3 || misses != 1 {
		t.Errorf("stats = (%d, %d, %d), want (2, 3, 1)", entries, hits, misses)
	}
}

// TestVerdictCacheRefresh checks that re-putting an existing key updates
// in place without growing the cache.
func TestVerdictCacheRefresh(t *testing.T) {
	c := newVerdictCache(2)
	c.put("k", &Result{States: 1})
	c.put("k", &Result{States: 2})
	if got := c.get("k"); got == nil || got.States != 2 {
		t.Fatalf("get(k) = %+v, want refreshed entry", got)
	}
	if entries, _, _ := c.stats(); entries != 1 {
		t.Errorf("entries = %d, want 1", entries)
	}
}
