package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/parser"
	"repro/internal/prog"
	"repro/internal/verkey"
)

// VerifyRequest is the JSON body of POST /v1/verify (and one item of
// POST /v1/verify/batch). A text/plain body is also accepted and treated
// as {"source": <body>} with every knob at its default.
type VerifyRequest struct {
	// Source is the .lit program text.
	Source string `json:"source"`
	// Mode selects the verification question (default "ra").
	Mode string `json:"mode,omitempty"`
	// TimeoutMs caps the job's wall-clock run, clamped to the server's
	// MaxTimeout (0 = the server's DefaultTimeout).
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// MaxStates tightens the server's exploration bound (0 = server
	// default; values above it are clamped).
	MaxStates int `json:"maxStates,omitempty"`
	// Wait blocks the request until the job finishes and returns the
	// final snapshot inline (one-shot CLI use; polling is the default).
	Wait bool `json:"wait,omitempty"`
	// StaticPrune runs the internal/analysis conflict pre-pass before
	// exploring (execution-graph modes only): programs with an acyclic
	// conflict graph are discharged by a static certificate with zero
	// states, and locations outside every dangerous cycle are dropped
	// from monitor instrumentation. Verdicts are unchanged.
	StaticPrune bool `json:"staticPrune,omitempty"`
	// Reduce turns on the partial-order reduction layer: ample sets,
	// sleep sets, and thread-symmetry canonicalization for the
	// execution-graph modes (core.Options.Reduce), symmetry folding of the
	// projection sets for the state-* modes (staterobust.Limits.Reduce).
	// Verdicts are unchanged; state counts shrink, so reduced and
	// unreduced runs memoize under distinct cache keys.
	Reduce bool `json:"reduce,omitempty"`
}

// errorJSON is every non-2xx body. Line/Col are set for parse errors.
type errorJSON struct {
	Error string `json:"error"`
	Line  int    `json:"line,omitempty"`
	Col   int    `json:"col,omitempty"`
}

// cachedJSON is the 200 body for a verdict served without running a job.
// Source says where it came from: "memory", "disk", or "peer".
type cachedJSON struct {
	Cached bool    `json:"cached"`
	Source string  `json:"source"`
	Result *Result `json:"result"`
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/verify", s.handleVerify)
	s.mux.HandleFunc("POST /v1/verify/batch", s.handleVerifyBatch)
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	s.mux.HandleFunc("POST /v1/jobs/{id}/result", s.handlePushResult)
	s.mux.HandleFunc("POST /v1/steal", s.handleSteal)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// clampLimits resolves a request's exploration and deadline knobs against
// the server's bounds.
func (s *Server) clampLimits(req VerifyRequest) (maxStates int, timeout time.Duration) {
	maxStates = s.cfg.MaxStates
	if req.MaxStates > 0 && req.MaxStates < maxStates {
		maxStates = req.MaxStates
	}
	timeout = s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return maxStates, timeout
}

// handleVerify parses, canonicalizes, and admits a verification request.
// Responses:
//
//	200 — verdict served from a cache (memory, disk, or peer), or Wait
//	      and the job finished
//	202 — job admitted (locally or on the owning peer); poll Location
//	400 — malformed request or program (parse errors carry line/col)
//	429 — worker pool and queue saturated; Retry-After hints a backoff
//	503 — server draining
//
// In a cluster, a program owned by another node is forwarded there (one
// hop — forwarded requests carry X-Rocker-Forwarded and are always
// handled locally by the receiver); if the owner is unreachable after
// bounded retries the request degrades to local verification.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxSourceBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > s.cfg.MaxSourceBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.cfg.MaxSourceBytes)
		return
	}
	var req VerifyRequest
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
	} else {
		req.Source = string(body)
	}
	// Query parameters cover the text/plain path (curl --data-binary
	// @prog.lit 'host/v1/verify?wait=1&mode=sc'); the JSON body wins when
	// both are present.
	q := r.URL.Query()
	if req.Mode == "" {
		req.Mode = q.Get("mode")
	}
	if !req.Wait {
		req.Wait = q.Get("wait") == "1" || q.Get("wait") == "true"
	}
	if !req.StaticPrune {
		req.StaticPrune = q.Get("prune") == "1" || q.Get("prune") == "true"
	}
	if !req.Reduce {
		req.Reduce = q.Get("reduce") == "1" || q.Get("reduce") == "true"
	}
	if req.Mode == "" {
		req.Mode = ModeRA
	}
	if !validMode(req.Mode) {
		writeError(w, http.StatusBadRequest, "unknown mode %q (supported: %s)", req.Mode, model.ModeList())
		return
	}
	if strings.TrimSpace(req.Source) == "" {
		writeError(w, http.StatusBadRequest, "empty program source")
		return
	}

	p, err := parser.Parse(req.Source)
	if err == nil {
		err = p.Validate()
	}
	if err != nil {
		resp := errorJSON{Error: err.Error()}
		var pe *parser.Error
		if errors.As(err, &pe) {
			resp.Line, resp.Col = pe.Line, pe.Col
		}
		writeJSON(w, http.StatusBadRequest, resp)
		return
	}

	maxStates, timeout := s.clampLimits(req)
	d := prog.CanonicalDigest(p)
	key := verkey.Key(d, req.Mode, maxStates, req.StaticPrune, req.Reduce, false)

	if res, source := s.cachedResult(key); res != nil {
		writeJSON(w, http.StatusOK, cachedJSON{Cached: true, Source: source, Result: res})
		return
	}

	if s.cluster != nil && r.Header.Get(cluster.ForwardHeader) == "" {
		if owner := s.cluster.Owner(d); !s.cluster.IsSelf(owner) {
			if s.forwardVerify(w, r, owner, req, d, key, maxStates, timeout) {
				return
			}
			// Owner unreachable after bounded retries: verify locally.
		}
	}

	j, outcome := s.submit(p, req.Source, req.Mode, maxStates, timeout, req.StaticPrune, req.Reduce, false)
	switch outcome {
	case submitSaturated:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"all %d workers busy and queue full (%d deep); retry later",
			s.cfg.MaxJobs, s.cfg.MaxQueue)
	case submitDraining:
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	case submitQueued:
		if req.Wait {
			select {
			case <-j.done:
			case <-r.Context().Done():
				// Client went away: the job keeps running (its verdict
				// still feeds the cache), the response is abandoned.
				return
			}
			writeJSON(w, http.StatusOK, j.snapshot())
			return
		}
		w.Header().Set("Location", "/v1/jobs/"+j.id)
		writeJSON(w, http.StatusAccepted, j.snapshot())
	}
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if j.remote != nil {
		s.proxyJobGet(w, r, j)
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleJobStream emits one Snapshot JSON object per line (NDJSON) every
// StreamInterval until the job reaches a terminal status; the final line
// carries the result or error. Clients get live states/sec without
// polling. Forwarded handles relay the owner's stream.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if j.remote != nil {
		s.proxyJobStream(w, r, j)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	emit := func() bool {
		if err := enc.Encode(j.snapshot()); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	tick := time.NewTicker(s.cfg.StreamInterval)
	defer tick.Stop()
	if !emit() {
		return
	}
	for {
		select {
		case <-j.done:
			emit()
			return
		case <-r.Context().Done():
			return
		case <-tick.C:
			if !emit() {
				return
			}
		}
	}
}

// handleJobDelete cancels a queued or running job. The job transitions to
// status canceled (never a verdict); a job already terminal is left as-is.
// Forwarded handles propagate the DELETE to the owning peer; stolen jobs
// resolve locally (the thief's eventual push loses to the terminal status
// recorded here).
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if j.remote != nil {
		s.proxyJobDelete(w, r, j)
		return
	}
	j.cancel(errDeleted)
	// A queued job has no worker polling its context yet, and a stolen
	// job's runner is a peer that never sees this context: resolve both
	// here so DELETE is prompt. finish is idempotent, so racing the worker
	// (or the thief's push) is harmless.
	j.mu.Lock()
	resolveHere := j.status == StatusQueued || j.stolenBy != ""
	j.mu.Unlock()
	if resolveHere {
		j.finish(StatusCanceled, nil, fmt.Sprintf("canceled: %v", errDeleted))
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, running := s.counts()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := http.StatusOK
	if draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
		Queued   int  `json:"queued"`
		Running  int  `json:"running"`
	}{!draining, draining, queued, running})
}

// storeStatsJSON mirrors vstore.Stats in the /v1/stats body.
type storeStatsJSON struct {
	Records        int   `json:"records"`
	Bytes          int64 `json:"bytes"`
	Puts           int64 `json:"puts"`
	Syncs          int64 `json:"syncs"`
	Recovered      int64 `json:"recovered"`
	TruncatedBytes int64 `json:"truncatedBytes"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	queued, running := s.counts()
	entries, hits, misses := s.cache.stats()
	s.mu.Lock()
	submitted := s.nextID
	s.mu.Unlock()
	body := struct {
		UptimeSec    float64 `json:"uptimeSec"`
		Submitted    int64   `json:"submitted"`
		Queued       int     `json:"queued"`
		Running      int     `json:"running"`
		CacheEntries int     `json:"cacheEntries"`
		CacheHits    int64   `json:"cacheHits"`
		CacheMisses  int64   `json:"cacheMisses"`
		HeapBytes    uint64  `json:"heapBytes"`

		// Per-source verdict counters (see netStats).
		MemoryHits   int64 `json:"memoryHits"`
		DiskHits     int64 `json:"diskHits"`
		PeerForwards int64 `json:"peerForwards"`
		ForwardFails int64 `json:"forwardFails"`
		Steals       int64 `json:"steals"`
		Stolen       int64 `json:"stolen"`
		BatchItems   int64 `json:"batchItems"`

		Node  string          `json:"node,omitempty"`
		Peers []string        `json:"peers,omitempty"`
		Store *storeStatsJSON `json:"store,omitempty"`
	}{
		UptimeSec:    time.Since(s.start).Seconds(),
		Submitted:    submitted,
		Queued:       queued,
		Running:      running,
		CacheEntries: entries,
		CacheHits:    hits,
		CacheMisses:  misses,
		HeapBytes:    sampleHeap(),
		MemoryHits:   s.nstats.memoryHits.Load(),
		DiskHits:     s.nstats.diskHits.Load(),
		PeerForwards: s.nstats.peerForwards.Load(),
		ForwardFails: s.nstats.forwardFails.Load(),
		Steals:       s.nstats.steals.Load(),
		Stolen:       s.nstats.stolen.Load(),
		BatchItems:   s.nstats.batchItems.Load(),
	}
	if s.cluster != nil {
		body.Node = s.cluster.Self().ID
		for _, m := range s.cluster.Peers() {
			body.Peers = append(body.Peers, m.ID)
		}
	}
	if s.store != nil {
		st := s.store.Stats()
		body.Store = &storeStatsJSON{
			Records:        st.Records,
			Bytes:          st.Bytes,
			Puts:           st.Puts,
			Syncs:          st.Syncs,
			Recovered:      st.Recovered,
			TruncatedBytes: st.Truncated,
		}
	}
	writeJSON(w, http.StatusOK, body)
}
