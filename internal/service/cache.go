package service

import (
	"container/list"
	"sync"
)

// verdictCache is a mutex-guarded LRU keyed by the canonical cache key
// (program digest + verification mode + bounds, see (*Server).cacheKey).
// Only completed verdicts enter the cache — canceled and failed runs are
// never memoized — so a hit can be served without re-verification: two
// sources that are equal modulo label names, register names, whitespace
// and comments compile to digest-equal LTSs and share one entry.
type verdictCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	hits   int64
	misses int64
}

type cacheEntry struct {
	key string
	res *Result
}

func newVerdictCache(capacity int) *verdictCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &verdictCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result for key, promoting it to most recently
// used, or nil. The caller gets its own copy: the cached Result is shared
// by every future hit (and the job that produced it), so handing out the
// internal pointer would turn any caller-side field write into a data
// race with concurrent requests. Result is a flat value type, so a
// shallow copy is a full copy.
func (c *verdictCache) get(key string) *Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.ll.MoveToFront(el)
	cp := *el.Value.(*cacheEntry).res
	return &cp
}

// put inserts or refreshes key, evicting the least recently used entry
// when over capacity. The cache keeps its own copy for the same reason
// get returns one: the caller (the finished job) retains its pointer and
// serves it to snapshot readers.
func (c *verdictCache) put(key string, res *Result) {
	cp := *res
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = &cp
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: &cp})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// stats returns (entries, hits, misses).
func (c *verdictCache) stats() (int, int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.hits, c.misses
}
