package service

// POST /v1/verify/batch: many programs in, one NDJSON stream of per-item
// verdicts out, in completion order. The batch runs through the same
// admission gate as single submissions — items wait politely when the
// pool saturates instead of failing — and per-item deadlines still apply.
// A client that disconnects mid-batch cancels its in-flight items; every
// line already written stands (partial results, not all-or-nothing).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/parser"
	"repro/internal/prog"
	"repro/internal/verkey"
)

// BatchRequest is the JSON body of POST /v1/verify/batch. The top-level
// knobs are defaults applied to every item that leaves the corresponding
// field zero.
type BatchRequest struct {
	Items []VerifyRequest `json:"items"`

	Mode        string `json:"mode,omitempty"`
	TimeoutMs   int64  `json:"timeoutMs,omitempty"`
	MaxStates   int    `json:"maxStates,omitempty"`
	StaticPrune bool   `json:"staticPrune,omitempty"`
	Reduce      bool   `json:"reduce,omitempty"`
}

// BatchLine is one NDJSON response line: the outcome of items[Index].
// Status is done/canceled/failed, or "error" for an item that never
// became a job (parse failure, empty source, unknown mode). Cached names
// the verdict's source when no local exploration ran: "memory", "disk",
// or "peer" (peer covers both the owner's cache and a fresh verdict the
// owner computed for us).
type BatchLine struct {
	Index     int     `json:"index"`
	Digest    string  `json:"digest,omitempty"`
	Status    string  `json:"status"`
	Cached    string  `json:"cached,omitempty"`
	Result    *Result `json:"result,omitempty"`
	Error     string  `json:"error,omitempty"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// BatchSummary is the final NDJSON line of a completed batch.
type BatchSummary struct {
	Summary      bool    `json:"summary"`
	Total        int     `json:"total"`
	Done         int     `json:"done"`
	Canceled     int     `json:"canceled"`
	Failed       int     `json:"failed"`
	Errors       int     `json:"errors"`
	CachedMemory int     `json:"cachedMemory"`
	CachedDisk   int     `json:"cachedDisk"`
	CachedPeer   int     `json:"cachedPeer"`
	ElapsedMs    float64 `json:"elapsedMs"`
}

// errBatchGone marks items canceled because the batch client disconnected.
var errBatchGone = errors.New("batch client disconnected")

func (s *Server) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBatchBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > s.cfg.MaxBatchBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "batch exceeds %d bytes", s.cfg.MaxBatchBytes)
		return
	}
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding batch: %v", err)
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		writeError(w, http.StatusRequestEntityTooLarge,
			"batch of %d items exceeds the %d-item limit", len(req.Items), s.cfg.MaxBatchItems)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}

	// Apply batch-level defaults to zero-valued item knobs.
	for i := range req.Items {
		it := &req.Items[i]
		if it.Mode == "" {
			it.Mode = req.Mode
		}
		if it.TimeoutMs == 0 {
			it.TimeoutMs = req.TimeoutMs
		}
		if it.MaxStates == 0 {
			it.MaxStates = req.MaxStates
		}
		it.StaticPrune = it.StaticPrune || req.StaticPrune
		it.Reduce = it.Reduce || req.Reduce
		it.Wait = false
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	start := time.Now()
	forwarded := r.Header.Get(cluster.ForwardHeader)
	ctx := r.Context()

	var (
		emitMu  sync.Mutex
		summary = BatchSummary{Summary: true, Total: len(req.Items)}
		enc     = json.NewEncoder(w)
	)
	enc.SetEscapeHTML(false)
	emit := func(line BatchLine) {
		emitMu.Lock()
		defer emitMu.Unlock()
		switch line.Status {
		case StatusDone:
			summary.Done++
		case StatusCanceled:
			summary.Canceled++
		case StatusFailed:
			summary.Failed++
		default:
			summary.Errors++
		}
		switch line.Cached {
		case CachedMemory:
			summary.CachedMemory++
		case CachedDisk:
			summary.CachedDisk++
		case CachedPeer:
			summary.CachedPeer++
		}
		if enc.Encode(line) == nil {
			fl.Flush()
		}
	}

	// Fan items over a bounded set of feeders. The bound exceeds the
	// worker pool so the queue stays primed (and peers can steal from it),
	// but an oversized batch cannot pile thousands of goroutines onto the
	// admission gate at once.
	conc := s.cfg.MaxJobs + s.cfg.MaxQueue
	if conc > len(req.Items) {
		conc = len(req.Items)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				s.nstats.batchItems.Add(1)
				itemStart := time.Now()
				line := s.batchOne(ctx, req.Items[i], forwarded)
				line.Index = i
				line.ElapsedMs = msSince(itemStart)
				emit(line)
			}
		}()
	}
feed:
	for i := range req.Items {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	summary.ElapsedMs = msSince(start)
	emitMu.Lock()
	if enc.Encode(summary) == nil {
		fl.Flush()
	}
	emitMu.Unlock()
}

// batchOne resolves a single batch item: validate → cache → cluster
// routing → local verification through the admission gate. Saturation is
// absorbed by waiting (the batch is the backpressure), not surfaced as a
// per-item 429.
func (s *Server) batchOne(ctx context.Context, req VerifyRequest, forwardedFrom string) BatchLine {
	if req.Mode == "" {
		req.Mode = ModeRA
	}
	if !validMode(req.Mode) {
		return BatchLine{Status: "error", Error: fmt.Sprintf("unknown mode %q (supported: %s)", req.Mode, model.ModeList())}
	}
	if strings.TrimSpace(req.Source) == "" {
		return BatchLine{Status: "error", Error: "empty program source"}
	}
	p, err := parser.Parse(req.Source)
	if err == nil {
		err = p.Validate()
	}
	if err != nil {
		return BatchLine{Status: "error", Error: err.Error()}
	}

	maxStates, timeout := s.clampLimits(req)
	d := prog.CanonicalDigest(p)
	key := verkey.Key(d, req.Mode, maxStates, req.StaticPrune, req.Reduce, false)
	line := BatchLine{Digest: d.String()}

	if res, source := s.cachedResult(key); res != nil {
		line.Status, line.Cached, line.Result = StatusDone, source, res
		return line
	}

	if s.cluster != nil && forwardedFrom == "" {
		if owner := s.cluster.Owner(d); !s.cluster.IsSelf(owner) {
			if out, ok := s.forwardBatchItem(ctx, owner, req, key, maxStates, timeout); ok {
				out.Digest = line.Digest
				return out
			}
			// Owner unreachable: fall through to local verification.
		}
	}

	for {
		j, outcome := s.submit(p, req.Source, req.Mode, maxStates, timeout, req.StaticPrune, req.Reduce, false)
		switch outcome {
		case submitDraining:
			line.Status, line.Error = StatusCanceled, "server is draining"
			return line
		case submitSaturated:
			select {
			case <-ctx.Done():
				line.Status, line.Error = StatusCanceled, errBatchGone.Error()
				return line
			case <-time.After(25 * time.Millisecond):
			}
			continue
		case submitQueued:
			select {
			case <-j.done:
			case <-ctx.Done():
				j.cancel(errBatchGone)
				// Mirror DELETE: a queued job has no worker polling its
				// context yet, so resolve it here for promptness.
				j.mu.Lock()
				queued := j.status == StatusQueued
				j.mu.Unlock()
				if queued {
					j.finish(StatusCanceled, nil, fmt.Sprintf("canceled: %v", errBatchGone))
				}
				<-j.done
			}
			j.mu.Lock()
			line.Status, line.Result, line.Error = j.status, j.result, j.err
			j.mu.Unlock()
			return line
		}
	}
}

// forwardBatchItem runs one batch item on its owning peer as a wait-mode
// single verify. ok=false means the caller should verify locally.
func (s *Server) forwardBatchItem(ctx context.Context, owner cluster.Member, req VerifyRequest, key string, maxStates int, timeout time.Duration) (BatchLine, bool) {
	fr := VerifyRequest{
		Source:      req.Source,
		Mode:        req.Mode,
		TimeoutMs:   timeout.Milliseconds(),
		MaxStates:   maxStates,
		Wait:        true,
		StaticPrune: req.StaticPrune,
		Reduce:      req.Reduce,
	}
	body, err := json.Marshal(fr)
	if err != nil {
		return BatchLine{}, false
	}
	resp, err := s.cluster.Forward(ctx, owner, http.MethodPost, "/v1/verify", "application/json", body)
	if err != nil {
		s.nstats.forwardFails.Add(1)
		return BatchLine{}, false
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, peerBodyLimit))
	if err != nil || resp.StatusCode != http.StatusOK {
		// Includes 429 from a saturated owner: local admission (which
		// waits) handles it better than hammering the peer.
		s.nstats.forwardFails.Add(1)
		return BatchLine{}, false
	}
	var peek struct {
		Cached bool    `json:"cached"`
		Status string  `json:"status"`
		Result *Result `json:"result"`
		Error  string  `json:"error"`
	}
	if err := json.Unmarshal(data, &peek); err != nil {
		s.nstats.forwardFails.Add(1)
		return BatchLine{}, false
	}
	s.nstats.peerForwards.Add(1)
	line := BatchLine{Cached: CachedPeer}
	switch {
	case peek.Cached, peek.Status == StatusDone:
		line.Status, line.Result = StatusDone, peek.Result
		if peek.Result != nil {
			s.cache.put(key, peek.Result)
		}
	case peek.Status == StatusCanceled, peek.Status == StatusFailed:
		line.Status, line.Error = peek.Status, peek.Error
	default:
		return BatchLine{}, false
	}
	return line, true
}
