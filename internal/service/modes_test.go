package service_test

// Mode-matrix service tests: the instrumented TSO mode end-to-end, the
// registry-driven unknown-mode error, the tso / state-tso cache split,
// and per-item mode overrides surviving cluster forwarding.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/service"
)

// TestModeTSOEndToEnd: mode "tso" — the attack-based instrumented checker
// — through the full rockerd path: SB is TSO-non-robust, MP is robust,
// and a resubmission is a cache hit under the "tso" key.
func TestModeTSOEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxJobs: 2, Workers: 2})
	cases := []struct {
		prog   string
		robust bool
	}{
		{"SB", false},
		{"MP", true},
		{"2RMW", true},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL, service.VerifyRequest{
			Source: corpusSource(t, c.prog), Mode: service.ModeTSO, Wait: true,
		})
		var snap service.Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatalf("%s: bad body %s", c.prog, body)
		}
		if resp.StatusCode != http.StatusOK || snap.Status != service.StatusDone ||
			snap.Result == nil || snap.Result.Robust != c.robust {
			t.Errorf("%s/tso: code=%d snapshot=%+v, want robust=%v",
				c.prog, resp.StatusCode, snap, c.robust)
		}
		if snap.Result != nil && snap.Result.Mode != service.ModeTSO {
			t.Errorf("%s: result mode %q, want tso", c.prog, snap.Result.Mode)
		}
	}
}

// TestModeTSOCacheDistinctFromStateTSO is the aliasing regression: the
// instrumented ("tso") and exhaustive ("state-tso") runs of one program
// must memoize under distinct verdict-cache keys — a state-tso submission
// after a tso one runs fresh and reports its own mode and counts.
func TestModeTSOCacheDistinctFromStateTSO(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxJobs: 2, Workers: 2})
	src := corpusSource(t, "MP")

	submit := func(mode string) (bool, *service.Result) {
		resp, body := postJSON(t, ts.URL, service.VerifyRequest{Source: src, Mode: mode, Wait: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mode %s: code %d (%s)", mode, resp.StatusCode, body)
		}
		var v struct {
			Cached bool            `json:"cached"`
			Status string          `json:"status"`
			Result *service.Result `json:"result"`
		}
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("mode %s: bad body %s", mode, body)
		}
		if v.Result == nil {
			t.Fatalf("mode %s: no result in %s", mode, body)
		}
		return v.Cached, v.Result
	}

	if cached, res := submit(service.ModeTSO); cached || res.Mode != service.ModeTSO {
		t.Fatalf("first tso run: cached=%v mode=%q, want fresh tso", cached, res.Mode)
	}
	if cached, res := submit(service.ModeTSO); !cached || res.Mode != service.ModeTSO {
		t.Errorf("second tso run: cached=%v mode=%q, want memory hit", cached, res.Mode)
	}
	// Same digest, different mode: must NOT be served from the tso entry.
	cached, res := submit(service.ModeStateTSO)
	if cached {
		t.Errorf("state-tso run served from cache — tso/state-tso keys alias")
	}
	if res.Mode != service.ModeStateTSO {
		t.Errorf("state-tso result mode = %q", res.Mode)
	}
	if !res.Robust {
		t.Errorf("MP/state-tso: not robust")
	}
}

// TestUnknownModeEnumerates: the 400 for a bad mode lists the supported
// modes from the model registry (both in /v1/verify and per batch item),
// so client errors are self-describing and the list cannot drift from the
// dispatch table.
func TestUnknownModeEnumerates(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	resp, body := postJSON(t, ts.URL, service.VerifyRequest{
		Source: corpusSource(t, "SB"), Mode: "x86",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("code = %d, want 400 (%s)", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"ra", "sra", "sc", "tso", "state-ra", "state-sra", "state-tso"} {
		if !strings.Contains(e.Error, mode) {
			t.Errorf("verify 400 %q does not mention mode %s", e.Error, mode)
		}
	}

	lines, _, code := postBatch(t, ts.URL, service.BatchRequest{
		Items: []service.VerifyRequest{{Source: corpusSource(t, "SB"), Mode: "x86"}},
	})
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if l := lines[0]; l.Status != "error" || !strings.Contains(l.Error, "state-tso") {
		t.Errorf("batch line = %+v, want error enumerating modes", l)
	}
}

// TestBatchItemModeOverrideCluster: per-item mode overrides must survive
// cluster forwarding — two items with the same peer-owned digest but
// different modes both resolve on the owner, each under its own mode and
// cache key.
func TestBatchItemModeOverrideCluster(t *testing.T) {
	nodes, _ := newTestCluster(t, 2, func(i int, cfg *service.Config) {
		cfg.MaxJobs = 2
	})
	theirs := genProgramOwnedBy(t, nodes[0].cl, "n2")

	lines, summary, code := postBatch(t, nodes[0].url(), service.BatchRequest{
		Mode: service.ModeRA, // top-level default the items override
		Items: []service.VerifyRequest{
			{Source: theirs, Mode: service.ModeTSO},
			{Source: theirs, Mode: service.ModeStateTSO},
			{Source: theirs}, // inherits the top-level ra default
		},
	})
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if summary.Done != 3 {
		t.Fatalf("summary = %+v, want 3 done", summary)
	}
	wantModes := []string{service.ModeTSO, service.ModeStateTSO, service.ModeRA}
	for i, want := range wantModes {
		l := lines[i]
		if l.Status != service.StatusDone || l.Result == nil {
			t.Errorf("item %d = %+v, want done with result", i, l)
			continue
		}
		if l.Result.Mode != want {
			t.Errorf("item %d: result mode %q, want %q — per-item mode lost in forwarding", i, l.Result.Mode, want)
		}
	}
	if st := nodeStats(t, nodes[0]); st.PeerForwards < 3 {
		t.Errorf("n1 peerForwards = %d, want >= 3", st.PeerForwards)
	}
}
