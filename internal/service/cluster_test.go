package service_test

// In-process multi-node cluster tests: N service.Servers, each with its
// own persistent store and a cluster view over real TCP listeners bound
// before any server starts (so every member list carries final
// addresses). These are the acceptance scenarios: digest routing to one
// owner, degradation when the owner is dead, a restarted node serving
// verdicts from its disk log with zero exploration, work stealing, and
// DELETE propagation through forwarded handles.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/parser"
	"repro/internal/prog"
	"repro/internal/service"
)

type clusterNode struct {
	id      string
	addr    string
	store   string
	srv     *service.Server
	ts      *httptest.Server
	cl      *cluster.Cluster
	stopped bool
}

func (nd *clusterNode) url() string { return "http://" + nd.addr }

func (nd *clusterNode) stop(t *testing.T) {
	t.Helper()
	if nd.stopped {
		return
	}
	nd.stopped = true
	nd.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := nd.srv.Drain(ctx); err != nil && !errors.Is(err, service.ErrDrainTimeout) {
		t.Errorf("drain %s: %v", nd.id, err)
	}
}

// startNode builds and starts one node on a pre-bound listener. mut
// tweaks the node's config before the cluster view is attached.
func startNode(t *testing.T, l net.Listener, id, storePath string, members []cluster.Member, mut func(*service.Config)) *clusterNode {
	t.Helper()
	cl, err := cluster.New(cluster.Config{SelfID: id, Members: members, Backoff: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cfg := service.Config{
		MaxJobs:       1,
		MaxQueue:      16,
		StealInterval: -1, // stealing off unless a test opts in
		StorePath:     storePath,
	}
	if mut != nil {
		mut(&cfg)
	}
	cfg.Cluster = cl
	srv, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := &httptest.Server{Listener: l, Config: &http.Server{Handler: srv}}
	ts.Start()
	return &clusterNode{id: id, addr: l.Addr().String(), store: storePath, srv: srv, ts: ts, cl: cl}
}

// newTestCluster brings up n nodes named n1..nN, each with a persistent
// store in a fresh temp dir.
func newTestCluster(t *testing.T, n int, mut func(i int, cfg *service.Config)) ([]*clusterNode, []cluster.Member) {
	t.Helper()
	listeners := make([]net.Listener, n)
	members := make([]cluster.Member, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		members[i] = cluster.Member{ID: fmt.Sprintf("n%d", i+1), URL: "http://" + l.Addr().String()}
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		i := i
		var m func(*service.Config)
		if mut != nil {
			m = func(c *service.Config) { mut(i, c) }
		}
		store := filepath.Join(t.TempDir(), "verdicts.log")
		nodes[i] = startNode(t, listeners[i], members[i].ID, store, members, m)
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.stop(t)
		}
	})
	return nodes, members
}

// verifyView decodes both response shapes of POST /v1/verify: a cached
// envelope ({"cached":true,"source":...,"result":...}) and a job
// snapshot.
type verifyView struct {
	ID     string          `json:"id"`
	Cached bool            `json:"cached"`
	Source string          `json:"source"`
	Status string          `json:"status"`
	Result *service.Result `json:"result"`
	Error  string          `json:"error"`
}

type statsView struct {
	Submitted    int64  `json:"submitted"`
	MemoryHits   int64  `json:"memoryHits"`
	DiskHits     int64  `json:"diskHits"`
	PeerForwards int64  `json:"peerForwards"`
	ForwardFails int64  `json:"forwardFails"`
	Steals       int64  `json:"steals"`
	Stolen       int64  `json:"stolen"`
	BatchItems   int64  `json:"batchItems"`
	Node         string `json:"node"`
	Store        *struct {
		Records int `json:"records"`
	} `json:"store"`
}

// post sends a JSON request to base+path with optional extra headers.
func post(t *testing.T, base, path string, hdr map[string]string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hr.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func nodeStats(t *testing.T, nd *clusterNode) statsView {
	t.Helper()
	resp, err := http.Get(nd.url() + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsView
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func clusterSnap(t *testing.T, base, id string) (service.Snapshot, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap service.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap, resp.StatusCode
}

func waitFor(t *testing.T, base, id string, want func(string) bool, timeout time.Duration) service.Snapshot {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		snap, code := clusterSnap(t, base, id)
		if code == http.StatusOK && want(snap.Status) {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in status %q (want satisfied: no) after %v", id, snap.Status, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func terminal(status string) bool {
	switch status {
	case service.StatusDone, service.StatusCanceled, service.StatusFailed:
		return true
	}
	return false
}

// genProgramOwnedBy searches the deterministic generator for a program
// whose canonical digest is owned by ownerID under cl's membership.
func genProgramOwnedBy(t *testing.T, cl *cluster.Cluster, ownerID string) string {
	t.Helper()
	g := gen.New(gen.Config{Seed: 42, NoExtras: true})
	for i := 0; i < 2000; i++ {
		src := g.Source(i)
		p, err := parser.Parse(src)
		if err != nil || p.Validate() != nil {
			continue
		}
		if cl.Owner(prog.CanonicalDigest(p)).ID == ownerID {
			return src
		}
	}
	t.Fatalf("no generated program owned by %s in 2000 tries", ownerID)
	return ""
}

// forcedLocal makes a node handle a submission itself, bypassing owner
// routing — the tests use it to pile work onto a chosen victim.
func forcedLocal() map[string]string {
	return map[string]string{cluster.ForwardHeader: "test-client"}
}

// TestClusterSingleOwner: the same program — under different spellings —
// submitted to all three nodes is verified exactly once cluster-wide;
// repeat submissions are cache hits wherever the client connects.
func TestClusterSingleOwner(t *testing.T) {
	nodes, _ := newTestCluster(t, 3, nil)
	src := corpusSource(t, "SB")

	var results []*service.Result
	for i, s := range []string{src, sbVariant, src} {
		resp, body := post(t, nodes[i].url(), "/v1/verify", nil, service.VerifyRequest{Source: s, Wait: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d: status %d: %s", i, resp.StatusCode, body)
		}
		var v verifyView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Result == nil {
			t.Fatalf("node %d: no result in %s", i, body)
		}
		if i > 0 && !v.Cached {
			t.Errorf("node %d: repeat submission not served from a cache: %s", i, body)
		}
		results = append(results, v.Result)
	}
	for i, r := range results[1:] {
		if r.Robust != results[0].Robust || r.States != results[0].States {
			t.Errorf("response %d disagrees: %+v vs %+v", i+1, r, results[0])
		}
	}

	owners := 0
	var total int64
	for _, nd := range nodes {
		st := nodeStats(t, nd)
		total += st.Submitted
		if st.Submitted > 0 {
			owners++
		}
	}
	if total != 1 || owners != 1 {
		t.Errorf("want exactly 1 job on exactly 1 node, got %d jobs on %d nodes", total, owners)
	}
}

// TestClusterOwnerDownDegrades: with the owning node dead, a non-owner
// still answers — it verifies locally after the forward exhausts its
// retries. A dead peer costs latency, never availability.
func TestClusterOwnerDownDegrades(t *testing.T) {
	nodes, _ := newTestCluster(t, 2, nil)
	src := genProgramOwnedBy(t, nodes[0].cl, "n2")
	nodes[1].stop(t)

	resp, body := post(t, nodes[0].url(), "/v1/verify", nil, service.VerifyRequest{Source: src, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v verifyView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Status != service.StatusDone || v.Result == nil {
		t.Fatalf("degraded verification did not complete: %s", body)
	}
	st := nodeStats(t, nodes[0])
	if st.ForwardFails < 1 {
		t.Errorf("forwardFails = %d, want >= 1", st.ForwardFails)
	}
	if st.Submitted != 1 {
		t.Errorf("submitted = %d, want 1 (local degradation)", st.Submitted)
	}
}

// TestClusterRestartServesFromStore: a verdict computed before a node
// restarts is served after the restart from its persistent store — a
// disk hit with zero exploration — including to peers that route to it.
func TestClusterRestartServesFromStore(t *testing.T) {
	nodes, members := newTestCluster(t, 3, nil)
	src := genProgramOwnedBy(t, nodes[0].cl, "n2")

	// Verify once via n1; the job runs on its owner n2 and lands in n2's
	// disk log.
	resp, body := post(t, nodes[0].url(), "/v1/verify", nil, service.VerifyRequest{Source: src, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var first verifyView
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Result == nil {
		t.Fatalf("no result: %s", body)
	}

	// Restart n2: drain (flushes the log), rebind the same address, open
	// the same store.
	old := nodes[1]
	old.stop(t)
	l, err := net.Listen("tcp", old.addr)
	if err != nil {
		t.Fatal(err)
	}
	restarted := startNode(t, l, old.id, old.store, members, nil)
	t.Cleanup(func() { restarted.stop(t) })

	// Submit via n3, whose LRU never saw this program: it forwards to the
	// restarted n2, which answers from disk without exploring.
	resp, body = post(t, nodes[2].url(), "/v1/verify", nil, service.VerifyRequest{Source: src, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var second verifyView
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Source != service.CachedDisk {
		t.Fatalf("want a disk hit, got %s", body)
	}
	if second.Result == nil || second.Result.States != first.Result.States ||
		second.Result.Robust != first.Result.Robust {
		t.Fatalf("restarted verdict differs: %s vs first %+v", body, first.Result)
	}
	st := nodeStats(t, restarted)
	if st.Submitted != 0 {
		t.Errorf("restarted node explored (%d jobs); want the verdict from disk alone", st.Submitted)
	}
	if st.DiskHits != 1 {
		t.Errorf("diskHits = %d, want 1", st.DiskHits)
	}
	if st.Store == nil || st.Store.Records < 1 {
		t.Errorf("restarted store reports no records: %+v", st.Store)
	}
}

// TestClusterWorkStealing: with n1's single worker pinned by a long job,
// its queue drains anyway — idle n2 steals the queued jobs, runs them,
// and pushes the verdicts back.
func TestClusterWorkStealing(t *testing.T) {
	nodes, _ := newTestCluster(t, 2, func(i int, cfg *service.Config) {
		if i == 1 {
			cfg.StealInterval = 5 * time.Millisecond
		}
	})
	n1 := nodes[0].url()

	// Pin n1's only worker. lamport2-3-ra explores for minutes; the test
	// cancels it long before that.
	resp, body := post(t, n1, "/v1/verify", forcedLocal(),
		service.VerifyRequest{Source: corpusSource(t, "lamport2-3-ra"), TimeoutMs: 120_000})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker not admitted: %d %s", resp.StatusCode, body)
	}
	var blocker verifyView
	if err := json.Unmarshal(body, &blocker); err != nil {
		t.Fatal(err)
	}
	defer func() {
		req, _ := http.NewRequest(http.MethodDelete, n1+"/v1/jobs/"+blocker.ID, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, n1, blocker.ID, func(s string) bool { return s == service.StatusRunning }, 10*time.Second)

	// Queue jobs on n1 that only a thief can run.
	g := gen.New(gen.Config{Seed: 7, NoExtras: true})
	var ids []string
	for i := 0; i < 6; i++ {
		resp, body := post(t, n1, "/v1/verify", forcedLocal(), service.VerifyRequest{Source: g.Source(i)})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d not admitted: %d %s", i, resp.StatusCode, body)
		}
		var v verifyView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		snap := waitFor(t, n1, id, terminal, 30*time.Second)
		if snap.Status != service.StatusDone || snap.Result == nil {
			t.Errorf("stolen job %s ended %q (%s), want done with a verdict", id, snap.Status, snap.Error)
		}
	}
	if st := nodeStats(t, nodes[0]); st.Stolen < 1 {
		t.Errorf("victim reports stolen = %d, want >= 1", st.Stolen)
	}
	if st := nodeStats(t, nodes[1]); st.Steals < 1 {
		t.Errorf("thief reports steals = %d, want >= 1", st.Steals)
	}
}

// TestClusterDeleteForwardedPropagates: DELETE against a forwarded
// handle cancels the job on the owning peer, not just the local proxy.
func TestClusterDeleteForwardedPropagates(t *testing.T) {
	nodes, _ := newTestCluster(t, 2, nil)
	n1, n2 := nodes[0].url(), nodes[1].url()
	src := genProgramOwnedBy(t, nodes[0].cl, "n2")

	// Pin n2's only worker so the forwarded job stays queued there.
	resp, body := post(t, n2, "/v1/verify", forcedLocal(),
		service.VerifyRequest{Source: corpusSource(t, "lamport2-3-ra"), TimeoutMs: 120_000})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker not admitted: %d %s", resp.StatusCode, body)
	}
	var blocker verifyView
	if err := json.Unmarshal(body, &blocker); err != nil {
		t.Fatal(err)
	}
	defer func() {
		req, _ := http.NewRequest(http.MethodDelete, n2+"/v1/jobs/"+blocker.ID, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, n2, blocker.ID, func(s string) bool { return s == service.StatusRunning }, 10*time.Second)

	// Async submit via n1: forwarded to n2, answered with a local proxy
	// handle.
	resp, body = post(t, n1, "/v1/verify", nil, service.VerifyRequest{Source: src})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(cluster.OwnerHeader); got != "n2" {
		t.Errorf("owner header = %q, want n2", got)
	}
	var v verifyView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+v.ID {
		t.Errorf("location %q does not match id %q", loc, v.ID)
	}
	if snap, code := clusterSnap(t, n1, v.ID); code != http.StatusOK || snap.ID != v.ID || snap.Status != service.StatusQueued {
		t.Fatalf("proxy GET: code %d, snap %+v", code, snap)
	}

	req, err := http.NewRequest(http.MethodDelete, n1+"/v1/jobs/"+v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var dsnap service.Snapshot
	if err := json.NewDecoder(dresp.Body).Decode(&dsnap); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || dsnap.Status != service.StatusCanceled {
		t.Fatalf("DELETE via proxy: code %d, status %q", dresp.StatusCode, dsnap.Status)
	}
	// The remote job is gone from n2's queue, not just hidden locally.
	hresp, err := http.Get(n2 + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Queued int `json:"queued"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Queued != 0 {
		t.Errorf("owner still has %d queued jobs after propagated DELETE", health.Queued)
	}
	// And the local handle stays canceled on re-read.
	if snap, _ := clusterSnap(t, n1, v.ID); snap.Status != service.StatusCanceled {
		t.Errorf("proxy handle status %q after DELETE, want canceled", snap.Status)
	}
}

// TestStoreRestartSingleNode: the persistent store works without a
// cluster — a restarted single node serves its old verdicts as disk hits.
func TestStoreRestartSingleNode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	srv1, err := service.New(service.Config{StorePath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	resp, body := post(t, ts1.URL, "/v1/verify", nil,
		service.VerifyRequest{Source: corpusSource(t, "SB"), Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var first verifyView
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	srv2, err := service.New(service.Config{StorePath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv2.Drain(ctx)
	})
	resp, body = post(t, ts2.URL, "/v1/verify", nil,
		service.VerifyRequest{Source: corpusSource(t, "SB"), Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var second verifyView
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Source != service.CachedDisk {
		t.Fatalf("want a disk hit after restart, got %s", body)
	}
	if second.Result == nil || first.Result == nil || second.Result.States != first.Result.States {
		t.Fatalf("disk verdict differs: %s vs %+v", body, first.Result)
	}
}
