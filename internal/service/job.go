package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/model"
	"repro/internal/prog"
	"repro/internal/staterobust"
)

// Mode names the verification question a job answers. The modes are
// defined by the internal/model registry — rockerd re-exports the
// constants so existing callers keep compiling, but validation, error
// messages, and dispatch all go through the registry, so a newly
// registered model is automatically accepted (and enumerated) here.
const (
	ModeRA       = model.ModeRA       // execution-graph robustness against RA (the paper's main question)
	ModeSRA      = model.ModeSRA      // …against the POPL'16 SRA strengthening
	ModeSC       = model.ModeSC       // plain SC exploration: assertion checking only
	ModeTSO      = model.ModeTSO      // state robustness against TSO, attack-based instrumentation
	ModeStateRA  = model.ModeStateRA  // state robustness via the §3 timestamp machine
	ModeStateSRA = model.ModeStateSRA // …with SRA write slots
	ModeStateTSO = model.ModeStateTSO // state robustness via the exhaustive TSO store-buffer product
)

// validMode reports whether m names a verification mode.
func validMode(m string) bool { return model.Valid(m) }

// Job statuses. A job moves queued → running → one of the terminal
// statuses; canceled covers client cancellation, deadline expiry, and
// shutdown — a canceled job never carries a verdict.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusCanceled = "canceled"
	StatusFailed   = "failed"
	// StatusForwarded marks a local handle for a job owned by a cluster
	// peer: GET/DELETE/stream proxy to the owner, and the local status
	// flips to the observed terminal status once the owner reports one.
	StatusForwarded = "forwarded"
)

// Cache-hit sources, reported in cached responses, batch lines, and the
// per-source /v1/stats counters.
const (
	CachedMemory = "memory" // in-memory LRU
	CachedDisk   = "disk"   // persistent verdict store (vstore)
	CachedPeer   = "peer"   // served by the owning cluster peer
)

// Result is the JSON-serializable outcome of a completed verification.
type Result struct {
	Mode   string `json:"mode"`
	Robust bool   `json:"robust"`
	// States counts distinct explored states: ⟨program, SCM⟩ states for
	// the execution-graph modes, compound weak-machine states for the
	// state-* modes, plain SC states for mode sc.
	States int `json:"states"`
	// SCStates/WeakStates are the program-state counts of the state-*
	// modes (0 otherwise).
	SCStates   int `json:"scStates,omitempty"`
	WeakStates int `json:"weakStates,omitempty"`
	// MetadataBits is the §5.1 instrumentation size (execution-graph
	// modes).
	MetadataBits int    `json:"metadataBits,omitempty"`
	Violations   int    `json:"violations,omitempty"`
	AssertFail   string `json:"assertFail,omitempty"`
	TraceLen     int    `json:"traceLen,omitempty"`
	// Static-pruning outcomes (execution-graph modes with staticPrune
	// set). Certificate means the conflict analysis discharged the
	// program with zero exploration; PrunedLocs counts locations dropped
	// from monitor instrumentation; CritSharpened reports that constant
	// propagation shrank some critical-value set.
	Certificate   bool `json:"certificate,omitempty"`
	PrunedLocs    int  `json:"prunedLocs,omitempty"`
	CritSharpened bool `json:"critSharpened,omitempty"`
	// Partial-order reduction counters (execution-graph modes with reduce
	// set): ample-set expansions taken, sleep-set edge skips, and states
	// folded onto a symmetric representative. AmpleHits is deterministic;
	// the other two depend on expansion order.
	AmpleHits     int64   `json:"ampleHits,omitempty"`
	SleepSkips    int64   `json:"sleepSkips,omitempty"`
	SymmetryFolds int64   `json:"symmetryFolds,omitempty"`
	ElapsedMs     float64 `json:"elapsedMs"`
}

// job is one queued or running verification. Progress fields are atomics:
// the verifier's progress hook stores into them from worker goroutines
// while snapshot readers load them without locks.
type job struct {
	id     string
	mode   string
	digest prog.Digest
	key    string // verdict-cache key
	prg    *lang.Program
	src    string // original source text, retained for steal handover

	maxStates   int
	workers     int
	timeout     time.Duration
	staticPrune bool
	reduce      bool

	ctx    context.Context
	cancel context.CancelCauseFunc

	created time.Time

	// remote, when non-nil, makes this a forwarded handle: the job runs
	// on the named peer under remote.id and this node proxies to it.
	// Immutable after creation.
	remote *remoteRef

	// mu guards status, result, err, started, finished, stolenBy,
	// memoized.
	mu       sync.Mutex
	status   string
	result   *Result
	err      string
	started  time.Time
	finished time.Time
	// stolenBy names the peer that took this queued job via /v1/steal;
	// the terminal status arrives through POST /v1/jobs/{id}/result.
	stolenBy string
	// memoized dedups the forwarded handle's cache fill (proxy snapshots
	// may observe the terminal status more than once).
	memoized bool

	states   atomic.Int64
	expanded atomic.Int64

	done chan struct{} // closed on reaching a terminal status
}

// remoteRef names the peer-side identity of a forwarded job.
type remoteRef struct {
	node cluster.Member
	id   string // job id on the owning peer
}

// isStolen reports whether a peer took this job via /v1/steal.
func (j *job) isStolen() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stolenBy != ""
}

// errDeleted marks client-requested cancellation (DELETE /v1/jobs/{id}).
var errDeleted = errors.New("canceled by client")

// errDrained marks jobs cut off by a forced shutdown.
var errDrained = errors.New("server shutting down")

// errLost marks a stolen job whose thief never reported back.
var errLost = errors.New("stolen job lost: thief never pushed a result")

// Snapshot is the polling view of a job (GET /v1/jobs/{id} and each line
// of the NDJSON stream).
type Snapshot struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Mode   string `json:"mode"`
	Digest string `json:"digest"`
	// States/Expanded are live exploration counters; Frontier is their
	// difference — states interned but not yet expanded, the BFS frontier.
	States   int64 `json:"states"`
	Expanded int64 `json:"expanded"`
	Frontier int64 `json:"frontier"`
	// StatesPerSec is the mean exploration rate since the job started.
	StatesPerSec float64 `json:"statesPerSec"`
	ElapsedMs    float64 `json:"elapsedMs"`
	// HeapBytes is the process-wide live heap (rate-limited sample shared
	// by all jobs).
	HeapBytes uint64  `json:"heapBytes"`
	Result    *Result `json:"result,omitempty"`
	Error     string  `json:"error,omitempty"`
}

func (j *job) snapshot() Snapshot {
	j.mu.Lock()
	status, result, errMsg := j.status, j.result, j.err
	started, finished := j.started, j.finished
	j.mu.Unlock()

	s := Snapshot{
		ID:        j.id,
		Status:    status,
		Mode:      j.mode,
		Digest:    j.digest.String(),
		States:    j.states.Load(),
		Expanded:  j.expanded.Load(),
		HeapBytes: sampleHeap(),
		Result:    result,
		Error:     errMsg,
	}
	if s.Frontier = s.States - s.Expanded; s.Frontier < 0 {
		s.Frontier = 0
	}
	if !started.IsZero() {
		end := finished
		if end.IsZero() {
			end = time.Now()
		}
		el := end.Sub(started)
		s.ElapsedMs = float64(el) / float64(time.Millisecond)
		if el > 0 {
			s.StatesPerSec = float64(s.States) / el.Seconds()
		}
	}
	return s
}

// finish moves the job to a terminal status. Exactly one call wins; later
// calls (e.g. a cancellation racing completion) are ignored.
func (j *job) finish(status string, res *Result, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusDone, StatusCanceled, StatusFailed:
		return
	}
	j.status = status
	j.result = res
	j.err = errMsg
	j.finished = time.Now()
	close(j.done)
}

// run executes the job's verification and resolves its terminal status.
// Called on a worker goroutine with admission already granted.
func (j *job) run() {
	j.mu.Lock()
	if j.status != StatusQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()

	ctx := j.ctx
	cancel := func() {}
	if j.timeout > 0 {
		ctx, cancel = context.WithTimeoutCause(ctx, j.timeout, context.DeadlineExceeded)
	}
	defer cancel()

	res, err := j.verify(ctx)
	switch {
	case err == nil:
		j.finish(StatusDone, res, "")
	case errors.Is(err, core.ErrCanceled) || errors.Is(err, staterobust.ErrCanceled):
		j.finish(StatusCanceled, nil, fmt.Sprintf("canceled: %v", context.Cause(ctx)))
	default:
		j.finish(StatusFailed, nil, err.Error())
	}
}

// verify dispatches to the engine selected by the job's mode.
func (j *job) verify(ctx context.Context) (*Result, error) {
	start := time.Now()
	switch j.mode {
	case ModeRA, ModeSRA, ModeSC:
		opts := core.Options{
			Model:        core.ModelRA,
			AbstractVals: true,
			MaxStates:    j.maxStates,
			Workers:      j.workers,
			StaticPrune:  j.staticPrune,
			Reduce:       j.reduce,
			Ctx:          ctx,
			Progress: func(p core.Progress) {
				j.states.Store(int64(p.States))
				j.expanded.Store(p.Expanded)
			},
		}
		if j.mode == ModeSRA {
			opts.Model = core.ModelSRA
		}
		if j.mode == ModeSC {
			sv, err := core.VerifySC(j.prg, opts)
			if err != nil {
				return nil, err
			}
			res := &Result{
				Mode:          j.mode,
				Robust:        sv.AssertFail == nil,
				States:        sv.States,
				AmpleHits:     sv.AmpleHits,
				SleepSkips:    sv.SleepSkips,
				SymmetryFolds: sv.SymmetryFolds,
				ElapsedMs:     msSince(start),
			}
			if sv.AssertFail != nil {
				res.AssertFail = sv.AssertFail.Error()
			}
			j.states.Store(int64(sv.States))
			return res, nil
		}
		v, err := core.Verify(j.prg, opts)
		if err != nil {
			return nil, err
		}
		res := &Result{
			Mode:          j.mode,
			Robust:        v.Robust,
			States:        v.States,
			MetadataBits:  v.MetadataBits,
			Violations:    len(v.Violations),
			TraceLen:      len(v.Trace),
			Certificate:   v.Certificate,
			PrunedLocs:    v.PrunedLocs,
			CritSharpened: v.CritSharpened,
			AmpleHits:     v.AmpleHits,
			SleepSkips:    v.SleepSkips,
			SymmetryFolds: v.SymmetryFolds,
			ElapsedMs:     msSince(start),
		}
		if v.AssertFail != nil {
			res.AssertFail = v.AssertFail.Error()
		}
		j.states.Store(int64(v.States))
		return res, nil
	case ModeTSO, ModeStateRA, ModeStateSRA, ModeStateTSO:
		lim := staterobust.Limits{
			MaxStates: j.maxStates,
			Workers:   j.workers,
			Reduce:    j.reduce,
			Ctx:       ctx,
			Progress: func(explored int) {
				j.states.Store(int64(explored))
				j.expanded.Add(progressPeriod)
			},
		}
		r, err := model.Check(j.mode, j.prg, lim)
		if err != nil {
			return nil, err
		}
		j.states.Store(int64(r.Explored))
		return &Result{
			Mode:       j.mode,
			Robust:     r.Robust,
			States:     r.Explored,
			SCStates:   r.SCStates,
			WeakStates: r.WeakStates,
			TraceLen:   len(r.WitnessTrace),
			ElapsedMs:  msSince(start),
		}, nil
	}
	return nil, fmt.Errorf("unknown mode %q (supported: %s)", j.mode, model.ModeList())
}

// progressPeriod mirrors the staterobust checkers' fixed progress cadence,
// so the expanded counter advances even though those hooks only carry the
// explored-state count.
const progressPeriod = 4096

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}

// heap sampling: ReadMemStats briefly stops the world, so snapshots share
// one sample refreshed at most every 200ms.
var (
	heapSampleNS atomic.Int64
	heapBytes    atomic.Uint64
	heapMu       sync.Mutex
)

func sampleHeap() uint64 {
	const maxAge = 200 * time.Millisecond
	now := time.Now().UnixNano()
	if now-heapSampleNS.Load() > int64(maxAge) {
		heapMu.Lock()
		if now-heapSampleNS.Load() > int64(maxAge) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			heapBytes.Store(ms.HeapInuse)
			heapSampleNS.Store(now)
		}
		heapMu.Unlock()
	}
	return heapBytes.Load()
}
