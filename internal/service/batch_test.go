package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/service"
)

// postBatch sends a batch and decodes the NDJSON reply into per-index
// lines plus the trailing summary.
func postBatch(t *testing.T, base string, req service.BatchRequest) (map[int]service.BatchLine, service.BatchSummary, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/verify/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := make(map[int]service.BatchLine)
	var summary service.BatchSummary
	if resp.StatusCode != http.StatusOK {
		return lines, summary, resp.StatusCode
	}
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		var probe struct {
			Summary bool `json:"summary"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if probe.Summary {
			if err := json.Unmarshal(sc.Bytes(), &summary); err != nil {
				t.Fatal(err)
			}
			sawSummary = true
			continue
		}
		var line service.BatchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if _, dup := lines[line.Index]; dup {
			t.Fatalf("index %d emitted twice", line.Index)
		}
		lines[line.Index] = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSummary {
		t.Fatal("batch stream ended without a summary line")
	}
	return lines, summary, resp.StatusCode
}

// TestBatchEndToEnd: mixed batch — a memory-cache hit, a fresh verify, a
// parse failure, a bogus mode — streams one line per item plus a summary,
// and bad items never poison good ones.
func TestBatchEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxJobs: 2})

	// Pre-seed the cache so the digest-equal variant is a memory hit.
	resp, body := post(t, ts.URL, "/v1/verify", nil,
		service.VerifyRequest{Source: corpusSource(t, "SB"), Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed verify: %d %s", resp.StatusCode, body)
	}

	lines, summary, code := postBatch(t, ts.URL, service.BatchRequest{
		Items: []service.VerifyRequest{
			{Source: sbVariant},
			{Source: corpusSource(t, "MP")},
			{Source: "this does not parse ("},
			{Source: corpusSource(t, "SB"), Mode: "bogus"},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4: %v", len(lines), lines)
	}
	if l := lines[0]; l.Status != service.StatusDone || l.Cached != service.CachedMemory || l.Result == nil {
		t.Errorf("item 0 (cached variant) = %+v, want done from memory", l)
	}
	if l := lines[1]; l.Status != service.StatusDone || l.Cached != "" || l.Result == nil {
		t.Errorf("item 1 (fresh) = %+v, want done uncached", l)
	}
	if l := lines[2]; l.Status != "error" || l.Error == "" {
		t.Errorf("item 2 (parse failure) = %+v, want error", l)
	}
	if l := lines[3]; l.Status != "error" || l.Error == "" {
		t.Errorf("item 3 (bad mode) = %+v, want error", l)
	}
	if summary.Total != 4 || summary.Done != 2 || summary.Errors != 2 || summary.CachedMemory != 1 {
		t.Errorf("summary = %+v", summary)
	}
}

// TestBatchAbsorbsSaturation: a batch larger than workers+queue completes
// without any per-item admission failure — items wait their turn instead
// of seeing 429.
func TestBatchAbsorbsSaturation(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{MaxJobs: 1, MaxQueue: 1})
	_ = srv
	g := gen.New(gen.Config{Seed: 3, NoExtras: true})
	var items []service.VerifyRequest
	for i := 0; i < 6; i++ {
		items = append(items, service.VerifyRequest{Source: g.Source(i)})
	}
	lines, summary, code := postBatch(t, ts.URL, service.BatchRequest{
		Items:     items,
		TimeoutMs: (30 * time.Second).Milliseconds(),
	})
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if summary.Done != 6 || summary.Errors != 0 || summary.Canceled != 0 || summary.Failed != 0 {
		t.Fatalf("summary = %+v, want 6 done", summary)
	}
	for i := 0; i < 6; i++ {
		if l := lines[i]; l.Status != service.StatusDone || l.Result == nil {
			t.Errorf("item %d = %+v, want done", i, l)
		}
	}
}

// TestBatchLimits: an oversized item count is rejected up front with 413,
// before any work starts.
func TestBatchLimits(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxBatchItems: 2})
	items := make([]service.VerifyRequest, 3)
	for i := range items {
		items[i] = service.VerifyRequest{Source: corpusSource(t, "SB")}
	}
	_, _, code := postBatch(t, ts.URL, service.BatchRequest{Items: items})
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", code)
	}
	_, _, code = postBatch(t, ts.URL, service.BatchRequest{})
	if code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", code)
	}
}

// TestBatchClusterRouting: batch items are routed per-item — digests
// owned by a peer resolve there (line cached="peer"), self-owned digests
// run locally.
func TestBatchClusterRouting(t *testing.T) {
	nodes, _ := newTestCluster(t, 2, func(i int, cfg *service.Config) {
		cfg.MaxJobs = 2
	})
	mine := genProgramOwnedBy(t, nodes[0].cl, "n1")
	theirs := genProgramOwnedBy(t, nodes[0].cl, "n2")

	lines, summary, code := postBatch(t, nodes[0].url(), service.BatchRequest{
		Items: []service.VerifyRequest{
			{Source: theirs},
			{Source: mine},
			{Source: theirs}, // duplicate digest: cache hit somewhere
		},
	})
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if summary.Done != 3 {
		t.Fatalf("summary = %+v, want 3 done", summary)
	}
	if l := lines[0]; l.Status != service.StatusDone {
		t.Errorf("peer-owned item = %+v, want done", l)
	}
	if l := lines[1]; l.Status != service.StatusDone || l.Cached == service.CachedPeer {
		t.Errorf("self-owned item = %+v, want done locally", l)
	}
	// Both spellings of "theirs" resolved without local exploration on n1.
	for _, i := range []int{0, 2} {
		if l := lines[i]; l.Cached == "" {
			t.Errorf("item %d ran locally (%+v), want peer/cache resolution", i, l)
		}
	}
	if st := nodeStats(t, nodes[0]); st.PeerForwards < 1 {
		t.Errorf("n1 peerForwards = %d, want >= 1", st.PeerForwards)
	}
	if st := nodeStats(t, nodes[1]); st.Submitted < 1 {
		t.Errorf("n2 submitted = %d, want >= 1 (owner ran the job)", st.Submitted)
	}
}
