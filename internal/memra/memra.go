// Package memra implements the operational release/acquire memory
// subsystem of §3 (Figure 3), due to Kang et al.'s timestamp machine: the
// memory is a set of timestamped messages carrying views, and each thread
// maintains a view placing lower bounds on the messages it may read and the
// timestamps it may pick for new messages.
//
// Timestamps make the raw machine infinite-state. For exhaustive
// exploration the package provides an exact finite canonicalization
// (Canonicalize): per location, timestamps are re-ranked preserving order
// while clamping gaps at a configurable cap. Order determines mo;
// adjacency (t and t+1) determines where RMWs may land; and a gap of size g
// can absorb at most g-1 future writes — so clamping gaps at one more than
// the number of writes the program can still perform is behaviour-
// preserving. Two canonical states are bisimilar in the raw machine.
package memra

import (
	"sort"

	"repro/internal/lang"
)

// Time is a timestamp (§3: Time ≜ ℕ).
type Time uint16

// View is a thread or message view: Loc → Time.
type View []Time

// Clone returns a deep copy.
func (v View) Clone() View {
	c := make(View, len(v))
	copy(c, v)
	return c
}

// Join computes the pointwise maximum v ⊔ w in place on v.
func (v View) Join(w View) {
	for i := range v {
		if w[i] > v[i] {
			v[i] = w[i]
		}
	}
}

// Msg is a message ⟨x=v@t, view⟩ in the RA memory.
type Msg struct {
	Loc  lang.Loc
	Val  lang.Val
	T    Time
	View View
}

// State is a state of the RA memory subsystem: the message pool and the
// per-thread views. Messages are kept sorted by (Loc, T); there is never
// more than one message per (Loc, T) pair.
type State struct {
	Msgs  []Msg
	Views []View

	// remap is Canonicalize's per-location timestamp translation table,
	// kept on the state so pooled scratch states canonicalize without
	// allocating. Not part of the state proper (ignored by Clone, CopyFrom
	// and Encode).
	remap []Time
}

// New returns the initial RA state for the given numbers of locations and
// threads: one initialization message ⟨x=0@0, ⊥⟩ per location and all-zero
// thread views.
func New(numLocs, numThreads int) *State {
	s := &State{}
	for x := 0; x < numLocs; x++ {
		s.Msgs = append(s.Msgs, Msg{Loc: lang.Loc(x), Val: 0, T: 0, View: make(View, numLocs)})
	}
	for i := 0; i < numThreads; i++ {
		s.Views = append(s.Views, make(View, numLocs))
	}
	return s
}

// Clone returns a deep copy.
func (s *State) Clone() *State {
	c := &State{
		Msgs:  make([]Msg, len(s.Msgs)),
		Views: make([]View, len(s.Views)),
	}
	for i, m := range s.Msgs {
		c.Msgs[i] = Msg{Loc: m.Loc, Val: m.Val, T: m.T, View: m.View.Clone()}
	}
	for i, v := range s.Views {
		c.Views[i] = v.Clone()
	}
	return c
}

// CopyFrom overwrites s with o, reusing s's message and view storage where
// the shapes match — the pooled-scratch counterpart of Clone. Shrinking
// reslices within capacity, so the View backing arrays of dropped messages
// stay available for later regrowth and inserts.
func (s *State) CopyFrom(o *State) {
	for len(s.Msgs) < len(o.Msgs) {
		if len(s.Msgs) < cap(s.Msgs) {
			s.Msgs = s.Msgs[:len(s.Msgs)+1]
		} else {
			s.Msgs = append(s.Msgs, Msg{})
		}
	}
	s.Msgs = s.Msgs[:len(o.Msgs)]
	for i := range o.Msgs {
		om := &o.Msgs[i]
		m := &s.Msgs[i]
		m.Loc, m.Val, m.T = om.Loc, om.Val, om.T
		if len(m.View) != len(om.View) {
			m.View = make(View, len(om.View))
		}
		copy(m.View, om.View)
	}
	if len(s.Views) != len(o.Views) {
		s.Views = make([]View, len(o.Views))
	}
	for i := range o.Views {
		if len(s.Views[i]) != len(o.Views[i]) {
			s.Views[i] = make(View, len(o.Views[i]))
		}
		copy(s.Views[i], o.Views[i])
	}
}

// hasMsgAt reports whether a message of x with timestamp t exists.
func (s *State) hasMsgAt(x lang.Loc, t Time) bool {
	for i := range s.Msgs {
		if s.Msgs[i].Loc == x && s.Msgs[i].T == t {
			return true
		}
	}
	return false
}

// maxT returns the maximal timestamp of a message of x.
func (s *State) maxT(x lang.Loc) Time {
	var m Time
	for i := range s.Msgs {
		if s.Msgs[i].Loc == x && s.Msgs[i].T > m {
			m = s.Msgs[i].T
		}
	}
	return m
}

// insertCopy inserts a message ⟨x=v@t⟩ whose view is a copy of view,
// keeping the pool sorted by (Loc, T). When the Msgs slice has spare
// capacity from an earlier shrink (see CopyFrom), the vacated slot's View
// backing is reused for the copy, so pooled states write without
// allocating in steady state.
func (s *State) insertCopy(x lang.Loc, v lang.Val, t Time, view View) {
	i := sort.Search(len(s.Msgs), func(i int) bool {
		mi := &s.Msgs[i]
		return mi.Loc > x || (mi.Loc == x && mi.T > t)
	})
	var spare View
	if len(s.Msgs) < cap(s.Msgs) {
		s.Msgs = s.Msgs[:len(s.Msgs)+1]
		spare = s.Msgs[len(s.Msgs)-1].View
	} else {
		s.Msgs = append(s.Msgs, Msg{})
	}
	copy(s.Msgs[i+1:], s.Msgs[i:])
	if len(spare) != len(view) {
		spare = make(View, len(view))
	}
	copy(spare, view)
	s.Msgs[i] = Msg{Loc: x, Val: v, T: t, View: spare}
}

// ReadCandidates returns the messages of x thread tid may read: those with
// timestamp ≥ the thread's view of x (Figure 3, read rule).
func (s *State) ReadCandidates(tid lang.Tid, x lang.Loc) []Msg {
	return s.AppendReadCandidates(nil, tid, x)
}

// AppendReadCandidates is ReadCandidates appending into dst — candidate
// enumeration into caller scratch. The returned Msgs alias s's views and
// stay valid while s is unmodified.
func (s *State) AppendReadCandidates(dst []Msg, tid lang.Tid, x lang.Loc) []Msg {
	min := s.Views[tid][x]
	for i := range s.Msgs {
		if s.Msgs[i].Loc == x && s.Msgs[i].T >= min {
			dst = append(dst, s.Msgs[i])
		}
	}
	return dst
}

// Read performs the read transition of thread tid from message m
// (incorporating m's view into the thread view). The caller must pass a
// message returned by ReadCandidates.
func (s *State) Read(tid lang.Tid, m Msg) {
	s.Views[tid].Join(m.View)
	if s.Views[tid][m.Loc] < m.T {
		s.Views[tid][m.Loc] = m.T
	}
}

// WriteSlots returns the timestamps thread tid may pick for a new message
// of x: free slots strictly above the thread's view, up to headroom slots
// past the current maximal timestamp. A headroom of 1 suffices to simulate
// SC; larger headrooms allow later writes to be interleaved mo-before this
// one (see package comment on exactness).
func (s *State) WriteSlots(tid lang.Tid, x lang.Loc, headroom int) []Time {
	return s.AppendWriteSlots(nil, tid, x, headroom)
}

// AppendWriteSlots is WriteSlots appending into dst.
func (s *State) AppendWriteSlots(dst []Time, tid lang.Tid, x lang.Loc, headroom int) []Time {
	lo := s.Views[tid][x] + 1
	hi := s.maxT(x) + Time(headroom)
	for t := lo; t <= hi; t++ {
		if !s.hasMsgAt(x, t) {
			dst = append(dst, t)
		}
	}
	return dst
}

// Write performs the write transition of thread tid: a new message
// ⟨x=v@t, view⟩ where the view is the thread's updated view (Figure 3,
// write rule). t must come from WriteSlots.
func (s *State) Write(tid lang.Tid, x lang.Loc, v lang.Val, t Time) {
	s.Views[tid][x] = t
	s.insertCopy(x, v, t, s.Views[tid])
}

// WriteSlotSRA returns the timestamp a write must pick under the SRA
// model of Lahav, Giannarakis & Vafeiadis ("Taming release-acquire
// consistency", POPL 2016): writes choose a globally maximal timestamp
// (cf. the paper's Example 3.4, which contrasts RA with SRA on 2+2W).
// Since every SRA write is maximal, gaps never form and the successor of
// the current maximum is the single canonical choice.
func (s *State) WriteSlotSRA(x lang.Loc) Time {
	return s.maxT(x) + 1
}

// RMWCandidatesSRA returns the messages an SRA RMW may read: the RMW's
// write must also be maximal, so only the mo-maximal message qualifies
// (and only if the thread's view permits reading it, which it always
// does for the maximum).
func (s *State) RMWCandidatesSRA(tid lang.Tid, x lang.Loc) []Msg {
	return s.AppendRMWCandidatesSRA(nil, tid, x)
}

// AppendRMWCandidatesSRA is RMWCandidatesSRA appending into dst.
func (s *State) AppendRMWCandidatesSRA(dst []Msg, tid lang.Tid, x lang.Loc) []Msg {
	min := s.Views[tid][x]
	maxT := s.maxT(x)
	for i := range s.Msgs {
		if s.Msgs[i].Loc == x && s.Msgs[i].T >= min && s.Msgs[i].T == maxT {
			dst = append(dst, s.Msgs[i])
		}
	}
	return dst
}

// RMWCandidates returns the messages of x thread tid may read in an RMW:
// readable messages whose successor timestamp is free (Figure 3, RMW rule).
func (s *State) RMWCandidates(tid lang.Tid, x lang.Loc) []Msg {
	return s.AppendRMWCandidates(nil, tid, x)
}

// AppendRMWCandidates is RMWCandidates appending into dst.
func (s *State) AppendRMWCandidates(dst []Msg, tid lang.Tid, x lang.Loc) []Msg {
	min := s.Views[tid][x]
	for i := range s.Msgs {
		if s.Msgs[i].Loc == x && s.Msgs[i].T >= min && !s.hasMsgAt(x, s.Msgs[i].T+1) {
			dst = append(dst, s.Msgs[i])
		}
	}
	return dst
}

// RMW performs the RMW transition of thread tid reading message m and
// writing vW at timestamp m.T+1, with the combined view
// TW = T(τ)[x ↦ t+1] ⊔ TR.
func (s *State) RMW(tid lang.Tid, m Msg, vW lang.Val) {
	tv := s.Views[tid]
	tv.Join(m.View)
	tv[m.Loc] = m.T + 1
	s.insertCopy(m.Loc, vW, m.T+1, tv)
}

// Canonicalize re-ranks timestamps per location: order is preserved, and
// each gap between consecutive message timestamps is clamped at gapCap.
// All views are remapped consistently. gapCap must be at least 2 to keep
// "room below the next message" representable; pass one more than the
// number of writes the program can still perform for exactness.
func (s *State) Canonicalize(gapCap int) {
	if gapCap < 2 {
		gapCap = 2
	}
	numLocs := 0
	maxT := 0
	for i := range s.Msgs {
		if int(s.Msgs[i].Loc) >= numLocs {
			numLocs = int(s.Msgs[i].Loc) + 1
		}
		if int(s.Msgs[i].T) > maxT {
			maxT = int(s.Msgs[i].T)
		}
	}
	// The translation table is a flat [loc][oldT] array (old timestamps
	// are bounded by maxT, which canonicalization keeps small) storing
	// newT+1, with 0 marking an unmapped entry — no per-call maps, and the
	// buffer lives on the state for reuse across calls.
	stride := maxT + 1
	need := numLocs * stride
	if cap(s.remap) < need {
		s.remap = make([]Time, need)
	}
	remap := s.remap[:need]
	clear(remap)
	// Messages are sorted by (Loc, T), so each location is one contiguous
	// run in ascending timestamp order.
	for i := 0; i < len(s.Msgs); {
		x := s.Msgs[i].Loc
		var prevOld, prevNew Time
		for first := true; i < len(s.Msgs) && s.Msgs[i].Loc == x; i++ {
			told := s.Msgs[i].T
			var tnew Time
			if first {
				tnew = told // the initialization message is at 0
				if told != 0 {
					tnew = 1 // cannot happen: init messages persist
				}
				first = false
			} else {
				gap := int(told - prevOld)
				if gap > gapCap {
					gap = gapCap
				}
				tnew = prevNew + Time(gap)
			}
			remap[int(x)*stride+int(told)] = tnew + 1
			prevOld, prevNew = told, tnew
		}
	}
	apply := func(v View) {
		for x := range v {
			// View components are always message timestamps (they are
			// only ever set from message timestamps and joins thereof),
			// so the lookup always succeeds.
			if t := remap[x*stride+int(v[x])]; t != 0 {
				v[x] = t - 1
			}
		}
	}
	for i := range s.Msgs {
		s.Msgs[i].T = remap[int(s.Msgs[i].Loc)*stride+int(s.Msgs[i].T)] - 1
		apply(s.Msgs[i].View)
	}
	for i := range s.Views {
		apply(s.Views[i])
	}
}

// Encode appends a canonical byte encoding of the state to dst. The state
// should be canonicalized first so that bisimilar states encode equally.
func (s *State) Encode(dst []byte) []byte {
	for i := range s.Msgs {
		m := &s.Msgs[i]
		dst = append(dst, byte(m.Loc), byte(m.Val), byte(m.T), byte(m.T>>8))
		for _, t := range m.View {
			dst = append(dst, byte(t), byte(t>>8))
		}
	}
	dst = append(dst, 0xff)
	for _, v := range s.Views {
		for _, t := range v {
			dst = append(dst, byte(t), byte(t>>8))
		}
	}
	return dst
}
