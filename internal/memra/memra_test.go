package memra_test

import (
	"math/rand"
	"testing"

	"repro/internal/egraph"
	"repro/internal/lang"
	"repro/internal/memra"
)

// TestMachineStepsAreRAGSteps runs the timestamp machine of §3 and the
// execution-graph system RAG of §4.2 in lockstep, mapping each message to
// the write event that produced it: every machine transition must be an
// enabled RAG transition with the aligned predecessor write, and the
// resulting graph must stay RA-consistent. This is the forward-simulation
// half of Lemma 4.8 ("RAG and RA have the same traces"), checked on
// random runs.
func TestMachineStepsAreRAGSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for iter := 0; iter < 250; iter++ {
		numT := 1 + rng.Intn(3)
		numL := 1 + rng.Intn(3)
		st := memra.New(numL, numT)
		g := egraph.NewGraph(numL, nil)
		// evOf maps (loc, timestamp) to the graph event of the message.
		evOf := map[[2]int]int{}
		for x := 0; x < numL; x++ {
			evOf[[2]int{x, 0}] = x // initialization events
		}
		// predOf returns the event of the mo-latest message with
		// timestamp < ts.
		predOf := func(x lang.Loc, ts memra.Time) int {
			best, bestTs := -1, memra.Time(0)
			for _, m := range st.Msgs {
				if m.Loc == x && m.T < ts && (best < 0 || m.T > bestTs) {
					best, bestTs = evOf[[2]int{int(x), int(m.T)}], m.T
				}
			}
			return best
		}
		for step := 0; step < 10+rng.Intn(10); step++ {
			tid := lang.Tid(rng.Intn(numT))
			x := lang.Loc(rng.Intn(numL))
			switch rng.Intn(3) {
			case 0: // write
				slots := st.WriteSlots(tid, x, 3)
				if len(slots) == 0 {
					continue
				}
				ts := slots[rng.Intn(len(slots))]
				v := lang.Val(rng.Intn(3))
				w := predOf(x, ts)
				l := lang.WriteLab(x, v)
				if !g.RAGEnabled(int(tid), l, w) {
					t.Fatalf("iter %d: machine write @%d not RAG-enabled after e%d:\n%s", iter, ts, w, g)
				}
				st.Write(tid, x, v, ts)
				evOf[[2]int{int(x), int(ts)}] = g.Add(int(tid), l, w)
			case 1: // read
				cands := st.ReadCandidates(tid, x)
				if len(cands) == 0 {
					continue
				}
				m := cands[rng.Intn(len(cands))]
				w := evOf[[2]int{int(x), int(m.T)}]
				l := lang.ReadLab(x, m.Val)
				if !g.RAGEnabled(int(tid), l, w) {
					t.Fatalf("iter %d: machine read of msg @%d not RAG-enabled from e%d:\n%s", iter, m.T, w, g)
				}
				st.Read(tid, m)
				g.Add(int(tid), l, w)
			default: // RMW
				cands := st.RMWCandidates(tid, x)
				if len(cands) == 0 {
					continue
				}
				m := cands[rng.Intn(len(cands))]
				w := evOf[[2]int{int(x), int(m.T)}]
				vW := lang.Val(rng.Intn(3))
				l := lang.RMWLab(x, m.Val, vW)
				if !g.RAGEnabled(int(tid), l, w) {
					t.Fatalf("iter %d: machine RMW of msg @%d not RAG-enabled from e%d:\n%s", iter, m.T, w, g)
				}
				st.RMW(tid, m, vW)
				evOf[[2]int{int(x), int(m.T) + 1}] = g.Add(int(tid), l, w)
			}
			if !g.RAConsistent() {
				t.Fatalf("iter %d: graph inconsistent after machine-aligned run:\n%s", iter, g)
			}
		}
	}
}

// TestCanonicalizePreservesOptions checks that canonicalization (dense
// re-ranking with clamped gaps) is a bisimulation for sufficiently large
// gap caps: the per-thread read, RMW and write-slot option multisets are
// unchanged.
func TestCanonicalizePreservesOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 300; iter++ {
		numT := 1 + rng.Intn(3)
		numL := 1 + rng.Intn(3)
		st := memra.New(numL, numT)
		for step := 0; step < 8+rng.Intn(8); step++ {
			tid := lang.Tid(rng.Intn(numT))
			x := lang.Loc(rng.Intn(numL))
			switch rng.Intn(3) {
			case 0:
				if slots := st.WriteSlots(tid, x, 4); len(slots) > 0 {
					st.Write(tid, x, lang.Val(rng.Intn(3)), slots[rng.Intn(len(slots))])
				}
			case 1:
				if c := st.ReadCandidates(tid, x); len(c) > 0 {
					st.Read(tid, c[rng.Intn(len(c))])
				}
			default:
				if c := st.RMWCandidates(tid, x); len(c) > 0 {
					st.RMW(tid, c[rng.Intn(len(c))], lang.Val(rng.Intn(3)))
				}
			}
		}
		type opts struct {
			reads, rmws, slots int
		}
		snapshot := func() []opts {
			var out []opts
			for tid := 0; tid < numT; tid++ {
				for x := 0; x < numL; x++ {
					out = append(out, opts{
						reads: len(st.ReadCandidates(lang.Tid(tid), lang.Loc(x))),
						rmws:  len(st.RMWCandidates(lang.Tid(tid), lang.Loc(x))),
						slots: len(st.WriteSlots(lang.Tid(tid), lang.Loc(x), 3)),
					})
				}
			}
			return out
		}
		before := snapshot()
		st.Canonicalize(64) // large cap: no gap is clamped below its size
		after := snapshot()
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("iter %d: option counts changed by canonicalization: %+v -> %+v", iter, before[i], after[i])
			}
		}
	}
}

// TestCanonicalizeIdempotent checks canonicalize ∘ canonicalize =
// canonicalize (same cap).
func TestCanonicalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 200; iter++ {
		st := memra.New(2, 2)
		for step := 0; step < 10; step++ {
			tid := lang.Tid(rng.Intn(2))
			x := lang.Loc(rng.Intn(2))
			if slots := st.WriteSlots(tid, x, 5); len(slots) > 0 {
				st.Write(tid, x, lang.Val(rng.Intn(2)), slots[rng.Intn(len(slots))])
			}
		}
		st.Canonicalize(3)
		once := string(st.Encode(nil))
		st.Canonicalize(3)
		if got := string(st.Encode(nil)); got != once {
			t.Fatalf("iter %d: canonicalization not idempotent", iter)
		}
	}
}
