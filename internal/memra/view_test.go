package memra_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lang"
	"repro/internal/memra"
)

// mkView builds a 4-location view from raw values.
func mkView(a, b, c, d uint16) memra.View {
	return memra.View{memra.Time(a), memra.Time(b), memra.Time(c), memra.Time(d)}
}

// TestViewJoinLattice property-checks that Join is the pointwise maximum:
// commutative, associative, idempotent, and an upper bound of both
// arguments — the lattice structure §3's view machinery relies on.
func TestViewJoinLattice(t *testing.T) {
	join := func(a, b memra.View) memra.View {
		c := a.Clone()
		c.Join(b)
		return c
	}
	eq := func(a, b memra.View) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	leq := func(a, b memra.View) bool {
		for i := range a {
			if a[i] > b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(a1, a2, a3, a4, b1, b2, b3, b4 uint16) bool {
		a, b := mkView(a1, a2, a3, a4), mkView(b1, b2, b3, b4)
		return eq(join(a, b), join(b, a))
	}, nil); err != nil {
		t.Error("commutativity:", err)
	}
	if err := quick.Check(func(a1, a2, b1, b2, c1, c2 uint16) bool {
		a, b, c := mkView(a1, a2, 0, 0), mkView(b1, b2, 0, 0), mkView(c1, c2, 0, 0)
		return eq(join(join(a, b), c), join(a, join(b, c)))
	}, nil); err != nil {
		t.Error("associativity:", err)
	}
	if err := quick.Check(func(a1, a2, a3, a4 uint16) bool {
		a := mkView(a1, a2, a3, a4)
		return eq(join(a, a), a)
	}, nil); err != nil {
		t.Error("idempotence:", err)
	}
	if err := quick.Check(func(a1, a2, b1, b2 uint16) bool {
		a, b := mkView(a1, a2, 0, 0), mkView(b1, b2, 0, 0)
		j := join(a, b)
		return leq(a, j) && leq(b, j)
	}, nil); err != nil {
		t.Error("upper bound:", err)
	}
}

// TestThreadViewMonotone property-checks that a thread's view only ever
// grows along machine steps (the monotonicity that makes reads
// "downward-closed in the past").
func TestThreadViewMonotone(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := newRand(seed)
		st := memra.New(2, 2)
		prev := [][]memra.Time{
			append([]memra.Time(nil), st.Views[0]...),
			append([]memra.Time(nil), st.Views[1]...),
		}
		for i := 0; i < int(steps%24); i++ {
			tid := rng.Intn(2)
			x := rng.Intn(2)
			switch rng.Intn(3) {
			case 0:
				if slots := st.WriteSlots(lTid(tid), lLoc(x), 3); len(slots) > 0 {
					st.Write(lTid(tid), lLoc(x), 1, slots[rng.Intn(len(slots))])
				}
			case 1:
				if c := st.ReadCandidates(lTid(tid), lLoc(x)); len(c) > 0 {
					st.Read(lTid(tid), c[rng.Intn(len(c))])
				}
			default:
				if c := st.RMWCandidates(lTid(tid), lLoc(x)); len(c) > 0 {
					st.RMW(lTid(tid), c[rng.Intn(len(c))], 1)
				}
			}
			for tv := 0; tv < 2; tv++ {
				for loc := 0; loc < 2; loc++ {
					if st.Views[tv][loc] < prev[tv][loc] {
						return false
					}
					prev[tv][loc] = st.Views[tv][loc]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Local helpers keeping the property bodies readable.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
func lTid(t int) lang.Tid           { return lang.Tid(t) }
func lLoc(x int) lang.Loc           { return lang.Loc(x) }
