package core

import (
	"testing"

	"repro/internal/litmus"
	"repro/internal/parser"
)

// fig7Reduce pins, per Fig. 7 benchmark, the exact-exploration state count
// with partial-order reduction off (full) and on (reduced), both with
// abstract values and a single worker. The reduced counts are deterministic:
// ample sets and symmetry canonicalization are pure functions of the state,
// and sleep sets elide edges, never states, so the reachable canonical set
// is independent of expansion order (and of worker count — see
// TestReduceParallelParity).
//
// strictlySmaller marks the rows where at least one of the three techniques
// fires and provably shrinks the state space; the other rows must stay
// bit-identical in verdict and never grow.
var fig7Reduce = []struct {
	name            string
	full            int
	reduced         int
	strictlySmaller bool
}{
	{"barrier", 17, 15, true},
	{"dekker-sc", 14, 10, true},
	{"dekker-tso", 209, 187, true},
	{"peterson-sc", 20, 16, true},
	{"peterson-tso", 28, 24, true},
	{"peterson-ra", 474, 366, true},
	{"peterson-ra-dmitriy", 140, 122, true},
	{"peterson-ra-bratosz", 20, 16, true},
	{"lamport2-sc", 55, 46, true},
	{"lamport2-tso", 114, 96, true},
	{"lamport2-ra", 7466, 5926, true},
	{"lamport2-3-ra", 15980451, 13159657, true},
	{"spinlock", 77, 77, false},
	{"spinlock4", 241, 241, false},
	{"ticketlock", 139, 139, false},
	{"ticketlock4", 1045, 805, true},
	{"seqlock", 9778, 4042, true},
	{"nbw-w-lr-rl", 55272, 6791, true},
	{"rcu", 21775, 4820, true},
	{"rcu-offline", 37610, 21979, true},
	{"cilk-the-wsq-sc", 80, 56, true},
	{"cilk-the-wsq-tso", 416, 287, true},
	{"chase-lev-sc", 678, 230, true},
	{"chase-lev-tso", 840, 243, true},
	{"chase-lev-ra", 6104, 1869, true},
}

// TestReduceFig7 runs every Fig. 7 benchmark with reduction off and on and
// checks verdict parity against the paper's expected result, the pinned
// state counts, and that reduction never enlarges the explored set.
func TestReduceFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 7 sweep is slow")
	}
	pinned := make(map[string]bool, len(fig7Reduce))
	for _, row := range fig7Reduce {
		pinned[row.name] = true
	}
	for _, e := range litmus.Fig7() {
		if !pinned[e.Name] {
			t.Errorf("Fig. 7 entry %q has no pinned reduction row", e.Name)
		}
	}
	for _, row := range fig7Reduce {
		row := row
		t.Run(row.name, func(t *testing.T) {
			t.Parallel()
			e, err := litmus.Get(row.name)
			if err != nil {
				t.Fatalf("litmus.Get: %v", err)
			}
			p, err := parser.Parse(e.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			full, err := Verify(p, Options{AbstractVals: true, Workers: 1})
			if err != nil {
				t.Fatalf("Verify(reduce off): %v", err)
			}
			red, err := Verify(p, Options{AbstractVals: true, Workers: 1, Reduce: true})
			if err != nil {
				t.Fatalf("Verify(reduce on): %v", err)
			}
			if full.Robust != e.RobustRA {
				t.Errorf("unreduced verdict = %v, want %v", full.Robust, e.RobustRA)
			}
			if red.Robust != full.Robust {
				t.Errorf("reduced verdict = %v, unreduced = %v", red.Robust, full.Robust)
			}
			if full.States != row.full {
				t.Errorf("unreduced states = %d, want pinned %d", full.States, row.full)
			}
			if red.States != row.reduced {
				t.Errorf("reduced states = %d, want pinned %d", red.States, row.reduced)
			}
			if red.States > full.States {
				t.Errorf("reduction enlarged the state space: %d > %d", red.States, full.States)
			}
			if row.strictlySmaller && red.States >= full.States {
				t.Errorf("expected strict shrink, got %d vs %d", red.States, full.States)
			}
			if full.AmpleHits != 0 || full.SleepSkips != 0 || full.SymmetryFolds != 0 {
				t.Errorf("reduction counters nonzero with Reduce off: %d/%d/%d",
					full.AmpleHits, full.SleepSkips, full.SymmetryFolds)
			}
			if row.strictlySmaller && red.AmpleHits == 0 && red.SleepSkips == 0 && red.SymmetryFolds == 0 {
				t.Errorf("strict shrink but all reduction counters zero")
			}
		})
	}
}

// TestReduceChaseLevBelowPrune pins the headline number: chase-lev-ra with
// reduction must land strictly below the 4224 states the static pre-pass
// alone reaches (prune_test.go), demonstrating the two layers attack
// different redundancy.
func TestReduceChaseLevBelowPrune(t *testing.T) {
	e, err := litmus.Get("chase-lev-ra")
	if err != nil {
		t.Fatalf("litmus.Get: %v", err)
	}
	p, err := parser.Parse(e.Source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	v, err := Verify(p, Options{AbstractVals: true, Workers: 1, Reduce: true})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !v.Robust {
		t.Errorf("chase-lev-ra verdict = non-robust, want robust")
	}
	if v.States >= 4224 {
		t.Errorf("reduced states = %d, want < 4224 (static prune alone)", v.States)
	}
}

// TestReduceParallelParity checks that the reduced exploration is
// deterministic across worker counts: sleep sets elide edges but never
// states, and the final sleep masks are the same greatest fixpoint whatever
// order the workers reach them in, so Robust and States must agree exactly.
// (SleepSkips and SymmetryFolds are expansion-order-dependent and are
// deliberately not compared.)
func TestReduceParallelParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run parity sweep is slow")
	}
	for _, name := range []string{"peterson-ra", "seqlock", "nbw-w-lr-rl", "chase-lev-ra", "rcu"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			e, err := litmus.Get(name)
			if err != nil {
				t.Fatalf("litmus.Get: %v", err)
			}
			p, err := parser.Parse(e.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			seq, err := Verify(p, Options{AbstractVals: true, Workers: 1, Reduce: true})
			if err != nil {
				t.Fatalf("Verify(workers=1): %v", err)
			}
			par, err := Verify(p, Options{AbstractVals: true, Workers: 4, Reduce: true})
			if err != nil {
				t.Fatalf("Verify(workers=4): %v", err)
			}
			if par.Robust != seq.Robust || par.States != seq.States {
				t.Errorf("workers=4 (robust=%v states=%d) != workers=1 (robust=%v states=%d)",
					par.Robust, par.States, seq.Robust, seq.States)
			}
			if par.AmpleHits != seq.AmpleHits {
				t.Errorf("AmpleHits differ across worker counts: %d vs %d (must be a pure state function)",
					par.AmpleHits, seq.AmpleHits)
			}
		})
	}
}

// TestReduceCorpusParity sweeps the rest of the litmus corpus (entries not
// already pinned in fig7Reduce) for verdict parity and never-larger state
// counts under reduction.
func TestReduceCorpusParity(t *testing.T) {
	pinned := make(map[string]bool, len(fig7Reduce))
	for _, row := range fig7Reduce {
		pinned[row.name] = true
	}
	for _, e := range litmus.All() {
		if pinned[e.Name] {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			p, err := parser.Parse(e.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			full, err := Verify(p, Options{AbstractVals: true, Workers: 1})
			if err != nil {
				t.Fatalf("Verify(reduce off): %v", err)
			}
			red, err := Verify(p, Options{AbstractVals: true, Workers: 1, Reduce: true})
			if err != nil {
				t.Fatalf("Verify(reduce on): %v", err)
			}
			if red.Robust != full.Robust {
				t.Errorf("reduced verdict = %v, unreduced = %v", red.Robust, full.Robust)
			}
			if red.Robust != e.RobustRA {
				t.Errorf("verdict = %v, want %v", red.Robust, e.RobustRA)
			}
			if red.States > full.States {
				t.Errorf("reduction enlarged the state space: %d > %d", red.States, full.States)
			}
		})
	}
}

// TestReduceComposesWithPrune runs reduction on top of the static pre-pass:
// both layers on must preserve the verdict and never explore more states
// than the pre-pass alone.
func TestReduceComposesWithPrune(t *testing.T) {
	if testing.Short() {
		t.Skip("composition sweep is slow")
	}
	for _, name := range []string{"peterson-ra", "dekker-tso", "chase-lev-ra", "seqlock"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			e, err := litmus.Get(name)
			if err != nil {
				t.Fatalf("litmus.Get: %v", err)
			}
			p, err := parser.Parse(e.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			pruneOnly, err := Verify(p, Options{AbstractVals: true, Workers: 1, StaticPrune: true})
			if err != nil {
				t.Fatalf("Verify(prune): %v", err)
			}
			both, err := Verify(p, Options{AbstractVals: true, Workers: 1, StaticPrune: true, Reduce: true})
			if err != nil {
				t.Fatalf("Verify(prune+reduce): %v", err)
			}
			if both.Robust != pruneOnly.Robust || both.Robust != e.RobustRA {
				t.Errorf("prune+reduce verdict = %v, prune = %v, want %v",
					both.Robust, pruneOnly.Robust, e.RobustRA)
			}
			if both.States > pruneOnly.States {
				t.Errorf("prune+reduce states = %d > prune alone %d", both.States, pruneOnly.States)
			}
		})
	}
}
