package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/memsc"
	"repro/internal/prog"
	"repro/internal/scm"
)

// engineOpts translates Options' cancellation and progress hooks into the
// parallel engine's RunOpts, closing over the store for the interned-state
// count. Both parallel explorers (RA/SCM and plain SC) use it.
func engineOpts(opts Options, store *explore.Sharded) explore.RunOpts {
	ro := explore.RunOpts{Ctx: opts.Ctx, ProgressEvery: int64(opts.ProgressEvery)}
	if opts.Progress != nil {
		ro.Progress = func(expanded int64) {
			opts.Progress(Progress{States: store.Len(), Expanded: expanded})
		}
	}
	return ro
}

// verifyParallel is the multi-worker counterpart of Verify's exploration
// loop: N workers expand frontier states concurrently against a sharded
// visited set, each with private decode/expansion scratch (the compiled
// program and the monitor are read-only after construction, so they are
// shared). Frontier hand-off is batched through per-worker local buffers
// (see explore.RunParallel), keeping the shared lock off the per-state
// hot path.
//
// Determinism: on robust programs the full state space is explored, so
// verdict and state count match the sequential path exactly. On
// violations, any worker finding one cancels the search cooperatively;
// which violating state is reported first (and hence the trace and the
// partial state count) depends on scheduling, but whether a violation
// exists does not, and the per-shard parent/step links always rebuild a
// valid (not necessarily shortest) SC run to the reported state.
func verifyParallel(program *lang.Program, opts Options) (*Verdict, error) {
	start := time.Now()
	v, err := newVerifier(program, opts)
	if err != nil {
		return nil, err
	}
	verdict := &Verdict{Robust: true, MetadataBits: v.mon.Bits()}
	v.annotate(verdict)
	finish := func() (*Verdict, error) {
		verdict.Elapsed = time.Since(start)
		return verdict, nil
	}
	ps0, fail := v.p.InitState()
	if fail != nil {
		verdict.Robust = false
		verdict.AssertFail = fail
		return finish()
	}
	ms0 := v.mon.Init()

	var red *reducer
	if opts.Reduce {
		red = newReducer(program, v.p, v.mon)
	}
	// Sleep sets need the exact store (re-expansion re-materializes keys,
	// which hash-compacted stores cannot) and per-state uint64 masks. The
	// final masks are the greatest fixpoint of a monotone intersection
	// system, reached by chaotic iteration in any order (shrinks re-queue
	// the state via a complemented-id marker), so the explored state set —
	// and hence States — stays worker-count-independent.
	useSleep := red != nil && !opts.HashCompact && red.nT <= maxSleepThreads

	workers := opts.workerCount()
	store := explore.NewSharded(opts.HashCompact)
	scratches := make([]*scratch, workers)
	for w := range scratches {
		scratches[w] = v.newScratch(program)
		if red != nil {
			scratches[w].perm = make([]uint8, red.nT)
		}
	}
	rootKey := scratches[0].encode(v, ps0, ms0)
	rootID, _ := store.Add(rootKey, -1, explore.Step{})
	// Zero-copy frontier (see Verify): exact-mode items carry only the
	// store id — the key is re-materialized from the shard's arena into
	// per-worker scratch on expansion; hash-compact payload buffers are
	// recycled through per-worker free lists (a buffer pushed by one worker
	// and expanded by another simply migrates to the expander's list).
	roots := []explore.Item[[]byte]{{ID: rootID, St: scratches[0].pushPayload(opts.HashCompact, rootKey)}}

	// Shared result slots, written under mu by whichever worker finds a
	// violation / assertion failure / bound overrun first.
	var (
		mu         sync.Mutex
		violations []*scm.Violation
		violID     int64
		haveViol   bool
		assertFail *prog.AssertFailure
		assertID   int64
		assertStep explore.Step
		bound      bool
	)
	// record registers a violation; it returns false when the search
	// should stop (the first violation, unless collecting all of them).
	record := func(id int64, viol *scm.Violation) bool {
		mu.Lock()
		violations = append(violations, viol)
		if !haveViol {
			haveViol = true
			violID = id
		}
		mu.Unlock()
		return opts.KeepAllViolations
	}

	expand := func(w int, it explore.Item[[]byte], push func(explore.Item[[]byte])) bool {
		if opts.MaxStates > 0 && store.Len() > opts.MaxStates {
			mu.Lock()
			bound = true
			mu.Unlock()
			return false
		}
		ws := scratches[w]
		requeued := false
		if it.ID < 0 {
			// Sleep-mask shrink marker (see the AddSleep call below): the
			// state is re-expanded so formerly elided edges get explored;
			// checks and counters are not repeated.
			it.ID = ^it.ID
			requeued = true
		}
		itemKey := it.St
		if !opts.HashCompact {
			ws.popBuf = store.AppendKey(ws.popBuf[:0], it.ID)
			itemKey = ws.popBuf
		}
		n := v.p.DecodeState(itemKey, ws.cur)
		v.mon.Decode(itemKey[n:], &ws.curMS)
		ops := ws.ops
		v.p.OpsInto(ops, ws.cur)

		if !requeued {
			for t := range ops {
				if viol := v.mon.CheckOp(&ws.curMS, lang.Tid(t), ops[t]); viol != nil {
					if !record(it.ID, viol) {
						return false
					}
				}
			}
			if v.hasNA {
				if viol := v.mon.CheckRace(ops); viol != nil {
					if !record(it.ID, viol) {
						return false
					}
				}
			}
		}

		ampleT := -1
		if red != nil {
			ampleT = red.ample(ws.curMS.M, ws.cur, ws.nxt, ops)
			if ampleT >= 0 && !requeued {
				ws.cAmple++
			}
		}
		var sleepZ, expandedSoFar uint64
		if useSleep {
			sleepZ = store.Sleep(it.ID)
		}
		for t := range ops {
			op := ops[t]
			if op.Kind == prog.OpNone {
				continue
			}
			if ampleT >= 0 {
				if t != ampleT {
					continue
				}
			} else if useSleep && sleepZ>>t&1 != 0 {
				if !requeued {
					ws.cSleep++
				}
				continue
			}
			label, enabled := prog.SCLabel(op, ws.curMS.M[op.Loc], program.ValCount)
			if !enabled {
				continue // blocked wait/BCAS
			}
			afail := v.p.Threads[t].ApplyInto(ws.cur.Threads[t], label, &ws.nxt.Threads[t])
			step := explore.Step{Tid: lang.Tid(t), Lab: label}
			if afail != nil {
				mu.Lock()
				if assertFail == nil {
					assertFail = afail
					assertID = it.ID
					assertStep = step
				}
				mu.Unlock()
				return false
			}
			var cz uint64
			if useSleep {
				cz = childSleep(ops, t, sleepZ|expandedSoFar)
			}
			expandedSoFar |= uint64(1) << t
			savedTS := ws.cur.Threads[t]
			ws.cur.Threads[t] = ws.nxt.Threads[t]
			ws.nextMS.CopyFrom(&ws.curMS)
			v.mon.Step(ws.nextMS, lang.Tid(t), label)
			var key []byte
			if red != nil && red.symm() && !red.canonPerm(ws.cur, ws.nextMS, ws.perm) {
				if !requeued {
					ws.cSym++
				}
				step.Perm = packPerm(ws.perm)
				cz = permuteMask(cz, ws.perm)
				ws.keyBuf = ws.keyBuf[:0]
				ws.keyBuf = v.p.EncodeStatePerm(ws.keyBuf, ws.cur, ws.perm)
				ws.keyBuf = v.mon.EncodePerm(ws.keyBuf, ws.nextMS, ws.perm)
				key = ws.keyBuf
			} else {
				key = ws.encode(v, ws.cur, ws.nextMS)
			}
			ws.cur.Threads[t] = savedTS
			if useSleep {
				// Exact mode: payloads are nil, so markers carry no state.
				id, isNew, shrunk := store.AddSleep(key, it.ID, step, cz)
				if isNew {
					push(explore.Item[[]byte]{ID: id})
				} else if shrunk {
					push(explore.Item[[]byte]{ID: ^id})
				}
			} else {
				id, isNew := store.Add(key, it.ID, step)
				if isNew {
					push(explore.Item[[]byte]{ID: id, St: ws.pushPayload(opts.HashCompact, key)})
				}
			}
		}
		ws.recycle(it.St)
		return true
	}

	explore.RunParallelOpts(workers, roots, expand, engineOpts(opts, store))
	// Workers have quiesced: the shared slots and the store are stable.
	if opts.Ctx != nil && opts.Ctx.Err() != nil {
		return nil, canceled(opts.Ctx)
	}
	verdict.States = store.Len()
	for _, ws := range scratches {
		verdict.AmpleHits += ws.cAmple
		verdict.SleepSkips += ws.cSleep
		verdict.SymmetryFolds += ws.cSym
	}
	if bound {
		return nil, fmt.Errorf("%w (%d states)", ErrStateBound, store.Len())
	}
	if assertFail != nil {
		verdict.Robust = false
		verdict.Trace = append(store.Trace(assertID), assertStep)
		if red != nil && red.symm() {
			red.concretize(verdict.Trace)
			af := *assertFail
			af.Tid = verdict.Trace[len(verdict.Trace)-1].Tid
			assertFail = &af
		}
		verdict.AssertFail = assertFail
	}
	if len(violations) > 0 {
		verdict.Robust = false
		if verdict.Trace == nil {
			verdict.Trace = store.Trace(violID)
			if red != nil && red.symm() {
				// violations[0] is the one violID was recorded for; later
				// ones (KeepAllViolations) stay canonical, which symmetry
				// keeps truthful.
				violations[0] = concretizeViolation(violations[0], red.concretize(verdict.Trace))
			}
		}
		verdict.Violations = violations
	}
	return finish()
}

// verifySCParallel mirrors VerifySC on the parallel engine: plain SC
// product exploration (assertion checking only), frontier items carrying
// the packed ⟨program state, SC memory⟩ encoding.
func verifySCParallel(program *lang.Program, opts Options) (*SCVerdict, error) {
	start := time.Now()
	if err := program.Validate(); err != nil {
		return nil, err
	}
	p := prog.New(program)
	verdict := &SCVerdict{}
	ps0, fail := p.InitState()
	if fail != nil {
		verdict.AssertFail = fail
		verdict.Elapsed = time.Since(start)
		return verdict, nil
	}

	var red *reducer
	if opts.Reduce {
		red = newReducer(program, p, nil)
	}
	useSleep := red != nil && !opts.HashCompact && red.nT <= maxSleepThreads

	workers := opts.workerCount()
	store := explore.NewSharded(opts.HashCompact)
	scratches := make([]*scScratch, workers)
	for w := range scratches {
		scratches[w] = newSCScratch(p, program)
		if red != nil {
			scratches[w].perm = make([]uint8, red.nT)
		}
	}

	var (
		mu         sync.Mutex
		assertFail *prog.AssertFailure
		bound      bool
	)
	m0 := memsc.New(program.NumLocs())
	rootKey := scratches[0].encode(p, ps0, m0)
	rootID, _ := store.Add(rootKey, -1, explore.Step{})
	roots := []explore.Item[[]byte]{{ID: rootID, St: scratches[0].pushPayload(opts.HashCompact, rootKey)}}

	expand := func(w int, it explore.Item[[]byte], push func(explore.Item[[]byte])) bool {
		if opts.MaxStates > 0 && store.Len() > opts.MaxStates {
			mu.Lock()
			bound = true
			mu.Unlock()
			return false
		}
		ws := scratches[w]
		requeued := false
		if it.ID < 0 {
			// Sleep-mask shrink marker (see verifyParallel).
			it.ID = ^it.ID
			requeued = true
		}
		itemKey := it.St
		if !opts.HashCompact {
			ws.popBuf = store.AppendKey(ws.popBuf[:0], it.ID)
			itemKey = ws.popBuf
		}
		n := p.DecodeState(itemKey, ws.cur)
		for i := range ws.mem {
			ws.mem[i] = lang.Val(itemKey[n+i])
		}
		p.OpsInto(ws.ops, ws.cur)
		ampleT := -1
		if red != nil {
			ampleT = red.ample(ws.mem, ws.cur, ws.nxt, ws.ops)
			if ampleT >= 0 && !requeued {
				ws.cAmple++
			}
		}
		var sleepZ, expandedSoFar uint64
		if useSleep {
			sleepZ = store.Sleep(it.ID)
		}
		for t, op := range ws.ops {
			if op.Kind == prog.OpNone {
				continue
			}
			if ampleT >= 0 {
				if t != ampleT {
					continue
				}
			} else if useSleep && sleepZ>>t&1 != 0 {
				if !requeued {
					ws.cSleep++
				}
				continue
			}
			label, enabled := prog.SCLabel(op, ws.mem[op.Loc], program.ValCount)
			if !enabled {
				continue
			}
			afail := p.Threads[t].ApplyInto(ws.cur.Threads[t], label, &ws.nxt.Threads[t])
			if afail != nil {
				mu.Lock()
				if assertFail == nil {
					assertFail = afail
				}
				mu.Unlock()
				return false
			}
			var cz uint64
			if useSleep {
				cz = childSleep(ws.ops, t, sleepZ|expandedSoFar)
			}
			expandedSoFar |= uint64(1) << t
			savedTS := ws.cur.Threads[t]
			savedVal := ws.mem[op.Loc]
			ws.cur.Threads[t] = ws.nxt.Threads[t]
			ws.mem.Step(label)
			var key []byte
			if red != nil && red.symm() && !red.canonPerm(ws.cur, nil, ws.perm) {
				if !requeued {
					ws.cSym++
				}
				cz = permuteMask(cz, ws.perm)
				ws.keyBuf = ws.keyBuf[:0]
				ws.keyBuf = p.EncodeStatePerm(ws.keyBuf, ws.cur, ws.perm)
				ws.keyBuf = ws.mem.Encode(ws.keyBuf)
				key = ws.keyBuf
			} else {
				key = ws.encode(p, ws.cur, ws.mem)
			}
			ws.cur.Threads[t] = savedTS
			ws.mem[op.Loc] = savedVal
			if useSleep {
				id, isNew, shrunk := store.AddSleep(key, -1, explore.Step{}, cz)
				if isNew {
					push(explore.Item[[]byte]{ID: id})
				} else if shrunk {
					push(explore.Item[[]byte]{ID: ^id})
				}
			} else if id, isNew := store.Add(key, -1, explore.Step{}); isNew {
				push(explore.Item[[]byte]{ID: id, St: ws.pushPayload(opts.HashCompact, key)})
			}
		}
		ws.recycle(it.St)
		return true
	}

	explore.RunParallelOpts(workers, roots, expand, engineOpts(opts, store))
	if opts.Ctx != nil && opts.Ctx.Err() != nil {
		return nil, canceled(opts.Ctx)
	}
	verdict.States = store.Len()
	verdict.AssertFail = assertFail
	for _, ws := range scratches {
		verdict.AmpleHits += ws.cAmple
		verdict.SleepSkips += ws.cSleep
		verdict.SymmetryFolds += ws.cSym
	}
	if bound {
		return nil, ErrStateBound
	}
	verdict.Elapsed = time.Since(start)
	return verdict, nil
}
