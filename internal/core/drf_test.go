package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/egraph"
	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/prog"
)

// raceFreeSCG checks the premise of the paper's DRF corollary (§5, after
// Theorem 5.1): every reachable state ⟨q, G⟩ of P(SCG) satisfies
// G.mo ∪ G.fr ⊆ G.hb — i.e. the program is race-free under SC in the
// happens-before sense. The corollary concludes execution-graph
// robustness. For loop-free programs the exploration is exhaustive.
func raceFreeSCG(program *lang.Program) bool {
	p := prog.New(program)
	type node struct {
		ps prog.State
		g  *egraph.Graph
	}
	ps0, fail := p.InitState()
	if fail != nil {
		return true
	}
	seen := map[string]struct{}{}
	var stack []node
	push := func(ps prog.State, g *egraph.Graph) {
		key := string(encodeGraph(g, p.EncodeState(nil, ps)))
		if _, ok := seen[key]; ok {
			return
		}
		seen[key] = struct{}{}
		stack = append(stack, node{ps, g})
	}
	push(ps0, egraph.NewGraph(program.NumLocs(), nil))
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// mo ∪ fr ⊆ hb?
		hb := n.g.HB()
		mo, fr := n.g.MORel(), n.g.FR()
		for a := 0; a < n.g.N(); a++ {
			for b := 0; b < n.g.N(); b++ {
				if (mo.Has(a, b) || fr.Has(a, b)) && !hb.Has(a, b) {
					// Initialization events are hb-before everything by
					// construction of po, so a genuine violation involves
					// two program events.
					if !n.g.Events[a].IsInit() {
						return false
					}
				}
			}
		}
		ops := p.Ops(n.ps)
		for t := range ops {
			if ops[t].Kind == prog.OpNone {
				continue
			}
			cur := n.g.Events[n.g.WMax(ops[t].Loc)].Lab.VW
			label, enabled := prog.SCLabel(ops[t], cur, program.ValCount)
			if !enabled {
				continue
			}
			nextTS, afail := p.Threads[t].Apply(n.ps.Threads[t], label)
			if afail != nil {
				continue
			}
			nextPS := n.ps.Clone()
			nextPS.Threads[t] = nextTS
			nextG := n.g.Clone()
			nextG.SCGStep(t, label)
			push(nextPS, nextG)
		}
	}
	return true
}

// TestDRFCorollary checks §5's DRF guarantee on random loop-free programs:
// whenever every reachable SCG state satisfies mo ∪ fr ⊆ hb, the program
// must verify robust. (The converse does not hold — robust programs may
// race benignly — so only the implication is asserted.)
func TestDRFCorollary(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	iters := 300
	if testing.Short() {
		iters = 100
	}
	raceFree := 0
	for iter := 0; iter < iters; iter++ {
		program := randProgram(rng)
		if !raceFreeSCG(program) {
			continue
		}
		raceFree++
		v, err := core.Verify(program, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !v.Robust {
			t.Fatalf("iter %d: race-free program rejected as non-robust\nprogram:\n%s", iter, program)
		}
	}
	if raceFree == 0 {
		t.Fatal("generator produced no race-free samples; the test is vacuous")
	}
	t.Logf("%d/%d samples were race-free", raceFree, iters)
}

// TestDRFCorollaryCorpus spot-checks the corollary's spirit on corpus
// programs whose synchronization is fully rf-ordered under SC: the
// spinlock and ticket lock families (RMW chains and handover writes).
func TestDRFCorollaryCorpus(t *testing.T) {
	for _, name := range []string{"2RMW", "MP"} {
		e, err := litmus.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		p := e.Program()
		rf := raceFreeSCG(p)
		v, err := core.Verify(p, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if rf && !v.Robust {
			t.Errorf("%s: race-free but non-robust", name)
		}
		if name == "2RMW" && !rf {
			t.Errorf("2RMW should be hb-race-free: competing RMWs are rf-ordered")
		}
	}
}
