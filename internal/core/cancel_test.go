package core_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/litmus"
)

// cancelRows are Figure-7 rows whose SCM state spaces comfortably outlast
// a cancellation fired 512 expansions in (ticketlock4 ≈ 10³ states,
// lamport2-ra ≈ 7.5·10³).
var cancelRows = []string{"ticketlock4", "lamport2-ra"}

// TestVerifyPreCanceled checks that a context canceled before Verify
// starts yields ErrCanceled — never a verdict — in both engines and both
// SCM and plain-SC modes.
func TestVerifyPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range cancelRows {
		e, err := litmus.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		p := e.Program()
		for _, workers := range []int{1, 4} {
			opts := core.Options{AbstractVals: true, Workers: workers, Ctx: ctx}
			if v, err := core.Verify(p, opts); !errors.Is(err, core.ErrCanceled) || v != nil {
				t.Errorf("%s workers=%d: Verify = (%v, %v), want ErrCanceled", name, workers, v, err)
			}
			if v, err := core.VerifySC(p, opts); !errors.Is(err, core.ErrCanceled) || v != nil {
				t.Errorf("%s workers=%d: VerifySC = (%v, %v), want ErrCanceled", name, workers, v, err)
			}
		}
	}
}

// TestVerifyCancelMidExploration cancels from the progress hook once real
// work is under way and checks that Verify stops promptly with ErrCanceled
// (wrapping the context's cause) instead of completing or returning a
// partial verdict. Runs both the sequential and the parallel engine; the
// race detector guards the hook's concurrency contract.
func TestVerifyCancelMidExploration(t *testing.T) {
	for _, name := range cancelRows {
		e, err := litmus.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		p := e.Program()
		for _, workers := range []int{1, 4} {
			ctx, cancel := context.WithCancel(context.Background())
			var fired atomic.Bool
			v, err := core.Verify(p, core.Options{
				AbstractVals:  true,
				Workers:       workers,
				Ctx:           ctx,
				ProgressEvery: 512,
				Progress: func(pr core.Progress) {
					if pr.Expanded >= 512 {
						fired.Store(true)
						cancel()
					}
				},
			})
			cancel()
			if !fired.Load() {
				t.Fatalf("%s workers=%d: exploration finished before the hook fired", name, workers)
			}
			if v != nil || !errors.Is(err, core.ErrCanceled) {
				t.Errorf("%s workers=%d: Verify = (%v, %v), want ErrCanceled", name, workers, v, err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s workers=%d: error %v does not wrap context.Canceled", name, workers, err)
			}
		}
	}
}

// TestVerifyDeadline checks the context.WithTimeout path end to end: a
// deadline that fires mid-exploration interrupts the run and surfaces
// DeadlineExceeded as the cause. A bare 1ms deadline is a race on fast
// machines: with every P saturated by the parallel engine, the runtime
// may not service the timer before the ~8ms row completes. The progress
// hook instead parks on ctx.Done() once real work is under way — parking
// frees a P, so the timer is serviced promptly and the deadline is
// guaranteed to have fired while exploration is still in flight.
func TestVerifyDeadline(t *testing.T) {
	e, err := litmus.Get("lamport2-ra")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	v, err := core.Verify(e.Program(), core.Options{
		AbstractVals:  true,
		Ctx:           ctx,
		ProgressEvery: 512,
		Progress:      func(core.Progress) { <-ctx.Done() },
	})
	if v != nil || !errors.Is(err, core.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Verify = (%v, %v), want ErrCanceled wrapping DeadlineExceeded", v, err)
	}
}

// TestVerifyBackgroundCtxUnchanged checks that merely supplying a live
// context does not perturb verdicts or state counts.
func TestVerifyBackgroundCtxUnchanged(t *testing.T) {
	e, err := litmus.Get("SB")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := core.Verify(e.Program(), core.Options{AbstractVals: true})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := core.Verify(e.Program(), core.Options{AbstractVals: true, Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Robust != withCtx.Robust || plain.States != withCtx.States {
		t.Errorf("ctx perturbed the run: (%v,%d) vs (%v,%d)",
			plain.Robust, plain.States, withCtx.Robust, withCtx.States)
	}
}
