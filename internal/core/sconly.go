package core

import (
	"time"

	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/memsc"
	"repro/internal/prog"
)

// SCVerdict is the result of a plain SC exploration.
type SCVerdict struct {
	// AssertFail reports a failed user assertion, if any.
	AssertFail *prog.AssertFailure
	// States is the number of distinct ⟨program, SC memory⟩ states.
	States int
	// Elapsed is the wall-clock exploration time.
	Elapsed time.Duration
}

// scScratch is the per-worker expansion state of the SC-only explorer:
// the plain-SC counterpart of scratch (no monitor state, a flat SC memory
// instead).
type scScratch struct {
	cur    prog.State
	nxt    prog.State
	ops    []prog.MemOp
	mem    memsc.Memory
	keyBuf []byte
	popBuf []byte
	free   [][]byte
}

func newSCScratch(p *prog.P, program *lang.Program) *scScratch {
	ws := &scScratch{
		mem: memsc.New(program.NumLocs()),
		ops: make([]prog.MemOp, program.NumThreads()),
	}
	ws.cur = prog.State{Threads: make([]prog.ThreadState, program.NumThreads())}
	ws.nxt = prog.State{Threads: make([]prog.ThreadState, program.NumThreads())}
	for i := range ws.cur.Threads {
		ws.cur.Threads[i].Regs = make([]lang.Val, program.Threads[i].NumRegs)
		ws.nxt.Threads[i].Regs = make([]lang.Val, program.Threads[i].NumRegs)
	}
	return ws
}

func (ws *scScratch) encode(p *prog.P, ps prog.State, m memsc.Memory) []byte {
	ws.keyBuf = ws.keyBuf[:0]
	ws.keyBuf = p.EncodeState(ws.keyBuf, ps)
	ws.keyBuf = m.Encode(ws.keyBuf)
	return ws.keyBuf
}

// pushPayload and recycle mirror scratch's zero-copy frontier discipline:
// nil payloads in exact mode, recycled buffers in hash-compact mode.
func (ws *scScratch) pushPayload(hashCompact bool, key []byte) []byte {
	if !hashCompact {
		return nil
	}
	var buf []byte
	if n := len(ws.free); n > 0 {
		buf = ws.free[n-1][:0]
		ws.free = ws.free[:n-1]
	}
	return append(buf, key...)
}

func (ws *scScratch) recycle(buf []byte) {
	if buf != nil {
		ws.free = append(ws.free, buf)
	}
}

// VerifySC explores the program under plain (uninstrumented) sequential
// consistency, checking only user assertions. This is the paper's "SC"
// comparison column in Figure 7: the cost of ordinary SC model checking,
// against which the robustness instrumentation's overhead is measured.
//
// Like Verify, it explores in parallel when Options.Workers resolves to
// more than one worker; Workers = 1 is the sequential reference path. Both
// paths share the allocation-free hot loop shape of Verify: encoded
// frontier (id-only in exact mode), per-worker scratch decode, clone-free
// ApplyInto stepping.
func VerifySC(program *lang.Program, opts Options) (*SCVerdict, error) {
	if opts.workerCount() > 1 {
		return verifySCParallel(program, opts)
	}
	start := time.Now()
	if err := program.Validate(); err != nil {
		return nil, err
	}
	p := prog.New(program)
	verdict := &SCVerdict{}
	finish := func() (*SCVerdict, error) {
		// Mirror Verify: a canceled run yields ErrCanceled, never a verdict.
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return nil, canceled(opts.Ctx)
		}
		verdict.Elapsed = time.Since(start)
		return verdict, nil
	}
	ps0, fail := p.InitState()
	if fail != nil {
		verdict.AssertFail = fail
		return finish()
	}
	var store *explore.Store
	if opts.HashCompact {
		store = explore.NewHashCompactStore()
	} else {
		store = explore.NewStore()
	}
	var queue explore.Queue[[]byte]
	ws := newSCScratch(p, program)
	m0 := memsc.New(program.NumLocs())
	rootKey := ws.encode(p, ps0, m0)
	root, _ := store.AddBytes(rootKey, -1, explore.Step{})
	if opts.HashCompact {
		queue.Push(root, ws.pushPayload(true, rootKey))
	}
	// Exact mode: the dense id sequence is the implicit FIFO frontier
	// (see Verify); the queue is only used in hash-compact mode.
	every := int64(opts.ProgressEvery)
	if every <= 0 {
		every = 4096
	}
	expanded := int64(0)
	next := int32(0)
	for {
		var item explore.QItem[[]byte]
		if opts.HashCompact {
			var ok bool
			if item, ok = queue.Pop(); !ok {
				break
			}
		} else {
			if int(next) >= store.Len() {
				break
			}
			item = explore.QItem[[]byte]{ID: next, St: store.KeyBytes(next)}
			next++
		}
		if opts.MaxStates > 0 && store.Len() > opts.MaxStates {
			return nil, ErrStateBound
		}
		if opts.Ctx != nil && expanded&ctxPollMask == 0 && opts.Ctx.Err() != nil {
			return nil, canceled(opts.Ctx)
		}
		expanded++
		if opts.Progress != nil && expanded%every == 0 {
			opts.Progress(Progress{States: store.Len(), Expanded: expanded})
		}
		itemKey := item.St
		n := p.DecodeState(itemKey, ws.cur)
		for i := range ws.mem {
			ws.mem[i] = lang.Val(itemKey[n+i])
		}
		p.OpsInto(ws.ops, ws.cur)
		for t, op := range ws.ops {
			if op.Kind == prog.OpNone {
				continue
			}
			label, enabled := prog.SCLabel(op, ws.mem[op.Loc], program.ValCount)
			if !enabled {
				continue
			}
			afail := p.Threads[t].ApplyInto(ws.cur.Threads[t], label, &ws.nxt.Threads[t])
			if afail != nil {
				verdict.AssertFail = afail
				verdict.States = store.Len()
				return finish()
			}
			savedTS := ws.cur.Threads[t]
			savedVal := ws.mem[op.Loc]
			ws.cur.Threads[t] = ws.nxt.Threads[t]
			ws.mem.Step(label)
			key := ws.encode(p, ws.cur, ws.mem)
			ws.cur.Threads[t] = savedTS
			ws.mem[op.Loc] = savedVal
			if id, isNew := store.AddBytes(key, -1, explore.Step{}); isNew && opts.HashCompact {
				queue.Push(id, ws.pushPayload(true, key))
			}
		}
		if opts.HashCompact {
			ws.recycle(item.St)
		}
	}
	verdict.States = store.Len()
	return finish()
}
