package core

import (
	"time"

	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/memsc"
	"repro/internal/prog"
)

// SCVerdict is the result of a plain SC exploration.
type SCVerdict struct {
	// AssertFail reports a failed user assertion, if any.
	AssertFail *prog.AssertFailure
	// States is the number of distinct ⟨program, SC memory⟩ states.
	States int
	// Elapsed is the wall-clock exploration time.
	Elapsed time.Duration
}

// VerifySC explores the program under plain (uninstrumented) sequential
// consistency, checking only user assertions. This is the paper's "SC"
// comparison column in Figure 7: the cost of ordinary SC model checking,
// against which the robustness instrumentation's overhead is measured.
//
// Like Verify, it explores in parallel when Options.Workers resolves to
// more than one worker; Workers = 1 is the sequential reference path.
func VerifySC(program *lang.Program, opts Options) (*SCVerdict, error) {
	if opts.workerCount() > 1 {
		return verifySCParallel(program, opts)
	}
	start := time.Now()
	if err := program.Validate(); err != nil {
		return nil, err
	}
	p := prog.New(program)
	verdict := &SCVerdict{}
	ps0, fail := p.InitState()
	if fail != nil {
		verdict.AssertFail = fail
		verdict.Elapsed = time.Since(start)
		return verdict, nil
	}
	var store *explore.Store
	if opts.HashCompact {
		store = explore.NewHashCompactStore()
	} else {
		store = explore.NewStore()
	}
	type node struct {
		ps prog.State
		m  memsc.Memory
	}
	var queue []node
	var keyBuf []byte
	encode := func(ps prog.State, m memsc.Memory) []byte {
		keyBuf = keyBuf[:0]
		keyBuf = p.EncodeState(keyBuf, ps)
		keyBuf = m.Encode(keyBuf)
		return keyBuf
	}
	m0 := memsc.New(program.NumLocs())
	store.AddBytes(encode(ps0, m0), -1, explore.Step{})
	queue = append(queue, node{ps0, m0})
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if opts.MaxStates > 0 && store.Len() > opts.MaxStates {
			return nil, ErrStateBound
		}
		ops := p.Ops(n.ps)
		for t := range ops {
			op := ops[t]
			if op.Kind == prog.OpNone {
				continue
			}
			label, enabled := prog.SCLabel(op, n.m[op.Loc], program.ValCount)
			if !enabled {
				continue
			}
			nextTS, afail := p.Threads[t].Apply(n.ps.Threads[t], label)
			if afail != nil {
				verdict.AssertFail = afail
				verdict.States = store.Len()
				verdict.Elapsed = time.Since(start)
				return verdict, nil
			}
			nextPS := n.ps.Clone()
			nextPS.Threads[t] = nextTS
			nextM := n.m.Clone()
			nextM.Step(label)
			if _, isNew := store.AddBytes(encode(nextPS, nextM), -1, explore.Step{}); isNew {
				queue = append(queue, node{nextPS, nextM})
			}
		}
	}
	verdict.States = store.Len()
	verdict.Elapsed = time.Since(start)
	return verdict, nil
}
