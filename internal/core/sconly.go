package core

import (
	"time"

	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/memsc"
	"repro/internal/prog"
)

// SCVerdict is the result of a plain SC exploration.
type SCVerdict struct {
	// AssertFail reports a failed user assertion, if any.
	AssertFail *prog.AssertFailure
	// States is the number of distinct ⟨program, SC memory⟩ states.
	States int
	// Elapsed is the wall-clock exploration time.
	Elapsed time.Duration
	// AmpleHits, SleepSkips and SymmetryFolds mirror Verdict's reduction
	// counters; all 0 unless Options.Reduce. With symmetry on, a reported
	// AssertFail.Tid names a thread of the failing thread's symmetry
	// class — interchangeable by construction (this explorer keeps no
	// traces to concretize through).
	AmpleHits, SleepSkips, SymmetryFolds int64
}

// scScratch is the per-worker expansion state of the SC-only explorer:
// the plain-SC counterpart of scratch (no monitor state, a flat SC memory
// instead).
type scScratch struct {
	cur    prog.State
	nxt    prog.State
	ops    []prog.MemOp
	mem    memsc.Memory
	keyBuf []byte
	popBuf []byte
	free   [][]byte
	// Partial-order reduction scratch and counters (see scratch).
	perm                 []uint8
	cAmple, cSleep, cSym int64
}

func newSCScratch(p *prog.P, program *lang.Program) *scScratch {
	ws := &scScratch{
		mem: memsc.New(program.NumLocs()),
		ops: make([]prog.MemOp, program.NumThreads()),
	}
	ws.cur = prog.State{Threads: make([]prog.ThreadState, program.NumThreads())}
	ws.nxt = prog.State{Threads: make([]prog.ThreadState, program.NumThreads())}
	for i := range ws.cur.Threads {
		ws.cur.Threads[i].Regs = make([]lang.Val, program.Threads[i].NumRegs)
		ws.nxt.Threads[i].Regs = make([]lang.Val, program.Threads[i].NumRegs)
	}
	return ws
}

func (ws *scScratch) encode(p *prog.P, ps prog.State, m memsc.Memory) []byte {
	ws.keyBuf = ws.keyBuf[:0]
	ws.keyBuf = p.EncodeState(ws.keyBuf, ps)
	ws.keyBuf = m.Encode(ws.keyBuf)
	return ws.keyBuf
}

// pushPayload and recycle mirror scratch's zero-copy frontier discipline:
// nil payloads in exact mode, recycled buffers in hash-compact mode.
func (ws *scScratch) pushPayload(hashCompact bool, key []byte) []byte {
	if !hashCompact {
		return nil
	}
	var buf []byte
	if n := len(ws.free); n > 0 {
		buf = ws.free[n-1][:0]
		ws.free = ws.free[:n-1]
	}
	return append(buf, key...)
}

func (ws *scScratch) recycle(buf []byte) {
	if buf != nil {
		ws.free = append(ws.free, buf)
	}
}

// VerifySC explores the program under plain (uninstrumented) sequential
// consistency, checking only user assertions. This is the paper's "SC"
// comparison column in Figure 7: the cost of ordinary SC model checking,
// against which the robustness instrumentation's overhead is measured.
//
// Like Verify, it explores in parallel when Options.Workers resolves to
// more than one worker; Workers = 1 is the sequential reference path. Both
// paths share the allocation-free hot loop shape of Verify: encoded
// frontier (id-only in exact mode), per-worker scratch decode, clone-free
// ApplyInto stepping.
func VerifySC(program *lang.Program, opts Options) (*SCVerdict, error) {
	if opts.workerCount() > 1 {
		return verifySCParallel(program, opts)
	}
	start := time.Now()
	if err := program.Validate(); err != nil {
		return nil, err
	}
	p := prog.New(program)
	verdict := &SCVerdict{}
	var ws *scScratch
	finish := func() (*SCVerdict, error) {
		// Mirror Verify: a canceled run yields ErrCanceled, never a verdict.
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return nil, canceled(opts.Ctx)
		}
		if ws != nil {
			verdict.AmpleHits, verdict.SleepSkips, verdict.SymmetryFolds = ws.cAmple, ws.cSleep, ws.cSym
		}
		verdict.Elapsed = time.Since(start)
		return verdict, nil
	}
	ps0, fail := p.InitState()
	if fail != nil {
		verdict.AssertFail = fail
		return finish()
	}
	var red *reducer
	if opts.Reduce {
		red = newReducer(program, p, nil)
	}
	useSleep := red != nil && !opts.HashCompact && red.nT <= maxSleepThreads
	var store *explore.Store
	if opts.HashCompact {
		store = explore.NewHashCompactStore()
	} else {
		store = explore.NewStore()
	}
	var queue explore.Queue[[]byte]
	ws = newSCScratch(p, program)
	if red != nil {
		ws.perm = make([]uint8, red.nT)
	}
	m0 := memsc.New(program.NumLocs())
	rootKey := ws.encode(p, ps0, m0)
	root, _ := store.AddBytes(rootKey, -1, explore.Step{})
	if opts.HashCompact {
		queue.Push(root, ws.pushPayload(true, rootKey))
	}
	// Exact mode: the dense id sequence is the implicit FIFO frontier
	// (see Verify); the queue is only used in hash-compact mode.
	every := int64(opts.ProgressEvery)
	if every <= 0 {
		every = 4096
	}
	expanded := int64(0)
	next := int32(0)
	// requeue holds states whose sleep mask strictly shrank on a revisit
	// (see Verify).
	var requeue []int32
	for {
		var item explore.QItem[[]byte]
		requeued := false
		if opts.HashCompact {
			var ok bool
			if item, ok = queue.Pop(); !ok {
				break
			}
		} else if int(next) < store.Len() {
			item = explore.QItem[[]byte]{ID: next, St: store.KeyBytes(next)}
			next++
		} else if n := len(requeue); n > 0 {
			id := requeue[n-1]
			requeue = requeue[:n-1]
			item = explore.QItem[[]byte]{ID: id, St: store.KeyBytes(id)}
			requeued = true
		} else {
			break
		}
		if opts.MaxStates > 0 && store.Len() > opts.MaxStates {
			return nil, ErrStateBound
		}
		if opts.Ctx != nil && expanded&ctxPollMask == 0 && opts.Ctx.Err() != nil {
			return nil, canceled(opts.Ctx)
		}
		expanded++
		if opts.Progress != nil && expanded%every == 0 {
			opts.Progress(Progress{States: store.Len(), Expanded: expanded})
		}
		itemKey := item.St
		n := p.DecodeState(itemKey, ws.cur)
		for i := range ws.mem {
			ws.mem[i] = lang.Val(itemKey[n+i])
		}
		p.OpsInto(ws.ops, ws.cur)
		ampleT := -1
		if red != nil {
			ampleT = red.ample(ws.mem, ws.cur, ws.nxt, ws.ops)
			if ampleT >= 0 && !requeued {
				ws.cAmple++
			}
		}
		var sleepZ, expandedSoFar uint64
		if useSleep {
			sleepZ = store.Sleep(item.ID)
		}
		for t, op := range ws.ops {
			if op.Kind == prog.OpNone {
				continue
			}
			if ampleT >= 0 {
				if t != ampleT {
					continue
				}
			} else if useSleep && sleepZ>>t&1 != 0 {
				if !requeued {
					ws.cSleep++
				}
				continue
			}
			label, enabled := prog.SCLabel(op, ws.mem[op.Loc], program.ValCount)
			if !enabled {
				continue
			}
			afail := p.Threads[t].ApplyInto(ws.cur.Threads[t], label, &ws.nxt.Threads[t])
			if afail != nil {
				verdict.AssertFail = afail
				verdict.States = store.Len()
				return finish()
			}
			var cz uint64
			if useSleep {
				cz = childSleep(ws.ops, t, sleepZ|expandedSoFar)
			}
			expandedSoFar |= uint64(1) << t
			savedTS := ws.cur.Threads[t]
			savedVal := ws.mem[op.Loc]
			ws.cur.Threads[t] = ws.nxt.Threads[t]
			ws.mem.Step(label)
			var key []byte
			if red != nil && red.symm() && !red.canonPerm(ws.cur, nil, ws.perm) {
				if !requeued {
					ws.cSym++
				}
				cz = permuteMask(cz, ws.perm)
				ws.keyBuf = ws.keyBuf[:0]
				ws.keyBuf = p.EncodeStatePerm(ws.keyBuf, ws.cur, ws.perm)
				ws.keyBuf = ws.mem.Encode(ws.keyBuf)
				key = ws.keyBuf
			} else {
				key = ws.encode(p, ws.cur, ws.mem)
			}
			ws.cur.Threads[t] = savedTS
			ws.mem[op.Loc] = savedVal
			if useSleep {
				if id, _, shrunk := store.AddBytesSleep(key, -1, explore.Step{}, cz); shrunk && id < next {
					requeue = append(requeue, id)
				}
			} else if id, isNew := store.AddBytes(key, -1, explore.Step{}); isNew && opts.HashCompact {
				queue.Push(id, ws.pushPayload(true, key))
			}
		}
		if opts.HashCompact {
			ws.recycle(item.St)
		}
	}
	verdict.States = store.Len()
	return finish()
}
