package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/egraph"
	"repro/internal/lang"
	"repro/internal/prog"
	"repro/internal/staterobust"
)

// randProgram generates a small loop-free concurrent program over two
// locations with writes, reads, FADDs, CASes (constant and register
// comparands — the latter exercise the all-values-critical corner of
// §5.1), XCHGs, waits and BCASes.
func randProgram(rng *rand.Rand) *lang.Program {
	numT := 2 + rng.Intn(2)
	p := &lang.Program{
		Name:     "rand",
		ValCount: 3,
		Locs:     []lang.LocInfo{{Name: "x"}, {Name: "y"}},
	}
	for t := 0; t < numT; t++ {
		sp := lang.SeqProg{Name: "t", NumRegs: 2, RegNames: []string{"r0", "r1"}}
		n := 2 + rng.Intn(3)
		for i := 0; i < n; i++ {
			mem := lang.MemRef{Base: lang.Loc(rng.Intn(2)), Size: 1}
			c := func() *lang.Expr { return lang.Const(lang.Val(rng.Intn(3))) }
			var in lang.Inst
			switch rng.Intn(10) {
			case 0, 1, 2:
				in = lang.Inst{Kind: lang.IWrite, Mem: mem, E: c()}
			case 3, 4, 5:
				in = lang.Inst{Kind: lang.IRead, Mem: mem, Reg: lang.Reg(rng.Intn(2))}
			case 6:
				in = lang.Inst{Kind: lang.IFADD, Mem: mem, Reg: 0, E: c()}
			case 7:
				exp := c()
				if rng.Intn(3) == 0 {
					exp = lang.RegE(1) // dynamic comparand: all values critical
				}
				in = lang.Inst{Kind: lang.ICAS, Mem: mem, Reg: 0, ER: exp, EW: c()}
			case 8:
				in = lang.Inst{Kind: lang.IXCHG, Mem: mem, Reg: 0, E: c()}
			default:
				if rng.Intn(2) == 0 {
					in = lang.Inst{Kind: lang.IWait, Mem: mem, E: c()}
				} else {
					in = lang.Inst{Kind: lang.IBCAS, Mem: mem, ER: c(), EW: c()}
				}
			}
			sp.Insts = append(sp.Insts, in)
		}
		p.Threads = append(p.Threads, sp)
	}
	return p
}

// enabledLabels enumerates every label the operation enables in the
// program LTS (Figure 2 / Definition 2.1).
func enabledLabels(op prog.MemOp, valCount int) []lang.Label {
	var out []lang.Label
	switch op.Kind {
	case prog.OpWrite:
		out = append(out, lang.WriteLab(op.Loc, op.WVal))
	case prog.OpRead:
		for v := 0; v < valCount; v++ {
			out = append(out, lang.ReadLab(op.Loc, lang.Val(v)))
		}
	case prog.OpFADD:
		for v := 0; v < valCount; v++ {
			out = append(out, lang.RMWLab(op.Loc, lang.Val(v), lang.Val((v+int(op.Add))%valCount)))
		}
	case prog.OpXCHG:
		for v := 0; v < valCount; v++ {
			out = append(out, lang.RMWLab(op.Loc, lang.Val(v), op.New))
		}
	case prog.OpCAS:
		out = append(out, lang.RMWLab(op.Loc, op.Exp, op.New))
		for v := 0; v < valCount; v++ {
			if lang.Val(v) != op.Exp {
				out = append(out, lang.ReadLab(op.Loc, lang.Val(v)))
			}
		}
	case prog.OpWait:
		out = append(out, lang.ReadLab(op.Loc, op.WVal))
	case prog.OpBCAS:
		out = append(out, lang.RMWLab(op.Loc, op.Exp, op.New))
	}
	return out
}

// encodeGraph produces a run-prefix-canonical encoding of the graph for
// visited-set deduplication.
func encodeGraph(g *egraph.Graph, dst []byte) []byte {
	for _, e := range g.Events {
		dst = append(dst, byte(e.Tid+1), byte(e.Sn), byte(e.Lab.Typ), byte(e.Lab.Loc), byte(e.Lab.VR), byte(e.Lab.VW))
	}
	dst = append(dst, 0xFD)
	for _, w := range g.RF {
		dst = append(dst, byte(w+1))
	}
	for _, ws := range g.MO {
		dst = append(dst, 0xFE)
		for _, w := range ws {
			dst = append(dst, byte(w))
		}
	}
	return dst
}

// graphRobust decides execution-graph robustness by the literal Theorem
// 5.1 characterization: explore every reachable ⟨q, G⟩ of P(SCG) (finite
// for loop-free programs) and search for a non-robustness witness
// ⟨q, G, τ, l, w⟩. It is exponential and exists purely as the independent
// specification the SCM-based verifier is tested against. With sra set it
// uses the SRAG predecessor-write candidates instead (the SRA extension).
func graphRobustModel(program *lang.Program, sra bool) bool {
	preds := func(g *egraph.Graph, t int, l lang.Label) []int {
		if sra {
			return g.SRAGPredecessors(t, l)
		}
		return g.RAGPredecessors(t, l)
	}
	return graphRobustWith(program, preds)
}

func graphRobust(program *lang.Program) bool {
	return graphRobustModel(program, false)
}

func graphRobustWith(program *lang.Program, preds func(*egraph.Graph, int, lang.Label) []int) bool {
	p := prog.New(program)
	type node struct {
		ps prog.State
		g  *egraph.Graph
	}
	ps0, fail := p.InitState()
	if fail != nil {
		return true
	}
	seen := map[string]struct{}{}
	var stack []node
	push := func(ps prog.State, g *egraph.Graph) {
		key := string(encodeGraph(g, p.EncodeState(nil, ps)))
		if _, ok := seen[key]; ok {
			return
		}
		seen[key] = struct{}{}
		stack = append(stack, node{ps, g})
	}
	push(ps0, egraph.NewGraph(program.NumLocs(), nil))
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ops := p.Ops(n.ps)
		for t := range ops {
			if ops[t].Kind == prog.OpNone {
				continue
			}
			// Witness conditions of Theorem 5.1.
			for _, l := range enabledLabels(ops[t], program.ValCount) {
				wmax := n.g.WMax(l.Loc)
				hbSC := n.g.HBSC()
				aware := false
				for e := 0; e < n.g.N() && !aware; e++ {
					if n.g.Events[e].Tid == t && hbSC.Has(wmax, e) {
						aware = true
					}
				}
				if !aware {
					continue
				}
				for _, w := range preds(n.g, t, l) {
					if w != wmax {
						return false // non-robustness witness found
					}
				}
			}
			// SCG successors.
			cur := n.g.Events[n.g.WMax(ops[t].Loc)].Lab.VW
			label, enabled := prog.SCLabel(ops[t], cur, program.ValCount)
			if !enabled {
				continue
			}
			nextTS, afail := p.Threads[t].Apply(n.ps.Threads[t], label)
			if afail != nil {
				continue
			}
			nextPS := n.ps.Clone()
			nextPS.Threads[t] = nextTS
			nextG := n.g.Clone()
			nextG.SCGStep(t, label)
			push(nextPS, nextG)
		}
	}
	return true
}

// TestTheorem51Equivalence checks, on hundreds of random loop-free
// programs, that the SCM-based decision procedure (Theorem 5.3, in both
// value-tracking modes) agrees exactly with the literal witness
// characterization of Theorem 5.1 evaluated on explicit execution graphs.
// This is the soundness-and-precision test of the whole reduction.
func TestTheorem51Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	iters := 400
	if testing.Short() {
		iters = 120
	}
	for iter := 0; iter < iters; iter++ {
		program := randProgram(rng)
		want := graphRobust(program)
		for _, abstract := range []bool{true, false} {
			v, err := core.Verify(program, core.Options{AbstractVals: abstract})
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			if v.Robust != want {
				t.Fatalf("iter %d (abstract=%v): SCM verdict %v, Theorem 5.1 witness search says %v\nprogram:\n%s",
					iter, abstract, v.Robust, want, program)
			}
		}
	}
}

// TestProposition410 checks, on random loop-free programs, that
// execution-graph robustness implies state robustness against RA
// (Proposition 4.10), using the independent timestamp-machine explorer.
func TestProposition410(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	iters := 250
	if testing.Short() {
		iters = 80
	}
	for iter := 0; iter < iters; iter++ {
		program := randProgram(rng)
		v, err := core.Verify(program, core.DefaultOptions())
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !v.Robust {
			continue
		}
		res, err := staterobust.CheckRA(program, staterobust.Limits{MaxStates: 500_000})
		if err != nil {
			continue // bound exceeded: skip this sample
		}
		if !res.Robust {
			t.Fatalf("iter %d: graph-robust program is not state robust under RA\nprogram:\n%s", iter, program)
		}
	}
}
