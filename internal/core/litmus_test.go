package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/litmus"
)

// TestLitmusVerdicts checks that the verifier reproduces the robustness
// verdicts the paper states for every corpus program (the §3 litmus tests
// and the Figure 7 table), in both value-tracking modes. Programs flagged
// Big (multi-million-state spaces) run only in the abstract mode with
// hash-compact storage, and only outside -short.
func TestLitmusVerdicts(t *testing.T) {
	for _, e := range litmus.All() {
		modes := []bool{true, false}
		if e.Big {
			modes = []bool{true}
		}
		for _, abstract := range modes {
			name := e.Name + map[bool]string{true: "/abstract", false: "/full"}[abstract]
			e := e
			t.Run(name, func(t *testing.T) {
				if e.Big {
					if testing.Short() {
						t.Skip("big state space; skipped in -short")
					}
					t.Parallel()
				}
				p := e.Program()
				v, err := core.Verify(p, core.Options{
					AbstractVals: abstract,
					HashCompact:  e.Big,
				})
				if err != nil {
					t.Fatalf("verify: %v", err)
				}
				if v.Robust != e.RobustRA {
					t.Errorf("got robust=%v, paper says %v\n%s", v.Robust, e.RobustRA, core.Explain(p, v))
				}
			})
		}
	}
}
