package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/litmus"
	"repro/internal/parser"
)

// TestHashCompactEquivalence checks that the hash-compacted visited set
// produces the same verdicts and state counts as the exact one across the
// small corpus (a collision would shrink the count).
func TestHashCompactEquivalence(t *testing.T) {
	for _, e := range litmus.All() {
		if e.Big {
			continue
		}
		p := e.Program()
		exact, err := core.Verify(p, core.Options{AbstractVals: true})
		if err != nil {
			t.Fatal(err)
		}
		hashed, err := core.Verify(p, core.Options{AbstractVals: true, HashCompact: true})
		if err != nil {
			t.Fatal(err)
		}
		if exact.Robust != hashed.Robust || exact.States != hashed.States {
			t.Errorf("%s: exact (robust=%v states=%d) vs hashcompact (robust=%v states=%d)",
				e.Name, exact.Robust, exact.States, hashed.Robust, hashed.States)
		}
	}
}

// TestVerifySC checks the plain SC explorer: assertion detection and
// agreement with the instrumented run on assertion-free programs.
func TestVerifySC(t *testing.T) {
	bad := parser.MustParse(`
program bad
vals 3
locs x
thread t1
  x := 2
end
thread t2
  r := x
  assert r != 2
end
`)
	v, err := core.VerifySC(bad, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.AssertFail == nil {
		t.Fatal("expected an assertion failure under SC")
	}
	// The instrumented verifier must report it too (a failing assertion
	// is a verification failure regardless of robustness).
	rv, err := core.Verify(bad, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rv.Robust || rv.AssertFail == nil {
		t.Errorf("instrumented run should surface the assertion failure: %+v", rv)
	}

	e, _ := litmus.Get("MP")
	good := e.Program()
	gv, err := core.VerifySC(good, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gv.AssertFail != nil || gv.States == 0 {
		t.Errorf("MP under SC: %+v", gv)
	}
}

// TestMaxStatesBound checks that the state bound aborts with ErrStateBound
// rather than returning a verdict.
func TestMaxStatesBound(t *testing.T) {
	e, _ := litmus.Get("peterson-ra")
	_, err := core.Verify(e.Program(), core.Options{AbstractVals: true, MaxStates: 10})
	if err == nil {
		t.Fatal("expected the state bound to trip")
	}
}

// TestExplainAndTrace smoke-tests the human-readable outputs.
func TestExplainAndTrace(t *testing.T) {
	e, _ := litmus.Get("SB")
	p := e.Program()
	v, err := core.Verify(p, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := core.Explain(p, v)
	for _, want := range []string{"NOT robust", "stale read", "SC run", "W(x,1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
	if len(v.Trace) == 0 {
		t.Fatal("expected a counterexample trace")
	}
	ft := core.FormatTrace(p, v.Trace)
	if !strings.Contains(ft, "t1: W(x,1)") {
		t.Errorf("FormatTrace output:\n%s", ft)
	}

	e2, _ := litmus.Get("MP")
	p2 := e2.Program()
	v2, _ := core.Verify(p2, core.DefaultOptions())
	if out := core.Explain(p2, v2); !strings.Contains(out, "ROBUST") {
		t.Errorf("Explain on a robust program:\n%s", out)
	}
}

// TestKeepAllViolations collects multiple violating states.
func TestKeepAllViolations(t *testing.T) {
	e, _ := litmus.Get("SB")
	v, err := core.Verify(e.Program(), core.Options{AbstractVals: true, KeepAllViolations: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Violations) < 2 {
		t.Errorf("expected violations from both threads, got %d", len(v.Violations))
	}
}

// TestMetadataBitsReported checks the §5.1 size is surfaced on the
// verdict and shrinks under abstraction when the program has few critical
// values.
func TestMetadataBitsReported(t *testing.T) {
	e, _ := litmus.Get("MP") // no wait/CAS: no critical values at all
	p := e.Program()
	abs, _ := core.Verify(p, core.Options{AbstractVals: true})
	full, _ := core.Verify(p, core.Options{AbstractVals: false})
	if abs.MetadataBits >= full.MetadataBits {
		t.Errorf("abstract metadata (%d bits) should be smaller than full (%d bits)",
			abs.MetadataBits, full.MetadataBits)
	}
	// MP: |Tid| = |Loc| = 2, no critical values: 3·2·2 + 4·4 = 28 bits.
	if abs.MetadataBits != 28 {
		t.Errorf("MP abstract metadata = %d bits, want 28", abs.MetadataBits)
	}
}
