package core_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/litmus"
	"repro/internal/staterobust"
)

// TestParallelParity checks the tentpole determinism claim: the parallel
// engine returns the same verdict as the sequential reference path on
// every corpus program, at every worker count, and — on robust programs,
// where the run is a full exploration — the exact same state count. On
// non-robust programs workers race to the first counterexample, so only
// the verdict (and the validity of the reported trace) is compared.
func TestParallelParity(t *testing.T) {
	for _, e := range litmus.All() {
		if e.Big {
			continue
		}
		p := e.Program()
		seq, err := core.Verify(p, core.Options{AbstractVals: true, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4} {
			par, err := core.Verify(p, core.Options{AbstractVals: true, Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", e.Name, w, err)
			}
			if par.Robust != seq.Robust {
				t.Errorf("%s workers=%d: Robust=%v, sequential says %v",
					e.Name, w, par.Robust, seq.Robust)
				continue
			}
			if seq.Robust && par.States != seq.States {
				t.Errorf("%s workers=%d: States=%d, sequential counted %d",
					e.Name, w, par.States, seq.States)
			}
			if !par.Robust {
				// The parallel trace need not match the sequential one (or
				// be shortest), but it must exist and FormatTrace must
				// accept it — a replay of every step against the program.
				if len(par.Violations) == 0 && par.AssertFail == nil {
					t.Errorf("%s workers=%d: non-robust verdict with no violation", e.Name, w)
				}
				if len(par.Trace) == 0 {
					t.Errorf("%s workers=%d: non-robust verdict with empty trace", e.Name, w)
				} else if out := core.FormatTrace(p, par.Trace); out == "" {
					t.Errorf("%s workers=%d: FormatTrace rejected the parallel trace", e.Name, w)
				}
			}
		}
	}
}

// TestParallelParityHashCompact repeats the parity check with the
// hash-compacted sharded store on a few medium rows, where a digest
// collision or a sharding bug would shrink the count.
func TestParallelParityHashCompact(t *testing.T) {
	for _, name := range []string{"peterson-ra", "ticketlock", "seqlock", "lamport2-ra"} {
		if testing.Short() && name == "lamport2-ra" {
			continue
		}
		e, err := litmus.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		p := e.Program()
		seq, err := core.Verify(p, core.Options{AbstractVals: true, HashCompact: true, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := core.Verify(p, core.Options{AbstractVals: true, HashCompact: true, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if par.Robust != seq.Robust || par.States != seq.States {
			t.Errorf("%s: parallel hashcompact (robust=%v states=%d) vs sequential (robust=%v states=%d)",
				name, par.Robust, par.States, seq.Robust, seq.States)
		}
	}
}

// TestParallelParitySC checks the plain-SC explorer's parallel path the
// same way: full runs (no assertion failure) must agree exactly.
func TestParallelParitySC(t *testing.T) {
	for _, e := range litmus.All() {
		if e.Big {
			continue
		}
		p := e.Program()
		seq, err := core.VerifySC(p, core.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := core.VerifySC(p, core.Options{Workers: 4})
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if (par.AssertFail == nil) != (seq.AssertFail == nil) {
			t.Errorf("%s: parallel AssertFail=%v, sequential %v",
				e.Name, par.AssertFail, seq.AssertFail)
			continue
		}
		if seq.AssertFail == nil && par.States != seq.States {
			t.Errorf("%s: SC parallel States=%d, sequential %d", e.Name, par.States, seq.States)
		}
	}
}

// TestParallelParityMaxStates checks that the state bound still trips in
// parallel mode. Workers race past the bound by up to a batch each, so
// only the error, not the exact count, is compared.
func TestParallelParityMaxStates(t *testing.T) {
	e, err := litmus.Get("ticketlock")
	if err != nil {
		t.Fatal(err)
	}
	p := e.Program()
	_, err = core.Verify(p, core.Options{AbstractVals: true, MaxStates: 100, Workers: 4})
	if !errors.Is(err, core.ErrStateBound) {
		t.Fatalf("bounded parallel run: err = %v, want ErrStateBound", err)
	}
}

// TestStateRobustParallelParity checks the ported RA state-robustness
// explorer: worker count must not change any verdict or the weak-state
// census (the weak set is a fixpoint, so it is schedule-independent even
// on non-robust rows that stop at the first witness — the witness search
// only runs after the full SC set is known).
func TestStateRobustParallelParity(t *testing.T) {
	for _, name := range []string{"SB", "MP", "2RMW", "barrier", "peterson-sc"} {
		e, err := litmus.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		p := e.Program()
		lim := staterobust.Limits{MaxStates: 3_000_000}
		lim.Workers = 1
		seq, err := staterobust.CheckRA(p, lim)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lim.Workers = 4
		par, err := staterobust.CheckRA(p, lim)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if par.Robust != seq.Robust {
			t.Errorf("%s: parallel Robust=%v, sequential %v", name, par.Robust, seq.Robust)
		}
		if seq.Robust && par.WeakStates != seq.WeakStates {
			t.Errorf("%s: parallel WeakStates=%d, sequential %d",
				name, par.WeakStates, seq.WeakStates)
		}
	}
}
