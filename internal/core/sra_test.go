package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/litmus"
	"repro/internal/staterobust"
)

// TestSRALitmus pins the SRA-mode verdicts on the litmus corpus. The
// anchor from the paper itself is Example 3.4: 2+2W's weak outcome needs
// a non-maximal write placement, so it is robust against SRA while not
// against RA; similarly for its read-free variant. Read-staleness
// programs (SB, IRIW) stay non-robust; since SRA is weaker than SC but
// stronger than RA, every RA-robust program must verify under SRA too.
func TestSRALitmus(t *testing.T) {
	expect := map[string]bool{
		"2+2W":     true, // Example 3.4: only robust against the stronger model
		"2+2W-nor": true,
		"SB":       false,
		"SB-zero":  false, // the stale read of the initialization write is an
		// rf divergence even though both writes carry the same value
		"IRIW":    false,
		"MP":      true,
		"2RMW":    true,
		"SB+RMWs": true,
	}
	for name, want := range expect {
		e, err := litmus.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		p := e.Program()
		v, err := core.Verify(p, core.Options{AbstractVals: true, Model: core.ModelSRA})
		if err != nil {
			t.Fatal(err)
		}
		if v.Robust != want {
			t.Errorf("%s: SRA robustness = %v, want %v", name, v.Robust, want)
		}
	}
	// Monotonicity across the whole corpus: RA-robust ⟹ SRA-robust.
	for _, e := range litmus.All() {
		if e.Big || !e.RobustRA {
			continue
		}
		p := e.Program()
		v, err := core.Verify(p, core.Options{AbstractVals: true, Model: core.ModelSRA})
		if err != nil {
			t.Fatal(err)
		}
		if !v.Robust {
			t.Errorf("%s: robust against RA but not against the stronger SRA", e.Name)
		}
	}
}

// TestSRAEquivalence mirrors TestTheorem51Equivalence for the SRA
// extension: the SRA-mode verifier agrees with the literal witness search
// over SRAG predecessor candidates on random loop-free programs.
func TestSRAEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	iters := 300
	if testing.Short() {
		iters = 100
	}
	for iter := 0; iter < iters; iter++ {
		program := randProgram(rng)
		want := graphRobustModel(program, true)
		for _, abstract := range []bool{true, false} {
			v, err := core.Verify(program, core.Options{AbstractVals: abstract, Model: core.ModelSRA})
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			if v.Robust != want {
				t.Fatalf("iter %d (abstract=%v): SRA verdict %v, witness search says %v\nprogram:\n%s",
					iter, abstract, v.Robust, want, program)
			}
		}
		// Monotonicity on random programs: RA-robust ⟹ SRA-robust.
		ra, err := core.Verify(program, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		sra, err := core.Verify(program, core.Options{AbstractVals: true, Model: core.ModelSRA})
		if err != nil {
			t.Fatal(err)
		}
		if ra.Robust && !sra.Robust {
			t.Fatalf("iter %d: RA-robust but not SRA-robust\nprogram:\n%s", iter, program)
		}
	}
}

// TestSRAProp410 checks the Proposition 4.10 analog for SRA against the
// restricted timestamp machine.
func TestSRAProp410(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	iters := 200
	if testing.Short() {
		iters = 60
	}
	for iter := 0; iter < iters; iter++ {
		program := randProgram(rng)
		v, err := core.Verify(program, core.Options{AbstractVals: true, Model: core.ModelSRA})
		if err != nil {
			t.Fatal(err)
		}
		if !v.Robust {
			continue
		}
		res, err := staterobust.CheckSRA(program, staterobust.Limits{MaxStates: 500_000})
		if err != nil {
			continue // bound exceeded: skip this sample
		}
		if !res.Robust {
			t.Fatalf("iter %d: SRA-graph-robust program not state robust under the SRA machine\nprogram:\n%s",
				iter, program)
		}
	}
}
