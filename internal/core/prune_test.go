package core

import (
	"testing"

	"repro/internal/litmus"
	"repro/internal/parser"
)

// fig7Prune pins, per Figure 7 row, the sequential exact-mode state count
// without and with the static pre-pass, and the number of locations the
// pass prunes. Seven robust rows shrink strictly — the fence-bearing rows
// (dekker-tso, peterson-ra, lamport2-*: the fence location is RMW-pure,
// so its plane is dropped) and the array/flag rows whose private or
// conflict-cycle-free locations fall outside every dangerous block
// (chase-lev-ra, cilk-the-wsq-tso, rcu-offline). Rows where every
// location sits on a conflict cycle are unchanged, as they must be.
var fig7Prune = []struct {
	name            string
	base, pruned    int
	prunedLocs      int
	strictlySmaller bool
}{
	{"barrier", 17, 17, 0, false},
	{"chase-lev-ra", 6104, 4224, 2, true},
	{"chase-lev-tso", 840, 840, 2, false},
	{"chase-lev-sc", 678, 678, 1, false},
	{"cilk-the-wsq-tso", 416, 357, 2, true},
	{"cilk-the-wsq-sc", 80, 80, 1, false},
	{"rcu-offline", 37610, 35762, 1, true},
	{"rcu", 21775, 21775, 0, false},
	{"nbw-w-lr-rl", 55272, 55272, 0, false},
	{"seqlock", 9778, 9778, 0, false},
	{"ticketlock4", 1045, 1045, 1, false},
	{"ticketlock", 139, 139, 1, false},
	{"spinlock4", 241, 241, 0, false},
	{"spinlock", 77, 77, 0, false},
	{"lamport2-3-ra", 15980451, 15401413, 1, true},
	{"lamport2-ra", 7466, 7306, 1, true},
	{"lamport2-tso", 114, 114, 1, false},
	{"lamport2-sc", 55, 55, 0, false},
	{"peterson-ra-bratosz", 20, 20, 0, false},
	{"peterson-ra-dmitriy", 140, 140, 0, false},
	{"peterson-ra", 474, 376, 1, true},
	{"peterson-tso", 28, 28, 1, false},
	{"peterson-sc", 20, 20, 0, false},
	{"dekker-tso", 209, 177, 1, true},
	{"dekker-sc", 14, 14, 0, false},
}

// TestStaticPruneFig7 checks verdict parity and the pinned state-space
// effect of the static pre-pass on every Figure 7 row. Robust-row counts
// must never grow; the seven rows marked strictlySmaller must shrink.
// Non-robust rows stop at the first violation, but sequential BFS is
// deterministic, so their counts are pinned too.
func TestStaticPruneFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 7 sweep")
	}
	rows := map[string]bool{}
	for _, e := range litmus.Fig7() {
		rows[e.Name] = true
	}
	for _, want := range fig7Prune {
		if !rows[want.name] {
			t.Errorf("pinned row %s missing from litmus.Fig7", want.name)
		}
	}
	if len(fig7Prune) != len(rows) {
		t.Errorf("pinned table has %d rows, Fig7 has %d", len(fig7Prune), len(rows))
	}
	entries := map[string]litmus.Entry{}
	for _, e := range litmus.Fig7() {
		entries[e.Name] = e
	}
	for _, want := range fig7Prune {
		want := want
		e, ok := entries[want.name]
		if !ok {
			continue
		}
		t.Run(want.name, func(t *testing.T) {
			t.Parallel()
			p, err := parser.Parse(e.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			base, err := Verify(p, Options{AbstractVals: true, Workers: 1})
			if err != nil {
				t.Fatalf("base verify: %v", err)
			}
			pruned, err := Verify(p, Options{AbstractVals: true, Workers: 1, StaticPrune: true})
			if err != nil {
				t.Fatalf("pruned verify: %v", err)
			}
			if base.Robust != pruned.Robust {
				t.Fatalf("verdict flip: base robust=%v pruned robust=%v", base.Robust, pruned.Robust)
			}
			if base.Robust != e.RobustRA {
				t.Fatalf("verdict %v, Figure 7 says %v", base.Robust, e.RobustRA)
			}
			if base.States != want.base || pruned.States != want.pruned {
				t.Errorf("states base=%d pruned=%d, pinned %d/%d",
					base.States, pruned.States, want.base, want.pruned)
			}
			if pruned.PrunedLocs != want.prunedLocs {
				t.Errorf("prunedLocs=%d, pinned %d", pruned.PrunedLocs, want.prunedLocs)
			}
			if base.Robust && pruned.States > base.States {
				t.Errorf("pruned run explored MORE states: %d > %d", pruned.States, base.States)
			}
			if want.strictlySmaller && pruned.States >= base.States {
				t.Errorf("expected strict shrink, got base=%d pruned=%d", base.States, pruned.States)
			}
			if pruned.Certificate {
				t.Errorf("no Fig. 7 row should be discharged statically (all have conflict cycles or asserts)")
			}
		})
	}
}

// TestStaticPruneParallelParity checks that pruned exploration keeps the
// engine invariant: verdicts and full-run state counts are worker-count
// independent.
func TestStaticPruneParallelParity(t *testing.T) {
	for _, name := range []string{"peterson-ra", "dekker-tso", "chase-lev-ra"} {
		e, err := litmus.Get(name)
		if err != nil {
			t.Fatalf("missing corpus entry %s: %v", name, err)
		}
		p := parser.MustParse(e.Source)
		seq, err := Verify(p, Options{AbstractVals: true, Workers: 1, StaticPrune: true})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Verify(p, Options{AbstractVals: true, Workers: 4, StaticPrune: true})
		if err != nil {
			t.Fatal(err)
		}
		if seq.Robust != par.Robust || seq.States != par.States {
			t.Errorf("%s: seq robust=%v states=%d, par robust=%v states=%d",
				name, seq.Robust, seq.States, par.Robust, par.States)
		}
	}
}
