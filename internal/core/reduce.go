package core

// Conflict-graph-guided partial-order reduction (Options.Reduce).
//
// Three mutually compatible techniques shrink the explored quotient of the
// ⟨program, SCM⟩ product without changing any verdict:
//
//   - Ample sets. At a state with two or more enabled threads, a thread
//     whose pending operation is invisible to every other thread — its
//     location is outside every other thread's forward may-access summary
//     (full privacy), or the operation is a plain read and the location is
//     outside every other thread's forward may-write summary (read-only
//     sharing) — may stand in for the full expansion: every deferred
//     interleaving is a commuted permutation of an explored one. The
//     summaries come from analysis.AccessSets (cell-precise via constant
//     propagation), so independence is judged on what threads can still do,
//     not on their whole text. Dynamic side conditions keep the classic
//     provisos: conditionally-enabled operations (await, blocking CAS)
//     never lead an ample set (C1: deferred enabledness must be invariant);
//     all threads' Theorem 5.3 / race conditions are evaluated at every
//     visited state, and the monitor checks of a deferred operation are
//     invariant along independent steps, so no violation is postponed past
//     the state that exhibits it (C2); and an ample step must strictly
//     advance the representative's pc, so no cycle consists of ample steps
//     only (C3).
//
//   - Sleep sets. Each stored state carries a mask of threads whose pending
//     operations are provably redundant there: exploring them would only
//     commute with an already-explored edge of the parent. On revisits the
//     masks intersect, and a strict shrink re-queues the state so formerly
//     elided edges are explored (the standard fixpoint discipline on
//     non-tree state graphs). Sleep sets elide edges, never states, so the
//     distinct-state count is unchanged by them and stays worker-count-
//     independent: the final masks are the greatest fixpoint of a monotone
//     system, which chaotic iteration reaches in any order. Exact visited
//     set only — hash-compacted stores keep no keys to re-expand from.
//
//   - Thread symmetry. Threads with byte-identical code (prog.SymClasses'
//     raw serialization, register indices verbatim) are interchangeable:
//     the interleaving semantics and the SCM monitor treat thread
//     identities symmetrically, so permuting such threads maps runs to
//     runs. Successor states are interned canonically — class members
//     sorted by their full per-thread content (program block, then the
//     thread-indexed monitor words) — collapsing each orbit to one
//     representative. The applied permutation is packed into the trace
//     step, and counterexample traces are concretized back into runs of
//     the original program by composing the per-step permutations.

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/analysis"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/memsc"
	"repro/internal/prog"
	"repro/internal/scm"
)

// maxSymThreads bounds thread-symmetry reduction: a permutation packs into
// explore.Step.Perm as 4-bit slots under a flag bit, so up to 7 threads fit
// a uint32. Programs with more threads still get ample and sleep sets.
const maxSymThreads = 7

// maxSleepThreads bounds sleep-set reduction (per-state uint64 masks).
const maxSleepThreads = 64

// reducer is the immutable per-run reduction oracle, shared read-only by
// all workers; mutable scratch (the permutation buffer, counters) lives in
// the per-worker scratch structs.
type reducer struct {
	prog *lang.Program
	p    *prog.P
	mon  *scm.Monitor // nil in the SC-only explorer
	// acc[t][pc] / wr[t][pc]: locations thread t may access / write at or
	// after pc (analysis.AccessSets).
	acc, wr [][]uint64
	// classes are the symmetry classes of interchangeable threads
	// (nil: symmetry reduction off).
	classes [][]int
	vc      int
	nT      int
}

func newReducer(program *lang.Program, p *prog.P, mon *scm.Monitor) *reducer {
	acc, wr := analysis.AccessSets(program)
	r := &reducer{prog: program, p: p, mon: mon, acc: acc, wr: wr,
		vc: program.ValCount, nT: program.NumThreads()}
	if r.nT <= maxSymThreads {
		r.classes = prog.SymClasses(program)
	}
	return r
}

func (r *reducer) symm() bool { return r.classes != nil }

// ample picks one thread whose pending operation may stand in for the full
// expansion of the current state, or -1 to require full expansion. mem is
// the current SC memory (the monitor's M component, or the SC-only
// explorer's memory); nxt is caller scratch for the trial step.
func (r *reducer) ample(mem []lang.Val, cur, nxt prog.State, ops []prog.MemOp) int {
	return r.ampleEx(mem, cur, nxt, ops, nil)
}

// ampleEx is ample with an optional per-candidate narration hook (used by
// ExplainReduce; nil on the hot path, costing only the guard).
func (r *reducer) ampleEx(mem []lang.Val, cur, nxt prog.State, ops []prog.MemOp, note func(t int, msg string)) int {
	enabled := 0
	for t := range ops {
		op := ops[t]
		if op.Kind == prog.OpNone {
			continue
		}
		if _, ok := prog.SCLabel(op, mem[op.Loc], r.vc); ok {
			enabled++
		}
	}
	if enabled < 2 {
		if note != nil {
			note(-1, "fewer than two enabled threads: full expansion is already minimal")
		}
		return -1
	}
	for t := range ops {
		op := ops[t]
		switch op.Kind {
		case prog.OpNone:
			if note != nil {
				note(t, "terminated")
			}
			continue
		case prog.OpWait, prog.OpBCAS:
			// Conditionally-enabled operations never lead an ample set:
			// their enabledness is not invariant under other threads'
			// steps, which C1 requires of the deferred context.
			if note != nil {
				note(t, fmt.Sprintf("pending %s on %s is conditionally enabled; never an ample representative",
					opKindName(op.Kind), r.prog.LocName(op.Loc)))
			}
			continue
		}
		label, ok := prog.SCLabel(op, mem[op.Loc], r.vc)
		if !ok {
			if note != nil {
				note(t, "blocked")
			}
			continue
		}
		bit := uint64(1) << op.Loc
		private, readShared := true, op.Kind == prog.OpRead
		blocker := -1
		for u := range ops {
			if u == t {
				continue
			}
			pc := cur.Threads[u].PC
			if r.acc[u][pc]&bit != 0 {
				private = false
			}
			if r.wr[u][pc]&bit != 0 {
				readShared = false
			}
			if !private && !readShared {
				blocker = u
				break
			}
		}
		if !private && !readShared {
			if note != nil {
				verb := "accessed"
				if op.Kind == prog.OpRead {
					verb = "written"
				}
				note(t, fmt.Sprintf("pending %s on %s: %s may still be %s by %s",
					opKindName(op.Kind), r.prog.LocName(op.Loc), r.prog.LocName(op.Loc),
					verb, r.prog.Threads[blocker].Name))
			}
			continue
		}
		// Trial step: an ample transition must not mask an assertion
		// failure (choose t so the real expansion surfaces it), and must
		// strictly advance t's pc — then no cycle consists of ample steps
		// only (the pc sum strictly increases along them), so every cycle
		// contains a fully expanded state (C3).
		if afail := r.p.Threads[t].ApplyInto(cur.Threads[t], label, &nxt.Threads[t]); afail != nil {
			if note != nil {
				note(t, "trial step fails an assertion; expanded alone to surface it")
			}
			return t
		}
		if nxt.Threads[t].PC <= cur.Threads[t].PC {
			if note != nil {
				note(t, fmt.Sprintf("pending %s on %s is invisible but does not advance the pc (possible ample-only cycle)",
					opKindName(op.Kind), r.prog.LocName(op.Loc)))
			}
			continue
		}
		if note != nil {
			how := "no other thread can still access it"
			if !private {
				how = "a read, and no other thread can still write it"
			}
			note(t, fmt.Sprintf("AMPLE: pending %s on %s — %s",
				opKindName(op.Kind), r.prog.LocName(op.Loc), how))
		}
		return t
	}
	return -1
}

// nonWriting reports that an operation kind never writes its location (so
// two such operations on the same location commute).
func nonWriting(k prog.OpKind) bool { return k == prog.OpRead || k == prog.OpWait }

// indepOps reports that the two pending operations (of distinct threads)
// commute: different locations, or both non-writing on the same one.
func indepOps(a, b prog.MemOp) bool {
	return a.Loc != b.Loc || (nonWriting(a.Kind) && nonWriting(b.Kind))
}

// childSleep computes the sleep mask an edge by thread t hands to its
// target: every other thread u in base (the parent's sleep set plus the
// threads already expanded at the parent) whose pending operation is
// independent of t's stays redundant after t's step.
func childSleep(ops []prog.MemOp, t int, base uint64) uint64 {
	var out uint64
	base &^= uint64(1) << t
	for u := range ops {
		if base>>u&1 != 0 && ops[u].Kind != prog.OpNone && indepOps(ops[u], ops[t]) {
			out |= uint64(1) << u
		}
	}
	return out
}

// canonPerm fills perm with the symmetry permutation canonicalizing the
// successor state (ps, ms): within every class, member slots are sorted by
// the threads' full per-thread content — the program block first, then the
// thread-indexed monitor words (ms is nil in the SC-only explorer, which
// has no monitor). Two threads comparing equal have identical per-thread
// content everywhere, so any tie order yields the same encoding. Reports
// whether the result is the identity.
func (r *reducer) canonPerm(ps prog.State, ms *scm.State, perm []uint8) bool {
	for i := range perm {
		perm[i] = uint8(i)
	}
	identity := true
	for _, cls := range r.classes {
		for i := 1; i < len(cls); i++ {
			for j := i; j > 0; j-- {
				a, b := perm[cls[j-1]], perm[cls[j]]
				if r.cmpThreads(ps, ms, int(a), int(b)) <= 0 {
					break
				}
				perm[cls[j-1]], perm[cls[j]] = b, a
				identity = false
			}
		}
	}
	return identity
}

func (r *reducer) cmpThreads(ps prog.State, ms *scm.State, a, b int) int {
	if c := r.p.CmpThreads(ps, a, b); c != 0 {
		return c
	}
	if ms != nil {
		return r.mon.CmpThreads(ms, a, b)
	}
	return 0
}

// packPerm packs a (non-identity) thread permutation into an
// explore.Step.Perm: bit 31 flags presence, slot i occupies bits 4i..4i+3.
func packPerm(perm []uint8) uint32 {
	p := uint32(1) << 31
	for i, v := range perm {
		p |= uint32(v) << (4 * i)
	}
	return p
}

// unpackPerm reverses packPerm into dst[:n].
func unpackPerm(p uint32, n int, dst []uint8) []uint8 {
	for i := 0; i < n; i++ {
		dst[i] = uint8(p >> (4 * i) & 0xf)
	}
	return dst[:n]
}

// permuteMask carries a thread mask into canonical coordinates: canonical
// slot i corresponds to pre-canonicalization thread perm[i].
func permuteMask(m uint64, perm []uint8) uint64 {
	var out uint64
	for i, p := range perm {
		out |= (m >> p & 1) << i
	}
	return out
}

// concretize rewrites a canonical-quotient trace, in place, into a run of
// the original program: each step's thread id is mapped through the
// composed permutation of the states before it, and the per-step
// permutations are cleared. It returns the final slot-to-thread map, for
// remapping thread ids recorded at the trace's last state (violations,
// assertion failures).
func (r *reducer) concretize(trace []explore.Step) []uint8 {
	sigma := make([]uint8, r.nT)
	for i := range sigma {
		sigma[i] = uint8(i)
	}
	if !r.symm() {
		return sigma
	}
	var pbuf, ns [maxSymThreads]uint8
	for k := range trace {
		st := &trace[k]
		if st.Internal == explore.IntNone {
			st.Tid = lang.Tid(sigma[st.Tid])
		}
		if st.Perm != 0 {
			p := unpackPerm(st.Perm, r.nT, pbuf[:])
			for i := 0; i < r.nT; i++ {
				ns[i] = sigma[p[i]]
			}
			copy(sigma, ns[:r.nT])
			st.Perm = 0
		}
	}
	return sigma
}

// concretizeViolation returns viol with its thread ids mapped through
// sigma (a copy; the recorded violation is left canonical).
func concretizeViolation(viol *scm.Violation, sigma []uint8) *scm.Violation {
	nv := *viol
	nv.Tid = lang.Tid(sigma[nv.Tid])
	if nv.Kind == scm.NARace {
		nv.Tid2 = lang.Tid(sigma[nv.Tid2])
	}
	return &nv
}

func opKindName(k prog.OpKind) string {
	switch k {
	case prog.OpWrite:
		return "write"
	case prog.OpRead:
		return "read"
	case prog.OpFADD:
		return "fadd"
	case prog.OpCAS:
		return "cas"
	case prog.OpWait:
		return "await"
	case prog.OpBCAS:
		return "bcas"
	case prog.OpXCHG:
		return "xchg"
	}
	return "none"
}

func locSetStr(program *lang.Program, m uint64) string {
	if m == 0 {
		return "-"
	}
	var parts []string
	for m != 0 {
		x := bits.TrailingZeros64(m)
		m &^= uint64(1) << x
		parts = append(parts, program.LocName(lang.Loc(x)))
	}
	return strings.Join(parts, ",")
}

// ExplainReduce renders a human-readable account of what the partial-order
// reduction layer (Options.Reduce) does on a program: the static
// independence relation derived from the conflict-graph access summaries,
// the thread-symmetry classes, and — at the initial state, as a sample —
// why each thread's pending operation was or was not taken as the ample
// representative.
func ExplainReduce(program *lang.Program) string {
	var b strings.Builder
	if err := program.Validate(); err != nil {
		fmt.Fprintf(&b, "%s: invalid program: %v\n", program.Name, err)
		return b.String()
	}
	p := prog.New(program)
	r := newReducer(program, p, nil)
	fmt.Fprintf(&b, "%s: partial-order reduction plan\n", program.Name)
	b.WriteString("  forward access summaries (from entry):\n")
	for t := range program.Threads {
		fmt.Fprintf(&b, "    %-12s may access {%s}, may write {%s}\n",
			program.Threads[t].Name, locSetStr(program, r.acc[t][0]), locSetStr(program, r.wr[t][0]))
	}
	b.WriteString("  static (in)dependence between thread pairs:\n")
	for a := range program.Threads {
		for c := a + 1; c < len(program.Threads); c++ {
			dep := r.acc[a][0]&r.wr[c][0] | r.wr[a][0]&r.acc[c][0]
			pair := fmt.Sprintf("%s / %s", program.Threads[a].Name, program.Threads[c].Name)
			if dep == 0 {
				fmt.Fprintf(&b, "    %-20s independent (no location one writes and the other touches)\n", pair+":")
			} else {
				fmt.Fprintf(&b, "    %-20s conflict on {%s}\n", pair+":", locSetStr(program, dep))
			}
		}
	}
	switch {
	case r.symm():
		for _, cls := range r.classes {
			names := make([]string, len(cls))
			for i, t := range cls {
				names[i] = program.Threads[t].Name
			}
			fmt.Fprintf(&b, "  thread symmetry: {%s} are interchangeable\n", strings.Join(names, ", "))
		}
	case r.nT > maxSymThreads:
		fmt.Fprintf(&b, "  thread symmetry: disabled (%d threads > %d)\n", r.nT, maxSymThreads)
	default:
		b.WriteString("  thread symmetry: no two threads are interchangeable\n")
	}
	ps0, fail := p.InitState()
	if fail != nil {
		b.WriteString("  initial state fails an assertion; nothing to explore\n")
		return b.String()
	}
	nxt := prog.State{Threads: make([]prog.ThreadState, len(p.Threads))}
	for i := range p.Threads {
		nxt.Threads[i].Regs = make([]lang.Val, program.Threads[i].NumRegs)
	}
	ops := p.Ops(ps0)
	mem := memsc.New(program.NumLocs())
	b.WriteString("  ample-set decision at the initial state (sample):\n")
	chosen := r.ampleEx(mem, ps0, nxt, ops, func(t int, msg string) {
		if t < 0 {
			fmt.Fprintf(&b, "    %s\n", msg)
			return
		}
		fmt.Fprintf(&b, "    %-12s %s\n", program.Threads[t].Name+":", msg)
	})
	if chosen >= 0 {
		fmt.Fprintf(&b, "    => ample set {%s}: one edge stands in for the full expansion\n",
			program.Threads[chosen].Name)
	} else {
		b.WriteString("    => full expansion\n")
	}
	return b.String()
}
