// Package core is the heart of the reproduction: the Rocker verifier. It
// decides execution-graph robustness against the release/acquire memory
// model by exhaustively exploring the program composed with the
// instrumented SC memory SCM of §5 and evaluating the Theorem 5.3
// robustness conditions (plus the §6 racy-state condition and any user
// assertions) at every reachable state — the reduction the paper proves
// sound and precise (Theorems 5.1, 5.3 and 6.2).
//
// By Proposition 4.10, a Robust verdict also establishes state robustness:
// every program state reachable under RA is reachable under SC, so the
// program may be verified with SC-only techniques. A NonRobust verdict
// comes with a counterexample trace: an SC run to a state from which an RA
// execution graph can diverge from all SC ones.
//
// Exploration is parallel by default (Options.Workers): robustness
// checking is embarrassingly parallel at the state level, since the
// Theorem 5.3 conditions are evaluated per state against the read-only
// monitor. Workers share a sharded visited set and hand the frontier off
// in batches (see internal/explore); Workers = 1 runs the sequential
// reference implementation, against which the parallel engine's verdicts
// and full-run state counts are pinned by tests.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/prog"
	"repro/internal/scm"
)

// Model selects the weak memory model robustness is checked against.
type Model uint8

// Supported models.
const (
	// ModelRA is the paper's release/acquire model (the default).
	ModelRA Model = iota
	// ModelSRA is the strong release/acquire model of Lahav, Giannarakis
	// & Vafeiadis (POPL 2016) — the §9 extension direction. SRA places
	// writes mo-maximally, so only stale reads can break robustness;
	// e.g. 2+2W is robust against SRA but not against RA (Example 3.4).
	ModelSRA
)

// Options configures verification.
type Options struct {
	// Model selects the weak model (RA by default, or SRA).
	Model Model
	// AbstractVals enables the §5.1 abstract value management (critical
	// values only, with CV/CW summaries). It is the default mode; turning
	// it off tracks every value exactly (the ablation of §5.1).
	AbstractVals bool
	// MaxStates bounds the explored state count; 0 means unbounded.
	// Exceeding the bound yields an error, never a wrong verdict.
	MaxStates int
	// KeepAllViolations collects every violating state instead of
	// stopping at the first (useful for fence inference).
	KeepAllViolations bool
	// HashCompact stores 128-bit hashes of states instead of full state
	// encodings in the visited set (Spin's hashcompact mode). It cuts
	// memory roughly 4× on large runs; a hash collision could in
	// principle prune a state (probability < n²·2⁻¹²⁸ for n states —
	// negligible, but the exact mode is the default and is used by all
	// correctness tests).
	HashCompact bool
	// Workers sets the number of parallel exploration workers: 0 uses
	// GOMAXPROCS, 1 forces the sequential reference implementation.
	// Verdicts are worker-count-independent; on full (robust) runs so is
	// the state count. Only counterexample traces may differ.
	Workers int
	// Ctx, when non-nil, bounds the verification by a deadline or an
	// explicit cancellation: the exploration polls it cooperatively (every
	// few hundred expansions at most) and a cancelled run returns
	// ErrCanceled — never a partial or wrong verdict. Robustness checking
	// is PSPACE-hard in general, so long-running callers (the rockerd
	// service, CLI -timeout flags) must be able to bail out cleanly.
	Ctx context.Context
	// Progress, when non-nil, is called with a snapshot of the running
	// exploration every ProgressEvery expanded states. It may be invoked
	// concurrently from worker goroutines and must be cheap and
	// goroutine-safe; it must not retain the snapshot's identity beyond
	// the call (the values are plain counters, safe to copy).
	Progress func(Progress)
	// ProgressEvery is the number of expanded states between Progress
	// calls; 0 means 4096.
	ProgressEvery int
	// Reduce turns on conflict-graph-guided partial-order reduction:
	// ample-set expansion (a thread whose pending operation touches a
	// location no other thread can still access — or, for a plain read, no
	// other thread can still write, per the internal/analysis forward
	// summaries — stands in for the full expansion of a state), sleep sets
	// (edges that only commute with an already-explored interleaving are
	// skipped; exact visited set only), and thread-symmetry
	// canonicalization (states of byte-identical threads are interned up
	// to permutation, with counterexample traces concretized back through
	// the recorded permutations). Verdicts are bit-identical with and
	// without it; the distinct-state count shrinks — often by multiples —
	// and stays worker-count-independent on robust runs. The zero value is
	// off; the rocker CLI enables it by default (-noreduce opts out).
	Reduce bool
	// StaticPrune runs the internal/analysis pre-pass before exploring:
	// locations outside every cross-thread conflict cycle are dropped
	// from the SCM instrumentation (shrinking the state space without
	// changing any verdict), critical-value masks are sharpened by
	// constant propagation when AbstractVals is on, and programs whose
	// conflict graph has no dangerous cycle at all are discharged
	// immediately with Verdict.Certificate set and zero states explored.
	StaticPrune bool
}

// Progress is a live snapshot of a running exploration, delivered to
// Options.Progress. The frontier depth is States - Expanded: every
// interned state is eventually expanded exactly once.
type Progress struct {
	// States is the number of distinct states interned so far.
	States int
	// Expanded is the number of states fully expanded so far.
	Expanded int64
}

// ErrCanceled is returned (wrapped, with the context's cause) when
// Options.Ctx is cancelled before the exploration completes. A cancelled
// run never reports a verdict: the state space was only partially
// explored, so "robust so far" would be unsound to return.
var ErrCanceled = errors.New("core: verification canceled")

// canceled wraps ctx's cause in ErrCanceled.
func canceled(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}

// ctxPollMask gates the sequential loops' context polls: the context is
// checked every ctxPollMask+1 expansions, which bounds the number of
// expansions a cancelled sequential run performs before stopping.
const ctxPollMask = 255

// DefaultOptions returns the standard configuration (abstract values on,
// no state bound, exact visited set, parallel exploration).
func DefaultOptions() Options { return Options{AbstractVals: true} }

// workerCount resolves Options.Workers to an actual worker count.
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Verdict is the result of a robustness verification run.
type Verdict struct {
	// Robust reports execution-graph robustness against RA (and
	// race-freedom on non-atomic locations, and that no assertion fails
	// under SC).
	Robust bool
	// Violations holds the detected robustness violations (at most one
	// unless Options.KeepAllViolations).
	Violations []*scm.Violation
	// AssertFail reports a failed user assertion, if any.
	AssertFail *prog.AssertFailure
	// Trace is an SC run (sequence of thread-labelled memory actions)
	// leading to a violating state (the first found; a shortest one under
	// Workers = 1).
	Trace []explore.Step
	// States is the number of distinct ⟨program, SCM⟩ states explored.
	States int
	// Elapsed is the wall-clock verification time.
	Elapsed time.Duration
	// MetadataBits is the size of the SCM instrumentation per §5.1.
	MetadataBits int
	// Certificate reports that the Robust verdict was discharged by the
	// static pre-pass (Options.StaticPrune) without exploring any state:
	// the conflict graph has no cycle through two or more conflict
	// edges, so no SC run can witness a Theorem 5.3 violation.
	Certificate bool
	// PrunedLocs is the number of locations the pre-pass dropped from
	// the SCM instrumentation (0 when StaticPrune is off).
	PrunedLocs int
	// CritSharpened reports that constant propagation strictly shrank at
	// least one critical-value mask.
	CritSharpened bool
	// AmpleHits counts expanded states where the partial-order reduction
	// (Options.Reduce) replaced the full expansion by a single ample
	// representative; SleepSkips counts edges elided by sleep sets;
	// SymmetryFolds counts successor states canonicalized under a
	// non-identity thread permutation. All three are 0 with Reduce off.
	// AmpleHits is (like States) worker-count-independent on full runs;
	// SleepSkips and SymmetryFolds depend on exploration order and may
	// vary across parallel runs.
	AmpleHits, SleepSkips, SymmetryFolds int64
	// Analysis holds the full pre-pass result when StaticPrune is on,
	// for -explain style reporting.
	Analysis *analysis.Result
}

// ErrStateBound is returned when MaxStates is exceeded.
var ErrStateBound = fmt.Errorf("core: state bound exceeded")

// verifier bundles the immutable per-run machinery shared by the
// sequential and parallel paths: the compiled program, the monitor (both
// read-only during exploration, so workers share them), and the
// racy-state flag.
type verifier struct {
	p     *prog.P
	mon   *scm.Monitor
	hasNA bool
	an    *analysis.Result // pre-pass result, nil unless Options.StaticPrune
}

func newVerifier(program *lang.Program, opts Options) (*verifier, error) {
	if err := program.Validate(); err != nil {
		return nil, err
	}
	p := prog.New(program)
	var an *analysis.Result
	if opts.StaticPrune {
		an = analysis.Analyze(program)
	}
	var crit []uint64
	switch {
	case opts.AbstractVals && an != nil:
		// The sharpened masks are a subset of prog.CriticalVals, which
		// Def 5.5 allows: any superset of the actually-compared values
		// is a sound critical set.
		crit = append([]uint64(nil), an.Crit...)
	case opts.AbstractVals:
		crit = prog.CriticalVals(program)
	default:
		crit = prog.FullCriticalVals(program)
	}
	if an != nil {
		// Untracked planes are identically zero (scm.Monitor.Tracked),
		// so their critical sets only waste encoding width.
		for x := range crit {
			if an.Tracked&(uint64(1)<<x) == 0 {
				crit[x] = 0
			}
		}
	}
	na := make([]bool, len(program.Locs))
	hasNA := false
	for i, li := range program.Locs {
		na[i] = li.NA
		hasNA = hasNA || li.NA
	}
	mon := scm.NewMonitor(program.NumThreads(), program.NumLocs(), program.ValCount, crit, na)
	mon.SRA = opts.Model == ModelSRA
	if an != nil {
		mon.Tracked = an.Tracked
	}
	return &verifier{p: p, mon: mon, hasNA: hasNA, an: an}, nil
}

// annotate copies the pre-pass summary fields into a verdict.
func (v *verifier) annotate(verdict *Verdict) {
	if v.an == nil {
		return
	}
	verdict.Analysis = v.an
	verdict.PrunedLocs = bits.OnesCount64(v.an.Pruned)
	verdict.CritSharpened = v.an.CritSharpened
}

// scratch is the per-worker decode/expansion state: a reusable current
// program state and a successor state for the clone-free ApplyInto kernel
// (register slices included), the pending-operation buffer, current and
// successor monitor states, the encode buffer, a buffer for
// re-materializing exact-mode frontier keys from the arena, and the
// free list of recycled hash-compact frontier payloads. The sequential
// path uses a single instance; with it, steady-state expansion performs no
// heap allocation.
type scratch struct {
	cur    prog.State
	nxt    prog.State
	ops    []prog.MemOp
	curMS  scm.State
	nextMS *scm.State
	keyBuf []byte
	popBuf []byte
	free   [][]byte
	// Partial-order reduction scratch (Options.Reduce): the
	// canonicalization permutation buffer and per-worker reduction
	// counters, summed into the verdict after the run.
	perm                 []uint8
	cAmple, cSleep, cSym int64
}

func (v *verifier) newScratch(program *lang.Program) *scratch {
	s := &scratch{nextMS: v.mon.Init(), ops: make([]prog.MemOp, len(v.p.Threads))}
	s.cur = prog.State{Threads: make([]prog.ThreadState, len(v.p.Threads))}
	s.nxt = prog.State{Threads: make([]prog.ThreadState, len(v.p.Threads))}
	for i := range v.p.Threads {
		s.cur.Threads[i].Regs = make([]lang.Val, program.Threads[i].NumRegs)
		s.nxt.Threads[i].Regs = make([]lang.Val, program.Threads[i].NumRegs)
	}
	return s
}

// pushPayload returns the frontier payload for a newly interned state: nil
// in exact mode (the queue carries only the id; bytes are re-materialized
// from the store's arena on expansion) and a recycled copy of key in
// hash-compact mode, where the store keeps no key bytes.
func (s *scratch) pushPayload(hashCompact bool, key []byte) []byte {
	if !hashCompact {
		return nil
	}
	var buf []byte
	if n := len(s.free); n > 0 {
		buf = s.free[n-1][:0]
		s.free = s.free[:n-1]
	}
	return append(buf, key...)
}

// recycle takes back an expanded hash-compact frontier payload.
func (s *scratch) recycle(buf []byte) {
	if buf != nil {
		s.free = append(s.free, buf)
	}
}

func (s *scratch) encode(v *verifier, ps prog.State, ms *scm.State) []byte {
	s.keyBuf = s.keyBuf[:0]
	s.keyBuf = v.p.EncodeState(s.keyBuf, ps)
	s.keyBuf = v.mon.Encode(s.keyBuf, ms)
	return s.keyBuf
}

// Verify decides execution-graph robustness of the program against RA.
func Verify(program *lang.Program, opts Options) (*Verdict, error) {
	if opts.StaticPrune {
		// Certificate fast path: if the conflict graph has no block with
		// two or more conflict edges (and neither assertions nor
		// non-atomic conflicts require exploration), the program is
		// robust — against RA and a fortiori against SRA, whose
		// Theorem 5.3 conditions are a subset — with zero states.
		start := time.Now()
		if err := program.Validate(); err != nil {
			return nil, err
		}
		if an := analysis.Analyze(program); an.Certificate {
			return &Verdict{
				Robust:        true,
				Certificate:   true,
				Analysis:      an,
				PrunedLocs:    bits.OnesCount64(an.Pruned),
				CritSharpened: an.CritSharpened,
				Elapsed:       time.Since(start),
			}, nil
		}
	}
	if opts.workerCount() > 1 {
		return verifyParallel(program, opts)
	}
	start := time.Now()
	v, err := newVerifier(program, opts)
	if err != nil {
		return nil, err
	}
	verdict := &Verdict{Robust: true, MetadataBits: v.mon.Bits()}
	v.annotate(verdict)
	var ws *scratch
	finish := func() (*Verdict, error) {
		// A canceled run never reports a verdict, even if exploration
		// happened to finish before the poll noticed: the caller asked for
		// cancellation, and a deterministic ErrCanceled is what the
		// service layer's "canceled, not a verdict" contract needs.
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return nil, canceled(opts.Ctx)
		}
		if ws != nil {
			verdict.AmpleHits, verdict.SleepSkips, verdict.SymmetryFolds = ws.cAmple, ws.cSleep, ws.cSym
		}
		verdict.Elapsed = time.Since(start)
		return verdict, nil
	}
	ps0, fail := v.p.InitState()
	if fail != nil {
		verdict.Robust = false
		verdict.AssertFail = fail
		return finish()
	}
	ms0 := v.mon.Init()
	var red *reducer
	if opts.Reduce {
		red = newReducer(program, v.p, v.mon)
	}
	// Sleep sets need the exact store (re-expansion re-materializes keys,
	// which hash-compacted stores cannot) and per-state uint64 masks.
	useSleep := red != nil && !opts.HashCompact && red.nT <= maxSleepThreads

	var store *explore.Store
	if opts.HashCompact {
		store = explore.NewHashCompactStore()
	} else {
		store = explore.NewStore()
	}
	// The frontier is zero-copy. In exact mode it is implicit: sequential
	// BFS interns states in exactly the order it pops them, so the dense id
	// sequence 0, 1, 2, ... IS the FIFO frontier — no queue exists at all,
	// the visited store doubles as the frontier, and the packed encoding
	// (program state followed by SCM state) is re-materialized from the
	// store's arena on expansion. In hash-compact mode, where the store
	// keeps no key bytes, a real queue carries payload copies whose buffers
	// are recycled through a free list.
	var queue explore.Queue[[]byte]
	ws = v.newScratch(program)
	if red != nil {
		ws.perm = make([]uint8, red.nT)
	}
	rootKey := ws.encode(v, ps0, ms0)
	root, _ := store.AddBytes(rootKey, -1, explore.Step{})
	if opts.HashCompact {
		queue.Push(root, ws.pushPayload(true, rootKey))
	}

	report := func(id int32, viol *scm.Violation) bool {
		verdict.Robust = false
		if verdict.Trace == nil {
			verdict.Trace = store.Trace(id)
			if red != nil && red.symm() {
				// The trace and the violation are recorded on the symmetry
				// quotient; concretize them back into the original
				// program's thread names. Later violations (with
				// KeepAllViolations) stay canonical: each names a thread of
				// the same class, which is truthful by symmetry.
				viol = concretizeViolation(viol, red.concretize(verdict.Trace))
			}
		}
		verdict.Violations = append(verdict.Violations, viol)
		return !opts.KeepAllViolations
	}

	every := int64(opts.ProgressEvery)
	if every <= 0 {
		every = 4096
	}
	expanded := int64(0)
	next := int32(0)
	// requeue holds already-expanded states whose sleep mask strictly
	// shrank on a revisit: they must be re-expanded so edges the larger
	// mask elided get explored (checks and counters are not repeated).
	var requeue []int32
	for {
		var item explore.QItem[[]byte]
		requeued := false
		if opts.HashCompact {
			var ok bool
			if item, ok = queue.Pop(); !ok {
				break
			}
		} else if int(next) < store.Len() {
			item = explore.QItem[[]byte]{ID: next, St: store.KeyBytes(next)}
			next++
		} else if n := len(requeue); n > 0 {
			id := requeue[n-1]
			requeue = requeue[:n-1]
			item = explore.QItem[[]byte]{ID: id, St: store.KeyBytes(id)}
			requeued = true
		} else {
			break
		}
		if opts.MaxStates > 0 && store.Len() > opts.MaxStates {
			return nil, fmt.Errorf("%w (%d states)", ErrStateBound, store.Len())
		}
		if opts.Ctx != nil && expanded&ctxPollMask == 0 && opts.Ctx.Err() != nil {
			return nil, canceled(opts.Ctx)
		}
		expanded++
		if opts.Progress != nil && expanded%every == 0 {
			opts.Progress(Progress{States: store.Len(), Expanded: expanded})
		}
		itemKey := item.St
		n := v.p.DecodeState(itemKey, ws.cur)
		v.mon.Decode(itemKey[n:], &ws.curMS)
		ops := ws.ops
		v.p.OpsInto(ops, ws.cur)

		if !requeued {
			// Theorem 5.3 conditions for every thread's pending operation.
			for t := range ops {
				if viol := v.mon.CheckOp(&ws.curMS, lang.Tid(t), ops[t]); viol != nil {
					if report(item.ID, viol) {
						verdict.States = store.Len()
						return finish()
					}
				}
			}
			// Definition 6.1 racy-state condition (§6).
			if v.hasNA {
				if viol := v.mon.CheckRace(ops); viol != nil {
					if report(item.ID, viol) {
						verdict.States = store.Len()
						return finish()
					}
				}
			}
		}

		// Successors: every SC-enabled thread action — or, with Reduce, a
		// single ample representative when one qualifies, minus any edges
		// the state's sleep set proves redundant (ample states ignore the
		// sleep set: the one representative is always expanded).
		ampleT := -1
		if red != nil {
			ampleT = red.ample(ws.curMS.M, ws.cur, ws.nxt, ops)
			if ampleT >= 0 && !requeued {
				ws.cAmple++
			}
		}
		var sleepZ, expandedSoFar uint64
		if useSleep {
			sleepZ = store.Sleep(item.ID)
		}
		for t := range ops {
			op := ops[t]
			if op.Kind == prog.OpNone {
				continue
			}
			if ampleT >= 0 {
				if t != ampleT {
					continue
				}
			} else if useSleep && sleepZ>>t&1 != 0 {
				if !requeued {
					ws.cSleep++
				}
				continue
			}
			label, enabled := prog.SCLabel(op, ws.curMS.M[op.Loc], program.ValCount)
			if !enabled {
				continue // blocked wait/BCAS
			}
			afail := v.p.Threads[t].ApplyInto(ws.cur.Threads[t], label, &ws.nxt.Threads[t])
			step := explore.Step{Tid: lang.Tid(t), Lab: label}
			if afail != nil {
				verdict.Robust = false
				verdict.Trace = append(store.Trace(item.ID), step)
				if red != nil && red.symm() {
					red.concretize(verdict.Trace)
					af := *afail
					af.Tid = verdict.Trace[len(verdict.Trace)-1].Tid
					afail = &af
				}
				verdict.AssertFail = afail
				verdict.States = store.Len()
				return finish()
			}
			var cz uint64
			if useSleep {
				cz = childSleep(ops, t, sleepZ|expandedSoFar)
			}
			expandedSoFar |= uint64(1) << t
			savedTS := ws.cur.Threads[t]
			ws.cur.Threads[t] = ws.nxt.Threads[t]
			ws.nextMS.CopyFrom(&ws.curMS)
			v.mon.Step(ws.nextMS, lang.Tid(t), label)
			var key []byte
			if red != nil && red.symm() && !red.canonPerm(ws.cur, ws.nextMS, ws.perm) {
				if !requeued {
					ws.cSym++
				}
				step.Perm = packPerm(ws.perm)
				cz = permuteMask(cz, ws.perm)
				ws.keyBuf = ws.keyBuf[:0]
				ws.keyBuf = v.p.EncodeStatePerm(ws.keyBuf, ws.cur, ws.perm)
				ws.keyBuf = v.mon.EncodePerm(ws.keyBuf, ws.nextMS, ws.perm)
				key = ws.keyBuf
			} else {
				key = ws.encode(v, ws.cur, ws.nextMS)
			}
			ws.cur.Threads[t] = savedTS
			if useSleep {
				if id, _, shrunk := store.AddBytesSleep(key, item.ID, step, cz); shrunk && id < next {
					requeue = append(requeue, id)
				}
			} else {
				id, isNew := store.AddBytes(key, item.ID, step)
				if isNew && opts.HashCompact {
					queue.Push(id, ws.pushPayload(true, key))
				}
			}
		}
		if opts.HashCompact {
			ws.recycle(item.St)
		}
	}
	verdict.States = store.Len()
	return finish()
}

// FormatTrace renders a verdict's counterexample trace with the program's
// location names, one step per line.
func FormatTrace(program *lang.Program, trace []explore.Step) string {
	var b strings.Builder
	for i, s := range trace {
		if s.Internal != explore.IntNone {
			fmt.Fprintf(&b, "%3d: %s\n", i+1, s.Internal)
			continue
		}
		fmt.Fprintf(&b, "%3d: %s: %s\n", i+1, program.Threads[s.Tid].Name, program.FmtLabel(s.Lab))
	}
	return b.String()
}

// Explain renders a human-readable description of a verdict.
func Explain(program *lang.Program, v *Verdict) string {
	var b strings.Builder
	if v.Analysis != nil {
		b.WriteString(v.Analysis.Describe(program))
	}
	if v.Certificate {
		fmt.Fprintf(&b, "%s: ROBUST against RA by static certificate (0 states explored, %v)\n",
			program.Name, v.Elapsed)
		return b.String()
	}
	if v.Robust {
		fmt.Fprintf(&b, "%s: ROBUST against RA (%d states, %v)\n", program.Name, v.States, v.Elapsed)
		return b.String()
	}
	fmt.Fprintf(&b, "%s: NOT robust against RA (%d states, %v)\n", program.Name, v.States, v.Elapsed)
	if v.AssertFail != nil {
		t := &program.Threads[v.AssertFail.Tid]
		fmt.Fprintf(&b, "  assertion failed under SC: thread %s pc %d\n", t.Name, v.AssertFail.PC)
	}
	for _, viol := range v.Violations {
		t := &program.Threads[viol.Tid]
		switch viol.Kind {
		case scm.NARace:
			t2 := &program.Threads[viol.Tid2]
			fmt.Fprintf(&b, "  %s: %s@pc%d races with %s@pc%d on %s\n",
				viol.Kind, t.Name, viol.PC, t2.Name, viol.PC2, program.LocName(viol.Loc))
		default:
			fmt.Fprintf(&b, "  %s: thread %s at pc %d (%s), location %s\n",
				viol.Kind, t.Name, viol.PC, program.FmtInst(t, &t.Insts[viol.PC]), program.LocName(viol.Loc))
		}
	}
	if len(v.Trace) > 0 {
		b.WriteString("  SC run to the violating state:\n")
		for _, line := range strings.Split(strings.TrimRight(FormatTrace(program, v.Trace), "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}
