// Package core is the heart of the reproduction: the Rocker verifier. It
// decides execution-graph robustness against the release/acquire memory
// model by exhaustively exploring the program composed with the
// instrumented SC memory SCM of §5 and evaluating the Theorem 5.3
// robustness conditions (plus the §6 racy-state condition and any user
// assertions) at every reachable state — the reduction the paper proves
// sound and precise (Theorems 5.1, 5.3 and 6.2).
//
// By Proposition 4.10, a Robust verdict also establishes state robustness:
// every program state reachable under RA is reachable under SC, so the
// program may be verified with SC-only techniques. A NonRobust verdict
// comes with a counterexample trace: an SC run to a state from which an RA
// execution graph can diverge from all SC ones.
package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/prog"
	"repro/internal/scm"
)

// Model selects the weak memory model robustness is checked against.
type Model uint8

// Supported models.
const (
	// ModelRA is the paper's release/acquire model (the default).
	ModelRA Model = iota
	// ModelSRA is the strong release/acquire model of Lahav, Giannarakis
	// & Vafeiadis (POPL 2016) — the §9 extension direction. SRA places
	// writes mo-maximally, so only stale reads can break robustness;
	// e.g. 2+2W is robust against SRA but not against RA (Example 3.4).
	ModelSRA
)

// Options configures verification.
type Options struct {
	// Model selects the weak model (RA by default, or SRA).
	Model Model
	// AbstractVals enables the §5.1 abstract value management (critical
	// values only, with CV/CW summaries). It is the default mode; turning
	// it off tracks every value exactly (the ablation of §5.1).
	AbstractVals bool
	// MaxStates bounds the explored state count; 0 means unbounded.
	// Exceeding the bound yields an error, never a wrong verdict.
	MaxStates int
	// KeepAllViolations collects every violating state instead of
	// stopping at the first (useful for fence inference).
	KeepAllViolations bool
	// HashCompact stores 128-bit hashes of states instead of full state
	// encodings in the visited set (Spin's hashcompact mode). It cuts
	// memory roughly 4× on large runs; a hash collision could in
	// principle prune a state (probability < n²·2⁻¹²⁸ for n states —
	// negligible, but the exact mode is the default and is used by all
	// correctness tests).
	HashCompact bool
}

// DefaultOptions returns the standard configuration (abstract values on,
// no state bound, exact visited set).
func DefaultOptions() Options { return Options{AbstractVals: true} }

// Verdict is the result of a robustness verification run.
type Verdict struct {
	// Robust reports execution-graph robustness against RA (and
	// race-freedom on non-atomic locations, and that no assertion fails
	// under SC).
	Robust bool
	// Violations holds the detected robustness violations (at most one
	// unless Options.KeepAllViolations).
	Violations []*scm.Violation
	// AssertFail reports a failed user assertion, if any.
	AssertFail *prog.AssertFailure
	// Trace is an SC run (sequence of thread-labelled memory actions)
	// leading to the first violating state.
	Trace []explore.Step
	// States is the number of distinct ⟨program, SCM⟩ states explored.
	States int
	// Elapsed is the wall-clock verification time.
	Elapsed time.Duration
	// MetadataBits is the size of the SCM instrumentation per §5.1.
	MetadataBits int
}

// ErrStateBound is returned when MaxStates is exceeded.
var ErrStateBound = fmt.Errorf("core: state bound exceeded")

// visited is the deduplicating state store: either exact (full encodings)
// or hash-compacted (two independent 64-bit FNV-style hashes).
type visited struct {
	exact  map[string]int32
	hashed map[[2]uint64]int32
	parent []int32
	step   []explore.Step
}

func newVisited(hashCompact bool) *visited {
	v := &visited{}
	if hashCompact {
		v.hashed = make(map[[2]uint64]int32)
	} else {
		v.exact = make(map[string]int32)
	}
	return v
}

func hash128(b []byte) [2]uint64 {
	const (
		off1 = 14695981039346656037
		pr1  = 1099511628211
		off2 = 0x9e3779b97f4a7c15
		pr2  = 0xff51afd7ed558ccd
	)
	h1, h2 := uint64(off1), uint64(off2)
	for _, c := range b {
		h1 = (h1 ^ uint64(c)) * pr1
		h2 = (h2 ^ uint64(c)) * pr2
	}
	return [2]uint64{h1, h2}
}

// add interns the encoding, returning (id, isNew).
func (v *visited) add(key []byte, parent int32, step explore.Step) (int32, bool) {
	if v.exact != nil {
		if id, ok := v.exact[string(key)]; ok {
			return id, false
		}
		id := int32(len(v.parent))
		v.exact[string(key)] = id
		v.parent = append(v.parent, parent)
		v.step = append(v.step, step)
		return id, true
	}
	h := hash128(key)
	if id, ok := v.hashed[h]; ok {
		return id, false
	}
	id := int32(len(v.parent))
	v.hashed[h] = id
	v.parent = append(v.parent, parent)
	v.step = append(v.step, step)
	return id, true
}

func (v *visited) len() int { return len(v.parent) }

func (v *visited) trace(id int32) []explore.Step {
	var rev []explore.Step
	for id >= 0 && v.parent[id] >= 0 {
		rev = append(rev, v.step[id])
		id = v.parent[id]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Verify decides execution-graph robustness of the program against RA.
func Verify(program *lang.Program, opts Options) (*Verdict, error) {
	start := time.Now()
	if err := program.Validate(); err != nil {
		return nil, err
	}
	p := prog.New(program)
	var crit []uint64
	if opts.AbstractVals {
		crit = prog.CriticalVals(program)
	} else {
		crit = prog.FullCriticalVals(program)
	}
	na := make([]bool, len(program.Locs))
	hasNA := false
	for i, li := range program.Locs {
		na[i] = li.NA
		hasNA = hasNA || li.NA
	}
	mon := scm.NewMonitor(program.NumThreads(), program.NumLocs(), program.ValCount, crit, na)
	mon.SRA = opts.Model == ModelSRA

	verdict := &Verdict{Robust: true, MetadataBits: mon.Bits()}
	finish := func() (*Verdict, error) {
		verdict.Elapsed = time.Since(start)
		return verdict, nil
	}
	ps0, fail := p.InitState()
	if fail != nil {
		verdict.Robust = false
		verdict.AssertFail = fail
		return finish()
	}
	ms0 := mon.Init()

	store := newVisited(opts.HashCompact)
	// The frontier holds packed state encodings (program state followed by
	// SCM state) plus the store id; states are decoded on expansion. This
	// keeps the BFS frontier at tens of bytes per state.
	var queue explore.Queue[[]byte]
	var keyBuf []byte
	encode := func(ps prog.State, ms *scm.State) []byte {
		keyBuf = keyBuf[:0]
		keyBuf = p.EncodeState(keyBuf, ps)
		keyBuf = mon.Encode(keyBuf, ms)
		return keyBuf
	}
	root, _ := store.add(encode(ps0, ms0), -1, explore.Step{})
	queue.Push(root, append([]byte(nil), keyBuf...))

	report := func(id int32, v *scm.Violation) bool {
		verdict.Robust = false
		verdict.Violations = append(verdict.Violations, v)
		if verdict.Trace == nil {
			verdict.Trace = store.trace(id)
		}
		return !opts.KeepAllViolations
	}

	// Reusable decode/expansion buffers.
	cur := prog.State{Threads: make([]prog.ThreadState, len(p.Threads))}
	for i := range p.Threads {
		cur.Threads[i].Regs = make([]lang.Val, program.Threads[i].NumRegs)
	}
	var curMS scm.State
	nextMS := mon.Init()

	for {
		item, ok := queue.Pop()
		if !ok {
			break
		}
		if opts.MaxStates > 0 && store.len() > opts.MaxStates {
			return nil, fmt.Errorf("%w (%d states)", ErrStateBound, store.len())
		}
		n := p.DecodeState(item.St, cur)
		mon.Decode(item.St[n:], &curMS)
		ops := p.Ops(cur)

		// Theorem 5.3 conditions for every thread's pending operation.
		for t := range ops {
			if v := mon.CheckOp(&curMS, lang.Tid(t), ops[t]); v != nil {
				if report(item.ID, v) {
					verdict.States = store.len()
					return finish()
				}
			}
		}
		// Definition 6.1 racy-state condition (§6).
		if hasNA {
			if v := mon.CheckRace(ops); v != nil {
				if report(item.ID, v) {
					verdict.States = store.len()
					return finish()
				}
			}
		}

		// Successors: every SC-enabled thread action.
		for t := range ops {
			op := ops[t]
			if op.Kind == prog.OpNone {
				continue
			}
			label, enabled := prog.SCLabel(op, curMS.M[op.Loc], program.ValCount)
			if !enabled {
				continue // blocked wait/BCAS
			}
			nextTS, afail := p.Threads[t].Apply(cur.Threads[t], label)
			if afail != nil {
				verdict.Robust = false
				verdict.AssertFail = afail
				verdict.Trace = append(store.trace(item.ID), explore.Step{Tid: lang.Tid(t), Lab: label})
				verdict.States = store.len()
				return finish()
			}
			savedTS := cur.Threads[t]
			cur.Threads[t] = nextTS
			nextMS.CopyFrom(&curMS)
			mon.Step(nextMS, lang.Tid(t), label)
			key := encode(cur, nextMS)
			cur.Threads[t] = savedTS
			id, isNew := store.add(key, item.ID, explore.Step{Tid: lang.Tid(t), Lab: label})
			if isNew {
				queue.Push(id, append([]byte(nil), key...))
			}
		}
	}
	verdict.States = store.len()
	return finish()
}

// FormatTrace renders a verdict's counterexample trace with the program's
// location names, one step per line.
func FormatTrace(program *lang.Program, trace []explore.Step) string {
	var b strings.Builder
	for i, s := range trace {
		if s.Internal != "" {
			fmt.Fprintf(&b, "%3d: %s\n", i+1, s.Internal)
			continue
		}
		fmt.Fprintf(&b, "%3d: %s: %s\n", i+1, program.Threads[s.Tid].Name, program.FmtLabel(s.Lab))
	}
	return b.String()
}

// Explain renders a human-readable description of a verdict.
func Explain(program *lang.Program, v *Verdict) string {
	var b strings.Builder
	if v.Robust {
		fmt.Fprintf(&b, "%s: ROBUST against RA (%d states, %v)\n", program.Name, v.States, v.Elapsed)
		return b.String()
	}
	fmt.Fprintf(&b, "%s: NOT robust against RA (%d states, %v)\n", program.Name, v.States, v.Elapsed)
	if v.AssertFail != nil {
		t := &program.Threads[v.AssertFail.Tid]
		fmt.Fprintf(&b, "  assertion failed under SC: thread %s pc %d\n", t.Name, v.AssertFail.PC)
	}
	for _, viol := range v.Violations {
		t := &program.Threads[viol.Tid]
		switch viol.Kind {
		case scm.NARace:
			t2 := &program.Threads[viol.Tid2]
			fmt.Fprintf(&b, "  %s: %s@pc%d races with %s@pc%d on %s\n",
				viol.Kind, t.Name, viol.PC, t2.Name, viol.PC2, program.LocName(viol.Loc))
		default:
			fmt.Fprintf(&b, "  %s: thread %s at pc %d (%s), location %s\n",
				viol.Kind, t.Name, viol.PC, program.FmtInst(t, &t.Insts[viol.PC]), program.LocName(viol.Loc))
		}
	}
	if len(v.Trace) > 0 {
		b.WriteString("  SC run to the violating state:\n")
		for _, line := range strings.Split(strings.TrimRight(FormatTrace(program, v.Trace), "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}
