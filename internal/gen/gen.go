// Package gen is a seeded, deterministic generator of small well-formed
// .lit programs, built for the differential fuzzing harness (cmd/fuzz and
// internal/diffcheck): every program it emits parses, validates, and has a
// state space small enough to explore through both verdict routes (the
// §5 SCM reduction and the §3 RA timestamp machine) in milliseconds.
//
// Programs are generated as a small AST owned by this package and rendered
// to source text, rather than emitted directly as text or as lang.Program
// values, for one reason: the same program must be renderable under
// different identifier schemes (renamed registers, locations, labels and
// threads, and a permuted thread order) so the harness can assert that
// prog.CanonicalDigest is invariant under representation-only changes.
//
// Determinism contract: Source(i) and Variant(i, v) depend only on the
// generator's Config (including Seed) and the arguments — never on
// iteration order, global state, or time. A finding is reproduced by its
// (seed, index) pair alone; see EXPERIMENTS.md "Differential fuzzing".
package gen

import (
	"fmt"
	"strings"
)

// Config tunes the generator. The zero value selects the defaults used by
// cmd/fuzz: 2-4 threads, up to 7 statements per thread, arrays, fences,
// loops, and occasional non-atomic locations and asserts.
type Config struct {
	// Seed is the base seed; program i draws from a stream derived from
	// (Seed, i) only.
	Seed uint64
	// MaxThreads bounds the thread count (2..MaxThreads; default 4,
	// clamped to [2,6]).
	MaxThreads int
	// MaxStmts bounds the per-thread statement count before loop jumps
	// are added (default 7, clamped to [1,16]).
	MaxStmts int
	// NoExtras disables the features that gate cross-route verdict
	// comparison (non-atomic locations and asserts); the round-trip and
	// engine-parity checks still cover them when enabled.
	NoExtras bool
}

func (c Config) withDefaults() Config {
	if c.MaxThreads < 2 {
		c.MaxThreads = 4
	}
	if c.MaxThreads > 6 {
		c.MaxThreads = 6
	}
	if c.MaxStmts < 1 {
		c.MaxStmts = 7
	}
	if c.MaxStmts > 16 {
		c.MaxStmts = 16
	}
	return c
}

// Generator produces programs. Safe for concurrent use: all state is
// immutable configuration.
type Generator struct {
	cfg Config
}

// New returns a generator for the given configuration.
func New(cfg Config) *Generator { return &Generator{cfg: cfg.withDefaults()} }

// Source returns the canonical rendering of program i.
func (g *Generator) Source(i int) string {
	p := g.Program(i)
	return p.Render()
}

// Variant returns program i rendered under a renamed identifier scheme and
// a permuted thread order derived from variant seed v (v = 0 yields a
// renaming but keeps the canonical thread order). The result parses to a
// program whose CanonicalDigest equals that of Source(i).
func (g *Generator) Variant(i int, v uint64) string {
	p := g.Program(i)
	return p.renderWith(variantScheme(v), permutation(len(p.Threads), v))
}

// rng is a splitmix64 stream.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// pct reports true with probability p/100.
func (r *rng) pct(p int) bool { return r.intn(100) < p }

// StmtKind enumerates generated statement forms.
type StmtKind uint8

// Statement kinds. Memory operands are a scalar location or an array cell
// depending on Stmt.Arr.
const (
	SAssign StmtKind = iota // r := e
	SGoto                   // if e goto L / goto L (E nil)
	SWrite                  // x := e
	SRead                   // r := x
	SFADD                   // r := FADD(x, e)
	SXCHG                   // r := XCHG(x, e)
	SCAS                    // r := CAS(x, e, e2)
	SWait                   // wait(x = e)
	SBCAS                   // BCAS(x, e, e2)
	SFence                  // fence
	SAssert                 // assert e
)

// Expr is a tiny expression tree. Leaves are constants (L == nil,
// R == nil, Op == "") or registers (Op == "r"); inner nodes carry a source
// operator in Op ("+", "=", "&&", "!", ...).
type Expr struct {
	Op   string // "", "r", "!", or a binary operator
	Val  int    // constant value ("")
	Reg  int    // register index ("r")
	L, R *Expr
}

func con(v int) *Expr                 { return &Expr{Val: v} }
func regE(r int) *Expr                { return &Expr{Op: "r", Reg: r} }
func bin(op string, l, r *Expr) *Expr { return &Expr{Op: op, L: l, R: r} }

// Stmt is one generated statement.
type Stmt struct {
	Kind   StmtKind
	Reg    int   // destination register
	Loc    int   // scalar index (Arr false) or array index (Arr true)
	Arr    bool  // memory operand is an array cell
	Idx    *Expr // array cell index
	E, E2  *Expr // operands (E2: CAS/BCAS replacement)
	Target int   // SGoto: statement index (len(Stmts) = thread end)
}

// Thread is one generated thread.
type Thread struct {
	NumRegs int
	Stmts   []Stmt
}

// Prog is a generated program.
type Prog struct {
	Vals    int
	Scalars []bool // per-scalar NA flag
	Arrays  []Array
	Threads []Thread
}

// Array is a generated array declaration.
type Array struct {
	Size int
	NA   bool
}

// HasExtras reports whether the program uses features that gate the
// RA-machine vs SCM verdict comparison: non-atomic locations (the
// state-robustness route does not model §6 race-UB) or asserts (which turn
// the SCM verdict non-robust for a reason invisible to state robustness).
func (p *Prog) HasExtras() bool {
	for _, na := range p.Scalars {
		if na {
			return true
		}
	}
	for _, a := range p.Arrays {
		if a.NA {
			return true
		}
	}
	for ti := range p.Threads {
		for si := range p.Threads[ti].Stmts {
			if p.Threads[ti].Stmts[si].Kind == SAssert {
				return true
			}
		}
	}
	return false
}

// Program generates program i. The derivation mixes the config seed and
// the index through one splitmix64 step so that neighbouring indices give
// unrelated streams.
func (g *Generator) Program(i int) Prog {
	r := &rng{s: (g.cfg.Seed ^ 0x5851f42d4c957f2d) + uint64(i)*0x2545f4914f6cdd1d}
	r.next()

	p := Prog{Vals: 2 + r.intn(3)} // 2..4
	nscal := 1 + r.intn(3)         // 1..3 scalars
	extras := !g.cfg.NoExtras
	for s := 0; s < nscal; s++ {
		p.Scalars = append(p.Scalars, extras && r.pct(6))
	}
	if r.pct(35) {
		p.Arrays = append(p.Arrays, Array{Size: 2 + r.intn(2), NA: extras && r.pct(5)})
	}

	nthreads := 2 + r.intn(g.cfg.MaxThreads-1) // 2..MaxThreads
	// Keep the product state space small: more threads, fewer statements.
	maxStmts := g.cfg.MaxStmts
	if nthreads >= 4 {
		maxStmts = min(maxStmts, 4)
	} else if nthreads == 3 {
		maxStmts = min(maxStmts, 5)
	}
	for t := 0; t < nthreads; t++ {
		p.Threads = append(p.Threads, g.thread(r, &p, maxStmts, extras))
	}
	return p
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// thread generates one thread: a straight-line body with occasional
// forward skips, then possibly a trailing backward jump forming a loop.
func (g *Generator) thread(r *rng, p *Prog, maxStmts int, extras bool) Thread {
	t := Thread{NumRegs: 1 + r.intn(3)}
	n := 1 + r.intn(maxStmts)
	type pending struct{ at int } // forward jumps to resolve
	var fwd []pending
	for i := 0; i < n; i++ {
		if r.pct(8) {
			// Constant-feeding synchronization: r := c followed by a wait
			// or BCAS whose comparand is that register. Semantically the
			// same as a literal comparand, but it exercises the constant
			// propagation in internal/analysis — the comparand's critical
			// set must sharpen to the single fed constant.
			reg := r.intn(t.NumRegs)
			t.Stmts = append(t.Stmts, Stmt{Kind: SAssign, Reg: reg, E: con(r.intn(p.Vals))})
			loc, arr, idx := g.memOperand(r, p, &t, true)
			if r.pct(60) {
				t.Stmts = append(t.Stmts, Stmt{Kind: SWait, Loc: loc, Arr: arr, Idx: idx, E: regE(reg)})
			} else {
				t.Stmts = append(t.Stmts, Stmt{Kind: SBCAS, Loc: loc, Arr: arr, Idx: idx,
					E: regE(reg), E2: g.expr(r, p, &t, 0)})
			}
			continue
		}
		s := g.stmt(r, p, &t, extras)
		t.Stmts = append(t.Stmts, s)
		// Occasional forward conditional skip over the rest of the body.
		if len(fwd) == 0 && i < n-1 && r.pct(10) {
			fwd = append(fwd, pending{at: len(t.Stmts)})
			t.Stmts = append(t.Stmts, Stmt{Kind: SGoto, E: g.expr(r, p, &t, 1), Target: -1})
		}
	}
	// Backward jump: a conditional retry loop over a suffix of the body.
	if r.pct(40) {
		back := r.intn(len(t.Stmts) + 1)
		var cond *Expr
		if r.pct(80) {
			cond = g.expr(r, p, &t, 1) // conditional: terminates state-finitely
		}
		t.Stmts = append(t.Stmts, Stmt{Kind: SGoto, E: cond, Target: back})
	}
	for _, f := range fwd {
		// Resolve to a random point strictly after the jump (possibly the
		// thread end).
		lo := f.at + 1
		t.Stmts[f.at].Target = lo + r.intn(len(t.Stmts)-lo+1)
	}
	return t
}

// memOperand picks a memory operand: (scalar loc, false, nil) or
// (array, true, index). rmw restricts the choice to atomic locations.
func (g *Generator) memOperand(r *rng, p *Prog, t *Thread, rmw bool) (int, bool, *Expr) {
	if len(p.Arrays) > 0 && r.pct(30) {
		ai := r.intn(len(p.Arrays))
		if !(rmw && p.Arrays[ai].NA) {
			var idx *Expr
			if r.pct(50) {
				idx = regE(r.intn(t.NumRegs))
			} else {
				idx = con(r.intn(p.Vals))
			}
			return ai, true, idx
		}
	}
	for {
		s := r.intn(len(p.Scalars))
		if !(rmw && p.Scalars[s]) {
			return s, false, nil
		}
		// All-NA scalar sets are possible only with extras; fall back to
		// scalar 0 made atomic by construction odds — retry is bounded in
		// practice, but guard hard anyway.
		allNA := true
		for _, na := range p.Scalars {
			if !na {
				allNA = false
				break
			}
		}
		if allNA {
			p.Scalars[0] = false
			return 0, false, nil
		}
	}
}

// expr generates an expression of the given depth budget.
func (g *Generator) expr(r *rng, p *Prog, t *Thread, depth int) *Expr {
	if depth <= 0 || r.pct(45) {
		if r.pct(50) {
			return con(r.intn(p.Vals))
		}
		return regE(r.intn(t.NumRegs))
	}
	if r.pct(8) {
		return &Expr{Op: "!", L: g.expr(r, p, t, depth-1)}
	}
	ops := []string{"+", "-", "*", "%", "=", "!=", "<", "<=", ">", ">=", "&&", "||"}
	op := ops[r.intn(len(ops))]
	return bin(op, g.expr(r, p, t, depth-1), g.expr(r, p, t, depth-1))
}

// stmt generates one non-control statement.
func (g *Generator) stmt(r *rng, p *Prog, t *Thread, extras bool) Stmt {
	for {
		switch k := r.intn(100); {
		case k < 26: // write
			loc, arr, idx := g.memOperand(r, p, t, false)
			return Stmt{Kind: SWrite, Loc: loc, Arr: arr, Idx: idx, E: g.expr(r, p, t, 1)}
		case k < 48: // read
			loc, arr, idx := g.memOperand(r, p, t, false)
			return Stmt{Kind: SRead, Reg: r.intn(t.NumRegs), Loc: loc, Arr: arr, Idx: idx}
		case k < 58: // local assign
			return Stmt{Kind: SAssign, Reg: r.intn(t.NumRegs), E: g.expr(r, p, t, 2)}
		case k < 68: // CAS
			loc, arr, idx := g.memOperand(r, p, t, true)
			return Stmt{Kind: SCAS, Reg: r.intn(t.NumRegs), Loc: loc, Arr: arr, Idx: idx,
				E: g.expr(r, p, t, 0), E2: g.expr(r, p, t, 0)}
		case k < 77: // FADD
			loc, arr, idx := g.memOperand(r, p, t, true)
			return Stmt{Kind: SFADD, Reg: r.intn(t.NumRegs), Loc: loc, Arr: arr, Idx: idx,
				E: g.expr(r, p, t, 0)}
		case k < 83: // XCHG
			loc, arr, idx := g.memOperand(r, p, t, true)
			return Stmt{Kind: SXCHG, Reg: r.intn(t.NumRegs), Loc: loc, Arr: arr, Idx: idx,
				E: g.expr(r, p, t, 0)}
		case k < 90: // fence
			return Stmt{Kind: SFence}
		case k < 94: // wait
			loc, arr, idx := g.memOperand(r, p, t, true)
			return Stmt{Kind: SWait, Loc: loc, Arr: arr, Idx: idx, E: g.expr(r, p, t, 0)}
		case k < 97: // BCAS
			loc, arr, idx := g.memOperand(r, p, t, true)
			return Stmt{Kind: SBCAS, Loc: loc, Arr: arr, Idx: idx,
				E: g.expr(r, p, t, 0), E2: g.expr(r, p, t, 0)}
		default: // assert (extras only; otherwise retry)
			if extras && r.pct(30) {
				return Stmt{Kind: SAssert, E: g.expr(r, p, t, 1)}
			}
		}
	}
}

// scheme names every identifier class during rendering.
type scheme struct {
	prog   string
	scalar func(i int) string
	array  func(i int) string
	thread func(i int) string
	reg    func(t, i int) string
	label  func(t, at int) string
}

func canonicalScheme() scheme {
	return scheme{
		prog:   "fuzz",
		scalar: func(i int) string { return fmt.Sprintf("x%d", i) },
		array:  func(i int) string { return fmt.Sprintf("arr%d", i) },
		thread: func(i int) string { return fmt.Sprintf("t%d", i) },
		reg:    func(t, i int) string { return fmt.Sprintf("r%d", i) },
		label:  func(t, at int) string { return fmt.Sprintf("L%d", at) },
	}
}

// variantScheme derives an alternative naming from seed v. Names stay
// globally unambiguous (distinct prefixes per class, indices appended) but
// share no text with the canonical ones; registers and labels also get
// per-thread prefixes, exercising the parser's per-thread scoping.
func variantScheme(v uint64) scheme {
	r := rng{s: v ^ 0xa0761d6478bd642f}
	pick := func(opts ...string) string { return opts[r.intn(len(opts))] }
	sp := pick("loc_", "cell", "mem_")
	ap := pick("buf", "ring_", "slots")
	tp := pick("worker", "proc_", "th")
	rp := pick("v", "tmp", "acc")
	lp := pick("back", "again_", "jmp")
	return scheme{
		prog:   "renamed-variant",
		scalar: func(i int) string { return fmt.Sprintf("%s%d", sp, i) },
		array:  func(i int) string { return fmt.Sprintf("%s%d", ap, i) },
		thread: func(i int) string { return fmt.Sprintf("%s%d", tp, i) },
		reg:    func(t, i int) string { return fmt.Sprintf("%s%d_%d", rp, t, i) },
		label:  func(t, at int) string { return fmt.Sprintf("%s%d_%d", lp, t, at) },
	}
}

// permutation derives a permutation of [0,n) from seed v.
func permutation(n int, v uint64) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	r := rng{s: v ^ 0xe7037ed1a0b428db}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// Render returns the canonical source text.
func (p *Prog) Render() string {
	perm := make([]int, len(p.Threads))
	for i := range perm {
		perm[i] = i
	}
	return p.renderWith(canonicalScheme(), perm)
}

func (p *Prog) renderWith(sc scheme, perm []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", sc.prog)
	fmt.Fprintf(&b, "vals %d\n", p.Vals)
	for i, na := range p.Scalars {
		if na {
			fmt.Fprintf(&b, "na %s\n", sc.scalar(i))
		} else {
			fmt.Fprintf(&b, "locs %s\n", sc.scalar(i))
		}
	}
	for i, a := range p.Arrays {
		if a.NA {
			fmt.Fprintf(&b, "na array %s %d\n", sc.array(i), a.Size)
		} else {
			fmt.Fprintf(&b, "array %s %d\n", sc.array(i), a.Size)
		}
	}
	for _, ti := range perm {
		p.renderThread(&b, sc, ti)
	}
	return b.String()
}

func (p *Prog) renderThread(b *strings.Builder, sc scheme, ti int) {
	t := &p.Threads[ti]
	fmt.Fprintf(b, "\nthread %s\n", sc.thread(ti))
	targets := map[int]bool{}
	for i := range t.Stmts {
		if t.Stmts[i].Kind == SGoto {
			targets[t.Stmts[i].Target] = true
		}
	}
	var expr func(e *Expr) string
	expr = func(e *Expr) string {
		switch e.Op {
		case "":
			return fmt.Sprintf("%d", e.Val)
		case "r":
			return sc.reg(ti, e.Reg)
		case "!":
			return "!(" + expr(e.L) + ")"
		}
		return "(" + expr(e.L) + " " + e.Op + " " + expr(e.R) + ")"
	}
	mem := func(s *Stmt) string {
		if s.Arr {
			return fmt.Sprintf("%s[%s]", sc.array(s.Loc), expr(s.Idx))
		}
		return sc.scalar(s.Loc)
	}
	for i := range t.Stmts {
		if targets[i] {
			fmt.Fprintf(b, "%s:\n", sc.label(ti, i))
		}
		s := &t.Stmts[i]
		b.WriteString("  ")
		switch s.Kind {
		case SAssign:
			fmt.Fprintf(b, "%s := %s", sc.reg(ti, s.Reg), expr(s.E))
		case SGoto:
			if s.E == nil {
				fmt.Fprintf(b, "goto %s", sc.label(ti, s.Target))
			} else {
				fmt.Fprintf(b, "if %s goto %s", expr(s.E), sc.label(ti, s.Target))
			}
		case SWrite:
			fmt.Fprintf(b, "%s := %s", mem(s), expr(s.E))
		case SRead:
			fmt.Fprintf(b, "%s := %s", sc.reg(ti, s.Reg), mem(s))
		case SFADD:
			fmt.Fprintf(b, "%s := FADD(%s, %s)", sc.reg(ti, s.Reg), mem(s), expr(s.E))
		case SXCHG:
			fmt.Fprintf(b, "%s := XCHG(%s, %s)", sc.reg(ti, s.Reg), mem(s), expr(s.E))
		case SCAS:
			fmt.Fprintf(b, "%s := CAS(%s, %s, %s)", sc.reg(ti, s.Reg), mem(s), expr(s.E), expr(s.E2))
		case SWait:
			fmt.Fprintf(b, "wait(%s = %s)", mem(s), expr(s.E))
		case SBCAS:
			fmt.Fprintf(b, "BCAS(%s, %s, %s)", mem(s), expr(s.E), expr(s.E2))
		case SFence:
			b.WriteString("fence")
		case SAssert:
			fmt.Fprintf(b, "assert %s", expr(s.E))
		}
		b.WriteByte('\n')
	}
	if targets[len(t.Stmts)] {
		fmt.Fprintf(b, "%s:\n", sc.label(ti, len(t.Stmts)))
	}
	b.WriteString("end\n")
}
