package gen

import (
	"strings"
	"testing"

	"repro/internal/parser"
)

// TestGeneratedProgramsParse checks that every generated program (and its
// renamed variant) parses and validates.
func TestGeneratedProgramsParse(t *testing.T) {
	g := New(Config{Seed: 7})
	for i := 0; i < 400; i++ {
		src := g.Source(i)
		if _, err := parser.Parse(src); err != nil {
			t.Fatalf("program %d does not parse: %v\n%s", i, err, src)
		}
		vsrc := g.Variant(i, uint64(i)*3+1)
		if _, err := parser.Parse(vsrc); err != nil {
			t.Fatalf("variant of program %d does not parse: %v\n%s", i, err, vsrc)
		}
	}
}

// TestDeterminism checks the (seed, index) reproducibility contract.
func TestDeterminism(t *testing.T) {
	a, b := New(Config{Seed: 42}), New(Config{Seed: 42})
	for i := 0; i < 50; i++ {
		if a.Source(i) != b.Source(i) {
			t.Fatalf("program %d differs across generators with equal seeds", i)
		}
		if a.Variant(i, 9) != b.Variant(i, 9) {
			t.Fatalf("variant %d differs across generators with equal seeds", i)
		}
	}
	if New(Config{Seed: 1}).Source(0) == New(Config{Seed: 2}).Source(0) {
		t.Error("different seeds produced identical first programs")
	}
}

// TestFeatureCoverage checks that the stream actually exercises the
// features the harness is meant to cover.
func TestFeatureCoverage(t *testing.T) {
	g := New(Config{Seed: 3})
	var all strings.Builder
	for i := 0; i < 300; i++ {
		all.WriteString(g.Source(i))
	}
	s := all.String()
	for _, feat := range []string{"CAS(", "FADD(", "XCHG(", "BCAS(", "wait(", "fence", "goto", "array ", "[", "na ", "assert "} {
		if !strings.Contains(s, feat) {
			t.Errorf("300 generated programs never used %q", feat)
		}
	}
}

// TestNoExtras checks the NoExtras gate: no non-atomic locations, no
// asserts.
func TestNoExtras(t *testing.T) {
	g := New(Config{Seed: 3, NoExtras: true})
	for i := 0; i < 200; i++ {
		p := g.Program(i)
		if p.HasExtras() {
			t.Fatalf("program %d has extras despite NoExtras\n%s", i, g.Source(i))
		}
		if strings.Contains(g.Source(i), "na ") || strings.Contains(g.Source(i), "assert") {
			t.Fatalf("program %d source has extras despite NoExtras", i)
		}
	}
}
