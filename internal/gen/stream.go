package gen

// Stream turns the generator into a deterministic request mix for load
// generation (cmd/loadgen): mostly fresh programs, with a configurable
// share of renamed duplicates — a variant spelling of an earlier
// request's program, digest-equal under prog.CanonicalDigest, so a
// correctly keyed verdict cache must serve it without re-exploring.
//
// Like the generator itself, a stream is pure: Request(i) depends only
// on the StreamConfig and i, so a load run is reproduced by its
// (seed, n) pair and concurrent workers can pull indices in any order.

// StreamConfig tunes a request stream.
type StreamConfig struct {
	// Seed derives the duplicate-placement stream; the program content
	// comes from the Generator's own seed.
	Seed uint64
	// DupPercent (0..100) is the share of requests sent as renamed
	// variants of an earlier request's program (default 0). The share is
	// of requests after the first — request 0 is always fresh.
	DupPercent int
	// Window bounds how far back a duplicate reaches (default 64): a
	// duplicate at index i repeats a program from (i-Window, i). Small
	// windows model bursty repeat traffic that stays LRU-resident.
	Window int
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.DupPercent < 0 {
		c.DupPercent = 0
	}
	if c.DupPercent > 100 {
		c.DupPercent = 100
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	return c
}

// Stream is a deterministic request sequence. Safe for concurrent use.
type Stream struct {
	g   *Generator
	cfg StreamConfig
}

// NewStream builds a stream over g.
func NewStream(g *Generator, cfg StreamConfig) *Stream {
	return &Stream{g: g, cfg: cfg.withDefaults()}
}

// Request returns the i-th request's source text and, when the request
// is a duplicate, the index whose program it repeats (dupOf = -1 for a
// fresh program). A duplicate of index j is digest-equal to Source(j) —
// note j itself may also have been sent as a duplicate of an earlier
// index, so the true first occurrence of a digest can precede dupOf.
func (s *Stream) Request(i int) (src string, dupOf int) {
	r := rng{s: (s.cfg.Seed ^ 0x9e3779b97f4a7c15) + uint64(i)*0x2545f4914f6cdd1d}
	r.next()
	if i > 0 && r.pct(s.cfg.DupPercent) {
		back := 1 + r.intn(min(i, s.cfg.Window))
		j := i - back
		// Variant seed is drawn per-request: repeats of the same program
		// arrive under different spellings, all digest-equal.
		return s.g.Variant(j, r.next()), j
	}
	return s.g.Source(i), -1
}
