package gen

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/prog"
)

// TestStreamDeterministic: two streams with the same config agree
// request-for-request.
func TestStreamDeterministic(t *testing.T) {
	a := NewStream(New(Config{Seed: 11}), StreamConfig{Seed: 5, DupPercent: 40})
	b := NewStream(New(Config{Seed: 11}), StreamConfig{Seed: 5, DupPercent: 40})
	for i := 0; i < 200; i++ {
		sa, da := a.Request(i)
		sb, db := b.Request(i)
		if sa != sb || da != db {
			t.Fatalf("request %d diverges: (%d) vs (%d)", i, da, db)
		}
	}
}

// TestStreamDupRate: the duplicate share lands near DupPercent, and a
// zero-percent stream never duplicates.
func TestStreamDupRate(t *testing.T) {
	s := NewStream(New(Config{Seed: 1}), StreamConfig{Seed: 2, DupPercent: 40})
	const n = 500
	dups := 0
	for i := 0; i < n; i++ {
		if _, dupOf := s.Request(i); dupOf >= 0 {
			if dupOf >= i {
				t.Fatalf("request %d duplicates a future index %d", i, dupOf)
			}
			dups++
		}
	}
	if pct := 100 * dups / n; pct < 25 || pct > 55 {
		t.Errorf("duplicate share %d%% of %d requests, want ~40%%", pct, n)
	}

	fresh := NewStream(New(Config{Seed: 1}), StreamConfig{Seed: 2})
	for i := 0; i < 100; i++ {
		if _, dupOf := fresh.Request(i); dupOf != -1 {
			t.Fatalf("DupPercent 0 emitted a duplicate at %d", i)
		}
	}
}

// TestStreamDupsAreDigestEqual: every duplicate parses and has the same
// canonical digest as the program it repeats — the property that makes
// DupPercent a cache-hit-rate dial.
func TestStreamDupsAreDigestEqual(t *testing.T) {
	g := New(Config{Seed: 9, NoExtras: true})
	s := NewStream(g, StreamConfig{Seed: 3, DupPercent: 50, Window: 16})
	checked := 0
	for i := 0; i < 300 && checked < 40; i++ {
		src, dupOf := s.Request(i)
		if dupOf < 0 {
			continue
		}
		dp, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("duplicate %d does not parse: %v\n%s", i, err, src)
		}
		op, err := parser.Parse(g.Source(dupOf))
		if err != nil {
			t.Fatal(err)
		}
		if prog.CanonicalDigest(dp) != prog.CanonicalDigest(op) {
			t.Errorf("request %d is not digest-equal to its original %d", i, dupOf)
		}
		if src == g.Source(dupOf) {
			t.Errorf("request %d repeats index %d verbatim; want a renamed variant", i, dupOf)
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d duplicates in 300 requests at 50%%", checked)
	}
}
