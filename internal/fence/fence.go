// Package fence implements automatic robustness enforcement — the
// application the paper's introduction motivates: "robustness of
// non-robust programs may be enforced (by placing SC-fences or RMW
// operations), and verifying the robustness of the strengthened program"
// (§1; §9 lists the efficient version as future work on top of the
// decision procedure).
//
// Two repair moves are supported, matching the paper's two recipes:
//
//   - inserting an SC fence: Example 3.6's FADD(f, 0) on a single
//     distinguished location shared by all fences (a per-location or
//     per-thread fence has no synchronizing power under RA);
//   - strengthening a plain write into an RMW (an XCHG), the repair
//     behind the peterson-ra-dmitriy variant of §7.
//
// The search enumerates repair sets smallest-first, using the core
// verifier as the oracle, so a returned repair is verified robust and no
// strictly smaller candidate within the chosen strategy is.
package fence

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/parser"
)

// RepairKind distinguishes the two repair moves.
type RepairKind uint8

// Repair kinds.
const (
	// InsertFence places an SC fence before the instruction.
	InsertFence RepairKind = iota
	// StrengthenWrite turns the plain write at the instruction into an
	// XCHG.
	StrengthenWrite
)

// Placement identifies one repair in the original program's numbering:
// a fence inserted before instruction At of thread Tid, or the write at
// instruction At strengthened into an RMW.
type Placement struct {
	Kind RepairKind
	Tid  lang.Tid
	At   int
}

// String renders the placement.
func (pl Placement) String() string {
	verb := "fence before"
	if pl.Kind == StrengthenWrite {
		verb = "strengthen write at"
	}
	return fmt.Sprintf("thread %d: %s instruction %d", pl.Tid, verb, pl.At)
}

// Strategy selects which repair moves the search may use.
type Strategy uint8

// Strategies.
const (
	// Fences searches over SC-fence insertions only (the default).
	Fences Strategy = iota
	// RMWs searches over write strengthenings only.
	RMWs
	// Mixed searches over both move kinds.
	Mixed
)

// Options configures the search.
type Options struct {
	// MaxRepairs bounds the repair-set size searched (default 4).
	MaxRepairs int
	// Strategy selects the repair moves (default Fences).
	Strategy Strategy
	// Verify configures the robustness oracle.
	Verify core.Options
}

// ErrNotEnforceable is returned when no repair within MaxRepairs makes
// the program robust (e.g. the weak behaviour is inherent, or the program
// has a data race or failing assertion that these repairs cannot fix).
var ErrNotEnforceable = fmt.Errorf("fence: no repair within the bound enforces robustness")

// Apply returns a copy of the program with the given repairs applied. For
// fences it adds the distinguished fence location (the parser's FenceLoc,
// reused if already present) and a scratch register per modified thread;
// jump targets are remapped so that a jump to a fenced instruction
// executes the fence first (a fence inside a loop runs every iteration).
// Strengthened writes keep their position and targets.
func Apply(p *lang.Program, placements []Placement) *lang.Program {
	out := &lang.Program{
		Name:     p.Name,
		ValCount: p.ValCount,
		Locs:     append([]lang.LocInfo(nil), p.Locs...),
	}
	fl, haveFence := p.LocByName(parser.FenceLoc)
	needFence := false
	for _, pl := range placements {
		if pl.Kind == InsertFence {
			needFence = true
		}
	}
	if needFence && !haveFence {
		fl = lang.Loc(len(out.Locs))
		out.Locs = append(out.Locs, lang.LocInfo{Name: parser.FenceLoc})
	}
	fences := map[lang.Tid]map[int]int{}
	strengthen := map[lang.Tid]map[int]bool{}
	for _, pl := range placements {
		switch pl.Kind {
		case InsertFence:
			if fences[pl.Tid] == nil {
				fences[pl.Tid] = map[int]int{}
			}
			fences[pl.Tid][pl.At]++
		case StrengthenWrite:
			if strengthen[pl.Tid] == nil {
				strengthen[pl.Tid] = map[int]bool{}
			}
			strengthen[pl.Tid][pl.At] = true
		}
	}
	for ti := range p.Threads {
		src := &p.Threads[ti]
		tid := lang.Tid(ti)
		t := lang.SeqProg{
			Name:     src.Name,
			NumRegs:  src.NumRegs,
			RegNames: append([]string(nil), src.RegNames...),
		}
		before := fences[tid]
		strong := strengthen[tid]
		var scratch lang.Reg
		if len(before) > 0 || len(strong) > 0 {
			scratch = lang.Reg(t.NumRegs)
			t.NumRegs++
			t.RegNames = append(t.RegNames, "__fr")
		}
		shift := func(target int) int {
			n := 0
			for pos, c := range before {
				if pos < target {
					n += c
				}
			}
			return target + n
		}
		for pc := range src.Insts {
			for i := 0; i < before[pc]; i++ {
				t.Insts = append(t.Insts, lang.Inst{
					Kind: lang.IFADD,
					Reg:  scratch,
					Mem:  lang.MemRef{Base: fl, Size: 1},
					E:    lang.Const(0),
					Line: src.Insts[pc].Line,
				})
			}
			in := src.Insts[pc]
			if in.Kind == lang.IGoto {
				in.Target = shift(in.Target)
			}
			if strong[pc] {
				if in.Kind != lang.IWrite {
					panic("fence: StrengthenWrite on a non-write instruction")
				}
				in = lang.Inst{
					Kind: lang.IXCHG,
					Reg:  scratch,
					Mem:  in.Mem,
					E:    in.E,
					Line: in.Line,
				}
			}
			t.Insts = append(t.Insts, in)
		}
		out.Threads = append(out.Threads, t)
	}
	return out
}

// Insert is Apply restricted to fence insertions, kept as the simple
// entry point for the common case.
func Insert(p *lang.Program, placements []Placement) *lang.Program {
	return Apply(p, placements)
}

// candidates returns the repair moves the strategy admits: fences before
// every memory instruction with an earlier memory instruction in the same
// thread (anywhere else a fence is equivalent to one of these points or
// useless), and strengthenings of every plain write to an atomic
// location (an RMW on a non-atomic cell is not a valid program).
func candidates(p *lang.Program, strategy Strategy) []Placement {
	var out []Placement
	for ti := range p.Threads {
		seenMem := false
		for pc := range p.Threads[ti].Insts {
			in := &p.Threads[ti].Insts[pc]
			if !in.IsMem() {
				continue
			}
			if strategy != RMWs && seenMem {
				out = append(out, Placement{Kind: InsertFence, Tid: lang.Tid(ti), At: pc})
			}
			if strategy != Fences && in.Kind == lang.IWrite && !p.Locs[in.Mem.Base].NA {
				out = append(out, Placement{Kind: StrengthenWrite, Tid: lang.Tid(ti), At: pc})
			}
			seenMem = true
		}
	}
	return out
}

// Enforce searches for a minimal repair set that makes the program
// execution-graph robust against RA. It returns the placements (empty if
// the program is already robust) and the strengthened program.
func Enforce(p *lang.Program, opts Options) ([]Placement, *lang.Program, error) {
	if opts.MaxRepairs <= 0 {
		opts.MaxRepairs = 4
	}
	// Options carries funcs (progress hooks) and so is not comparable;
	// detect a zero value field-wise to install the defaults.
	if v := opts.Verify; !v.AbstractVals && v.Model == core.ModelRA && v.MaxStates == 0 &&
		!v.KeepAllViolations && !v.HashCompact && v.Workers == 0 &&
		v.Ctx == nil && v.Progress == nil && v.ProgressEvery == 0 {
		opts.Verify = core.DefaultOptions()
	}
	robust := func(q *lang.Program) (bool, error) {
		v, err := core.Verify(q, opts.Verify)
		if err != nil {
			return false, err
		}
		if v.AssertFail != nil {
			return false, fmt.Errorf("fence: program has a failing assertion under SC")
		}
		return v.Robust, nil
	}
	if ok, err := robust(p); err != nil {
		return nil, nil, err
	} else if ok {
		return nil, p, nil
	}
	cands := candidates(p, opts.Strategy)
	pick := make([]int, 0, opts.MaxRepairs)
	var search func(size, from int) ([]Placement, *lang.Program, error)
	search = func(size, from int) ([]Placement, *lang.Program, error) {
		if size == 0 {
			pls := make([]Placement, len(pick))
			for i, ci := range pick {
				pls[i] = cands[ci]
			}
			q := Apply(p, pls)
			ok, err := robust(q)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				return pls, q, nil
			}
			return nil, nil, nil
		}
		for ci := from; ci < len(cands); ci++ {
			pick = append(pick, ci)
			pls, q, err := search(size-1, ci+1)
			pick = pick[:len(pick)-1]
			if err != nil || pls != nil {
				return pls, q, err
			}
		}
		return nil, nil, nil
	}
	for size := 1; size <= opts.MaxRepairs; size++ {
		pls, q, err := search(size, 0)
		if err != nil {
			return nil, nil, err
		}
		if pls != nil {
			return pls, q, nil
		}
	}
	return nil, nil, ErrNotEnforceable
}
