package fence_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fence"
	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/parser"
	"repro/internal/staterobust"
)

// TestEnforceSB repairs the store-buffering litmus test: the minimal
// placement is one fence per thread, between the write and the read —
// recovering exactly the SB+RMWs program of Example 3.6.
func TestEnforceSB(t *testing.T) {
	e, _ := litmus.Get("SB")
	p := e.Program()
	pls, fixed, err := fence.Enforce(p, fence.Options{})
	if err != nil {
		t.Fatalf("enforce: %v", err)
	}
	if len(pls) != 2 {
		t.Fatalf("placements = %v, want one fence per thread", pls)
	}
	if pls[0].Tid == pls[1].Tid {
		t.Errorf("both fences in the same thread: %v", pls)
	}
	v, err := core.Verify(fixed, core.DefaultOptions())
	if err != nil || !v.Robust {
		t.Fatalf("strengthened program not robust: %v %v", v, err)
	}
	// And it must now be state robust against RA, too (Prop. 4.10).
	res, err := staterobust.CheckRA(fixed, staterobust.Limits{MaxStates: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Robust {
		t.Error("strengthened SB not state robust under the RA machine")
	}
}

// TestEnforceAlreadyRobust returns the program unchanged with no fences.
func TestEnforceAlreadyRobust(t *testing.T) {
	e, _ := litmus.Get("MP")
	p := e.Program()
	pls, fixed, err := fence.Enforce(p, fence.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pls) != 0 || fixed != p {
		t.Errorf("robust program should come back unchanged, got %v", pls)
	}
}

// TestEnforceDekker repairs Dekker's algorithm (the paper's canonical
// example of a program whose RA behaviour is harmful): the store-buffering
// shape on the two flags needs one fence per thread.
func TestEnforceDekker(t *testing.T) {
	if testing.Short() {
		t.Skip("search over dekker placements is slow")
	}
	e, _ := litmus.Get("dekker-sc")
	p := e.Program()
	pls, fixed, err := fence.Enforce(p, fence.Options{MaxRepairs: 2})
	if err != nil {
		t.Fatalf("enforce: %v", err)
	}
	if len(pls) != 2 {
		t.Fatalf("expected a 2-fence repair, got %v", pls)
	}
	v, err := core.Verify(fixed, core.DefaultOptions())
	if err != nil || !v.Robust {
		t.Fatalf("strengthened dekker not robust")
	}
}

// TestEnforceUnfixable: IRIW with MaxFences 1 cannot be repaired (it needs
// a fence in each reader).
func TestEnforceUnfixable(t *testing.T) {
	e, _ := litmus.Get("IRIW")
	p := e.Program()
	_, _, err := fence.Enforce(p, fence.Options{MaxRepairs: 1})
	if err == nil {
		t.Fatal("expected ErrNotEnforceable")
	}
}

// TestInsertRemapsJumps checks the jump-target remapping of Insert on a
// looping thread.
func TestInsertRemapsJumps(t *testing.T) {
	p := parser.MustParse(`
program loop
vals 2
locs x y
thread t
L:
  x := 1
  r := y
  if r = 0 goto L
end
`)
	fixed := fence.Insert(p, []fence.Placement{{Kind: fence.InsertFence, Tid: 0, At: 1}})
	tr := fixed.Threads[0]
	if len(tr.Insts) != 4 {
		t.Fatalf("expected 4 instructions, got %d", len(tr.Insts))
	}
	if tr.Insts[1].Kind != lang.IFADD {
		t.Fatalf("fence not inserted at position 1: %s", &tr.Insts[1])
	}
	g := tr.Insts[3]
	if g.Kind != lang.IGoto || g.Target != 0 {
		t.Fatalf("loop back-edge should still target 0, got %d", g.Target)
	}
	if err := fixed.Validate(); err != nil {
		t.Fatalf("inserted program invalid: %v", err)
	}
	// Inserting before the read instead: the back-edge target 0 is
	// unaffected, a jump to the read would shift.
	fixed2 := fence.Insert(p, []fence.Placement{{Kind: fence.InsertFence, Tid: 0, At: 0}})
	if fixed2.Threads[0].Insts[3].Target != 0 {
		// Jumping to instruction 0 now lands on the fence, which runs
		// before the original first instruction.
		t.Fatalf("target should remap to the fence position, got %d", fixed2.Threads[0].Insts[3].Target)
	}
}
