package fence_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fence"
	"repro/internal/lang"
	"repro/internal/litmus"
)

// TestStrengthenPeterson rediscovers V'jukov's repair automatically: with
// the RMW strategy, the minimal strengthening of peterson-sc turns
// exactly the two turn writes into exchanges — the peterson-ra-dmitriy
// variant of §7 — and the search never proposes the flag writes (the
// peterson-ra-bratosz mistake), because that candidate set is verified
// non-robust and rejected.
func TestStrengthenPeterson(t *testing.T) {
	if testing.Short() {
		t.Skip("repair search over peterson is slow")
	}
	e, _ := litmus.Get("peterson-sc")
	p := e.Program()
	pls, fixed, err := fence.Enforce(p, fence.Options{MaxRepairs: 2, Strategy: fence.RMWs})
	if err != nil {
		t.Fatalf("enforce: %v", err)
	}
	if len(pls) != 2 {
		t.Fatalf("expected 2 strengthenings, got %v", pls)
	}
	turn, _ := p.LocByName("turn")
	for _, pl := range pls {
		if pl.Kind != fence.StrengthenWrite {
			t.Fatalf("expected a strengthening, got %v", pl)
		}
		in := &p.Threads[pl.Tid].Insts[pl.At]
		if in.Kind != lang.IWrite || in.Mem.Base != turn {
			t.Errorf("strengthened %q, want the turn write", p.FmtInst(&p.Threads[pl.Tid], in))
		}
	}
	v, err := core.Verify(fixed, core.DefaultOptions())
	if err != nil || !v.Robust {
		t.Fatalf("strengthened peterson not robust")
	}
}

// TestStrengthenApplyShape checks that Apply turns the designated write
// into an XCHG with a fresh scratch destination and leaves the rest of
// the thread intact.
func TestStrengthenApplyShape(t *testing.T) {
	e, _ := litmus.Get("SB")
	p := e.Program()
	fixed := fence.Apply(p, []fence.Placement{{Kind: fence.StrengthenWrite, Tid: 0, At: 0}})
	t0 := fixed.Threads[0]
	if t0.Insts[0].Kind != lang.IXCHG {
		t.Fatalf("instruction 0 is %v, want XCHG", t0.Insts[0].Kind)
	}
	if t0.NumRegs != p.Threads[0].NumRegs+1 {
		t.Errorf("expected one scratch register to be added")
	}
	if len(t0.Insts) != len(p.Threads[0].Insts) {
		t.Errorf("strengthening must not change the instruction count")
	}
	if err := fixed.Validate(); err != nil {
		t.Fatalf("strengthened program invalid: %v", err)
	}
	// A single strengthened write does not repair SB (no second fence
	// point): the full mixed search with budget 2 must still succeed.
	pls, q, err := fence.Enforce(p, fence.Options{MaxRepairs: 2, Strategy: fence.Mixed})
	if err != nil {
		t.Fatalf("mixed enforce: %v", err)
	}
	if len(pls) != 2 {
		t.Fatalf("mixed repair of SB should need 2 moves, got %v", pls)
	}
	v, err := core.Verify(q, core.DefaultOptions())
	if err != nil || !v.Robust {
		t.Fatalf("mixed-repaired SB not robust")
	}
}
