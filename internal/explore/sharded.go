package explore

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// Sharded state ids pack (local index, shard) into an int64:
// id = local<<shardBits | shard. 64 shards keep lock contention negligible
// for any plausible worker count while the id stays comfortably inside
// int64 for multi-billion-state runs.
const (
	shardBits = 6
	numShards = 1 << shardBits
	shardMask = numShards - 1
)

// Sharded is a concurrent visited-state store: the encoding's Hash128
// digest selects one of 64 independently-locked shards, each an exact
// open-addressing table over an append-only key arena (or a hash-compacted
// map) plus per-state parent/step trace links. It is the concurrent
// counterpart of Store, used by RunParallel-based explorers; ids are int64
// (packed shard + local index) rather than Store's dense int32s. Like
// Store's exact mode, steady-state interning performs no per-state heap
// allocation: keys go into per-shard arenas and every table grows
// geometrically.
type Sharded struct {
	hashCompact bool
	count       atomic.Int64
	shards      [numShards]shard
}

type shard struct {
	mu     sync.Mutex
	hashed map[[2]uint64]int32 // hash-compact mode; nil in exact mode
	arena  arena
	refs   []keyRef
	table  []slot
	mask   uint64
	parent []int64
	step   []Step
	// sleep holds per-state thread masks for sleep-set exploration
	// (AddSleep), indexed by local id; absent entries read as 0.
	sleep []uint64
}

// shardMinTable is the initial per-shard slot-table size (a power of two);
// smaller than Store's since the load spreads over 64 shards.
const shardMinTable = 1 << 6

// NewSharded returns an empty sharded store, exact or hash-compacted.
func NewSharded(hashCompact bool) *Sharded {
	s := &Sharded{hashCompact: hashCompact}
	for i := range s.shards {
		if hashCompact {
			s.shards[i].hashed = make(map[[2]uint64]int32)
		} else {
			s.shards[i].table = make([]slot, shardMinTable)
			s.shards[i].mask = shardMinTable - 1
		}
	}
	return s
}

// Add interns a state encoding, returning its id and whether it was new.
// Parent and step are recorded for new states only; in a concurrent
// exploration the recorded parent is whichever arc interned the state
// first — a valid (not necessarily shortest) path, since parents are
// always already-interned states. The key is copied (into the shard's
// arena) only when new, so callers may reuse the backing buffer.
func (s *Sharded) Add(key []byte, parent int64, step Step) (int64, bool) {
	id, isNew, _ := s.add(key, parent, step, 0, false)
	return id, isNew
}

// AddSleep is Add for sleep-set exploration, with the same contract as
// Store.AddBytesSleep: a new state stores the incoming thread mask, a
// revisit intersects it into the stored mask, and shrunk=true tells the
// caller to re-expand the state. The mask update happens under the shard
// lock, so concurrent contributions never lose intersections.
func (s *Sharded) AddSleep(key []byte, parent int64, step Step, sleep uint64) (id int64, isNew, shrunk bool) {
	return s.add(key, parent, step, sleep, true)
}

func (s *Sharded) add(key []byte, parent int64, step Step, sleep uint64, useSleep bool) (int64, bool, bool) {
	h := Hash128(key)
	si := h[0] & shardMask
	sh := &s.shards[si]
	sh.mu.Lock()
	if s.hashCompact {
		if local, ok := sh.hashed[h]; ok {
			shrunk := sh.mergeSleep(local, sleep, useSleep)
			sh.mu.Unlock()
			return int64(local)<<shardBits | int64(si), false, shrunk
		}
		sh.hashed[h] = int32(len(sh.parent))
	} else {
		// The second hash lane drives the in-shard probe so that the bits
		// consumed by shard selection don't degrade the table's spread.
		i := h[1] & sh.mask
		for {
			sl := &sh.table[i]
			if sl.id == 0 {
				sh.refs = append(grown(sh.refs), sh.arena.intern(key))
				sl.h = h[1]
				sl.id = int32(len(sh.parent)) + 1
				if uint64(len(sh.refs))*4 > (sh.mask+1)*3 {
					sh.grow()
				}
				break
			}
			if sl.h == h[1] && bytes.Equal(sh.arena.bytes(sh.refs[sl.id-1]), key) {
				local := sl.id - 1
				shrunk := sh.mergeSleep(local, sleep, useSleep)
				sh.mu.Unlock()
				return int64(local)<<shardBits | int64(si), false, shrunk
			}
			i = (i + 1) & sh.mask
		}
	}
	local := int64(len(sh.parent))
	if useSleep {
		sh.ensureSleep(int(local) + 1)
		sh.sleep[local] = sleep
	}
	sh.parent = append(grown(sh.parent), parent)
	sh.step = append(grown(sh.step), step)
	sh.mu.Unlock()
	s.count.Add(1)
	return local<<shardBits | int64(si), true, false
}

func (sh *shard) ensureSleep(n int) {
	for len(sh.sleep) < n {
		sh.sleep = append(grown(sh.sleep), 0)
	}
}

func (sh *shard) mergeSleep(local int32, sleep uint64, useSleep bool) bool {
	if !useSleep {
		return false
	}
	sh.ensureSleep(int(local) + 1)
	old := sh.sleep[local]
	if ns := old & sleep; ns != old {
		sh.sleep[local] = ns
		return true
	}
	return false
}

// Sleep returns the current sleep mask of state id (0 if never set).
func (s *Sharded) Sleep(id int64) uint64 {
	sh := &s.shards[id&shardMask]
	local := id >> shardBits
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if int(local) < len(sh.sleep) {
		return sh.sleep[local]
	}
	return 0
}

func (sh *shard) grow() {
	old := sh.table
	sh.table = make([]slot, len(old)*2)
	sh.mask = uint64(len(sh.table) - 1)
	for _, sl := range old {
		if sl.id == 0 {
			continue
		}
		i := sl.h & sh.mask
		for sh.table[i].id != 0 {
			i = (i + 1) & sh.mask
		}
		sh.table[i] = sl
	}
}

// AppendKey appends the interned encoding of state id to dst and returns
// the extended slice. Exact mode only (hash-compacted stores keep no
// keys). Unlike Store.KeyBytes it copies — under the shard lock — rather
// than aliasing the arena, since another worker may grow the shard's block
// list concurrently; the caller supplies a reusable buffer, so the copy
// still allocates nothing in steady state. This re-materialization is what
// lets the parallel exact-mode frontier carry bare ids.
func (s *Sharded) AppendKey(dst []byte, id int64) []byte {
	sh := &s.shards[id&shardMask]
	sh.mu.Lock()
	dst = append(dst, sh.arena.bytes(sh.refs[id>>shardBits])...)
	sh.mu.Unlock()
	return dst
}

// Len returns the number of stored states. It reads an atomic counter, so
// it is cheap enough for per-expansion bound checks; during a run it may
// trail in-flight Adds by a few states.
func (s *Sharded) Len() int { return int(s.count.Load()) }

// Trace reconstructs the steps from the root to state id by following the
// recorded parent arcs. Every parent link points at an earlier-interned
// state, so the walk terminates at the root; the result is a valid run,
// though not necessarily a shortest one (concurrent exploration does not
// preserve BFS level order).
func (s *Sharded) Trace(id int64) []Step {
	var rev []Step
	for id >= 0 {
		sh := &s.shards[id&shardMask]
		local := id >> shardBits
		sh.mu.Lock()
		parent, step := sh.parent[local], sh.step[local]
		sh.mu.Unlock()
		if parent < 0 {
			break
		}
		rev = append(rev, step)
		id = parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
