package explore

import (
	"sync"
	"sync/atomic"
)

// Sharded state ids pack (local index, shard) into an int64:
// id = local<<shardBits | shard. 64 shards keep lock contention negligible
// for any plausible worker count while the id stays comfortably inside
// int64 for multi-billion-state runs.
const (
	shardBits = 6
	numShards = 1 << shardBits
	shardMask = numShards - 1
)

// Sharded is a concurrent visited-state store: the encoding's Hash128
// digest selects one of 64 independently-locked shards, each an exact or
// hash-compacted map plus per-state parent/step trace links. It is the
// concurrent counterpart of Store, used by RunParallel-based explorers;
// ids are int64 (packed shard + local index) rather than Store's dense
// int32s.
type Sharded struct {
	hashCompact bool
	count       atomic.Int64
	shards      [numShards]shard
}

type shard struct {
	mu     sync.Mutex
	exact  map[string]int32
	hashed map[[2]uint64]int32
	parent []int64
	step   []Step
	_      [40]byte // pad shards apart to limit false sharing on mu
}

// NewSharded returns an empty sharded store, exact or hash-compacted.
func NewSharded(hashCompact bool) *Sharded {
	s := &Sharded{hashCompact: hashCompact}
	for i := range s.shards {
		if hashCompact {
			s.shards[i].hashed = make(map[[2]uint64]int32)
		} else {
			s.shards[i].exact = make(map[string]int32)
		}
	}
	return s
}

// Add interns a state encoding, returning its id and whether it was new.
// Parent and step are recorded for new states only; in a concurrent
// exploration the recorded parent is whichever arc interned the state
// first — a valid (not necessarily shortest) path, since parents are
// always already-interned states. The key is copied when stored, so
// callers may reuse the backing buffer.
func (s *Sharded) Add(key []byte, parent int64, step Step) (int64, bool) {
	h := Hash128(key)
	si := h[0] & shardMask
	sh := &s.shards[si]
	sh.mu.Lock()
	if s.hashCompact {
		if local, ok := sh.hashed[h]; ok {
			sh.mu.Unlock()
			return int64(local)<<shardBits | int64(si), false
		}
		sh.hashed[h] = int32(len(sh.parent))
	} else {
		if local, ok := sh.exact[string(key)]; ok {
			sh.mu.Unlock()
			return int64(local)<<shardBits | int64(si), false
		}
		sh.exact[string(key)] = int32(len(sh.parent))
	}
	local := int64(len(sh.parent))
	sh.parent = append(sh.parent, parent)
	sh.step = append(sh.step, step)
	sh.mu.Unlock()
	s.count.Add(1)
	return local<<shardBits | int64(si), true
}

// Len returns the number of stored states. It reads an atomic counter, so
// it is cheap enough for per-expansion bound checks; during a run it may
// trail in-flight Adds by a few states.
func (s *Sharded) Len() int { return int(s.count.Load()) }

// Trace reconstructs the steps from the root to state id by following the
// recorded parent arcs. Every parent link points at an earlier-interned
// state, so the walk terminates at the root; the result is a valid run,
// though not necessarily a shortest one (concurrent exploration does not
// preserve BFS level order).
func (s *Sharded) Trace(id int64) []Step {
	var rev []Step
	for id >= 0 {
		sh := &s.shards[id&shardMask]
		local := id >> shardBits
		sh.mu.Lock()
		parent, step := sh.parent[local], sh.step[local]
		sh.mu.Unlock()
		if parent < 0 {
			break
		}
		rev = append(rev, step)
		id = parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
