package explore

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Item pairs a Sharded-store id with a frontier payload.
type Item[T any] struct {
	ID int64
	St T
}

// Expand processes one frontier item on behalf of worker w: decode the
// payload, run the per-state checks, and hand each newly-interned
// successor to push. Returning false cancels the whole search
// cooperatively (violation found, state bound exceeded, ...).
//
// Expand is called concurrently from every worker; w indexes any
// per-worker scratch state the caller keeps. Items pushed by one worker
// may be expanded by any other.
type Expand[T any] func(w int, it Item[T], push func(Item[T])) bool

// batchSize is the unit of frontier hand-off: workers accumulate newly
// discovered states in a local buffer and publish them to the shared
// frontier a batch at a time, and likewise claim work a batch at a time,
// so the shared lock is taken twice per ~64 states rather than twice per
// state.
const batchSize = 64

// RunParallel explores the state space spanned by roots with the given
// number of workers (0 or negative: GOMAXPROCS). The caller interns roots
// in its store before calling (they are expanded like any other item).
// It returns true when the frontier was exhausted and false when some
// Expand call cancelled the search.
//
// The exploration order is batched LIFO, not strict BFS: on a full run
// every reachable state is expanded exactly once (assuming the caller's
// push discipline: push each state exactly once, when its store Add
// reports it new), so full-run results — verdicts, state counts — are
// deterministic and worker-count-independent. Cancelled runs stop at a
// nondeterministic frontier cut; only which counterexample is found may
// vary, never whether one exists.
func RunParallel[T any](workers int, roots []Item[T], expand Expand[T]) bool {
	return RunParallelOpts(workers, roots, expand, RunOpts{})
}

// RunOpts extends RunParallel with cooperative cancellation and a progress
// hook. The zero value is RunParallel's behaviour.
type RunOpts struct {
	// Ctx, when non-nil, cancels the search cooperatively: workers observe
	// the cancellation between frontier batches, so at most
	// workers·batchSize further items are expanded after it fires. A
	// cancelled run returns false, exactly like an Expand-initiated cancel;
	// the caller distinguishes the two by inspecting Ctx.Err itself.
	Ctx context.Context
	// Progress, when non-nil, is invoked from a worker goroutine each time
	// the cumulative expanded-item count crosses a multiple of
	// ProgressEvery, with that count. It runs concurrently with other
	// workers' expansions (and possibly with other Progress calls), so it
	// must be cheap and goroutine-safe.
	Progress func(expanded int64)
	// ProgressEvery is the number of expanded items between Progress
	// calls; 0 means 4096. The boundary is detected at batch granularity,
	// so calls land within batchSize items of the exact multiple.
	ProgressEvery int64
}

// RunParallelOpts is RunParallel with cancellation and progress reporting
// (see RunOpts). It returns false when the search was cancelled — by an
// Expand call or by opts.Ctx — and true when the frontier was exhausted.
func RunParallelOpts[T any](workers int, roots []Item[T], expand Expand[T], opts RunOpts) bool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &engine[T]{ctx: opts.Ctx, progress: opts.Progress, every: opts.ProgressEvery}
	if e.every <= 0 {
		e.every = 4096
	}
	e.cond = sync.NewCond(&e.mu)
	if len(roots) > 0 {
		e.batches = append(e.batches, roots)
		e.pending = len(roots)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.work(w, expand)
		}(w)
	}
	wg.Wait()
	return !e.stop.Load()
}

type engine[T any] struct {
	ctx      context.Context
	progress func(expanded int64)
	every    int64
	expanded atomic.Int64

	mu      sync.Mutex
	cond    *sync.Cond
	batches [][]Item[T]
	// free holds retired batch buffers for reuse, so steady-state frontier
	// hand-off allocates no batch slices (the free list is bounded by the
	// peak number of in-flight batches).
	free [][]Item[T]
	// pending counts items that are on the frontier or claimed by a worker
	// and not yet fully expanded; the search is over when it reaches zero.
	pending int
	stop    atomic.Bool
}

// newBatchLocked returns an empty batch buffer, reusing a retired one when
// available. Caller holds e.mu.
func (e *engine[T]) newBatchLocked() []Item[T] {
	if n := len(e.free); n > 0 {
		b := e.free[n-1][:0]
		e.free = e.free[:n-1]
		return b
	}
	return make([]Item[T], 0, batchSize)
}

func (e *engine[T]) work(w int, expand Expand[T]) {
	out := make([]Item[T], 0, batchSize)
	push := func(it Item[T]) {
		out = append(out, it)
		if len(out) >= batchSize {
			out = e.inject(out)
		}
	}
	for {
		if !e.note(0) {
			e.cancel()
			return
		}
		batch := e.take()
		if batch == nil {
			return
		}
		for _, it := range batch {
			if e.stop.Load() {
				break
			}
			if !expand(w, it, push) {
				e.cancel()
				break
			}
		}
		// Drop payload references before the buffer goes back on the free
		// list; reuse only overwrites slots up to the next batch's length.
		clear(batch)
		out = e.finish(len(batch), out, batch)
		if !e.note(len(batch)) {
			e.cancel()
			return
		}
	}
}

// note accounts a processed batch against the progress and cancellation
// hooks; it reports whether the worker should keep going. Both checks run
// at batch granularity to keep their cost (an atomic add, a context poll)
// off the per-item hot path.
func (e *engine[T]) note(processed int) bool {
	if processed > 0 {
		total := e.expanded.Add(int64(processed))
		if e.progress != nil && total/e.every != (total-int64(processed))/e.every {
			e.progress(total)
		}
	}
	return e.ctx == nil || e.ctx.Err() == nil
}

// take claims one batch of frontier items, blocking while the frontier is
// empty but other workers still hold unexpanded items (which may yet
// produce more). It returns nil when the search is over.
func (e *engine[T]) take() []Item[T] {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.stop.Load() || e.pending <= 0 {
			return nil
		}
		if n := len(e.batches); n > 0 {
			b := e.batches[n-1]
			e.batches = e.batches[:n-1]
			return b
		}
		e.cond.Wait()
	}
}

// inject publishes a full local out-buffer mid-batch and returns a fresh
// (recycled when possible) buffer for the worker to keep filling.
func (e *engine[T]) inject(b []Item[T]) []Item[T] {
	e.mu.Lock()
	if !e.stop.Load() {
		e.batches = append(e.batches, b)
		e.pending += len(b)
		e.cond.Signal()
	}
	nb := e.newBatchLocked()
	e.mu.Unlock()
	return nb
}

// finish retires a processed batch (recycling its buffer) and publishes
// any remaining out-buffer in the same critical section, returning the
// worker's next out-buffer — out itself when it was not handed off, a
// recycled one otherwise.
func (e *engine[T]) finish(processed int, out, done []Item[T]) []Item[T] {
	e.mu.Lock()
	handedOff := false
	if len(out) > 0 && !e.stop.Load() {
		e.batches = append(e.batches, out)
		e.pending += len(out)
		handedOff = true
	}
	e.free = append(e.free, done[:0])
	e.pending -= processed
	if e.pending <= 0 || e.stop.Load() {
		e.cond.Broadcast()
	} else if handedOff {
		e.cond.Signal()
	}
	if handedOff {
		out = e.newBatchLocked()
	}
	e.mu.Unlock()
	return out
}

// cancel requests cooperative termination: workers observe the flag
// between items and drain.
func (e *engine[T]) cancel() {
	e.stop.Store(true)
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
}
