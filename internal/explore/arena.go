package explore

// An arena is an append-only byte store for interned state encodings.
// Bytes are packed into blocks; once written they never move, so a keyRef
// stays valid for the arena's lifetime and readers may hold views into it
// across later interns. Compared with one string per state, the arena costs
// one allocation per block of key data instead of one per state, and frees
// the GC from scanning a header per key (blocks are pointer-free byte
// slices). Block capacity grows geometrically from arenaMinBlock up to
// arenaMaxBlock, so a barely-used arena stays tiny — 64 of them back a
// Sharded store, and litmus-sized runs touch every shard with only a
// handful of states each — while large runs still amortize to one
// allocation per 64 KiB.
const (
	arenaMinBlock = 1 << 10
	arenaMaxBlock = 64 << 10
)

// keyRef locates one interned key: block index, offset, length.
type keyRef struct {
	blk, off, n uint32
}

type arena struct {
	blocks [][]byte
}

// intern appends b to the arena and returns its ref. A key never straddles
// blocks: when the current block lacks room a new one is started (wasting
// the tail), and a key larger than the block size gets a dedicated block.
func (a *arena) intern(b []byte) keyRef {
	last := len(a.blocks) - 1
	if last < 0 || len(a.blocks[last])+len(b) > cap(a.blocks[last]) {
		size := arenaMinBlock
		if last >= 0 {
			size = 2 * cap(a.blocks[last])
			if size > arenaMaxBlock {
				size = arenaMaxBlock
			}
		}
		if len(b) > size {
			size = len(b)
		}
		a.blocks = append(a.blocks, make([]byte, 0, size))
		last++
	}
	blk := a.blocks[last]
	off := len(blk)
	a.blocks[last] = append(blk, b...)
	return keyRef{uint32(last), uint32(off), uint32(len(b))}
}

// bytes returns the interned key at r. The result aliases arena storage:
// valid indefinitely, never to be mutated.
func (a *arena) bytes(r keyRef) []byte {
	return a.blocks[r.blk][r.off : uint64(r.off)+uint64(r.n) : uint64(r.off)+uint64(r.n)]
}
