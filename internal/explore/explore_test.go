package explore_test

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/lang"
)

func TestStoreTrace(t *testing.T) {
	s := explore.NewStore()
	root := s.Root("a")
	id1, new1 := s.Add("b", root, explore.Step{Tid: 0, Lab: lang.WriteLab(0, 1)})
	id2, new2 := s.Add("c", id1, explore.Step{Tid: 1, Lab: lang.ReadLab(0, 1)})
	if !new1 || !new2 {
		t.Fatal("fresh states reported as duplicates")
	}
	if _, dup := s.Add("b", id2, explore.Step{}); dup {
		t.Fatal("duplicate state reported as new")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	trace := s.Trace(id2)
	if len(trace) != 2 || trace[0].Tid != 0 || trace[1].Tid != 1 {
		t.Fatalf("trace wrong: %+v", trace)
	}
	if got := s.Trace(root); len(got) != 0 {
		t.Fatalf("root trace should be empty, got %+v", got)
	}
}

func TestQueueFIFO(t *testing.T) {
	var q explore.Queue[int]
	for i := 0; i < 10000; i++ {
		q.Push(int32(i), i*2)
	}
	for i := 0; i < 10000; i++ {
		it, ok := q.Pop()
		if !ok || it.ID != int32(i) || it.St != i*2 {
			t.Fatalf("pop %d: got %+v ok=%v", i, it, ok)
		}
		// Interleave pushes to exercise compaction.
		if i%3 == 0 {
			q.Push(int32(10000+i), i)
		}
	}
	if q.Len() == 0 {
		t.Fatal("interleaved pushes should remain")
	}
	for {
		if _, ok := q.Pop(); !ok {
			break
		}
	}
	if q.Len() != 0 {
		t.Fatalf("drained queue has Len %d", q.Len())
	}
}
