package explore_test

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/lang"
)

func TestStoreTrace(t *testing.T) {
	s := explore.NewStore()
	root := s.Root("a")
	id1, new1 := s.Add("b", root, explore.Step{Tid: 0, Lab: lang.WriteLab(0, 1)})
	id2, new2 := s.Add("c", id1, explore.Step{Tid: 1, Lab: lang.ReadLab(0, 1)})
	if !new1 || !new2 {
		t.Fatal("fresh states reported as duplicates")
	}
	if _, dup := s.Add("b", id2, explore.Step{}); dup {
		t.Fatal("duplicate state reported as new")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	trace := s.Trace(id2)
	if len(trace) != 2 || trace[0].Tid != 0 || trace[1].Tid != 1 {
		t.Fatalf("trace wrong: %+v", trace)
	}
	if got := s.Trace(root); len(got) != 0 {
		t.Fatalf("root trace should be empty, got %+v", got)
	}
}

// TestQueueCompaction drives the queue's head far past the 4096-element
// compaction threshold, with live items on both sides of every compaction
// point, and verifies that FIFO order survives and that the backing array
// actually shrank (compaction is the queue's memory-release fast path and
// was previously untested).
func TestQueueCompaction(t *testing.T) {
	var q explore.Queue[int]
	next := 0   // next value to push
	expect := 0 // next value Pop must return
	push := func(n int) {
		for i := 0; i < n; i++ {
			q.Push(int32(next), next)
			next++
		}
	}
	pop := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			it, ok := q.Pop()
			if !ok {
				t.Fatalf("queue empty at %d", expect)
			}
			if it.ID != int32(expect) || it.St != expect {
				t.Fatalf("pop = (%d, %d), want %d", it.ID, it.St, expect)
			}
			expect++
		}
	}
	// Fill well past the threshold, then drain until head > 4096 and the
	// live count is small enough that head*2 > len fires.
	push(10000)
	pop(9000) // head crosses 4096 and compaction fires at least once
	if q.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", q.Len())
	}
	// Repeat the cycle several times so compaction fires with freshly
	// pushed items following carried-over ones: each round pushes 8000 and
	// drains back down to 500 live.
	for round := 0; round < 5; round++ {
		push(8000)
		pop(q.Len() - 500)
		if q.Len() != 500 {
			t.Fatalf("round %d: Len = %d, want 500", round, q.Len())
		}
	}
	pop(q.Len())
	if _, ok := q.Pop(); ok {
		t.Fatal("drained queue still pops")
	}
	if next != expect {
		t.Fatalf("pushed %d items but popped %d", next, expect)
	}
}

func TestQueueFIFO(t *testing.T) {
	var q explore.Queue[int]
	for i := 0; i < 10000; i++ {
		q.Push(int32(i), i*2)
	}
	for i := 0; i < 10000; i++ {
		it, ok := q.Pop()
		if !ok || it.ID != int32(i) || it.St != i*2 {
			t.Fatalf("pop %d: got %+v ok=%v", i, it, ok)
		}
		// Interleave pushes to exercise compaction.
		if i%3 == 0 {
			q.Push(int32(10000+i), i)
		}
	}
	if q.Len() == 0 {
		t.Fatal("interleaved pushes should remain")
	}
	for {
		if _, ok := q.Pop(); !ok {
			break
		}
	}
	if q.Len() != 0 {
		t.Fatalf("drained queue has Len %d", q.Len())
	}
}
