package explore

import "bytes"

// Store interns canonical state encodings, assigning dense ids and
// recording, for each state, the id of its BFS parent and the step taken
// from it, so a shortest trace to any stored state can be rebuilt.
//
// A store is either exact (keyed by the full encoding) or hash-compacted
// (keyed by a 128-bit Hash128 digest — Spin's hashcompact mode). Hash
// compaction cuts memory roughly 4× on large runs; a hash collision could
// in principle prune a state (probability < n²·2⁻¹²⁸ for n states —
// negligible, but the exact mode is the default and is used by all
// correctness tests).
//
// The exact mode is an open-addressing hash table over keys interned in an
// append-only byte arena: steady-state insertion allocates nothing per
// state (arena blocks, the slot table and the per-id slices all grow
// geometrically), where the previous map[string] representation paid a key
// copy plus bucket churn per state. Interned keys never move, so KeyBytes
// can hand out stable views into the arena — the basis of the exact-mode
// id-only frontier in core.
type Store struct {
	hashed map[[2]uint64]int32 // hash-compact mode; nil in exact mode

	// Exact mode: linear-probing table of (digest, id+1) slots; keys live
	// in the arena, addressed by refs[id].
	arena arena
	refs  []keyRef
	table []slot
	mask  uint64

	parent []int32
	step   []Step
	// sleep holds per-state thread masks for sleep-set exploration
	// (AddBytesSleep); grown lazily, absent entries read as 0 ("no thread
	// asleep", the conservative bottom that never suppresses an edge).
	sleep []uint64
}

// slot is one open-addressing table entry: the key's 64-bit probe digest
// (the first Hash128 lane) and id+1, with 0 marking an empty slot.
type slot struct {
	h  uint64
	id int32
}

// storeMinTable is the initial slot-table size (a power of two).
const storeMinTable = 1 << 10

// NewStore returns an empty exact store.
func NewStore() *Store {
	return &Store{table: make([]slot, storeMinTable), mask: storeMinTable - 1}
}

// NewHashCompactStore returns an empty hash-compacted store.
func NewHashCompactStore() *Store {
	return &Store{hashed: make(map[[2]uint64]int32)}
}

// Root interns the initial state (parent -1).
func (s *Store) Root(key string) int32 {
	id, _ := s.Add(key, -1, Step{})
	return id
}

// Add interns a state encoding. It returns the state's id and whether the
// state was new. Parent and step are recorded only for new states (BFS
// guarantees the first visit is via a shortest path).
func (s *Store) Add(key string, parent int32, step Step) (int32, bool) {
	return s.AddBytes([]byte(key), parent, step)
}

// AddBytes is Add for a byte-slice key (the encoders' native type). The
// key is only copied (into the arena) when the state is new and the store
// is exact, so callers may reuse the backing buffer between calls.
func (s *Store) AddBytes(key []byte, parent int32, step Step) (int32, bool) {
	id, isNew, _ := s.addBytes(key, parent, step, 0, false)
	return id, isNew
}

// AddBytesSleep is AddBytes for sleep-set exploration: sleep is the thread
// mask the arriving edge justifies putting to sleep at the target state. A
// new state stores the mask verbatim; a revisit intersects the stored mask
// with the incoming one (the standard fixpoint discipline for sleep sets
// on non-tree state graphs). shrunk reports that the stored mask strictly
// decreased — the caller must then re-expand the state so transitions no
// longer justified as redundant get explored.
func (s *Store) AddBytesSleep(key []byte, parent int32, step Step, sleep uint64) (id int32, isNew, shrunk bool) {
	return s.addBytes(key, parent, step, sleep, true)
}

func (s *Store) addBytes(key []byte, parent int32, step Step, sleep uint64, useSleep bool) (int32, bool, bool) {
	h := Hash128(key)
	if s.hashed != nil {
		if id, ok := s.hashed[h]; ok {
			return id, false, s.mergeSleep(id, sleep, useSleep)
		}
		id := s.push(parent, step)
		s.setSleep(id, sleep, useSleep)
		s.hashed[h] = id
		return id, true, false
	}
	i := h[0] & s.mask
	for {
		sl := &s.table[i]
		if sl.id == 0 {
			id := s.push(parent, step)
			s.setSleep(id, sleep, useSleep)
			s.refs = append(grown(s.refs), s.arena.intern(key))
			sl.h = h[0]
			sl.id = id + 1
			if uint64(len(s.refs))*4 > (s.mask+1)*3 {
				s.grow()
			}
			return id, true, false
		}
		if sl.h == h[0] && bytes.Equal(s.arena.bytes(s.refs[sl.id-1]), key) {
			id := sl.id - 1
			return id, false, s.mergeSleep(id, sleep, useSleep)
		}
		i = (i + 1) & s.mask
	}
}

// ensureSleep grows the sleep slice to cover ids < n with zero masks.
func (s *Store) ensureSleep(n int) {
	for len(s.sleep) < n {
		s.sleep = append(grown(s.sleep), 0)
	}
}

func (s *Store) setSleep(id int32, sleep uint64, useSleep bool) {
	if !useSleep {
		return
	}
	s.ensureSleep(int(id) + 1)
	s.sleep[id] = sleep
}

func (s *Store) mergeSleep(id int32, sleep uint64, useSleep bool) bool {
	if !useSleep {
		return false
	}
	s.ensureSleep(int(id) + 1)
	old := s.sleep[id]
	if ns := old & sleep; ns != old {
		s.sleep[id] = ns
		return true
	}
	return false
}

// Sleep returns the current sleep mask of state id (0 if never set).
func (s *Store) Sleep(id int32) uint64 {
	if int(id) < len(s.sleep) {
		return s.sleep[id]
	}
	return 0
}

// grow doubles the slot table, reinserting by the cached digests (all keys
// are distinct, so no byte comparisons are needed).
func (s *Store) grow() {
	old := s.table
	s.table = make([]slot, len(old)*2)
	s.mask = uint64(len(s.table) - 1)
	for _, sl := range old {
		if sl.id == 0 {
			continue
		}
		i := sl.h & s.mask
		for s.table[i].id != 0 {
			i = (i + 1) & s.mask
		}
		s.table[i] = sl
	}
}

func (s *Store) push(parent int32, step Step) int32 {
	id := int32(len(s.parent))
	s.parent = append(grown(s.parent), parent)
	s.step = append(grown(s.step), step)
	return id
}

// KeyBytes returns the interned encoding of state id. Exact mode only
// (hash-compacted stores keep no keys). The result aliases the arena: it
// stays valid across later Adds and must not be mutated. This is what lets
// the exact-mode frontier carry bare ids and re-materialize the encoding
// on expansion instead of keeping a copy per queued state.
func (s *Store) KeyBytes(id int32) []byte {
	return s.arena.bytes(s.refs[id])
}

// Len returns the number of stored states.
func (s *Store) Len() int { return len(s.parent) }

// Trace reconstructs the steps from the root to state id.
func (s *Store) Trace(id int32) []Step {
	var rev []Step
	for id >= 0 && s.parent[id] >= 0 {
		rev = append(rev, s.step[id])
		id = s.parent[id]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
