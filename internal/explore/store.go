package explore

// Store interns canonical state encodings, assigning dense ids and
// recording, for each state, the id of its BFS parent and the step taken
// from it, so a shortest trace to any stored state can be rebuilt.
//
// A store is either exact (keyed by the full encoding) or hash-compacted
// (keyed by a 128-bit Hash128 digest — Spin's hashcompact mode). Hash
// compaction cuts memory roughly 4× on large runs; a hash collision could
// in principle prune a state (probability < n²·2⁻¹²⁸ for n states —
// negligible, but the exact mode is the default and is used by all
// correctness tests).
type Store struct {
	exact  map[string]int32
	hashed map[[2]uint64]int32
	parent []int32
	step   []Step
}

// NewStore returns an empty exact store.
func NewStore() *Store {
	return &Store{exact: make(map[string]int32)}
}

// NewHashCompactStore returns an empty hash-compacted store.
func NewHashCompactStore() *Store {
	return &Store{hashed: make(map[[2]uint64]int32)}
}

// Root interns the initial state (parent -1).
func (s *Store) Root(key string) int32 {
	id, _ := s.Add(key, -1, Step{})
	return id
}

// Add interns a state encoding. It returns the state's id and whether the
// state was new. Parent and step are recorded only for new states (BFS
// guarantees the first visit is via a shortest path).
func (s *Store) Add(key string, parent int32, step Step) (int32, bool) {
	if s.exact != nil {
		if id, ok := s.exact[key]; ok {
			return id, false
		}
		id := s.push(parent, step)
		s.exact[key] = id
		return id, true
	}
	return s.addHashed(Hash128([]byte(key)), parent, step)
}

// AddBytes is Add for a byte-slice key (the encoders' native type). The
// key is only copied when the state is new and the store is exact, so
// callers may reuse the backing buffer between calls.
func (s *Store) AddBytes(key []byte, parent int32, step Step) (int32, bool) {
	if s.exact != nil {
		if id, ok := s.exact[string(key)]; ok { // no-alloc map probe
			return id, false
		}
		id := s.push(parent, step)
		s.exact[string(key)] = id
		return id, true
	}
	return s.addHashed(Hash128(key), parent, step)
}

func (s *Store) addHashed(h [2]uint64, parent int32, step Step) (int32, bool) {
	if id, ok := s.hashed[h]; ok {
		return id, false
	}
	id := s.push(parent, step)
	s.hashed[h] = id
	return id, true
}

func (s *Store) push(parent int32, step Step) int32 {
	id := int32(len(s.parent))
	s.parent = append(s.parent, parent)
	s.step = append(s.step, step)
	return id
}

// Len returns the number of stored states.
func (s *Store) Len() int { return len(s.parent) }

// Trace reconstructs the steps from the root to state id.
func (s *Store) Trace(id int32) []Step {
	var rev []Step
	for id >= 0 && s.parent[id] >= 0 {
		rev = append(rev, s.step[id])
		id = s.parent[id]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
