package explore

import (
	"encoding/binary"
	"math/bits"
)

// Hash128 returns a 128-bit hash of b for hash-compact state storage
// (Spin's hashcompact mode): two independently-mixed 64-bit lanes, so the
// collision probability for n distinct states is < n²·2⁻¹²⁸.
//
// The mixer consumes 8 bytes per iteration with one multiply and one
// xor-shift per lane — replacing the byte-at-a-time double-FNV loop that
// cost two multiplies per *byte*. State encodings are tens to hundreds of
// bytes and every explored state is hashed at least once (and once more
// per duplicate arc), so this is directly on the explorer's hot path.
//
// The digests are pinned by TestHash128Pinned: hash-compact visited sets
// and their state counts must stay stable across refactors.
func Hash128(b []byte) [2]uint64 {
	const (
		pr1 = 0x9e3779b185ebca87 // xxhash64 prime 1
		pr2 = 0xc2b2ae3d27d4eb4f // xxhash64 prime 2
	)
	// Folding the length into the seeds makes trailing zero bytes
	// significant even though the tail word is zero-padded.
	h1 := uint64(14695981039346656037) ^ uint64(len(b))*pr1
	h2 := uint64(0x9e3779b97f4a7c15) + uint64(len(b))*pr2
	for len(b) >= 8 {
		w := binary.LittleEndian.Uint64(b)
		b = b[8:]
		h1 = (h1 ^ w) * pr1
		h1 ^= h1 >> 29
		h2 = (h2 ^ bits.RotateLeft64(w, 32)) * pr2
		h2 ^= h2 >> 31
	}
	if len(b) > 0 {
		var w uint64
		for i, c := range b {
			w |= uint64(c) << (8 * uint(i))
		}
		h1 = (h1 ^ w) * pr1
		h1 ^= h1 >> 29
		h2 = (h2 ^ bits.RotateLeft64(w, 32)) * pr2
		h2 ^= h2 >> 31
	}
	return [2]uint64{fmix64(h1), fmix64(h2)}
}

// fmix64 is the splitmix64/murmur3 finalizer: a full-avalanche bijection,
// so the final mix loses no lane entropy.
func fmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
