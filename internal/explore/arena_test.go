package explore_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/explore"
	"repro/internal/lang"
)

// tortureKey builds the i-th torture key: length cycles through a spread
// that includes the empty key, lengths near the arena block size, and
// jumbo keys larger than a block (which get dedicated blocks); the payload
// is a shared prefix plus the index, so keys agree on long prefixes and
// equality checks cannot shortcut on the first byte.
func tortureKey(i int) []byte {
	lengths := []int{0, 1, 7, 31, 100, 1000, 65529, 65536, 70000}
	n := lengths[i%len(lengths)]
	b := make([]byte, n)
	for j := range b {
		b[j] = 0xab
	}
	if n < 4 {
		// Too short for the 4-byte stamp (and only one empty key can
		// exist): fall back to a printed index of the right flavor.
		return []byte(fmt.Sprintf("%d#%d", n, i))
	}
	// Stamp the full index at the tail so every key is distinct.
	for j, k := len(b)-1, uint32(i); j >= len(b)-4; j, k = j-1, k>>8 {
		b[j] = byte(k)
	}
	return b
}

// TestStoreTortureInsertLookup drives the exact store through thousands of
// inserts with hostile key shapes — empty keys, block-boundary lengths,
// jumbo multi-block keys, long shared prefixes — forcing many table grows
// and arena block transitions, then verifies that every id still resolves
// to its exact original bytes and that every re-Add reports a duplicate
// with the original id.
func TestStoreTortureInsertLookup(t *testing.T) {
	s := explore.NewStore()
	const n = 5000
	ids := make([]int32, n)
	for i := 0; i < n; i++ {
		id, isNew := s.AddBytes(tortureKey(i), -1, explore.Step{})
		if !isNew {
			t.Fatalf("key %d reported as duplicate", i)
		}
		ids[i] = id
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := 0; i < n; i++ {
		want := tortureKey(i)
		if got := s.KeyBytes(ids[i]); !bytes.Equal(got, want) {
			t.Fatalf("KeyBytes(%d) corrupted: %d bytes, want %d", ids[i], len(got), len(want))
		}
		id, isNew := s.AddBytes(want, -1, explore.Step{})
		if isNew || id != ids[i] {
			t.Fatalf("re-Add of key %d: got (%d, %v), want (%d, false)", i, id, isNew, ids[i])
		}
	}
}

// TestStoreTraceAcrossArenaGrowth builds a long parent chain whose keys
// are big enough that the chain spans many arena blocks, then checks that
// trace reconstruction still walks the full chain and that keys interned
// before every block transition remained stable (interned bytes must never
// move when the arena grows).
func TestStoreTraceAcrossArenaGrowth(t *testing.T) {
	s := explore.NewStore()
	const depth = 300
	key := func(i int) []byte {
		b := make([]byte, 1024) // ~5 chain links per 64 KiB block
		b[0], b[1] = byte(i), byte(i>>8)
		return b
	}
	parent := int32(-1)
	ids := make([]int32, depth)
	for i := 0; i < depth; i++ {
		id, isNew := s.AddBytes(key(i), parent, explore.Step{Tid: lang.Tid(i % 3), Lab: lang.WriteLab(0, lang.Val(i%4))})
		if !isNew {
			t.Fatalf("chain key %d duplicated", i)
		}
		ids[i] = id
		parent = id
	}
	trace := s.Trace(parent)
	if len(trace) != depth-1 {
		t.Fatalf("trace length = %d, want %d", len(trace), depth-1)
	}
	for i, st := range trace {
		if st.Tid != lang.Tid((i+1)%3) {
			t.Fatalf("trace[%d].Tid = %d, want %d", i, st.Tid, (i+1)%3)
		}
	}
	for i := range ids {
		if !bytes.Equal(s.KeyBytes(ids[i]), key(i)) {
			t.Fatalf("key %d moved or corrupted after arena growth", i)
		}
	}
}

// TestShardedConcurrentIntern hammers a Sharded store from many goroutines
// with overlapping key sets (every key is offered by several goroutines, so
// duplicate detection races against first-insert on every shard), then
// verifies the distinct count and that AppendKey reproduces every key
// byte-for-byte. Run under -race this doubles as the data-race check for
// concurrent arena interning and table growth.
func TestShardedConcurrentIntern(t *testing.T) {
	s := explore.NewSharded(false)
	const (
		workers = 8
		keys    = 3000
	)
	var wg sync.WaitGroup
	idsCh := make(chan map[int]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make(map[int]int64)
			buf := make([]byte, 0, 64)
			// Each worker covers an overlapping window of the key space.
			for i := 0; i < keys; i++ {
				k := (i + w*keys/4) % keys
				key := []byte(fmt.Sprintf("state-%d-%[1]d", k))
				id, _ := s.Add(key, -1, explore.Step{})
				ids[k] = id
				// Read back immediately through the locked re-materializer.
				buf = s.AppendKey(buf[:0], id)
				if !bytes.Equal(buf, key) {
					panic(fmt.Sprintf("AppendKey(%d) = %q, want %q", id, buf, key))
				}
			}
			idsCh <- ids
		}(w)
	}
	wg.Wait()
	close(idsCh)
	if s.Len() != keys {
		t.Fatalf("Len = %d, want %d distinct states", s.Len(), keys)
	}
	// All workers must have observed the same id for the same key.
	ref := make(map[int]int64)
	for ids := range idsCh {
		for k, id := range ids {
			if prev, ok := ref[k]; ok && prev != id {
				t.Fatalf("key %d interned under two ids: %d and %d", k, prev, id)
			}
			ref[k] = id
		}
	}
	buf := make([]byte, 0, 64)
	for k, id := range ref {
		want := []byte(fmt.Sprintf("state-%d-%[1]d", k))
		if buf = s.AppendKey(buf[:0], id); !bytes.Equal(buf, want) {
			t.Fatalf("AppendKey(%d) = %q, want %q", id, buf, want)
		}
	}
}

// TestShardedHashCompactDedup checks the hash-compacted sharded mode still
// deduplicates and counts correctly (it keeps digests, not keys).
func TestShardedHashCompactDedup(t *testing.T) {
	s := explore.NewSharded(true)
	const n = 2000
	ids := make([]int64, n)
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("hc-%d", i))
		id, isNew := s.Add(key, -1, explore.Step{})
		if !isNew {
			t.Fatalf("key %d duplicated", i)
		}
		ids[i] = id
	}
	for i := 0; i < n; i++ {
		id, isNew := s.Add([]byte(fmt.Sprintf("hc-%d", i)), -1, explore.Step{})
		if isNew || id != ids[i] {
			t.Fatalf("re-Add %d: got (%d, %v), want (%d, false)", i, id, isNew, ids[i])
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
}
