// Package explore provides the explicit-state search infrastructure shared
// by the repository's model checkers: visited-state stores with parent
// links for counterexample reconstruction (sequential and sharded/
// concurrent, exact and hash-compacted), a FIFO frontier, and a
// work-sharing parallel search engine. It plays the role Spin plays for
// the paper's Rocker prototype — exhaustive exploration of a finite LTS
// with trace reporting — without Spin's Promela front end, which this
// repository replaces with direct in-process state generation, and with
// Spin's multi-core mode replaced by RunParallel over a Sharded store.
package explore

import "repro/internal/lang"

// Step is one transition of a run: a thread performing a labelled action.
// Internal actions (e.g. TSO flushes) use Internal with a description.
type Step struct {
	Tid      lang.Tid
	Lab      lang.Label
	Internal string // non-empty for internal (non-program) actions
}

// Queue is a FIFO frontier of state payloads of type T paired with their
// store ids.
type Queue[T any] struct {
	items []QItem[T]
	head  int
}

// QItem pairs a payload with its store id.
type QItem[T any] struct {
	ID int32
	St T
}

// Push enqueues a state.
func (q *Queue[T]) Push(id int32, st T) {
	q.items = append(q.items, QItem[T]{id, st})
}

// Pop dequeues the oldest state; ok is false when the queue is empty.
func (q *Queue[T]) Pop() (QItem[T], bool) {
	if q.head >= len(q.items) {
		return QItem[T]{}, false
	}
	it := q.items[q.head]
	var zero T
	q.items[q.head].St = zero // release payload memory early
	q.head++
	if q.head > 4096 && q.head*2 > len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return it, true
}

// Len returns the number of queued states.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }
