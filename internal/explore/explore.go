// Package explore provides the explicit-state search infrastructure shared
// by the repository's model checkers: a visited-state store with parent
// links for counterexample reconstruction, and a FIFO frontier. It plays
// the role Spin plays for the paper's Rocker prototype — exhaustive
// breadth-first exploration of a finite LTS with trace reporting — without
// Spin's Promela front end, which this repository replaces with direct
// in-process state generation.
package explore

import "repro/internal/lang"

// Step is one transition of a run: a thread performing a labelled action.
// Internal actions (e.g. TSO flushes) use Internal with a description.
type Step struct {
	Tid      lang.Tid
	Lab      lang.Label
	Internal string // non-empty for internal (non-program) actions
}

// Store interns canonical state encodings, assigning dense ids and
// recording, for each state, the id of its BFS parent and the step taken
// from it, so a shortest trace to any stored state can be rebuilt.
type Store struct {
	ids    map[string]int32
	parent []int32
	step   []Step
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{ids: make(map[string]int32)}
}

// Root interns the initial state (parent -1).
func (s *Store) Root(key string) int32 {
	id, _ := s.Add(key, -1, Step{})
	return id
}

// Add interns a state encoding. It returns the state's id and whether the
// state was new. Parent and step are recorded only for new states (BFS
// guarantees the first visit is via a shortest path).
func (s *Store) Add(key string, parent int32, step Step) (int32, bool) {
	if id, ok := s.ids[key]; ok {
		return id, false
	}
	id := int32(len(s.parent))
	s.ids[key] = id
	s.parent = append(s.parent, parent)
	s.step = append(s.step, step)
	return id, true
}

// Len returns the number of stored states.
func (s *Store) Len() int { return len(s.parent) }

// Trace reconstructs the steps from the root to state id.
func (s *Store) Trace(id int32) []Step {
	var rev []Step
	for id >= 0 && s.parent[id] >= 0 {
		rev = append(rev, s.step[id])
		id = s.parent[id]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Queue is a FIFO frontier of state payloads of type T paired with their
// store ids.
type Queue[T any] struct {
	items []QItem[T]
	head  int
}

// QItem pairs a payload with its store id.
type QItem[T any] struct {
	ID int32
	St T
}

// Push enqueues a state.
func (q *Queue[T]) Push(id int32, st T) {
	q.items = append(q.items, QItem[T]{id, st})
}

// Pop dequeues the oldest state; ok is false when the queue is empty.
func (q *Queue[T]) Pop() (QItem[T], bool) {
	if q.head >= len(q.items) {
		return QItem[T]{}, false
	}
	it := q.items[q.head]
	var zero T
	q.items[q.head].St = zero // release payload memory early
	q.head++
	if q.head > 4096 && q.head*2 > len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return it, true
}

// Len returns the number of queued states.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }
