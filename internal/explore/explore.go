// Package explore provides the explicit-state search infrastructure shared
// by the repository's model checkers: visited-state stores with parent
// links for counterexample reconstruction (sequential and sharded/
// concurrent, exact and hash-compacted), a FIFO frontier, and a
// work-sharing parallel search engine. It plays the role Spin plays for
// the paper's Rocker prototype — exhaustive exploration of a finite LTS
// with trace reporting — without Spin's Promela front end, which this
// repository replaces with direct in-process state generation, and with
// Spin's multi-core mode replaced by RunParallel over a Sharded store.
package explore

import "repro/internal/lang"

// Internal tags a trace step that is not a program action. It is a one-byte
// enum rather than a description string: a Step is recorded per stored state
// in multi-million-state runs, and the string header tripled its size.
type Internal uint8

const (
	IntNone  Internal = iota
	IntEps            // explicit ε-transition (the ε-granular explorers)
	IntFlush          // TSO store-buffer flush
)

func (k Internal) String() string {
	switch k {
	case IntEps:
		return "eps"
	case IntFlush:
		return "flush"
	}
	return ""
}

// Step is one transition of a run: a thread performing a labelled action.
// Internal actions (e.g. TSO flushes) set Internal to a non-IntNone tag.
//
// Perm, when nonzero, is the packed thread-symmetry permutation the
// partial-order reduction applied when canonicalizing the step's *target*
// state (packed and interpreted by internal/core; 0 = identity, so
// non-reduced explorers never touch it). Trace reconstruction composes
// these per-step permutations to concretize a canonical-quotient trace
// back into a run of the original program.
type Step struct {
	Tid      lang.Tid
	Lab      lang.Label
	Internal Internal
	Perm     uint32
}

// grown returns s with room to append at least one more element, doubling
// the capacity of already-large slices. Plain append's growth factor decays
// toward 1.25× for large slices, which makes the cumulative bytes allocated
// by a growing multi-million-element slice approach 5× its final size;
// doubling keeps the cumulative total within 2×. Used on every per-state
// slice of the stores and the frontier.
func grown[T any](s []T) []T {
	if len(s) == cap(s) && cap(s) >= 1024 {
		ns := make([]T, len(s), 2*cap(s))
		copy(ns, s)
		return ns
	}
	return s
}

// Queue is a FIFO frontier of state payloads of type T paired with their
// store ids.
type Queue[T any] struct {
	items []QItem[T]
	head  int
}

// QItem pairs a payload with its store id.
type QItem[T any] struct {
	ID int32
	St T
}

// Push enqueues a state.
func (q *Queue[T]) Push(id int32, st T) {
	q.items = append(grown(q.items), QItem[T]{id, st})
}

// Pop dequeues the oldest state; ok is false when the queue is empty.
func (q *Queue[T]) Pop() (QItem[T], bool) {
	if q.head >= len(q.items) {
		return QItem[T]{}, false
	}
	it := q.items[q.head]
	var zero T
	q.items[q.head].St = zero // release payload memory early
	q.head++
	if q.head > 4096 && q.head*2 > len(q.items) {
		n := copy(q.items, q.items[q.head:])
		// Zero the vacated tail: after the copy the backing array still
		// holds a second reference to every live payload past n, which
		// would keep large frontiers' payloads reachable until they are
		// overwritten by future pushes (if ever).
		clear(q.items[n:])
		q.items = q.items[:n]
		q.head = 0
	}
	return it, true
}

// Len returns the number of queued states.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }
