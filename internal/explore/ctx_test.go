package explore_test

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/explore"
)

// TestRunParallelOptsCtxBound checks the cooperative cancellation contract
// of RunOpts.Ctx: after the context fires, the engine expands at most
// workers·batchSize further items (each worker finishes its in-flight
// batch and stops). The expansion count is measured by instrumenting
// Expand itself, so the bound covers everything the engine did, not just
// what the visited set retained.
func TestRunParallelOptsCtxBound(t *testing.T) {
	const n = 1 << 21
	const batchSize = 64 // mirrors parallel.go's hand-off unit
	for _, workers := range []int{1, 4, 16} {
		s := explore.NewSharded(false)
		rootID, _ := s.Add(make([]byte, 8), -1, explore.Step{})
		ctx, cancel := context.WithCancel(context.Background())
		var expanded, afterCancel atomic.Int64
		const fireAt = 10_000
		inner := syntheticExpand(s, n)
		expand := func(w int, it explore.Item[int], push func(explore.Item[int])) bool {
			if total := expanded.Add(1); total == fireAt {
				cancel()
			} else if total > fireAt {
				afterCancel.Add(1)
			}
			return inner(w, it, push)
		}
		done := explore.RunParallelOpts(workers, []explore.Item[int]{{ID: rootID, St: 0}}, expand,
			explore.RunOpts{Ctx: ctx})
		cancel()
		if done {
			t.Fatalf("workers=%d: cancelled search reported complete", workers)
		}
		// Each worker may drain the batch it already took when the context
		// fired; nothing beyond that.
		bound := int64(workers * batchSize)
		if got := afterCancel.Load(); got > bound {
			t.Errorf("workers=%d: %d expansions after cancel, bound %d", workers, got, bound)
		}
	}
}

// TestRunParallelOptsProgress checks that the progress hook fires at every
// ProgressEvery boundary (within a batch of slack) with a monotone
// expansion count, and that a nil-ctx run with hooks still completes.
func TestRunParallelOptsProgress(t *testing.T) {
	const n = 50_000
	s := explore.NewSharded(false)
	rootID, _ := s.Add(make([]byte, 8), -1, explore.Step{})
	var calls atomic.Int64
	var last atomic.Int64
	done := explore.RunParallelOpts(4, []explore.Item[int]{{ID: rootID, St: 0}}, syntheticExpand(s, n),
		explore.RunOpts{
			ProgressEvery: 1000,
			Progress: func(expanded int64) {
				calls.Add(1)
				for {
					prev := last.Load()
					if expanded <= prev {
						t.Errorf("progress went backwards: %d after %d", expanded, prev)
						return
					}
					if last.CompareAndSwap(prev, expanded) {
						return
					}
				}
			},
		})
	if !done {
		t.Fatal("search reported cancelled")
	}
	if s.Len() != n {
		t.Errorf("visited %d states, want %d", s.Len(), n)
	}
	// n states expanded, one callback per 1000 crossed (batch granularity
	// can merge crossings, so only a loose lower bound holds).
	if c := calls.Load(); c < 10 {
		t.Errorf("progress called %d times, want >= 10", c)
	}
}

// TestRunParallelOptsPreCanceled checks that a context canceled before the
// run starts stops the engine after at most one batch per worker.
func TestRunParallelOptsPreCanceled(t *testing.T) {
	const n = 1 << 20
	s := explore.NewSharded(false)
	rootID, _ := s.Add(make([]byte, 8), -1, explore.Step{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var expanded atomic.Int64
	inner := syntheticExpand(s, n)
	expand := func(w int, it explore.Item[int], push func(explore.Item[int])) bool {
		expanded.Add(1)
		return inner(w, it, push)
	}
	done := explore.RunParallelOpts(4, []explore.Item[int]{{ID: rootID, St: 0}}, expand,
		explore.RunOpts{Ctx: ctx})
	if done {
		t.Fatal("pre-cancelled search reported complete")
	}
	if got := expanded.Load(); got != 0 {
		t.Errorf("pre-cancelled run expanded %d items, want 0", got)
	}
}
