package explore_test

import (
	"fmt"
	"testing"

	"repro/internal/explore"
)

// TestHash128Pinned pins the Hash128 digests. Hash-compact visited sets
// key on these digests, so a silent change to the mixing scheme would
// change hash-compact state counts (and, across versions, invalidate any
// persisted hashes); this test makes such a change loud.
func TestHash128Pinned(t *testing.T) {
	pinned := []struct {
		in   string
		want [2]uint64
	}{
		{"", [2]uint64{0xf52a15e9a9b5e89b, 0xe220a8397b1dcdaf}},
		{"a", [2]uint64{0x1c78eae69d17263a, 0x57ad1265cf3d8723}},
		{"ab", [2]uint64{0xcec27675934ab532, 0x49191c46c3e415e4}},
		{"abcdefg", [2]uint64{0x330b78e8fe06633f, 0xe299caeb06b56614}},
		{"abcdefgh", [2]uint64{0xc29c095db14fd317, 0xdb7bb745846a6fa4}},
		{"abcdefghi", [2]uint64{0x2f3f37e7b4e2a861, 0xa95653680e6231fd}},
		{"The paper's Figure 7 rows", [2]uint64{0x67a9442e21a93e74, 0x6280f3e3a98e07cf}},
		{"\x00", [2]uint64{0xaeb4d52ec76f044c, 0xbf3f4f385a0166dc}},
		{"\x00\x00", [2]uint64{0xc87b664f9a00e582, 0x9b6a05b3c9289a7e}},
	}
	for _, tc := range pinned {
		if got := explore.Hash128([]byte(tc.in)); got != tc.want {
			t.Errorf("Hash128(%q) = {%#x, %#x}, want {%#x, %#x}",
				tc.in, got[0], got[1], tc.want[0], tc.want[1])
		}
	}
}

// TestHash128Distinct exercises the inputs most likely to collide under a
// sloppy word-at-a-time scheme: trailing zero bytes (the tail word is
// zero-padded), single-byte differences in every word lane, and
// state-encoding-sized buffers differing in one position.
func TestHash128Distinct(t *testing.T) {
	seen := map[[2]uint64]string{}
	add := func(b []byte) {
		h := explore.Hash128(b)
		if prev, ok := seen[h]; ok && prev != string(b) {
			t.Fatalf("collision: %q and %q both hash to {%#x, %#x}", prev, b, h[0], h[1])
		}
		seen[h] = string(b)
	}
	// Zero buffers of every length 0..64: only length distinguishes them.
	for n := 0; n <= 64; n++ {
		add(make([]byte, n))
	}
	// Single set byte at every position and a few values.
	for pos := 0; pos < 40; pos++ {
		for _, v := range []byte{1, 0x80, 0xff} {
			b := make([]byte, 40)
			b[pos] = v
			add(b)
		}
	}
	// All 1- and 2-byte strings over a small alphabet.
	for a := 0; a < 256; a++ {
		add([]byte{byte(a)})
		add([]byte{byte(a), byte(a ^ 0x55)})
	}
}

func BenchmarkHash128(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024} {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(i * 131)
		}
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				explore.Hash128(buf)
			}
		})
	}
}
