package explore_test

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/explore"
	"repro/internal/lang"
)

// TestShardedDedup checks that concurrent Adds of an overlapping key set
// intern each key exactly once, in both exact and hash-compact modes.
func TestShardedDedup(t *testing.T) {
	for _, hc := range []bool{false, true} {
		s := explore.NewSharded(hc)
		const keys, goroutines = 5000, 8
		var added atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				buf := make([]byte, 8)
				for i := 0; i < keys; i++ {
					// Each goroutine visits every key, in a different order.
					k := (i*(g+1) + g) % keys
					binary.LittleEndian.PutUint64(buf, uint64(k))
					if _, isNew := s.Add(buf, -1, explore.Step{}); isNew {
						added.Add(1)
					}
				}
			}(g)
		}
		wg.Wait()
		if s.Len() != keys || added.Load() != keys {
			t.Errorf("hashCompact=%v: Len=%d, isNew count=%d, want %d both",
				hc, s.Len(), added.Load(), keys)
		}
	}
}

// TestShardedTrace interns a chain and checks the parent links rebuild it.
func TestShardedTrace(t *testing.T) {
	s := explore.NewSharded(false)
	id, _ := s.Add([]byte("root"), -1, explore.Step{})
	var steps []explore.Step
	for i := 0; i < 20; i++ {
		st := explore.Step{Tid: lang.Tid(i % 3), Lab: lang.WriteLab(0, lang.Val(i%4))}
		steps = append(steps, st)
		id, _ = s.Add([]byte{byte(i)}, id, st)
	}
	got := s.Trace(id)
	if len(got) != len(steps) {
		t.Fatalf("trace length %d, want %d", len(got), len(steps))
	}
	for i := range steps {
		if got[i] != steps[i] {
			t.Fatalf("trace[%d] = %+v, want %+v", i, got[i], steps[i])
		}
	}
}

// syntheticExpand explores the graph over [0, n): state k has successors
// 2k+1 and 2k+2 (a binary tree with sharing disabled), which every worker
// count must visit exactly once.
func syntheticExpand(s *explore.Sharded, n int) explore.Expand[int] {
	return func(w int, it explore.Item[int], push func(explore.Item[int])) bool {
		for _, succ := range []int{2*it.St + 1, 2*it.St + 2} {
			if succ >= n {
				continue
			}
			var key [8]byte
			binary.LittleEndian.PutUint64(key[:], uint64(succ))
			if id, isNew := s.Add(key[:], it.ID, explore.Step{Tid: lang.Tid(succ % 3)}); isNew {
				push(explore.Item[int]{ID: id, St: succ})
			}
		}
		return true
	}
}

// TestRunParallelVisitsAll checks that the engine expands every reachable
// state exactly once for several worker counts, including counts far above
// GOMAXPROCS.
func TestRunParallelVisitsAll(t *testing.T) {
	const n = 100_000
	for _, workers := range []int{1, 2, 4, 16} {
		s := explore.NewSharded(false)
		rootID, _ := s.Add(make([]byte, 8), -1, explore.Step{}) // key of state 0
		done := explore.RunParallel(workers, []explore.Item[int]{{ID: rootID, St: 0}}, syntheticExpand(s, n))
		if !done {
			t.Fatalf("workers=%d: search reported cancelled", workers)
		}
		if s.Len() != n {
			t.Errorf("workers=%d: visited %d states, want %d", workers, s.Len(), n)
		}
	}
}

// TestRunParallelCancel checks cooperative cancellation: once any Expand
// returns false, the search stops without deadlocking and reports it.
func TestRunParallelCancel(t *testing.T) {
	const n = 1 << 20
	for _, workers := range []int{1, 4} {
		s := explore.NewSharded(false)
		rootID, _ := s.Add(make([]byte, 8), -1, explore.Step{}) // key of state 0
		inner := syntheticExpand(s, n)
		expand := func(w int, it explore.Item[int], push func(explore.Item[int])) bool {
			if it.St == 4097 { // deep enough that real work precedes it
				return false
			}
			return inner(w, it, push)
		}
		done := explore.RunParallel(workers, []explore.Item[int]{{ID: rootID, St: 0}}, expand)
		if done {
			t.Fatalf("workers=%d: cancelled search reported complete", workers)
		}
		if s.Len() >= n {
			t.Errorf("workers=%d: cancellation did not cut the search (visited %d)", workers, s.Len())
		}
	}
}

// TestRunParallelTraceValid checks that on a cancelled parallel run the
// parent links of the state that triggered cancellation rebuild a valid
// path: every step's state was interned before its child (ids decrease
// along no axis we can observe here, so validity is checked structurally
// by re-walking the tree edges).
func TestRunParallelTraceValid(t *testing.T) {
	const n, target = 1 << 18, 100_003
	s := explore.NewSharded(false)
	rootID, _ := s.Add(make([]byte, 8), -1, explore.Step{}) // key of state 0
	var foundID atomic.Int64
	foundID.Store(-1)
	inner := func(w int, it explore.Item[int], push func(explore.Item[int])) bool {
		for _, succ := range []int{2*it.St + 1, 2*it.St + 2} {
			if succ >= n {
				continue
			}
			var key [8]byte
			binary.LittleEndian.PutUint64(key[:], uint64(succ))
			// Record the tree edge in the step's byte-sized fields (child
			// index split across Tid/VR/VW) so the trace can be replayed.
			st := explore.Step{
				Tid: lang.Tid(succ),
				Lab: lang.Label{VR: lang.Val(succ >> 8), VW: lang.Val(succ >> 16)},
			}
			if id, isNew := s.Add(key[:], it.ID, st); isNew {
				if succ == target {
					foundID.Store(id)
					return false
				}
				push(explore.Item[int]{ID: id, St: succ})
			}
		}
		return true
	}
	explore.RunParallel(4, []explore.Item[int]{{ID: rootID, St: 0}}, inner)
	id := foundID.Load()
	if id < 0 {
		t.Fatal("target state never interned")
	}
	trace := s.Trace(id)
	if len(trace) == 0 {
		t.Fatal("empty trace to target")
	}
	// Replay: each step's recorded child must be a tree successor of the
	// current node, ending at target.
	cur := 0
	for i, st := range trace {
		child := int(st.Tid) | int(st.Lab.VR)<<8 | int(st.Lab.VW)<<16
		if child != 2*cur+1 && child != 2*cur+2 {
			t.Fatalf("trace step %d: %d is not a successor of %d", i, child, cur)
		}
		cur = child
	}
	if cur != target {
		t.Fatalf("trace ends at %d, want %d", cur, target)
	}
}
