package staterobust_test

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/memsc"
	"repro/internal/prog"
	"repro/internal/staterobust"
)

// eagerClosedSC explores the program under SC with the verifier's
// ε-compression (each thread runs its deterministic local instructions
// eagerly to the next memory operation), collecting raw program-state
// keys. All its states are "closed".
func eagerClosedSC(t *testing.T, program *lang.Program) map[string]struct{} {
	t.Helper()
	p := prog.New(program)
	type node struct {
		ps prog.State
		m  memsc.Memory
	}
	ps0, fail := p.InitState()
	if fail != nil {
		t.Fatalf("assert failed during init closure")
	}
	seen := map[string]struct{}{}
	reach := map[string]struct{}{}
	var stack []node
	push := func(ps prog.State, m memsc.Memory) {
		k := p.StateKeyRaw(ps) + "\x00" + string(m.Encode(nil))
		if _, ok := seen[k]; ok {
			return
		}
		seen[k] = struct{}{}
		reach[p.StateKeyRaw(ps)] = struct{}{}
		stack = append(stack, node{ps, m})
	}
	push(ps0, memsc.New(program.NumLocs()))
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ops := p.Ops(n.ps)
		for ti := range ops {
			if ops[ti].Kind == prog.OpNone {
				continue
			}
			label, enabled := prog.SCLabel(ops[ti], n.m[ops[ti].Loc], program.ValCount)
			if !enabled {
				continue
			}
			nextTS, afail := p.Threads[ti].Apply(n.ps.Threads[ti], label)
			if afail != nil {
				continue
			}
			nextPS := n.ps.Clone()
			nextPS.Threads[ti] = nextTS
			nextM := n.m.Clone()
			nextM.Step(label)
			push(nextPS, nextM)
		}
	}
	return reach
}

// granularClosedSC runs the ε-granular SC explorer and projects its state
// set onto the closed states (every thread at a memory instruction or
// terminated).
func granularClosedSC(t *testing.T, program *lang.Program) map[string]struct{} {
	t.Helper()
	all, err := staterobust.ReachableSC(program, staterobust.Limits{MaxStates: 10_000_000})
	if err != nil {
		t.Fatalf("ReachableSC: %v", err)
	}
	p := prog.New(program)
	closed := map[string]struct{}{}
	st := p.InitStateRaw()
	for key := range all {
		p.DecodeState([]byte(key), st)
		ok := true
		for ti := range p.Threads {
			th := &p.Threads[ti]
			if !th.Terminated(st.Threads[ti]) && th.AtEps(st.Threads[ti]) {
				ok = false
				break
			}
		}
		if ok {
			closed[key] = struct{}{}
		}
	}
	return closed
}

// TestEpsCompressionSound validates the verifier's ε-step compression
// (DESIGN.md): the ε-compressed SC exploration reaches exactly the closed
// states of the fully interleaved ε-granular exploration. (Partial states
// are deterministic local continuations of closed ones, so agreement on
// closed states implies agreement on everything the robustness checks
// observe.)
func TestEpsCompressionSound(t *testing.T) {
	for _, name := range []string{"SB", "MP", "IRIW", "2RMW", "barrier", "peterson-sc", "dekker-sc", "BAR-loop", "spinlock"} {
		name := name
		t.Run(name, func(t *testing.T) {
			e, err := litmus.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			program := e.Program()
			eager := eagerClosedSC(t, program)
			granular := granularClosedSC(t, program)
			for k := range eager {
				if _, ok := granular[k]; !ok {
					t.Fatalf("eager explorer reached a state the granular one did not")
				}
			}
			for k := range granular {
				if _, ok := eager[k]; !ok {
					t.Fatalf("granular closed state missed by the eager explorer")
				}
			}
		})
	}
}
