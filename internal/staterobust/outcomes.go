package staterobust

import (
	"repro/internal/lang"
	"repro/internal/memra"
	"repro/internal/prog"
)

// Outcome is one final (all threads terminated) program state, as the
// per-thread register files.
type Outcome struct {
	Regs [][]lang.Val
}

// FinalOutcomes explores the program to completion under the given model
// ("ra", "sra" or "sc") and returns the distinct final program states.
// Intended for terminating (litmus-style) programs; the exploration is
// bounded by lim. It reuses the ε-granular explorers and keeps only
// states where every thread has terminated.
func FinalOutcomes(program *lang.Program, model string, lim Limits) ([]Outcome, error) {
	p := prog.New(program)
	finals := map[string]struct{}{}
	record := func(ps prog.State) {
		for i := range p.Threads {
			if !p.Threads[i].Terminated(ps.Threads[i]) {
				return
			}
		}
		finals[p.StateKeyRaw(ps)] = struct{}{}
	}
	var err error
	switch model {
	case "sc":
		var set map[string]struct{}
		set, err = ReachableSC(program, lim)
		if err == nil {
			st := p.InitStateRaw()
			for key := range set {
				p.DecodeState([]byte(key), st)
				record(st)
			}
		}
	case "ra", "sra":
		err = exploreWeakRA(program, lim, model == "sra", record)
	default:
		return nil, errUnknownModel(model)
	}
	if err != nil {
		return nil, err
	}
	var out []Outcome
	st := p.InitStateRaw()
	for key := range finals {
		p.DecodeState([]byte(key), st)
		o := Outcome{Regs: make([][]lang.Val, len(st.Threads))}
		for i := range st.Threads {
			o.Regs[i] = append([]lang.Val(nil), st.Threads[i].Regs...)
		}
		out = append(out, o)
	}
	return out, nil
}

type errUnknownModel string

func (e errUnknownModel) Error() string { return "staterobust: unknown model " + string(e) }

// exploreWeakRA enumerates every reachable state of the program under the
// (S)RA timestamp machine, invoking visit on each program state.
func exploreWeakRA(program *lang.Program, lim Limits, sra bool, visit func(prog.State)) error {
	p := prog.New(program)
	headroom := RAHeadroom(program, lim)
	gapCap := headroom + 1
	type node struct {
		ps prog.State
		m  *memra.State
	}
	seen := map[string]struct{}{}
	var stack []node
	var buf []byte
	push := func(ps prog.State, m *memra.State) {
		m.Canonicalize(gapCap)
		buf = buf[:0]
		buf = p.EncodeStateRaw(buf, ps)
		buf = m.Encode(buf)
		if _, ok := seen[string(buf)]; ok {
			return
		}
		seen[string(buf)] = struct{}{}
		visit(ps)
		stack = append(stack, node{ps, m})
	}
	push(p.InitStateRaw(), memra.New(program.NumLocs(), program.NumThreads()))
	for len(stack) > 0 {
		if len(seen) > lim.maxStates() {
			return ErrBound
		}
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for t := range p.Threads {
			th := &p.Threads[t]
			ts := n.ps.Threads[t]
			tid := lang.Tid(t)
			if th.Terminated(ts) {
				continue
			}
			if th.AtEps(ts) {
				nextTS, afail := th.StepEps(ts)
				if afail != nil {
					continue
				}
				nextPS := n.ps.Clone()
				nextPS.Threads[t] = nextTS
				push(nextPS, n.m.Clone())
				continue
			}
			op := th.Op(ts)
			step := func(label lang.Label, nextM *memra.State) {
				nextPS := n.ps.Clone()
				nextPS.Threads[t] = th.ApplyRaw(ts, label)
				push(nextPS, nextM)
			}
			switch op.Kind {
			case prog.OpWrite:
				slots := n.m.WriteSlots(tid, op.Loc, headroom)
				if sra {
					slots = []memra.Time{n.m.WriteSlotSRA(op.Loc)}
				}
				for _, slot := range slots {
					nextM := n.m.Clone()
					nextM.Write(tid, op.Loc, op.WVal, slot)
					step(lang.WriteLab(op.Loc, op.WVal), nextM)
				}
			case prog.OpRead, prog.OpWait:
				for _, msg := range n.m.ReadCandidates(tid, op.Loc) {
					if op.Kind == prog.OpWait && msg.Val != op.WVal {
						continue
					}
					nextM := n.m.Clone()
					nextM.Read(tid, msg)
					step(lang.ReadLab(op.Loc, msg.Val), nextM)
				}
			case prog.OpFADD, prog.OpXCHG, prog.OpCAS, prog.OpBCAS:
				cands := n.m.RMWCandidates(tid, op.Loc)
				if sra {
					cands = n.m.RMWCandidatesSRA(tid, op.Loc)
				}
				for _, msg := range cands {
					var vW lang.Val
					switch op.Kind {
					case prog.OpFADD:
						vW = lang.Val((int(msg.Val) + int(op.Add)) % program.ValCount)
					case prog.OpXCHG:
						vW = op.New
					default:
						if msg.Val != op.Exp {
							continue
						}
						vW = op.New
					}
					nextM := n.m.Clone()
					nextM.RMW(tid, msg, vW)
					step(lang.RMWLab(op.Loc, msg.Val, vW), nextM)
				}
				if op.Kind == prog.OpCAS {
					for _, msg := range n.m.ReadCandidates(tid, op.Loc) {
						if msg.Val == op.Exp {
							continue
						}
						nextM := n.m.Clone()
						nextM.Read(tid, msg)
						step(lang.ReadLab(op.Loc, msg.Val), nextM)
					}
				}
			}
		}
	}
	return nil
}
