package staterobust_test

import (
	"testing"

	"repro/internal/litmus"
	"repro/internal/staterobust"
)

// TestTSOVerdicts checks the TSO state-robustness baseline (the
// repository's stand-in for the Trencher column of Figure 7) against the
// expected verdicts: the paper's Trencher results, with the four ✗⋆ rows
// (spurious, caused by Trencher's lack of blocking instructions) replaced
// by the semantic verdict — robust — as the paper argues they should be.
func TestTSOVerdicts(t *testing.T) {
	for _, e := range litmus.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			if e.Big || e.Name == "nbw-w-lr-rl" {
				// nbw-w-lr-rl: the ε-granular TSO product of one writer
				// and three retry-loop readers exceeds 30M states; its
				// seqlock sibling covers the same protocol shape.
				t.Skip("state space too large for the TSO product explorer")
			}
			if testing.Short() && (e.Name == "rcu" || e.Name == "rcu-offline" || e.Name == "seqlock" || e.Name == "nbw-w-lr-rl" || e.Name == "lamport2-ra") {
				t.Skip("slow TSO product; skipped in -short")
			}
			t.Parallel()
			p := e.Program()
			res, err := staterobust.CheckTSO(p, staterobust.Limits{MaxStates: 30_000_000, TSOBufCap: 4})
			if err != nil {
				t.Fatalf("CheckTSO: %v", err)
			}
			if res.Robust != e.RobustTSO {
				t.Errorf("got TSO-robust=%v, want %v (SC states %d, weak states %d)",
					res.Robust, e.RobustTSO, res.SCStates, res.WeakStates)
			}
		})
	}
}
