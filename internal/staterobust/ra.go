package staterobust

import (
	"runtime"
	"sync"

	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/memra"
	"repro/internal/prog"
)

// RAHeadroom derives the default write-slot headroom for the RA/SRA
// machines (exported for the internal/model adapters, which must
// enumerate exactly checkWeakRA's candidates): one more than the
// number of write instructions in the program (every write instruction can
// execute at most once per... conservatively, this is exact for programs
// whose runs perform at most that many writes per location; for loopy
// programs the exploration is additionally guarded by the state bound).
func RAHeadroom(program *lang.Program, lim Limits) int {
	if lim.RAHeadroom > 0 {
		return lim.RAHeadroom
	}
	n := 2
	for ti := range program.Threads {
		for ii := range program.Threads[ti].Insts {
			switch program.Threads[ti].Insts[ii].Kind {
			case lang.IWrite, lang.IFADD, lang.ICAS, lang.IBCAS, lang.IXCHG:
				n++
			}
		}
	}
	if n > 12 {
		n = 12 // keep branching bounded; the state bound guards precision
	}
	return n
}

// CheckRA decides state robustness of the program against RA by exploring
// the product of the program with the §3 timestamp machine
// (timestamp-canonicalized, see memra). Intended for litmus-sized
// programs: it exists to cross-validate the SCM-based decision procedure,
// not to replace it — that reversal of roles is exactly the paper's point
// (the RA machine is infinite-state in general; SCM is finite always).
func CheckRA(program *lang.Program, lim Limits) (*Result, error) {
	return checkWeakRA(program, lim, false)
}

// CheckSRA is CheckRA for the SRA model (writes and RMW-writes must pick
// globally maximal timestamps; see memra.WriteSlotSRA). SRA sits between
// RA and SC: per the paper's Example 3.4, 2+2W is robust against SRA but
// not against RA.
func CheckSRA(program *lang.Program, lim Limits) (*Result, error) {
	return checkWeakRA(program, lim, true)
}

// raScratch is the per-worker expansion state of checkWeakRA: the encode
// buffer, candidate/slot buffers for the memra Append* enumerators, and
// free lists of product states. Successor states are drawn from the pools
// (CopyFrom into recycled storage) instead of cloned, and return to the
// expanding worker's pool when the store reports a duplicate or when their
// node has been fully expanded; a state pushed by one worker and expanded
// by another simply migrates pools, with the engine's batch hand-off lock
// providing the happens-before edge.
type raScratch struct {
	buf    []byte
	cands  []memra.Msg
	slots  []memra.Time
	psPool []prog.State
	mPool  []*memra.State
}

func (ws *raScratch) takePS(from prog.State) prog.State {
	if n := len(ws.psPool); n > 0 {
		ps := ws.psPool[n-1]
		ws.psPool = ws.psPool[:n-1]
		ps.CopyFrom(from)
		return ps
	}
	return from.Clone()
}

func (ws *raScratch) takeM(from *memra.State) *memra.State {
	if n := len(ws.mPool); n > 0 {
		m := ws.mPool[n-1]
		ws.mPool = ws.mPool[:n-1]
		m.CopyFrom(from)
		return m
	}
	return from.Clone()
}

// checkWeakRA runs on the shared parallel engine (explore.RunParallel over
// an explore.Sharded visited set): frontier items carry the decoded
// product state ⟨program state, RA memory⟩, workers share the read-only
// compiled program and SC-reachable set, and the weak program-state set is
// the only mutable shared structure beyond the store (a mutex-guarded map;
// it is touched once per new compound state, so contention is off the
// expansion hot path).
func checkWeakRA(program *lang.Program, lim Limits, sra bool) (*Result, error) {
	scSet, err := ReachableSC(program, lim)
	if err != nil {
		return nil, err
	}
	p := prog.New(program)
	res := &Result{Robust: true, SCStates: len(scSet)}
	headroom := RAHeadroom(program, lim)
	gapCap := headroom + 1

	type node struct {
		ps prog.State
		m  *memra.State
	}
	workers := lim.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	store := explore.NewSharded(false)
	scratches := make([]*raScratch, workers)
	for w := range scratches {
		scratches[w] = &raScratch{buf: make([]byte, 0, 64)}
	}
	key := func(ws *raScratch, ps prog.State, m *memra.State) []byte {
		buf := ws.buf[:0]
		buf = p.EncodeStateRaw(buf, ps)
		buf = m.Encode(buf)
		ws.buf = buf
		return buf
	}

	var (
		mu        sync.Mutex
		weak      = map[string]struct{}{}
		witnessID = int64(-1)
		bound     bool
		sy        = lim.symmetry(p)
		symBuf    []byte
	)
	// check records the program state of a newly interned compound state
	// and reports whether it witnesses non-robustness (reachable weakly
	// but not under SC). The symmetry canonicalizer's scratch is shared, so
	// with Reduce the projection key is built under the mutex.
	check := func(id int64, ps prog.State) bool {
		var pk string
		if sy == nil {
			pk = p.StateKeyRaw(ps)
		}
		mu.Lock()
		defer mu.Unlock()
		if sy != nil {
			symBuf = p.EncodeStateRaw(symBuf[:0], ps)
			pk = string(sy.CanonRaw(symBuf))
		}
		if _, ok := weak[pk]; ok {
			return false
		}
		weak[pk] = struct{}{}
		if _, ok := scSet[pk]; !ok {
			if witnessID < 0 {
				witnessID = id
			}
			return true
		}
		return false
	}

	ps0 := p.InitStateRaw()
	m0 := memra.New(program.NumLocs(), program.NumThreads())
	rootID, _ := store.Add(key(scratches[0], ps0, m0), -1, explore.Step{})
	if check(rootID, ps0) {
		res.Robust = false
		res.WitnessTrace = store.Trace(rootID)
		res.Explored = store.Len()
		res.WeakStates = len(weak)
		return res, nil
	}

	expand := func(w int, it explore.Item[node], push func(explore.Item[node])) bool {
		if store.Len() > lim.maxStates() {
			mu.Lock()
			bound = true
			mu.Unlock()
			return false
		}
		ws := scratches[w]
		n := it.St
		// emit interns one successor reached by a program step with the
		// given label and RA memory effect (already performed on nextM, a
		// pooled state owned by this call); it reports whether the
		// successor witnesses non-robustness. Duplicates return nextM (and
		// the pooled program state) to the worker's free lists.
		emit := func(t int, label lang.Label, nextM *memra.State) bool {
			nextPS := ws.takePS(n.ps)
			p.Threads[t].ApplyRawInto(n.ps.Threads[t], label, &nextPS.Threads[t])
			nextM.Canonicalize(gapCap)
			id, isNew := store.Add(key(ws, nextPS, nextM), it.ID, explore.Step{Tid: lang.Tid(t), Lab: label})
			if !isNew {
				ws.psPool = append(ws.psPool, nextPS)
				ws.mPool = append(ws.mPool, nextM)
				return false
			}
			if check(id, nextPS) {
				return true
			}
			push(explore.Item[node]{ID: id, St: node{nextPS, nextM}})
			return false
		}
		for t := range p.Threads {
			th := &p.Threads[t]
			ts := n.ps.Threads[t]
			tid := lang.Tid(t)
			if th.Terminated(ts) {
				continue
			}
			if th.AtEps(ts) {
				nextPS := ws.takePS(n.ps)
				if afail := th.StepEpsInto(ts, &nextPS.Threads[t]); afail != nil {
					ws.psPool = append(ws.psPool, nextPS)
					continue
				}
				id, isNew := store.Add(key(ws, nextPS, n.m), it.ID,
					explore.Step{Tid: tid, Internal: explore.IntEps})
				if !isNew {
					ws.psPool = append(ws.psPool, nextPS)
					continue
				}
				if check(id, nextPS) {
					return false
				}
				push(explore.Item[node]{ID: id, St: node{nextPS, ws.takeM(n.m)}})
				continue
			}
			op := th.Op(ts)
			switch op.Kind {
			case prog.OpWrite:
				if sra {
					ws.slots = append(ws.slots[:0], n.m.WriteSlotSRA(op.Loc))
				} else {
					ws.slots = n.m.AppendWriteSlots(ws.slots[:0], tid, op.Loc, headroom)
				}
				for _, slot := range ws.slots {
					nextM := ws.takeM(n.m)
					nextM.Write(tid, op.Loc, op.WVal, slot)
					if emit(t, lang.WriteLab(op.Loc, op.WVal), nextM) {
						return false
					}
				}
			case prog.OpRead, prog.OpWait:
				ws.cands = n.m.AppendReadCandidates(ws.cands[:0], tid, op.Loc)
				for _, msg := range ws.cands {
					if op.Kind == prog.OpWait && msg.Val != op.WVal {
						continue
					}
					nextM := ws.takeM(n.m)
					nextM.Read(tid, msg)
					if emit(t, lang.ReadLab(op.Loc, msg.Val), nextM) {
						return false
					}
				}
			case prog.OpFADD, prog.OpXCHG, prog.OpCAS, prog.OpBCAS:
				if sra {
					ws.cands = n.m.AppendRMWCandidatesSRA(ws.cands[:0], tid, op.Loc)
				} else {
					ws.cands = n.m.AppendRMWCandidates(ws.cands[:0], tid, op.Loc)
				}
				for _, msg := range ws.cands {
					var vW lang.Val
					switch op.Kind {
					case prog.OpFADD:
						vW = lang.Val((int(msg.Val) + int(op.Add)) % program.ValCount)
					case prog.OpXCHG:
						vW = op.New
					case prog.OpCAS, prog.OpBCAS:
						if msg.Val != op.Exp {
							continue // handled as plain read below for CAS
						}
						vW = op.New
					}
					nextM := ws.takeM(n.m)
					nextM.RMW(tid, msg, vW)
					if emit(t, lang.RMWLab(op.Loc, msg.Val, vW), nextM) {
						return false
					}
				}
				if op.Kind == prog.OpCAS {
					// Failed CAS: a plain read of any value ≠ Exp
					// (Figure 2). Unlike the RMW case, any readable
					// message qualifies.
					ws.cands = n.m.AppendReadCandidates(ws.cands[:0], tid, op.Loc)
					for _, msg := range ws.cands {
						if msg.Val == op.Exp {
							continue
						}
						nextM := ws.takeM(n.m)
						nextM.Read(tid, msg)
						if emit(t, lang.ReadLab(op.Loc, msg.Val), nextM) {
							return false
						}
					}
				}
			}
		}
		// The node is fully expanded; its states feed the free lists.
		ws.psPool = append(ws.psPool, n.ps)
		ws.mPool = append(ws.mPool, n.m)
		return true
	}

	ro := explore.RunOpts{Ctx: lim.Ctx, ProgressEvery: progressEvery}
	if lim.Progress != nil {
		ro.Progress = func(int64) { lim.Progress(store.Len()) }
	}
	explore.RunParallelOpts(workers, []explore.Item[node]{{ID: rootID, St: node{ps0, m0}}}, expand, ro)
	if lim.ctxDone() {
		return nil, lim.canceled()
	}
	res.Explored = store.Len()
	res.WeakStates = len(weak)
	if bound {
		return nil, ErrBound
	}
	if witnessID >= 0 {
		res.Robust = false
		res.WitnessTrace = store.Trace(witnessID)
	}
	return res, nil
}
