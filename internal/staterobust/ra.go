package staterobust

import (
	"runtime"
	"sync"

	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/memra"
	"repro/internal/prog"
)

// raHeadroom derives the default write-slot headroom: one more than the
// number of write instructions in the program (every write instruction can
// execute at most once per... conservatively, this is exact for programs
// whose runs perform at most that many writes per location; for loopy
// programs the exploration is additionally guarded by the state bound).
func raHeadroom(program *lang.Program, lim Limits) int {
	if lim.RAHeadroom > 0 {
		return lim.RAHeadroom
	}
	n := 2
	for ti := range program.Threads {
		for ii := range program.Threads[ti].Insts {
			switch program.Threads[ti].Insts[ii].Kind {
			case lang.IWrite, lang.IFADD, lang.ICAS, lang.IBCAS, lang.IXCHG:
				n++
			}
		}
	}
	if n > 12 {
		n = 12 // keep branching bounded; the state bound guards precision
	}
	return n
}

// CheckRA decides state robustness of the program against RA by exploring
// the product of the program with the §3 timestamp machine
// (timestamp-canonicalized, see memra). Intended for litmus-sized
// programs: it exists to cross-validate the SCM-based decision procedure,
// not to replace it — that reversal of roles is exactly the paper's point
// (the RA machine is infinite-state in general; SCM is finite always).
func CheckRA(program *lang.Program, lim Limits) (*Result, error) {
	return checkWeakRA(program, lim, false)
}

// CheckSRA is CheckRA for the SRA model (writes and RMW-writes must pick
// globally maximal timestamps; see memra.WriteSlotSRA). SRA sits between
// RA and SC: per the paper's Example 3.4, 2+2W is robust against SRA but
// not against RA.
func CheckSRA(program *lang.Program, lim Limits) (*Result, error) {
	return checkWeakRA(program, lim, true)
}

// checkWeakRA runs on the shared parallel engine (explore.RunParallel over
// an explore.Sharded visited set): frontier items carry the decoded
// product state ⟨program state, RA memory⟩, workers share the read-only
// compiled program and SC-reachable set, and the weak program-state set is
// the only mutable shared structure beyond the store (a mutex-guarded map;
// it is touched once per new compound state, so contention is off the
// expansion hot path).
func checkWeakRA(program *lang.Program, lim Limits, sra bool) (*Result, error) {
	scSet, err := ReachableSC(program, lim)
	if err != nil {
		return nil, err
	}
	p := prog.New(program)
	res := &Result{Robust: true, SCStates: len(scSet)}
	headroom := raHeadroom(program, lim)
	gapCap := headroom + 1

	type node struct {
		ps prog.State
		m  *memra.State
	}
	workers := lim.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	store := explore.NewSharded(false)
	bufs := make([][]byte, workers)
	key := func(w int, ps prog.State, m *memra.State) []byte {
		buf := bufs[w][:0]
		buf = p.EncodeStateRaw(buf, ps)
		buf = m.Encode(buf)
		bufs[w] = buf
		return buf
	}

	var (
		mu        sync.Mutex
		weak      = map[string]struct{}{}
		witnessID = int64(-1)
		bound     bool
	)
	// check records the program state of a newly interned compound state
	// and reports whether it witnesses non-robustness (reachable weakly
	// but not under SC).
	check := func(id int64, ps prog.State) bool {
		pk := p.StateKeyRaw(ps)
		mu.Lock()
		defer mu.Unlock()
		if _, ok := weak[pk]; ok {
			return false
		}
		weak[pk] = struct{}{}
		if _, ok := scSet[pk]; !ok {
			if witnessID < 0 {
				witnessID = id
			}
			return true
		}
		return false
	}

	ps0 := p.InitStateRaw()
	m0 := memra.New(program.NumLocs(), program.NumThreads())
	for w := range bufs {
		bufs[w] = make([]byte, 0, 64)
	}
	rootID, _ := store.Add(key(0, ps0, m0), -1, explore.Step{})
	if check(rootID, ps0) {
		res.Robust = false
		res.WitnessTrace = store.Trace(rootID)
		res.Explored = store.Len()
		res.WeakStates = len(weak)
		return res, nil
	}

	expand := func(w int, it explore.Item[node], push func(explore.Item[node])) bool {
		if store.Len() > lim.maxStates() {
			mu.Lock()
			bound = true
			mu.Unlock()
			return false
		}
		n := it.St
		// emit interns one successor reached by a program step with the
		// given label and RA memory effect (already performed on nextM);
		// it reports whether the successor witnesses non-robustness.
		emit := func(t int, label lang.Label, nextM *memra.State) bool {
			nextPS := n.ps.Clone()
			nextPS.Threads[t] = p.Threads[t].ApplyRaw(n.ps.Threads[t], label)
			nextM.Canonicalize(gapCap)
			id, isNew := store.Add(key(w, nextPS, nextM), it.ID, explore.Step{Tid: lang.Tid(t), Lab: label})
			if isNew {
				if check(id, nextPS) {
					return true
				}
				push(explore.Item[node]{ID: id, St: node{nextPS, nextM}})
			}
			return false
		}
		for t := range p.Threads {
			th := &p.Threads[t]
			ts := n.ps.Threads[t]
			tid := lang.Tid(t)
			if th.Terminated(ts) {
				continue
			}
			if th.AtEps(ts) {
				nextTS, afail := th.StepEps(ts)
				if afail != nil {
					continue
				}
				nextPS := n.ps.Clone()
				nextPS.Threads[t] = nextTS
				id, isNew := store.Add(key(w, nextPS, n.m), it.ID,
					explore.Step{Tid: tid, Internal: "eps"})
				if isNew {
					if check(id, nextPS) {
						return false
					}
					push(explore.Item[node]{ID: id, St: node{nextPS, n.m.Clone()}})
				}
				continue
			}
			op := th.Op(ts)
			switch op.Kind {
			case prog.OpWrite:
				slots := n.m.WriteSlots(tid, op.Loc, headroom)
				if sra {
					slots = []memra.Time{n.m.WriteSlotSRA(op.Loc)}
				}
				for _, slot := range slots {
					nextM := n.m.Clone()
					nextM.Write(tid, op.Loc, op.WVal, slot)
					if emit(t, lang.WriteLab(op.Loc, op.WVal), nextM) {
						return false
					}
				}
			case prog.OpRead, prog.OpWait:
				for _, msg := range n.m.ReadCandidates(tid, op.Loc) {
					if op.Kind == prog.OpWait && msg.Val != op.WVal {
						continue
					}
					nextM := n.m.Clone()
					nextM.Read(tid, msg)
					if emit(t, lang.ReadLab(op.Loc, msg.Val), nextM) {
						return false
					}
				}
			case prog.OpFADD, prog.OpXCHG, prog.OpCAS, prog.OpBCAS:
				rmwCands := n.m.RMWCandidates(tid, op.Loc)
				if sra {
					rmwCands = n.m.RMWCandidatesSRA(tid, op.Loc)
				}
				for _, msg := range rmwCands {
					var vW lang.Val
					switch op.Kind {
					case prog.OpFADD:
						vW = lang.Val((int(msg.Val) + int(op.Add)) % program.ValCount)
					case prog.OpXCHG:
						vW = op.New
					case prog.OpCAS, prog.OpBCAS:
						if msg.Val != op.Exp {
							continue // handled as plain read below for CAS
						}
						vW = op.New
					}
					nextM := n.m.Clone()
					nextM.RMW(tid, msg, vW)
					if emit(t, lang.RMWLab(op.Loc, msg.Val, vW), nextM) {
						return false
					}
				}
				if op.Kind == prog.OpCAS {
					// Failed CAS: a plain read of any value ≠ Exp
					// (Figure 2). Unlike the RMW case, any readable
					// message qualifies.
					for _, msg := range n.m.ReadCandidates(tid, op.Loc) {
						if msg.Val == op.Exp {
							continue
						}
						nextM := n.m.Clone()
						nextM.Read(tid, msg)
						if emit(t, lang.ReadLab(op.Loc, msg.Val), nextM) {
							return false
						}
					}
				}
			}
		}
		return true
	}

	explore.RunParallel(workers, []explore.Item[node]{{ID: rootID, St: node{ps0, m0}}}, expand)
	res.Explored = store.Len()
	res.WeakStates = len(weak)
	if bound {
		return nil, ErrBound
	}
	if witnessID >= 0 {
		res.Robust = false
		res.WitnessTrace = store.Trace(witnessID)
	}
	return res, nil
}
