package staterobust

import (
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/memra"
	"repro/internal/prog"
)

// raHeadroom derives the default write-slot headroom: one more than the
// number of write instructions in the program (every write instruction can
// execute at most once per... conservatively, this is exact for programs
// whose runs perform at most that many writes per location; for loopy
// programs the exploration is additionally guarded by the state bound).
func raHeadroom(program *lang.Program, lim Limits) int {
	if lim.RAHeadroom > 0 {
		return lim.RAHeadroom
	}
	n := 2
	for ti := range program.Threads {
		for ii := range program.Threads[ti].Insts {
			switch program.Threads[ti].Insts[ii].Kind {
			case lang.IWrite, lang.IFADD, lang.ICAS, lang.IBCAS, lang.IXCHG:
				n++
			}
		}
	}
	if n > 12 {
		n = 12 // keep branching bounded; the state bound guards precision
	}
	return n
}

// CheckRA decides state robustness of the program against RA by exploring
// the product of the program with the §3 timestamp machine
// (timestamp-canonicalized, see memra). Intended for litmus-sized
// programs: it exists to cross-validate the SCM-based decision procedure,
// not to replace it — that reversal of roles is exactly the paper's point
// (the RA machine is infinite-state in general; SCM is finite always).
func CheckRA(program *lang.Program, lim Limits) (*Result, error) {
	return checkWeakRA(program, lim, false)
}

// CheckSRA is CheckRA for the SRA model (writes and RMW-writes must pick
// globally maximal timestamps; see memra.WriteSlotSRA). SRA sits between
// RA and SC: per the paper's Example 3.4, 2+2W is robust against SRA but
// not against RA.
func CheckSRA(program *lang.Program, lim Limits) (*Result, error) {
	return checkWeakRA(program, lim, true)
}

func checkWeakRA(program *lang.Program, lim Limits, sra bool) (*Result, error) {
	scSet, err := ReachableSC(program, lim)
	if err != nil {
		return nil, err
	}
	p := prog.New(program)
	res := &Result{Robust: true, SCStates: len(scSet)}
	headroom := raHeadroom(program, lim)
	gapCap := headroom + 1

	type node struct {
		ps prog.State
		m  *memra.State
	}
	ps0 := p.InitStateRaw()
	store := explore.NewStore()
	var queue explore.Queue[node]
	weak := map[string]struct{}{}
	var buf []byte
	key := func(ps prog.State, m *memra.State) string {
		buf = buf[:0]
		buf = p.EncodeStateRaw(buf, ps)
		buf = m.Encode(buf)
		return string(buf)
	}
	check := func(id int32, ps prog.State) bool {
		pk := p.StateKeyRaw(ps)
		if _, ok := weak[pk]; !ok {
			weak[pk] = struct{}{}
			if _, ok := scSet[pk]; !ok {
				res.Robust = false
				if res.WitnessTrace == nil {
					res.WitnessTrace = store.Trace(id)
				}
				return true
			}
		}
		return false
	}
	m0 := memra.New(program.NumLocs(), program.NumThreads())
	root := store.Root(key(ps0, m0))
	queue.Push(root, node{ps0, m0})
	if check(root, ps0) {
		res.Explored = store.Len()
		return res, nil
	}

	// successor applies one program step with the given label and RA
	// memory effect, already performed on nextM.
	for {
		item, ok := queue.Pop()
		if !ok {
			break
		}
		if store.Len() > lim.maxStates() {
			return nil, ErrBound
		}
		n := item.St
		emit := func(t int, label lang.Label, nextM *memra.State) bool {
			nextPS := n.ps.Clone()
			nextPS.Threads[t] = p.Threads[t].ApplyRaw(n.ps.Threads[t], label)
			nextM.Canonicalize(gapCap)
			id, isNew := store.Add(key(nextPS, nextM), item.ID, explore.Step{Tid: lang.Tid(t), Lab: label})
			if isNew {
				if check(id, nextPS) {
					return true
				}
				queue.Push(id, node{nextPS, nextM})
			}
			return false
		}
		for t := range p.Threads {
			th := &p.Threads[t]
			ts := n.ps.Threads[t]
			tid := lang.Tid(t)
			if th.Terminated(ts) {
				continue
			}
			if th.AtEps(ts) {
				nextTS, afail := th.StepEps(ts)
				if afail != nil {
					continue
				}
				nextPS := n.ps.Clone()
				nextPS.Threads[t] = nextTS
				id, isNew := store.Add(key(nextPS, n.m), item.ID,
					explore.Step{Tid: tid, Internal: "eps"})
				if isNew {
					if check(id, nextPS) {
						res.Explored = store.Len()
						res.WeakStates = len(weak)
						return res, nil
					}
					queue.Push(id, node{nextPS, n.m.Clone()})
				}
				continue
			}
			op := th.Op(ts)
			switch op.Kind {
			case prog.OpWrite:
				slots := n.m.WriteSlots(tid, op.Loc, headroom)
				if sra {
					slots = []memra.Time{n.m.WriteSlotSRA(op.Loc)}
				}
				for _, slot := range slots {
					nextM := n.m.Clone()
					nextM.Write(tid, op.Loc, op.WVal, slot)
					if emit(t, lang.WriteLab(op.Loc, op.WVal), nextM) {
						res.Explored = store.Len()
						res.WeakStates = len(weak)
						return res, nil
					}
				}
			case prog.OpRead, prog.OpWait:
				for _, msg := range n.m.ReadCandidates(tid, op.Loc) {
					if op.Kind == prog.OpWait && msg.Val != op.WVal {
						continue
					}
					nextM := n.m.Clone()
					nextM.Read(tid, msg)
					if emit(t, lang.ReadLab(op.Loc, msg.Val), nextM) {
						res.Explored = store.Len()
						res.WeakStates = len(weak)
						return res, nil
					}
				}
			case prog.OpFADD, prog.OpXCHG, prog.OpCAS, prog.OpBCAS:
				rmwCands := n.m.RMWCandidates(tid, op.Loc)
				if sra {
					rmwCands = n.m.RMWCandidatesSRA(tid, op.Loc)
				}
				for _, msg := range rmwCands {
					var vW lang.Val
					switch op.Kind {
					case prog.OpFADD:
						vW = lang.Val((int(msg.Val) + int(op.Add)) % program.ValCount)
					case prog.OpXCHG:
						vW = op.New
					case prog.OpCAS, prog.OpBCAS:
						if msg.Val != op.Exp {
							continue // handled as plain read below for CAS
						}
						vW = op.New
					}
					nextM := n.m.Clone()
					nextM.RMW(tid, msg, vW)
					if emit(t, lang.RMWLab(op.Loc, msg.Val, vW), nextM) {
						res.Explored = store.Len()
						res.WeakStates = len(weak)
						return res, nil
					}
				}
				if op.Kind == prog.OpCAS {
					// Failed CAS: a plain read of any value ≠ Exp
					// (Figure 2). Unlike the RMW case, any readable
					// message qualifies.
					for _, msg := range n.m.ReadCandidates(tid, op.Loc) {
						if msg.Val == op.Exp {
							continue
						}
						nextM := n.m.Clone()
						nextM.Read(tid, msg)
						if emit(t, lang.ReadLab(op.Loc, msg.Val), nextM) {
							res.Explored = store.Len()
							res.WeakStates = len(weak)
							return res, nil
						}
					}
				}
			}
		}
	}
	res.Explored = store.Len()
	res.WeakStates = len(weak)
	return res, nil
}
