package staterobust_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/litmus"
	"repro/internal/staterobust"
)

// TestCheckPreCanceled checks that a context canceled up front makes every
// state-robustness checker return ErrCanceled instead of a verdict.
func TestCheckPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, err := litmus.Get("ticketlock4")
	if err != nil {
		t.Fatal(err)
	}
	p := e.Program()
	lim := staterobust.Limits{Ctx: ctx, Workers: 2}
	if r, err := staterobust.CheckRA(p, lim); !errors.Is(err, staterobust.ErrCanceled) || r != nil {
		t.Errorf("CheckRA = (%v, %v), want ErrCanceled", r, err)
	}
	if r, err := staterobust.CheckTSO(p, lim); !errors.Is(err, staterobust.ErrCanceled) || r != nil {
		t.Errorf("CheckTSO = (%v, %v), want ErrCanceled", r, err)
	}
	if r, err := staterobust.CheckSRA(p, lim); !errors.Is(err, staterobust.ErrCanceled) || r != nil {
		t.Errorf("CheckSRA = (%v, %v), want ErrCanceled", r, err)
	}
}

// TestCheckCancelMidExploration cancels from the progress hook once the
// weak-model exploration is under way and checks both checkers stop with
// ErrCanceled wrapping the context cause.
func TestCheckCancelMidExploration(t *testing.T) {
	// ticketlock4 explores ~4·10⁴ TSO compound states (and more under RA),
	// comfortably past the checkers' fixed 4096-expansion progress period.
	e, err := litmus.Get("ticketlock4")
	if err != nil {
		t.Fatal(err)
	}
	p := e.Program()
	type check struct {
		name string
		run  func(lim staterobust.Limits) error
	}
	checks := []check{
		{"RA", func(lim staterobust.Limits) error { _, err := staterobust.CheckRA(p, lim); return err }},
		{"TSO", func(lim staterobust.Limits) error { _, err := staterobust.CheckTSO(p, lim); return err }},
	}
	for _, c := range checks {
		ctx, cancel := context.WithCancel(context.Background())
		var fired atomic.Bool
		err := c.run(staterobust.Limits{
			Ctx:     ctx,
			Workers: 2,
			Progress: func(explored int) {
				if explored > 0 {
					fired.Store(true)
					cancel()
				}
			},
		})
		cancel()
		if !fired.Load() {
			t.Fatalf("%s: exploration finished before the hook fired", c.name)
		}
		if !errors.Is(err, staterobust.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want ErrCanceled wrapping context.Canceled", c.name, err)
		}
	}
}
