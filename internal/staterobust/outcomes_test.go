package staterobust_test

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/parser"
	"repro/internal/staterobust"
)

// catalogTest is one classic memory-model litmus test with its
// literature-established verdict under RA: whether the annotated outcome
// (a predicate over the threads' final registers) is reachable.
type catalogTest struct {
	name    string
	source  string
	outcome func(regs [][]lang.Val) bool
	// allowedRA / allowedSC: is the outcome reachable under each model?
	allowedRA bool
	allowedSC bool
	// allowedSRA, when the SRA verdict differs from RA's.
	allowedSRA *bool
}

func boolp(b bool) *bool { return &b }

// The catalog. Register indices follow first-use order in each thread.
var catalog = []catalogTest{
	{
		// Load buffering: po ∪ rf is acyclic under RA, so both threads
		// cannot read the other's (program-order-later) write.
		name: "LB",
		source: `
program LB
vals 2
locs x y
thread t1
  a := x
  y := 1
end
thread t2
  b := y
  x := 1
end
`,
		outcome: func(r [][]lang.Val) bool {
			return r[0][0] == 1 && r[1][0] == 1
		},
		allowedRA: false, allowedSC: false,
	},
	{
		// Store buffering: the weak classic; allowed under RA.
		name: "SB",
		source: `
program SB
vals 2
locs x y
thread t1
  x := 1
  a := y
end
thread t2
  y := 1
  b := x
end
`,
		outcome: func(r [][]lang.Val) bool {
			return r[0][0] == 0 && r[1][0] == 0
		},
		allowedRA: true, allowedSC: false,
		// SRA writes are still only location-maximal; the SB outcome
		// needs no write-placement freedom, only stale reads — allowed.
		allowedSRA: boolp(true),
	},
	{
		// Coherence of read-read (CoRR2): two readers cannot observe the
		// two independent writes in opposite orders — mo is total per
		// location and reads respect it through mo;hb.
		name: "CoRR2",
		source: `
program CoRR2
vals 3
locs x
thread w1
  x := 1
end
thread w2
  x := 2
end
thread r1
  a := x
  b := x
end
thread r2
  c := x
  d := x
end
`,
		outcome: func(r [][]lang.Val) bool {
			a, b := r[2][0], r[2][1]
			c, d := r[3][0], r[3][1]
			return a == 1 && b == 2 && c == 2 && d == 1
		},
		allowedRA: false, allowedSC: false,
	},
	{
		// Write-to-read causality: RA is causally consistent; a reader
		// that observes t2's write (made after t2 read x = 1) also
		// observes x = 1.
		name: "WRC",
		source: `
program WRC
vals 2
locs x y
thread t1
  x := 1
end
thread t2
  a := x
  y := 1
end
thread t3
  b := y
  c := x
end
`,
		outcome: func(r [][]lang.Val) bool {
			return r[1][0] == 1 && r[2][0] == 1 && r[2][1] == 0
		},
		allowedRA: false, allowedSC: false,
	},
	{
		// ISA2: transitive message passing through a third location.
		name: "ISA2",
		source: `
program ISA2
vals 2
locs x y z
thread t1
  x := 1
  y := 1
end
thread t2
  a := y
  z := 1
end
thread t3
  b := z
  c := x
end
`,
		outcome: func(r [][]lang.Val) bool {
			return r[1][0] == 1 && r[2][0] == 1 && r[2][1] == 0
		},
		allowedRA: false, allowedSC: false,
	},
	{
		// IRIW: RA is not multi-copy-atomic (Example 3.3).
		name: "IRIW",
		source: `
program IRIW
vals 2
locs x y
thread w1
  x := 1
end
thread r1
  a := x
  b := y
end
thread r2
  c := y
  d := x
end
thread w2
  y := 1
end
`,
		outcome: func(r [][]lang.Val) bool {
			return r[1][0] == 1 && r[1][1] == 0 && r[2][0] == 1 && r[2][1] == 0
		},
		allowedRA: true, allowedSC: false,
	},
	{
		// 2+2W with observing reads (Example 3.4): needs a non-maximal
		// write placement, so it distinguishes RA from SRA.
		name: "2+2W",
		source: `
program two-plus-two-w
vals 3
locs x y
thread t1
  x := 1
  y := 2
  a := y
end
thread t2
  y := 1
  x := 2
  b := x
end
`,
		outcome: func(r [][]lang.Val) bool {
			return r[0][0] == 1 && r[1][0] == 1
		},
		allowedRA: true, allowedSC: false,
		allowedSRA: boolp(false),
	},
	{
		// RMW atomicity (Example 3.5): two CASes cannot both succeed.
		name: "2RMW",
		source: `
program two-rmw
vals 2
locs x
thread t1
  a := CAS(x, 0, 1)
end
thread t2
  b := CAS(x, 0, 1)
end
`,
		outcome: func(r [][]lang.Val) bool {
			return r[0][0] == 0 && r[1][0] == 0
		},
		allowedRA: false, allowedSC: false,
	},
}

// TestRAOutcomeCatalog drives the classic litmus tests through the RA
// timestamp machine (and SC, and SRA where it differs) and checks the
// annotated outcomes against the literature ground truth. This validates
// the operational RA semantics of §3 independently of the robustness
// machinery.
func TestRAOutcomeCatalog(t *testing.T) {
	lim := staterobust.Limits{MaxStates: 3_000_000}
	for _, tc := range catalog {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			program := parser.MustParse(tc.source)
			reachable := func(model string) bool {
				outs, err := staterobust.FinalOutcomes(program, model, lim)
				if err != nil {
					t.Fatalf("%s: %v", model, err)
				}
				for _, o := range outs {
					if tc.outcome(o.Regs) {
						return true
					}
				}
				return false
			}
			if got := reachable("ra"); got != tc.allowedRA {
				t.Errorf("RA: outcome reachable=%v, literature says %v", got, tc.allowedRA)
			}
			if got := reachable("sc"); got != tc.allowedSC {
				t.Errorf("SC: outcome reachable=%v, want %v", got, tc.allowedSC)
			}
			wantSRA := tc.allowedRA
			if tc.allowedSRA != nil {
				wantSRA = *tc.allowedSRA
			}
			if got := reachable("sra"); got != wantSRA {
				t.Errorf("SRA: outcome reachable=%v, want %v", got, wantSRA)
			}
		})
	}
}
