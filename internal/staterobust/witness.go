package staterobust

import (
	"fmt"

	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/memra"
	"repro/internal/prog"
)

// ReplayWitness validates a WitnessTrace returned by CheckRA (sra false)
// or CheckSRA (sra true): the trace must be a feasible run of the §3
// timestamp machine, and the program state it ends in must not be
// SC-reachable. Returns nil when the witness checks out; ErrBound if the
// SC exploration needed for the final check exceeds lim.
//
// A trace records thread ids and labels but not timestamps, and the
// machine is not label-deterministic — a write label says nothing about
// the slot picked, a read label may be served by several messages with the
// same value. Program state, by contrast, IS label-deterministic. The
// replay therefore advances one program state and a *set* of candidate
// memory states: at each step every candidate is expanded by every machine
// transition matching the recorded label (the same enumeration checkWeakRA
// uses, with the same headroom and canonicalization, so feasibility here
// means feasibility there). An empty candidate set means the trace is
// infeasible — the reported run cannot happen.
//
// The candidate set can blow up on write-heavy traces (every write
// multiplies each candidate by up to headroom slots before dedup), so the
// replay carries a work budget derived from lim and gives up with ErrBound
// rather than deciding — a skipped validation, never a wrong one.
func ReplayWitness(program *lang.Program, trace []explore.Step, sra bool, lim Limits) error {
	scSet, err := ReachableSC(program, lim)
	if err != nil {
		return err
	}
	p := prog.New(program)
	headroom := RAHeadroom(program, lim)
	gapCap := headroom + 1

	ps := p.InitStateRaw()
	cands := []*memra.State{memra.New(program.NumLocs(), program.NumThreads())}
	var msgs []memra.Msg
	var slots []memra.Time
	work := 0
	budget := lim.maxStates()
	for i, st := range trace {
		t := int(st.Tid)
		if t < 0 || t >= len(p.Threads) {
			return fmt.Errorf("step %d: thread %d out of range", i, t)
		}
		th := &p.Threads[t]
		ts := ps.Threads[t]
		if th.Terminated(ts) {
			return fmt.Errorf("step %d: thread %d has terminated", i, t)
		}
		if st.Internal == explore.IntEps {
			if !th.AtEps(ts) {
				return fmt.Errorf("step %d: ε step but thread %d is at a memory operation", i, t)
			}
			nts, afail := th.StepEps(ts)
			if afail != nil {
				return fmt.Errorf("step %d: ε step fails an assertion (such states have no successors)", i)
			}
			ps.Threads[t] = nts
			continue
		}
		if st.Internal != explore.IntNone {
			return fmt.Errorf("step %d: unexpected internal tag %d in an RA trace", i, st.Internal)
		}
		if th.AtEps(ts) {
			return fmt.Errorf("step %d: memory step but thread %d is at a local instruction", i, t)
		}
		op := th.Op(ts)
		lab := st.Lab
		if lab.Loc != op.Loc {
			return fmt.Errorf("step %d: label on x%d but the pending operation is on x%d", i, lab.Loc, op.Loc)
		}
		tid := lang.Tid(t)
		next := map[string]*memra.State{}
		add := func(m *memra.State) {
			work++
			m.Canonicalize(gapCap)
			k := string(m.Encode(nil))
			if _, ok := next[k]; !ok {
				next[k] = m
			}
		}
		for _, m := range cands {
			switch op.Kind {
			case prog.OpWrite:
				if lab.Typ != lang.LWrite || lab.VW != op.WVal {
					return fmt.Errorf("step %d: label %v does not match a write of %d", i, lab, op.WVal)
				}
				if sra {
					slots = append(slots[:0], m.WriteSlotSRA(op.Loc))
				} else {
					slots = m.AppendWriteSlots(slots[:0], tid, op.Loc, headroom)
				}
				for _, slot := range slots {
					nm := m.Clone()
					nm.Write(tid, op.Loc, op.WVal, slot)
					add(nm)
				}
			case prog.OpRead, prog.OpWait:
				if lab.Typ != lang.LRead {
					return fmt.Errorf("step %d: label %v does not match a read", i, lab)
				}
				if op.Kind == prog.OpWait && lab.VR != op.WVal {
					return fmt.Errorf("step %d: wait(%d) cannot read %d", i, op.WVal, lab.VR)
				}
				msgs = m.AppendReadCandidates(msgs[:0], tid, op.Loc)
				for _, msg := range msgs {
					if msg.Val != lab.VR {
						continue
					}
					nm := m.Clone()
					nm.Read(tid, msg)
					add(nm)
				}
			case prog.OpFADD, prog.OpXCHG, prog.OpCAS, prog.OpBCAS:
				switch lab.Typ {
				case lang.LRMW:
					switch op.Kind {
					case prog.OpFADD:
						if want := lang.Val((int(lab.VR) + int(op.Add)) % program.ValCount); lab.VW != want {
							return fmt.Errorf("step %d: FADD label %v writes %d, expected %d", i, lab, lab.VW, want)
						}
					case prog.OpXCHG:
						if lab.VW != op.New {
							return fmt.Errorf("step %d: XCHG label %v writes %d, expected %d", i, lab, lab.VW, op.New)
						}
					case prog.OpCAS, prog.OpBCAS:
						if lab.VR != op.Exp || lab.VW != op.New {
							return fmt.Errorf("step %d: CAS label %v does not match CAS(%d→%d)", i, lab, op.Exp, op.New)
						}
					}
					if sra {
						msgs = m.AppendRMWCandidatesSRA(msgs[:0], tid, op.Loc)
					} else {
						msgs = m.AppendRMWCandidates(msgs[:0], tid, op.Loc)
					}
					for _, msg := range msgs {
						if msg.Val != lab.VR {
							continue
						}
						nm := m.Clone()
						nm.RMW(tid, msg, lab.VW)
						add(nm)
					}
				case lang.LRead:
					// Only a failed CAS reads without writing.
					if op.Kind != prog.OpCAS {
						return fmt.Errorf("step %d: plain-read label %v on a %v operation", i, lab, op.Kind)
					}
					if lab.VR == op.Exp {
						return fmt.Errorf("step %d: failed CAS cannot read the expected value %d", i, op.Exp)
					}
					msgs = m.AppendReadCandidates(msgs[:0], tid, op.Loc)
					for _, msg := range msgs {
						if msg.Val != lab.VR {
							continue
						}
						nm := m.Clone()
						nm.Read(tid, msg)
						add(nm)
					}
				default:
					return fmt.Errorf("step %d: label %v does not match an RMW operation", i, lab)
				}
			default:
				return fmt.Errorf("step %d: thread %d has no memory operation pending", i, t)
			}
		}
		if len(next) == 0 {
			return fmt.Errorf("step %d: no reachable RA memory supports label %v (infeasible trace)", i, lab)
		}
		if work > budget {
			return fmt.Errorf("%w (replay candidate set at step %d)", ErrBound, i)
		}
		cands = cands[:0]
		for _, m := range next {
			cands = append(cands, m)
		}
		ps.Threads[t] = th.ApplyRaw(ts, lab)
	}
	if _, ok := scSet[p.StateKeyRaw(ps)]; ok {
		return fmt.Errorf("final program state is SC-reachable — not a robustness witness")
	}
	return nil
}
