// Package staterobust implements state robustness (Definition 2.6) checks
// by direct exploration of operational memory subsystems: it enumerates the
// program states reachable under SC, under TSO (bounded store buffers), and
// under RA (the §3 timestamp machine with canonicalized timestamps), and
// compares the resulting sets.
//
// Two roles:
//
//   - The TSO comparison is this repository's stand-in for the Trencher
//     column of the paper's Figure 7 (see DESIGN.md): a precise
//     state-robustness verdict against x86-TSO. Unlike Trencher's
//     trace-based notion, spinning longer on a stale value does not change
//     the set of reachable program states, so the four ✗⋆ rows of Figure 7
//     (spurious violations caused by Trencher's lack of blocking
//     instructions) come out robust here, which the paper argues is the
//     right answer.
//
//   - The RA comparison cross-validates the paper's main theorems on small
//     programs: by Proposition 4.10, execution-graph robustness implies
//     state robustness, so core.Verify saying "robust" must imply the RA
//     machine reaches no extra program states; and for the litmus tests the
//     paper discusses, the specific stale-value outcomes must be reachable
//     under RA and not under SC.
package staterobust

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/memsc"
	"repro/internal/prog"
)

// Limits bounds an exploration.
type Limits struct {
	// MaxStates bounds the number of distinct compound states; 0 means
	// 4 million.
	MaxStates int
	// TSOBufCap bounds each TSO store buffer; 0 means 8 entries.
	TSOBufCap int
	// RAHeadroom is the number of free timestamp slots offered above the
	// maximal one for RA writes; 0 derives it from the program (number of
	// write instructions + 2), which is exact for programs whose loops do
	// not grow the write count beyond it (see memra's package comment).
	RAHeadroom int
	// Workers sets the number of parallel exploration workers for the RA
	// checker: 0 uses GOMAXPROCS, 1 explores sequentially. Verdicts and
	// full-run state counts are worker-count-independent; only witness
	// traces (and counts on non-robust early exits) may differ.
	Workers int
	// Ctx, when non-nil, cancels the exploration cooperatively (polled
	// every few hundred expansions at most): a cancelled run returns
	// ErrCanceled, never a partial verdict.
	Ctx context.Context
	// Progress, when non-nil, is called every few thousand explored
	// compound states with the running count. It may be invoked from
	// worker goroutines concurrently and must be cheap and goroutine-safe.
	Progress func(explored int)
	// Reduce folds program states related by thread symmetry (permutations
	// of byte-identical threads, prog.SymClasses) before comparing the SC
	// and weak reachable sets. The verdict is unchanged — both sets are
	// closed under the same permutations — but SCStates and WeakStates then
	// count canonical representatives, not raw program states. Only the
	// projection sets are folded; the compound-state exploration itself is
	// not reduced (the weak memories are thread-indexed and are not
	// canonicalized here).
	Reduce bool
}

// symmetry returns the program's thread symmetry when Reduce is on and at
// least two threads are interchangeable, else nil.
func (l Limits) symmetry(p *prog.P) *prog.Symmetry {
	if !l.Reduce {
		return nil
	}
	return prog.NewSymmetry(p)
}

func (l Limits) maxStates() int {
	if l.MaxStates <= 0 {
		return 4_000_000
	}
	return l.MaxStates
}

// ctxDone reports whether the limits' context has been cancelled.
func (l Limits) ctxDone() bool {
	return l.Ctx != nil && l.Ctx.Err() != nil
}

// canceled wraps the context's cause in ErrCanceled.
func (l Limits) canceled() error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(l.Ctx))
}

// ErrBound is returned when an exploration exceeds its state bound.
var ErrBound = fmt.Errorf("staterobust: state bound exceeded")

// ErrCanceled is returned (wrapped, with the context's cause) when
// Limits.Ctx is cancelled before the exploration completes.
var ErrCanceled = errors.New("staterobust: exploration canceled")

// ctxPollMask gates the sequential explorers' context polls (checked every
// ctxPollMask+1 expansions).
const ctxPollMask = 255

// progressEvery is the explored-state granularity of Limits.Progress.
const progressEvery = 4096

// Result is the outcome of a state-robustness comparison.
type Result struct {
	// Robust reports that every program state reachable under the weak
	// model is reachable under SC.
	Robust bool
	// WitnessTrace is a weak-memory run reaching a program state that SC
	// cannot reach (when not robust).
	WitnessTrace []explore.Step
	// SCStates and WeakStates count distinct *program* states (not
	// compound states) reached under each model; with Limits.Reduce they
	// count canonical representatives under thread symmetry instead.
	SCStates, WeakStates int
	// Explored counts compound states explored under the weak model.
	Explored int
	// BufBoundHit reports that a TSO write was ever inhibited by the
	// buffer capacity; if false, the bound provably did not limit the
	// exploration.
	BufBoundHit bool
}

// ReachableSC returns the set of program-state keys reachable under SC
// (Definition 2.5 with M = SC), exploring the product with the SC memory.
//
// The exploration is ε-granular: thread-local instructions are interleaved
// transitions of their own, exactly as in §2.2, so partially-closed states
// (a thread stopped between its read and the branch consuming it) are
// enumerated. State robustness is sensitive to them — the paper's §2.3
// barrier discussion hinges on a state where both threads hold stale
// zeroes on their loop branches.
func ReachableSC(program *lang.Program, lim Limits) (map[string]struct{}, error) {
	p := prog.New(program)
	type node struct {
		ps prog.State
		m  memsc.Memory
	}
	ps0 := p.InitStateRaw()
	m0 := memsc.New(program.NumLocs())
	sy := lim.symmetry(p)
	seen := map[string]struct{}{}
	reach := map[string]struct{}{}
	var queue []node
	var buf, kbuf []byte
	key := func(ps prog.State, m memsc.Memory) string {
		buf = buf[:0]
		buf = p.EncodeStateRaw(buf, ps)
		buf = m.Encode(buf)
		return string(buf)
	}
	projKey := func(ps prog.State) string {
		if sy == nil {
			return p.StateKeyRaw(ps)
		}
		kbuf = p.EncodeStateRaw(kbuf[:0], ps)
		return string(sy.CanonRaw(kbuf))
	}
	push := func(ps prog.State, m memsc.Memory) {
		k := key(ps, m)
		if _, ok := seen[k]; ok {
			return
		}
		seen[k] = struct{}{}
		reach[projKey(ps)] = struct{}{}
		queue = append(queue, node{ps, m})
	}
	push(ps0, m0)
	popped := 0
	for len(queue) > 0 {
		if len(seen) > lim.maxStates() {
			return nil, ErrBound
		}
		if popped&ctxPollMask == 0 && lim.ctxDone() {
			return nil, lim.canceled()
		}
		popped++
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for t := range p.Threads {
			th := &p.Threads[t]
			ts := n.ps.Threads[t]
			if th.Terminated(ts) {
				continue
			}
			if th.AtEps(ts) {
				nextTS, afail := th.StepEps(ts)
				if afail != nil {
					continue // a failed assert has no successors
				}
				nextPS := n.ps.Clone()
				nextPS.Threads[t] = nextTS
				push(nextPS, n.m)
				continue
			}
			op := th.Op(ts)
			label, enabled := prog.SCLabel(op, n.m[op.Loc], program.ValCount)
			if !enabled {
				continue
			}
			nextPS := n.ps.Clone()
			nextPS.Threads[t] = th.ApplyRaw(ts, label)
			nextM := n.m.Clone()
			nextM.Step(label)
			push(nextPS, nextM)
		}
	}
	if lim.ctxDone() {
		return nil, lim.canceled()
	}
	return reach, nil
}
