package staterobust_test

import (
	"testing"

	"repro/internal/litmus"
	"repro/internal/staterobust"
)

// TestRALitmusStateRobustness cross-validates the §3 litmus discussion
// against the operational RA machine: the annotated weak outcomes must be
// reachable (state robustness fails) exactly where the paper says, and —
// the point of §4 — the two "vacuously robust" programs (SB with zero
// writes, 2+2W without the final reads) are state robust even though they
// are not execution-graph robust.
func TestRALitmusStateRobustness(t *testing.T) {
	expect := map[string]bool{
		"SB":            false,
		"MP":            true,
		"IRIW":          false,
		"2+2W":          false,
		"2+2W-nor":      true, // vacuous: no reads observe the mo divergence
		"SB-zero":       true, // vacuous: only the initial value is ever written
		"2RMW":          true,
		"SB+RMWs":       true,
		"SB+RMWs-split": false,
		"BAR-loop":      false, // both threads spinning on stale zeroes (§2.3)
		"barrier":       true,
		"dekker-sc":     false,
		"peterson-sc":   false,
	}
	for name, want := range expect {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			e, err := litmus.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := staterobust.CheckRA(e.Program(), staterobust.Limits{MaxStates: 3_000_000})
			if err != nil {
				t.Fatalf("CheckRA: %v", err)
			}
			if res.Robust != want {
				t.Errorf("RA state robustness = %v, want %v (weak %d, sc %d)",
					res.Robust, want, res.WeakStates, res.SCStates)
			}
			// Sanity: Lemma 3.7 — SC runs are RA runs, so the weak state
			// set must contain the SC one.
			if res.Robust && res.WeakStates != res.SCStates {
				t.Errorf("robust but weak states %d != sc states %d", res.WeakStates, res.SCStates)
			}
			if res.WeakStates != 0 && res.WeakStates < res.SCStates && res.Robust {
				t.Errorf("RA explorer reached fewer states than SC")
			}
		})
	}
}

// TestSCSubsetOfWeak checks Lemma 3.7 concretely on a few programs: every
// SC-reachable program state is reachable under both RA and TSO (the
// explorers agree on the SC set by construction, so this checks that the
// weak explorers don't under-approximate).
func TestSCSubsetOfWeak(t *testing.T) {
	// Robust programs only: on a violation the explorers return early with
	// a partial weak-state count.
	for _, name := range []string{"MP", "2RMW", "barrier", "SB-zero"} {
		e, err := litmus.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		p := e.Program()
		res, err := staterobust.CheckRA(p, staterobust.Limits{MaxStates: 2_000_000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.WeakStates < res.SCStates {
			t.Errorf("%s: RA reached %d states < SC's %d", name, res.WeakStates, res.SCStates)
		}
		rt, err := staterobust.CheckTSO(p, staterobust.Limits{MaxStates: 2_000_000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rt.Robust && rt.WeakStates < rt.SCStates {
			t.Errorf("%s: TSO reached %d states < SC's %d", name, rt.WeakStates, rt.SCStates)
		}
	}
}

// TestReduceSymmetryFold checks Limits.Reduce: on programs with
// interchangeable threads the verdict must be unchanged (both projection
// sets are closed under the class permutations) while the canonical state
// counts shrink; on asymmetric programs the counts are untouched.
func TestReduceSymmetryFold(t *testing.T) {
	for _, tc := range []struct {
		name      string
		symmetric bool
	}{
		{"dcl", true},  // two identical double-checked-init threads
		{"2RMW", true}, // two identical fetch-and-adds
		{"SB", false},  // distinct stores
		{"MP", false},
		{"peterson-sc", false},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			e, err := litmus.Get(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			p := e.Program()
			plain, err := staterobust.CheckRA(p, staterobust.Limits{MaxStates: 3_000_000})
			if err != nil {
				t.Fatalf("CheckRA: %v", err)
			}
			red, err := staterobust.CheckRA(p, staterobust.Limits{MaxStates: 3_000_000, Reduce: true})
			if err != nil {
				t.Fatalf("CheckRA(reduce): %v", err)
			}
			if red.Robust != plain.Robust {
				t.Errorf("reduced verdict = %v, plain = %v", red.Robust, plain.Robust)
			}
			if tc.symmetric {
				if plain.Robust && red.WeakStates >= plain.WeakStates {
					t.Errorf("expected canonical fold: weak %d vs plain %d", red.WeakStates, plain.WeakStates)
				}
			} else if red.SCStates != plain.SCStates || (plain.Robust && red.WeakStates != plain.WeakStates) {
				t.Errorf("asymmetric program folded: sc %d/%d weak %d/%d",
					red.SCStates, plain.SCStates, red.WeakStates, plain.WeakStates)
			}
		})
	}
}
