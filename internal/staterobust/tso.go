package staterobust

import (
	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/memtso"
	"repro/internal/prog"
)

// CheckTSO decides state robustness of the program against x86-TSO with
// store buffers bounded by lim.TSOBufCap. It explores the product of the
// program with the TSO machine and reports the first program state not
// reachable under SC, if any.
//
// Semantics of the instruction set on TSO: writes enter the thread's
// buffer; reads forward from the thread's own buffer; all RMWs (FADD, CAS
// — successful or failed —, BCAS, XCHG) are locked instructions requiring
// an empty buffer, which is what makes the paper's FADD-encoded fences
// full fences on TSO; a blocking wait reads like a load. A per-thread
// internal flush action commits buffered writes in FIFO order.
func CheckTSO(program *lang.Program, lim Limits) (*Result, error) {
	bufCap := lim.TSOBufCap
	if bufCap <= 0 {
		bufCap = 8
	}
	scSet, err := ReachableSC(program, lim)
	if err != nil {
		return nil, err
	}
	p := prog.New(program)
	res := &Result{Robust: true, SCStates: len(scSet)}

	type node struct {
		ps prog.State
		m  *memtso.State
	}
	ps0 := p.InitStateRaw()
	store := explore.NewStore()
	var queue explore.Queue[node]
	weak := map[string]struct{}{}
	// key encodes into a reused buffer; the store interns the bytes in its
	// arena, so no per-Add string materialization is needed.
	var buf []byte
	key := func(ps prog.State, m *memtso.State) []byte {
		buf = buf[:0]
		buf = p.EncodeStateRaw(buf, ps)
		buf = m.Encode(buf)
		return buf
	}
	sy := lim.symmetry(p)
	var symBuf []byte
	check := func(id int32, ps prog.State) bool {
		var pk string
		if sy == nil {
			pk = p.StateKeyRaw(ps)
		} else {
			symBuf = p.EncodeStateRaw(symBuf[:0], ps)
			pk = string(sy.CanonRaw(symBuf))
		}
		if _, ok := weak[pk]; !ok {
			weak[pk] = struct{}{}
			if _, ok := scSet[pk]; !ok {
				res.Robust = false
				if res.WitnessTrace == nil {
					res.WitnessTrace = store.Trace(id)
				}
				return true
			}
		}
		return false
	}
	root, _ := store.AddBytes(key(ps0, memtso.New(program.NumLocs(), program.NumThreads())), -1, explore.Step{})
	queue.Push(root, node{ps0, memtso.New(program.NumLocs(), program.NumThreads())})
	if check(root, ps0) {
		res.Explored = store.Len()
		return res, nil
	}
	popped := 0
	for {
		item, ok := queue.Pop()
		if !ok {
			break
		}
		if store.Len() > lim.maxStates() {
			return nil, ErrBound
		}
		if popped&ctxPollMask == 0 && lim.ctxDone() {
			return nil, lim.canceled()
		}
		popped++
		if lim.Progress != nil && popped%progressEvery == 0 {
			lim.Progress(store.Len())
		}
		n := item.St
		// Program actions (ε-granular, see ReachableSC).
		for t := range p.Threads {
			th := &p.Threads[t]
			ts := n.ps.Threads[t]
			tid := lang.Tid(t)
			if th.Terminated(ts) {
				continue
			}
			if th.AtEps(ts) {
				nextTS, afail := th.StepEps(ts)
				if afail != nil {
					continue
				}
				nextPS := n.ps.Clone()
				nextPS.Threads[t] = nextTS
				id, isNew := store.AddBytes(key(nextPS, n.m), item.ID,
					explore.Step{Tid: tid, Internal: explore.IntEps})
				if isNew {
					if check(id, nextPS) {
						res.Explored = store.Len()
						res.WeakStates = len(weak)
						return res, nil
					}
					queue.Push(id, node{nextPS, n.m.Clone()})
				}
				continue
			}
			op := th.Op(ts)
			var label lang.Label
			switch op.Kind {
			case prog.OpWrite:
				if !n.m.CanWrite(tid, bufCap) {
					res.BufBoundHit = true
					continue
				}
				label = lang.WriteLab(op.Loc, op.WVal)
			case prog.OpRead:
				label = lang.ReadLab(op.Loc, n.m.Lookup(tid, op.Loc))
			case prog.OpWait:
				if n.m.Lookup(tid, op.Loc) != op.WVal {
					continue
				}
				label = lang.ReadLab(op.Loc, op.WVal)
			default:
				// Locked RMW instructions: require an empty buffer.
				if !n.m.BufEmpty(tid) {
					continue
				}
				cur := n.m.Mem[op.Loc]
				var enabled bool
				label, enabled = prog.SCLabel(op, cur, program.ValCount)
				if !enabled {
					continue
				}
			}
			nextPS := n.ps.Clone()
			nextPS.Threads[t] = th.ApplyRaw(ts, label)
			nextM := n.m.Clone()
			switch label.Typ {
			case lang.LWrite:
				nextM.Write(tid, label.Loc, label.VW)
			case lang.LRMW:
				nextM.RMW(tid, label.Loc, label.VR, label.VW)
			}
			id, isNew := store.AddBytes(key(nextPS, nextM), item.ID, explore.Step{Tid: tid, Lab: label})
			if isNew {
				if check(id, nextPS) {
					res.Explored = store.Len()
					res.WeakStates = len(weak)
					return res, nil
				}
				queue.Push(id, node{nextPS, nextM})
			}
		}
		// Internal flush actions.
		for t := 0; t < program.NumThreads(); t++ {
			tid := lang.Tid(t)
			if !n.m.CanFlush(tid) {
				continue
			}
			nextM := n.m.Clone()
			nextM.Flush(tid)
			id, isNew := store.AddBytes(key(n.ps, nextM), item.ID,
				explore.Step{Tid: tid, Internal: explore.IntFlush})
			if isNew {
				queue.Push(id, node{n.ps.Clone(), nextM})
			}
		}
	}
	if lim.ctxDone() {
		return nil, lim.canceled()
	}
	res.Explored = store.Len()
	res.WeakStates = len(weak)
	return res, nil
}
