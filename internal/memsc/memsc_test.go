package memsc_test

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/memsc"
)

func TestStepSemantics(t *testing.T) {
	m := memsc.New(2)
	if !m.Step(lang.WriteLab(0, 3)) {
		t.Fatal("write must always be enabled")
	}
	if m[0] != 3 || m[1] != 0 {
		t.Fatalf("memory after write: %v", m)
	}
	if m.Step(lang.ReadLab(0, 1)) {
		t.Error("read of a non-current value must be refused")
	}
	if !m.Step(lang.ReadLab(0, 3)) {
		t.Error("read of the current value must be enabled")
	}
	if m.Step(lang.RMWLab(0, 1, 2)) {
		t.Error("RMW with wrong read value must be refused")
	}
	if !m.Step(lang.RMWLab(0, 3, 2)) || m[0] != 2 {
		t.Errorf("RMW should have updated the memory: %v", m)
	}
	if !m.Enabled(lang.WriteLab(1, 1)) || m.Enabled(lang.ReadLab(1, 1)) || !m.Enabled(lang.ReadLab(1, 0)) {
		t.Error("Enabled disagrees with Step")
	}
}

func TestCloneAndEncode(t *testing.T) {
	m := memsc.New(3)
	m.Step(lang.WriteLab(1, 2))
	c := m.Clone()
	c.Step(lang.WriteLab(1, 3))
	if m[1] != 2 || c[1] != 3 {
		t.Error("clone is not independent")
	}
	if string(m.Encode(nil)) == string(c.Encode(nil)) {
		t.Error("different memories encode equally")
	}
}
