// Package memsc implements the sequentially consistent memory subsystem SC
// of §2.3: a map from locations to their most recently written values.
package memsc

import "repro/internal/lang"

// Memory is a state of the SC memory subsystem: M : Loc → Val. The initial
// state maps every location to 0.
type Memory []lang.Val

// New returns the initial SC memory for numLocs locations.
func New(numLocs int) Memory { return make(Memory, numLocs) }

// Clone returns a deep copy.
func (m Memory) Clone() Memory {
	c := make(Memory, len(m))
	copy(c, m)
	return c
}

// Step attempts the transition labelled l, per the rules of §2.3. It
// returns false (leaving the memory unchanged) when l is not enabled:
// a read or RMW whose read value is not the current value of the location.
// SC is oblivious to the acting thread.
func (m Memory) Step(l lang.Label) bool {
	switch l.Typ {
	case lang.LWrite:
		m[l.Loc] = l.VW
		return true
	case lang.LRead:
		return m[l.Loc] == l.VR
	case lang.LRMW:
		if m[l.Loc] != l.VR {
			return false
		}
		m[l.Loc] = l.VW
		return true
	}
	return false
}

// Enabled reports whether l is enabled without taking the step.
func (m Memory) Enabled(l lang.Label) bool {
	if l.Typ == lang.LWrite {
		return true
	}
	return m[l.Loc] == l.VR
}

// Encode appends the canonical byte encoding of the memory to dst.
func (m Memory) Encode(dst []byte) []byte {
	for _, v := range m {
		dst = append(dst, byte(v))
	}
	return dst
}
