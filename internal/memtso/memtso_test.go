package memtso_test

import (
	"testing"

	"repro/internal/memtso"
)

func TestBufferForwardingAndFlush(t *testing.T) {
	s := memtso.New(2, 2)
	s.Write(0, 1, 3)
	// Own-buffer forwarding: thread 0 sees its pending write, thread 1
	// does not.
	if got := s.Lookup(0, 1); got != 3 {
		t.Errorf("writer reads %d, want 3 (forwarded)", got)
	}
	if got := s.Lookup(1, 1); got != 0 {
		t.Errorf("other thread reads %d, want 0 (not yet flushed)", got)
	}
	if s.BufEmpty(0) || !s.BufEmpty(1) {
		t.Error("buffer emptiness wrong")
	}
	if !s.CanFlush(0) || s.CanFlush(1) {
		t.Error("CanFlush wrong")
	}
	s.Flush(0)
	if got := s.Lookup(1, 1); got != 3 {
		t.Errorf("after flush, other thread reads %d, want 3", got)
	}
	if s.CanFlush(0) {
		t.Error("flush should have drained the single entry")
	}
}

func TestFIFOOrder(t *testing.T) {
	s := memtso.New(1, 1)
	s.Write(0, 0, 1)
	s.Write(0, 0, 2)
	if got := s.Lookup(0, 0); got != 2 {
		t.Errorf("forwarding must return the newest buffered write, got %d", got)
	}
	s.Flush(0)
	if s.Mem[0] != 1 {
		t.Errorf("flush must commit the oldest write first, memory = %d", s.Mem[0])
	}
	s.Flush(0)
	if s.Mem[0] != 2 {
		t.Errorf("second flush: memory = %d", s.Mem[0])
	}
}

func TestRMWRequiresGlobalValue(t *testing.T) {
	s := memtso.New(1, 2)
	if !s.RMW(0, 0, 0, 2) || s.Mem[0] != 2 {
		t.Error("RMW with matching value should succeed")
	}
	if s.RMW(1, 0, 0, 3) {
		t.Error("RMW with stale expected value should fail")
	}
}

func TestCanWriteCap(t *testing.T) {
	s := memtso.New(1, 1)
	if !s.CanWrite(0, 2) {
		t.Error("empty buffer should accept writes")
	}
	s.Write(0, 0, 1)
	s.Write(0, 0, 1)
	if s.CanWrite(0, 2) {
		t.Error("full buffer should refuse writes at cap")
	}
}

func TestCloneAndEncode(t *testing.T) {
	s := memtso.New(2, 2)
	s.Write(0, 1, 2)
	c := s.Clone()
	c.Flush(0)
	if s.Mem[1] != 0 || c.Mem[1] != 2 {
		t.Error("clone is not independent")
	}
	if string(s.Encode(nil)) == string(c.Encode(nil)) {
		t.Error("distinct states encode equally")
	}
}
