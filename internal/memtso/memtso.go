// Package memtso implements an operational x86-TSO memory subsystem
// (Owens, Sarkar & Sewell 2009): a global store plus one FIFO store buffer
// per thread. Writes enter the issuing thread's buffer; an internal flush
// action moves the oldest buffered write to the global store; reads forward
// from the newest buffered write to the same location in the thread's own
// buffer, falling back to the global store; RMWs require an empty buffer
// and act atomically on the store (and thereby fence, which is why the
// paper's FADD-encoded SC fences are strong on TSO).
//
// This machine is the substrate for the repository's stand-in for the
// Trencher baseline of the paper's Figure 7 (see DESIGN.md): a precise
// state-robustness check of program states reachable under TSO versus
// under SC. Store buffers are bounded by a configurable capacity; the
// explorer records whether the bound was ever hit so a non-limiting bound
// can be certified.
package memtso

import "repro/internal/lang"

// BufEntry is one pending write in a store buffer.
type BufEntry struct {
	Loc lang.Loc
	Val lang.Val
}

// State is a TSO memory state: the global store plus per-thread FIFO
// buffers (oldest first).
type State struct {
	Mem  []lang.Val
	Bufs [][]BufEntry
}

// New returns the initial TSO state (zeroed store, empty buffers).
func New(numLocs, numThreads int) *State {
	return &State{
		Mem:  make([]lang.Val, numLocs),
		Bufs: make([][]BufEntry, numThreads),
	}
}

// Clone returns a deep copy.
func (s *State) Clone() *State {
	c := &State{
		Mem:  make([]lang.Val, len(s.Mem)),
		Bufs: make([][]BufEntry, len(s.Bufs)),
	}
	copy(c.Mem, s.Mem)
	for i, b := range s.Bufs {
		c.Bufs[i] = append([]BufEntry(nil), b...)
	}
	return c
}

// Lookup returns the value thread tid reads for x: the newest buffered
// write to x in tid's own buffer if any, else the global store.
func (s *State) Lookup(tid lang.Tid, x lang.Loc) lang.Val {
	buf := s.Bufs[tid]
	for i := len(buf) - 1; i >= 0; i-- {
		if buf[i].Loc == x {
			return buf[i].Val
		}
	}
	return s.Mem[x]
}

// CanWrite reports whether thread tid's buffer has room under the given
// capacity.
func (s *State) CanWrite(tid lang.Tid, cap int) bool {
	return len(s.Bufs[tid]) < cap
}

// Write buffers a write by tid.
func (s *State) Write(tid lang.Tid, x lang.Loc, v lang.Val) {
	s.Bufs[tid] = append(s.Bufs[tid], BufEntry{x, v})
}

// BufEmpty reports whether tid's buffer is empty (required for RMWs).
func (s *State) BufEmpty(tid lang.Tid) bool { return len(s.Bufs[tid]) == 0 }

// RMW performs an atomic read-modify-write by tid, which must have an
// empty buffer. It returns false if the current value differs from vR.
func (s *State) RMW(tid lang.Tid, x lang.Loc, vR, vW lang.Val) bool {
	if s.Mem[x] != vR {
		return false
	}
	s.Mem[x] = vW
	return true
}

// CanFlush reports whether tid has a pending buffered write.
func (s *State) CanFlush(tid lang.Tid) bool { return len(s.Bufs[tid]) > 0 }

// Flush commits tid's oldest buffered write to the global store.
func (s *State) Flush(tid lang.Tid) {
	e := s.Bufs[tid][0]
	s.Bufs[tid] = append([]BufEntry(nil), s.Bufs[tid][1:]...)
	s.Mem[e.Loc] = e.Val
}

// Encode appends a canonical byte encoding of the state to dst.
func (s *State) Encode(dst []byte) []byte {
	for _, v := range s.Mem {
		dst = append(dst, byte(v))
	}
	for _, b := range s.Bufs {
		dst = append(dst, 0xfe)
		for _, e := range b {
			dst = append(dst, byte(e.Loc), byte(e.Val))
		}
	}
	return dst
}
