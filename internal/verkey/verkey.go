// Package verkey builds the canonical verdict-cache key. Three layers
// address completed verdicts — the in-memory LRU (internal/service), the
// persistent on-disk store (internal/vstore), and the digest-addressed
// cluster routing (internal/cluster) — and all of them must agree on what
// "the same verification" means, or a cache could serve a verdict computed
// under different bounds. Centralizing the key in one function makes that
// agreement structural: there is exactly one place the key format lives,
// and TestKeyPinned pins it byte-for-byte (keys are persisted by vstore,
// so a refactor must not silently change them).
package verkey

import (
	"fmt"

	"repro/internal/prog"
)

// Key returns the verdict-cache key for one verification question:
//
//	<digest>|<mode>|<maxStates>|<flagBits>
//
// where digest is the 32-hex-digit prog.CanonicalDigest (name-free, so
// digest-equal programs share verdicts), mode is the service mode string
// ("ra", "sra", "sc", "state-ra", ...), maxStates is the effective
// exploration bound, and flagBits packs the request knobs that change the
// *reported* result without changing the verdict: bit 1 = staticPrune
// (certificate/prunedLocs fields, possibly 0 states), bit 2 = reduce
// (reduction counters, smaller state counts), bit 4 = frontend (the
// verdict was computed for a program lifted from Go source by
// internal/frontend — /v1/analyze results never alias hand-written .lit
// submissions of the same digest, so a frontend regression can be flushed
// from the stores without touching verify traffic). Engine worker counts
// are deliberately absent: verdicts and exact-mode state counts are
// worker-independent by the engines' determinism contract.
func Key(d prog.Digest, mode string, maxStates int, staticPrune, reduce, frontend bool) string {
	bits := 0
	if staticPrune {
		bits = 1
	}
	if reduce {
		bits |= 2
	}
	if frontend {
		bits |= 4
	}
	return fmt.Sprintf("%s|%s|%d|%d", d, mode, maxStates, bits)
}
