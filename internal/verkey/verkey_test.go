package verkey

import (
	"testing"

	"repro/internal/prog"
)

// TestKeyPinned pins the exact key format. vstore persists these keys on
// disk and cluster peers exchange them implicitly (by routing on the
// digest prefix), so the format is a compatibility surface: if this test
// fails, either bump the vstore file magic or keep the format.
func TestKeyPinned(t *testing.T) {
	var d prog.Digest
	for i := range d {
		d[i] = byte(i + 1) // 0102030405060708090a0b0c0d0e0f10
	}
	cases := []struct {
		mode            string
		maxStates       int
		prune, red, fro bool
		want            string
	}{
		{"ra", 8 << 20, false, false, false, "0102030405060708090a0b0c0d0e0f10|ra|8388608|0"},
		{"ra", 8 << 20, true, false, false, "0102030405060708090a0b0c0d0e0f10|ra|8388608|1"},
		{"ra", 8 << 20, false, true, false, "0102030405060708090a0b0c0d0e0f10|ra|8388608|2"},
		{"sra", 1000, true, true, false, "0102030405060708090a0b0c0d0e0f10|sra|1000|3"},
		{"ra", 8 << 20, false, false, true, "0102030405060708090a0b0c0d0e0f10|ra|8388608|4"},
		{"sra", 1000, true, true, true, "0102030405060708090a0b0c0d0e0f10|sra|1000|7"},
		{"state-tso", 42, false, false, false, "0102030405060708090a0b0c0d0e0f10|state-tso|42|0"},
		{"tso", 42, false, false, false, "0102030405060708090a0b0c0d0e0f10|tso|42|0"},
	}
	for _, c := range cases {
		if got := Key(d, c.mode, c.maxStates, c.prune, c.red, c.fro); got != c.want {
			t.Errorf("Key(%s,%d,%v,%v,%v) = %q, want %q", c.mode, c.maxStates, c.prune, c.red, c.fro, got, c.want)
		}
	}
}

// TestKeyDistinguishesKnobs checks every knob independently changes the key.
func TestKeyDistinguishesKnobs(t *testing.T) {
	var d1, d2 prog.Digest
	d2[0] = 0xff
	base := Key(d1, "ra", 100, false, false, false)
	for name, other := range map[string]string{
		"digest":      Key(d2, "ra", 100, false, false, false),
		"mode":        Key(d1, "sc", 100, false, false, false),
		"maxStates":   Key(d1, "ra", 101, false, false, false),
		"staticPrune": Key(d1, "ra", 100, true, false, false),
		"reduce":      Key(d1, "ra", 100, false, true, false),
		"frontend":    Key(d1, "ra", 100, false, false, true),
	} {
		if other == base {
			t.Errorf("changing %s does not change the key %q", name, base)
		}
	}
	// The instrumented ("tso") and exhaustive ("state-tso") TSO checkers
	// answer the same question by different explorations with different
	// state counts — the cache must never serve one's result for the
	// other, in the LRU, the vstore, or across cluster peers.
	if Key(d1, "tso", 100, false, false, false) == Key(d1, "state-tso", 100, false, false, false) {
		t.Error("keys for modes tso and state-tso alias")
	}
}
