// Package prog gives operational semantics to programs: the labeled
// transition systems induced by sequential programs (Figure 2 of the paper)
// and their concurrent interleaving (§2.2), together with the machinery the
// verifier needs on top — ε-closure to the next memory operation, the set of
// labels a thread enables at a state, and the critical-value analysis of
// §5.1.
package prog

import (
	"fmt"

	"repro/internal/lang"
)

// ThreadState is a state ⟨pc, Φ⟩ of a sequential program's LTS: a program
// counter and a register store. The zero pc with an all-zero store is the
// initial state.
type ThreadState struct {
	PC   int
	Regs []lang.Val
}

// Clone returns a deep copy.
func (ts ThreadState) Clone() ThreadState {
	regs := make([]lang.Val, len(ts.Regs))
	copy(regs, ts.Regs)
	return ThreadState{PC: ts.PC, Regs: regs}
}

// OpKind classifies the memory operation a thread is poised to perform
// after ε-closure.
type OpKind uint8

// Operation kinds. OpNone means the thread has terminated (pc left the
// program) or diverged in a local ε-loop; in either case it will never
// perform another memory access.
const (
	OpNone OpKind = iota
	OpWrite
	OpRead
	OpFADD
	OpCAS
	OpWait
	OpBCAS
	OpXCHG
)

// MemOp is a thread's next memory operation with all expression operands
// evaluated under the current register store. It fully determines the set
// of labels the thread enables (Definition 2.1 / Figure 2):
//
//	OpWrite: { W(x, WVal) }
//	OpRead:  { R(x, v) | v ∈ Val }
//	OpFADD:  { RMW(x, v, v + Add) | v ∈ Val }
//	OpCAS:   { RMW(x, Exp, New) } ∪ { R(x, v) | v ≠ Exp }
//	OpWait:  { R(x, WVal) }
//	OpBCAS:  { RMW(x, Exp, New) }
//	OpXCHG:  { RMW(x, v, New) | v ∈ Val }
type MemOp struct {
	Kind OpKind
	Loc  lang.Loc
	NA   bool     // the location is non-atomic (§6)
	WVal lang.Val // OpWrite: value written; OpWait: value awaited
	Add  lang.Val // OpFADD: increment
	Exp  lang.Val // OpCAS/OpBCAS: expected value
	New  lang.Val // OpCAS/OpBCAS: replacement value
	Reg  lang.Reg // OpRead/OpFADD/OpCAS: destination register
	// PC is the program counter of the instruction (post ε-closure),
	// for diagnostics and fence placement.
	PC int
}

// Thread is a handle on one thread of a program, caching what the stepper
// needs.
type Thread struct {
	prog *lang.Program
	seq  *lang.SeqProg
	tid  lang.Tid
	live []uint64 // per pc: registers live on entry (see liveness.go)
}

// P is an executable view of a concurrent program.
type P struct {
	Prog    *lang.Program
	Threads []Thread
}

// New prepares a program for execution. The program must have been
// validated.
func New(prog *lang.Program) *P {
	p := &P{Prog: prog}
	for i := range prog.Threads {
		p.Threads = append(p.Threads, Thread{
			prog: prog,
			seq:  &prog.Threads[i],
			tid:  lang.Tid(i),
			live: liveSets(&prog.Threads[i]),
		})
	}
	return p
}

// InitStateRaw returns the initial concurrent program state (all pcs 0,
// all registers 0) without ε-closure.
func (p *P) InitStateRaw() State {
	st := State{Threads: make([]ThreadState, len(p.Threads))}
	for i := range p.Threads {
		st.Threads[i] = ThreadState{PC: 0, Regs: make([]lang.Val, p.Threads[i].seq.NumRegs)}
	}
	return st
}

// InitState returns the initial concurrent program state (all pcs 0, all
// registers 0), with ε-closure already applied to every thread.
//
// The returned error kinds mirror Step: an assertion that fails before any
// memory access is reported immediately.
func (p *P) InitState() (State, *AssertFailure) {
	st := State{Threads: make([]ThreadState, len(p.Threads))}
	for i := range p.Threads {
		ts := ThreadState{PC: 0, Regs: make([]lang.Val, p.Threads[i].seq.NumRegs)}
		closed, fail := p.Threads[i].EpsClose(ts)
		if fail != nil {
			return st, fail
		}
		st.Threads[i] = closed
	}
	return st, nil
}

// State is a state of the concurrent program: one ThreadState per thread.
// The verifier maintains the invariant that every thread is at a memory
// instruction or terminated (ε-closure applied).
type State struct {
	Threads []ThreadState
}

// Clone returns a deep copy.
func (s State) Clone() State {
	ts := make([]ThreadState, len(s.Threads))
	for i := range s.Threads {
		ts[i] = s.Threads[i].Clone()
	}
	return State{Threads: ts}
}

// CopyFrom overwrites s with o, reusing s's register storage when the
// shapes match. This is the pooled-scratch counterpart of Clone: explorers
// that recycle frontier states copy into a pooled State instead of
// allocating a fresh one per successor.
func (s *State) CopyFrom(o State) {
	if len(s.Threads) != len(o.Threads) {
		s.Threads = make([]ThreadState, len(o.Threads))
	}
	for i := range o.Threads {
		ts := &s.Threads[i]
		ts.PC = o.Threads[i].PC
		if len(ts.Regs) != len(o.Threads[i].Regs) {
			ts.Regs = make([]lang.Val, len(o.Threads[i].Regs))
		}
		copy(ts.Regs, o.Threads[i].Regs)
	}
}

// AssertFailure reports a violated assert instruction.
type AssertFailure struct {
	Tid  lang.Tid
	PC   int
	Line int
}

func (a *AssertFailure) Error() string {
	return fmt.Sprintf("assertion failed in thread %d at pc %d (line %d)", a.Tid, a.PC, a.Line)
}

// epsBudget bounds the fast path of ε-closure before cycle detection kicks
// in; most closures take only a handful of steps.
const epsBudget = 256

// EpsClose runs the thread's deterministic ε-instructions (assignments,
// branches, asserts) until it reaches a memory instruction or terminates.
// This implements the ε-closure built into the transition relation of
// Definition 2.4. A local ε-cycle (a thread spinning without memory access)
// is treated as silent divergence: the thread is parked at a pseudo-
// terminated state, since it can never influence or observe memory again.
//
// A failed assert is reported; the thread state returned alongside a
// failure is the state at the failing assert.
func (t *Thread) EpsClose(ts ThreadState) (ThreadState, *AssertFailure) {
	vc := t.prog.ValCount
	steps := 0
	var seen map[uint64]struct{}
	for {
		if ts.PC < 0 || ts.PC >= len(t.seq.Insts) {
			ts.PC = len(t.seq.Insts) // canonical terminated pc
			return ts, nil
		}
		in := &t.seq.Insts[ts.PC]
		if in.IsMem() {
			return ts, nil
		}
		switch in.Kind {
		case lang.IAssign:
			if sameVal := in.E.Eval(ts.Regs, vc); ts.Regs[in.Reg] != sameVal {
				// Copy-on-write: only clone the register file when it
				// actually changes, keeping closure cheap.
				regs := make([]lang.Val, len(ts.Regs))
				copy(regs, ts.Regs)
				regs[in.Reg] = sameVal
				ts.Regs = regs
			}
			ts.PC++
		case lang.IGoto:
			if in.E.Eval(ts.Regs, vc) != 0 {
				ts.PC = in.Target
			} else {
				ts.PC++
			}
		case lang.IAssert:
			if in.E.Eval(ts.Regs, vc) == 0 {
				return ts, &AssertFailure{Tid: t.tid, PC: ts.PC, Line: in.Line}
			}
			ts.PC++
		}
		steps++
		if steps >= epsBudget {
			if seen == nil {
				seen = make(map[uint64]struct{})
			}
			key := t.hashLocal(ts)
			if _, dup := seen[key]; dup {
				// Local divergence: park the thread.
				ts.PC = len(t.seq.Insts)
				return ts, nil
			}
			seen[key] = struct{}{}
		}
	}
}

// epsCloseInPlace is EpsClose mutating ts directly: the caller owns
// ts.Regs as scratch, so no copy-on-write is needed. It is the closure
// step of the allocation-free ApplyInto kernel; the cycle-detection `seen`
// map is only materialized past epsBudget steps (pathological spins).
func (t *Thread) epsCloseInPlace(ts *ThreadState) *AssertFailure {
	vc := t.prog.ValCount
	steps := 0
	var seen map[uint64]struct{}
	for {
		if ts.PC < 0 || ts.PC >= len(t.seq.Insts) {
			ts.PC = len(t.seq.Insts) // canonical terminated pc
			return nil
		}
		in := &t.seq.Insts[ts.PC]
		if in.IsMem() {
			return nil
		}
		switch in.Kind {
		case lang.IAssign:
			ts.Regs[in.Reg] = in.E.Eval(ts.Regs, vc)
			ts.PC++
		case lang.IGoto:
			if in.E.Eval(ts.Regs, vc) != 0 {
				ts.PC = in.Target
			} else {
				ts.PC++
			}
		case lang.IAssert:
			if in.E.Eval(ts.Regs, vc) == 0 {
				return &AssertFailure{Tid: t.tid, PC: ts.PC, Line: in.Line}
			}
			ts.PC++
		}
		steps++
		if steps >= epsBudget {
			if seen == nil {
				seen = make(map[uint64]struct{})
			}
			key := t.hashLocal(*ts)
			if _, dup := seen[key]; dup {
				ts.PC = len(t.seq.Insts)
				return nil
			}
			seen[key] = struct{}{}
		}
	}
}

// hashLocal hashes (pc, regs) for ε-cycle detection (FNV-1a).
func (t *Thread) hashLocal(ts ThreadState) uint64 {
	h := uint64(14695981039346656037)
	mix := func(b byte) { h ^= uint64(b); h *= 1099511628211 }
	mix(byte(ts.PC))
	mix(byte(ts.PC >> 8))
	for _, v := range ts.Regs {
		mix(byte(v))
	}
	return h
}

// Terminated reports whether the thread has no further transitions at ts.
func (t *Thread) Terminated(ts ThreadState) bool {
	return ts.PC >= len(t.seq.Insts) || ts.PC < 0
}

// AtEps reports whether the thread's next instruction is an ε-instruction
// (assignment, branch, assert).
func (t *Thread) AtEps(ts ThreadState) bool {
	return !t.Terminated(ts) && !t.seq.Insts[ts.PC].IsMem()
}

// StepEps performs exactly one ε-instruction (the thread must be at one,
// per AtEps). It returns the successor state, or an assertion failure. The
// ε-granular state-robustness explorers use this to enumerate every
// partially-closed state of Definition 2.4 — e.g. the §2.3 barrier
// counterexample, where both threads sit on their loop branches holding
// stale zeroes.
func (t *Thread) StepEps(ts ThreadState) (ThreadState, *AssertFailure) {
	next := ThreadState{Regs: make([]lang.Val, len(ts.Regs))}
	if fail := t.StepEpsInto(ts, &next); fail != nil {
		return ts, fail
	}
	return next, nil
}

// StepEpsInto is StepEps writing the successor into dst, whose Regs must
// already have the thread's register count and must not alias ts.Regs.
// Pooled-scratch explorers use it to step without allocating.
func (t *Thread) StepEpsInto(ts ThreadState, dst *ThreadState) *AssertFailure {
	vc := t.prog.ValCount
	in := &t.seq.Insts[ts.PC]
	dst.PC = ts.PC
	copy(dst.Regs, ts.Regs)
	switch in.Kind {
	case lang.IAssign:
		dst.Regs[in.Reg] = in.E.Eval(ts.Regs, vc)
		dst.PC++
	case lang.IGoto:
		if in.E.Eval(ts.Regs, vc) != 0 {
			dst.PC = in.Target
		} else {
			dst.PC++
		}
	case lang.IAssert:
		if in.E.Eval(ts.Regs, vc) == 0 {
			return &AssertFailure{Tid: t.tid, PC: ts.PC, Line: in.Line}
		}
		dst.PC++
	default:
		panic("prog: StepEps on memory instruction")
	}
	return nil
}

// Op returns the thread's pending memory operation at ts (which must be
// ε-closed), or a MemOp with Kind OpNone if the thread has terminated.
func (t *Thread) Op(ts ThreadState) MemOp {
	if t.Terminated(ts) {
		return MemOp{Kind: OpNone, PC: ts.PC}
	}
	in := &t.seq.Insts[ts.PC]
	vc := t.prog.ValCount
	loc := in.Mem.Resolve(ts.Regs, vc)
	op := MemOp{Loc: loc, NA: t.prog.Locs[loc].NA, PC: ts.PC}
	switch in.Kind {
	case lang.IWrite:
		op.Kind = OpWrite
		op.WVal = in.E.Eval(ts.Regs, vc)
	case lang.IRead:
		op.Kind = OpRead
		op.Reg = in.Reg
	case lang.IFADD:
		op.Kind = OpFADD
		op.Add = in.E.Eval(ts.Regs, vc)
		op.Reg = in.Reg
	case lang.IXCHG:
		op.Kind = OpXCHG
		op.New = in.E.Eval(ts.Regs, vc)
		op.Reg = in.Reg
	case lang.ICAS:
		op.Kind = OpCAS
		op.Exp = in.ER.Eval(ts.Regs, vc)
		op.New = in.EW.Eval(ts.Regs, vc)
		op.Reg = in.Reg
	case lang.IWait:
		op.Kind = OpWait
		op.WVal = in.E.Eval(ts.Regs, vc)
	case lang.IBCAS:
		op.Kind = OpBCAS
		op.Exp = in.ER.Eval(ts.Regs, vc)
		op.New = in.EW.Eval(ts.Regs, vc)
	default:
		panic("prog: ε-instruction after closure")
	}
	return op
}

// Enables reports whether the thread's operation op enables the given
// label, per the transition rules of Figure 2.
func Enables(op MemOp, l lang.Label) bool {
	if op.Kind == OpNone || op.Loc != l.Loc {
		return false
	}
	switch op.Kind {
	case OpWrite:
		return l.Typ == lang.LWrite && l.VW == op.WVal
	case OpRead:
		return l.Typ == lang.LRead
	case OpFADD:
		return l.Typ == lang.LRMW // with VW = VR + Add, checked by caller if needed
	case OpCAS:
		if l.Typ == lang.LRMW {
			return l.VR == op.Exp && l.VW == op.New
		}
		return l.Typ == lang.LRead && l.VR != op.Exp
	case OpWait:
		return l.Typ == lang.LRead && l.VR == op.WVal
	case OpBCAS:
		return l.Typ == lang.LRMW && l.VR == op.Exp && l.VW == op.New
	case OpXCHG:
		return l.Typ == lang.LRMW && l.VW == op.New
	}
	return false
}

// SCLabel computes the unique label the operation yields under sequential
// consistency when the current value of the location is cur, or ok=false if
// the thread is blocked (wait/BCAS with a non-matching value) or terminated.
//
// Under SC every operation reads the latest value, so the label is
// deterministic; this is what makes the reduction of §5 explore exactly the
// SC state space.
func SCLabel(op MemOp, cur lang.Val, valCount int) (lang.Label, bool) {
	switch op.Kind {
	case OpWrite:
		return lang.WriteLab(op.Loc, op.WVal), true
	case OpRead:
		return lang.ReadLab(op.Loc, cur), true
	case OpFADD:
		return lang.RMWLab(op.Loc, cur, lang.Val((int(cur)+int(op.Add))%valCount)), true
	case OpCAS:
		if cur == op.Exp {
			return lang.RMWLab(op.Loc, op.Exp, op.New), true
		}
		return lang.ReadLab(op.Loc, cur), true
	case OpWait:
		if cur == op.WVal {
			return lang.ReadLab(op.Loc, cur), true
		}
		return lang.Label{}, false
	case OpBCAS:
		if cur == op.Exp {
			return lang.RMWLab(op.Loc, op.Exp, op.New), true
		}
		return lang.Label{}, false
	case OpXCHG:
		return lang.RMWLab(op.Loc, cur, op.New), true
	}
	return lang.Label{}, false
}

// ApplyRaw performs the state update of the thread's pending instruction
// for the given label (which must be enabled by the thread's operation)
// WITHOUT the trailing ε-closure. The returned state is the finest
// observation point of Definition 2.4's transition (zero trailing
// ε-steps); state-robustness comparisons must use it, since the paper's
// reachable states include every partial ε-closure (e.g. the barrier
// counterexample of §2.3 is a state whose pc sits on the branch after the
// stale read).
func (t *Thread) ApplyRaw(ts ThreadState, l lang.Label) ThreadState {
	next := ThreadState{Regs: make([]lang.Val, len(ts.Regs))}
	t.ApplyRawInto(ts, l, &next)
	return next
}

// ApplyRawInto is ApplyRaw writing the successor into dst, whose Regs must
// already have the thread's register count and must not alias ts.Regs.
func (t *Thread) ApplyRawInto(ts ThreadState, l lang.Label, dst *ThreadState) {
	in := &t.seq.Insts[ts.PC]
	dst.PC = ts.PC + 1
	copy(dst.Regs, ts.Regs)
	switch in.Kind {
	case lang.IRead, lang.IFADD, lang.IXCHG, lang.ICAS:
		dst.Regs[in.Reg] = l.VR
	case lang.IWrite, lang.IWait, lang.IBCAS:
		// no register update
	default:
		panic("prog: Apply on ε-instruction")
	}
}

// Apply is ApplyRaw followed by ε-closure: the transition granularity at
// which the verifier explores (fewer interleavings, same verdicts — the
// robustness checks depend only on ε-closed states).
func (t *Thread) Apply(ts ThreadState, l lang.Label) (ThreadState, *AssertFailure) {
	return t.EpsClose(t.ApplyRaw(ts, l))
}

// ApplyInto is Apply writing the successor into per-worker scratch dst
// (same Regs contract as ApplyRawInto): the clone-free step kernel of the
// exploration hot loop. The caller typically swaps dst into its current
// State for encoding and swaps the original back afterwards, so the whole
// expand-encode-intern cycle touches no heap.
func (t *Thread) ApplyInto(ts ThreadState, l lang.Label, dst *ThreadState) *AssertFailure {
	t.ApplyRawInto(ts, l, dst)
	return t.epsCloseInPlace(dst)
}

// Ops returns the pending memory operation of every thread at state s.
func (p *P) Ops(s State) []MemOp {
	ops := make([]MemOp, len(p.Threads))
	p.OpsInto(ops, s)
	return ops
}

// OpsInto fills dst (length = number of threads) with the pending memory
// operation of every thread at state s — Ops into caller scratch.
func (p *P) OpsInto(dst []MemOp, s State) {
	for i := range p.Threads {
		dst[i] = p.Threads[i].Op(s.Threads[i])
	}
}

// AllTerminated reports whether every thread of s has terminated.
func (p *P) AllTerminated(s State) bool {
	for i := range p.Threads {
		if !p.Threads[i].Terminated(s.Threads[i]) {
			return false
		}
	}
	return true
}

// EncodeState appends a canonical byte encoding of s to dst, for
// visited-set hashing: per thread, the pc (2 bytes) followed by the
// registers, with registers that are dead at the pc canonicalized to zero
// (bisimilar states then encode identically; see liveness.go).
func (p *P) EncodeState(dst []byte, s State) []byte {
	for i := range s.Threads {
		ts := &s.Threads[i]
		dst = append(dst, byte(ts.PC), byte(ts.PC>>8))
		live := p.Threads[i].live[ts.PC]
		for r, v := range ts.Regs {
			if live&(1<<r) == 0 {
				v = 0
			}
			dst = append(dst, byte(v))
		}
	}
	return dst
}

// EncodeStateRaw is EncodeState without the dead-register
// canonicalization. State-robustness comparisons (Definition 2.6) must use
// raw states: the registers that witness a weak behaviour (e.g. the two
// zero reads of SB) are typically dead by the time the state is compared,
// and zeroing them would erase exactly the distinction being checked.
func (p *P) EncodeStateRaw(dst []byte, s State) []byte {
	for i := range s.Threads {
		ts := &s.Threads[i]
		dst = append(dst, byte(ts.PC), byte(ts.PC>>8))
		for _, v := range ts.Regs {
			dst = append(dst, byte(v))
		}
	}
	return dst
}

// StateKeyRaw returns the raw encoding of s as a string key.
func (p *P) StateKeyRaw(s State) string {
	return string(p.EncodeStateRaw(nil, s))
}

// DecodeState reconstructs a program state from an EncodeState buffer into
// the (pre-allocated) state s, returning the number of bytes consumed.
// Registers that were dead at the encoded pc come back as zero, which is
// bisimilar to the original state.
func (p *P) DecodeState(data []byte, s State) int {
	pos := 0
	for i := range s.Threads {
		ts := &s.Threads[i]
		ts.PC = int(data[pos]) | int(data[pos+1])<<8
		pos += 2
		for r := range ts.Regs {
			ts.Regs[r] = lang.Val(data[pos])
			pos++
		}
	}
	return pos
}

// StateKey returns the canonical encoding of s as a string key.
func (p *P) StateKey(s State) string {
	return string(p.EncodeState(nil, s))
}
