package prog_test

import (
	"bytes"
	"testing"

	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/prog"
)

// fuzzPrograms compiles a fixed selection of Figure 7 benchmark programs
// once; the fuzz body picks among them by index. The selection spans the
// shape space: thread counts, register counts, and instruction counts all
// differ across the set.
func fuzzPrograms(tb testing.TB) []*prog.P {
	tb.Helper()
	var ps []*prog.P
	for _, e := range litmus.Fig7() {
		ps = append(ps, prog.New(e.Program()))
	}
	if len(ps) == 0 {
		tb.Fatal("no Figure 7 programs registered")
	}
	return ps
}

// buildState derives a well-formed (but otherwise arbitrary) program state
// from fuzz data: every pc lands in [0, len(Insts)] — the range liveness
// tables cover — and every register in the program's value domain. The data
// is consumed cyclically so short inputs still reach every field.
func buildState(p *prog.P, valCount int, data []byte) prog.State {
	s := p.InitStateRaw()
	k := 0
	next := func() int {
		if len(data) == 0 {
			return 0
		}
		b := data[k%len(data)]
		k++
		return int(b)
	}
	for i := range s.Threads {
		s.Threads[i].PC = next() % (len(p.Prog.Threads[i].Insts) + 1)
		for r := range s.Threads[i].Regs {
			s.Threads[i].Regs[r] = lang.Val(next() % valCount)
		}
	}
	return s
}

// FuzzEncodeStateRoundTrip checks the visited-set encoding of program
// states: the raw encoding must round-trip exactly, and the canonical
// (dead-register-zeroing) encoding must be a projection — stable under a
// decode/re-encode cycle, never longer than the raw form, and identical
// for the state it decodes to. Seeded with the initial states of the
// Figure 7 corpus; `go test` runs seeds only, `go test -fuzz` explores.
func FuzzEncodeStateRoundTrip(f *testing.F) {
	progs := fuzzPrograms(f)
	for i, p := range progs {
		f.Add(uint8(i), p.EncodeStateRaw(nil, p.InitStateRaw()))
		f.Add(uint8(i), []byte{0x07, 0xff, 0x3c, 0x01, 0x00, 0xa5})
	}
	f.Fuzz(func(t *testing.T, pi uint8, data []byte) {
		p := progs[int(pi)%len(progs)]
		s := buildState(p, p.Prog.ValCount, data)

		raw := p.EncodeStateRaw(nil, s)
		dec := p.InitStateRaw()
		if n := p.DecodeState(raw, dec); n != len(raw) {
			t.Fatalf("DecodeState consumed %d of %d bytes", n, len(raw))
		}
		if again := p.EncodeStateRaw(nil, dec); !bytes.Equal(raw, again) {
			t.Fatalf("raw encoding not a bijection:\n  %x\n  %x", raw, again)
		}

		enc := p.EncodeState(nil, s)
		if len(enc) != len(raw) {
			t.Fatalf("canonical and raw encodings disagree on length: %d vs %d", len(enc), len(raw))
		}
		dec2 := p.InitStateRaw()
		if n := p.DecodeState(enc, dec2); n != len(enc) {
			t.Fatalf("DecodeState consumed %d of %d bytes", n, len(enc))
		}
		if again := p.EncodeState(nil, dec2); !bytes.Equal(enc, again) {
			t.Fatalf("canonical encoding not idempotent:\n  %x\n  %x", enc, again)
		}
	})
}
