package prog

import "repro/internal/lang"

// Register liveness. Two program states that differ only in the values of
// registers that are dead (never read again before being overwritten) are
// bisimilar, so the explorer canonicalizes dead registers to zero when
// encoding states. This mirrors the dead-variable elimination Spin applies
// to Rocker's generated Promela and typically shrinks the explored state
// space by orders of magnitude on programs with scratch registers (fence
// results, critical-section check registers, busy-wait loop registers).

// LiveMasks exposes the per-pc live-register bitmasks (index len(Insts)
// is the terminal point) for external consumers such as the code
// generator in internal/emit.
func LiveMasks(t *lang.SeqProg) []uint64 {
	return liveSets(t)
}

// liveSets computes, for each instruction index (plus the terminal index
// len(insts)), the bitmask of registers live on entry. Standard backward
// may-liveness over the thread's control-flow graph.
func liveSets(t *lang.SeqProg) []uint64 {
	n := len(t.Insts)
	live := make([]uint64, n+1) // live[n] = 0: nothing live at termination
	use := make([]uint64, n)
	def := make([]uint64, n)
	for pc := range t.Insts {
		in := &t.Insts[pc]
		u := exprRegs(in.E) | exprRegs(in.ER) | exprRegs(in.EW)
		if in.Mem.Index != nil {
			u |= exprRegs(in.Mem.Index)
		}
		use[pc] = u
		switch in.Kind {
		case lang.IAssign, lang.IRead, lang.IFADD, lang.ICAS, lang.IXCHG:
			def[pc] = 1 << in.Reg
		}
	}
	succs := func(pc int) []int {
		in := &t.Insts[pc]
		if in.Kind == lang.IGoto {
			if c, ok := in.E.IsConst(); ok && c != 0 {
				return []int{in.Target} // unconditional
			}
			return []int{pc + 1, in.Target}
		}
		return []int{pc + 1}
	}
	for changed := true; changed; {
		changed = false
		for pc := n - 1; pc >= 0; pc-- {
			var out uint64
			for _, s := range succs(pc) {
				if s > n {
					s = n
				}
				out |= live[s]
			}
			in := use[pc] | (out &^ def[pc])
			if in != live[pc] {
				live[pc] = in
				changed = true
			}
		}
	}
	return live
}

func exprRegs(e *lang.Expr) uint64 {
	if e == nil {
		return 0
	}
	switch e.Kind {
	case lang.EReg:
		return 1 << e.Reg
	case lang.ENot:
		return exprRegs(e.L)
	case lang.EBin:
		return exprRegs(e.L) | exprRegs(e.R)
	}
	return 0
}
