package prog

import (
	"fmt"

	"repro/internal/lang"
)

// Digest is a stable 128-bit fingerprint of a compiled program's LTS.
type Digest [16]byte

// String renders the digest as 32 hex digits.
func (d Digest) String() string { return fmt.Sprintf("%x", d[:]) }

// CanonicalDigest returns a deterministic 128-bit digest of the program's
// labeled transition system. Two sources that compile to the same LTS get
// the same digest; in particular the digest is invariant under
//
//   - whitespace, comments, and statement layout (the parser discards them),
//   - renaming of goto labels (compiled to instruction indices),
//   - renaming of programs, threads, locations, and registers (names are
//     not serialized; registers are renumbered canonically in order of
//     first textual appearance, so any consistent renaming is absorbed),
//
// while any change to the transition system itself — an instruction, an
// operand expression, a jump target, the value domain, a location's
// non-atomic flag, the location or thread layout — changes it (up to hash
// collisions, < n²·2⁻¹²⁸ over n programs).
//
// This is the verdict-cache key of the rockerd service: a robustness
// verdict depends only on the LTS, so digest-equal programs share verdicts.
// The byte serialization and the hash are pinned by TestDigestPinned —
// digests may be persisted, so refactors must not silently change them.
func CanonicalDigest(p *lang.Program) Digest {
	var h digestHasher
	h.byte('P')
	h.byte(1) // serialization version
	h.byte(byte(p.ValCount))
	h.u16(len(p.Locs))
	for i := range p.Locs {
		if p.Locs[i].NA {
			h.byte(1)
		} else {
			h.byte(0)
		}
	}
	h.byte(byte(len(p.Threads)))
	for ti := range p.Threads {
		t := &p.Threads[ti]
		h.byte('T')
		h.u16(len(t.Insts))
		// Canonical register numbering: registers are renumbered in order
		// of first appearance, visiting each instruction's fields in the
		// parser's textual order, so the numbering matches what reparsing
		// a pretty-printed listing would allocate.
		canon := map[lang.Reg]byte{}
		reg := func(r lang.Reg) {
			c, ok := canon[r]
			if !ok {
				c = byte(len(canon))
				canon[r] = c
			}
			h.byte('r')
			h.byte(c)
		}
		var expr func(e *lang.Expr)
		expr = func(e *lang.Expr) {
			if e == nil {
				h.byte('z')
				return
			}
			switch e.Kind {
			case lang.EConst:
				h.byte('c')
				h.byte(byte(e.Const))
			case lang.EReg:
				reg(e.Reg)
			case lang.EBin:
				h.byte('b')
				h.byte(byte(e.Op))
				expr(e.L)
				expr(e.R)
			case lang.ENot:
				h.byte('n')
				expr(e.L)
			}
		}
		mem := func(m lang.MemRef) {
			h.byte('M')
			h.byte(byte(m.Base))
			h.u16(m.Size)
			if m.Size > 1 {
				expr(m.Index)
			}
		}
		for ii := range t.Insts {
			in := &t.Insts[ii]
			h.byte(byte(in.Kind))
			switch in.Kind {
			case lang.IAssign:
				reg(in.Reg)
				expr(in.E)
			case lang.IGoto:
				expr(in.E)
				h.u16(in.Target)
			case lang.IWrite:
				mem(in.Mem)
				expr(in.E)
			case lang.IRead:
				reg(in.Reg)
				mem(in.Mem)
			case lang.IFADD, lang.IXCHG:
				reg(in.Reg)
				mem(in.Mem)
				expr(in.E)
			case lang.ICAS:
				reg(in.Reg)
				mem(in.Mem)
				expr(in.ER)
				expr(in.EW)
			case lang.IWait:
				mem(in.Mem)
				expr(in.E)
			case lang.IBCAS:
				mem(in.Mem)
				expr(in.ER)
				expr(in.EW)
			case lang.IAssert:
				expr(in.E)
			}
		}
	}
	return h.sum()
}

// digestHasher is a self-contained two-lane 64-bit FNV-1a variant with a
// splitmix64 finalizer. It is deliberately independent of
// explore.Hash128: digests may outlive a process (verdict caches), so the
// state-hash function must be free to evolve without invalidating them.
type digestHasher struct {
	h1, h2 uint64
	init   bool
}

const (
	digestOff1   = 14695981039346656037
	digestOff2   = 0x9e3779b97f4a7c15
	digestPrime1 = 1099511628211
	digestPrime2 = 0x100000001b3 ^ 0x9e37 // second lane: distinct multiplier
)

func (d *digestHasher) byte(b byte) {
	if !d.init {
		d.h1, d.h2, d.init = digestOff1, digestOff2, true
	}
	d.h1 = (d.h1 ^ uint64(b)) * digestPrime1
	d.h2 = (d.h2 ^ uint64(b)) * digestPrime2
}

func (d *digestHasher) u16(v int) {
	d.byte(byte(v))
	d.byte(byte(v >> 8))
}

func (d *digestHasher) sum() Digest {
	f := func(x uint64) uint64 {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return x
	}
	var out Digest
	a, b := f(d.h1), f(d.h2^d.h1)
	for i := 0; i < 8; i++ {
		out[i] = byte(a >> (8 * i))
		out[8+i] = byte(b >> (8 * i))
	}
	return out
}
