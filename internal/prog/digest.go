package prog

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/lang"
)

// Digest is a stable 128-bit fingerprint of a compiled program's LTS.
type Digest [16]byte

// String renders the digest as 32 hex digits.
func (d Digest) String() string { return fmt.Sprintf("%x", d[:]) }

// CanonicalDigest returns a deterministic 128-bit digest of the program's
// labeled transition system. Two sources that compile to the same LTS get
// the same digest; in particular the digest is invariant under
//
//   - whitespace, comments, and statement layout (the parser discards them),
//   - renaming of goto labels (compiled to instruction indices),
//   - renaming of programs, threads, locations, and registers (names are
//     not serialized; registers are renumbered canonically in order of
//     first textual appearance, so any consistent renaming is absorbed),
//   - permutation of the thread order (since v2: the per-thread
//     serializations are sorted before hashing — every verdict the digest
//     keys is invariant under thread permutation, because no memory model
//     here treats thread identities asymmetrically),
//
// while any change to the transition system itself — an instruction, an
// operand expression, a jump target, the value domain, a location's
// non-atomic flag, the location layout or the multiset of threads —
// changes it (up to hash collisions, < n²·2⁻¹²⁸ over n programs).
//
// This is the verdict-cache key of the rockerd service: a robustness
// verdict depends only on the LTS, so digest-equal programs share verdicts.
// The byte serialization and the hash are pinned by TestDigestPinned —
// digests may be persisted, so refactors must not silently change them.
func CanonicalDigest(p *lang.Program) Digest {
	var h digestHasher
	h.byte('P')
	h.byte(2) // serialization version (2: sorted thread serializations)
	h.byte(byte(p.ValCount))
	h.u16(len(p.Locs))
	for i := range p.Locs {
		if p.Locs[i].NA {
			h.byte(1)
		} else {
			h.byte(0)
		}
	}
	h.byte(byte(len(p.Threads)))
	threads := make([][]byte, len(p.Threads))
	for ti := range p.Threads {
		threads[ti] = appendThread(nil, &p.Threads[ti])
	}
	sort.Slice(threads, func(i, j int) bool {
		return bytes.Compare(threads[i], threads[j]) < 0
	})
	for _, tb := range threads {
		h.byte('T')
		for _, b := range tb {
			h.byte(b)
		}
	}
	return h.sum()
}

// appendThread appends the canonical serialization of one thread to buf.
// Thread serializations are hashed in sorted (not program) order, so each
// must be self-contained: it carries the instruction count up front and
// never references the thread's index.
func appendThread(buf []byte, t *lang.SeqProg) []byte {
	u16 := func(v int) {
		buf = append(buf, byte(v), byte(v>>8))
	}
	u16(len(t.Insts))
	// Canonical register numbering: registers are renumbered in order
	// of first appearance, visiting each instruction's fields in the
	// parser's textual order, so the numbering matches what reparsing
	// a pretty-printed listing would allocate.
	canon := map[lang.Reg]byte{}
	reg := func(r lang.Reg) {
		c, ok := canon[r]
		if !ok {
			c = byte(len(canon))
			canon[r] = c
		}
		buf = append(buf, 'r', c)
	}
	var expr func(e *lang.Expr)
	expr = func(e *lang.Expr) {
		if e == nil {
			buf = append(buf, 'z')
			return
		}
		switch e.Kind {
		case lang.EConst:
			buf = append(buf, 'c', byte(e.Const))
		case lang.EReg:
			reg(e.Reg)
		case lang.EBin:
			buf = append(buf, 'b', byte(e.Op))
			expr(e.L)
			expr(e.R)
		case lang.ENot:
			buf = append(buf, 'n')
			expr(e.L)
		}
	}
	mem := func(m lang.MemRef) {
		buf = append(buf, 'M', byte(m.Base))
		u16(m.Size)
		if m.Size > 1 {
			expr(m.Index)
		}
	}
	for ii := range t.Insts {
		in := &t.Insts[ii]
		buf = append(buf, byte(in.Kind))
		switch in.Kind {
		case lang.IAssign:
			reg(in.Reg)
			expr(in.E)
		case lang.IGoto:
			expr(in.E)
			u16(in.Target)
		case lang.IWrite:
			mem(in.Mem)
			expr(in.E)
		case lang.IRead:
			reg(in.Reg)
			mem(in.Mem)
		case lang.IFADD, lang.IXCHG:
			reg(in.Reg)
			mem(in.Mem)
			expr(in.E)
		case lang.ICAS:
			reg(in.Reg)
			mem(in.Mem)
			expr(in.ER)
			expr(in.EW)
		case lang.IWait:
			mem(in.Mem)
			expr(in.E)
		case lang.IBCAS:
			mem(in.Mem)
			expr(in.ER)
			expr(in.EW)
		case lang.IAssert:
			expr(in.E)
		}
	}
	return buf
}

// digestHasher is a self-contained two-lane 64-bit FNV-1a variant with a
// splitmix64 finalizer. It is deliberately independent of
// explore.Hash128: digests may outlive a process (verdict caches), so the
// state-hash function must be free to evolve without invalidating them.
type digestHasher struct {
	h1, h2 uint64
	init   bool
}

const (
	digestOff1   = 14695981039346656037
	digestOff2   = 0x9e3779b97f4a7c15
	digestPrime1 = 1099511628211
	digestPrime2 = 0x100000001b3 ^ 0x9e37 // second lane: distinct multiplier
)

func (d *digestHasher) byte(b byte) {
	if !d.init {
		d.h1, d.h2, d.init = digestOff1, digestOff2, true
	}
	d.h1 = (d.h1 ^ uint64(b)) * digestPrime1
	d.h2 = (d.h2 ^ uint64(b)) * digestPrime2
}

func (d *digestHasher) u16(v int) {
	d.byte(byte(v))
	d.byte(byte(v >> 8))
}

func (d *digestHasher) sum() Digest {
	f := func(x uint64) uint64 {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return x
	}
	var out Digest
	a, b := f(d.h1), f(d.h2^d.h1)
	for i := 0; i < 8; i++ {
		out[i] = byte(a >> (8 * i))
		out[8+i] = byte(b >> (8 * i))
	}
	return out
}
