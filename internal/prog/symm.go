package prog

import (
	"bytes"

	"repro/internal/lang"
)

// Thread-symmetry machinery for the partial-order reduction layer.
//
// Two threads are interchangeable when their sequential programs are
// byte-identical under a *raw* serialization: identical instruction
// streams with identical register indices (not the canonical renumbering
// of CanonicalDigest — state permutation swaps whole register files
// positionally, so register r of one thread must mean register r of the
// other). Any permutation of the threads within such a class maps runs of
// the concurrent program to runs: the interleaving semantics, the SCM
// monitor, and the weak machines all treat thread identities symmetrically.
//
// Exploration exploits this by canonicalizing each state under the class
// permutations before interning it, collapsing orbits to single
// representatives. The serialization here is deliberately independent of
// digest.go's pinned appendThread.

// SymClasses returns the classes of size >= 2 of interchangeable threads
// (thread indices, ascending; classes ordered by first member). Thread and
// register *names* are ignored — they do not affect semantics.
func SymClasses(p *lang.Program) [][]int {
	byBlob := make(map[string]int)
	var classes [][]int
	for ti := range p.Threads {
		blob := string(rawThreadBytes(nil, &p.Threads[ti]))
		if ci, ok := byBlob[blob]; ok {
			classes[ci] = append(classes[ci], ti)
			continue
		}
		byBlob[blob] = len(classes)
		classes = append(classes, []int{ti})
	}
	out := classes[:0]
	for _, c := range classes {
		if len(c) >= 2 {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// rawThreadBytes appends a positional (raw-register) serialization of one
// thread's code to buf. Unlike digest.go's appendThread it keeps register
// indices verbatim and records the register-file size, so byte equality
// guarantees the threads' states can be swapped wholesale.
func rawThreadBytes(buf []byte, t *lang.SeqProg) []byte {
	u16 := func(v int) {
		buf = append(buf, byte(v), byte(v>>8))
	}
	u16(len(t.Insts))
	u16(t.NumRegs)
	var expr func(e *lang.Expr)
	expr = func(e *lang.Expr) {
		if e == nil {
			buf = append(buf, 'z')
			return
		}
		switch e.Kind {
		case lang.EConst:
			buf = append(buf, 'c', byte(e.Const))
		case lang.EReg:
			buf = append(buf, 'r', byte(e.Reg))
		case lang.EBin:
			buf = append(buf, 'b', byte(e.Op))
			expr(e.L)
			expr(e.R)
		case lang.ENot:
			buf = append(buf, 'n')
			expr(e.L)
		}
	}
	mem := func(m lang.MemRef) {
		buf = append(buf, 'M', byte(m.Base))
		u16(m.Size)
		if m.Size > 1 {
			expr(m.Index)
		}
	}
	for ii := range t.Insts {
		in := &t.Insts[ii]
		buf = append(buf, byte(in.Kind))
		switch in.Kind {
		case lang.IAssign:
			buf = append(buf, 'r', byte(in.Reg))
			expr(in.E)
		case lang.IGoto:
			expr(in.E)
			u16(in.Target)
		case lang.IWrite:
			mem(in.Mem)
			expr(in.E)
		case lang.IRead:
			buf = append(buf, 'r', byte(in.Reg))
			mem(in.Mem)
		case lang.IFADD, lang.IXCHG:
			buf = append(buf, 'r', byte(in.Reg))
			mem(in.Mem)
			expr(in.E)
		case lang.ICAS:
			buf = append(buf, 'r', byte(in.Reg))
			mem(in.Mem)
			expr(in.ER)
			expr(in.EW)
		case lang.IWait:
			mem(in.Mem)
			expr(in.E)
		case lang.IBCAS:
			mem(in.Mem)
			expr(in.ER)
			expr(in.EW)
		case lang.IAssert:
			expr(in.E)
		}
	}
	return buf
}

// EncodeStatePerm is EncodeState emitting the threads in permuted order:
// slot i of the encoding carries thread perm[i]'s (pc, live-masked
// registers). perm must permute thread indices within symmetry classes
// only, so every slot receives a thread with the slot's register count and
// liveness tables.
func (p *P) EncodeStatePerm(dst []byte, s State, perm []uint8) []byte {
	for i := range s.Threads {
		ts := &s.Threads[perm[i]]
		dst = append(dst, byte(ts.PC), byte(ts.PC>>8))
		live := p.Threads[perm[i]].live[ts.PC]
		for r, v := range ts.Regs {
			if live&(1<<r) == 0 {
				v = 0
			}
			dst = append(dst, byte(v))
		}
	}
	return dst
}

// CmpThreads totally orders threads a and b of state s by their encoded
// program-state blocks: pc first, then the live-masked register file. The
// two threads must belong to one symmetry class (same register count and
// liveness tables). A zero result means the blocks encode identically, so
// swapping the threads changes no program-state byte.
func (p *P) CmpThreads(s State, a, b int) int {
	ta, tb := &s.Threads[a], &s.Threads[b]
	if ta.PC != tb.PC {
		if ta.PC < tb.PC {
			return -1
		}
		return 1
	}
	live := p.Threads[a].live[ta.PC]
	for r := range ta.Regs {
		va, vb := ta.Regs[r], tb.Regs[r]
		if live&(1<<r) == 0 {
			continue
		}
		if va != vb {
			if va < vb {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Symmetry bundles a program's symmetry classes with the byte-block
// layout of its raw state encoding, for canonicalizing raw keys without
// decoding them (the state-robustness checkers' projection sets).
type Symmetry struct {
	Classes [][]int
	offs    []int // byte offset of each thread's block in EncodeStateRaw
	bl      []int // block length per thread (2 + NumRegs)
	scratch []byte
}

// NewSymmetry returns the symmetry of p's program, or nil when no two
// threads are interchangeable.
func NewSymmetry(p *P) *Symmetry {
	classes := SymClasses(p.Prog)
	if classes == nil {
		return nil
	}
	sy := &Symmetry{Classes: classes}
	off := 0
	for i := range p.Threads {
		sy.offs = append(sy.offs, off)
		bl := 2 + p.Threads[i].seq.NumRegs
		sy.bl = append(sy.bl, bl)
		off += bl
	}
	sy.scratch = make([]byte, off)
	return sy
}

// CanonRaw canonicalizes a raw state encoding (EncodeStateRaw layout) in
// place: within each symmetry class, the member byte blocks are sorted
// lexicographically. Two raw states related by a class permutation
// canonicalize to the same bytes. Returns buf.
func (sy *Symmetry) CanonRaw(buf []byte) []byte {
	for _, cls := range sy.Classes {
		bl := sy.bl[cls[0]]
		// Insertion sort of the class's blocks (classes are tiny).
		for i := 1; i < len(cls); i++ {
			for j := i; j > 0; j-- {
				a := buf[sy.offs[cls[j-1]] : sy.offs[cls[j-1]]+bl]
				b := buf[sy.offs[cls[j]] : sy.offs[cls[j]]+bl]
				if bytes.Compare(a, b) <= 0 {
					break
				}
				copy(sy.scratch[:bl], a)
				copy(a, b)
				copy(b, sy.scratch[:bl])
			}
		}
	}
	return buf
}
