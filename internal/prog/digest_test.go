package prog

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/parser"
)

const digestBase = `
program base
vals 4
locs x y
na d
array buf 2

thread p0
  x := 1
L:
  r0 := y
  if r0 = 0 goto L
  buf[r0 % 2] := 1
  d := 1
end

thread p1
  y := 1
  r1 := CAS(x, 1, 2)
  assert r1 <= 2
end
`

// TestDigestPinned pins the digest of a fixed program. Digests key
// persisted verdict caches; if this test fails, the serialization or the
// hash changed and every cached verdict silently becomes unreachable —
// bump the version byte deliberately instead.
func TestDigestPinned(t *testing.T) {
	p, err := parser.Parse(digestBase)
	if err != nil {
		t.Fatal(err)
	}
	const want = "9ca53fd3166539ab021e85cfc245c52b"
	if got := CanonicalDigest(p).String(); got != want {
		t.Errorf("pinned digest changed: got %s want %s", got, want)
	}
}

// TestDigestInvariance checks that representation-only edits — comments,
// whitespace, label names, register names, location names, thread and
// program names — leave the digest unchanged.
func TestDigestInvariance(t *testing.T) {
	base, err := parser.Parse(digestBase)
	if err != nil {
		t.Fatal(err)
	}
	want := CanonicalDigest(base)
	variants := map[string]func(string) string{
		"comments": func(s string) string {
			return strings.ReplaceAll(s, "x := 1", "x := 1 # store flag")
		},
		"whitespace": func(s string) string {
			return strings.ReplaceAll(s, "  ", "\t   ")
		},
		"label rename": func(s string) string {
			s = strings.ReplaceAll(s, "L:", "spin:")
			return strings.ReplaceAll(s, "goto L", "goto spin")
		},
		"register rename": func(s string) string {
			return strings.ReplaceAll(s, "r0", "tmp")
		},
		"location rename": func(s string) string {
			return strings.ReplaceAll(s, "x", "flagx")
		},
		"thread+program rename": func(s string) string {
			s = strings.ReplaceAll(s, "program base", "program other")
			return strings.ReplaceAll(s, "thread p0", "thread writer")
		},
		// Since v2, the digest canonicalizes the thread order: every
		// verdict it keys is invariant under thread permutation (no model
		// here treats thread identities asymmetrically), so permuted
		// programs share a cache entry.
		"thread permutation": func(s string) string {
			i0 := strings.Index(s, "thread p0")
			i1 := strings.Index(s, "thread p1")
			return s[:i0] + s[i1:] + "\n" + s[i0:i1]
		},
	}
	for name, edit := range variants {
		q, err := parser.Parse(edit(digestBase))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := CanonicalDigest(q); got != want {
			t.Errorf("%s: digest changed: got %s want %s", name, got, want)
		}
	}
}

// TestDigestSensitivity checks that semantic edits — a changed constant,
// operator, jump target, value domain, non-atomic flag, or instruction
// kind — each produce a distinct digest.
func TestDigestSensitivity(t *testing.T) {
	seen := map[Digest]string{}
	add := func(t *testing.T, name, src string) {
		p, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d := CanonicalDigest(p)
		if prev, dup := seen[d]; dup {
			t.Errorf("%s collides with %s: %s", name, prev, d)
		}
		seen[d] = name
	}
	add(t, "base", digestBase)
	edits := map[string][2]string{
		"constant":   {"y := 1", "y := 2"},
		"operator":   {"r0 = 0", "r0 != 0"},
		"vals":       {"vals 4", "vals 5"},
		"na flag":    {"na d", "locs d"},
		"inst kind":  {"y := 1", "r9 := XCHG(y, 1)"},
		"cas expect": {"CAS(x, 1, 2)", "CAS(x, 0, 2)"},
		"array size": {"array buf 2", "array buf 3"},
		"jump":       {"goto L", "goto done\ndone:"},
		"extra inst": {"d := 1", "d := 1\n  skip"},
	}
	for name, e := range edits {
		add(t, name, strings.Replace(digestBase, e[0], e[1], 1))
	}
}

// TestDigestFormatRoundTrip is the property the verdict cache rests on:
// for every corpus program, reparsing the canonical pretty-printed listing
// yields the same digest as the original source.
func TestDigestFormatRoundTrip(t *testing.T) {
	for _, e := range litmus.All() {
		p, err := parser.Parse(e.Source)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		formatted := parser.Format(p)
		q, err := parser.Parse(formatted)
		if err != nil {
			t.Fatalf("%s: reparse of formatted listing: %v\n%s", e.Name, err, formatted)
		}
		if dp, dq := CanonicalDigest(p), CanonicalDigest(q); dp != dq {
			t.Errorf("%s: round-trip digest mismatch: %s vs %s\n%s", e.Name, dp, dq, formatted)
		}
	}
}

// TestDigestRegisterRenumbering checks the canonical register numbering
// directly: permuting register indices (not just names) leaves the digest
// unchanged.
func TestDigestRegisterRenumbering(t *testing.T) {
	src := `
vals 3
locs x y
thread p
  r0 := 1
  r1 := x
  y := r1 + r0
end
`
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Swap registers 0 and 1 throughout thread 0 of q.
	swap := func(r lang.Reg) lang.Reg { return 1 - r }
	var fix func(e *lang.Expr)
	fix = func(e *lang.Expr) {
		if e == nil {
			return
		}
		if e.Kind == lang.EReg {
			e.Reg = swap(e.Reg)
		}
		fix(e.L)
		fix(e.R)
	}
	th := &q.Threads[0]
	th.RegNames[0], th.RegNames[1] = th.RegNames[1], th.RegNames[0]
	for i := range th.Insts {
		in := &th.Insts[i]
		if in.Kind == lang.IAssign || in.Kind == lang.IRead {
			in.Reg = swap(in.Reg)
		}
		fix(in.E)
		fix(in.ER)
		fix(in.EW)
		fix(in.Mem.Index)
	}
	if dp, dq := CanonicalDigest(p), CanonicalDigest(q); dp != dq {
		t.Errorf("register permutation changed digest: %s vs %s", dp, dq)
	}
}
