package prog_test

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/parser"
	"repro/internal/prog"
)

func mustProg(t *testing.T, src string) (*lang.Program, *prog.P) {
	t.Helper()
	pr, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return pr, prog.New(pr)
}

func TestEpsClosureStopsAtMemory(t *testing.T) {
	_, p := mustProg(t, `
program p
vals 4
locs x
thread t
  r := 1
  r2 := r + 1
  if r2 = 3 goto SKIP
  x := r2
SKIP:
  x := 0
end
`)
	st, fail := p.InitState()
	if fail != nil {
		t.Fatalf("unexpected assert failure: %v", fail)
	}
	ts := st.Threads[0]
	if ts.PC != 3 { // stopped at "x := r2"
		t.Errorf("closure stopped at pc %d, want 3", ts.PC)
	}
	if ts.Regs[0] != 1 || ts.Regs[1] != 2 {
		t.Errorf("registers after closure: %v", ts.Regs)
	}
	op := p.Threads[0].Op(ts)
	if op.Kind != prog.OpWrite || op.WVal != 2 {
		t.Errorf("op = %+v, want write of 2", op)
	}
}

func TestEpsClosureDetectsAssertFailure(t *testing.T) {
	_, p := mustProg(t, `
program p
vals 4
locs x
thread t
  r := 2
  assert r = 3
  x := 1
end
`)
	_, fail := p.InitState()
	if fail == nil {
		t.Fatalf("expected assertion failure during initial closure")
	}
	if fail.PC != 1 {
		t.Errorf("failure at pc %d, want 1", fail.PC)
	}
}

func TestEpsClosureParksLocalDivergence(t *testing.T) {
	_, p := mustProg(t, `
program p
vals 4
locs x
thread t
L:
  r := r + 1
  goto L
end
`)
	st, fail := p.InitState()
	if fail != nil {
		t.Fatalf("unexpected failure: %v", fail)
	}
	if !p.Threads[0].Terminated(st.Threads[0]) {
		t.Errorf("ε-divergent thread should be parked as terminated")
	}
}

func TestSCLabelSemantics(t *testing.T) {
	for _, tc := range []struct {
		op      prog.MemOp
		cur     lang.Val
		want    lang.Label
		enabled bool
	}{
		{prog.MemOp{Kind: prog.OpWrite, Loc: 0, WVal: 2}, 5, lang.WriteLab(0, 2), true},
		{prog.MemOp{Kind: prog.OpRead, Loc: 1}, 3, lang.ReadLab(1, 3), true},
		{prog.MemOp{Kind: prog.OpFADD, Loc: 0, Add: 3}, 2, lang.RMWLab(0, 2, 1), true}, // mod 4
		{prog.MemOp{Kind: prog.OpCAS, Loc: 0, Exp: 2, New: 3}, 2, lang.RMWLab(0, 2, 3), true},
		{prog.MemOp{Kind: prog.OpCAS, Loc: 0, Exp: 2, New: 3}, 1, lang.ReadLab(0, 1), true}, // failed CAS reads
		{prog.MemOp{Kind: prog.OpWait, Loc: 0, WVal: 1}, 1, lang.ReadLab(0, 1), true},
		{prog.MemOp{Kind: prog.OpWait, Loc: 0, WVal: 1}, 0, lang.Label{}, false},
		{prog.MemOp{Kind: prog.OpBCAS, Loc: 0, Exp: 1, New: 2}, 1, lang.RMWLab(0, 1, 2), true},
		{prog.MemOp{Kind: prog.OpBCAS, Loc: 0, Exp: 1, New: 2}, 0, lang.Label{}, false},
		{prog.MemOp{Kind: prog.OpXCHG, Loc: 0, New: 3}, 1, lang.RMWLab(0, 1, 3), true},
	} {
		got, enabled := prog.SCLabel(tc.op, tc.cur, 4)
		if enabled != tc.enabled || (enabled && got != tc.want) {
			t.Errorf("SCLabel(%+v, cur=%d) = %v,%v; want %v,%v", tc.op, tc.cur, got, enabled, tc.want, tc.enabled)
		}
	}
}

func TestEnables(t *testing.T) {
	cas := prog.MemOp{Kind: prog.OpCAS, Loc: 0, Exp: 1, New: 2}
	if !prog.Enables(cas, lang.RMWLab(0, 1, 2)) {
		t.Errorf("CAS should enable its RMW label")
	}
	if prog.Enables(cas, lang.RMWLab(0, 0, 2)) {
		t.Errorf("CAS should not enable an RMW with the wrong expected value")
	}
	if !prog.Enables(cas, lang.ReadLab(0, 0)) || prog.Enables(cas, lang.ReadLab(0, 1)) {
		t.Errorf("failed-CAS read labels wrong")
	}
	if prog.Enables(cas, lang.ReadLab(1, 0)) {
		t.Errorf("wrong location should not be enabled")
	}
}

func TestCriticalVals(t *testing.T) {
	pr, _ := mustProg(t, `
program p
vals 4
locs x y z w
thread t
  wait(x = 2)
  r := CAS(y, 1, 3)
  BCAS(z, 0, 1)
  r2 := z
  r3 := FADD(w, 1)
end
thread u
  r := y
  r2 := CAS(y, r, 0)
end
`)
	crit := prog.CriticalVals(pr)
	xi, _ := pr.LocByName("x")
	yi, _ := pr.LocByName("y")
	zi, _ := pr.LocByName("z")
	wi, _ := pr.LocByName("w")
	if crit[xi] != 1<<2 {
		t.Errorf("crit(x) = %b, want {2}", crit[xi])
	}
	// y has the constant CAS comparand 1 and a register comparand in
	// thread u, which makes every value critical.
	if crit[yi] != prog.AllValsMask(4) {
		t.Errorf("crit(y) = %b, want all", crit[yi])
	}
	if crit[zi] != 1<<0 {
		t.Errorf("crit(z) = %b, want {0}", crit[zi])
	}
	if crit[wi] != 0 {
		t.Errorf("crit(w) = %b, want none (FADD distinguishes no value)", crit[wi])
	}
}

func TestLivenessCanonicalization(t *testing.T) {
	pr, p := mustProg(t, `
program p
vals 4
locs x
thread t
  r := x
  x := r
  r2 := x
  x := 2
end
`)
	_ = pr
	st, _ := p.InitState()
	// Position the thread at the final write (pc 3): both r and r2 dead.
	ts := st.Threads[0]
	ts.PC = 3
	ts.Regs[0] = 3
	ts.Regs[1] = 2
	st.Threads[0] = ts
	enc1 := p.EncodeState(nil, st)
	ts.Regs[0] = 1
	ts.Regs[1] = 0
	st.Threads[0] = ts
	enc2 := p.EncodeState(nil, st)
	if string(enc1) != string(enc2) {
		t.Errorf("dead registers should be canonicalized in EncodeState")
	}
	raw1 := p.EncodeStateRaw(nil, st)
	ts.Regs[0] = 3
	st.Threads[0] = ts
	raw2 := p.EncodeStateRaw(nil, st)
	if string(raw1) == string(raw2) {
		t.Errorf("raw encoding must distinguish register values")
	}
	// At pc 1 ("x := r"), r is live and must be preserved.
	ts.PC = 1
	ts.Regs[0] = 3
	st.Threads[0] = ts
	live1 := p.EncodeState(nil, st)
	ts.Regs[0] = 2
	st.Threads[0] = ts
	live2 := p.EncodeState(nil, st)
	if string(live1) == string(live2) {
		t.Errorf("live register was erased by canonicalization")
	}
}

func TestDecodeStateRoundTrip(t *testing.T) {
	_, p := mustProg(t, `
program p
vals 4
locs x
thread a
  r := x
  x := r
end
thread b
  s := x
  t := s + 1
  x := t
end
`)
	st, _ := p.InitState()
	st.Threads[0].Regs[0] = 3
	enc := p.EncodeState(nil, st)
	back := p.InitStateRaw()
	n := p.DecodeState(enc, back)
	if n != len(enc) {
		t.Fatalf("decode consumed %d of %d", n, len(enc))
	}
	if string(p.EncodeState(nil, back)) != string(enc) {
		t.Errorf("decode(encode) not a fixpoint")
	}
}

func TestApplyRawVsApply(t *testing.T) {
	_, p := mustProg(t, `
program p
vals 4
locs x
thread t
  r := x
  if r = 1 goto DONE
  x := 3
DONE:
end
`)
	st, _ := p.InitState()
	ts := st.Threads[0]
	raw := p.Threads[0].ApplyRaw(ts, lang.ReadLab(0, 1))
	if raw.PC != 1 || raw.Regs[0] != 1 {
		t.Errorf("ApplyRaw: pc=%d regs=%v, want pc=1 r=1", raw.PC, raw.Regs)
	}
	closed, fail := p.Threads[0].Apply(ts, lang.ReadLab(0, 1))
	if fail != nil {
		t.Fatalf("apply: %v", fail)
	}
	if !p.Threads[0].Terminated(closed) {
		t.Errorf("Apply should have ε-closed through the taken branch to termination")
	}
}
