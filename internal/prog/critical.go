package prog

import "repro/internal/lang"

// CriticalVals computes, for each location, a bitmask of the critical
// values Val(P, x) of Definition 5.5, using the sound syntactic
// over-approximation discussed in §5.1:
//
//   - wait(x = e): a constant e makes that value critical for x; a
//     non-constant e makes every value of x critical.
//   - r := CAS(x, eR, eW) and BCAS(x, eR, eW): a constant eR makes that
//     value critical for x; a non-constant eR makes every value critical.
//   - Plain reads, writes and FADDs contribute nothing: a plain read
//     enables R(x, v) for every v, and an FADD enables RMW(x, v, ·) for
//     every v, so no value is distinguished (cf. the examples after
//     Definition 5.5).
//
// For an array reference the values become critical for every cell of the
// array, since the accessed cell is only known at run time.
//
// Over-approximating is always sound and precise here: the abstraction only
// merges the tracking of values that are provably irrelevant to
// enabledness, so tracking extra values exactly cannot change any verdict —
// it can only cost state.
func CriticalVals(p *lang.Program) []uint64 {
	crit := make([]uint64, len(p.Locs))
	mark := func(m lang.MemRef, e *lang.Expr) {
		var mask uint64
		if v, ok := e.IsConst(); ok {
			mask = 1 << (int(v) % p.ValCount)
		} else {
			mask = AllValsMask(p.ValCount)
		}
		for i := 0; i < m.Size; i++ {
			crit[m.Base+lang.Loc(i)] |= mask
		}
	}
	for ti := range p.Threads {
		for ii := range p.Threads[ti].Insts {
			in := &p.Threads[ti].Insts[ii]
			switch in.Kind {
			case lang.IWait:
				mark(in.Mem, in.E)
			case lang.ICAS, lang.IBCAS:
				mark(in.Mem, in.ER)
			}
		}
	}
	return crit
}

// AllValsMask returns the bitmask with every value of the domain set; used
// for the un-abstracted ("full value tracking") mode of the monitor.
func AllValsMask(valCount int) uint64 {
	if valCount >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << valCount) - 1
}

// AllValsCrit returns a critical-value assignment with every value of
// every location critical, for a raw (numLocs, valCount) shape — the
// un-abstracted monitor configuration when no program is at hand.
func AllValsCrit(numLocs, valCount int) []uint64 {
	crit := make([]uint64, numLocs)
	for i := range crit {
		crit[i] = AllValsMask(valCount)
	}
	return crit
}

// FullCriticalVals returns the trivial critical-value assignment in which
// every value of every location is critical. Running the monitor with this
// assignment is exactly the un-optimized construction of §5 (the CV/CW
// summary components stay empty invariantly); the difference against
// CriticalVals is the §5.1 ablation.
func FullCriticalVals(p *lang.Program) []uint64 {
	crit := make([]uint64, len(p.Locs))
	for i := range crit {
		crit[i] = AllValsMask(p.ValCount)
	}
	return crit
}
