// Read-copy-update under release/acquire (the paper's §7 highlight).
//
//	go run ./examples/rcu
//
// The example verifies the two user-level RCU models of the corpus:
//
//   - rcu: one updater, three readers, quiescent-state-based grace
//     periods. Robust with NO fences: every cross-thread obligation is a
//     message-passing handshake, and the blocking waits mask exactly the
//     benign grace-period stalls (which is why tools without blocking
//     primitives report spurious violations on this family).
//
//   - rcu-offline: any thread may become the updater, and threads go
//     offline/online. Re-going online against a concurrent grace period
//     is a store-buffering shape, so the online announcement carries an
//     SC fence — remove it (the example does, programmatically) and the
//     checker pinpoints the stale pointer read that would let a reader
//     dereference reclaimed memory.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/litmus"
	"repro/internal/parser"
)

func main() {
	for _, name := range []string{"rcu", "rcu-offline"} {
		entry, err := litmus.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		program := entry.Program()
		verdict, err := core.Verify(program, core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(core.Explain(program, verdict))
		fmt.Println()
	}

	// Negative control: strip the online-announcement fences from
	// rcu-offline and watch the robustness violation appear.
	entry, _ := litmus.Get("rcu-offline")
	broken := strings.ReplaceAll(entry.Source, "  fence\n", "")
	program, err := parser.Parse(broken)
	if err != nil {
		log.Fatal(err)
	}
	program.Name = "rcu-offline-without-fences"
	verdict, err := core.Verify(program, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.Explain(program, verdict))
	if verdict.Robust {
		log.Fatal("expected the fence-less variant to be non-robust")
	}
	fmt.Println("\nThe violation above is the reader observing a stale pointer while the")
	fmt.Println("grace period has already discounted it — exactly the reclamation race")
	fmt.Println("the online fence prevents.")
}
