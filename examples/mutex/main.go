// Mutual exclusion under release/acquire: the §7 Peterson story.
//
//	go run ./examples/mutex
//
// Peterson's algorithm is the paper's running example of a repair
// workflow: the SC original is not robust (and in fact broken under RA);
// one TSO-grade fence is not enough for RA; two SC fences work; and
// V'jukov's alternative repair — strengthening the *turn* write into an
// RMW — works too, while strengthening the *flag* writes instead does not.
// The example verifies all five variants and prints the counterexample
// traces for the broken ones, reproducing the peterson-* rows of Figure 7.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/litmus"
)

func main() {
	for _, name := range []string{
		"peterson-sc",
		"peterson-tso",
		"peterson-ra",
		"peterson-ra-dmitriy",
		"peterson-ra-bratosz",
	} {
		entry, err := litmus.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		program := entry.Program()
		verdict, err := core.Verify(program, core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(core.Explain(program, verdict))
		if verdict.Robust {
			fmt.Println("  mutual exclusion therefore holds under RA exactly as under SC,")
			fmt.Println("  and the embedded critical-section assertions were checked under SC.")
		}
		fmt.Println()
	}
}
