// Quiescent-state-based user-level RCU (Desnoyers et al., "User-Level
// Implementations of Read-Copy Update", 2012): the updater prepares a
// new data version in a fresh slot, publishes it by switching the
// pointer, flips the grace-period counter, waits until every reader
// has announced the new phase, and only then poisons the old slot.
// Readers dereference the pointer inside read-side sections and
// announce quiescent states between sections — writing their counter
// only when the phase changed. Every cross-thread obligation is a
// message-passing handshake, so the protocol is robust against RA
// with no fences at all.
//
//rocker:vals 4
package main

import "sync/atomic"

var g atomic.Int32       // the published slot index
var gp atomic.Int32      // grace-period phase counter
var ctr [3]atomic.Int32  // per-reader phase announcements
var slot [2]atomic.Int32 // data versions; 3 = poisoned

func updater() {
	slot[1].Store(1) // prepare the new version
	g.Store(1)       // publish it
	gp.Store(1)      // start a grace period
	for ctr[0].Load() != 1 {
	}
	for ctr[1].Load() != 1 {
	}
	for ctr[2].Load() != 1 {
	}
	slot[0].Store(3) // reclaim (poison) the old version
}

func reader(id int32) {
	var phase int32
	for it := 0; it < 2; it++ {
		// Read-side critical section.
		r := g.Load()
		v := slot[r].Load()
		if v == 3 {
			panic("rcu: read a reclaimed slot")
		}
		// Quiescent state: announce the phase if it changed.
		rq := gp.Load()
		if rq != phase {
			ctr[id].Store(rq)
			phase = rq
		}
	}
}

func rcu() {
	go updater()
	for i := int32(0); i < 3; i++ {
		go reader(i)
	}
}

func main() { rcu() }
