// The entry gate of Dekker's mutual exclusion: each peer raises its
// flag and enters the critical section only if the other's flag is
// still down. Correct under sequential consistency, but NOT robust
// against RA: both loads can miss the other's store (the classic
// store-buffering shape), both peers enter, and the plain write to cs
// becomes a data race. The repair is an SC fence between each peer's
// store and load — or strengthening the stores into fence-shaped RMWs.
//
//rocker:vals 3
package main

import "sync/atomic"

var flag0 atomic.Int32
var flag1 atomic.Int32
var cs int32 // non-atomic: who is inside the critical section

func peer0() {
	flag0.Store(1)
	if flag1.Load() == 0 {
		cs = 1
	}
}

func peer1() {
	flag1.Store(1)
	if flag0.Load() == 0 {
		cs = 2
	}
}

func dekker() {
	go peer0()
	go peer1()
}

func main() { dekker() }
