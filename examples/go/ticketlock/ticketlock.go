// Ticket lock: each worker takes a ticket from the dispenser with a
// fetch-and-add, spins until the serving counter reaches its ticket,
// runs the critical section, and hands over to the next ticket. The
// critical section writes a plain (non-atomic) variable: mutual
// exclusion makes it race-free, and the RMW/wait synchronization makes
// the whole protocol robust against RA.
//
//rocker:vals 4
package main

import "sync/atomic"

var next atomic.Int32    // ticket dispenser
var serving atomic.Int32 // now-serving counter
var owner int32          // non-atomic: who holds the lock

func worker(id int32) {
	my := next.Add(1) - 1 // take a ticket (Add returns the new value)
	for serving.Load() != my {
	}
	owner = id
	if owner != id {
		panic("ticketlock: lock not exclusive")
	}
	serving.Store(my + 1)
}

func ticketlock() {
	go worker(1)
	go worker(2)
}

func main() { ticketlock() }
