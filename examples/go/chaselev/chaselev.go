// Chase-Lev work-stealing deque (Chase & Lev, SPAA 2005), with the
// owner's take and the thieves' steal written with plain acquire/
// release atomics — the shape of the C11 port before its seq_cst
// accesses. The owner pushes two tasks and takes twice; two thieves
// try to steal. NOT robust against RA: the owner's bottom-decrement /
// top-read pair and the thief's top-read / bottom-read pair each need
// an SC fence (the seq_cst accesses of Lê et al., PPoPP 2013), and the
// linter's repair suggests exactly those.
//
//rocker:vals 6
package main

import "sync/atomic"

var top atomic.Int32  // steal end
var bot atomic.Int32  // owner end
var q [3]atomic.Int32 // the task array

func owner() {
	// Push two tasks.
	q[0].Store(1)
	bot.Store(1)
	q[1].Store(2)
	bot.Store(2)
	// Take twice.
	for it := 0; it < 2; it++ {
		rb := bot.Load() - 1
		bot.Store(rb)
		rt := top.Load()
		if rt > rb {
			bot.Store(rb + 1) // deque empty: undo the decrement
			continue
		}
		if rt == rb {
			// Last task: race the thieves for it.
			won := top.CompareAndSwap(rt, rt+1)
			bot.Store(rb + 1)
			if !won {
				continue
			}
		}
		v := q[rb].Load()
		if v != rb+1 {
			panic("chaselev: took a corrupted task")
		}
	}
}

func thief() {
	rt := top.Load()
	rb := bot.Load()
	if rt >= rb {
		return // looks empty
	}
	v := q[rt].Load()
	if v != rt+1 {
		panic("chaselev: stole a corrupted task")
	}
	top.CompareAndSwap(rt, rt+1)
}

func chaselev() {
	go owner()
	go thief()
	go thief()
}

func main() { chaselev() }
