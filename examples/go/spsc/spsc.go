// Bounded single-producer single-consumer ring buffer with capacity-1
// backpressure: the producer publishes each filled slot by advancing
// head, then waits for the consumer to advance tail before producing
// the next item; the consumer waits on head, reads the slot, and
// acknowledges on tail. The slots themselves are plain (non-atomic)
// memory — the head/tail handshakes carry all the synchronization, so
// the protocol is race-free and robust against RA.
//
//rocker:vals 3
package main

import "sync/atomic"

var head atomic.Int32 // items published by the producer
var tail atomic.Int32 // items consumed
var buf [2]int32      // non-atomic ring slots

func produce() {
	for i := int32(0); i < 2; i++ {
		buf[i] = i + 1
		head.Store(i + 1)
		for tail.Load() != i+1 {
		}
	}
}

func consume() {
	for i := int32(0); i < 2; i++ {
		for head.Load() != i+1 {
		}
		v := buf[i]
		if v != i+1 {
			panic("spsc: lost item")
		}
		tail.Store(i + 1)
	}
}

func spsc() {
	go produce()
	go consume()
}

func main() { spsc() }
