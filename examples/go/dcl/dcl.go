// Double-checked initialization: readers fast-path on the done flag,
// and the slow path takes a spinlock before re-checking and
// initializing. The acquire load of done pairs with the release store
// after initialization, so the plain read of val is race-free and the
// protocol is robust against RA — this is the correct DCL idiom, in
// contrast to the broken variants that publish before initializing.
//
//rocker:vals 2
package main

import "sync/atomic"

var done atomic.Int32 // published after val is initialized
var lk atomic.Int32   // slow-path spinlock
var val int32         // non-atomic: the lazily initialized value

func get() {
	if done.Load() == 0 {
		for !lk.CompareAndSwap(0, 1) {
		}
		if done.Load() == 0 {
			val = 1
			done.Store(1)
		}
		lk.Store(0)
	}
	if val != 1 {
		panic("dcl: saw uninitialized value")
	}
}

func dcl() {
	go get()
	go get()
}

func main() { dcl() }
