// Seqlock (Boehm, "Can Seqlocks Get Along with Programming Language
// Memory Models?", MSPC 2012): two writers claim the sequence counter
// with a CompareAndSwap (odd = writer active), update the data pair,
// and release with the next even value; two readers retry until they
// observe the same even sequence number around a consistent snapshot.
// Robust against RA with no fences — seqlocks were designed with
// relaxed memory in mind.
//
//rocker:vals 5
package main

import "sync/atomic"

var seq atomic.Int32    // even = stable, odd = writer active
var d1, d2 atomic.Int32 // the protected pair

func write(v int32) {
	for {
		c := seq.Load()
		if c%2 == 1 {
			continue // a writer is active
		}
		if !seq.CompareAndSwap(c, c+1) {
			continue // lost the claim race
		}
		d1.Store(v)
		d2.Store(v)
		seq.Store(c + 2)
		return
	}
}

func read() {
	for {
		s1 := seq.Load()
		if s1%2 == 1 {
			continue // writer active: retry
		}
		a := d1.Load()
		b := d2.Load()
		if seq.Load() != s1 {
			continue // a writer intervened: retry
		}
		if a != b {
			panic("seqlock: torn read")
		}
		return
	}
}

func seqlock() {
	go write(1)
	go write(2)
	go read()
	go read()
}

func main() { seqlock() }
