// Quickstart: parse a program in the paper's toy language, check its
// robustness against release/acquire, and inspect the counterexample.
//
//	go run ./examples/quickstart
//
// It walks the two flagship litmus tests of §3: store buffering (SB, the
// canonical non-robust program — both threads can read stale zeroes under
// RA) and message passing (MP, the pattern RA is designed to support,
// robust), then shows how the SB violation disappears when the paper's
// SC-fence encoding (Example 3.6) is added.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/parser"
)

const storeBuffering = `
program store-buffering
vals 2
locs x y
thread t1
  x := 1
  a := y
end
thread t2
  y := 1
  b := x
end
`

const messagePassing = `
program message-passing
vals 2
locs data flag
thread producer
  data := 1
  flag := 1
end
thread consumer
  wait(flag = 1)
  r := data
  assert r = 1
end
`

const storeBufferingFenced = `
program store-buffering-fenced
vals 2
locs x y
thread t1
  x := 1
  fence
  a := y
end
thread t2
  y := 1
  fence
  b := x
end
`

func main() {
	for _, src := range []string{storeBuffering, messagePassing, storeBufferingFenced} {
		program, err := parser.Parse(src)
		if err != nil {
			log.Fatal(err)
		}
		verdict, err := core.Verify(program, core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(core.Explain(program, verdict))
		fmt.Println()
	}
	fmt.Println("A robust program behaves identically under RA and SC (Prop. 4.10):")
	fmt.Println("verify it with ordinary SC techniques and ship it on ARM/POWER with")
	fmt.Println("release/acquire accesses only.")
}
