// Automatic robustness enforcement (the workflow of the paper's
// introduction): take a program designed for SC, let the checker find the
// weak behaviour, and let the fence searcher repair it minimally.
//
//	go run ./examples/fencing
//
// The example repairs Dekker's mutual exclusion — "the best known example"
// of an algorithm whose RA behaviour is harmful (§1) — and the IRIW litmus
// test, whose repair needs a fence in each reader (RA is not
// multi-copy-atomic, Example 3.3).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fence"
	"repro/internal/litmus"
)

func main() {
	for _, tc := range []struct {
		name       string
		maxRepairs int
	}{
		{"IRIW", 2},
		{"dekker-sc", 2},
	} {
		entry, err := litmus.Get(tc.name)
		if err != nil {
			log.Fatal(err)
		}
		program := entry.Program()
		fmt.Printf("=== %s ===\n", program.Name)
		verdict, err := core.Verify(program, core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(core.Explain(program, verdict))
		if verdict.Robust {
			continue
		}
		placements, fixed, err := fence.Enforce(program, fence.Options{MaxRepairs: tc.maxRepairs})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nminimal repair: %d fence(s)\n", len(placements))
		for _, pl := range placements {
			th := &program.Threads[pl.Tid]
			fmt.Printf("  %s: before %q\n", th.Name, program.FmtInst(th, &th.Insts[pl.At]))
		}
		reverified, err := core.Verify(fixed, core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("re-verification: robust=%v (%d states)\n\n", reverified.Robust, reverified.States)
	}
}
