// Non-atomic accesses and data-race detection (§6 of the paper).
//
//	go run ./examples/racecheck
//
// C/C++11 programs keep their bulk data in non-atomic variables; a data
// race on them is undefined behaviour, so robustness of a mixed program
// also requires race freedom. The checker verifies both simultaneously:
// the example runs a correct message-passing handoff of non-atomic data
// (robust and race-free), then removes the synchronization and watches the
// racy-state detector (Definition 6.1) fire.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/parser"
)

const handoff = `
program na-handoff
vals 3
locs flag
na payload
thread producer
  payload := 2
  flag := 1
end
thread consumer
  wait(flag = 1)
  r := payload
  assert r = 2
end
`

const racy = `
program na-race
vals 3
locs flag
na payload
thread producer
  payload := 2
  flag := 1
end
thread consumer
  r := payload
end
`

func main() {
	for _, src := range []string{handoff, racy} {
		program, err := parser.Parse(src)
		if err != nil {
			log.Fatal(err)
		}
		verdict, err := core.Verify(program, core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(core.Explain(program, verdict))
		fmt.Println()
	}
	fmt.Println("The release write of flag and the acquire wait make the payload handoff")
	fmt.Println("well-defined; without them the two payload accesses are simultaneously")
	fmt.Println("enabled — a racy state — and the program has undefined behaviour.")
}
