package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/parser"
)

// runVet implements "rocker vet file.lit...": parse each file leniently
// (so out-of-range constants are reported with positions instead of
// rejected wholesale) and run the internal/analysis lints. Findings print
// as file:line:col: message, one per line; the exit status is 1 when any
// file has findings, 2 on I/O or parse errors, 0 when everything is
// clean.
func runVet(args []string) int {
	fs := flag.NewFlagSet("rocker vet", flag.ExitOnError)
	quiet := fs.Bool("q", false, "suppress the per-file ok lines")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rocker vet [-q] file.lit...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	status := 0
	for _, name := range fs.Args() {
		src, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rocker vet:", err)
			return 2
		}
		p, err := parser.ParseLenient(string(src))
		if err != nil {
			// Parser errors already carry line:col.
			fmt.Printf("%s:%v\n", name, err)
			status = 2
			continue
		}
		findings := analysis.Vet(p)
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s\n", name, f.Line, f.Col, f.Msg)
		}
		if len(findings) > 0 {
			if status == 0 {
				status = 1
			}
		} else if !*quiet {
			fmt.Printf("%s: ok\n", name)
		}
	}
	return status
}
