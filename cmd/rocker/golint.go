package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/frontend"
	"repro/internal/model"
)

// runGolint implements "rocker golint": translate real sync/atomic Go
// code into the verifier's language with internal/frontend and lint
// every concurrency unit for robustness, with all findings anchored to
// Go source positions.
//
// Operands are .go files, package directories, or dir/... patterns
// (every subdirectory holding Go files becomes one package). The exit
// status is 1 when any unit has an error finding (not robust, failing
// assertion, data race) or a vet warning, 2 on I/O / parse / type
// errors, and 0 otherwise — declined units report their reason but do
// not fail the run, since declining is the frontend's way of refusing
// to guess.
func runGolint(args []string) int {
	fs := flag.NewFlagSet("rocker golint", flag.ExitOnError)
	modelsFlag := fs.String("models", "ra", "comma-separated verdict models (ra, sra, plus any -list-modes mode)")
	maxStates := fs.Int("max", 2_000_000, "state bound per unit and model (0 = unbounded)")
	workers := fs.Int("workers", 0, "parallel exploration workers (0 = all cores)")
	noRepair := fs.Bool("norepair", false, "skip the fence-repair suggestion on non-robust units")
	emitDir := fs.String("emit", "", "write each unit's translated .lit listing into this directory")
	quiet := fs.Bool("q", false, "verdict lines only, no per-unit ok output")
	timeout := fs.Duration("timeout", 0, "abort after this long (0 = no deadline)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rocker golint [flags] file.go... | dir | dir/...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	var modes []string
	for _, m := range strings.Split(*modelsFlag, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		if m != "ra" && m != "sra" && !model.Valid(m) {
			fmt.Fprintf(os.Stderr, "rocker golint: unknown model %q (supported: ra, sra, %s)\n", m, model.ModeList())
			return 2
		}
		modes = append(modes, m)
	}

	pkgs, err := golintPackages(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocker golint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "rocker golint: no Go files found")
		return 2
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := frontend.LintOptions{
		Models:    modes,
		MaxStates: *maxStates,
		Workers:   *workers,
		NoRepair:  *noRepair,
		Ctx:       ctx,
	}

	status := 0
	for _, files := range pkgs {
		pkg, err := frontend.TranslateFiles(files)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rocker golint:", err)
			status = 2
			continue
		}
		for _, d := range pkg.Declined {
			fmt.Printf("%s: %s: declined: %s (%s)\n", d.Pos, d.Name, d.Reason, d.Construct)
		}
		for _, u := range pkg.Units {
			rep, err := frontend.LintUnit(u, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rocker golint:", err)
				status = 2
				continue
			}
			if *emitDir != "" {
				name := filepath.Join(*emitDir, u.Prog.Name+".lit")
				if err := os.WriteFile(name, []byte(frontend.EmitLit(u)), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "rocker golint:", err)
					return 2
				}
			}
			bad := false
			for _, f := range rep.Findings {
				fmt.Printf("%s: %s\n", f.Pos, f.Message)
				bad = true
			}
			verdicts := make([]string, 0, len(modes))
			for _, m := range modes {
				mark := "✗"
				if rep.Verdicts[m] {
					mark = "✓"
				}
				verdicts = append(verdicts, fmt.Sprintf("%s %s", m, mark))
			}
			sort.Strings(verdicts)
			if bad {
				if status == 0 {
					status = 1
				}
				fmt.Printf("%s: %s: %s\n", u.Pos, u.Name, strings.Join(verdicts, ", "))
			} else if !*quiet {
				fmt.Printf("%s: %s: ok (%s)\n", u.Pos, u.Name, strings.Join(verdicts, ", "))
			} else {
				fmt.Printf("%s: %s: %s\n", u.Pos, u.Name, strings.Join(verdicts, ", "))
			}
		}
	}
	return status
}

// golintPackages expands the operands into per-package file lists:
// explicit .go files form one package; a directory contributes its
// (non-test) Go files; dir/... walks recursively, one package per
// directory.
func golintPackages(args []string) ([][]string, error) {
	var pkgs [][]string
	var loose []string
	addDir := func(dir string) error {
		files, err := goFilesIn(dir)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			pkgs = append(pkgs, files)
		}
		return nil
	}
	for _, arg := range args {
		switch {
		case strings.HasSuffix(arg, "/..."):
			root := strings.TrimSuffix(arg, "/...")
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					return addDir(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		case strings.HasSuffix(arg, ".go"):
			loose = append(loose, arg)
		default:
			info, err := os.Stat(arg)
			if err != nil {
				return nil, err
			}
			if !info.IsDir() {
				return nil, fmt.Errorf("%s: not a .go file or directory", arg)
			}
			if err := addDir(arg); err != nil {
				return nil, err
			}
		}
	}
	if len(loose) > 0 {
		pkgs = append(pkgs, loose)
	}
	return pkgs, nil
}

func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}
