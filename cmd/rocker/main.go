// Command rocker is the reproduction of the paper's prototype tool: it
// checks execution-graph robustness of a program against the C/C++11
// release/acquire memory model (plus data-race freedom on non-atomic
// locations and any user assertions, per §6–§7), by exhaustive exploration
// of the program under the instrumented SC memory of §5.
//
// Usage:
//
//	rocker [flags] file.lit
//	rocker [flags] -corpus name     # run a built-in corpus program
//	rocker -list                    # list the built-in corpus
//	rocker vet file.lit...          # lint programs, non-zero exit on findings
//	rocker golint pkg-or-files      # lift sync/atomic Go code and lint it
//	                                # for robustness at Go source positions
//
// The cross-model verdict matrix: -models runs the same program under
// several memory models and prints one verdict row per model, e.g.
//
//	rocker -models ra,sra,tso,sc -corpus barrier
//	rocker -models ra,tso,state-tso -all
//	rocker -list-modes              # describe the registered modes
//
// Flags:
//
//	-models M1,M2 run each listed verification mode (see -list-modes) and
//	              print one verdict per mode; with -all, one matrix row
//	              per corpus program
//	-list-modes   list the registered verification modes
//	-full         disable the §5.1 abstract value management (ablation)
//	-hashcompact  store 128-bit state hashes instead of full encodings
//	-max N        abort after N states (0 = unbounded)
//	-workers N    parallel exploration workers (0 = all cores, 1 = sequential)
//	-prune        run the static conflict-analysis pre-pass (internal/analysis)
//	-noreduce     disable the partial-order reduction layer (ample sets,
//	              sleep sets, thread symmetry), which is on by default
//	-explain      print the pre-pass report: summaries, conflict graph,
//	              pruned locations, and the certificate or why it declined;
//	              with reduction on, also the independence relation and the
//	              initial-state ample-set decision
//	-trace        print the counterexample SC run on violations
//	-q            print only the verdict line
//	-stats        print exploration statistics (states/sec, heap, GC cycles)
//	-cpuprofile f write a CPU profile to f (go tool pprof)
//	-memprofile f write a heap profile to f on exit
//	-timeout d    abort after a wall-clock deadline (e.g. -timeout 30s)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"errors"
	"strings"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/model"
	"repro/internal/parser"
	"repro/internal/staterobust"
)

// main delegates to run so that the profiling defers flush on every exit
// path (os.Exit skips deferred calls).
func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) > 1 && os.Args[1] == "vet" {
		return runVet(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "golint" {
		return runGolint(os.Args[2:])
	}
	full := flag.Bool("full", false, "disable abstract value management (§5.1)")
	modelFlag := flag.String("model", "ra", "memory model: ra (the paper) or sra (the POPL'16 strengthening)")
	hashCompact := flag.Bool("hashcompact", false, "hash-compact visited set")
	maxStates := flag.Int("max", 0, "state bound (0 = unbounded)")
	workers := flag.Int("workers", 0, "parallel exploration workers (0 = all cores, 1 = sequential)")
	trace := flag.Bool("trace", true, "print counterexample traces")
	quiet := flag.Bool("q", false, "verdict line only")
	stats := flag.Bool("stats", false, "print exploration statistics (states/sec, heap, GC cycles)")
	prune := flag.Bool("prune", false, "run the static conflict-analysis pre-pass before exploring")
	noReduce := flag.Bool("noreduce", false, "disable partial-order reduction (ample sets, sleep sets, thread symmetry)")
	explain := flag.Bool("explain", false, "print the static-analysis report (implies -prune)")
	models := flag.String("models", "", "comma-separated verification modes for a cross-model verdict matrix (see -list-modes)")
	listModes := flag.Bool("list-modes", false, "list the registered verification modes")
	corpusName := flag.String("corpus", "", "verify a built-in corpus program")
	list := flag.Bool("list", false, "list built-in corpus programs")
	all := flag.Bool("all", false, "verify the whole corpus and compare against the expected verdicts")
	timeout := flag.Duration("timeout", 0, "abort verification after this long (0 = no deadline)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // material allocations only
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if *listModes {
		for _, in := range model.Infos() {
			kind := "state"
			if in.Graph {
				kind = "graph"
			}
			fmt.Printf("%-10s %-5s %-42s %s\n", in.Mode, kind, in.Checker, in.Desc)
		}
		return 0
	}

	if *models != "" {
		modes, err := matrixModes(*models)
		if err != nil {
			fatal(err)
		}
		opts := model.RunOpts{
			MaxStates:   *maxStates,
			Workers:     *workers,
			StaticPrune: *prune,
			Reduce:      !*noReduce,
			Ctx:         ctx,
		}
		if opts.MaxStates == 0 {
			// The matrix runs several exhaustive explorations back to back;
			// default to a finite budget so one pathological row degrades to
			// a "bound" cell instead of hanging the whole table.
			opts.MaxStates = matrixDefaultMax
		}
		if *all {
			return matrixAll(modes, opts)
		}
		program := loadProgram(*corpusName)
		for _, mode := range modes {
			fmt.Printf("%-10s %s\n", mode, matrixCell(mode, program, opts))
		}
		return 0
	}

	if *all {
		bad := 0
		for _, e := range litmus.All() {
			if e.Big {
				fmt.Printf("%-22s (skipped: multi-minute state space; use -corpus %s -hashcompact)\n", e.Name, e.Name)
				continue
			}
			p := e.Program()
			v, err := core.Verify(p, core.Options{AbstractVals: !*full, Workers: *workers, Ctx: ctx, Reduce: !*noReduce})
			if err != nil {
				fatal(err)
			}
			status := "OK"
			if v.Robust != e.RobustRA {
				status = "MISMATCH"
				bad++
			}
			res := "✗"
			if v.Robust {
				res = "✓"
			}
			fmt.Printf("%-22s %s %-9s %8d states %12v\n", e.Name, res, status, v.States, v.Elapsed.Round(100000))
		}
		if bad > 0 {
			return 1
		}
		return 0
	}

	if *list {
		for _, e := range litmus.All() {
			mark := "✗"
			if e.RobustRA {
				mark = "✓"
			}
			fmt.Printf("%-22s %s  (%d threads)\n", e.Name, mark, e.Program().NumThreads())
		}
		return 0
	}

	program := loadProgram(*corpusName)

	m := core.ModelRA
	switch *modelFlag {
	case "ra":
	case "sra":
		m = core.ModelSRA
	default:
		fatal(fmt.Errorf("unknown model %q (want ra or sra)", *modelFlag))
	}
	v, err := core.Verify(program, core.Options{
		Model:        m,
		AbstractVals: !*full,
		HashCompact:  *hashCompact,
		MaxStates:    *maxStates,
		Workers:      *workers,
		Ctx:          ctx,
		StaticPrune:  *prune || *explain,
		Reduce:       !*noReduce,
	})
	if err != nil {
		fatal(err)
	}
	if *explain && !*noReduce {
		fmt.Print(core.ExplainReduce(program))
	}
	if !*explain && v.Analysis != nil {
		// -prune without -explain: keep the verdict output, drop the
		// full analysis dump.
		v.Analysis = nil
	}
	if *quiet {
		verdict := "ROBUST"
		if !v.Robust {
			verdict = "NOT-ROBUST"
		}
		extra := ""
		if v.Certificate {
			extra = " certificate=static"
		}
		fmt.Printf("%s %s states=%d time=%v%s\n", program.Name, verdict, v.States, v.Elapsed, extra)
	} else {
		out := core.Explain(program, v)
		if !*trace && !v.Robust {
			// Trim the trace section.
			fmt.Print(out[:indexLine(out, "  SC run")])
		} else {
			fmt.Print(out)
		}
		if !v.Certificate {
			fmt.Printf("  instrumentation: %d bits of metadata (§5.1)\n", v.MetadataBits)
		}
	}
	if *stats {
		printStats(v.States, v.Elapsed)
		if !*noReduce {
			fmt.Printf("  reduction: %d ample expansions, %d sleep-set skips, %d symmetry folds\n",
				v.AmpleHits, v.SleepSkips, v.SymmetryFolds)
		}
	}
	if !v.Robust {
		return 1
	}
	return 0
}

// loadProgram resolves the single-program operand: -corpus name or one
// .lit file argument.
func loadProgram(corpusName string) *lang.Program {
	switch {
	case corpusName != "":
		e, err := litmus.Get(corpusName)
		if err != nil {
			fatal(err)
		}
		return e.Program()
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		p, err := parser.Parse(string(src))
		if err != nil {
			fatal(err)
		}
		return p
	}
	fmt.Fprintln(os.Stderr, "usage: rocker [flags] file.lit | rocker -corpus name | rocker -list")
	os.Exit(2)
	return nil
}

// matrixDefaultMax bounds each matrix cell when -max is unset: large
// enough for every feasible corpus row under every mode, small enough
// that a pathological product (nbw-w-lr-rl under the TSO modes) degrades
// to a "bound" cell instead of hanging the table.
const matrixDefaultMax = 2_000_000

// matrixModes parses and validates the -models list.
func matrixModes(spec string) ([]string, error) {
	var out []string
	for _, m := range strings.Split(spec, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		if !model.Valid(m) {
			return nil, fmt.Errorf("unknown mode %q (supported: %s)", m, model.ModeList())
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-models: empty mode list (supported: %s)", model.ModeList())
	}
	return out, nil
}

// matrixCell runs one mode on one program and renders the verdict cell:
// ✓/✗ plus the explored-state count, or the reason no verdict exists.
func matrixCell(mode string, p *lang.Program, opts model.RunOpts) string {
	rr, err := model.Run(mode, p, opts)
	switch {
	case err == nil:
		mark := "✗"
		if rr.Robust {
			mark = "✓"
		}
		return fmt.Sprintf("%s %d", mark, rr.States)
	case errors.Is(err, core.ErrStateBound) || errors.Is(err, staterobust.ErrBound):
		return "bound"
	case errors.Is(err, core.ErrCanceled) || errors.Is(err, staterobust.ErrCanceled):
		return "timeout"
	}
	fatal(err)
	return ""
}

// matrixAll prints the cross-model verdict matrix over the whole corpus,
// one row per program, one column per mode.
func matrixAll(modes []string, opts model.RunOpts) int {
	fmt.Printf("%-22s", "program")
	for _, m := range modes {
		fmt.Printf("  %-12s", m)
	}
	fmt.Println()
	for _, e := range litmus.All() {
		if e.Big {
			fmt.Printf("%-22s  (skipped: multi-minute state space; use -corpus %s)\n", e.Name, e.Name)
			continue
		}
		p := e.Program()
		fmt.Printf("%-22s", e.Name)
		for _, mode := range modes {
			cell := matrixCell(mode, p, opts)
			// ✓/✗ are multi-byte; pad on rune width.
			fmt.Printf("  %s%s", cell, strings.Repeat(" ", pad(12, cell)))
		}
		fmt.Println()
	}
	return 0
}

// pad returns the spaces needed to fill cell out to width runes.
func pad(width int, cell string) int {
	if n := len([]rune(cell)); n < width {
		return width - n
	}
	return 0
}

// printStats reports exploration throughput and the runtime's memory
// picture: states per second, current and peak heap occupancy, cumulative
// allocation volume, and completed GC cycles. With the allocation-free hot
// loop, states/sec should scale with workers while allocated-total and GC
// cycles stay near-constant in the explored-state count.
func printStats(states int, elapsed time.Duration) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rate := float64(states) / elapsed.Seconds()
	fmt.Printf("  stats: %.0f states/sec (%d states in %v)\n", rate, states, elapsed)
	fmt.Printf("  heap: %.1f MiB in use, %.1f MiB peak, %.1f MiB allocated total\n",
		float64(ms.HeapInuse)/(1<<20), float64(ms.HeapSys-ms.HeapReleased)/(1<<20),
		float64(ms.TotalAlloc)/(1<<20))
	fmt.Printf("  gc: %d cycles, %.2f ms total pause\n",
		ms.NumGC, float64(ms.PauseTotalNs)/1e6)
}

func indexLine(s, prefix string) int {
	for i := 0; i+len(prefix) <= len(s); i++ {
		if (i == 0 || s[i-1] == '\n') && s[i:i+len(prefix)] == prefix {
			return i
		}
	}
	return len(s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rocker:", err)
	os.Exit(2)
}
