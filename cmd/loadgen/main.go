// Command loadgen drives a seeded, reproducible request stream against a
// rockerd node or cluster and reports throughput, latency percentiles,
// and where the verdicts came from: explored, memory cache, disk store,
// or a cluster peer. The stream is internal/gen's deterministic program
// mix; -dup dials the share of digest-equal renamed duplicates, which is
// exactly the cache-hit-rate dial (see internal/gen.Stream).
//
// Usage:
//
//	loadgen -targets http://h1:8723,http://h2:8724,http://h3:8725 \
//	        -n 300 -c 8 -dup 30 -seed 1 [-mode ra] [-batch 0] \
//	        [-timeout 30s] [-json BENCH_cluster.json]
//
// Requests round-robin over the targets. With -batch B > 0, requests are
// grouped into POST /v1/verify/batch calls of B items each instead of
// individual wait-mode verifies. Before and after the run, each target's
// /v1/stats is sampled and the per-source counter deltas are reported —
// the server-side truth to cross-check the client-side tallies.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/gen"
)

type verifyReply struct {
	Cached bool   `json:"cached"`
	Source string `json:"source"`
	Status string `json:"status"`
	Result *struct {
		Robust bool `json:"robust"`
		States int  `json:"states"`
	} `json:"result"`
	Error string `json:"error"`
}

type serverStats struct {
	Submitted    int64  `json:"submitted"`
	MemoryHits   int64  `json:"memoryHits"`
	DiskHits     int64  `json:"diskHits"`
	PeerForwards int64  `json:"peerForwards"`
	ForwardFails int64  `json:"forwardFails"`
	Steals       int64  `json:"steals"`
	Stolen       int64  `json:"stolen"`
	BatchItems   int64  `json:"batchItems"`
	Node         string `json:"node"`
}

type targetDelta struct {
	Target       string `json:"target"`
	Node         string `json:"node,omitempty"`
	Submitted    int64  `json:"submitted"`
	MemoryHits   int64  `json:"memoryHits"`
	DiskHits     int64  `json:"diskHits"`
	PeerForwards int64  `json:"peerForwards"`
	ForwardFails int64  `json:"forwardFails"`
	Steals       int64  `json:"steals"`
	Stolen       int64  `json:"stolen"`
	BatchItems   int64  `json:"batchItems"`
}

type report struct {
	Targets     []string `json:"targets"`
	Requests    int      `json:"requests"`
	Concurrency int      `json:"concurrency"`
	DupPercent  int      `json:"dupPercent"`
	Seed        uint64   `json:"seed"`
	Mode        string   `json:"mode"`
	BatchSize   int      `json:"batchSize,omitempty"`

	ElapsedSec float64 `json:"elapsedSec"`
	PerSec     float64 `json:"perSec"`

	P50Ms float64 `json:"p50Ms"`
	P90Ms float64 `json:"p90Ms"`
	P99Ms float64 `json:"p99Ms"`
	MaxMs float64 `json:"maxMs"`

	Done         int `json:"done"`
	Canceled     int `json:"canceled"`
	Failed       int `json:"failed"`
	Errors       int `json:"errors"`
	CachedMemory int `json:"cachedMemory"`
	CachedDisk   int `json:"cachedDisk"`
	CachedPeer   int `json:"cachedPeer"`

	Servers []targetDelta `json:"servers"`
}

type tally struct {
	mu        sync.Mutex
	latencies []float64
	rep       *report
}

func (tl *tally) observe(latMs float64, status, cached string) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.latencies = append(tl.latencies, latMs)
	switch status {
	case "done":
		tl.rep.Done++
	case "canceled":
		tl.rep.Canceled++
	case "failed":
		tl.rep.Failed++
	default:
		tl.rep.Errors++
	}
	switch cached {
	case "memory":
		tl.rep.CachedMemory++
	case "disk":
		tl.rep.CachedDisk++
	case "peer":
		tl.rep.CachedPeer++
	}
}

func main() {
	targetsFlag := flag.String("targets", "http://localhost:8723", "comma-separated rockerd base URLs")
	n := flag.Int("n", 200, "total requests")
	c := flag.Int("c", 8, "concurrent in-flight requests (or batches)")
	dup := flag.Int("dup", 30, "percent of requests that are digest-equal renamed duplicates")
	seed := flag.Uint64("seed", 1, "stream seed (same seed + n reproduces the traffic)")
	mode := flag.String("mode", "ra", "verification mode for every request")
	batch := flag.Int("batch", 0, "items per /v1/verify/batch call (0 = individual wait-mode verifies)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request verification deadline")
	jsonPath := flag.String("json", "", "write the report as JSON to this path")
	flag.Parse()

	targets := strings.Split(*targetsFlag, ",")
	for i := range targets {
		targets[i] = strings.TrimRight(strings.TrimSpace(targets[i]), "/")
	}
	stream := gen.NewStream(
		gen.New(gen.Config{Seed: *seed, NoExtras: true}),
		gen.StreamConfig{Seed: *seed, DupPercent: *dup},
	)
	client := &http.Client{}
	rep := &report{
		Targets: targets, Requests: *n, Concurrency: *c,
		DupPercent: *dup, Seed: *seed, Mode: *mode, BatchSize: *batch,
	}
	tl := &tally{rep: rep}

	before := make([]serverStats, len(targets))
	for i, tgt := range targets {
		before[i] = fetchStats(client, tgt)
	}

	start := time.Now()
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if *batch > 0 {
				for i := range idx {
					runBatch(client, targets[i%len(targets)], stream, i, min(*batch, *n-i), *mode, *timeout, tl)
				}
			} else {
				for i := range idx {
					runOne(client, targets[i%len(targets)], stream, i, *mode, *timeout, tl)
				}
			}
		}()
	}
	step := 1
	if *batch > 0 {
		step = *batch
	}
	for i := 0; i < *n; i += step {
		idx <- i
	}
	close(idx)
	wg.Wait()
	rep.ElapsedSec = time.Since(start).Seconds()
	if rep.ElapsedSec > 0 {
		rep.PerSec = float64(*n) / rep.ElapsedSec
	}

	sort.Float64s(tl.latencies)
	rep.P50Ms = percentile(tl.latencies, 50)
	rep.P90Ms = percentile(tl.latencies, 90)
	rep.P99Ms = percentile(tl.latencies, 99)
	if len(tl.latencies) > 0 {
		rep.MaxMs = tl.latencies[len(tl.latencies)-1]
	}
	for i, tgt := range targets {
		after := fetchStats(client, tgt)
		rep.Servers = append(rep.Servers, targetDelta{
			Target:       tgt,
			Node:         after.Node,
			Submitted:    after.Submitted - before[i].Submitted,
			MemoryHits:   after.MemoryHits - before[i].MemoryHits,
			DiskHits:     after.DiskHits - before[i].DiskHits,
			PeerForwards: after.PeerForwards - before[i].PeerForwards,
			ForwardFails: after.ForwardFails - before[i].ForwardFails,
			Steals:       after.Steals - before[i].Steals,
			Stolen:       after.Stolen - before[i].Stolen,
			BatchItems:   after.BatchItems - before[i].BatchItems,
		})
	}

	fmt.Printf("loadgen: %d requests over %d targets in %.2fs (%.1f/s), dup %d%%\n",
		*n, len(targets), rep.ElapsedSec, rep.PerSec, *dup)
	fmt.Printf("  latency ms: p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n",
		rep.P50Ms, rep.P90Ms, rep.P99Ms, rep.MaxMs)
	fmt.Printf("  outcomes: done %d  canceled %d  failed %d  errors %d\n",
		rep.Done, rep.Canceled, rep.Failed, rep.Errors)
	fmt.Printf("  served from: memory %d  disk %d  peer %d  explored %d\n",
		rep.CachedMemory, rep.CachedDisk, rep.CachedPeer,
		rep.Done-rep.CachedMemory-rep.CachedDisk-rep.CachedPeer)
	for _, sv := range rep.Servers {
		fmt.Printf("  %s (%s): +%d jobs, +%d mem, +%d disk, +%d fwd, +%d steals, +%d stolen\n",
			sv.Target, sv.Node, sv.Submitted, sv.MemoryHits, sv.DiskHits,
			sv.PeerForwards, sv.Steals, sv.Stolen)
	}
	if rep.Errors > 0 {
		defer os.Exit(1)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
	}
}

func runOne(client *http.Client, target string, stream *gen.Stream, i int, mode string, timeout time.Duration, tl *tally) {
	src, _ := stream.Request(i)
	body, _ := json.Marshal(map[string]any{
		"source": src, "mode": mode, "wait": true,
		"timeoutMs": timeout.Milliseconds(),
	})
	start := time.Now()
	resp, err := client.Post(target+"/v1/verify", "application/json", bytes.NewReader(body))
	lat := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		tl.observe(lat, "error", "")
		return
	}
	defer resp.Body.Close()
	var vr verifyReply
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&vr) != nil {
		tl.observe(lat, "error", "")
		return
	}
	status := vr.Status
	if vr.Cached {
		status = "done"
	}
	cached := vr.Source
	if vr.Cached && resp.Header.Get("X-Rocker-Owner") != "" {
		// Served by the owning peer's cache (its memory or disk): from
		// this client's viewpoint, a peer hit. The owner-side split is in
		// the server deltas.
		cached = "peer"
	}
	tl.observe(lat, status, cached)
}

func runBatch(client *http.Client, target string, stream *gen.Stream, first, count int, mode string, timeout time.Duration, tl *tally) {
	items := make([]map[string]any, 0, count)
	for i := first; i < first+count; i++ {
		src, _ := stream.Request(i)
		items = append(items, map[string]any{"source": src})
	}
	body, _ := json.Marshal(map[string]any{
		"items": items, "mode": mode, "timeoutMs": timeout.Milliseconds(),
	})
	start := time.Now()
	resp, err := client.Post(target+"/v1/verify/batch", "application/json", bytes.NewReader(body))
	lat := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		for i := 0; i < count; i++ {
			tl.observe(lat, "error", "")
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		for i := 0; i < count; i++ {
			tl.observe(lat, "error", "")
		}
		return
	}
	seen := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		var line struct {
			Summary bool   `json:"summary"`
			Status  string `json:"status"`
			Cached  string `json:"cached"`
		}
		if json.Unmarshal(sc.Bytes(), &line) != nil || line.Summary {
			continue
		}
		tl.observe(lat, line.Status, line.Cached)
		seen++
	}
	for ; seen < count; seen++ {
		tl.observe(lat, "error", "")
	}
}

func fetchStats(client *http.Client, target string) serverStats {
	var st serverStats
	resp, err := client.Get(target + "/v1/stats")
	if err != nil {
		return st
	}
	defer resp.Body.Close()
	_ = json.NewDecoder(resp.Body).Decode(&st)
	return st
}

func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := p * len(sorted) / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
