// Command fuzz drives the differential harness: it generates seeded
// random programs (internal/gen), runs the full cross-check battery on
// each (internal/diffcheck), minimizes any disagreement, and writes the
// shrunken repro as a .lit file under -out, where the tier-1 regression
// test picks it up forever after.
//
// Every program is identified by (seed, index): the stream is
// deterministic, so a finding reported as seed S, index I reproduces with
//
//	go run ./cmd/fuzz -seed S -from I -n 1
//
// Exit status is 1 when any disagreement was found, 0 on a clean run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/diffcheck"
	"repro/internal/gen"
	"repro/internal/lang"
	"repro/internal/parser"
)

func main() {
	var (
		n         = flag.Int("n", 500, "number of programs to check")
		seed      = flag.Uint64("seed", 1, "generator seed")
		from      = flag.Int("from", 0, "first program index (reproduce a finding with -from I -n 1)")
		quick     = flag.Bool("quick", false, "CI mode: run until -budget elapses (default 60s) instead of a fixed -n")
		budget    = flag.Duration("budget", 0, "stop starting new programs after this long (0: no time limit)")
		out       = flag.String("out", "testdata/regressions", "directory for minimized repros (created on first finding)")
		jobs      = flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent batteries")
		variants  = flag.Int("variants", 2, "renamed/permuted variants per program for the digest-invariance check")
		maxStates = flag.Int("maxstates", 0, "SCM-route state bound per engine run (0: default)")
		raStates  = flag.Int("rastates", 0, "RA-machine state bound per run (0: default)")
		tsoStates = flag.Int("tsostates", 0, "TSO-machine state bound per run, instrumented and exhaustive legs (0: RA bound)")
		noTSO     = flag.Bool("notso", false, "skip the instrumented-vs-exhaustive TSO cross-check")
		threads   = flag.Int("threads", 0, "max threads per generated program (0: default)")
		stmts     = flag.Int("stmts", 0, "max statements per thread (0: default)")
		verbose   = flag.Bool("v", false, "log every finding as it is discovered")
	)
	flag.Parse()
	if *quick {
		if *budget == 0 {
			*budget = 60 * time.Second
		}
		nSet := false
		flag.Visit(func(f *flag.Flag) { nSet = nSet || f.Name == "n" })
		if !nSet {
			*n = 1 << 30 // the budget, not the count, ends a -quick run
		}
	}

	g := gen.New(gen.Config{Seed: *seed, MaxThreads: *threads, MaxStmts: *stmts})
	cfg := diffcheck.Config{MaxStates: *maxStates, RAMaxStates: *raStates, TSOMaxStates: *tsoStates, SkipTSO: *noTSO}
	var deadline time.Time
	if *budget > 0 {
		deadline = time.Now().Add(*budget)
	}

	type found struct {
		index int
		f     diffcheck.Finding
	}
	var (
		mu       sync.Mutex
		checked  int
		robust   int
		nonrob   int
		unknown  int
		skips    int
		findings []found
	)
	start := time.Now()
	record := func(idx int, rep *diffcheck.Report) {
		mu.Lock()
		defer mu.Unlock()
		checked++
		switch rep.Verdict {
		case "robust":
			robust++
		case "non-robust":
			nonrob++
		default:
			unknown++
		}
		skips += len(rep.Skipped)
		for _, f := range rep.Findings {
			findings = append(findings, found{idx, f})
			if *verbose {
				fmt.Fprintf(os.Stderr, "FINDING seed=%d index=%d %s\n", *seed, idx, f)
			}
		}
		if checked%500 == 0 {
			fmt.Fprintf(os.Stderr, "fuzz: %d programs in %v (%d robust, %d non-robust, %d undecided, %d skipped checks, %d findings)\n",
				checked, time.Since(start).Round(time.Second), robust, nonrob, unknown, skips, len(findings))
		}
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				src := g.Source(i)
				rep := diffcheck.CheckSource(src, cfg)
				for v := 1; v <= *variants; v++ {
					if f := diffcheck.CheckVariantDigest(src, g.Variant(i, uint64(v))); f != nil {
						rep.Findings = append(rep.Findings, *f)
					}
				}
				record(i, rep)
			}
		}()
	}
	for i := *from; i < *from+*n; i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		indices <- i
	}
	close(indices)
	wg.Wait()

	fmt.Printf("fuzz: seed=%d checked=%d elapsed=%v robust=%d non-robust=%d undecided=%d skipped-checks=%d findings=%d\n",
		*seed, checked, time.Since(start).Round(time.Millisecond), robust, nonrob, unknown, skips, len(findings))
	if len(findings) == 0 {
		return
	}
	for _, fd := range findings {
		fmt.Printf("\nFINDING seed=%d index=%d check=%s\n%s\n", *seed, fd.index, fd.f.Check, indent(fd.f.Detail))
		path, err := writeRepro(*out, *seed, fd.index, fd.f, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuzz: writing repro: %v\n", err)
			continue
		}
		fmt.Printf("minimized repro: %s\n", path)
	}
	os.Exit(1)
}

// writeRepro minimizes a finding's program (re-running the same check
// class as the shrinking predicate) and writes it under dir with a header
// recording how it was found.
func writeRepro(dir string, seed uint64, index int, f diffcheck.Finding, cfg diffcheck.Config) (string, error) {
	src := f.Source
	// Digest-invariance findings are about a *pair* of renderings; the
	// variant is kept as-is (shrinking one side would break the pair).
	if p, err := parser.Parse(src); err == nil && f.Check != "variant-digest" {
		min := diffcheck.Minimize(p, func(q *lang.Program) bool {
			for _, g := range diffcheck.CheckProgram(q, cfg).Findings {
				if g.Check == f.Check {
					return true
				}
			}
			return false
		})
		src = parser.Format(min)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("fuzz-s%d-i%d-%s.lit", seed, index, sanitize(f.Check))
	path := filepath.Join(dir, name)
	detail := f.Detail
	if i := strings.IndexByte(detail, '\n'); i >= 0 {
		detail = detail[:i]
	}
	header := fmt.Sprintf("# Found by cmd/fuzz: -seed %d, index %d, check %q.\n# %s\n# Reproduce: go run ./cmd/fuzz -seed %d -from %d -n 1\n\n",
		seed, index, f.Check, detail, seed, index)
	return path, os.WriteFile(path, []byte(header+src), 0o644)
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		default:
			return '-'
		}
	}, s)
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}
