// Command litmus explores a program under the operational memory
// subsystems directly — SC (§2.3), the RA timestamp machine (§3), and the
// x86-TSO store-buffer machine — and reports state robustness
// (Definition 2.6): whether the weak model reaches program states SC
// cannot. It is the cross-validation side of the repository (the verifier
// in cmd/rocker decides the stronger execution-graph robustness without
// ever running the weak machine).
//
// Usage:
//
//	litmus -model ra|tso [flags] file.lit
//	litmus -model ra -corpus SB
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/parser"
	"repro/internal/staterobust"
)

func main() {
	model := flag.String("model", "ra", "weak model to compare against SC: ra, sra or tso")
	maxStates := flag.Int("max", 4_000_000, "compound state bound")
	bufCap := flag.Int("bufcap", 8, "TSO store-buffer capacity")
	corpusName := flag.String("corpus", "", "explore a built-in corpus program")
	flag.Parse()

	var program *lang.Program
	switch {
	case *corpusName != "":
		e, err := litmus.Get(*corpusName)
		if err != nil {
			fatal(err)
		}
		program = e.Program()
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		program, err = parser.Parse(string(src))
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: litmus -model ra|tso [flags] file.lit")
		os.Exit(2)
	}

	lim := staterobust.Limits{MaxStates: *maxStates, TSOBufCap: *bufCap}
	var res *staterobust.Result
	var err error
	switch *model {
	case "ra":
		res, err = staterobust.CheckRA(program, lim)
	case "sra":
		res, err = staterobust.CheckSRA(program, lim)
	case "tso":
		res, err = staterobust.CheckTSO(program, lim)
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}
	if err != nil {
		fatal(err)
	}
	if res.Robust {
		fmt.Printf("%s: state ROBUST against %s (%d program states under both models; %d compound states explored)\n",
			program.Name, *model, res.WeakStates, res.Explored)
	} else {
		fmt.Printf("%s: NOT state robust against %s (SC reaches %d program states; witness run:)\n",
			program.Name, *model, res.SCStates)
		fmt.Print(core.FormatTrace(program, res.WitnessTrace))
		os.Exit(1)
	}
	if res.BufBoundHit {
		fmt.Println("note: the TSO buffer bound was hit; rerun with a larger -bufcap to certify the verdict")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "litmus:", err)
	os.Exit(2)
}
